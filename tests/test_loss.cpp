// Tests for loss functions: values, gradients (vs. finite differences) and
// numerical-stability clamps.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/check.hpp"
#include "src/common/rng.hpp"
#include "src/nn/loss.hpp"

namespace mtsr::nn {
namespace {

TEST(MseLoss, ValueAndGradient) {
  Tensor pred(Shape{2, 2}, {1.f, 2.f, 3.f, 4.f});
  Tensor target(Shape{2, 2}, {1.f, 1.f, 1.f, 1.f});
  auto [value, grad] = mse_loss(pred, target);
  EXPECT_NEAR(value, (0.0 + 1.0 + 4.0 + 9.0) / 4.0, 1e-7);
  // d/dp mean((p - t)²) = 2 (p - t) / n.
  EXPECT_FLOAT_EQ(grad.flat(0), 0.f);
  EXPECT_FLOAT_EQ(grad.flat(1), 2.f * 1.f / 4.f);
  EXPECT_FLOAT_EQ(grad.flat(3), 2.f * 3.f / 4.f);
}

TEST(MseLoss, GradientMatchesFiniteDifference) {
  Rng rng(40);
  Tensor pred = Tensor::randn(Shape{3, 3}, rng);
  Tensor target = Tensor::randn(Shape{3, 3}, rng);
  auto [value, grad] = mse_loss(pred, target);
  const double delta = 1e-3;
  for (std::int64_t i = 0; i < pred.size(); ++i) {
    Tensor up = pred;
    up.flat(i) += static_cast<float>(delta);
    Tensor down = pred;
    down.flat(i) -= static_cast<float>(delta);
    const double numeric =
        (mse_loss(up, target).value - mse_loss(down, target).value) /
        (2.0 * delta);
    EXPECT_NEAR(grad.flat(i), numeric, 1e-3);
  }
}

TEST(BceLoss, PerfectPredictionsGiveSmallLoss) {
  Tensor good(Shape{2, 1}, {0.999f, 0.999f});
  EXPECT_LT(bce_loss(good, 1.f).value, 0.01);
  Tensor bad(Shape{2, 1}, {0.001f, 0.001f});
  EXPECT_LT(bce_loss(bad, 0.f).value, 0.01);
}

TEST(BceLoss, WrongPredictionsGiveLargeLoss) {
  Tensor wrong(Shape{1, 1}, {0.01f});
  EXPECT_GT(bce_loss(wrong, 1.f).value, 4.0);
}

TEST(BceLoss, GradientSignsPushTowardLabel) {
  Tensor p(Shape{1, 1}, {0.3f});
  // Label 1: increasing p lowers the loss -> negative gradient.
  EXPECT_LT(bce_loss(p, 1.f).grad.flat(0), 0.f);
  // Label 0: increasing p raises the loss -> positive gradient.
  EXPECT_GT(bce_loss(p, 0.f).grad.flat(0), 0.f);
}

TEST(BceLoss, ClampsExtremeProbabilities) {
  Tensor p(Shape{1, 1}, {0.f});
  const auto result = bce_loss(p, 1.f);
  EXPECT_TRUE(std::isfinite(result.value));
  EXPECT_TRUE(result.grad.all_finite());
}

TEST(BceLoss, RejectsBadInputs) {
  Tensor p(Shape{2, 2});
  EXPECT_THROW((void)bce_loss(p, 1.f), ContractViolation);
  Tensor q(Shape{2, 1});
  EXPECT_THROW((void)bce_loss(q, 0.5f), ContractViolation);
}

TEST(PerSampleSqError, ComputesPerSampleNorms) {
  Tensor pred(Shape{2, 2}, {1.f, 1.f, 0.f, 0.f});
  Tensor target(Shape{2, 2}, {0.f, 0.f, 0.f, 3.f});
  Tensor e = per_sample_sq_error(pred, target);
  ASSERT_EQ(e.shape(), Shape({2}));
  EXPECT_FLOAT_EQ(e.flat(0), 2.f);
  EXPECT_FLOAT_EQ(e.flat(1), 9.f);
}

}  // namespace
}  // namespace mtsr::nn
