// Tests for bicubic interpolation: exactness on constant and linear fields,
// smoothness, and the SuperResolver plumbing (incl. the Uniform baseline).
#include <gtest/gtest.h>

#include <cmath>

#include "src/baselines/bicubic.hpp"
#include "src/baselines/super_resolver.hpp"
#include "src/common/rng.hpp"
#include "src/data/probes.hpp"
#include "src/metrics/metrics.hpp"

namespace mtsr::baselines {
namespace {

TEST(Bicubic, ReproducesConstantFieldExactly) {
  Tensor coarse = Tensor::full(Shape{4, 4}, 3.7f);
  Tensor up = bicubic_upsample(coarse, 3);
  ASSERT_EQ(up.shape(), Shape({12, 12}));
  for (std::int64_t i = 0; i < up.size(); ++i) {
    EXPECT_NEAR(up.flat(i), 3.7f, 1e-5);
  }
}

TEST(Bicubic, ReproducesLinearRampInInterior) {
  // Catmull-Rom interpolation is exact for linear signals away from the
  // clamped borders.
  Tensor coarse(Shape{6, 6});
  for (std::int64_t r = 0; r < 6; ++r) {
    for (std::int64_t c = 0; c < 6; ++c) {
      coarse.at(r, c) = static_cast<float>(2 * r + 3 * c);
    }
  }
  Tensor up = bicubic_upsample(coarse, 2);
  // Interior fine cell (r, c) sits at coarse coordinate (r+0.5)/2 - 0.5.
  for (std::int64_t r = 4; r < 8; ++r) {
    for (std::int64_t c = 4; c < 8; ++c) {
      const double cr = (r + 0.5) / 2.0 - 0.5;
      const double cc = (c + 0.5) / 2.0 - 0.5;
      EXPECT_NEAR(up.at(r, c), 2.0 * cr + 3.0 * cc, 1e-4);
    }
  }
}

TEST(Bicubic, Factor1IsIdentity) {
  Rng rng(70);
  Tensor coarse = Tensor::randn(Shape{5, 5}, rng);
  Tensor up = bicubic_upsample(coarse, 1);
  for (std::int64_t i = 0; i < coarse.size(); ++i) {
    EXPECT_NEAR(up.flat(i), coarse.flat(i), 1e-5);
  }
}

TEST(Bicubic, AdjointInnerProductIdentity) {
  // <B x, y> == <x, Bᵀ y> — required for backpropagating through bicubic
  // residual bases.
  Rng rng(73);
  Tensor x = Tensor::randn(Shape{5, 4}, rng);
  Tensor y = Tensor::randn(Shape{20, 16}, rng);
  Tensor bx = bicubic_upsample(x, 4);
  Tensor bty = bicubic_upsample_adjoint(y, 4);
  double lhs = 0.0, rhs = 0.0;
  for (std::int64_t i = 0; i < bx.size(); ++i) {
    lhs += static_cast<double>(bx.flat(i)) * y.flat(i);
  }
  for (std::int64_t i = 0; i < x.size(); ++i) {
    rhs += static_cast<double>(x.flat(i)) * bty.flat(i);
  }
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(Bicubic, SmootherThanUniformOnSmoothFields) {
  // On a smooth Gaussian bump, bicubic reconstruction should beat the
  // blocky uniform spread — the ordering the paper's Fig. 9 shows.
  const std::int64_t side = 32;
  Tensor fine(Shape{side, side});
  for (std::int64_t r = 0; r < side; ++r) {
    for (std::int64_t c = 0; c < side; ++c) {
      const double dr = static_cast<double>(r) - 16, dc = static_cast<double>(c) - 16;
      fine.at(r, c) =
          static_cast<float>(100.0 * std::exp(-(dr * dr + dc * dc) / 80.0)) +
          10.f;
    }
  }
  data::UniformProbeLayout layout(side, side, 4);
  UniformInterpolator uniform;
  BicubicInterpolator bicubic;
  const double err_uniform =
      metrics::nrmse(uniform.super_resolve(fine, layout), fine);
  const double err_bicubic =
      metrics::nrmse(bicubic.super_resolve(fine, layout), fine);
  EXPECT_LT(err_bicubic, err_uniform);
}

TEST(Bicubic, HandlesMixtureLayout) {
  Rng rng(71);
  data::MixtureProbeLayout layout(40, 40);
  Tensor fine = Tensor::uniform(Shape{40, 40}, rng, 10.f, 100.f);
  BicubicInterpolator bicubic;
  Tensor out = bicubic.super_resolve(fine, layout);
  EXPECT_EQ(out.shape(), fine.shape());
  EXPECT_TRUE(out.all_finite());
}

TEST(UniformBaseline, EqualsSpreadAverage) {
  Rng rng(72);
  data::UniformProbeLayout layout(8, 8, 2);
  Tensor fine = Tensor::uniform(Shape{8, 8}, rng, 1.f, 9.f);
  UniformInterpolator uniform;
  Tensor out = uniform.super_resolve(fine, layout);
  Tensor expected = layout.spread_average(fine);
  for (std::int64_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out.flat(i), expected.flat(i));
  }
  EXPECT_EQ(uniform.name(), "Uniform");
}

}  // namespace
}  // namespace mtsr::baselines
