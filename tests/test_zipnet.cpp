// Tests for the ZipNet generator: upscale geometry across all instances,
// skip-mode variants, gradient flow end to end, and the paper-scale
// configuration's constructibility.
#include <gtest/gtest.h>

#include "src/common/check.hpp"
#include "src/core/zipnet.hpp"
#include "src/nn/grad_check.hpp"

namespace mtsr::core {
namespace {

ZipNetConfig tiny_config(std::vector<int> factors, SkipMode mode) {
  ZipNetConfig config;
  config.temporal_length = 2;
  config.upscale_factors = std::move(factors);
  config.base_channels = 2;
  config.convs_per_block = 1;
  config.zipper_modules = 3;
  config.zipper_channels = 4;
  config.final_channels = 4;
  config.skip_mode = mode;
  return config;
}

TEST(UpscaleStages, PaperDecompositions) {
  EXPECT_EQ(upscale_stages(2), std::vector<int>({2}));
  EXPECT_EQ(upscale_stages(4), std::vector<int>({2, 2}));
  // Three blocks for up-10, as in the paper ("from 1 to 3").
  EXPECT_EQ(upscale_stages(10), std::vector<int>({1, 2, 5}));
  EXPECT_EQ(upscale_stages(1), std::vector<int>({1}));
}

TEST(UpscaleStages, GenericFactorisation) {
  const auto stages = upscale_stages(8);
  int product = 1;
  for (int f : stages) product *= f;
  EXPECT_EQ(product, 8);
  EXPECT_THROW((void)upscale_stages(7), ContractViolation);
}

TEST(ZipNet, OutputShapeForUp2) {
  Rng rng(120);
  ZipNet net(tiny_config({2}, SkipMode::kZipper), rng);
  Tensor out = net.forward(Tensor::zeros(Shape{2, 2, 6, 6}), true);
  EXPECT_EQ(out.shape(), Shape({2, 12, 12}));
  EXPECT_EQ(net.total_upscale(), 2);
}

TEST(ZipNet, OutputShapeForUp4) {
  Rng rng(121);
  ZipNet net(tiny_config({2, 2}, SkipMode::kZipper), rng);
  Tensor out = net.forward(Tensor::zeros(Shape{1, 2, 5, 5}), true);
  EXPECT_EQ(out.shape(), Shape({1, 20, 20}));
}

TEST(ZipNet, OutputShapeForUp10ThreeBlocks) {
  Rng rng(122);
  ZipNet net(tiny_config({1, 2, 5}, SkipMode::kZipper), rng);
  Tensor out = net.forward(Tensor::zeros(Shape{1, 2, 2, 2}), true);
  EXPECT_EQ(out.shape(), Shape({1, 20, 20}));
  EXPECT_EQ(net.total_upscale(), 10);
}

TEST(ZipNet, AllSkipModesProduceSameShape) {
  for (SkipMode mode :
       {SkipMode::kZipper, SkipMode::kResidualPairs, SkipMode::kNone}) {
    Rng rng(123);
    ZipNet net(tiny_config({2}, mode), rng);
    Tensor out = net.forward(Tensor::zeros(Shape{1, 2, 4, 4}), true);
    EXPECT_EQ(out.shape(), Shape({1, 8, 8}));
  }
}

// The composite checks validate ZipNet's *routing* (skip wiring, stage
// reshapes, chain bookkeeping): a mis-summed branch shifts the directional
// derivative by O(branch share). LeakyReLU kinks make finite differences of
// a 15+-layer float32 net noisy, so these tests run with a near-linear
// activation (alpha = 0.9999); per-layer nonlinear gradients are covered by
// the strict per-layer checks in test_nn_gradients.cpp.
ZipNetConfig routing_config(std::vector<int> factors, SkipMode mode) {
  ZipNetConfig config = tiny_config(std::move(factors), mode);
  config.lrelu_alpha = 0.9999f;
  return config;
}

TEST(ZipNet, GradCheckZipperMode) {
  Rng rng(124);
  ZipNet net(routing_config({2}, SkipMode::kZipper), rng);
  Tensor input = Tensor::randn(Shape{2, 2, 3, 3}, rng);
  const double err =
      nn::check_layer_gradients_directional(net, input, rng, 8, 5e-3);
  EXPECT_LT(err, 5e-2);
}

TEST(ZipNet, GradCheckResidualPairsMode) {
  Rng rng(133);
  ZipNet net(routing_config({2}, SkipMode::kResidualPairs), rng);
  Tensor input = Tensor::randn(Shape{1, 2, 3, 3}, rng);
  const double err =
      nn::check_layer_gradients_directional(net, input, rng, 8, 5e-3);
  EXPECT_LT(err, 5e-2);
}

TEST(ZipNet, GradCheckNoSkipMode) {
  Rng rng(125);
  ZipNet net(routing_config({2}, SkipMode::kNone), rng);
  Tensor input = Tensor::randn(Shape{1, 2, 3, 3}, rng);
  const double err =
      nn::check_layer_gradients_directional(net, input, rng, 8, 5e-3);
  EXPECT_LT(err, 5e-2);
}

TEST(ZipNet, GradCheckWithNonlinearActivation) {
  // Same routing check with the paper's alpha = 0.1, looser tolerance
  // (curvature + kink noise only; a routing bug would register as O(1)).
  Rng rng(134);
  ZipNet net(tiny_config({2}, SkipMode::kZipper), rng);
  Tensor input = Tensor::randn(Shape{2, 2, 3, 3}, rng);
  const double err =
      nn::check_layer_gradients_directional(net, input, rng, 8, 5e-3);
  EXPECT_LT(err, 0.5);
}

TEST(ZipNet, SkipConnectionsAddNoParameters) {
  Rng rng(126);
  ZipNet with_skips(tiny_config({2}, SkipMode::kZipper), rng);
  Rng rng2(126);
  ZipNet without(tiny_config({2}, SkipMode::kNone), rng2);
  // The paper: zipper skips come free of extra parameters.
  EXPECT_EQ(with_skips.parameter_count(), without.parameter_count());
}

TEST(ZipNet, TemporalLengthMismatchRejected) {
  Rng rng(127);
  ZipNet net(tiny_config({2}, SkipMode::kZipper), rng);
  EXPECT_THROW((void)net.forward(Tensor::zeros(Shape{1, 3, 4, 4}), true),
               ContractViolation);
}

TEST(ZipNet, PaperScaleConfigurationConstructs) {
  // The full-size architecture: 24 zipper modules, 3 convs per upscaling
  // block, S = 6 — over 50 layers. Construct and count parameters without
  // training it.
  ZipNetConfig config;
  config.temporal_length = 6;
  config.upscale_factors = {1, 2, 5};
  config.base_channels = 8;
  config.convs_per_block = 3;
  config.zipper_modules = 24;
  config.zipper_channels = 16;
  config.final_channels = 32;
  Rng rng(128);
  ZipNet net(config, rng);
  EXPECT_GT(net.parameter_count(), 50000);
  EXPECT_EQ(net.total_upscale(), 10);
  EXPECT_FALSE(net.name().empty());
}

TEST(ZipNet, DeterministicInitialisationPerSeed) {
  Rng rng1(129), rng2(129);
  ZipNet a(tiny_config({2}, SkipMode::kZipper), rng1);
  ZipNet b(tiny_config({2}, SkipMode::kZipper), rng2);
  Rng input_rng(130);
  Tensor input = Tensor::randn(Shape{1, 2, 4, 4}, input_rng);
  Tensor oa = a.forward(input, false);
  Tensor ob = b.forward(input, false);
  for (std::int64_t i = 0; i < oa.size(); ++i) {
    EXPECT_EQ(oa.flat(i), ob.flat(i));
  }
}

// Parameterised sweep over zipper depths: forward/backward stay shape-
// consistent and finite as the chain deepens.
class ZipperDepthSweep : public ::testing::TestWithParam<int> {};

TEST_P(ZipperDepthSweep, ForwardBackwardFinite) {
  Rng rng(131);
  ZipNetConfig config = tiny_config({2}, SkipMode::kZipper);
  config.zipper_modules = GetParam();
  ZipNet net(config, rng);
  Tensor input = Tensor::randn(Shape{1, 2, 3, 3}, rng);
  Tensor out = net.forward(input, true);
  EXPECT_TRUE(out.all_finite());
  Tensor grad = net.backward(Tensor::ones(out.shape()));
  EXPECT_EQ(grad.shape(), input.shape());
  EXPECT_TRUE(grad.all_finite());
}

INSTANTIATE_TEST_SUITE_P(Depths, ZipperDepthSweep,
                         ::testing::Values(2, 3, 5, 8, 12));

}  // namespace
}  // namespace mtsr::core
