// Tests for the synthetic Milan traffic generator: determinism, scale,
// diurnal/weekly structure, spatial concentration and temporal correlation.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/check.hpp"
#include "src/data/milan.hpp"
#include "src/metrics/metrics.hpp"

namespace mtsr::data {
namespace {

MilanConfig small_config() {
  MilanConfig config;
  config.rows = 40;
  config.cols = 40;
  config.num_hotspots = 20;
  config.seed = 77;
  return config;
}

TEST(MilanGenerator, DeterministicPerSeed) {
  MilanTrafficGenerator a(small_config());
  MilanTrafficGenerator b(small_config());
  auto fa = a.generate(0, 3);
  auto fb = b.generate(0, 3);
  ASSERT_EQ(fa.size(), fb.size());
  for (std::size_t t = 0; t < fa.size(); ++t) {
    for (std::int64_t i = 0; i < fa[t].size(); ++i) {
      EXPECT_EQ(fa[t].flat(i), fb[t].flat(i));
    }
  }
}

TEST(MilanGenerator, GenerationOrderIrrelevant) {
  MilanTrafficGenerator a(small_config());
  MilanTrafficGenerator b(small_config());
  auto direct = a.generate(5, 2);
  (void)b.generate(0, 3);          // draw other frames first
  auto later = b.generate(5, 2);   // must still match
  for (std::size_t t = 0; t < direct.size(); ++t) {
    for (std::int64_t i = 0; i < direct[t].size(); ++i) {
      EXPECT_EQ(direct[t].flat(i), later[t].flat(i));
    }
  }
}

TEST(MilanGenerator, DifferentSeedsGiveDifferentCities) {
  MilanConfig c1 = small_config();
  MilanConfig c2 = small_config();
  c2.seed = 78;
  auto fa = MilanTrafficGenerator(c1).generate(0, 1);
  auto fb = MilanTrafficGenerator(c2).generate(0, 1);
  EXPECT_GT(metrics::mae(fa[0], fb[0]), 0.1);
}

TEST(MilanGenerator, VolumesInPaperRange) {
  MilanTrafficGenerator gen(small_config());
  // Two simulated days.
  auto frames = gen.generate(0, 288);
  double min_v = 1e18, max_v = -1e18;
  for (const Tensor& f : frames) {
    min_v = std::min(min_v, static_cast<double>(f.min()));
    max_v = std::max(max_v, static_cast<double>(f.max()));
  }
  EXPECT_GE(min_v, 0.0);          // no negative traffic
  EXPECT_GT(max_v, 1000.0);       // peaks reach thousands of MB
  EXPECT_LT(max_v, 7000.0);       // bounded near the calibrated 5496 MB
}

TEST(MilanGenerator, DiurnalCycle) {
  MilanConfig config = small_config();
  config.start_minute_of_week = 0;  // Monday 00:00
  MilanTrafficGenerator gen(config);
  auto frames = gen.generate(0, 144);  // one day at 10-minute bins
  // 04:00 (interval 24) must be much quieter than 14:00 (interval 84).
  const double night = frames[24].mean();
  const double day = frames[84].mean();
  EXPECT_GT(day, 2.0 * night);
}

TEST(MilanGenerator, BusinessProfilePeaksOnWeekdays) {
  MilanConfig config = small_config();
  config.start_minute_of_week = 0;  // Monday 00:00
  MilanTrafficGenerator gen(config);
  // Monday 10:00 = interval 60; Saturday 10:00 = interval 60 + 5*144.
  const double weekday = gen.temporal_profile(LandUse::kBusiness, 60);
  const double weekend = gen.temporal_profile(LandUse::kBusiness,
                                              60 + 5 * 144);
  EXPECT_GT(weekday, 1.5 * weekend);
}

TEST(MilanGenerator, ResidentialPeaksInTheEvening) {
  MilanConfig config = small_config();
  config.start_minute_of_week = 0;
  MilanTrafficGenerator gen(config);
  const double evening = gen.temporal_profile(LandUse::kResidential, 126);  // 21:00
  const double noon = gen.temporal_profile(LandUse::kResidential, 66);      // 11:00
  EXPECT_GT(evening, noon);
}

TEST(MilanGenerator, TrafficConcentratesInCentre) {
  MilanTrafficGenerator gen(small_config());
  auto frames = gen.generate(80, 4);  // mid-day frames
  double centre = 0.0, corner = 0.0;
  for (const Tensor& f : frames) {
    for (std::int64_t r = 15; r < 25; ++r) {
      for (std::int64_t c = 15; c < 25; ++c) centre += f.at(r, c);
    }
    for (std::int64_t r = 0; r < 10; ++r) {
      for (std::int64_t c = 0; c < 10; ++c) corner += f.at(r, c);
    }
  }
  EXPECT_GT(centre, 2.0 * corner);
}

TEST(MilanGenerator, ConsecutiveFramesAreCorrelated) {
  MilanTrafficGenerator gen(small_config());
  auto frames = gen.generate(70, 2);
  EXPECT_GT(metrics::pearson(frames[0], frames[1]), 0.9);
}

TEST(MilanGenerator, SubProbeScaleDetailExists) {
  // Hotspot radius (1-3.5 cells) is far below a 10-cell probe: within-block
  // variance must be a substantial fraction of total variance, otherwise
  // super-resolution would have nothing to recover.
  MilanTrafficGenerator gen(small_config());
  auto frames = gen.generate(84, 1);
  const Tensor& f = frames[0];
  double within = 0.0;
  int blocks = 0;
  for (std::int64_t br = 0; br < 4; ++br) {
    for (std::int64_t bc = 0; bc < 4; ++bc) {
      double sum = 0.0, sq = 0.0;
      for (std::int64_t r = 0; r < 10; ++r) {
        for (std::int64_t c = 0; c < 10; ++c) {
          const double v = f.at(br * 10 + r, bc * 10 + c);
          sum += v;
          sq += v * v;
        }
      }
      const double mean = sum / 100.0;
      within += sq / 100.0 - mean * mean;
      ++blocks;
    }
  }
  within /= blocks;
  const double total = f.stddev() * f.stddev();
  EXPECT_GT(within / total, 0.05);
}

TEST(MilanGenerator, HotspotGeographyIsFixedAcrossTime) {
  MilanTrafficGenerator gen(small_config());
  const auto& hotspots = gen.hotspots();
  ASSERT_FALSE(hotspots.empty());
  auto frames = gen.generate(0, 1);
  auto later = gen.generate(1000, 1);
  // Same generator, same hotspot list: geography is static by construction;
  // verify the spatial correlation between distant-in-time frames is high.
  EXPECT_GT(metrics::pearson(frames[0], later[0]), 0.5);
}

TEST(MilanGenerator, BadConfigRejected) {
  MilanConfig config = small_config();
  config.peak_traffic_mb = config.base_traffic_mb;
  EXPECT_THROW(MilanTrafficGenerator{config}, ContractViolation);
}

}  // namespace
}  // namespace mtsr::data
