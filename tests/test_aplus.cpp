// Tests for the A+ baseline: anchored regression recovery and end-to-end SR.
#include <gtest/gtest.h>

#include "src/common/check.hpp"
#include "src/baselines/aplus.hpp"
#include "src/baselines/bicubic.hpp"
#include "src/common/rng.hpp"
#include "src/data/milan.hpp"
#include "src/data/probes.hpp"
#include "src/metrics/metrics.hpp"

namespace mtsr::baselines {
namespace {

TEST(APlus, RequiresFitBeforePredict) {
  APlusSR aplus;
  data::UniformProbeLayout layout(8, 8, 2);
  EXPECT_THROW((void)aplus.super_resolve(Tensor(Shape{8, 8}), layout),
               ContractViolation);
  EXPECT_FALSE(aplus.is_fitted());
}

TEST(APlus, FitsAndPredictsFiniteValues) {
  data::MilanConfig mc;
  mc.rows = 24;
  mc.cols = 24;
  mc.num_hotspots = 10;
  mc.seed = 7;
  data::MilanTrafficGenerator gen(mc);
  auto train = gen.generate(60, 8);
  auto test = gen.generate(90, 1);

  data::UniformProbeLayout layout(24, 24, 2);
  APlusConfig config;
  config.anchors = 24;
  config.neighbourhood = 128;
  config.max_train_patches = 2000;
  APlusSR aplus(config);
  aplus.fit(train, layout);
  EXPECT_TRUE(aplus.is_fitted());
  EXPECT_EQ(aplus.anchor_count(), 24);

  Tensor out = aplus.super_resolve(test[0], layout);
  EXPECT_EQ(out.shape(), test[0].shape());
  EXPECT_TRUE(out.all_finite());
  EXPECT_EQ(aplus.name(), "A+");
}

TEST(APlus, CompetitiveWithBicubicInDistribution) {
  data::MilanConfig mc;
  mc.rows = 24;
  mc.cols = 24;
  mc.num_hotspots = 12;
  mc.seed = 8;
  data::MilanTrafficGenerator gen(mc);
  auto train = gen.generate(60, 10);
  auto test = gen.generate(100, 2);

  data::UniformProbeLayout layout(24, 24, 2);
  APlusConfig config;
  config.anchors = 32;
  config.neighbourhood = 256;
  config.max_train_patches = 3000;
  APlusSR aplus(config);
  aplus.fit(train, layout);

  BicubicInterpolator bicubic;
  double err_ap = 0.0, err_bc = 0.0;
  for (const Tensor& frame : test) {
    err_ap += metrics::nrmse(aplus.super_resolve(frame, layout), frame);
    err_bc += metrics::nrmse(bicubic.super_resolve(frame, layout), frame);
  }
  // Anchored regression refines bicubic; allow a small tolerance as in the
  // SC test (the paper itself finds SC/A+ can lose to plain interpolation
  // on traffic data — but not catastrophically).
  EXPECT_LT(err_ap, err_bc * 1.15);
}

}  // namespace
}  // namespace mtsr::baselines
