// Unit tests for the Tensor value type: construction, access, arithmetic,
// reductions and contracts.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/check.hpp"
#include "src/tensor/tensor.hpp"

namespace mtsr {
namespace {

TEST(Tensor, ZeroInitialised) {
  Tensor t(Shape{2, 3});
  EXPECT_EQ(t.size(), 6);
  for (std::int64_t i = 0; i < t.size(); ++i) EXPECT_EQ(t.flat(i), 0.f);
}

TEST(Tensor, FactoryFull) {
  Tensor t = Tensor::full(Shape{2, 2}, 3.5f);
  EXPECT_EQ(t.flat(0), 3.5f);
  EXPECT_EQ(t.flat(3), 3.5f);
}

TEST(Tensor, ArangeValues) {
  Tensor t = Tensor::arange(4);
  EXPECT_EQ(t.rank(), 1);
  EXPECT_EQ(t.flat(0), 0.f);
  EXPECT_EQ(t.flat(3), 3.f);
}

TEST(Tensor, MultiIndexAccessIsRowMajor) {
  Tensor t = Tensor::arange(12).reshape(Shape{3, 4});
  EXPECT_EQ(t.at(0, 0), 0.f);
  EXPECT_EQ(t.at(0, 3), 3.f);
  EXPECT_EQ(t.at(1, 0), 4.f);
  EXPECT_EQ(t.at(2, 3), 11.f);
}

TEST(Tensor, AtValidatesIndexCountAndRange) {
  Tensor t(Shape{2, 2});
  EXPECT_THROW((void)t.at(0), ContractViolation);
  EXPECT_THROW((void)t.at(0, 2), ContractViolation);
  EXPECT_THROW((void)t.at(2, 0), ContractViolation);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t = Tensor::arange(6).reshape(Shape{2, 3});
  Tensor r = t.reshape(Shape{3, 2});
  EXPECT_EQ(r.at(0, 0), 0.f);
  EXPECT_EQ(r.at(2, 1), 5.f);
}

TEST(Tensor, ReshapeVolumeMismatchThrows) {
  Tensor t(Shape{2, 3});
  EXPECT_THROW((void)t.reshape(Shape{2, 4}), ContractViolation);
}

TEST(Tensor, ElementwiseArithmetic) {
  Tensor a = Tensor::full(Shape{2, 2}, 2.f);
  Tensor b = Tensor::full(Shape{2, 2}, 3.f);
  EXPECT_EQ(a.add(b).flat(0), 5.f);
  EXPECT_EQ(a.sub(b).flat(0), -1.f);
  EXPECT_EQ(a.mul(b).flat(0), 6.f);
  EXPECT_EQ(a.add_scalar(1.f).flat(0), 3.f);
  EXPECT_EQ(a.mul_scalar(4.f).flat(0), 8.f);
}

TEST(Tensor, InPlaceArithmeticReturnsSelf) {
  Tensor a = Tensor::full(Shape{2}, 1.f);
  Tensor b = Tensor::full(Shape{2}, 2.f);
  a.add_(b).mul_scalar_(3.f);
  EXPECT_EQ(a.flat(0), 9.f);
}

TEST(Tensor, AxpyAccumulates) {
  Tensor a = Tensor::full(Shape{3}, 1.f);
  Tensor x = Tensor::full(Shape{3}, 2.f);
  a.axpy_(0.5f, x);
  EXPECT_FLOAT_EQ(a.flat(0), 2.f);
}

TEST(Tensor, ShapeMismatchThrows) {
  Tensor a(Shape{2, 2});
  Tensor b(Shape{4});
  EXPECT_THROW(a.add_(b), ContractViolation);
  EXPECT_THROW(a.mul_(b), ContractViolation);
}

TEST(Tensor, Reductions) {
  Tensor t = Tensor::arange(4);  // 0 1 2 3
  EXPECT_DOUBLE_EQ(t.sum(), 6.0);
  EXPECT_DOUBLE_EQ(t.mean(), 1.5);
  EXPECT_EQ(t.min(), 0.f);
  EXPECT_EQ(t.max(), 3.f);
  EXPECT_NEAR(t.stddev(), std::sqrt(1.25), 1e-6);
  EXPECT_DOUBLE_EQ(t.squared_norm(), 14.0);
}

TEST(Tensor, ApplyTransformsElementwise) {
  Tensor t = Tensor::arange(3);
  Tensor sq = t.apply([](float v) { return v * v; });
  EXPECT_EQ(sq.flat(2), 4.f);
  EXPECT_EQ(t.flat(2), 2.f);  // original untouched
}

TEST(Tensor, AllFiniteDetectsNan) {
  Tensor t(Shape{2});
  EXPECT_TRUE(t.all_finite());
  t.flat(0) = std::nanf("");
  EXPECT_FALSE(t.all_finite());
}

TEST(Tensor, RandnIsDeterministicPerSeed) {
  Rng rng1(99), rng2(99);
  Tensor a = Tensor::randn(Shape{8}, rng1);
  Tensor b = Tensor::randn(Shape{8}, rng2);
  for (std::int64_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.flat(i), b.flat(i));
  }
}

TEST(Tensor, CloneIsDeepCopy) {
  Tensor a = Tensor::full(Shape{2}, 1.f);
  Tensor b = a.clone();
  b.flat(0) = 5.f;
  EXPECT_EQ(a.flat(0), 1.f);
}

}  // namespace
}  // namespace mtsr
