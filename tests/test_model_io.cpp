// Round-trip tests for model checkpointing.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "src/nn/activations.hpp"
#include "src/nn/conv2d.hpp"
#include "src/nn/model_io.hpp"
#include "src/nn/sequential.hpp"

namespace mtsr::nn {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(ModelIo, SaveLoadRoundTrip) {
  const std::string path = temp_path("mtsr_model_io_test.bin");
  Rng rng(50);
  Sequential a;
  a.emplace<Conv2d>(1, 4, 3, 1, 1, rng);
  a.emplace<LeakyReLU>(0.1f);
  a.emplace<Conv2d>(4, 1, 3, 1, 1, rng);
  save_model(path, a);

  Rng rng2(999);  // different init — must be overwritten by load
  Sequential b;
  b.emplace<Conv2d>(1, 4, 3, 1, 1, rng2);
  b.emplace<LeakyReLU>(0.1f);
  b.emplace<Conv2d>(4, 1, 3, 1, 1, rng2);
  load_model(path, b);

  Tensor input = Tensor::randn(Shape{1, 1, 5, 5}, rng);
  Tensor out_a = a.forward(input, false);
  Tensor out_b = b.forward(input, false);
  for (std::int64_t i = 0; i < out_a.size(); ++i) {
    EXPECT_EQ(out_a.flat(i), out_b.flat(i));
  }
  std::remove(path.c_str());
}

TEST(ModelIo, ArchitectureMismatchRejected) {
  const std::string path = temp_path("mtsr_model_io_mismatch.bin");
  Rng rng(51);
  Sequential a;
  a.emplace<Conv2d>(1, 2, 3, 1, 1, rng);
  save_model(path, a);

  Sequential wrong_count;
  wrong_count.emplace<Conv2d>(1, 2, 3, 1, 1, rng);
  wrong_count.emplace<Conv2d>(2, 1, 3, 1, 1, rng);
  EXPECT_THROW(load_model(path, wrong_count), std::runtime_error);

  Sequential wrong_shape;
  wrong_shape.emplace<Conv2d>(1, 3, 3, 1, 1, rng);
  EXPECT_THROW(load_model(path, wrong_shape), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mtsr::nn
