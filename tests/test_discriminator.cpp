// Tests for the VGG-style discriminator: probability range, geometry
// independence, gradient flow back to its input.
#include <gtest/gtest.h>

#include "src/core/discriminator.hpp"
#include "src/nn/loss.hpp"
#include "src/nn/optimizer.hpp"

namespace mtsr::core {
namespace {

DiscriminatorConfig tiny_config() {
  DiscriminatorConfig config;
  config.base_channels = 2;
  return config;
}

TEST(Discriminator, OutputsProbabilities) {
  Rng rng(140);
  Discriminator d(tiny_config(), rng);
  Tensor input = Tensor::randn(Shape{4, 16, 16}, rng);
  Tensor out = d.forward(input, true);
  ASSERT_EQ(out.shape(), Shape({4, 1}));
  for (std::int64_t i = 0; i < out.size(); ++i) {
    EXPECT_GT(out.flat(i), 0.f);
    EXPECT_LT(out.flat(i), 1.f);
  }
}

TEST(Discriminator, HandlesDifferentGridGeometries) {
  Rng rng(141);
  Discriminator d(tiny_config(), rng);
  // The same discriminator must judge up-2 (small) and up-10 (large) grids.
  for (std::int64_t side : {8, 12, 20}) {
    Tensor out = d.forward(Tensor::randn(Shape{2, side, side}, rng), false);
    EXPECT_EQ(out.shape(), Shape({2, 1}));
  }
}

TEST(Discriminator, BackwardReturnsInputShapedGradient) {
  Rng rng(142);
  Discriminator d(tiny_config(), rng);
  Tensor input = Tensor::randn(Shape{3, 12, 12}, rng);
  Tensor probs = d.forward(input, true);
  auto [loss, grad] = nn::bce_loss(probs, 1.f);
  Tensor grad_input = d.backward(grad);
  EXPECT_EQ(grad_input.shape(), input.shape());
  EXPECT_TRUE(grad_input.all_finite());
  EXPECT_GT(grad_input.squared_norm(), 0.0);
}

TEST(Discriminator, TrainingSeparatesEasyClasses) {
  // Real = smooth ramps, fake = high-frequency noise: after a few BCE
  // steps the discriminator should rank real above fake on fresh samples.
  Rng rng(143);
  Discriminator d(tiny_config(), rng);
  nn::Adam optimizer(d.parameters(), 3e-3f);

  auto make_real = [&](std::int64_t n) {
    Tensor batch(Shape{n, 8, 8});
    for (std::int64_t i = 0; i < batch.size(); ++i) {
      batch.flat(i) = static_cast<float>(i % 8) / 8.f;
    }
    return batch;
  };
  auto make_fake = [&](std::int64_t n) {
    return Tensor::randn(Shape{n, 8, 8}, rng, 2.f);
  };

  for (int step = 0; step < 200; ++step) {
    optimizer.zero_grad();
    Tensor p_real = d.forward(make_real(8), true);
    auto real_loss = nn::bce_loss(p_real, 1.f);
    d.backward(real_loss.grad);
    Tensor p_fake = d.forward(make_fake(8), true);
    auto fake_loss = nn::bce_loss(p_fake, 0.f);
    d.backward(fake_loss.grad);
    optimizer.step();
  }
  // Score in training mode (batch statistics): with single-class batches,
  // batch-norm running statistics mix both classes, which is exactly the
  // regime the GAN trainer operates in during its D sub-epochs.
  const double real_score = d.forward(make_real(8), true).mean();
  const double fake_score = d.forward(make_fake(8), true).mean();
  EXPECT_GT(real_score, fake_score);
}

TEST(Discriminator, FeatureWidthsDoubleEveryOtherLayer) {
  Rng rng(144);
  DiscriminatorConfig config;
  config.base_channels = 4;
  Discriminator d(config, rng);
  // 6 conv blocks with widths (4,4,8,8,16,16) + dense head: spot-check the
  // parameter count implied by that schedule.
  EXPECT_GT(d.parameter_count(), 0);
  EXPECT_FALSE(d.name().empty());
}

}  // namespace
}  // namespace mtsr::core
