// Tests for the shared parallel execution engine and the kernels riding on
// it: thread-pool scheduling semantics, blocked-GEMM / batched-lowering
// parity against naive serial references, and bit-identical gradients
// across pool sizes.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstring>
#include <mutex>
#include <vector>

#include "src/common/check.hpp"
#include "src/common/parallel.hpp"
#include "src/common/rng.hpp"
#include "src/nn/batchnorm.hpp"
#include "src/nn/conv2d.hpp"
#include "src/nn/conv3d.hpp"
#include "src/nn/conv_transpose2d.hpp"
#include "src/nn/conv_transpose3d.hpp"
#include "src/nn/dense.hpp"
#include "src/nn/sequential.hpp"
#include "src/tensor/tensor_ops.hpp"

namespace mtsr {
namespace {

// Restores the default pool size when a test that resizes the pool exits.
class PoolGuard {
 public:
  PoolGuard() = default;
  ~PoolGuard() { set_num_threads(0); }
};

// ---- Naive serial references (the seed implementations) --------------------

Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c(Shape{m, n});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float aik = a.data()[i * k + kk];
      for (std::int64_t j = 0; j < n; ++j) {
        c.data()[i * n + j] += aik * b.data()[kk * n + j];
      }
    }
  }
  return c;
}

Tensor naive_transpose(const Tensor& a) {
  const std::int64_t m = a.dim(0), n = a.dim(1);
  Tensor out(Shape{n, m});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      out.data()[j * m + i] = a.data()[i * n + j];
    }
  }
  return out;
}

void expect_close(const Tensor& got, const Tensor& want, float tol = 1e-5f) {
  ASSERT_EQ(got.shape(), want.shape());
  for (std::int64_t i = 0; i < got.size(); ++i) {
    ASSERT_NEAR(got.flat(i), want.flat(i), tol) << "at flat index " << i;
  }
}

// ---- Engine scheduling semantics -------------------------------------------

TEST(ParallelEngine, CoversEveryIndexExactlyOnce) {
  const std::int64_t n = 1013;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  parallel_for(n, [&](std::int64_t i) { hits[static_cast<std::size_t>(i)]++; });
  for (std::int64_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1);
  }
}

TEST(ParallelEngine, ChunkGeometryIndependentOfPoolSize) {
  PoolGuard guard;
  const std::int64_t n = 97;
  auto collect = [&] {
    std::vector<std::int64_t> bounds;
    std::mutex mu;
    parallel_for_chunks(n, [&](std::int64_t b, std::int64_t e, int slot) {
      std::lock_guard<std::mutex> lock(mu);
      bounds.push_back(b);
      bounds.push_back(e);
      bounds.push_back(slot);
    });
    std::sort(bounds.begin(), bounds.end());
    return bounds;
  };
  set_num_threads(1);
  const auto serial = collect();
  set_num_threads(2);
  const auto two = collect();
  set_num_threads(0);
  const auto hw = collect();
  EXPECT_EQ(serial, two);
  EXPECT_EQ(serial, hw);
  EXPECT_EQ(static_cast<int>(serial.size()) / 3, parallel_chunk_count(n));
}

TEST(ParallelEngine, SlotsAreBoundedAndDense) {
  EXPECT_EQ(parallel_chunk_count(0), 0);
  EXPECT_EQ(parallel_chunk_count(1), 1);
  EXPECT_EQ(parallel_chunk_count(7), 7);
  EXPECT_EQ(parallel_chunk_count(1 << 20), parallel_chunk_count(1 << 21));
}

TEST(ParallelEngine, NestedCallsRunSerially) {
  std::atomic<int> total{0};
  parallel_for(8, [&](std::int64_t) {
    parallel_for(8, [&](std::int64_t) { total++; });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ParallelEngine, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_for(64,
                   [&](std::int64_t i) {
                     if (i == 13) throw ContractViolation("boom");
                   }),
      ContractViolation);
  // The pool must stay usable after an exception.
  std::atomic<int> total{0};
  parallel_for(16, [&](std::int64_t) { total++; });
  EXPECT_EQ(total.load(), 16);
}

TEST(ParallelEngine, SetNumThreadsFromInsideParallelRegionThrows) {
  // Resizing the pool while a parallel region is executing would join the
  // very thread running the body; the engine must refuse.
  std::atomic<int> threw{0};
  parallel_for(8, [&](std::int64_t i) {
    if (i != 0) return;
    try {
      set_num_threads(2);
    } catch (const ContractViolation&) {
      threw.fetch_add(1);
    }
  });
  EXPECT_EQ(threw.load(), 1);
  // The pool must stay usable afterwards.
  std::atomic<int> total{0};
  parallel_for(16, [&](std::int64_t) { total++; });
  EXPECT_EQ(total.load(), 16);
}

TEST(ParallelEngine, SetNumThreadsRoundTrips) {
  PoolGuard guard;
  set_num_threads(3);
  EXPECT_EQ(num_threads(), 3);
  set_num_threads(1);
  EXPECT_EQ(num_threads(), 1);
  set_num_threads(0);
  EXPECT_GE(num_threads(), 1);
}

// ---- Blocked kernel parity -------------------------------------------------

TEST(BlockedGemm, MatmulMatchesNaiveReference) {
  Rng rng(41);
  // Odd sizes exercise the remainder rows and tail columns of the
  // microkernel; the wide case exercises the column-split dispatch.
  for (auto [m, k, n] : {std::array<std::int64_t, 3>{37, 53, 41},
                         std::array<std::int64_t, 3>{3, 17, 301},
                         std::array<std::int64_t, 3>{129, 300, 2},
                         std::array<std::int64_t, 3>{1, 1, 1}}) {
    Tensor a = Tensor::randn(Shape{m, k}, rng);
    Tensor b = Tensor::randn(Shape{k, n}, rng);
    expect_close(matmul(a, b), naive_matmul(a, b));
  }
}

TEST(BlockedGemm, MatmulTnMatchesNaiveReference) {
  Rng rng(42);
  Tensor a = Tensor::randn(Shape{53, 37}, rng);  // (k, m)
  Tensor b = Tensor::randn(Shape{53, 41}, rng);  // (k, n)
  expect_close(matmul_tn(a, b), naive_matmul(naive_transpose(a), b));
}

TEST(BlockedGemm, MatmulNtMatchesNaiveReference) {
  Rng rng(43);
  Tensor a = Tensor::randn(Shape{37, 53}, rng);  // (m, k)
  Tensor b = Tensor::randn(Shape{41, 53}, rng);  // (n, k)
  expect_close(matmul_nt(a, b), naive_matmul(a, naive_transpose(b)));
  // Wide case dispatches over columns.
  Tensor c = Tensor::randn(Shape{2, 19}, rng);
  Tensor d = Tensor::randn(Shape{203, 19}, rng);
  expect_close(matmul_nt(c, d), naive_matmul(c, naive_transpose(d)));
}

TEST(BlockedGemm, TransposeMatchesNaiveReference) {
  Rng rng(44);
  Tensor a = Tensor::randn(Shape{67, 45}, rng);
  expect_close(transpose(a), naive_transpose(a), 0.f);
}

// ---- Batched lowering parity -----------------------------------------------

TEST(BatchedLowering, Im2colBatchedMatchesPerSample) {
  Rng rng(45);
  const std::int64_t n = 3, c = 2, h = 7, w = 6;
  const int kh = 3, kw = 2, sh = 2, sw = 1, ph = 1, pw = 0;
  Tensor input = Tensor::randn(Shape{n, c, h, w}, rng);
  Tensor batched = im2col_batched(input, kh, kw, sh, sw, ph, pw);
  const std::int64_t oh = (h + 2 * ph - kh) / sh + 1;
  const std::int64_t ow = (w + 2 * pw - kw) / sw + 1;
  ASSERT_EQ(batched.shape(), Shape({c * kh * kw, n * oh * ow}));
  for (std::int64_t i = 0; i < n; ++i) {
    Tensor per = im2col(select0(input, i), kh, kw, sh, sw, ph, pw);
    for (std::int64_t r = 0; r < per.dim(0); ++r) {
      for (std::int64_t p = 0; p < per.dim(1); ++p) {
        EXPECT_EQ(batched.at(r, i * oh * ow + p), per.at(r, p));
      }
    }
  }
}

TEST(BatchedLowering, Col2imBatchedMatchesPerSample) {
  Rng rng(46);
  const std::int64_t n = 2, c = 2, h = 6, w = 5;
  const int kh = 3, kw = 3, sh = 1, sw = 2, ph = 1, pw = 1;
  const std::int64_t oh = (h + 2 * ph - kh) / sh + 1;
  const std::int64_t ow = (w + 2 * pw - kw) / sw + 1;
  Tensor cols = Tensor::randn(Shape{c * kh * kw, n * oh * ow}, rng);
  Tensor batched = col2im_batched(cols, n, c, h, w, kh, kw, sh, sw, ph, pw);
  for (std::int64_t i = 0; i < n; ++i) {
    // Slice sample i's columns back out and run the per-sample adjoint.
    Tensor per_cols(Shape{c * kh * kw, oh * ow});
    for (std::int64_t r = 0; r < per_cols.dim(0); ++r) {
      for (std::int64_t p = 0; p < oh * ow; ++p) {
        per_cols.at(r, p) = cols.at(r, i * oh * ow + p);
      }
    }
    Tensor per = col2im(per_cols, c, h, w, kh, kw, sh, sw, ph, pw);
    Tensor got = select0(batched, i);
    for (std::int64_t j = 0; j < per.size(); ++j) {
      EXPECT_EQ(got.flat(j), per.flat(j));
    }
  }
}

TEST(BatchedLowering, Vol2colGemmMatchesDirectConv3d) {
  // Lowered 3-D convolution (vol2col + GEMM) against a direct nested-loop
  // convolution written out here.
  Rng rng(47);
  const std::int64_t n = 2, c = 2, d = 3, h = 5, w = 4, o = 3;
  const int kd = 3, kh = 3, kw = 3, sd = 1, sh = 1, sw = 1, pd = 1, ph = 1,
            pw = 1;
  Tensor input = Tensor::randn(Shape{n, c, d, h, w}, rng);
  Tensor weight = Tensor::randn(Shape{o, c, kd, kh, kw}, rng);

  Tensor cols = vol2col_batched(input, kd, kh, kw, sd, sh, sw, pd, ph, pw);
  Tensor y = matmul(weight.reshape(Shape{o, c * kd * kh * kw}), cols);
  Tensor lowered = channel_major_to_batch(y, Shape{n, o, d, h, w});

  Tensor direct(Shape{n, o, d, h, w});
  for (std::int64_t in = 0; in < n; ++in) {
    for (std::int64_t oc = 0; oc < o; ++oc) {
      for (std::int64_t zd = 0; zd < d; ++zd) {
        for (std::int64_t zh = 0; zh < h; ++zh) {
          for (std::int64_t zw = 0; zw < w; ++zw) {
            double acc = 0.0;
            for (std::int64_t ic = 0; ic < c; ++ic) {
              for (int fd = 0; fd < kd; ++fd) {
                const std::int64_t id = zd * sd - pd + fd;
                if (id < 0 || id >= d) continue;
                for (int fh = 0; fh < kh; ++fh) {
                  const std::int64_t ih = zh * sh - ph + fh;
                  if (ih < 0 || ih >= h) continue;
                  for (int fw = 0; fw < kw; ++fw) {
                    const std::int64_t iw = zw * sw - pw + fw;
                    if (iw < 0 || iw >= w) continue;
                    acc += input.at(in, ic, id, ih, iw) *
                           weight.at(oc, ic, fd, fh, fw);
                  }
                }
              }
            }
            direct.at(in, oc, zd, zh, zw) = static_cast<float>(acc);
          }
        }
      }
    }
  }
  expect_close(lowered, direct);
}

TEST(BatchedLowering, ChannelMajorRoundTrip) {
  Rng rng(48);
  Tensor x = Tensor::randn(Shape{3, 4, 5, 2}, rng);
  Tensor cm = batch_to_channel_major(x);
  ASSERT_EQ(cm.shape(), Shape({4, 3 * 10}));
  Tensor back = channel_major_to_batch(cm, x.shape());
  for (std::int64_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(back.flat(i), x.flat(i));
  }
}

// ---- Bit-identical gradients across pool sizes -----------------------------

// Builds the layer stack fresh (identical seed), runs forward + backward,
// and returns every parameter gradient flattened into one buffer.
std::vector<float> run_gradients() {
  Rng rng(123);
  nn::Sequential net;
  net.emplace<nn::Conv2d>(2, 4, 3, 1, 1, rng);
  net.emplace<nn::BatchNorm>(4);
  net.emplace<nn::Conv2d>(4, 2, 3, 2, 1, rng);
  Tensor x = Tensor::randn(Shape{5, 2, 8, 8}, rng);
  Tensor y = net.forward(x, /*training=*/true);
  Tensor g = Tensor::randn(y.shape(), rng);
  net.backward(g);
  std::vector<float> grads;
  for (nn::Parameter* p : net.parameters()) {
    const float* pg = p->grad.data();
    grads.insert(grads.end(), pg, pg + p->grad.size());
  }
  return grads;
}

std::vector<float> run_gradients_3d() {
  Rng rng(321);
  nn::Sequential net;
  net.emplace<nn::ConvTranspose3d>(1, 2, std::array<int, 3>{3, 4, 4},
                                   std::array<int, 3>{1, 2, 2},
                                   std::array<int, 3>{1, 1, 1}, rng);
  net.emplace<nn::Conv3d>(2, 1, std::array<int, 3>{3, 3, 3},
                          std::array<int, 3>{1, 1, 1},
                          std::array<int, 3>{1, 1, 1}, rng);
  Tensor x = Tensor::randn(Shape{3, 1, 3, 4, 4}, rng);
  Tensor y = net.forward(x, /*training=*/true);
  Tensor g = Tensor::randn(y.shape(), rng);
  net.backward(g);
  std::vector<float> grads;
  for (nn::Parameter* p : net.parameters()) {
    const float* pg = p->grad.data();
    grads.insert(grads.end(), pg, pg + p->grad.size());
  }
  return grads;
}

void expect_bit_identical(const std::vector<float>& a,
                          const std::vector<float>& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0);
}

TEST(PoolDeterminism, GradientsBitIdenticalAcrossPoolSizes) {
  PoolGuard guard;
  set_num_threads(1);
  const auto serial = run_gradients();
  set_num_threads(2);
  const auto two = run_gradients();
  set_num_threads(0);  // hardware default
  const auto hw = run_gradients();
  expect_bit_identical(serial, two);
  expect_bit_identical(serial, hw);
}

TEST(PoolDeterminism, Gradients3dBitIdenticalAcrossPoolSizes) {
  PoolGuard guard;
  set_num_threads(1);
  const auto serial = run_gradients_3d();
  set_num_threads(2);
  const auto two = run_gradients_3d();
  set_num_threads(0);
  const auto hw = run_gradients_3d();
  expect_bit_identical(serial, two);
  expect_bit_identical(serial, hw);
}

TEST(PoolDeterminism, DenseAndTransposeGradientsAcrossPoolSizes) {
  PoolGuard guard;
  auto run = [] {
    Rng rng(99);
    nn::Sequential net;
    net.emplace<nn::ConvTranspose2d>(2, 3, 4, 2, 1, rng);
    Tensor x = Tensor::randn(Shape{4, 2, 5, 5}, rng);
    Tensor y = net.forward(x, /*training=*/true);
    net.backward(Tensor::ones(y.shape()));
    std::vector<float> grads;
    for (nn::Parameter* p : net.parameters()) {
      const float* pg = p->grad.data();
      grads.insert(grads.end(), pg, pg + p->grad.size());
    }
    return grads;
  };
  set_num_threads(1);
  const auto serial = run();
  set_num_threads(2);
  const auto two = run();
  set_num_threads(0);
  const auto hw = run();
  expect_bit_identical(serial, two);
  expect_bit_identical(serial, hw);
}

}  // namespace
}  // namespace mtsr
