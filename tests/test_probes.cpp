// Tests for probe layouts (Table 1 / Fig. 8): aggregation correctness, mass
// conservation, mixture zone structure and the input-square projection.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/common/check.hpp"
#include "src/common/rng.hpp"
#include "src/data/probes.hpp"

namespace mtsr::data {
namespace {

TEST(UniformProbeLayout, CoarsenAveragesBlocks) {
  UniformProbeLayout layout(4, 4, 2);
  Tensor fine = Tensor::arange(16).reshape(Shape{4, 4});
  Tensor coarse = layout.coarsen(fine);
  ASSERT_EQ(coarse.shape(), Shape({2, 2}));
  EXPECT_FLOAT_EQ(coarse.at(0, 0), (0 + 1 + 4 + 5) / 4.f);
  EXPECT_FLOAT_EQ(coarse.at(1, 1), (10 + 11 + 14 + 15) / 4.f);
}

TEST(UniformProbeLayout, SpreadConservesMass) {
  Rng rng(60);
  UniformProbeLayout layout(8, 8, 4);
  Tensor fine = Tensor::uniform(Shape{8, 8}, rng, 10.f, 100.f);
  Tensor spread = layout.spread_average(fine);
  EXPECT_NEAR(spread.sum(), fine.sum(), 1e-2);
}

TEST(UniformProbeLayout, MetadataMatchesTable1) {
  UniformProbeLayout up2(100, 100, 2);
  EXPECT_EQ(up2.probe_count(), 2500);
  EXPECT_EQ(up2.input_side(), 50);
  EXPECT_DOUBLE_EQ(up2.average_factor(), 2.0);
  EXPECT_EQ(up2.name(), "up-2");

  UniformProbeLayout up10(100, 100, 10);
  EXPECT_EQ(up10.probe_count(), 100);   // 100x fewer measurement points
  EXPECT_EQ(up10.input_side(), 10);
}

TEST(UniformProbeLayout, ProbeMapPartitionsGrid) {
  UniformProbeLayout layout(6, 6, 3);
  const auto& map = layout.probe_map();
  ASSERT_EQ(map.size(), 36u);
  std::set<std::int32_t> ids(map.begin(), map.end());
  EXPECT_EQ(static_cast<std::int64_t>(ids.size()), layout.probe_count());
  EXPECT_EQ(map[0], map[2 * 6 + 2]);   // same 3x3 block
  EXPECT_NE(map[0], map[0 * 6 + 3]);   // different block
}

TEST(UniformProbeLayout, IndivisibleGridRejected) {
  EXPECT_THROW(UniformProbeLayout(10, 10, 3), ContractViolation);
}

TEST(MixtureProbeLayout, CoversEveryCellExactlyOnce) {
  MixtureProbeLayout layout(40, 40);
  const auto& map = layout.probe_map();
  // Every cell assigned, and per-probe cell counts match probe sizes.
  std::map<std::int32_t, int> cells_per_probe;
  for (std::int32_t id : map) {
    ASSERT_GE(id, 0);
    ++cells_per_probe[id];
  }
  EXPECT_EQ(static_cast<std::int64_t>(cells_per_probe.size()),
            layout.probe_count());
  for (const auto& [id, count] : cells_per_probe) {
    EXPECT_TRUE(count == 4 || count == 16 || count == 100)
        << "probe " << id << " covers " << count << " cells";
  }
}

TEST(MixtureProbeLayout, CompositionUsesAllThreeSizes) {
  MixtureProbeLayout layout(100, 100);
  const auto [n2, n4, n10] = layout.composition();
  EXPECT_GT(n2, 0);
  EXPECT_GT(n4, 0);
  EXPECT_GT(n10, 0);
  // Coverage totals the full grid.
  EXPECT_EQ(4 * n2 + 16 * n4 + 100 * n10, 100 * 100);
  // Probe-count proportions are in the neighbourhood of the paper's
  // 49% / 44% / 7% split.
  const double total = static_cast<double>(n2 + n4 + n10);
  EXPECT_NEAR(static_cast<double>(n2) / total, 0.49, 0.15);
  EXPECT_NEAR(static_cast<double>(n10) / total, 0.07, 0.08);
}

TEST(MixtureProbeLayout, CentreGetsFinestProbes) {
  MixtureProbeLayout layout(100, 100);
  Tensor gmap = layout.granularity_map();
  // The very centre should be covered by 2x2 probes, the corner by 10x10.
  EXPECT_FLOAT_EQ(gmap.at(50, 50), 2.f);
  EXPECT_FLOAT_EQ(gmap.at(0, 0), 10.f);
}

TEST(MixtureProbeLayout, AverageFactorNearFour) {
  MixtureProbeLayout layout(100, 100);
  // Table 1: the mixture instance has average n_f = 4 (coverage-weighted).
  EXPECT_NEAR(layout.average_factor(), 4.0, 2.0);
  EXPECT_EQ(layout.input_side(), 25);
}

TEST(MixtureProbeLayout, CoarsenWritesProbeAverages) {
  MixtureProbeLayout layout(40, 40);
  Tensor fine = Tensor::full(Shape{40, 40}, 7.f);
  Tensor input = layout.coarsen(fine);
  ASSERT_EQ(input.shape(), Shape({10, 10}));
  // Occupied slots hold the probe average (7); padding slots hold 0.
  for (std::int64_t i = 0; i < layout.probe_count(); ++i) {
    EXPECT_FLOAT_EQ(input.flat(i), 7.f);
  }
  for (std::int64_t i = layout.probe_count(); i < input.size(); ++i) {
    EXPECT_FLOAT_EQ(input.flat(i), 0.f);
  }
}

TEST(MixtureProbeLayout, SpreadConservesMass) {
  Rng rng(61);
  MixtureProbeLayout layout(40, 40);
  Tensor fine = Tensor::uniform(Shape{40, 40}, rng, 10.f, 50.f);
  Tensor spread = layout.spread_average(fine);
  EXPECT_NEAR(spread.sum() / fine.sum(), 1.0, 1e-4);
}

TEST(MixtureProbeLayout, RequiresSuperblockDivisibility) {
  EXPECT_THROW(MixtureProbeLayout(30, 30), ContractViolation);
}

TEST(MakeLayout, BuildsAllInstances) {
  for (MtsrInstance instance :
       {MtsrInstance::kUp2, MtsrInstance::kUp4, MtsrInstance::kUp10,
        MtsrInstance::kMixture}) {
    auto layout = make_layout(instance, 40, 40);
    ASSERT_NE(layout, nullptr);
    EXPECT_EQ(layout->rows(), 40);
    EXPECT_GT(layout->probe_count(), 0);
  }
  EXPECT_EQ(instance_name(MtsrInstance::kUp10), "up-10");
}

// Property sweep: every layout preserves total traffic volume through
// spread_average (aggregation must not create or destroy traffic).
class LayoutConservation
    : public ::testing::TestWithParam<MtsrInstance> {};

TEST_P(LayoutConservation, SpreadAverageConservesVolume) {
  Rng rng(62);
  auto layout = make_layout(GetParam(), 40, 40);
  Tensor fine = Tensor::uniform(Shape{40, 40}, rng, 5.f, 500.f);
  Tensor spread = layout->spread_average(fine);
  EXPECT_NEAR(spread.sum() / fine.sum(), 1.0, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(AllInstances, LayoutConservation,
                         ::testing::Values(MtsrInstance::kUp2,
                                           MtsrInstance::kUp4,
                                           MtsrInstance::kUp10,
                                           MtsrInstance::kMixture));

}  // namespace
}  // namespace mtsr::data
