// Behavioural tests for nn layers: output shapes, reference values,
// batch-norm statistics, activation semantics, upscale geometry.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/check.hpp"
#include "src/nn/activations.hpp"
#include "src/nn/batchnorm.hpp"
#include "src/nn/conv2d.hpp"
#include "src/nn/conv3d.hpp"
#include "src/nn/conv_transpose2d.hpp"
#include "src/nn/conv_transpose3d.hpp"
#include "src/nn/dense.hpp"
#include "src/nn/pooling.hpp"
#include "src/nn/sequential.hpp"

namespace mtsr::nn {
namespace {

TEST(Conv2d, OutputShapeFollowsConvArithmetic) {
  Rng rng(20);
  Conv2d conv(3, 8, 3, 2, 1, rng);
  Tensor out = conv.forward(Tensor::zeros(Shape{2, 3, 9, 9}), true);
  EXPECT_EQ(out.shape(), Shape({2, 8, 5, 5}));
  EXPECT_EQ(conv.out_extent(9), 5);
}

TEST(Conv2d, IdentityKernelPassesThrough) {
  Rng rng(21);
  Conv2d conv(1, 1, 1, 1, 0, rng);
  // Overwrite the weight with the identity and the bias with zero.
  conv.parameters()[0]->value.fill(1.f);
  conv.parameters()[1]->value.fill(0.f);
  Tensor input = Tensor::arange(9).reshape(Shape{1, 1, 3, 3});
  Tensor out = conv.forward(input, true);
  for (std::int64_t i = 0; i < input.size(); ++i) {
    EXPECT_FLOAT_EQ(out.flat(i), input.flat(i));
  }
}

TEST(Conv2d, BoxKernelComputesNeighbourhoodSums) {
  Rng rng(22);
  Conv2d conv(1, 1, 3, 1, 1, rng);
  conv.parameters()[0]->value.fill(1.f);
  conv.parameters()[1]->value.fill(0.f);
  Tensor input = Tensor::ones(Shape{1, 1, 3, 3});
  Tensor out = conv.forward(input, true);
  EXPECT_FLOAT_EQ(out.at(0, 0, 1, 1), 9.f);  // centre sees all 9 ones
  EXPECT_FLOAT_EQ(out.at(0, 0, 0, 0), 4.f);  // corner sees 4
}

TEST(Conv2d, BiasIsAddedPerChannel) {
  Rng rng(23);
  Conv2d conv(1, 2, 1, 1, 0, rng);
  conv.parameters()[0]->value.fill(0.f);
  conv.parameters()[1]->value.flat(0) = 1.5f;
  conv.parameters()[1]->value.flat(1) = -2.f;
  Tensor out = conv.forward(Tensor::zeros(Shape{1, 1, 2, 2}), true);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0, 0), 1.5f);
  EXPECT_FLOAT_EQ(out.at(0, 1, 0, 0), -2.f);
}

TEST(Conv2d, WrongChannelCountThrows) {
  Rng rng(24);
  Conv2d conv(2, 1, 3, 1, 1, rng);
  EXPECT_THROW((void)conv.forward(Tensor::zeros(Shape{1, 3, 4, 4}), true),
               ContractViolation);
}

TEST(Conv3d, OutputShape) {
  Rng rng(25);
  Conv3d conv(2, 4, {3, 3, 3}, {1, 1, 1}, {1, 1, 1}, rng);
  Tensor out = conv.forward(Tensor::zeros(Shape{1, 2, 3, 6, 6}), true);
  EXPECT_EQ(out.shape(), Shape({1, 4, 3, 6, 6}));
}

TEST(Conv3d, AgreesWithConv2dWhenDepthKernelIsOne) {
  // A (1, k, k) 3-D convolution applied to a depth-1 volume must match the
  // equivalent 2-D convolution with the same weights.
  Rng rng(26);
  Conv3d conv3(1, 1, {1, 3, 3}, {1, 1, 1}, {0, 1, 1}, rng);
  Conv2d conv2(1, 1, 3, 1, 1, rng);
  // Copy weights 3D -> 2D (same layout since kd == 1).
  auto& w3 = conv3.parameters()[0]->value;
  auto& b3 = conv3.parameters()[0 + 1]->value;
  conv2.parameters()[0]->value = w3.reshape(Shape{1, 1, 3, 3});
  conv2.parameters()[1]->value = b3;

  Tensor input = Tensor::randn(Shape{1, 1, 4, 4}, rng);
  Tensor out2 = conv2.forward(input, true);
  Tensor out3 = conv3.forward(input.reshape(Shape{1, 1, 1, 4, 4}), true);
  for (std::int64_t i = 0; i < out2.size(); ++i) {
    EXPECT_NEAR(out2.flat(i), out3.flat(i), 1e-5);
  }
}

TEST(ConvTranspose2d, UpscalesByStrideFactor) {
  Rng rng(27);
  ConvTranspose2d deconv(1, 1, 4, 2, 1, rng);
  Tensor out = deconv.forward(Tensor::zeros(Shape{1, 1, 5, 5}), true);
  EXPECT_EQ(out.shape(), Shape({1, 1, 10, 10}));
  EXPECT_EQ(deconv.out_extent(5), 10);
}

TEST(ConvTranspose2d, ConstantKernelSpreadsMass) {
  Rng rng(28);
  ConvTranspose2d deconv(1, 1, 2, 2, 0, rng);
  deconv.parameters()[0]->value.fill(1.f);
  deconv.parameters()[1]->value.fill(0.f);
  Tensor input(Shape{1, 1, 2, 2}, {1.f, 2.f, 3.f, 4.f});
  Tensor out = deconv.forward(input, true);
  ASSERT_EQ(out.shape(), Shape({1, 1, 4, 4}));
  // Each input pixel expands into a disjoint 2x2 block of its own value.
  EXPECT_FLOAT_EQ(out.at(0, 0, 0, 0), 1.f);
  EXPECT_FLOAT_EQ(out.at(0, 0, 1, 1), 1.f);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0, 2), 2.f);
  EXPECT_FLOAT_EQ(out.at(0, 0, 3, 3), 4.f);
  // Each input pixel contributes its value to kernel-volume output cells,
  // so total mass scales by the kernel sum (4 for an all-ones 2x2 kernel).
  EXPECT_NEAR(out.sum(), 4.0 * input.sum(), 1e-5);
}

TEST(ConvTranspose3d, ZipNetUpscaleGeometry) {
  Rng rng(29);
  // Depth preserved (k=3, s=1, p=1), spatial ×5 (k=7, s=5, p=1).
  ConvTranspose3d deconv(1, 2, {3, 7, 7}, {1, 5, 5}, {1, 1, 1}, rng);
  Tensor out = deconv.forward(Tensor::zeros(Shape{1, 1, 3, 4, 4}), true);
  EXPECT_EQ(out.shape(), Shape({1, 2, 3, 20, 20}));
  EXPECT_EQ(deconv.out_extent(0, 3), 3);
  EXPECT_EQ(deconv.out_extent(1, 4), 20);
}

TEST(BatchNorm, NormalisesPerChannelInTraining) {
  Rng rng(30);
  BatchNorm bn(2, 0.1f);
  // Channel 0 ~ N(5, 2²), channel 1 ~ N(-3, 0.5²).
  Tensor input(Shape{8, 2, 4, 4});
  for (std::int64_t n = 0; n < 8; ++n) {
    for (std::int64_t i = 0; i < 16; ++i) {
      input.at(n, 0, i / 4, i % 4) =
          static_cast<float>(rng.normal(5.0, 2.0));
      input.at(n, 1, i / 4, i % 4) =
          static_cast<float>(rng.normal(-3.0, 0.5));
    }
  }
  Tensor out = bn.forward(input, /*training=*/true);
  // Per-channel output mean ~0, stddev ~1.
  for (std::int64_t c = 0; c < 2; ++c) {
    double sum = 0.0, sq = 0.0;
    for (std::int64_t n = 0; n < 8; ++n) {
      for (std::int64_t i = 0; i < 16; ++i) {
        const double v = out.at(n, c, i / 4, i % 4);
        sum += v;
        sq += v * v;
      }
    }
    const double mean = sum / (8 * 16);
    const double var = sq / (8 * 16) - mean * mean;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(BatchNorm, RunningStatsConvergeToBatchStats) {
  Rng rng(31);
  BatchNorm bn(1, 0.5f);
  Tensor input = Tensor::randn(Shape{16, 1, 4, 4}, rng);
  input.add_scalar_(2.f);
  for (int i = 0; i < 30; ++i) (void)bn.forward(input, true);
  EXPECT_NEAR(bn.running_mean().flat(0), 2.f, 0.1f);
}

TEST(BatchNorm, InferenceUsesRunningStats) {
  Rng rng(32);
  BatchNorm bn(1, 1.0f);  // momentum 1: running stats = last batch stats
  Tensor train_batch = Tensor::randn(Shape{32, 1, 2, 2}, rng);
  (void)bn.forward(train_batch, true);
  // A constant input in eval mode must map through the affine transform
  // using the stored statistics, producing a constant output.
  Tensor eval_in = Tensor::full(Shape{2, 1, 2, 2}, 1.f);
  Tensor eval_out = bn.forward(eval_in, false);
  for (std::int64_t i = 1; i < eval_out.size(); ++i) {
    EXPECT_FLOAT_EQ(eval_out.flat(i), eval_out.flat(0));
  }
}

TEST(LeakyReLU, MatchesEquation3) {
  LeakyReLU lrelu(0.1f);
  Tensor input(Shape{4}, {-2.f, -0.5f, 0.5f, 2.f});
  Tensor out = lrelu.forward(input, true);
  EXPECT_FLOAT_EQ(out.flat(0), -0.2f);
  EXPECT_FLOAT_EQ(out.flat(1), -0.05f);
  EXPECT_FLOAT_EQ(out.flat(2), 0.5f);
  EXPECT_FLOAT_EQ(out.flat(3), 2.f);
}

TEST(Sigmoid, OutputInOpenUnitInterval) {
  Sigmoid sigmoid;
  Tensor input(Shape{3}, {-50.f, 0.f, 50.f});
  Tensor out = sigmoid.forward(input, true);
  EXPECT_GT(out.flat(0), 0.f);
  EXPECT_FLOAT_EQ(out.flat(1), 0.5f);
  EXPECT_LE(out.flat(2), 1.f);
}

TEST(Dense, ComputesAffineMap) {
  Rng rng(33);
  Dense dense(2, 1, rng);
  dense.parameters()[0]->value = Tensor(Shape{1, 2}, {2.f, -1.f});
  dense.parameters()[1]->value = Tensor(Shape{1}, {0.5f});
  Tensor input(Shape{1, 2}, {3.f, 4.f});
  Tensor out = dense.forward(input, true);
  EXPECT_FLOAT_EQ(out.at(0, 0), 2.f * 3.f - 4.f + 0.5f);
}

TEST(GlobalAvgPool, ReducesSpatialAxes) {
  Tensor input = Tensor::arange(8).reshape(Shape{1, 2, 2, 2});
  GlobalAvgPool pool;
  Tensor out = pool.forward(input, true);
  ASSERT_EQ(out.shape(), Shape({1, 2}));
  EXPECT_FLOAT_EQ(out.at(0, 0), 1.5f);  // mean of 0..3
  EXPECT_FLOAT_EQ(out.at(0, 1), 5.5f);  // mean of 4..7
}

TEST(Sequential, ChainsLayersAndCountsParameters) {
  Rng rng(34);
  Sequential net;
  net.emplace<Conv2d>(1, 4, 3, 1, 1, rng);
  net.emplace<LeakyReLU>(0.1f);
  net.emplace<Conv2d>(4, 1, 3, 1, 1, rng);
  Tensor out = net.forward(Tensor::zeros(Shape{1, 1, 6, 6}), true);
  EXPECT_EQ(out.shape(), Shape({1, 1, 6, 6}));
  // (4*1*9 + 4) + (1*4*9 + 1) parameters.
  EXPECT_EQ(net.parameter_count(), 40 + 37);
  EXPECT_EQ(net.size(), 3u);
}

TEST(Layer, ZeroGradClearsAccumulators) {
  Rng rng(35);
  Conv2d conv(1, 1, 3, 1, 1, rng);
  Tensor input = Tensor::randn(Shape{1, 1, 4, 4}, rng);
  (void)conv.forward(input, true);
  (void)conv.backward(Tensor::ones(Shape{1, 1, 4, 4}));
  EXPECT_GT(conv.parameters()[0]->grad.squared_norm(), 0.0);
  conv.zero_grad();
  EXPECT_EQ(conv.parameters()[0]->grad.squared_norm(), 0.0);
}

TEST(Layer, BackwardBeforeForwardThrows) {
  Rng rng(36);
  Conv2d conv(1, 1, 3, 1, 1, rng);
  EXPECT_THROW((void)conv.backward(Tensor::zeros(Shape{1, 1, 4, 4})),
               ContractViolation);
}

}  // namespace
}  // namespace mtsr::nn
