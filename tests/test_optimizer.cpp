// Tests for SGD and Adam: update math, convergence on a quadratic, and
// learning-rate plumbing.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/check.hpp"
#include "src/nn/optimizer.hpp"

namespace mtsr::nn {
namespace {

TEST(Sgd, SingleStepIsGradientDescent) {
  Parameter p("w", Tensor::full(Shape{2}, 1.f));
  p.grad.fill(0.5f);
  Sgd sgd({&p}, /*lr=*/0.1f);
  sgd.step();
  EXPECT_FLOAT_EQ(p.value.flat(0), 1.f - 0.1f * 0.5f);
}

TEST(Sgd, MomentumAccumulatesVelocity) {
  Parameter p("w", Tensor::zeros(Shape{1}));
  Sgd sgd({&p}, /*lr=*/1.f, /*momentum=*/0.5f);
  p.grad.fill(1.f);
  sgd.step();  // v = 1, w = -1
  EXPECT_FLOAT_EQ(p.value.flat(0), -1.f);
  sgd.step();  // v = 1.5, w = -2.5
  EXPECT_FLOAT_EQ(p.value.flat(0), -2.5f);
}

TEST(Adam, FirstStepHasUnitScaleViaBiasCorrection) {
  // With bias correction, the first Adam step is ≈ lr * sign(grad).
  Parameter p("w", Tensor::zeros(Shape{1}));
  p.grad.fill(0.3f);
  Adam adam({&p}, /*lr=*/0.01f);
  adam.step();
  EXPECT_NEAR(p.value.flat(0), -0.01f, 1e-5);
  EXPECT_EQ(adam.steps(), 1);
}

TEST(Adam, ConvergesOnQuadratic) {
  // Minimise f(w) = (w - 3)²; gradient 2(w - 3).
  Parameter p("w", Tensor::zeros(Shape{1}));
  Adam adam({&p}, /*lr=*/0.1f);
  for (int i = 0; i < 500; ++i) {
    adam.zero_grad();
    p.grad.flat(0) = 2.f * (p.value.flat(0) - 3.f);
    adam.step();
  }
  EXPECT_NEAR(p.value.flat(0), 3.f, 1e-2);
}

TEST(Adam, HandlesMultipleParameters) {
  Parameter a("a", Tensor::zeros(Shape{2}));
  Parameter b("b", Tensor::zeros(Shape{3}));
  Adam adam({&a, &b}, 0.05f);
  for (int i = 0; i < 400; ++i) {
    adam.zero_grad();
    for (std::int64_t j = 0; j < 2; ++j) {
      a.grad.flat(j) = 2.f * (a.value.flat(j) - 1.f);
    }
    for (std::int64_t j = 0; j < 3; ++j) {
      b.grad.flat(j) = 2.f * (b.value.flat(j) + 2.f);
    }
    adam.step();
  }
  EXPECT_NEAR(a.value.flat(0), 1.f, 5e-2);
  EXPECT_NEAR(b.value.flat(2), -2.f, 5e-2);
}

TEST(Optimizer, ZeroGradClearsAllParameters) {
  Parameter a("a", Tensor::zeros(Shape{2}));
  a.grad.fill(5.f);
  Sgd sgd({&a}, 0.1f);
  sgd.zero_grad();
  EXPECT_EQ(a.grad.squared_norm(), 0.0);
}

TEST(Optimizer, LearningRateIsMutable) {
  Parameter a("a", Tensor::zeros(Shape{1}));
  Adam adam({&a}, 0.1f);
  adam.set_learning_rate(0.01f);
  EXPECT_FLOAT_EQ(adam.learning_rate(), 0.01f);
  EXPECT_THROW(adam.set_learning_rate(-1.f), ContractViolation);
}

TEST(Optimizer, RejectsBadConstruction) {
  Parameter a("a", Tensor::zeros(Shape{1}));
  EXPECT_THROW(Sgd({&a}, 0.f), ContractViolation);
  EXPECT_THROW(Adam({&a}, 0.1f, 1.5f), ContractViolation);
}

}  // namespace
}  // namespace mtsr::nn
