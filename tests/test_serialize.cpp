// Round-trip and corruption tests for tensor serialization.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "src/common/rng.hpp"
#include "src/tensor/serialize.hpp"

namespace mtsr {
namespace {

TEST(Serialize, StreamRoundTrip) {
  Rng rng(7);
  Tensor t = Tensor::randn(Shape{2, 3, 4}, rng);
  std::stringstream buffer;
  write_tensor(buffer, t);
  Tensor back = read_tensor(buffer);
  ASSERT_EQ(back.shape(), t.shape());
  for (std::int64_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(back.flat(i), t.flat(i));
  }
}

TEST(Serialize, BadMagicRejected) {
  std::stringstream buffer;
  buffer << "NOTATENSORFILE................";
  EXPECT_THROW((void)read_tensor(buffer), std::runtime_error);
}

TEST(Serialize, TruncatedPayloadRejected) {
  Rng rng(8);
  Tensor t = Tensor::randn(Shape{10, 10}, rng);
  std::stringstream buffer;
  write_tensor(buffer, t);
  std::string data = buffer.str();
  data.resize(data.size() / 2);
  std::stringstream cut(data);
  EXPECT_THROW((void)read_tensor(cut), std::runtime_error);
}

TEST(Serialize, NamedCollectionRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "mtsr_serialize_test.bin")
          .string();
  Rng rng(9);
  std::vector<std::pair<std::string, Tensor>> tensors;
  tensors.emplace_back("weight", Tensor::randn(Shape{4, 4}, rng));
  tensors.emplace_back("bias", Tensor::randn(Shape{4}, rng));
  save_tensors(path, tensors);
  auto loaded = load_tensors(path);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].first, "weight");
  EXPECT_EQ(loaded[1].first, "bias");
  EXPECT_EQ(loaded[0].second.shape(), tensors[0].second.shape());
  for (std::int64_t i = 0; i < tensors[1].second.size(); ++i) {
    EXPECT_EQ(loaded[1].second.flat(i), tensors[1].second.flat(i));
  }
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileThrows) {
  EXPECT_THROW((void)load_tensors("/nonexistent/zipnet.bin"),
               std::runtime_error);
}

TEST(Serialize, SaveIsAtomic) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "mtsr_serialize_atomic.bin")
          .string();
  Rng rng(10);
  std::vector<std::pair<std::string, Tensor>> tensors;
  tensors.emplace_back("weight", Tensor::randn(Shape{4, 4}, rng));

  // A successful save never leaves its temp file behind.
  save_tensors(path, tensors);
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

  // Overwriting an existing file goes through the same temp + rename: the
  // old content is fully replaced, never torn.
  tensors.emplace_back("bias", Tensor::randn(Shape{4}, rng));
  save_tensors(path, tensors);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  EXPECT_EQ(load_tensors(path).size(), 2u);
  std::remove(path.c_str());

  // A failing save (unwritable directory) throws and leaves nothing —
  // neither the final path nor a temp file.
  const std::string bad = "/nonexistent/dir/model.bin";
  EXPECT_THROW(save_tensors(bad, tensors), std::runtime_error);
  EXPECT_FALSE(std::filesystem::exists(bad));
  EXPECT_FALSE(std::filesystem::exists(bad + ".tmp"));
}

}  // namespace
}  // namespace mtsr
