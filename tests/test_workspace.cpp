// Tests for the Workspace arena and the destination-passing (_into) tensor
// ops riding on it: bump/rewind semantics, statistics, parity of every
// _into op against its pure variant, packed-B GEMM determinism across pool
// sizes, and the allocation-regression contract (zero arena growth in
// steady state for a train step and a stitched full-frame prediction).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/common/check.hpp"
#include "src/common/parallel.hpp"
#include "src/common/rng.hpp"
#include "src/common/workspace.hpp"
#include "src/core/pipeline.hpp"
#include "src/data/milan.hpp"
#include "src/tensor/tensor_ops.hpp"

namespace mtsr {
namespace {

// Restores the default pool size when a test that resizes the pool exits.
class PoolGuard {
 public:
  PoolGuard() = default;
  ~PoolGuard() { set_num_threads(0); }
};

void expect_close(const Tensor& got, const Tensor& want, float tol = 1e-5f) {
  ASSERT_EQ(got.shape(), want.shape());
  for (std::int64_t i = 0; i < got.size(); ++i) {
    ASSERT_NEAR(got.flat(i), want.flat(i), tol) << "at flat index " << i;
  }
}

Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c(Shape{m, n});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float aik = a.data()[i * k + kk];
      for (std::int64_t j = 0; j < n; ++j) {
        c.data()[i * n + j] += aik * b.data()[kk * n + j];
      }
    }
  }
  return c;
}

// ---- Arena semantics -------------------------------------------------------

TEST(Workspace, AllocationsAreAlignedAndDisjoint) {
  Workspace ws;
  float* a = ws.alloc(7);
  float* b = ws.alloc(100);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 64, 0u);
  EXPECT_GE(b, a + 7);  // disjoint, bump-ordered
  a[0] = 1.f;
  b[99] = 2.f;
  EXPECT_EQ(a[0], 1.f);
  EXPECT_EQ(b[99], 2.f);
}

TEST(Workspace, ScopeRewindsAndCapacityIsReused) {
  Workspace ws;
  {
    Workspace::Scope scope(ws);
    (void)ws.alloc(1000);
    EXPECT_GT(ws.stats().live_bytes, 0);
  }
  EXPECT_EQ(ws.stats().live_bytes, 0);
  const auto grown = ws.stats();
  EXPECT_GT(grown.capacity_bytes, 0);
  // Re-running the same pattern must not grow the arena.
  {
    Workspace::Scope scope(ws);
    (void)ws.alloc(1000);
  }
  EXPECT_EQ(ws.stats().capacity_bytes, grown.capacity_bytes);
  EXPECT_EQ(ws.stats().growth_events, grown.growth_events);
}

TEST(Workspace, GrowthNeverMovesLiveAllocations) {
  Workspace ws;
  float* a = ws.alloc(64);
  a[0] = 42.f;
  // Force growth well past the first block.
  for (int i = 0; i < 8; ++i) (void)ws.alloc(200 * 1024);
  EXPECT_EQ(a[0], 42.f);  // original block still alive and untouched
  EXPECT_GE(ws.stats().growth_events, 2);
  ws.release_all();
  EXPECT_EQ(ws.stats().live_bytes, 0);
  // After a full drain the chain consolidates; capacity is preserved.
  const auto s = ws.stats();
  float* b = ws.alloc(64);
  (void)b;
  EXPECT_EQ(ws.stats().capacity_bytes, s.capacity_bytes);
  EXPECT_EQ(ws.stats().growth_events, s.growth_events);
}

TEST(Workspace, NestedCheckpointsRestoreExactPositions) {
  Workspace ws;
  float* a = ws.alloc(32);
  const auto cp = ws.checkpoint();
  float* b = ws.alloc(32);
  ws.rewind(cp);
  float* b2 = ws.alloc(32);
  EXPECT_EQ(b, b2);  // same position after rewind
  (void)a;
}

TEST(Workspace, OutOfOrderRewindThrows) {
  Workspace ws;
  const auto lo = ws.checkpoint();
  (void)ws.alloc(64);
  const auto hi = ws.checkpoint();
  ws.rewind(lo);
  EXPECT_THROW(ws.rewind(hi), ContractViolation);
}

TEST(Workspace, WsMatrixMarkReleasesExactlyTheMatrix) {
  Workspace ws;
  float* before = ws.alloc(16);
  const auto base = ws.checkpoint();
  WsMatrix m = ws_matrix(ws, 8, 8);
  EXPECT_FALSE(m.empty());
  EXPECT_EQ(m.size(), 64);
  m.data[63] = 5.f;
  ws.rewind(m.mark);
  const auto after = ws.checkpoint();
  EXPECT_EQ(base.block, after.block);
  EXPECT_EQ(base.used, after.used);
  (void)before;
}

// ---- _into parity against the pure variants --------------------------------

TEST(IntoOps, MatmulIntoMatchesPure) {
  Rng rng(61);
  for (auto [m, k, n] : {std::array<std::int64_t, 3>{37, 53, 41},
                         std::array<std::int64_t, 3>{3, 17, 301},
                         std::array<std::int64_t, 3>{129, 300, 2},
                         std::array<std::int64_t, 3>{1, 1, 1}}) {
    Tensor a = Tensor::randn(Shape{m, k}, rng);
    Tensor b = Tensor::randn(Shape{k, n}, rng);
    Tensor want = matmul(a, b);
    Tensor got(Shape{m, n});
    matmul_into(a.data(), b.data(), got.data(), m, k, n);
    expect_close(got, want);
    // Accumulate form: c += a*b on top of existing contents.
    Tensor acc = Tensor::ones(Shape{m, n});
    matmul_into(a.data(), b.data(), acc.data(), m, k, n, /*accumulate=*/true);
    expect_close(acc, want.add_scalar(1.f), 1e-4f);
  }
}

TEST(IntoOps, MatmulTnIntoMatchesPure) {
  Rng rng(62);
  Tensor a = Tensor::randn(Shape{53, 37}, rng);  // (k, m)
  Tensor b = Tensor::randn(Shape{53, 41}, rng);  // (k, n)
  Tensor want = matmul_tn(a, b);
  Tensor got(Shape{37, 41});
  matmul_tn_into(a.data(), b.data(), got.data(), 53, 37, 41);
  expect_close(got, want);
  Tensor acc = Tensor::ones(Shape{37, 41});
  matmul_tn_into(a.data(), b.data(), acc.data(), 53, 37, 41, true);
  expect_close(acc, want.add_scalar(1.f), 1e-4f);
}

TEST(IntoOps, MatmulNtIntoMatchesPure) {
  Rng rng(63);
  Tensor a = Tensor::randn(Shape{37, 53}, rng);  // (m, k)
  Tensor b = Tensor::randn(Shape{41, 53}, rng);  // (n, k)
  Tensor want = matmul_nt(a, b);
  Tensor got(Shape{37, 41});
  matmul_nt_into(a.data(), b.data(), got.data(), 37, 53, 41);
  expect_close(got, want);
  Tensor acc = Tensor::ones(Shape{37, 41});
  matmul_nt_into(a.data(), b.data(), acc.data(), 37, 53, 41, true);
  expect_close(acc, want.add_scalar(1.f), 1e-4f);
}

TEST(IntoOps, TransposeIntoMatchesPure) {
  Rng rng(64);
  Tensor a = Tensor::randn(Shape{67, 45}, rng);
  Tensor want = transpose(a);
  Tensor got(Shape{45, 67});
  transpose_into(a.data(), 67, 45, got.data());
  expect_close(got, want, 0.f);
}

TEST(IntoOps, Im2colAndCol2imBatchedIntoMatchPure) {
  Rng rng(65);
  const std::int64_t n = 3, c = 2, h = 7, w = 6;
  const int kh = 3, kw = 2, sh = 2, sw = 1, ph = 1, pw = 0;
  Tensor input = Tensor::randn(Shape{n, c, h, w}, rng);
  Tensor want = im2col_batched(input, kh, kw, sh, sw, ph, pw);
  Tensor got(want.shape());
  im2col_batched_into(input.data(), n, c, h, w, kh, kw, sh, sw, ph, pw,
                      got.data());
  expect_close(got, want, 0.f);

  Tensor back_want = col2im_batched(want, n, c, h, w, kh, kw, sh, sw, ph, pw);
  Tensor back(Shape{n, c, h, w});
  back.fill(7.f);  // _into must zero the destination before scattering
  col2im_batched_into(want.data(), n, c, h, w, kh, kw, sh, sw, ph, pw,
                      back.data());
  expect_close(back, back_want, 0.f);
}

TEST(IntoOps, Vol2colAndCol2volBatchedIntoMatchPure) {
  Rng rng(66);
  const std::int64_t n = 2, c = 2, d = 3, h = 5, w = 4;
  const int kd = 3, kh = 3, kw = 3, sd = 1, sh = 1, sw = 1, pd = 1, ph = 1,
            pw = 1;
  Tensor input = Tensor::randn(Shape{n, c, d, h, w}, rng);
  Tensor want = vol2col_batched(input, kd, kh, kw, sd, sh, sw, pd, ph, pw);
  Tensor got(want.shape());
  vol2col_batched_into(input.data(), n, c, d, h, w, kd, kh, kw, sd, sh, sw,
                       pd, ph, pw, got.data());
  expect_close(got, want, 0.f);

  Tensor back_want =
      col2vol_batched(want, n, c, d, h, w, kd, kh, kw, sd, sh, sw, pd, ph, pw);
  Tensor back(Shape{n, c, d, h, w});
  back.fill(-3.f);
  col2vol_batched_into(want.data(), n, c, d, h, w, kd, kh, kw, sd, sh, sw,
                       pd, ph, pw, back.data());
  expect_close(back, back_want, 0.f);
}

TEST(IntoOps, ChannelMajorIntoMatchesPure) {
  Rng rng(67);
  Tensor x = Tensor::randn(Shape{3, 4, 5, 2}, rng);
  Tensor want = batch_to_channel_major(x);
  Tensor got(want.shape());
  batch_to_channel_major_into(x.data(), 3, 4, 10, got.data());
  expect_close(got, want, 0.f);

  Tensor back_want = channel_major_to_batch(want, x.shape());
  Tensor back(x.shape());
  channel_major_to_batch_into(want.data(), 3, 4, 10, back.data());
  expect_close(back, back_want, 0.f);
}

TEST(IntoOps, UpsampleNearestIntoMatchesPureAndFusesScale) {
  Rng rng(68);
  Tensor x = Tensor::randn(Shape{2, 3, 4}, rng);
  Tensor want = upsample_nearest2d(x, 3);
  Tensor got(want.shape());
  upsample_nearest2d_into(x.data(), 2, 3, 4, 3, 1.f, got.data());
  expect_close(got, want, 0.f);
  Tensor scaled(want.shape());
  upsample_nearest2d_into(x.data(), 2, 3, 4, 3, 0.25f, scaled.data());
  expect_close(scaled, want.mul_scalar(0.25f), 0.f);
}

// ---- Packed-B GEMM determinism ---------------------------------------------

TEST(PackedBGemm, WideLoweringShapesMatchNaive) {
  // Conv-lowering geometry: short A (out-channels), enormous B (columns).
  Rng rng(69);
  for (auto [m, k, n] : {std::array<std::int64_t, 3>{8, 72, 3000},
                         std::array<std::int64_t, 3>{6, 54, 130},
                         std::array<std::int64_t, 3>{32, 300, 513}}) {
    Tensor a = Tensor::randn(Shape{m, k}, rng);
    Tensor b = Tensor::randn(Shape{k, n}, rng);
    expect_close(matmul(a, b), naive_matmul(a, b), 1e-4f);
  }
}

TEST(PackedBGemm, WideProductBitIdenticalAcrossPoolSizes) {
  PoolGuard guard;
  Rng rng(70);
  // Wide enough that several j-panels exist and both dispatch paths and
  // panel edges are exercised.
  Tensor a = Tensor::randn(Shape{9, 130}, rng);
  Tensor b = Tensor::randn(Shape{130, 1500}, rng);
  auto run = [&] { return matmul(a, b); };
  set_num_threads(1);
  Tensor serial = run();
  set_num_threads(2);
  Tensor two = run();
  set_num_threads(0);
  Tensor hw = run();
  ASSERT_EQ(serial.shape(), two.shape());
  EXPECT_EQ(std::memcmp(serial.data(), two.data(),
                        static_cast<std::size_t>(serial.size()) *
                            sizeof(float)),
            0);
  EXPECT_EQ(std::memcmp(serial.data(), hw.data(),
                        static_cast<std::size_t>(serial.size()) *
                            sizeof(float)),
            0);
}

// ---- Allocation regression -------------------------------------------------

data::TrafficDataset tiny_dataset(std::int64_t side, int frames) {
  data::MilanConfig config;
  config.rows = side;
  config.cols = side;
  config.num_hotspots = 10;
  config.seed = 170;
  return data::TrafficDataset(
      data::MilanTrafficGenerator(config).generate(60, frames), 10);
}

core::PipelineConfig tiny_pipeline_config() {
  core::PipelineConfig config;
  config.instance = data::MtsrInstance::kUp2;
  config.window = 8;
  config.temporal_length = 2;
  config.zipnet.base_channels = 3;
  config.zipnet.zipper_modules = 3;
  config.zipnet.zipper_channels = 6;
  config.zipnet.final_channels = 8;
  config.discriminator.base_channels = 2;
  config.trainer.batch_size = 4;
  config.trainer.learning_rate = 2e-3f;
  config.pretrain_steps = 4;
  config.gan_rounds = 2;
  return config;
}

TEST(AllocationRegression, SteadyStateTrainStepHasZeroArenaGrowth) {
  data::TrafficDataset dataset = tiny_dataset(16, 40);
  core::MtsrPipeline pipeline(tiny_pipeline_config(), dataset);

  // Warm-up: pretrain steps plus full adversarial rounds touch every
  // layer's forward/backward path and push the arena to its high-water
  // capacity.
  pipeline.train();

  Workspace& ws = Workspace::tls();
  const auto warm = ws.stats();
  // Steady state: further adversarial rounds and pretrain steps must not
  // allocate any new arena capacity, and every step must drain fully.
  pipeline.train();
  const auto after = ws.stats();
  EXPECT_EQ(after.capacity_bytes, warm.capacity_bytes);
  EXPECT_EQ(after.growth_events, warm.growth_events);
  EXPECT_EQ(after.live_bytes, warm.live_bytes);
  EXPECT_GT(after.alloc_count, warm.alloc_count);  // the arena was used
}

TEST(AllocationRegression, SteadyStatePredictFrameHasZeroArenaGrowth) {
  data::TrafficDataset dataset = tiny_dataset(16, 40);
  core::MtsrPipeline pipeline(tiny_pipeline_config(), dataset);
  const std::int64_t t = dataset.test_range().begin + 2;

  // Warm-up stitched full-frame prediction. Since the serving redesign the
  // generator's scratch planes into predict_frame's session arenas (the
  // rotating workspace pair), surfaced through Engine::stats().
  Tensor first = pipeline.predict_frame(t);
  ASSERT_TRUE(first.all_finite());

  auto session_arena = [&] {
    return pipeline.engine().stats().sessions.at(0).arena;
  };
  const auto warm = session_arena();
  for (int i = 0; i < 3; ++i) {
    Tensor pred = pipeline.predict_frame(t);
    ASSERT_EQ(pred.shape(), first.shape());
  }
  const auto after = session_arena();
  EXPECT_EQ(after.capacity_bytes, warm.capacity_bytes);
  EXPECT_EQ(after.growth_events, warm.growth_events);
  EXPECT_EQ(after.live_bytes, warm.live_bytes);
  EXPECT_GT(after.alloc_count, warm.alloc_count);
}

}  // namespace
}  // namespace mtsr
