// Tests for the common utilities: Rng determinism and distributions, table
// formatting, CSV round-trips, heat-map rendering, CLI parsing.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "src/common/check.hpp"
#include "src/common/cli.hpp"
#include "src/common/csv.hpp"
#include "src/common/render.hpp"
#include "src/common/rng.hpp"
#include "src/common/table.hpp"

namespace mtsr {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (a.uniform() != b.uniform()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(4);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= (v == 0);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsApproximatelyCorrect) {
  Rng rng(5);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(1.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, PoissonMeanMatches) {
  Rng rng(6);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.poisson(3.5);
  EXPECT_NEAR(sum / n, 3.5, 0.1);
}

TEST(Rng, CategoricalFollowsWeights) {
  Rng rng(7);
  std::vector<double> weights{1.0, 3.0};
  int count1 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.categorical(weights) == 1) ++count1;
  }
  EXPECT_NEAR(static_cast<double>(count1) / n, 0.75, 0.03);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(8);
  Rng child = a.fork();
  EXPECT_NE(a.uniform(), child.uniform());
}

TEST(Rng, InvalidArgumentsThrow) {
  Rng rng(9);
  EXPECT_THROW((void)rng.uniform(5.0, 2.0), ContractViolation);
  EXPECT_THROW((void)rng.bernoulli(1.5), ContractViolation);
  EXPECT_THROW((void)rng.categorical({}), ContractViolation);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"method", "NRMSE"});
  t.add_row({"bicubic", "0.41"});
  t.add_row({"zipnet-gan", "0.22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| method     |"), std::string::npos);
  EXPECT_NE(out.find("| zipnet-gan |"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, CellCountMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
}

TEST(Fmt, FormatsDecimals) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_sci(1234.5, 2), "1.23e+03");
}

TEST(Csv, RoundTripWithQuoting) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "mtsr_csv_test.csv").string();
  write_csv(path, {"name", "value"},
            {{"plain", "1"}, {"with,comma", "2"}, {"with\"quote", "3"}});
  auto rows = read_csv(path);
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0][0], "name");
  EXPECT_EQ(rows[2][0], "with,comma");
  EXPECT_EQ(rows[3][0], "with\"quote");
  std::remove(path.c_str());
}

TEST(Render, HeatmapDimensionsAndRamp) {
  std::vector<float> grid = {0.f, 1.f, 2.f, 3.f};
  RenderOptions options;
  options.ramp = " #";
  const std::string out = render_heatmap(grid, 2, 2, options);
  // Values 0,1 normalise below 0.5 -> ' '; 2,3 normalise above -> '#'.
  EXPECT_EQ(out, "  \n##\n");
}

TEST(Render, DownsamplesWideGrids) {
  std::vector<float> grid(100 * 100, 1.f);
  RenderOptions options;
  options.max_width = 25;
  const std::string out = render_heatmap(grid, 100, 100, options);
  // Each rendered line should be 25 characters + newline.
  EXPECT_EQ(out.find('\n'), 25u);
}

TEST(Render, SizeMismatchThrows) {
  std::vector<float> grid(5, 0.f);
  EXPECT_THROW((void)render_heatmap(grid, 2, 2), ContractViolation);
}

TEST(Cli, ParsesTypedFlags) {
  CliParser cli("test", "test program");
  cli.add_int("grid", 40, "grid side");
  cli.add_double("lr", 1e-4, "learning rate");
  cli.add_string("mode", "up-4", "instance");
  cli.add_flag("verbose", "chatty output");
  const char* argv[] = {"prog", "--grid", "64", "--lr=0.001", "--verbose"};
  ASSERT_TRUE(cli.parse(5, argv));
  EXPECT_EQ(cli.get_int("grid"), 64);
  EXPECT_DOUBLE_EQ(cli.get_double("lr"), 0.001);
  EXPECT_EQ(cli.get_string("mode"), "up-4");
  EXPECT_TRUE(cli.get_flag("verbose"));
}

TEST(Cli, UnknownFlagThrows) {
  CliParser cli("test", "test program");
  const char* argv[] = {"prog", "--bogus", "1"};
  EXPECT_THROW((void)cli.parse(3, argv), ContractViolation);
}

TEST(Cli, HelpReturnsFalse) {
  CliParser cli("test", "test program");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
}

}  // namespace
}  // namespace mtsr
