// Analytic-vs-numerical gradient checks for every layer — the main
// correctness oracle for the from-scratch neural-network framework. Each
// check compares the layer's backward() against central differences of a
// random linear probe loss, over both the input and all parameters.
#include <gtest/gtest.h>

#include <array>
#include <memory>

#include "src/nn/activations.hpp"
#include "src/nn/batchnorm.hpp"
#include "src/nn/conv2d.hpp"
#include "src/nn/conv3d.hpp"
#include "src/nn/conv_transpose2d.hpp"
#include "src/nn/conv_transpose3d.hpp"
#include "src/nn/dense.hpp"
#include "src/nn/grad_check.hpp"
#include "src/nn/pooling.hpp"
#include "src/nn/sequential.hpp"

namespace mtsr::nn {
namespace {

// A coordinate fails only when BOTH its absolute error (float32 noise
// floor) and relative error exceed tolerance — see grad_check.hpp.
void expect_gradients_match(Layer& layer, const Tensor& input, Rng& rng) {
  const GradCheckResult result = check_layer_gradients(layer, input, rng);
  EXPECT_EQ(result.violations, 0)
      << layer.name() << " max_abs=" << result.max_abs_error
      << " max_rel=" << result.max_rel_error;
}

TEST(GradCheck, Conv2dBasic) {
  Rng rng(100);
  Conv2d layer(2, 3, 3, 1, 1, rng);
  expect_gradients_match(layer, Tensor::randn(Shape{2, 2, 5, 5}, rng), rng);
}

TEST(GradCheck, Conv2dStride2NoBias) {
  Rng rng(101);
  Conv2d layer(1, 2, 3, 2, 1, rng, /*bias=*/false);
  expect_gradients_match(layer, Tensor::randn(Shape{1, 1, 6, 6}, rng), rng);
}

TEST(GradCheck, Conv2dKernel1) {
  Rng rng(102);
  Conv2d layer(3, 2, 1, 1, 0, rng);
  expect_gradients_match(layer, Tensor::randn(Shape{2, 3, 4, 4}, rng), rng);
}

TEST(GradCheck, Conv3dBasic) {
  Rng rng(103);
  Conv3d layer(1, 2, {3, 3, 3}, {1, 1, 1}, {1, 1, 1}, rng);
  expect_gradients_match(layer, Tensor::randn(Shape{2, 1, 3, 4, 4}, rng), rng);
}

TEST(GradCheck, Conv3dAnisotropicKernel) {
  Rng rng(104);
  Conv3d layer(2, 1, {1, 3, 3}, {1, 1, 1}, {0, 1, 1}, rng);
  expect_gradients_match(layer, Tensor::randn(Shape{1, 2, 2, 4, 3}, rng), rng);
}

TEST(GradCheck, ConvTranspose2dFactor2) {
  Rng rng(105);
  ConvTranspose2d layer(2, 2, 4, 2, 1, rng);
  expect_gradients_match(layer, Tensor::randn(Shape{2, 2, 3, 3}, rng), rng);
}

TEST(GradCheck, ConvTranspose2dNoBias) {
  Rng rng(106);
  ConvTranspose2d layer(1, 3, 3, 1, 1, rng, /*bias=*/false);
  expect_gradients_match(layer, Tensor::randn(Shape{1, 1, 4, 4}, rng), rng);
}

TEST(GradCheck, ConvTranspose3dSpatialUpscale) {
  Rng rng(107);
  // The ZipNet upscaling geometry: depth preserved, spatial doubled.
  ConvTranspose3d layer(1, 2, {3, 4, 4}, {1, 2, 2}, {1, 1, 1}, rng);
  expect_gradients_match(layer, Tensor::randn(Shape{1, 1, 3, 3, 3}, rng), rng);
}

TEST(GradCheck, ConvTranspose3dFactor5) {
  Rng rng(108);
  ConvTranspose3d layer(1, 1, {3, 7, 7}, {1, 5, 5}, {1, 1, 1}, rng);
  expect_gradients_match(layer, Tensor::randn(Shape{1, 1, 2, 2, 2}, rng), rng);
}

TEST(GradCheck, BatchNorm2d) {
  Rng rng(109);
  BatchNorm layer(3);
  expect_gradients_match(layer, Tensor::randn(Shape{4, 3, 3, 3}, rng), rng);
}

TEST(GradCheck, BatchNorm3d) {
  Rng rng(110);
  BatchNorm layer(2);
  expect_gradients_match(layer, Tensor::randn(Shape{3, 2, 2, 3, 3}, rng), rng);
}

TEST(GradCheck, LeakyReLU) {
  Rng rng(111);
  LeakyReLU layer(0.1f);
  expect_gradients_match(layer, Tensor::randn(Shape{2, 3, 4, 4}, rng), rng);
}

TEST(GradCheck, Sigmoid) {
  Rng rng(112);
  Sigmoid layer;
  expect_gradients_match(layer, Tensor::randn(Shape{4, 5}, rng), rng);
}

TEST(GradCheck, TanhLayer) {
  Rng rng(113);
  Tanh layer;
  expect_gradients_match(layer, Tensor::randn(Shape{3, 4}, rng), rng);
}

TEST(GradCheck, ReLULayer) {
  Rng rng(114);
  ReLU layer;
  // Shift inputs away from the kink to keep finite differences clean.
  Tensor input = Tensor::randn(Shape{2, 8}, rng);
  input.apply_([](float v) { return std::abs(v) < 0.05f ? v + 0.2f : v; });
  expect_gradients_match(layer, input, rng);
}

TEST(GradCheck, DenseLayer) {
  Rng rng(115);
  Dense layer(6, 4, rng);
  expect_gradients_match(layer, Tensor::randn(Shape{3, 6}, rng), rng);
}

TEST(GradCheck, GlobalAvgPoolLayer) {
  Rng rng(116);
  GlobalAvgPool layer;
  expect_gradients_match(layer, Tensor::randn(Shape{2, 3, 4, 4}, rng), rng);
}

TEST(GradCheck, AvgPool2dLayer) {
  Rng rng(117);
  AvgPool2d layer(2);
  expect_gradients_match(layer, Tensor::randn(Shape{2, 2, 4, 4}, rng), rng);
}

TEST(GradCheck, SequentialComposition) {
  Rng rng(118);
  Sequential net;
  net.emplace<Conv2d>(1, 2, 3, 1, 1, rng);
  net.emplace<BatchNorm>(2);
  net.emplace<LeakyReLU>(0.1f);
  net.emplace<Conv2d>(2, 1, 3, 1, 1, rng);
  expect_gradients_match(net, Tensor::randn(Shape{2, 1, 5, 5}, rng), rng);
}

// Parameterised sweep: Conv2d gradients across kernel/stride/padding.
struct Conv2dCase {
  int kernel, stride, padding;
  std::int64_t in_ch, out_ch, extent;
};

class Conv2dGradSweep : public ::testing::TestWithParam<Conv2dCase> {};

TEST_P(Conv2dGradSweep, MatchesNumericalGradients) {
  const auto p = GetParam();
  Rng rng(200 + p.kernel * 10 + p.stride);
  Conv2d layer(p.in_ch, p.out_ch, p.kernel, p.stride, p.padding, rng);
  Tensor input = Tensor::randn(Shape{2, p.in_ch, p.extent, p.extent}, rng);
  expect_gradients_match(layer, input, rng);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Conv2dGradSweep,
    ::testing::Values(Conv2dCase{1, 1, 0, 1, 1, 4},
                      Conv2dCase{3, 1, 1, 1, 2, 5},
                      Conv2dCase{3, 2, 1, 2, 1, 6},
                      Conv2dCase{5, 1, 2, 1, 1, 6},
                      Conv2dCase{2, 2, 0, 2, 2, 4}));

// Parameterised sweep: ConvTranspose2d across upscale factors.
class Deconv2dGradSweep : public ::testing::TestWithParam<int> {};

TEST_P(Deconv2dGradSweep, MatchesNumericalGradients) {
  const int factor = GetParam();
  Rng rng(300 + factor);
  ConvTranspose2d layer(1, 1, factor + 2, factor, 1, rng);
  Tensor input = Tensor::randn(Shape{1, 1, 3, 3}, rng);
  expect_gradients_match(layer, input, rng);
}

INSTANTIATE_TEST_SUITE_P(Factors, Deconv2dGradSweep,
                         ::testing::Values(2, 3, 4, 5));

}  // namespace
}  // namespace mtsr::nn
