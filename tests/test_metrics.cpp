// Tests for the paper's evaluation metrics (Eqs. 11-13): known values,
// invariants and degenerate cases.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/check.hpp"
#include "src/common/rng.hpp"
#include "src/metrics/metrics.hpp"

namespace mtsr::metrics {
namespace {

TEST(Nrmse, ZeroForPerfectPrediction) {
  Tensor t = Tensor::full(Shape{4, 4}, 3.f);
  EXPECT_DOUBLE_EQ(nrmse(t, t), 0.0);
}

TEST(Nrmse, KnownValue) {
  // truth = 2 everywhere, prediction off by 1 everywhere:
  // RMSE = 1, mean = 2 -> NRMSE = 0.5.
  Tensor truth = Tensor::full(Shape{10}, 2.f);
  Tensor pred = Tensor::full(Shape{10}, 3.f);
  EXPECT_NEAR(nrmse(pred, truth), 0.5, 1e-9);
}

TEST(Nrmse, ScaleInvariant) {
  // Scaling both prediction and truth leaves NRMSE unchanged — the property
  // the paper uses it for ("comparing data sets with different scales").
  Rng rng(10);
  Tensor truth = Tensor::uniform(Shape{8, 8}, rng, 1.f, 2.f);
  Tensor pred = Tensor::uniform(Shape{8, 8}, rng, 1.f, 2.f);
  const double base = nrmse(pred, truth);
  const double scaled = nrmse(pred.mul_scalar(7.f), truth.mul_scalar(7.f));
  EXPECT_NEAR(base, scaled, 1e-6);
}

TEST(Nrmse, ZeroMeanTruthThrows) {
  Tensor truth = Tensor::zeros(Shape{4});
  Tensor pred = Tensor::ones(Shape{4});
  EXPECT_THROW((void)nrmse(pred, truth), ContractViolation);
}

TEST(Psnr, InfiniteForIdenticalInputs) {
  Tensor t = Tensor::full(Shape{4}, 2.f);
  EXPECT_TRUE(std::isinf(psnr(t, t, 100.0)));
}

TEST(Psnr, KnownValue) {
  // MSE = 4, peak = 100: PSNR = 20*log10(100) - 10*log10(4) ≈ 33.98 dB.
  Tensor truth = Tensor::full(Shape{5}, 10.f);
  Tensor pred = Tensor::full(Shape{5}, 12.f);
  EXPECT_NEAR(psnr(pred, truth, 100.0), 40.0 - 10.0 * std::log10(4.0), 1e-9);
}

TEST(Psnr, MonotoneInError) {
  Tensor truth = Tensor::full(Shape{16}, 10.f);
  Tensor near = Tensor::full(Shape{16}, 10.5f);
  Tensor far = Tensor::full(Shape{16}, 14.f);
  EXPECT_GT(psnr(near, truth, 100.0), psnr(far, truth, 100.0));
}

TEST(Ssim, OneForIdenticalInputs) {
  Rng rng(11);
  Tensor t = Tensor::uniform(Shape{8, 8}, rng, 1.f, 5.f);
  EXPECT_NEAR(ssim(t, t), 1.0, 1e-6);
}

TEST(Ssim, BoundedAboveByOne) {
  Rng rng(12);
  Tensor truth = Tensor::uniform(Shape{8, 8}, rng, 1.f, 5.f);
  Tensor pred = Tensor::uniform(Shape{8, 8}, rng, 1.f, 5.f);
  EXPECT_LE(ssim(pred, truth), 1.0 + 1e-9);
}

TEST(Ssim, AntiCorrelatedScoresLow) {
  // A structurally inverted prediction must score far below a faithful one.
  Rng rng(13);
  Tensor truth = Tensor::uniform(Shape{64}, rng, 0.f, 1.f);
  Tensor inverted = truth.apply([](float v) { return 1.f - v; });
  EXPECT_LT(ssim(inverted, truth), 0.5);
}

TEST(Ssim, CustomStabilisersAccepted) {
  Tensor truth = Tensor::full(Shape{4}, 2.f);
  Tensor pred = Tensor::full(Shape{4}, 2.f);
  EXPECT_NEAR(ssim(pred, truth, 1e-4, 9e-4), 1.0, 1e-9);
}

TEST(Mae, KnownValue) {
  Tensor truth(Shape{4}, {0.f, 0.f, 0.f, 0.f});
  Tensor pred(Shape{4}, {1.f, -1.f, 2.f, -2.f});
  EXPECT_DOUBLE_EQ(mae(pred, truth), 1.5);
}

TEST(Pearson, PerfectCorrelation) {
  Tensor truth = Tensor::arange(10);
  Tensor pred = truth.mul_scalar(3.f).add_scalar(7.f);
  EXPECT_NEAR(pearson(pred, truth), 1.0, 1e-6);
}

TEST(Pearson, ZeroVarianceGivesZero) {
  Tensor truth = Tensor::arange(10);
  Tensor flat = Tensor::full(Shape{10}, 5.f);
  EXPECT_DOUBLE_EQ(pearson(flat, truth), 0.0);
}

TEST(Metrics, ShapeMismatchThrows) {
  Tensor a(Shape{4});
  Tensor b(Shape{5});
  EXPECT_THROW((void)nrmse(a, b), ContractViolation);
  EXPECT_THROW((void)psnr(a, b, 1.0), ContractViolation);
  EXPECT_THROW((void)ssim(a, b), ContractViolation);
}

TEST(MetricAccumulator, AveragesSnapshots) {
  MetricAccumulator acc(100.0);
  Tensor truth = Tensor::full(Shape{4}, 10.f);
  acc.add(Tensor::full(Shape{4}, 10.f), truth);  // perfect
  acc.add(Tensor::full(Shape{4}, 12.f), truth);  // NRMSE 0.2
  EXPECT_EQ(acc.count(), 2);
  EXPECT_NEAR(acc.mean_nrmse(), 0.1, 1e-9);
  EXPECT_GT(acc.mean_psnr(), 0.0);
  EXPECT_FALSE(acc.summary().empty());
}

TEST(MetricAccumulator, EmptyAccumulatorThrows) {
  MetricAccumulator acc(1.0);
  EXPECT_THROW((void)acc.mean_nrmse(), ContractViolation);
}

}  // namespace
}  // namespace mtsr::metrics
