// Integration tests: the full MTSR pipeline (dataset -> augmentation ->
// ZipNet(-GAN) training -> stitched full-grid prediction -> metrics) on tiny
// geometries, across all four Table-1 instances.
#include <gtest/gtest.h>

#include "src/baselines/super_resolver.hpp"
#include "src/common/check.hpp"
#include "src/core/pipeline.hpp"
#include "src/data/milan.hpp"
#include "src/metrics/metrics.hpp"

namespace mtsr::core {
namespace {

data::TrafficDataset tiny_dataset(std::int64_t side, int frames,
                                  std::uint64_t seed = 170) {
  data::MilanConfig config;
  config.rows = side;
  config.cols = side;
  config.num_hotspots = 10;
  config.seed = seed;
  return data::TrafficDataset(
      data::MilanTrafficGenerator(config).generate(60, frames), 10);
}

PipelineConfig tiny_pipeline_config(data::MtsrInstance instance,
                                    std::int64_t window) {
  PipelineConfig config;
  config.instance = instance;
  config.window = window;
  config.temporal_length = 2;
  config.zipnet.base_channels = 3;
  config.zipnet.zipper_modules = 3;
  config.zipnet.zipper_channels = 6;
  config.zipnet.final_channels = 8;
  config.discriminator.base_channels = 2;
  config.trainer.batch_size = 4;
  config.trainer.learning_rate = 2e-3f;
  config.pretrain_steps = 80;
  config.gan_rounds = 10;
  return config;
}

TEST(Pipeline, TrainPredictEvaluateUp2) {
  data::TrafficDataset dataset = tiny_dataset(16, 40);
  MtsrPipeline pipeline(tiny_pipeline_config(data::MtsrInstance::kUp2, 8),
                        dataset);
  pipeline.train();
  EXPECT_EQ(pipeline.pretrain_losses().size(), 80u);
  EXPECT_EQ(pipeline.gan_history().size(), 10u);

  const std::int64_t t = dataset.test_range().begin + 2;
  Tensor prediction = pipeline.predict_frame(t);
  EXPECT_EQ(prediction.shape(), dataset.frame(t).shape());
  EXPECT_TRUE(prediction.all_finite());

  auto metrics_acc = pipeline.evaluate(3);
  EXPECT_EQ(metrics_acc.count(), 3);
  EXPECT_LT(metrics_acc.mean_nrmse(), 2.0);  // sane error regime
}

TEST(Pipeline, BeatsUniformInterpolationAfterTraining) {
  // The headline qualitative claim, at CPU scale: a trained ZipNet beats
  // the operators' uniform-distribution assumption.
  data::TrafficDataset dataset = tiny_dataset(16, 60, 171);
  PipelineConfig config = tiny_pipeline_config(data::MtsrInstance::kUp4, 8);
  config.pretrain_steps = 250;
  config.gan_rounds = 0;
  MtsrPipeline pipeline(config, dataset);
  pipeline.train_pretrain_only();

  baselines::UniformInterpolator uniform;
  auto layout = data::make_layout(data::MtsrInstance::kUp4, 16, 16);
  metrics::MetricAccumulator nn_acc(dataset.peak());
  metrics::MetricAccumulator uniform_acc(dataset.peak());
  for (std::int64_t t = dataset.test_range().begin + 2;
       t < dataset.test_range().begin + 6; ++t) {
    nn_acc.add(pipeline.predict_frame(t), dataset.frame(t));
    uniform_acc.add(uniform.super_resolve(dataset.frame(t), *layout),
                    dataset.frame(t));
  }
  EXPECT_LT(nn_acc.mean_nrmse(), uniform_acc.mean_nrmse());
}

TEST(Pipeline, MixtureInstanceEndToEnd) {
  data::TrafficDataset dataset = tiny_dataset(40, 24, 172);
  PipelineConfig config =
      tiny_pipeline_config(data::MtsrInstance::kMixture, 40);
  config.pretrain_steps = 30;
  config.gan_rounds = 3;
  config.stitch_stride = 40;  // single window
  MtsrPipeline pipeline(config, dataset);
  pipeline.train();
  Tensor prediction = pipeline.predict_frame(dataset.test_range().begin + 2);
  EXPECT_EQ(prediction.shape(), Shape({40, 40}));
  EXPECT_TRUE(prediction.all_finite());
}

TEST(Pipeline, Up10InstanceBuildsThreeUpscaleBlocks) {
  data::TrafficDataset dataset = tiny_dataset(20, 16, 173);
  PipelineConfig config = tiny_pipeline_config(data::MtsrInstance::kUp10, 20);
  config.pretrain_steps = 5;
  config.gan_rounds = 0;
  MtsrPipeline pipeline(config, dataset);
  EXPECT_EQ(pipeline.generator().config().upscale_factors,
            std::vector<int>({1, 2, 5}));
  pipeline.train_pretrain_only();
  Tensor prediction = pipeline.predict_frame(dataset.test_range().begin + 1);
  EXPECT_EQ(prediction.shape(), Shape({20, 20}));
}

TEST(Pipeline, SampleSourceProducesValidSamples) {
  data::TrafficDataset dataset = tiny_dataset(16, 20, 174);
  MtsrPipeline pipeline(tiny_pipeline_config(data::MtsrInstance::kUp2, 8),
                        dataset);
  auto source = pipeline.make_sample_source(dataset.train_range());
  Rng rng(175);
  for (int i = 0; i < 10; ++i) {
    data::Sample sample = source(rng);
    EXPECT_EQ(sample.input.shape(), Shape({2, 4, 4}));
    EXPECT_EQ(sample.target.shape(), Shape({8, 8}));
    EXPECT_TRUE(sample.input.all_finite());
  }
}

TEST(Pipeline, WindowLargerThanGridRejected) {
  data::TrafficDataset dataset = tiny_dataset(16, 10, 176);
  PipelineConfig config = tiny_pipeline_config(data::MtsrInstance::kUp2, 32);
  EXPECT_THROW(MtsrPipeline(config, dataset), ContractViolation);
}

}  // namespace
}  // namespace mtsr::core
