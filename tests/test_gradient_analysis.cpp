// Tests for the Fig. 15 input-gradient analysis.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/check.hpp"
#include "src/core/gradient_analysis.hpp"
#include "src/data/milan.hpp"

namespace mtsr::core {
namespace {

TEST(GradientAnalysis, ReturnsPerFrameMagnitudes) {
  data::MilanConfig mc;
  mc.rows = 16;
  mc.cols = 16;
  mc.num_hotspots = 8;
  mc.seed = 66;
  data::TrafficDataset dataset(
      data::MilanTrafficGenerator(mc).generate(60, 20), 10);
  data::UniformProbeLayout layout(8, 8, 2);

  const std::int64_t s = 3;
  SampleSource source = [&](Rng& rng) {
    data::SampleSpec spec;
    spec.t = rng.uniform_int(s - 1, dataset.frame_count() - 1);
    spec.r0 = rng.uniform_int(0, dataset.rows() - 8);
    spec.c0 = rng.uniform_int(0, dataset.cols() - 8);
    return data::make_sample(dataset, layout, spec, s, 8);
  };

  ZipNetConfig zc;
  zc.temporal_length = s;
  zc.upscale_factors = {2};
  zc.base_channels = 2;
  zc.zipper_modules = 2;
  zc.zipper_channels = 4;
  zc.final_channels = 4;
  Rng rng(160);
  ZipNet g(zc, rng);
  DiscriminatorConfig dc;
  dc.base_channels = 2;
  Discriminator d(dc, rng);

  GanTrainerConfig config;
  Rng analysis_rng(161);
  auto magnitudes = input_gradient_magnitudes(g, d, source, /*batches=*/2,
                                              /*batch_size=*/4, config,
                                              analysis_rng);
  ASSERT_EQ(magnitudes.size(), static_cast<std::size_t>(s));
  for (double m : magnitudes) {
    EXPECT_TRUE(std::isfinite(m));
    EXPECT_GE(m, 0.0);
  }
  // At least one frame carries non-trivial gradient signal.
  double total = 0.0;
  for (double m : magnitudes) total += m;
  EXPECT_GT(total, 0.0);
}

TEST(GradientAnalysis, RejectsBadGeometry) {
  data::MilanConfig mc;
  mc.rows = 8;
  mc.cols = 8;
  mc.num_hotspots = 4;
  data::TrafficDataset dataset(
      data::MilanTrafficGenerator(mc).generate(0, 5), 10);
  data::UniformProbeLayout layout(8, 8, 2);
  SampleSource source = [&](Rng& rng) {
    data::SampleSpec spec{1 + (rng.next_u64() % 3 == 0 ? 0 : 0), 0, 0};
    spec.t = 1;
    return data::make_sample(dataset, layout, spec, 2, 8);
  };
  ZipNetConfig zc;
  zc.temporal_length = 2;
  zc.upscale_factors = {2};
  zc.base_channels = 2;
  zc.zipper_modules = 2;
  zc.zipper_channels = 4;
  zc.final_channels = 4;
  Rng rng(162);
  ZipNet g(zc, rng);
  DiscriminatorConfig dc;
  dc.base_channels = 2;
  Discriminator d(dc, rng);
  GanTrainerConfig config;
  Rng analysis_rng(163);
  EXPECT_THROW((void)input_gradient_magnitudes(g, d, source, 0, 4, config,
                                               analysis_rng),
               ContractViolation);
}

}  // namespace
}  // namespace mtsr::core
