// Tests for the serving scheduler: cross-session batch fusion (float
// parity + int8 bit-identity + pool-size determinism), request-level
// dedup/memoization for fan-out consumers (bitwise-equal frames, content
// guarding), checkpoint hot-reload (block-boundary swap, mismatch
// diagnostics, failure leaving the old model bit-identical, concurrent
// reload with zero dropped/duplicated blocks), and the scheduler telemetry
// surface.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <thread>
#include <vector>

#include "src/baselines/super_resolver.hpp"
#include "src/common/check.hpp"
#include "src/common/parallel.hpp"
#include "src/core/pipeline.hpp"
#include "src/data/milan.hpp"
#include "src/serving/engine.hpp"
#include "src/serving/model.hpp"
#include "src/serving/scheduler.hpp"

namespace mtsr::serving {
namespace {

struct PoolGuard {
  ~PoolGuard() {
    set_num_threads(0);
    set_num_shards(0);
  }
};

data::TrafficDataset small_dataset(std::uint64_t seed = 510,
                                   std::int64_t side = 16) {
  data::MilanConfig config;
  config.rows = side;
  config.cols = side;
  config.num_hotspots = 10;
  config.seed = seed;
  return data::TrafficDataset(
      data::MilanTrafficGenerator(config).generate(0, 40), 10);
}

core::PipelineConfig small_pipeline_config() {
  core::PipelineConfig config;
  config.instance = data::MtsrInstance::kUp4;
  config.window = 8;
  config.temporal_length = 3;
  config.zipnet.base_channels = 3;
  config.zipnet.zipper_modules = 3;
  config.zipnet.zipper_channels = 6;
  config.zipnet.final_channels = 8;
  config.discriminator.base_channels = 2;
  config.pretrain_steps = 20;
  config.gan_rounds = 0;
  return config;
}

SessionConfig stream_config(const data::TrafficDataset& dataset,
                            std::string model = "zipnet",
                            std::string stream = "") {
  SessionConfig config = SessionConfig::from_dataset(
      std::move(model), data::MtsrInstance::kUp4, dataset, 8, 4);
  config.stream = std::move(stream);
  return config;
}

void expect_bitwise(const Tensor& a, const Tensor& b, const char* what) {
  ASSERT_EQ(a.shape(), b.shape()) << what;
  for (std::int64_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.flat(i), b.flat(i)) << what << " differs at " << i;
  }
}

// Fusion widens the generator's lowered GEMMs, which can move the
// float-add order inside shared SIMD reduction tails: parity is <= 1e-5 in
// normalised units, compared here after denormalisation with the matching
// relative scale.
void expect_fusion_parity(const Tensor& fused, const Tensor& ref,
                          const char* what) {
  ASSERT_EQ(fused.shape(), ref.shape()) << what;
  for (std::int64_t i = 0; i < ref.size(); ++i) {
    const float tol = 1e-5f * (1.f + std::abs(ref.flat(i)));
    ASSERT_NEAR(fused.flat(i), ref.flat(i), tol) << what << " at " << i;
  }
}

TEST(Scheduler, FusedServingMatchesIndependentSessions) {
  PoolGuard guard;
  // Queue-depth and fusion expectations below count ALL sessions in one
  // round, which holds exactly when they share a shard.
  set_num_shards(1);
  data::TrafficDataset dataset = small_dataset(511);
  core::MtsrPipeline pipeline(small_pipeline_config(), dataset);
  auto model = std::make_shared<ZipNetModel>(pipeline.generator());

  constexpr int kSessions = 4;
  // Distinct streams: session i serves the feed shifted by i frames, so no
  // two sessions ever see the same data (dedup must not engage even if it
  // were enabled — these sessions carry no stream tag).
  auto frame_for = [&](int session, std::int64_t t) {
    return dataset.frame(t + session);
  };

  // Reference: every session served independently (engine.push), pool 1.
  set_num_threads(1);
  std::vector<Tensor> reference;
  {
    Engine engine;
    engine.register_model("zipnet", model);
    std::vector<Engine::SessionId> ids;
    for (int i = 0; i < kSessions; ++i) {
      ids.push_back(engine.open_session(stream_config(dataset)));
    }
    for (std::int64_t t = 0; t < 5; ++t) {
      for (int i = 0; i < kSessions; ++i) {
        auto out = engine.push(ids[i], frame_for(i, t));
        if (out) reference.push_back(std::move(*out));
      }
    }
    const Engine::Stats stats = engine.stats();
    EXPECT_EQ(stats.scheduler.fused_passes, 0);  // nothing to fuse
    EXPECT_EQ(stats.scheduler.dedup_lookups, 0);
  }
  ASSERT_EQ(reference.size(), kSessions * 3u);

  // Fused: all sessions advanced through one scheduler call per frame.
  auto run_fused = [&](int threads) {
    set_num_threads(threads);
    Engine engine;
    engine.register_model("zipnet", model);
    std::vector<Engine::SessionId> ids;
    for (int i = 0; i < kSessions; ++i) {
      ids.push_back(engine.open_session(stream_config(dataset)));
    }
    std::vector<Tensor> outputs;
    for (std::int64_t t = 0; t < 5; ++t) {
      std::vector<Tensor> frames;
      for (int i = 0; i < kSessions; ++i) frames.push_back(frame_for(i, t));
      auto outs = engine.push_all(ids, frames);
      for (auto& o : outs) {
        if (o) outputs.push_back(std::move(*o));
      }
    }
    const Engine::Stats stats = engine.stats();
    EXPECT_GT(stats.scheduler.fused_passes, 0);
    EXPECT_EQ(stats.scheduler.max_queue_depth, kSessions);
    return outputs;
  };

  const std::vector<Tensor> fused1 = run_fused(1);
  ASSERT_EQ(fused1.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    expect_fusion_parity(fused1[i], reference[i], "fused vs independent");
  }

  // For a fixed session composition the fused output is deterministic
  // across pool sizes (chunk geometry depends only on trip counts).
  const int hw = []() {
    set_num_threads(0);
    return num_threads();
  }();
  for (int threads : {2, hw}) {
    const std::vector<Tensor> fused = run_fused(threads);
    ASSERT_EQ(fused.size(), fused1.size());
    for (std::size_t i = 0; i < fused.size(); ++i) {
      expect_bitwise(fused[i], fused1[i], "fused across pool sizes");
    }
  }
}

TEST(Scheduler, FusedServingBitIdenticalInt8) {
  // The int8 forward accumulates in exact s32 with a single-rounding
  // epilogue: per-sample batch-invariant, so fusion is bit-identical.
  data::TrafficDataset dataset = small_dataset(512);
  core::MtsrPipeline pipeline(small_pipeline_config(), dataset);
  auto model = quantize_generator(
      pipeline.generator(),
      calibration_batches(dataset, pipeline.window_layout(), 3, 8, 4));

  constexpr int kSessions = 3;
  std::vector<Tensor> reference;
  {
    Engine engine;
    engine.register_model("zipnet-int8", model);
    std::vector<Engine::SessionId> ids;
    for (int i = 0; i < kSessions; ++i) {
      ids.push_back(engine.open_session(stream_config(dataset, "zipnet-int8")));
    }
    for (std::int64_t t = 0; t < 5; ++t) {
      for (int i = 0; i < kSessions; ++i) {
        auto out = engine.push(ids[i], dataset.frame(t + i));
        if (out) reference.push_back(std::move(*out));
      }
    }
  }
  Engine engine;
  engine.register_model("zipnet-int8", model);
  std::vector<Engine::SessionId> ids;
  for (int i = 0; i < kSessions; ++i) {
    ids.push_back(engine.open_session(stream_config(dataset, "zipnet-int8")));
  }
  std::vector<Tensor> fused;
  for (std::int64_t t = 0; t < 5; ++t) {
    std::vector<Tensor> frames;
    for (int i = 0; i < kSessions; ++i) frames.push_back(dataset.frame(t + i));
    for (auto& o : engine.push_all(ids, frames)) {
      if (o) fused.push_back(std::move(*o));
    }
  }
  ASSERT_EQ(fused.size(), reference.size());
  ASSERT_EQ(fused.size(), kSessions * 3u);
  EXPECT_GT(engine.stats().scheduler.fused_passes, 0);
  for (std::size_t i = 0; i < fused.size(); ++i) {
    expect_bitwise(fused[i], reference[i], "int8 fused vs independent");
  }
}

TEST(Scheduler, DedupFanoutConsumersReceiveBitwiseEqualFrames) {
  data::TrafficDataset dataset = small_dataset(513);
  core::MtsrPipeline pipeline(small_pipeline_config(), dataset);
  auto model = std::make_shared<ZipNetModel>(pipeline.generator());

  // Control: one untagged session — the plain unscheduled path.
  Engine control;
  control.register_model("zipnet", model);
  const auto control_id = control.open_session(stream_config(dataset));

  // Three fan-out consumers of the same coarse feed, served fused.
  Engine engine;
  engine.register_model("zipnet", model);
  std::vector<Engine::SessionId> ids;
  for (int i = 0; i < 3; ++i) {
    ids.push_back(engine.open_session(stream_config(dataset, "zipnet", "milan")));
  }
  for (std::int64_t t = 0; t < 6; ++t) {
    auto expected = control.push(control_id, dataset.frame(t));
    auto outs = engine.push_fused(ids, dataset.frame(t));
    ASSERT_EQ(outs.size(), 3u);
    for (const auto& o : outs) {
      ASSERT_EQ(o.has_value(), expected.has_value());
      if (o) {
        // Consumers share ONE inference: bitwise-equal to each other and
        // to the unscheduled path (the representative block runs the
        // single-request pass).
        expect_bitwise(*o, *expected, "fan-out consumer vs control");
      }
    }
  }
  const Engine::Stats stats = engine.stats();
  // 4 inferences x 5 blocks x 3 consumers looked up; 2 of 3 hit per block.
  EXPECT_EQ(stats.scheduler.dedup_lookups, 4 * 5 * 3);
  EXPECT_EQ(stats.scheduler.dedup_hits, 4 * 5 * 2);
  EXPECT_EQ(stats.scheduler.fused_passes, 0);  // dedup'd, nothing left to fuse
  // The memo holds only the newest epoch: one entry per block.
  EXPECT_EQ(stats.scheduler.memo_entries, 5);

  // Sequential pushes dedup through the same memo (no co-scheduling
  // needed): a late subscriber pushed on its own still hits.
  const auto late = engine.open_session(stream_config(dataset, "zipnet", "milan"));
  const std::int64_t before = engine.stats().scheduler.dedup_hits;
  for (std::int64_t t = 3; t < 6; ++t) {
    auto expected = control.session(control_id).push(dataset.frame(t));
    (void)expected;
    auto out = engine.push(late, dataset.frame(t));
    if (t == 5) {
      ASSERT_TRUE(out.has_value());
    }
  }
  EXPECT_EQ(engine.stats().scheduler.dedup_hits, before + 5);
}

TEST(Scheduler, DedupIsContentGuarded) {
  // Two sessions mis-tagged as one stream but fed different frames: the
  // frame-hash chain in the key keeps them independent.
  data::TrafficDataset dataset = small_dataset(514);
  core::MtsrPipeline pipeline(small_pipeline_config(), dataset);
  auto model = std::make_shared<ZipNetModel>(pipeline.generator());

  Engine engine;
  engine.register_model("zipnet", model);
  const auto a = engine.open_session(stream_config(dataset, "zipnet", "city"));
  const auto b = engine.open_session(stream_config(dataset, "zipnet", "city"));

  Engine control;
  control.register_model("zipnet", model);
  const auto ca = control.open_session(stream_config(dataset));
  const auto cb = control.open_session(stream_config(dataset));

  for (std::int64_t t = 0; t < 5; ++t) {
    auto outs = engine.push_all({a, b}, {dataset.frame(t), dataset.frame(t + 7)});
    auto ea = control.push(ca, dataset.frame(t));
    auto eb = control.push(cb, dataset.frame(t + 7));
    ASSERT_EQ(outs[0].has_value(), ea.has_value());
    ASSERT_EQ(outs[1].has_value(), eb.has_value());
    if (ea) expect_fusion_parity(*outs[0], *ea, "mis-tagged session a");
    if (eb) expect_fusion_parity(*outs[1], *eb, "mis-tagged session b");
  }
  const Engine::Stats stats = engine.stats();
  EXPECT_GT(stats.scheduler.dedup_lookups, 0);
  EXPECT_EQ(stats.scheduler.dedup_hits, 0);
}

TEST(Scheduler, DedupPinsLayoutIdentity) {
  // A borrowed SessionConfig::layout may aggregate differently than the
  // default make_layout(instance, window, window), and the dedup frame
  // hash only sees bytes from BEFORE the aggregation — so layout identity
  // is part of the key: same tag + same geometry but different layout
  // objects must never share predictions.
  data::TrafficDataset dataset = small_dataset(522);
  core::MtsrPipeline pipeline(small_pipeline_config(), dataset);
  auto model = std::make_shared<ZipNetModel>(pipeline.generator());
  auto layout_a = data::make_layout(data::MtsrInstance::kUp4, 8, 8);
  auto layout_b = data::make_layout(data::MtsrInstance::kUp4, 8, 8);

  Engine engine;
  engine.register_model("zipnet", model);
  SessionConfig config = stream_config(dataset, "zipnet", "city");
  config.layout = layout_a.get();
  const auto a = engine.open_session(config);
  config.layout = layout_b.get();
  const auto b = engine.open_session(config);
  for (std::int64_t t = 0; t < 4; ++t) {
    auto outs = engine.push_fused({a, b}, dataset.frame(t));
    ASSERT_EQ(outs[0].has_value(), outs[1].has_value());
    // Identical layout geometry still computes identical values — it is
    // only the SHARING that identity-pinning disables.
    if (outs[0]) expect_bitwise(*outs[0], *outs[1], "distinct layout objects");
  }
  EXPECT_EQ(engine.stats().scheduler.dedup_hits, 0);

  // Sessions borrowing the SAME layout object share as usual.
  config.layout = layout_a.get();
  const auto c = engine.open_session(config);
  const auto d = engine.open_session(config);
  for (std::int64_t t = 0; t < 4; ++t) {
    (void)engine.push_fused({c, d}, dataset.frame(t));
  }
  EXPECT_GT(engine.stats().scheduler.dedup_hits, 0);
}

TEST(Scheduler, ClosingTheLastConsumerFreesTheStreamMemo) {
  data::TrafficDataset dataset = small_dataset(523);
  core::MtsrPipeline pipeline(small_pipeline_config(), dataset);
  Engine engine;
  engine.register_model(
      "zipnet", std::make_shared<ZipNetModel>(pipeline.generator()));
  const auto a = engine.open_session(stream_config(dataset, "zipnet", "m"));
  const auto b = engine.open_session(stream_config(dataset, "zipnet", "m"));
  for (std::int64_t t = 0; t < 4; ++t) {
    (void)engine.push_fused({a, b}, dataset.frame(t));
  }
  EXPECT_GT(engine.stats().scheduler.memo_entries, 0);
  engine.close_session(a);
  EXPECT_GT(engine.stats().scheduler.memo_entries, 0);  // b still holds it
  engine.close_session(b);
  EXPECT_EQ(engine.stats().scheduler.memo_entries, 0);
}

TEST(Scheduler, HotReloadSwapsAtBlockBoundary) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "mtsr_sched_reload.bin")
          .string();
  data::TrafficDataset dataset = small_dataset(515);
  core::MtsrPipeline serving(small_pipeline_config(), dataset);

  // A second generator with the same architecture but different weights.
  core::PipelineConfig other_config = small_pipeline_config();
  other_config.seed = 77;
  core::MtsrPipeline other(other_config, dataset);
  other.save_generator(path);

  Engine engine;
  engine.register_model(
      "zipnet", std::make_shared<ZipNetModel>(serving.generator()));
  const auto id = engine.open_session(stream_config(dataset));
  const Model* before = engine.model("zipnet").get();

  for (std::int64_t t = 0; t < 3; ++t) {
    (void)engine.push(id, dataset.frame(t));
  }
  engine.reload_model("zipnet", path);
  EXPECT_NE(engine.model("zipnet").get(), before);
  EXPECT_EQ(engine.model("zipnet")->name(), "zipnet");
  auto after = engine.push(id, dataset.frame(3));
  ASSERT_TRUE(after.has_value());

  // Control: the reloaded weights served from scratch over an identical
  // history must match bitwise (the swap is all-or-nothing and the session
  // state carries over untouched).
  Engine control;
  control.register_model(
      "zipnet", std::make_shared<ZipNetModel>(other.generator()));
  const auto cid = control.open_session(stream_config(dataset));
  std::optional<Tensor> expected;
  for (std::int64_t t = 1; t <= 3; ++t) {
    expected = control.push(cid, dataset.frame(t));
  }
  ASSERT_TRUE(expected.has_value());
  expect_bitwise(*after, *expected, "post-reload vs fresh-session control");

  const Engine::Stats stats = engine.stats();
  EXPECT_EQ(stats.reloads_applied, 1);
  EXPECT_EQ(stats.reloads_failed, 0);
  EXPECT_EQ(stats.sessions.at(0).inference_count, 2);
  std::remove(path.c_str());
}

TEST(Scheduler, FailedReloadLeavesOldModelServingBitIdentically) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "mtsr_sched_badckpt.bin")
          .string();
  data::TrafficDataset dataset = small_dataset(516);
  core::MtsrPipeline serving(small_pipeline_config(), dataset);

  // Same parameter count, different width: the loader diagnostics must
  // name the first diverging parameter with both shapes.
  core::PipelineConfig wider = small_pipeline_config();
  wider.zipnet.zipper_channels = 12;
  core::MtsrPipeline mismatched(wider, dataset);
  mismatched.save_generator(path);

  Engine engine;
  engine.register_model(
      "zipnet", std::make_shared<ZipNetModel>(serving.generator()));
  const auto id = engine.open_session(stream_config(dataset));
  Engine control;
  control.register_model(
      "zipnet", std::make_shared<ZipNetModel>(serving.generator()));
  const auto cid = control.open_session(stream_config(dataset));

  for (std::int64_t t = 0; t < 3; ++t) {
    auto out = engine.push(id, dataset.frame(t));
    auto expected = control.push(cid, dataset.frame(t));
    ASSERT_EQ(out.has_value(), expected.has_value());
    if (out) expect_bitwise(*out, *expected, "pre-reload serving");
  }

  const Model* before = engine.model("zipnet").get();
  try {
    engine.reload_model("zipnet", path);
    FAIL() << "expected the mismatched checkpoint to be rejected";
  } catch (const std::runtime_error& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("shape mismatch at parameter"), std::string::npos)
        << message;
    EXPECT_NE(message.find("model expects"), std::string::npos) << message;
    EXPECT_NE(message.find("checkpoint has"), std::string::npos) << message;
  }
  EXPECT_EQ(engine.model("zipnet").get(), before);  // slot untouched

  for (std::int64_t t = 3; t < 6; ++t) {
    auto out = engine.push(id, dataset.frame(t));
    auto expected = control.push(cid, dataset.frame(t));
    ASSERT_TRUE(out.has_value());
    expect_bitwise(*out, *expected, "post-failed-reload serving");
  }
  const Engine::Stats stats = engine.stats();
  EXPECT_EQ(stats.reloads_applied, 0);
  EXPECT_EQ(stats.reloads_failed, 1);
  std::remove(path.c_str());
}

TEST(Scheduler, ReloadValidatesReplacementAgainstOpenSessions) {
  data::TrafficDataset dataset = small_dataset(517);
  core::MtsrPipeline serving(small_pipeline_config(), dataset);

  // Replacement with S=2: open sessions hold 3 frames of history.
  core::PipelineConfig shorter = small_pipeline_config();
  shorter.temporal_length = 2;
  core::MtsrPipeline incompatible(shorter, dataset);

  Engine engine;
  engine.register_model(
      "zipnet", std::make_shared<ZipNetModel>(serving.generator()));
  const auto id = engine.open_session(stream_config(dataset));
  (void)id;
  try {
    engine.reload_model(
        "zipnet", std::make_shared<ZipNetModel>(incompatible.generator()));
    FAIL() << "expected the incompatible replacement to be rejected";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("old model keeps serving"),
              std::string::npos)
        << e.what();
  }
  EXPECT_EQ(engine.stats().reloads_failed, 1);

  // Models without checkpoint weights refuse the path form outright.
  engine.register_model("bicubic",
                        std::make_shared<BaselineModel>(
                            baselines::make_super_resolver("bicubic")));
  EXPECT_THROW(engine.reload_model("bicubic", "whatever.bin"),
               ContractViolation);
}

TEST(Scheduler, ConcurrentReloadDropsNoBlocks) {
  const std::string path_a =
      (std::filesystem::temp_directory_path() / "mtsr_sched_ckpt_a.bin")
          .string();
  const std::string path_b =
      (std::filesystem::temp_directory_path() / "mtsr_sched_ckpt_b.bin")
          .string();
  data::TrafficDataset dataset = small_dataset(518);
  core::MtsrPipeline serving(small_pipeline_config(), dataset);
  serving.save_generator(path_a);
  core::PipelineConfig other_config = small_pipeline_config();
  other_config.seed = 99;
  core::MtsrPipeline other(other_config, dataset);
  other.save_generator(path_b);

  Engine engine;
  engine.register_model(
      "zipnet", std::make_shared<ZipNetModel>(serving.generator()));
  // Two fan-out consumers plus one independent stream: dedup, fusion and
  // reload all in play at once.
  std::vector<Engine::SessionId> ids;
  ids.push_back(engine.open_session(stream_config(dataset, "zipnet", "milan")));
  ids.push_back(engine.open_session(stream_config(dataset, "zipnet", "milan")));
  ids.push_back(engine.open_session(stream_config(dataset)));

  constexpr std::int64_t kFrames = 16;
  std::atomic<bool> done{false};
  std::int64_t produced = 0;
  bool all_finite = true;
  // The serving thread owns every engine call except reload_model — the
  // documented concurrency contract.
  std::thread server([&] {
    for (std::int64_t t = 0; t < kFrames; ++t) {
      std::vector<Tensor> frames(3, dataset.frame(t % 20));
      auto outs = engine.push_all(ids, frames);
      for (const auto& o : outs) {
        if (o) {
          ++produced;
          all_finite = all_finite && o->all_finite();
        }
      }
    }
    done.store(true);
  });
  std::int64_t reloads = 0;
  while (!done.load()) {
    engine.reload_model("zipnet", (reloads % 2 == 0) ? path_b : path_a);
    ++reloads;
  }
  server.join();

  // Zero dropped or duplicated blocks: every warm push of every session
  // produced exactly one finite frame, whatever weights each block ran on.
  EXPECT_EQ(produced, 3 * (kFrames - 2));
  EXPECT_TRUE(all_finite);
  EXPECT_GE(reloads, 1);
  const Engine::Stats stats = engine.stats();
  EXPECT_EQ(stats.reloads_applied, reloads);
  EXPECT_EQ(stats.reloads_failed, 0);
  for (const auto& s : stats.sessions) {
    EXPECT_EQ(s.inference_count, kFrames - 2);
  }
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(Scheduler, FuseCapShapesThePasses) {
  PoolGuard guard;
  // The cap-0 whole-round histogram counts every session in one pass,
  // which holds exactly when they share a shard.
  set_num_shards(1);
  data::TrafficDataset dataset = small_dataset(519);
  core::MtsrPipeline pipeline(small_pipeline_config(), dataset);
  auto model = std::make_shared<ZipNetModel>(pipeline.generator());

  auto histogram_for = [&](std::int64_t cap) {
    Engine engine;
    engine.register_model("zipnet", model);
    engine.set_fuse_cap(cap);
    std::vector<Engine::SessionId> ids;
    for (int i = 0; i < 4; ++i) {
      ids.push_back(engine.open_session(stream_config(dataset)));
    }
    for (std::int64_t t = 0; t < 3; ++t) {
      std::vector<Tensor> frames;
      for (int i = 0; i < 4; ++i) frames.push_back(dataset.frame(t + i));
      (void)engine.push_all(ids, frames);
    }
    return engine.stats().scheduler;
  };

  // 9 windows per session in blocks of 2: rounds enqueue 4x2 windows, the
  // last round 4x1. Cap 4 packs pairs of sessions; cap 0 fuses whole
  // rounds; cap 1 degenerates to per-session passes.
  const SchedulerStats cap4 = histogram_for(4);
  for (std::size_t b = 5; b < cap4.fused_histogram.size(); ++b) {
    EXPECT_EQ(cap4.fused_histogram[b], 0) << "cap 4 produced a pass of " << b;
  }
  EXPECT_GT(cap4.fused_passes, 0);

  const SchedulerStats cap0 = histogram_for(0);
  ASSERT_GT(cap0.fused_histogram.size(), 8u);
  EXPECT_GT(cap0.fused_histogram[8], 0);  // whole rounds fuse to 4x2

  const SchedulerStats cap1 = histogram_for(1);
  EXPECT_EQ(cap1.fused_passes, 0);
  // Telemetry invariants: the histogram decomposes the pass/window totals.
  for (const SchedulerStats& s : {cap4, cap0, cap1}) {
    std::int64_t passes = 0, windows = 0;
    for (std::size_t b = 0; b < s.fused_histogram.size(); ++b) {
      passes += s.fused_histogram[b];
      windows += static_cast<std::int64_t>(b) * s.fused_histogram[b];
    }
    EXPECT_EQ(passes, s.passes);
    EXPECT_EQ(windows, s.windows);
  }
}

TEST(Scheduler, TelemetryRendersInStatsTable) {
  data::TrafficDataset dataset = small_dataset(520);
  core::MtsrPipeline pipeline(small_pipeline_config(), dataset);
  Engine engine;
  engine.register_model(
      "zipnet", std::make_shared<ZipNetModel>(pipeline.generator()));
  std::vector<Engine::SessionId> ids;
  for (int i = 0; i < 2; ++i) {
    ids.push_back(engine.open_session(stream_config(dataset, "zipnet", "m")));
  }
  for (std::int64_t t = 0; t < 4; ++t) {
    (void)engine.push_fused(ids, dataset.frame(t));
  }
  const std::string table = render_stats_table(engine.stats());
  EXPECT_NE(table.find("scheduler:"), std::string::npos) << table;
  EXPECT_NE(table.find("skips"), std::string::npos) << table;
  EXPECT_NE(table.find("fused batch sizes:"), std::string::npos) << table;
  EXPECT_NE(table.find("dedup:"), std::string::npos) << table;
  EXPECT_NE(table.find("reloads:"), std::string::npos) << table;
  EXPECT_NE(table.find("max queue"), std::string::npos) << table;
}

TEST(Scheduler, DedupSkipsAdmitCoarseningForMemoServedConsumers) {
  // Fan-out consumers defer their admit-time per-window coarsening; a
  // consumer whose blocks the stream memo serves end to end never pays it
  // at all. Outputs stay bitwise-equal to the untagged control — deferral
  // only moves WHEN coarsening runs, never its values.
  data::TrafficDataset dataset = small_dataset(524);
  core::MtsrPipeline pipeline(small_pipeline_config(), dataset);
  auto model = std::make_shared<ZipNetModel>(pipeline.generator());

  Engine engine;
  engine.register_model("zipnet", model);
  std::vector<Engine::SessionId> ids;
  for (int i = 0; i < 3; ++i) {
    ids.push_back(engine.open_session(stream_config(dataset, "zipnet", "milan")));
  }
  const auto solo = engine.open_session(stream_config(dataset));  // untagged

  Engine control;
  control.register_model("zipnet", model);
  const auto control_id = control.open_session(stream_config(dataset));

  for (std::int64_t t = 0; t < 8; ++t) {
    auto outs = engine.push_fused(ids, dataset.frame(t));
    auto own = engine.push(solo, dataset.frame(t));
    auto expected = control.push(control_id, dataset.frame(t));
    for (const auto& o : outs) {
      ASSERT_EQ(o.has_value(), expected.has_value());
      if (o) expect_bitwise(*o, *expected, "deferred-coarsening consumer");
    }
    ASSERT_EQ(own.has_value(), expected.has_value());
    if (own) expect_bitwise(*own, *expected, "untagged session");
  }

  const Engine::Stats stats = engine.stats();
  for (const Engine::SessionStats& s : stats.sessions) {
    if (s.id == ids[0] || s.id == solo) {
      // The first consumer computes every block (its gathers force the
      // coarsening); untagged sessions coarsen eagerly on admit.
      EXPECT_EQ(s.coarsen_skips, 0) << "session " << s.id;
    } else {
      // Memo-served consumers: every post-warm-up eviction (t = 3..7)
      // drops a frame whose coarsening was never needed.
      EXPECT_EQ(s.coarsen_skips, 5) << "session " << s.id;
    }
  }
}

TEST(Scheduler, StandaloneSessionServesWithoutAnEngine) {
  data::TrafficDataset dataset = small_dataset(521);
  core::MtsrPipeline pipeline(small_pipeline_config(), dataset);
  Session session(std::make_shared<ZipNetModel>(pipeline.generator()),
                  stream_config(dataset));
  std::optional<Tensor> out;
  for (std::int64_t t = 0; t < 4; ++t) {
    out = session.push(dataset.frame(t));
  }
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->shape(), dataset.frame(0).shape());
  EXPECT_TRUE(out->all_finite());
  EXPECT_EQ(session.inference_count(), 2);
}

}  // namespace
}  // namespace mtsr::serving
