// Forced-ISA sweep of the float packed-B panel microkernels: every
// dispatch level this host can execute ("scalar"/"sse2" generic, "avx2",
// "avx512"/"vnni", and the pre-hand-scheduling "clones" baseline) must be
// bit-identical across pool sizes {1, 2, hw} and within 1e-5 relative of
// the naive i-k-j reference. Shapes cover the tall and wide drivers, the
// k-tile (kKc = 256) and j-tile (kNc = 512) boundaries, register-tile row
// remainders, and sub-vector column tails.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/parallel.hpp"
#include "src/tensor/tensor.hpp"
#include "src/tensor/tensor_ops.hpp"

namespace mtsr {
namespace {

struct PoolGuard {
  ~PoolGuard() { set_num_threads(0); }
};

struct MatmulCase {
  std::int64_t m, k, n;
};

// Shapes chosen to exercise: 8/6-row register tiles plus 1..7-row
// remainders, 32/16-column blocks plus masked/scalar tails, multiple
// k-tiles (k > 256), multiple j-tiles (n > 512), and both the tall
// (m >= n) and wide dispatch paths. All k > 32 so the panel kernel — not
// the kernel-independent small-k path — is what runs.
constexpr MatmulCase kCases[] = {
    {64, 64, 64},   {37, 100, 53},  {130, 300, 17}, {5, 288, 700},
    {9, 64, 1200},  {61, 40, 61},   {16, 257, 48},  {3, 48, 513},
};

const char* const kLevels[] = {"scalar", "sse2",   "avx2",
                               "avx512", "vnni",   "clones"};

std::vector<float> naive_matmul(const std::vector<float>& a,
                                const std::vector<float>& b, std::int64_t m,
                                std::int64_t k, std::int64_t n) {
  std::vector<float> c(static_cast<std::size_t>(m * n), 0.f);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float aik = a[static_cast<std::size_t>(i * k + kk)];
      for (std::int64_t j = 0; j < n; ++j) {
        c[static_cast<std::size_t>(i * n + j)] +=
            aik * b[static_cast<std::size_t>(kk * n + j)];
      }
    }
  }
  return c;
}

TEST(FloatKernels, KernelNameIsKnown) {
  const std::string name = matmul_kernel_name();
  EXPECT_TRUE(name == "generic" || name == "avx2" || name == "avx512" ||
              name == "clones")
      << name;
  const char* forced = std::getenv("MTSR_SIMD");
  if (forced != nullptr && (std::string(forced) == "scalar" ||
                            std::string(forced) == "sse2")) {
    EXPECT_EQ(name, "generic");
  }
}

TEST(FloatKernels, UnknownForcedLevelIsRejected) {
  float x = 1.f;
  EXPECT_FALSE(matmul_into_forced_kernel("neon", &x, &x, &x, 1, 1, 1));
  EXPECT_FALSE(matmul_into_forced_kernel(nullptr, &x, &x, &x, 1, 1, 1));
}

TEST(FloatKernels, ForcedLevelSweepBitIdenticalAcrossPoolSizes) {
  PoolGuard guard;
  Rng rng(91);
  const int hw = num_threads();
  for (const auto& [m, k, n] : kCases) {
    std::vector<float> a(static_cast<std::size_t>(m * k));
    std::vector<float> b(static_cast<std::size_t>(k * n));
    for (auto& v : a) v = rng.uniform() * 2.f - 1.f;
    for (auto& v : b) v = rng.uniform() * 2.f - 1.f;
    const std::vector<float> want = naive_matmul(a, b, m, k, n);
    int levels_run = 0;
    for (const char* level : kLevels) {
      set_num_threads(1);
      std::vector<float> base(static_cast<std::size_t>(m * n), -1e30f);
      if (!matmul_into_forced_kernel(level, a.data(), b.data(), base.data(),
                                     m, k, n)) {
        continue;  // host cannot execute this level
      }
      ++levels_run;
      // Accuracy: within 1e-5 relative of the naive reference.
      for (std::size_t i = 0; i < base.size(); ++i) {
        ASSERT_NEAR(base[i], want[i], 1e-5f * (1.f + std::fabs(want[i])))
            << "level " << level << " m=" << m << " k=" << k << " n=" << n
            << " at " << i;
      }
      // Determinism: bit-identical for every pool size.
      for (const int pool : {2, hw}) {
        set_num_threads(pool);
        std::vector<float> got(static_cast<std::size_t>(m * n), -1e30f);
        ASSERT_TRUE(matmul_into_forced_kernel(level, a.data(), b.data(),
                                              got.data(), m, k, n));
        ASSERT_EQ(std::memcmp(base.data(), got.data(),
                              base.size() * sizeof(float)),
                  0)
            << "level " << level << " pool=" << pool << " m=" << m
            << " k=" << k << " n=" << n;
      }
      set_num_threads(0);
    }
    // The generic levels and "clones" resolve on every host.
    EXPECT_GE(levels_run, 3) << "m=" << m << " k=" << k << " n=" << n;
  }
}

TEST(FloatKernels, ForcedLevelsAccumulateOntoDestination) {
  Rng rng(92);
  const std::int64_t m = 21, k = 65, n = 44;
  std::vector<float> a(static_cast<std::size_t>(m * k));
  std::vector<float> b(static_cast<std::size_t>(k * n));
  std::vector<float> seed(static_cast<std::size_t>(m * n));
  for (auto& v : a) v = rng.uniform() * 2.f - 1.f;
  for (auto& v : b) v = rng.uniform() * 2.f - 1.f;
  for (auto& v : seed) v = rng.uniform();
  const std::vector<float> prod = naive_matmul(a, b, m, k, n);
  for (const char* level : kLevels) {
    std::vector<float> c = seed;
    if (!matmul_into_forced_kernel(level, a.data(), b.data(), c.data(), m, k,
                                   n, /*accumulate=*/true)) {
      continue;
    }
    for (std::size_t i = 0; i < c.size(); ++i) {
      ASSERT_NEAR(c[i], seed[i] + prod[i],
                  1e-5f * (1.f + std::fabs(prod[i])))
          << "level " << level << " at " << i;
    }
  }
}

// The production dispatch (matmul itself, whatever MTSR_SIMD selected)
// must agree with its own forced level and stay bit-identical across pool
// sizes — the contract every layer above relies on.
TEST(FloatKernels, ProductionDispatchMatchesForcedLevel) {
  PoolGuard guard;
  Rng rng(93);
  const std::int64_t m = 48, k = 96, n = 520;
  Tensor a = Tensor::uniform(Shape{m, k}, rng, -1.f, 1.f);
  Tensor b = Tensor::uniform(Shape{k, n}, rng, -1.f, 1.f);
  set_num_threads(1);
  const Tensor base = matmul(a, b);
  const int hw = num_threads();
  for (const int pool : {2, hw}) {
    set_num_threads(pool);
    const Tensor got = matmul(a, b);
    ASSERT_EQ(std::memcmp(base.data(), got.data(),
                          static_cast<std::size_t>(base.size()) *
                              sizeof(float)),
              0)
        << "pool=" << pool;
  }
  set_num_threads(0);
  std::vector<float> forced(static_cast<std::size_t>(m * n), -1e30f);
  ASSERT_TRUE(matmul_into_forced_kernel(matmul_kernel_name(), a.data(),
                                        b.data(), forced.data(), m, k, n));
  EXPECT_EQ(std::memcmp(base.data(), forced.data(),
                        forced.size() * sizeof(float)),
            0);
}

}  // namespace
}  // namespace mtsr
