// Tests for the deterministic data-parallel training machinery: replicated
// GAN/SRCNN train steps must be bit-identical across replica counts, pool
// sizes and shard counts; the single-slice replicated step must match the
// legacy serial step exactly; replica worker arenas must reach a
// zero-growth steady state; and the counter-derived RNG streams must be
// draw-order independent.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <vector>

#include "src/baselines/srcnn.hpp"
#include "src/common/parallel.hpp"
#include "src/common/rng.hpp"
#include "src/core/gan_trainer.hpp"
#include "src/data/milan.hpp"
#include "src/data/probes.hpp"
#include "src/nn/replica.hpp"

namespace mtsr::core {
namespace {

struct PoolGuard {
  ~PoolGuard() {
    set_num_threads(0);
    set_num_shards(0);
  }
};

bool bitwise_equal(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) return false;
  return std::memcmp(a.data(), b.data(),
                     static_cast<std::size_t>(a.size()) * sizeof(float)) == 0;
}

// A small synthetic MTSR problem: up-2 on 8x8 windows from a tiny city.
struct Fixture {
  Fixture()
      : dataset(make_frames(), 10),
        layout(8, 8, 2),
        source([this](Rng& rng) {
          data::SampleSpec spec;
          spec.t = rng.uniform_int(1, dataset.frame_count() - 1);
          spec.r0 = rng.uniform_int(0, dataset.rows() - 8);
          spec.c0 = rng.uniform_int(0, dataset.cols() - 8);
          return data::make_sample(dataset, layout, spec, 2, 8);
        }) {}

  static std::vector<Tensor> make_frames() {
    data::MilanConfig config;
    config.rows = 16;
    config.cols = 16;
    config.num_hotspots = 8;
    config.seed = 55;
    return data::MilanTrafficGenerator(config).generate(60, 30);
  }

  ZipNetConfig generator_config() const {
    ZipNetConfig config;
    config.temporal_length = 2;
    config.upscale_factors = {2};
    config.base_channels = 3;
    config.zipper_modules = 3;
    config.zipper_channels = 6;
    config.final_channels = 8;
    return config;
  }

  DiscriminatorConfig discriminator_config() const {
    DiscriminatorConfig config;
    config.base_channels = 2;
    return config;
  }

  data::TrafficDataset dataset;
  data::UniformProbeLayout layout;
  SampleSource source;
};

struct TrainResult {
  std::vector<Tensor> g_params, g_grads, d_params;
  std::vector<double> pretrain_losses;
  std::vector<GanRoundStats> rounds;
};

TrainResult run_training(const Fixture& f, int replicas, int threads,
                         int shards, int batch_size, int pretrain_steps,
                         int gan_rounds) {
  set_num_threads(threads);
  set_num_shards(shards);
  Rng rng(901);
  ZipNet g(f.generator_config(), rng);
  Discriminator d(f.discriminator_config(), rng);
  GanTrainerConfig config;
  config.batch_size = batch_size;
  config.learning_rate = 1e-3f;
  config.seed = 77;
  config.replicas = replicas;
  GanTrainer trainer(g, d, config);

  TrainResult out;
  out.pretrain_losses = trainer.pretrain(f.source, pretrain_steps);
  if (gan_rounds > 0) out.rounds = trainer.train(f.source, gan_rounds);
  for (nn::Parameter* p : g.parameters()) {
    out.g_params.push_back(p->value);
    out.g_grads.push_back(p->grad);
  }
  for (nn::Parameter* p : d.parameters()) out.d_params.push_back(p->value);
  return out;
}

void expect_same_training(const TrainResult& a, const TrainResult& b) {
  ASSERT_EQ(a.g_params.size(), b.g_params.size());
  for (std::size_t i = 0; i < a.g_params.size(); ++i) {
    EXPECT_TRUE(bitwise_equal(a.g_params[i], b.g_params[i]))
        << "generator parameter " << i << " diverged";
  }
  ASSERT_EQ(a.d_params.size(), b.d_params.size());
  for (std::size_t i = 0; i < a.d_params.size(); ++i) {
    EXPECT_TRUE(bitwise_equal(a.d_params[i], b.d_params[i]))
        << "discriminator parameter " << i << " diverged";
  }
  ASSERT_EQ(a.pretrain_losses.size(), b.pretrain_losses.size());
  for (std::size_t i = 0; i < a.pretrain_losses.size(); ++i) {
    EXPECT_EQ(a.pretrain_losses[i], b.pretrain_losses[i])
        << "pretrain loss " << i << " diverged";
  }
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_EQ(a.rounds[i].d_loss, b.rounds[i].d_loss);
    EXPECT_EQ(a.rounds[i].g_loss, b.rounds[i].g_loss);
    EXPECT_EQ(a.rounds[i].g_mse, b.rounds[i].g_mse);
    EXPECT_EQ(a.rounds[i].d_real_prob, b.rounds[i].d_real_prob);
    EXPECT_EQ(a.rounds[i].d_fake_prob, b.rounds[i].d_fake_prob);
  }
}

TEST(TrainParallel, BitIdenticalAcrossReplicasPoolsAndShards) {
  PoolGuard guard;
  Fixture f;
  // Batch 8 -> 4 micro-slices; the reference runs one replica worker on a
  // single-thread, single-shard pool.
  const TrainResult reference =
      run_training(f, /*replicas=*/1, /*threads=*/1, /*shards=*/1,
                   /*batch_size=*/8, /*pretrain_steps=*/4, /*gan_rounds=*/2);
  struct Variant {
    int replicas, threads, shards;
  };
  const Variant variants[] = {
      {2, 2, 1},  // two replicas sharing one shard
      {4, 4, 2},  // four replicas over a two-shard pool
      {1, 2, 2},  // one replica on a resized pool
      {3, 2, 2},  // replica count that does not divide the slice count
      {2, 0, 0},  // hardware-default pool
  };
  for (const Variant& v : variants) {
    const TrainResult got = run_training(f, v.replicas, v.threads, v.shards,
                                         8, 4, 2);
    SCOPED_TRACE(::testing::Message() << "replicas=" << v.replicas
                                      << " threads=" << v.threads
                                      << " shards=" << v.shards);
    expect_same_training(reference, got);
  }
}

TEST(TrainParallel, GradientsBitIdenticalAcrossReplicaCounts) {
  PoolGuard guard;
  Fixture f;
  // One pretrain step, no optimizer-visible divergence source besides the
  // gradient reduction itself: reduced gradients must match to the last ulp.
  const TrainResult one =
      run_training(f, 1, 1, 1, /*batch_size=*/8, /*pretrain_steps=*/1, 0);
  const TrainResult two =
      run_training(f, 2, 2, 1, 8, 1, 0);
  const TrainResult four =
      run_training(f, 4, 2, 2, 8, 1, 0);
  ASSERT_EQ(one.g_grads.size(), two.g_grads.size());
  for (std::size_t i = 0; i < one.g_grads.size(); ++i) {
    EXPECT_TRUE(bitwise_equal(one.g_grads[i], two.g_grads[i]))
        << "gradient " << i << " diverged at 2 replicas";
    EXPECT_TRUE(bitwise_equal(one.g_grads[i], four.g_grads[i]))
        << "gradient " << i << " diverged at 4 replicas";
  }
}

TEST(TrainParallel, LegacySerialMatchesSingleSliceReplicated) {
  PoolGuard guard;
  Fixture f;
  // Batches under 4 samples stay whole (train_slice_count == 1): the
  // replicated step then runs one slice through slot 0 and must reproduce
  // the legacy whole-batch serial step bit for bit.
  ASSERT_EQ(nn::train_slice_count(2), 1);
  const TrainResult legacy =
      run_training(f, /*replicas=*/-1, 1, 1, /*batch_size=*/2, 3, 2);
  const TrainResult sliced =
      run_training(f, /*replicas=*/1, 1, 1, 2, 3, 2);
  ASSERT_EQ(legacy.g_params.size(), sliced.g_params.size());
  for (std::size_t i = 0; i < legacy.g_params.size(); ++i) {
    EXPECT_TRUE(bitwise_equal(legacy.g_params[i], sliced.g_params[i]))
        << "generator parameter " << i << " diverged from legacy";
  }
  for (std::size_t i = 0; i < legacy.d_params.size(); ++i) {
    EXPECT_TRUE(bitwise_equal(legacy.d_params[i], sliced.d_params[i]))
        << "discriminator parameter " << i << " diverged from legacy";
  }
}

TEST(TrainParallel, ReplicaArenasReachZeroGrowthSteadyState) {
  PoolGuard guard;
  Fixture f;
  set_num_threads(2);
  set_num_shards(1);
  Rng rng(902);
  ZipNet g(f.generator_config(), rng);
  Discriminator d(f.discriminator_config(), rng);
  GanTrainerConfig config;
  config.batch_size = 8;
  config.replicas = 2;
  GanTrainer trainer(g, d, config);

  // Warm up every step shape once (pretrain, D sub-epoch, G sub-epoch).
  (void)trainer.pretrain(f.source, 2);
  (void)trainer.train(f.source, 2);
  const std::vector<nn::ReplicaArenaStats> warm = trainer.replica_arena_stats();
  ASSERT_FALSE(warm.empty());

  (void)trainer.train(f.source, 2);
  const std::vector<nn::ReplicaArenaStats> after = trainer.replica_arena_stats();
  ASSERT_EQ(after.size(), warm.size());
  for (std::size_t w = 0; w < warm.size(); ++w) {
    EXPECT_EQ(after[w].growth_events, warm[w].growth_events)
        << "replica worker " << w << " arena grew after warm-up";
    EXPECT_EQ(after[w].capacity_bytes, warm[w].capacity_bytes)
        << "replica worker " << w << " arena capacity changed after warm-up";
  }
}

TEST(TrainParallel, ResolveTrainReplicas) {
  PoolGuard guard;
  ASSERT_EQ(unsetenv("MTSR_TRAIN_REPLICAS"), 0);
  EXPECT_EQ(nn::resolve_train_replicas(-1), 0);  // explicit legacy
  EXPECT_EQ(nn::resolve_train_replicas(3), 3);   // explicit worker count

  set_num_threads(2);
  set_num_shards(1);
  // Auto never topology-selects the legacy path: that would make trained
  // parameters depend on the shard count. Single shard -> one sliced
  // replica (bit-identical to any other replica count).
  EXPECT_EQ(nn::resolve_train_replicas(0), 1);
  set_num_shards(2);
  EXPECT_EQ(nn::resolve_train_replicas(0), 2);  // one replica per shard

  ASSERT_EQ(setenv("MTSR_TRAIN_REPLICAS", "5", 1), 0);
  EXPECT_EQ(nn::resolve_train_replicas(0), 5);  // env beats topology
  EXPECT_EQ(nn::resolve_train_replicas(1), 1);  // config beats env
  ASSERT_EQ(unsetenv("MTSR_TRAIN_REPLICAS"), 0);
}

TEST(TrainParallel, RngStreamsAreDrawOrderIndependent) {
  Rng fresh(42);
  Rng advanced(42);
  for (int i = 0; i < 17; ++i) (void)advanced.uniform_int(0, 1000);
  // Streams derive from the construction seed, not the engine state: a
  // parent that has already drawn yields the same stream.
  Rng s1 = fresh.stream(7);
  Rng s2 = advanced.stream(7);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(s1.uniform_int(0, 1 << 30), s2.uniform_int(0, 1 << 30));
  }
  // Distinct keys give distinct sequences (first draws differ with
  // overwhelming probability for a 30-bit range).
  Rng a = fresh.stream(0);
  Rng b = fresh.stream(1);
  bool any_diff = false;
  for (int i = 0; i < 8 && !any_diff; ++i) {
    any_diff = a.uniform_int(0, 1 << 30) != b.uniform_int(0, 1 << 30);
  }
  EXPECT_TRUE(any_diff);
}

TEST(TrainParallel, SrcnnFitBitIdenticalAcrossReplicas) {
  PoolGuard guard;
  data::MilanConfig mc;
  mc.rows = 24;
  mc.cols = 24;
  mc.num_hotspots = 10;
  mc.seed = 9;
  auto frames = data::MilanTrafficGenerator(mc).generate(60, 6);
  data::UniformProbeLayout layout(24, 24, 4);

  auto fit = [&](int replicas, int threads, int shards) {
    set_num_threads(threads);
    set_num_shards(shards);
    baselines::SrcnnConfig config;
    config.channels1 = 6;
    config.channels2 = 3;
    config.window = 16;
    config.epochs = 2;
    config.crops_per_epoch = 16;
    config.replicas = replicas;
    baselines::Srcnn srcnn(config);
    srcnn.fit(frames, layout);
    return std::pair<std::vector<double>, Tensor>(
        srcnn.loss_history(), srcnn.super_resolve(frames.front(), layout));
  };

  const auto [ref_history, ref_pred] = fit(1, 1, 1);
  const auto [got_history, got_pred] = fit(4, 2, 2);
  ASSERT_EQ(ref_history.size(), got_history.size());
  for (std::size_t i = 0; i < ref_history.size(); ++i) {
    EXPECT_EQ(ref_history[i], got_history[i]) << "epoch " << i;
  }
  EXPECT_TRUE(bitwise_equal(ref_pred, got_pred));
}

}  // namespace
}  // namespace mtsr::core
