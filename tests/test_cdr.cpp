// Tests for the CDR simulator substrate: determinism, the 5 MB interim-record
// rule, aggregation conservation, commuting behaviour and diurnal load.
#include <gtest/gtest.h>

#include <cmath>

#include "src/data/cdr.hpp"

namespace mtsr::data {
namespace {

CdrConfig small_config() {
  CdrConfig config;
  config.rows = 16;
  config.cols = 16;
  config.num_users = 200;
  config.num_intervals = 144;  // one day
  config.seed = 101;
  return config;
}

TEST(CdrSimulator, DeterministicPerSeed) {
  CdrSimulator a(small_config());
  CdrSimulator b(small_config());
  auto ra = a.simulate();
  auto rb = b.simulate();
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].user, rb[i].user);
    EXPECT_EQ(ra[i].cell, rb[i].cell);
    EXPECT_EQ(ra[i].volume_mb, rb[i].volume_mb);
  }
}

TEST(CdrSimulator, ProducesRecords) {
  CdrSimulator sim(small_config());
  auto records = sim.simulate();
  EXPECT_GT(records.size(), 1000u);
}

TEST(CdrSimulator, InterimRecordsFollowFiveMbRule) {
  CdrSimulator sim(small_config());
  auto records = sim.simulate();
  // Every session record of volume v must be followed by floor(v/5)
  // interim records for the same user/interval.
  std::size_t i = 0;
  int checked = 0;
  while (i < records.size() && checked < 200) {
    if (!records[i].interim) {
      const int expected = static_cast<int>(records[i].volume_mb / 5.f);
      int interims = 0;
      std::size_t j = i + 1;
      while (j < records.size() && records[j].interim &&
             records[j].user == records[i].user &&
             records[j].t == records[i].t) {
        ++interims;
        ++j;
      }
      EXPECT_GE(interims, expected) << "at record " << i;
      ++checked;
      i = j;
    } else {
      ++i;
    }
  }
  EXPECT_GT(checked, 0);
}

TEST(CdrSimulator, AggregationConservesVolume) {
  CdrConfig config = small_config();
  CdrSimulator sim(config);
  auto records = sim.simulate();
  auto frames = CdrSimulator::aggregate(records, config);
  ASSERT_EQ(frames.size(), static_cast<std::size_t>(config.num_intervals));
  double record_total = 0.0;
  for (const auto& r : records) record_total += r.volume_mb;
  double frame_total = 0.0;
  for (const auto& f : frames) frame_total += f.sum();
  EXPECT_NEAR(frame_total / record_total, 1.0, 1e-5);
}

TEST(CdrSimulator, UsersCommuteOnWeekdays) {
  CdrConfig config = small_config();
  config.start_minute_of_week = 0;  // Monday 00:00
  CdrSimulator sim(config);
  // 03:00 (interval 18) vs 12:00 (interval 72): most users should be at
  // different cells (home vs work), measured over the population.
  int moved = 0;
  for (std::int64_t u = 0; u < config.num_users; ++u) {
    if (sim.user_cell(u, 18) != sim.user_cell(u, 72)) ++moved;
  }
  EXPECT_GT(moved, config.num_users / 2);
}

TEST(CdrSimulator, DaytimeBusierThanNight) {
  CdrConfig config = small_config();
  config.start_minute_of_week = 0;
  CdrSimulator sim(config);
  auto frames = CdrSimulator::aggregate(sim.simulate(), config);
  const double night = frames[24].sum();   // 04:00
  const double day = frames[66].sum();     // 11:00
  EXPECT_GT(day, night);
}

TEST(CdrSimulator, WorkCellsClusterCentrally) {
  CdrConfig config = small_config();
  config.start_minute_of_week = 0;
  CdrSimulator sim(config);
  // Work cells (weekday noon) should be nearer the centre on average than
  // home cells (weekday 03:00).
  const double centre = static_cast<double>(config.rows) / 2.0;
  auto mean_distance = [&](std::int64_t t) {
    double acc = 0.0;
    for (std::int64_t u = 0; u < config.num_users; ++u) {
      const std::int64_t cell = sim.user_cell(u, t);
      const double r = static_cast<double>(cell / config.cols) - centre;
      const double c = static_cast<double>(cell % config.cols) - centre;
      acc += std::sqrt(r * r + c * c);
    }
    return acc / static_cast<double>(config.num_users);
  };
  EXPECT_LT(mean_distance(72), mean_distance(18));
}

}  // namespace
}  // namespace mtsr::data
