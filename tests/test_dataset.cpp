// Tests for TrafficDataset: splits, normalisation round-trips and binary IO.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "src/common/check.hpp"
#include "src/common/rng.hpp"
#include "src/data/dataset.hpp"

namespace mtsr::data {
namespace {

std::vector<Tensor> make_frames(int count, std::int64_t side,
                                std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Tensor> frames;
  frames.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    frames.push_back(Tensor::uniform(Shape{side, side}, rng, 10.f, 100.f));
  }
  return frames;
}

TEST(TrafficDataset, DefaultSplitsArePaperProportions) {
  TrafficDataset ds(make_frames(60, 8, 1), 10);
  EXPECT_EQ(ds.train_range().begin, 0);
  EXPECT_EQ(ds.train_range().size(), 40);   // ~2/3 (40 of 60 days)
  EXPECT_EQ(ds.validation_range().size(), 10);
  EXPECT_EQ(ds.test_range().size(), 10);
  EXPECT_EQ(ds.test_range().end, 60);
}

TEST(TrafficDataset, SplitsAreContiguousAndOrdered) {
  TrafficDataset ds(make_frames(30, 4, 2), 10);
  ds.set_splits(0.5, 0.25);
  EXPECT_EQ(ds.train_range().end, ds.validation_range().begin);
  EXPECT_EQ(ds.validation_range().end, ds.test_range().begin);
  EXPECT_EQ(ds.test_range().end, ds.frame_count());
}

TEST(TrafficDataset, NormalizationHasZeroMeanUnitVarianceOnTrain) {
  TrafficDataset ds(make_frames(20, 8, 3), 10);
  double sum = 0.0, sq = 0.0;
  std::int64_t count = 0;
  for (std::int64_t t = ds.train_range().begin; t < ds.train_range().end;
       ++t) {
    Tensor n = ds.normalized_frame(t);
    for (std::int64_t i = 0; i < n.size(); ++i) {
      sum += n.flat(i);
      sq += static_cast<double>(n.flat(i)) * n.flat(i);
    }
    count += n.size();
  }
  EXPECT_NEAR(sum / count, 0.0, 1e-3);
  EXPECT_NEAR(sq / count, 1.0, 1e-2);
}

TEST(TrafficDataset, DenormalizeInvertsNormalize) {
  TrafficDataset ds(make_frames(10, 6, 4), 10);
  Tensor back = ds.denormalize(ds.normalized_frame(7));
  const Tensor& original = ds.frame(7);
  for (std::int64_t i = 0; i < back.size(); ++i) {
    EXPECT_NEAR(back.flat(i), original.flat(i), 1e-2);
  }
}

TEST(TrafficDataset, StatsComeFromTrainSplitOnly) {
  // Give test frames a wildly different scale; train stats must not move.
  auto frames = make_frames(10, 4, 5);
  for (int t = 8; t < 10; ++t) frames[static_cast<std::size_t>(t)].mul_scalar_(100.f);
  TrafficDataset ds(std::move(frames), 10);
  ds.set_splits(0.8, 0.0);
  EXPECT_LT(ds.stats().mean, 100.0);  // unaffected by the inflated test set
  EXPECT_GT(ds.peak(), 1000.0);       // peak still reflects the full dataset
}

TEST(TrafficDataset, FrameAccessValidated) {
  TrafficDataset ds(make_frames(5, 4, 6), 10);
  EXPECT_THROW((void)ds.frame(5), ContractViolation);
  EXPECT_THROW((void)ds.frame(-1), ContractViolation);
}

TEST(TrafficDataset, MixedShapesRejected) {
  std::vector<Tensor> frames = make_frames(2, 4, 7);
  frames.push_back(Tensor(Shape{5, 5}));
  EXPECT_THROW(TrafficDataset(std::move(frames), 10), ContractViolation);
}

TEST(TrafficDataset, SaveLoadRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "mtsr_dataset_test.bin")
          .string();
  TrafficDataset ds(make_frames(6, 5, 8), 10);
  ds.save(path);
  TrafficDataset loaded = TrafficDataset::load(path);
  EXPECT_EQ(loaded.frame_count(), 6);
  EXPECT_EQ(loaded.interval_minutes(), 10);
  for (std::int64_t i = 0; i < ds.frame(3).size(); ++i) {
    EXPECT_EQ(loaded.frame(3).flat(i), ds.frame(3).flat(i));
  }
  std::remove(path.c_str());
}

TEST(TrafficDataset, SaveLoadPreservesLogTransformFlag) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "mtsr_dataset_log.bin")
          .string();
  TrafficDataset raw(make_frames(4, 4, 10), 10, /*log_transform=*/false);
  raw.save(path);
  TrafficDataset loaded = TrafficDataset::load(path);
  EXPECT_FALSE(loaded.log_transform());
  // Normalised values must match the raw-space path, not log space.
  Tensor a = raw.normalized_frame(1);
  Tensor b = loaded.normalized_frame(1);
  for (std::int64_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.flat(i), b.flat(i));
  }
  std::remove(path.c_str());
}

TEST(TrafficDataset, LogTransformChangesNormalisation) {
  auto frames = make_frames(4, 4, 11);
  TrafficDataset log_ds(frames, 10, /*log_transform=*/true);
  TrafficDataset raw_ds(std::move(frames), 10, /*log_transform=*/false);
  EXPECT_TRUE(log_ds.log_transform());
  // Heavy values compress under log1p: the normalised max is smaller.
  EXPECT_LT(log_ds.normalized_frame(0).max(),
            raw_ds.normalized_frame(0).max() + 1.f);
  // Both invert exactly.
  Tensor back = log_ds.denormalize(log_ds.normalized_frame(2));
  for (std::int64_t i = 0; i < back.size(); ++i) {
    EXPECT_NEAR(back.flat(i), log_ds.frame(2).flat(i), 1e-2);
  }
}

TEST(TrafficDataset, BadSplitFractionsRejected) {
  TrafficDataset ds(make_frames(10, 4, 9), 10);
  EXPECT_THROW(ds.set_splits(0.9, 0.2), ContractViolation);
  EXPECT_THROW(ds.set_splits(0.0, 0.1), ContractViolation);
}

}  // namespace
}  // namespace mtsr::data
