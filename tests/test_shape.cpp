// Unit tests for Shape: rank/dim/volume/stride algebra and contracts.
#include <gtest/gtest.h>

#include "src/common/check.hpp"
#include "src/tensor/shape.hpp"

namespace mtsr {
namespace {

TEST(Shape, DefaultIsRankZero) {
  Shape s;
  EXPECT_EQ(s.rank(), 0);
  EXPECT_EQ(s.volume(), 1);
}

TEST(Shape, InitializerListConstruction) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s.dim(0), 2);
  EXPECT_EQ(s.dim(1), 3);
  EXPECT_EQ(s.dim(2), 4);
  EXPECT_EQ(s.volume(), 24);
}

TEST(Shape, NegativeAxisCountsFromBack) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.dim(-1), 4);
  EXPECT_EQ(s.dim(-2), 3);
  EXPECT_EQ(s.dim(-3), 2);
}

TEST(Shape, AxisOutOfRangeThrows) {
  Shape s{2, 3};
  EXPECT_THROW((void)s.dim(2), ContractViolation);
  EXPECT_THROW((void)s.dim(-3), ContractViolation);
}

TEST(Shape, RowMajorStrides) {
  Shape s{2, 3, 4};
  const auto strides = s.strides();
  ASSERT_EQ(strides.size(), 3u);
  EXPECT_EQ(strides[0], 12);
  EXPECT_EQ(strides[1], 4);
  EXPECT_EQ(strides[2], 1);
}

TEST(Shape, EqualityComparesDims) {
  EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
  EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
  EXPECT_NE(Shape({2, 3}), Shape({2, 3, 1}));
}

TEST(Shape, NegativeDimsRejected) {
  EXPECT_THROW(Shape({2, -1}), ContractViolation);
}

TEST(Shape, RankAboveMaxRejected) {
  EXPECT_THROW(Shape({1, 2, 3, 4, 5, 6}), ContractViolation);
}

TEST(Shape, ZeroDimGivesZeroVolume) {
  Shape s{4, 0, 2};
  EXPECT_EQ(s.volume(), 0);
}

TEST(Shape, ToStringFormat) {
  EXPECT_EQ(Shape({2, 3}).to_string(), "(2, 3)");
}

}  // namespace
}  // namespace mtsr
