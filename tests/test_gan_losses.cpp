// Direct validation of the GAN loss mathematics (Eqs. 5, 8, 9): the
// assembled generator gradient (data term + adversarial term routed through
// the discriminator) is compared against central differences of the scalar
// loss. This complements test_gan_trainer.cpp, which only checks training
// dynamics.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/core/discriminator.hpp"
#include "src/nn/loss.hpp"

namespace mtsr::core {
namespace {

// Eq. 9 evaluated for a given prediction batch against a fixed target and
// discriminator: mean_i (1 - 2 log D(pred_i)) * ||target_i - pred_i||^2.
double eq9_loss(Discriminator& d, const Tensor& pred, const Tensor& target,
                float clamp) {
  Tensor probs = d.forward(pred, /*training=*/false);
  Tensor sq = nn::per_sample_sq_error(pred, target);
  double acc = 0.0;
  for (std::int64_t i = 0; i < probs.dim(0); ++i) {
    const double di = std::clamp(probs.flat(i), clamp, 1.f - clamp);
    acc += (1.0 - 2.0 * std::log(di)) * sq.flat(i);
  }
  return acc / static_cast<double>(probs.dim(0));
}

// The gradient assembly used by GanTrainer::train_generator_step.
Tensor eq9_gradient(Discriminator& d, const Tensor& pred,
                    const Tensor& target, float clamp) {
  const std::int64_t n = pred.dim(0);
  Tensor probs = d.forward(pred, /*training=*/false);
  Tensor sq = nn::per_sample_sq_error(pred, target);
  Tensor grad_probs(Shape{n, 1});
  std::vector<float> scale(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const float di = std::clamp(probs.flat(i), clamp, 1.f - clamp);
    scale[static_cast<std::size_t>(i)] =
        (1.f - 2.f * std::log(di)) / static_cast<float>(n);
    grad_probs.flat(i) = (-2.f / di) * sq.flat(i) / static_cast<float>(n);
  }
  d.zero_grad();
  Tensor grad = d.backward(grad_probs);
  const std::int64_t inner = pred.size() / n;
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < inner; ++j) {
      const std::int64_t off = i * inner + j;
      grad.flat(off) += 2.f * scale[static_cast<std::size_t>(i)] *
                        (pred.flat(off) - target.flat(off));
    }
  }
  return grad;
}

TEST(GanLossMath, Eq9GradientMatchesFiniteDifference) {
  Rng rng(190);
  DiscriminatorConfig config;
  config.base_channels = 2;
  Discriminator d(config, rng);
  Tensor pred = Tensor::randn(Shape{2, 8, 8}, rng);
  Tensor target = Tensor::randn(Shape{2, 8, 8}, rng);
  const float clamp = 1e-4f;

  Tensor analytic = eq9_gradient(d, pred, target, clamp);

  // Spot-check a sample of coordinates with central differences.
  Rng pick(191);
  const double delta = 1e-2;
  int checked = 0;
  for (int k = 0; k < 24; ++k) {
    const std::int64_t i = pick.uniform_int(0, pred.size() - 1);
    Tensor up = pred;
    up.flat(i) += static_cast<float>(delta);
    Tensor down = pred;
    down.flat(i) -= static_cast<float>(delta);
    const double numeric =
        (eq9_loss(d, up, target, clamp) - eq9_loss(d, down, target, clamp)) /
        (2.0 * delta);
    const double denom =
        std::max({std::abs(numeric), std::abs((double)analytic.flat(i)), 0.05});
    // 0.2: float32 finite differences through a discriminator with LeakyReLU
    // kinks; a routing error would register as O(1).
    EXPECT_LT(std::abs(analytic.flat(i) - numeric) / denom, 0.2)
        << "coordinate " << i;
    ++checked;
  }
  EXPECT_EQ(checked, 24);
}

TEST(GanLossMath, Eq9WeightsLargeErrorsMoreWhenDiscriminatorRejects) {
  // The empirical loss multiplies each sample's squared error by
  // (1 - 2 log D): a sample the discriminator rejects (small D) must
  // contribute more than one it accepts, for equal squared error.
  const double rejected = 1.0 - 2.0 * std::log(0.05);
  const double accepted = 1.0 - 2.0 * std::log(0.95);
  EXPECT_GT(rejected, accepted);
  EXPECT_GT(rejected, 1.0);  // always amplifies relative to plain MSE
}

TEST(GanLossMath, Eq5DiscriminatorObjectiveViaBce) {
  // Eq. 5 maximises log D(real) + log(1 - D(fake)); our trainer minimises
  // the equivalent BCE pair. Verify the correspondence numerically.
  Tensor p_real(Shape{2, 1}, {0.8f, 0.6f});
  Tensor p_fake(Shape{2, 1}, {0.3f, 0.1f});
  const double bce =
      nn::bce_loss(p_real, 1.f).value + nn::bce_loss(p_fake, 0.f).value;
  const double eq5 = (std::log(0.8) + std::log(0.6)) / 2.0 +
                     (std::log(0.7) + std::log(0.9)) / 2.0;
  EXPECT_NEAR(bce, -eq5, 1e-5);
}

}  // namespace
}  // namespace mtsr::core
