// Unit and property tests for the free tensor operations: matmul variants,
// im2col/col2im adjointness, padding/cropping, pooling and upsampling.
#include <gtest/gtest.h>

#include "src/common/check.hpp"
#include "src/common/rng.hpp"
#include "src/tensor/tensor_ops.hpp"

namespace mtsr {
namespace {

TEST(Matmul, KnownProduct) {
  Tensor a(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b(Shape{3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.f);
}

TEST(Matmul, InnerDimMismatchThrows) {
  Tensor a(Shape{2, 3});
  Tensor b(Shape{2, 2});
  EXPECT_THROW((void)matmul(a, b), ContractViolation);
}

TEST(Matmul, TransposedVariantsAgreeWithExplicitTranspose) {
  Rng rng(1);
  Tensor a = Tensor::randn(Shape{4, 3}, rng);
  Tensor b = Tensor::randn(Shape{4, 5}, rng);
  Tensor via_tn = matmul_tn(a, b);                 // aᵀ b
  Tensor expected = matmul(transpose(a), b);
  ASSERT_EQ(via_tn.shape(), expected.shape());
  for (std::int64_t i = 0; i < via_tn.size(); ++i) {
    EXPECT_NEAR(via_tn.flat(i), expected.flat(i), 1e-5);
  }

  Tensor c = Tensor::randn(Shape{5, 3}, rng);
  Tensor via_nt = matmul_nt(a.reshape(Shape{4, 3}), c);  // a cᵀ
  Tensor expected2 = matmul(a, transpose(c));
  for (std::int64_t i = 0; i < via_nt.size(); ++i) {
    EXPECT_NEAR(via_nt.flat(i), expected2.flat(i), 1e-5);
  }
}

TEST(Transpose, RoundTripIsIdentity) {
  Rng rng(2);
  Tensor a = Tensor::randn(Shape{3, 7}, rng);
  Tensor tt = transpose(transpose(a));
  for (std::int64_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.flat(i), tt.flat(i));
  }
}

TEST(Im2col, ShapeAndContentFor2x2Kernel) {
  // 1 channel, 3x3 image, 2x2 kernel, stride 1, no padding -> 4 patches.
  Tensor img = Tensor::arange(9).reshape(Shape{1, 3, 3});
  Tensor cols = im2col(img, 2, 2, 1, 1, 0, 0);
  ASSERT_EQ(cols.shape(), Shape({4, 4}));
  // First patch (top-left): 0 1 3 4 down the rows of cols.
  EXPECT_EQ(cols.at(0, 0), 0.f);
  EXPECT_EQ(cols.at(1, 0), 1.f);
  EXPECT_EQ(cols.at(2, 0), 3.f);
  EXPECT_EQ(cols.at(3, 0), 4.f);
  // Last patch (bottom-right): 4 5 7 8.
  EXPECT_EQ(cols.at(0, 3), 4.f);
  EXPECT_EQ(cols.at(3, 3), 8.f);
}

TEST(Im2col, ZeroPaddingReadsZeros) {
  Tensor img = Tensor::ones(Shape{1, 2, 2});
  Tensor cols = im2col(img, 3, 3, 1, 1, 1, 1);
  ASSERT_EQ(cols.shape(), Shape({9, 4}));
  // Top-left output position: kernel tap (0,0) hits padding.
  EXPECT_EQ(cols.at(0, 0), 0.f);
  // Centre tap (1,1) hits the image.
  EXPECT_EQ(cols.at(4, 0), 1.f);
}

TEST(Im2colCol2im, AdjointIdentityOnOnes) {
  // col2im(im2col(x)) counts how many patches cover each pixel.
  Tensor img = Tensor::ones(Shape{1, 3, 3});
  Tensor cols = im2col(img, 2, 2, 1, 1, 0, 0);
  Tensor back = col2im(cols, 1, 3, 3, 2, 2, 1, 1, 0, 0);
  EXPECT_EQ(back.at(0, 0, 0), 1.f);  // corner covered once
  EXPECT_EQ(back.at(0, 0, 1), 2.f);  // edge covered twice
  EXPECT_EQ(back.at(0, 1, 1), 4.f);  // centre covered four times
}

TEST(Im2colCol2im, AdjointInnerProductProperty) {
  // <im2col(x), y> == <x, col2im(y)> — the defining adjoint identity the
  // conv backward pass relies on.
  Rng rng(3);
  Tensor x = Tensor::randn(Shape{2, 5, 4}, rng);
  Tensor cols = im2col(x, 3, 2, 2, 1, 1, 0);
  Tensor y = Tensor::randn(cols.shape(), rng);
  double lhs = 0.0;
  for (std::int64_t i = 0; i < cols.size(); ++i) {
    lhs += static_cast<double>(cols.flat(i)) * y.flat(i);
  }
  Tensor back = col2im(y, 2, 5, 4, 3, 2, 2, 1, 1, 0);
  double rhs = 0.0;
  for (std::int64_t i = 0; i < x.size(); ++i) {
    rhs += static_cast<double>(x.flat(i)) * back.flat(i);
  }
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(Pad2d, PlacesContentCentrally) {
  Tensor x = Tensor::ones(Shape{1, 2, 2});
  Tensor p = pad2d(x, 1, 2);
  ASSERT_EQ(p.shape(), Shape({1, 4, 6}));
  EXPECT_EQ(p.at(0, 0, 0), 0.f);
  EXPECT_EQ(p.at(0, 1, 2), 1.f);
  EXPECT_EQ(p.at(0, 2, 3), 1.f);
  EXPECT_EQ(p.at(0, 3, 5), 0.f);
}

TEST(Crop2d, ExtractsWindow) {
  Tensor x = Tensor::arange(16).reshape(Shape{4, 4});
  Tensor c = crop2d(x, 1, 2, 2, 2);
  ASSERT_EQ(c.shape(), Shape({2, 2}));
  EXPECT_EQ(c.at(0, 0), 6.f);
  EXPECT_EQ(c.at(1, 1), 11.f);
}

TEST(Crop2d, OutOfRangeThrows) {
  Tensor x(Shape{4, 4});
  EXPECT_THROW((void)crop2d(x, 3, 0, 2, 2), ContractViolation);
}

TEST(AvgPool2d, AveragesBlocks) {
  Tensor x = Tensor::arange(16).reshape(Shape{4, 4});
  Tensor p = avg_pool2d(x, 2);
  ASSERT_EQ(p.shape(), Shape({2, 2}));
  EXPECT_FLOAT_EQ(p.at(0, 0), (0 + 1 + 4 + 5) / 4.f);
  EXPECT_FLOAT_EQ(p.at(1, 1), (10 + 11 + 14 + 15) / 4.f);
}

TEST(SumPool2d, ConservesTotal) {
  Rng rng(4);
  Tensor x = Tensor::uniform(Shape{6, 6}, rng);
  Tensor p = sum_pool2d(x, 3);
  EXPECT_NEAR(p.sum(), x.sum(), 1e-4);
}

TEST(Pool2d, IndivisibleExtentThrows) {
  Tensor x(Shape{5, 4});
  EXPECT_THROW((void)avg_pool2d(x, 2), ContractViolation);
}

TEST(UpsampleNearest, ReplicatesValues) {
  Tensor x = Tensor::arange(4).reshape(Shape{2, 2});
  Tensor u = upsample_nearest2d(x, 2);
  ASSERT_EQ(u.shape(), Shape({4, 4}));
  EXPECT_EQ(u.at(0, 0), 0.f);
  EXPECT_EQ(u.at(0, 1), 0.f);
  EXPECT_EQ(u.at(1, 1), 0.f);
  EXPECT_EQ(u.at(2, 2), 3.f);
}

TEST(UpsamplePool, UpThenDownIsIdentity) {
  Rng rng(5);
  Tensor x = Tensor::randn(Shape{3, 5}, rng);
  Tensor round = avg_pool2d(upsample_nearest2d(x, 4), 4);
  for (std::int64_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(round.flat(i), x.flat(i), 1e-5);
  }
}

TEST(StackSelect, RoundTrip) {
  Rng rng(6);
  std::vector<Tensor> parts = {Tensor::randn(Shape{2, 3}, rng),
                               Tensor::randn(Shape{2, 3}, rng)};
  Tensor stacked = stack0(parts);
  ASSERT_EQ(stacked.shape(), Shape({2, 2, 3}));
  Tensor second = select0(stacked, 1);
  for (std::int64_t i = 0; i < second.size(); ++i) {
    EXPECT_EQ(second.flat(i), parts[1].flat(i));
  }
}

TEST(Concat0, JoinsAlongAxis0) {
  Tensor a = Tensor::ones(Shape{1, 3});
  Tensor b = Tensor::full(Shape{2, 3}, 2.f);
  Tensor c = concat0({a, b});
  ASSERT_EQ(c.shape(), Shape({3, 3}));
  EXPECT_EQ(c.at(0, 0), 1.f);
  EXPECT_EQ(c.at(2, 2), 2.f);
}

TEST(Concat0, TrailingDimMismatchThrows) {
  EXPECT_THROW((void)concat0({Tensor(Shape{1, 3}), Tensor(Shape{1, 4})}),
               ContractViolation);
}

// Property sweep: im2col/col2im shape algebra over kernel/stride/padding.
struct ConvGeom {
  int kernel, stride, pad;
};

class Im2colGeometry : public ::testing::TestWithParam<ConvGeom> {};

TEST_P(Im2colGeometry, ShapesFollowConvArithmetic) {
  const auto [k, s, p] = GetParam();
  const std::int64_t h = 9, w = 7, c = 2;
  Tensor img(Shape{c, h, w});
  const std::int64_t oh = (h + 2 * p - k) / s + 1;
  const std::int64_t ow = (w + 2 * p - k) / s + 1;
  Tensor cols = im2col(img, k, k, s, s, p, p);
  EXPECT_EQ(cols.dim(0), c * k * k);
  EXPECT_EQ(cols.dim(1), oh * ow);
  Tensor back = col2im(cols, c, h, w, k, k, s, s, p, p);
  EXPECT_EQ(back.shape(), img.shape());
}

INSTANTIATE_TEST_SUITE_P(Sweep, Im2colGeometry,
                         ::testing::Values(ConvGeom{1, 1, 0}, ConvGeom{3, 1, 1},
                                           ConvGeom{3, 2, 1}, ConvGeom{5, 1, 2},
                                           ConvGeom{2, 2, 0},
                                           ConvGeom{3, 3, 0}));

}  // namespace
}  // namespace mtsr
