// Tests for the Sparse Coding baseline: OMP encoder correctness and
// end-to-end SR improvement over its bicubic starting point.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/check.hpp"
#include "src/baselines/bicubic.hpp"
#include "src/baselines/linalg.hpp"
#include "src/baselines/sparse_coding.hpp"
#include "src/common/rng.hpp"
#include "src/data/milan.hpp"
#include "src/data/probes.hpp"
#include "src/metrics/metrics.hpp"

namespace mtsr::baselines {
namespace {

TEST(Omp, RecoversExactSparseCombination) {
  // Dictionary of 4 orthonormal atoms; signal = 2*atom0 - 3*atom2.
  Tensor dict = Tensor::zeros(Shape{4, 4});
  for (int i = 0; i < 4; ++i) dict.at(i, i) = 1.f;
  std::vector<float> signal = {2.f, 0.f, -3.f, 0.f};
  Tensor code = omp_encode(dict, signal.data(), 4, 2);
  EXPECT_NEAR(code.flat(0), 2.f, 1e-5);
  EXPECT_NEAR(code.flat(1), 0.f, 1e-5);
  EXPECT_NEAR(code.flat(2), -3.f, 1e-5);
}

TEST(Omp, RespectsSparsityBudget) {
  Rng rng(90);
  Tensor dict = Tensor::randn(Shape{16, 8}, rng);
  normalize_rows(dict);
  Tensor signal_t = Tensor::randn(Shape{8}, rng);
  Tensor code = omp_encode(dict, signal_t.data(), 8, 3);
  int nonzero = 0;
  for (std::int64_t i = 0; i < code.size(); ++i) {
    if (code.flat(i) != 0.f) ++nonzero;
  }
  EXPECT_LE(nonzero, 3);
  EXPECT_GE(nonzero, 1);
}

TEST(Omp, ReducesResidualMonotonically) {
  Rng rng(91);
  Tensor dict = Tensor::randn(Shape{12, 6}, rng);
  normalize_rows(dict);
  Tensor signal_t = Tensor::randn(Shape{6}, rng);

  auto residual_norm = [&](int sparsity) {
    Tensor code = omp_encode(dict, signal_t.data(), 6, sparsity);
    // residual = signal - Dᵀ code
    std::vector<double> r(6);
    for (int j = 0; j < 6; ++j) r[static_cast<std::size_t>(j)] = signal_t.flat(j);
    for (std::int64_t a = 0; a < 12; ++a) {
      for (int j = 0; j < 6; ++j) {
        r[static_cast<std::size_t>(j)] -=
            static_cast<double>(code.flat(a)) * dict.at(a, j);
      }
    }
    double acc = 0.0;
    for (double v : r) acc += v * v;
    return acc;
  };
  EXPECT_GE(residual_norm(1), residual_norm(2) - 1e-9);
  EXPECT_GE(residual_norm(2), residual_norm(4) - 1e-9);
}

TEST(SparseCodingSR, RequiresFitBeforePredict) {
  SparseCodingSR sc;
  data::UniformProbeLayout layout(8, 8, 2);
  EXPECT_THROW((void)sc.super_resolve(Tensor(Shape{8, 8}), layout),
               ContractViolation);
  EXPECT_FALSE(sc.is_fitted());
}

TEST(SparseCodingSR, ImprovesOnBicubicForStructuredTraffic) {
  data::MilanConfig mc;
  mc.rows = 24;
  mc.cols = 24;
  mc.num_hotspots = 10;
  mc.seed = 5;
  data::MilanTrafficGenerator gen(mc);
  auto train = gen.generate(60, 10);
  auto test = gen.generate(90, 2);

  data::UniformProbeLayout layout(24, 24, 2);
  SparseCodingConfig config;
  config.dictionary_size = 48;
  config.max_train_patches = 3000;
  config.seed = 6;
  SparseCodingSR sc(config);
  sc.fit(train, layout);
  EXPECT_TRUE(sc.is_fitted());

  BicubicInterpolator bicubic;
  double err_sc = 0.0, err_bc = 0.0;
  for (const Tensor& frame : test) {
    err_sc += metrics::nrmse(sc.super_resolve(frame, layout), frame);
    err_bc += metrics::nrmse(bicubic.super_resolve(frame, layout), frame);
  }
  // SC refines the bicubic mid image with learned residuals: it must not be
  // substantially worse than its own starting point on in-distribution data.
  EXPECT_LT(err_sc, err_bc * 1.10);
  EXPECT_EQ(sc.name(), "SC");
}

}  // namespace
}  // namespace mtsr::baselines
