// Tests for the SRCNN baseline: training reduces loss, prediction shape and
// improvement over raw bicubic on structured traffic.
#include <gtest/gtest.h>

#include "src/common/check.hpp"
#include "src/baselines/bicubic.hpp"
#include "src/baselines/srcnn.hpp"
#include "src/data/milan.hpp"
#include "src/data/probes.hpp"
#include "src/metrics/metrics.hpp"

namespace mtsr::baselines {
namespace {

TEST(Srcnn, RequiresFitBeforePredict) {
  Srcnn srcnn;
  data::UniformProbeLayout layout(8, 8, 2);
  EXPECT_THROW((void)srcnn.super_resolve(Tensor(Shape{8, 8}), layout),
               ContractViolation);
}

TEST(Srcnn, TrainingLossDecreases) {
  data::MilanConfig mc;
  mc.rows = 24;
  mc.cols = 24;
  mc.num_hotspots = 10;
  mc.seed = 9;
  data::MilanTrafficGenerator gen(mc);
  auto train = gen.generate(60, 8);

  data::UniformProbeLayout layout(24, 24, 4);
  SrcnnConfig config;
  config.channels1 = 8;
  config.channels2 = 4;
  config.window = 16;
  config.epochs = 20;
  config.crops_per_epoch = 24;
  Srcnn srcnn(config);
  srcnn.fit(train, layout);

  const auto& history = srcnn.loss_history();
  ASSERT_EQ(history.size(), 20u);
  // Mean of the last five epochs below the first epoch's loss.
  double tail = 0.0;
  for (std::size_t i = history.size() - 5; i < history.size(); ++i) {
    tail += history[i];
  }
  tail /= 5.0;
  EXPECT_LT(tail, history.front());
}

TEST(Srcnn, PredictsFullGridAndBeatsNothing) {
  data::MilanConfig mc;
  mc.rows = 24;
  mc.cols = 24;
  mc.num_hotspots = 10;
  mc.seed = 10;
  data::MilanTrafficGenerator gen(mc);
  auto train = gen.generate(60, 10);
  auto test = gen.generate(90, 1);

  data::UniformProbeLayout layout(24, 24, 2);
  SrcnnConfig config;
  config.channels1 = 8;
  config.channels2 = 4;
  config.window = 16;
  config.epochs = 80;
  config.crops_per_epoch = 48;
  config.learning_rate = 1e-3f;
  Srcnn srcnn(config);
  srcnn.fit(train, layout);

  Tensor out = srcnn.super_resolve(test[0], layout);
  EXPECT_EQ(out.shape(), test[0].shape());
  EXPECT_TRUE(out.all_finite());
  // Loose sanity bound: the trained network should stay in the same error
  // regime as bicubic (it refines the bicubic mid image).
  BicubicInterpolator bicubic;
  const double err_nn = metrics::nrmse(out, test[0]);
  const double err_bc =
      metrics::nrmse(bicubic.super_resolve(test[0], layout), test[0]);
  EXPECT_LT(err_nn, err_bc * 2.0);
  EXPECT_EQ(srcnn.name(), "SRCNN");
}

}  // namespace
}  // namespace mtsr::baselines
