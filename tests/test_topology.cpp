// Tests for the topology layer: sysfs cpulist parsing, detection fallback
// invariants, affinity policy selection, the worker->cpu placement function,
// and the two degradation contracts the serving pool depends on — pin
// failures warn and count but never abort, and pool reconfiguration is
// rejected while serving sessions hold the topology open.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

#include "src/common/check.hpp"
#include "src/common/parallel.hpp"
#include "src/common/topology.hpp"

namespace mtsr {
namespace {

struct PoolGuard {
  ~PoolGuard() {
    detail::simulate_pin_failure(false);
    set_affinity_policy(AffinityPolicy::kNone);
    set_num_threads(0);
    set_num_shards(0);
  }
};

TEST(Topology, ParseCpuListHandlesRangesAndSingles) {
  EXPECT_EQ(Topology::parse_cpu_list("0-3,8,10-11"),
            (std::vector<int>{0, 1, 2, 3, 8, 10, 11}));
  EXPECT_EQ(Topology::parse_cpu_list("5"), (std::vector<int>{5}));
  EXPECT_EQ(Topology::parse_cpu_list("0-1"), (std::vector<int>{0, 1}));
  // Sysfs files end with a newline; stray whitespace must not add cpus.
  EXPECT_EQ(Topology::parse_cpu_list("2-3\n"), (std::vector<int>{2, 3}));
  EXPECT_TRUE(Topology::parse_cpu_list("").empty());
  // Out-of-order and duplicated entries normalise to an ascending set.
  EXPECT_EQ(Topology::parse_cpu_list("3,1,2,1-2"),
            (std::vector<int>{1, 2, 3}));
}

TEST(Topology, DetectionAlwaysYieldsAServableLayout) {
  const Topology& topo = Topology::instance();
  ASSERT_GE(topo.node_count(), 1);
  EXPECT_GE(topo.cpu_count(), 1);
  int total = 0;
  for (const Topology::Node& node : topo.nodes()) {
    EXPECT_FALSE(node.cpus.empty()) << "node " << node.id << " has no cpus";
    total += static_cast<int>(node.cpus.size());
  }
  EXPECT_EQ(total, topo.cpu_count());
  EXPECT_FALSE(topo.summary().empty());
}

TEST(Topology, AffinityPolicyNamesRoundTrip) {
  for (AffinityPolicy policy :
       {AffinityPolicy::kNone, AffinityPolicy::kCompact,
        AffinityPolicy::kScatter}) {
    EXPECT_EQ(parse_affinity_policy(affinity_policy_name(policy)), policy);
  }
  // Unknown / absent values select the safe default.
  EXPECT_EQ(parse_affinity_policy("bogus"), AffinityPolicy::kNone);
  EXPECT_EQ(parse_affinity_policy(nullptr), AffinityPolicy::kNone);
}

TEST(Topology, CpuForWorkerStaysInsideTheMachine) {
  const int cpus = Topology::instance().cpu_count();
  for (int shard = 0; shard < 3; ++shard) {
    for (int worker = 0; worker < 4; ++worker) {
      EXPECT_EQ(detail::cpu_for_worker(AffinityPolicy::kNone, shard, 3,
                                       worker),
                -1);
      for (AffinityPolicy policy :
           {AffinityPolicy::kCompact, AffinityPolicy::kScatter}) {
        const int cpu = detail::cpu_for_worker(policy, shard, 3, worker);
        EXPECT_GE(cpu, 0) << affinity_policy_name(policy);
        EXPECT_LT(cpu, cpus) << affinity_policy_name(policy);
        // Placement is a pure function: the pool may rebuild at any time
        // and workers must land where they did before.
        EXPECT_EQ(cpu, detail::cpu_for_worker(policy, shard, 3, worker));
      }
    }
  }
}

TEST(Topology, PinFailuresDegradeToUnpinnedServing) {
  PoolGuard guard;
  const std::int64_t before = detail::pin_failure_count();
  detail::simulate_pin_failure(true);
  // Rebuild the pool with pinning requested: every worker's pin attempt
  // fails. The contract is warn-once + count, never abort — the pool must
  // come up and serve correctly anyway.
  set_affinity_policy(AffinityPolicy::kCompact);
  set_num_threads(3);

  std::atomic<std::int64_t> sum{0};
  parallel_for(100, [&](std::int64_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 4950);

  // Workers pin at startup on their own threads; give stragglers a
  // moment before asserting the failures were counted.
  for (int spins = 0; spins < 2000 && detail::pin_failure_count() == before;
       ++spins) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(detail::pin_failure_count(), before);
}

TEST(Topology, ReconfigureRejectedWhileTopologyPinsHeld) {
  PoolGuard guard;
  set_num_threads(2);
  {
    // Sessions hold one of these for their whole life (shard assignment
    // and arenas are sized against the open-time topology).
    detail::PoolTopologyPin pin;
    EXPECT_THROW(set_num_threads(4), ContractViolation);
    EXPECT_THROW(set_num_shards(2), ContractViolation);
    EXPECT_THROW(set_affinity_policy(AffinityPolicy::kCompact),
                 ContractViolation);
    EXPECT_EQ(num_threads(), 2);  // the rejected calls changed nothing
  }
  // Pin released: reconfiguration works again.
  set_num_threads(3);
  EXPECT_EQ(num_threads(), 3);
}

}  // namespace
}  // namespace mtsr
