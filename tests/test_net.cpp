// Tests for the network front door: wire-format round-trips and its
// rejection of malformed framing, the latency histogram's quantile
// contract, the bounded admission queue's one-push-per-session rounds,
// and the TCP server end to end over loopback — bitwise parity between
// wire-served and in-process inference, explicit backpressure when the
// admission queue floods, slow-client write-buffer eviction, and error
// responses that leave the connection usable.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <thread>
#include <vector>

#include "src/core/pipeline.hpp"
#include "src/data/milan.hpp"
#include "src/net/admission.hpp"
#include "src/net/client.hpp"
#include "src/net/histogram.hpp"
#include "src/net/protocol.hpp"
#include "src/net/server.hpp"
#include "src/serving/engine.hpp"
#include "src/serving/model.hpp"

namespace mtsr::net {
namespace {

struct PoolGuard {
  ~PoolGuard() {
    set_num_threads(0);
    set_num_shards(0);
  }
};

data::TrafficDataset small_dataset(std::uint64_t seed = 710,
                                   std::int64_t side = 16) {
  data::MilanConfig config;
  config.rows = side;
  config.cols = side;
  config.num_hotspots = 10;
  config.seed = seed;
  return data::TrafficDataset(
      data::MilanTrafficGenerator(config).generate(0, 40), 10, true);
}

core::PipelineConfig small_pipeline_config() {
  core::PipelineConfig config;
  config.instance = data::MtsrInstance::kUp4;
  config.window = 8;
  config.temporal_length = 3;
  config.zipnet.base_channels = 3;
  config.zipnet.zipper_modules = 3;
  config.zipnet.zipper_channels = 6;
  config.zipnet.final_channels = 8;
  config.discriminator.base_channels = 2;
  config.pretrain_steps = 20;
  config.gan_rounds = 0;
  return config;
}

OpenRequest open_request_for(const data::TrafficDataset& dataset,
                             const std::string& model) {
  OpenRequest req;
  req.model = model;
  req.instance = static_cast<std::uint8_t>(data::MtsrInstance::kUp4);
  req.rows = dataset.rows();
  req.cols = dataset.cols();
  req.window = 8;
  req.stitch_stride = 4;
  req.mean = dataset.stats().mean;
  req.stddev = dataset.stats().stddev;
  req.log_transform = true;
  return req;
}

void expect_bitwise(const Tensor& a, const Tensor& b, const char* what) {
  ASSERT_EQ(a.shape(), b.shape()) << what;
  for (std::int64_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.flat(i), b.flat(i)) << what << " differs at " << i;
  }
}

/// Extracts the single frame a codec test just encoded.
Frame must_extract(const std::vector<std::uint8_t>& bytes) {
  std::size_t consumed = 0;
  auto frame = try_extract_frame(bytes.data(), bytes.size(), &consumed);
  EXPECT_TRUE(frame.has_value());
  EXPECT_EQ(consumed, bytes.size());
  return std::move(*frame);
}

TEST(Protocol, RequestRoundTrip) {
  OpenRequest open;
  open.model = "zipnet";
  open.stream = "milan";
  open.instance = 2;
  open.log_transform = false;
  open.rows = 100;
  open.cols = 99;
  open.window = 20;
  open.stitch_stride = 10;
  open.mean = 3.25;
  open.stddev = 1.75;
  Request decoded = decode_request(must_extract(encode_open(open)));
  EXPECT_EQ(decoded.verb, Verb::kOpen);
  EXPECT_EQ(decoded.open.model, "zipnet");
  EXPECT_EQ(decoded.open.stream, "milan");
  EXPECT_EQ(decoded.open.instance, 2);
  EXPECT_FALSE(decoded.open.log_transform);
  EXPECT_EQ(decoded.open.rows, 100);
  EXPECT_EQ(decoded.open.cols, 99);
  EXPECT_EQ(decoded.open.window, 20);
  EXPECT_EQ(decoded.open.stitch_stride, 10);
  EXPECT_EQ(decoded.open.mean, 3.25);
  EXPECT_EQ(decoded.open.stddev, 1.75);

  PushRequest push;
  push.session = 42;
  push.frame = Tensor(Shape{3, 4});
  for (std::int64_t i = 0; i < push.frame.size(); ++i) {
    push.frame.flat(i) = static_cast<float>(i) * 0.5f;
  }
  decoded = decode_request(must_extract(encode_push(push)));
  EXPECT_EQ(decoded.verb, Verb::kPush);
  EXPECT_EQ(decoded.push.session, 42);
  expect_bitwise(decoded.push.frame, push.frame, "push frame");

  decoded = decode_request(must_extract(encode_close(CloseRequest{7})));
  EXPECT_EQ(decoded.verb, Verb::kClose);
  EXPECT_EQ(decoded.close.session, 7);

  decoded = decode_request(must_extract(encode_stats_request()));
  EXPECT_EQ(decoded.verb, Verb::kStats);
}

TEST(Protocol, ResponseRoundTrip) {
  PushResponse push;
  push.status = Status::kOk;
  push.session = 9;
  push.frame = Tensor(Shape{2, 2});
  push.frame.flat(0) = -1.5f;
  push.frame.flat(3) = 7.25f;
  Response decoded = decode_response(must_extract(encode_response(push)));
  EXPECT_EQ(decoded.verb, Verb::kPush);
  EXPECT_EQ(decoded.push.status, Status::kOk);
  EXPECT_EQ(decoded.push.session, 9);
  expect_bitwise(decoded.push.frame, push.frame, "push response frame");

  PushResponse rejected;
  rejected.status = Status::kRejected;
  rejected.session = 9;
  rejected.retry_after_ms = 12.5;
  decoded = decode_response(must_extract(encode_response(rejected)));
  EXPECT_EQ(decoded.push.status, Status::kRejected);
  EXPECT_EQ(decoded.push.retry_after_ms, 12.5);
  EXPECT_TRUE(decoded.push.frame.empty());

  OpenResponse open;
  open.status = Status::kError;
  open.error = "unknown model";
  decoded = decode_response(must_extract(encode_response(open)));
  EXPECT_EQ(decoded.open.status, Status::kError);
  EXPECT_EQ(decoded.open.error, "unknown model");

  StatsResponse stats;
  stats.requests = 100;
  stats.served = 90;
  stats.rejected = 4;
  stats.slo_violations = 1;
  stats.max_queue_depth = 17;
  stats.p50_ms = 1.5;
  stats.p99_ms = 9.5;
  stats.p999_ms = 20.0;
  stats.online_steps = 640;
  stats.online_promoted = 3;
  stats.online_rejected = 2;
  stats.online_staleness_s = 7.25;
  stats.online_holdout_nrmse = 0.4375;
  stats.table = "| sessions |";
  decoded = decode_response(must_extract(encode_response(stats)));
  EXPECT_EQ(decoded.stats.requests, 100);
  EXPECT_EQ(decoded.stats.served, 90);
  EXPECT_EQ(decoded.stats.rejected, 4);
  EXPECT_EQ(decoded.stats.slo_violations, 1);
  EXPECT_EQ(decoded.stats.max_queue_depth, 17);
  EXPECT_EQ(decoded.stats.p999_ms, 20.0);
  EXPECT_EQ(decoded.stats.online_steps, 640);
  EXPECT_EQ(decoded.stats.online_promoted, 3);
  EXPECT_EQ(decoded.stats.online_rejected, 2);
  EXPECT_EQ(decoded.stats.online_staleness_s, 7.25);
  EXPECT_EQ(decoded.stats.online_holdout_nrmse, 0.4375);
  EXPECT_EQ(decoded.stats.table, "| sessions |");
}

TEST(Protocol, TruncatedOversizedAndGarbageFrames) {
  const auto full = encode_close(CloseRequest{1});
  // Every strict prefix is "wait for more bytes", never an error.
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    std::size_t consumed = 1;
    const auto frame = try_extract_frame(full.data(), cut, &consumed);
    EXPECT_FALSE(frame.has_value()) << "prefix of " << cut;
    EXPECT_EQ(consumed, 0u);
  }

  // A length field beyond the cap is fatal before any allocation.
  std::vector<std::uint8_t> oversized = {0xff, 0xff, 0xff, 0xff, 2};
  std::size_t consumed = 0;
  EXPECT_THROW((void)try_extract_frame(oversized.data(), oversized.size(),
                                       &consumed, 1 << 20),
               ProtocolError);

  // Zero length cannot even hold the verb byte.
  std::vector<std::uint8_t> empty_frame = {0, 0, 0, 0};
  EXPECT_THROW((void)try_extract_frame(empty_frame.data(),
                                       empty_frame.size(), &consumed),
               ProtocolError);

  // Unknown verb byte.
  std::vector<std::uint8_t> bad_verb = {1, 0, 0, 0, 99};
  EXPECT_THROW(
      (void)try_extract_frame(bad_verb.data(), bad_verb.size(), &consumed),
      ProtocolError);

  // Structurally short payload: CLOSE with half a session id.
  std::vector<std::uint8_t> short_close = {5, 0, 0, 0,
                                           static_cast<std::uint8_t>(
                                               Verb::kClose),
                                           1, 2, 3, 4};
  auto frame = try_extract_frame(short_close.data(), short_close.size(),
                                 &consumed);
  ASSERT_TRUE(frame.has_value());
  EXPECT_THROW((void)decode_request(*frame), ProtocolError);

  // Trailing garbage after a well-formed payload.
  auto padded = encode_close(CloseRequest{1});
  padded.push_back(0xab);
  padded[0] += 1;  // lie the length forward over the garbage byte
  frame = try_extract_frame(padded.data(), padded.size(), &consumed);
  ASSERT_TRUE(frame.has_value());
  EXPECT_THROW((void)decode_request(*frame), ProtocolError);

  // Absurd tensor dims inside a small frame.
  PushRequest push;
  push.session = 1;
  push.frame = Tensor(Shape{1, 1});
  auto wire = encode_push(push);
  wire[5 + 8] = 0xff;  // rows (after verb + session): 4 GB worth of cells
  wire[5 + 9] = 0xff;
  wire[5 + 10] = 0xff;
  wire[5 + 11] = 0xff;
  frame = try_extract_frame(wire.data(), wire.size(), &consumed);
  ASSERT_TRUE(frame.has_value());
  EXPECT_THROW((void)decode_request(*frame), ProtocolError);
}

TEST(Histogram, QuantilesMergeAndReset) {
  LatencyHistogram h;
  EXPECT_EQ(h.quantile(0.5), 0.0);
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i));
  EXPECT_EQ(h.count(), 1000);
  EXPECT_EQ(h.max_micros(), 1000.0);
  // Bucket width is <= ~3% above the linear range and exact below it.
  EXPECT_NEAR(h.quantile(0.50), 500.0, 500.0 * 0.04);
  EXPECT_NEAR(h.quantile(0.99), 990.0, 990.0 * 0.04);
  EXPECT_EQ(h.quantile(1.0), 1000.0);
  EXPECT_GE(h.quantile(0.999), h.quantile(0.99));
  EXPECT_GE(h.quantile(0.99), h.quantile(0.50));

  // The exact-count region: 10 samples below 32 us land in unit buckets
  // [i, i+1), and quantile() reports the bucket's upper edge.
  LatencyHistogram small;
  for (int i = 1; i <= 10; ++i) small.record(static_cast<double>(i));
  EXPECT_EQ(small.quantile(0.5), 6.0);
  EXPECT_EQ(small.quantile(0.1), 2.0);

  LatencyHistogram other;
  for (int i = 0; i < 1000; ++i) other.record(4000.0);
  other.merge(h);
  EXPECT_EQ(other.count(), 2000);
  EXPECT_EQ(other.max_micros(), 4000.0);
  // Half the mass sits at 4 ms, so the median jumps there (within bucket).
  EXPECT_NEAR(other.quantile(0.75), 4000.0, 4000.0 * 0.04);

  other.reset();
  EXPECT_EQ(other.count(), 0);
  EXPECT_EQ(other.quantile(0.99), 0.0);
}

TEST(Admission, BoundedQueueAndDispatchRounds) {
  AdmissionQueue queue(3);
  auto push_for = [](std::uint64_t conn, std::int64_t session) {
    PendingPush p;
    p.connection = conn;
    p.session = session;
    p.frame = Tensor(Shape{1, 1});
    return p;
  };
  EXPECT_TRUE(queue.enqueue(push_for(1, 10)));
  EXPECT_TRUE(queue.enqueue(push_for(1, 10)));  // same session, rides along
  EXPECT_TRUE(queue.enqueue(push_for(2, 20)));
  EXPECT_FALSE(queue.enqueue(push_for(2, 30)));  // over capacity
  EXPECT_EQ(queue.depth(), 3);
  EXPECT_EQ(queue.max_depth(), 3);
  EXPECT_EQ(queue.rejected(), 1);

  // Round 1: one push per distinct session, arrival order preserved.
  auto round = queue.next_round();
  ASSERT_EQ(round.size(), 2u);
  EXPECT_EQ(round[0].session, 10);
  EXPECT_EQ(round[1].session, 20);
  EXPECT_EQ(queue.depth(), 1);

  // Round 2: the session-10 push that waited out round 1.
  round = queue.next_round();
  ASSERT_EQ(round.size(), 1u);
  EXPECT_EQ(round[0].session, 10);
  EXPECT_TRUE(queue.next_round().empty());

  // Dropping a connection removes only its pushes.
  EXPECT_TRUE(queue.enqueue(push_for(1, 10)));
  EXPECT_TRUE(queue.enqueue(push_for(2, 20)));
  EXPECT_EQ(queue.drop_connection(1), 1);
  EXPECT_EQ(queue.depth(), 1);
  EXPECT_EQ(queue.drop_session(20), 1);
  EXPECT_EQ(queue.depth(), 0);
}

/// Shared fixture bits: a trained-enough tiny model behind an engine.
struct ServedEngine {
  data::TrafficDataset dataset = small_dataset();
  core::MtsrPipeline pipeline{small_pipeline_config(), dataset};
  serving::Engine engine;

  ServedEngine() {
    engine.register_model(
        "zipnet",
        std::make_shared<serving::ZipNetModel>(pipeline.generator()));
  }
};

TEST(Server, LoopbackServedFramesAreBitwiseIdenticalToInProcess) {
  PoolGuard guard;
  ServedEngine served;
  Server server(served.engine, ServerConfig{});
  ASSERT_GT(server.port(), 0);
  std::thread loop([&] { server.run(); });

  const int kFrames = 6;
  std::vector<Tensor> wire_results;
  {
    Client client("127.0.0.1", server.port());
    const auto open =
        client.open(open_request_for(served.dataset, "zipnet"));
    ASSERT_EQ(open.status, Status::kOk);
    EXPECT_EQ(open.temporal_length, 3);
    EXPECT_EQ(open.frames_until_ready, 3);

    for (int t = 0; t < kFrames; ++t) {
      const auto resp = client.push(open.session, served.dataset.frame(t));
      ASSERT_NE(resp.status, Status::kError) << resp.error;
      if (t + 1 < open.temporal_length) {
        EXPECT_EQ(resp.status, Status::kWarmup);
        EXPECT_EQ(resp.frames_until_ready,
                  open.temporal_length - (t + 1));
      } else {
        ASSERT_EQ(resp.status, Status::kOk);
        wire_results.push_back(resp.frame);
      }
    }
    const auto closed = client.close_session(open.session);
    EXPECT_EQ(closed.status, Status::kOk);

    const auto stats = client.stats();
    EXPECT_EQ(stats.served,
              static_cast<std::int64_t>(wire_results.size()));
    EXPECT_EQ(stats.rejected, 0);
    EXPECT_NE(stats.table.find("front door"), std::string::npos);
  }
  server.stop();
  loop.join();

  // Control: the same frames through a second engine over the SAME model
  // instance, in process. Runs strictly after the server thread exits so
  // the (single-threaded) serving stack is never driven from two threads.
  serving::Engine control;
  control.register_model(
      "zipnet",
      std::make_shared<serving::ZipNetModel>(served.pipeline.generator()));
  serving::SessionConfig cfg = serving::SessionConfig::from_dataset(
      "zipnet", data::MtsrInstance::kUp4, served.dataset, 8, 4);
  const auto id = control.open_session(cfg);
  std::size_t served_ix = 0;
  for (int t = 0; t < kFrames; ++t) {
    const auto out = control.push(id, served.dataset.frame(t));
    if (!out.has_value()) continue;
    ASSERT_LT(served_ix, wire_results.size());
    expect_bitwise(wire_results[served_ix], *out, "wire vs in-process");
    ++served_ix;
  }
  EXPECT_EQ(served_ix, wire_results.size());
}

TEST(Server, BackpressureRejectsWhenAdmissionQueueFloods) {
  PoolGuard guard;
  ServedEngine served;
  ServerConfig config;
  config.max_queue_depth = 2;
  config.retry_after_ms = 25;
  Server server(served.engine, config);
  server.set_auto_drain(false);  // pile pushes up without serving them

  Client client("127.0.0.1", server.port());
  std::vector<std::int64_t> sessions;
  // Interleave poll_once so OPEN responses arrive: the server and the test
  // share this thread (the single-step seam), so open() cannot block.
  for (int i = 0; i < 4; ++i) {
    auto req = open_request_for(served.dataset, "zipnet");
    req.stream = "";  // distinct sessions -> distinct round slots
    std::thread step([&] {
      for (int k = 0; k < 150; ++k) server.poll_once(2);
    });
    const auto open = client.open(req);
    step.join();
    ASSERT_EQ(open.status, Status::kOk);
    sessions.push_back(open.session);
  }

  // Four pushes for four distinct sessions; capacity 2 -> 2 rejections.
  for (const auto id : sessions) {
    client.send_push(id, served.dataset.frame(0));
  }
  for (int k = 0; k < 200 && server.front_door_stats().pushes < 4; ++k) {
    server.poll_once(5);
  }
  auto fd = server.front_door_stats();
  ASSERT_EQ(fd.pushes, 4);
  EXPECT_EQ(fd.rejected, 2);
  EXPECT_EQ(fd.queue_depth, 2);
  EXPECT_EQ(fd.max_queue_depth, 2);
  EXPECT_EQ(fd.queue_cap, 2);

  // The two rejections answered immediately with the retry hint.
  for (int i = 0; i < 2; ++i) {
    std::thread step([&] {
      for (int k = 0; k < 150; ++k) server.poll_once(2);
    });
    const auto resp = client.poll_push(2000);
    step.join();
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->status, Status::kRejected);
    EXPECT_EQ(resp->retry_after_ms, 25.0);
  }

  // Draining serves the two admitted pushes (warm-up responses here).
  server.drain();
  for (int i = 0; i < 2; ++i) {
    std::thread step([&] {
      for (int k = 0; k < 150; ++k) server.poll_once(2);
    });
    const auto resp = client.poll_push(2000);
    step.join();
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->status, Status::kWarmup);
  }
  fd = server.front_door_stats();
  EXPECT_EQ(fd.queue_depth, 0);
  EXPECT_EQ(fd.warmups, 2);
}

TEST(Server, SlowClientExceedingWriteBufferIsEvicted) {
  PoolGuard guard;
  ServedEngine served;
  ServerConfig config;
  config.max_write_buffer = 16 * 1024;  // ~16 served 16x16 frames
  config.send_buffer_bytes = 4096;      // stall the kernel path early
  Server server(served.engine, config);
  std::thread loop([&] { server.run(); });

  {
    ClientConfig ccfg;
    ccfg.recv_buffer_bytes = 4096;
    Client client("127.0.0.1", server.port(), ccfg);
    const auto open =
        client.open(open_request_for(served.dataset, "zipnet"));
    ASSERT_EQ(open.status, Status::kOk);

    // Never read a push response: served frames back up through the
    // kernel buffers into the server's userspace write buffer.
    for (int t = 0; t < 120; ++t) {
      client.send_push(
          open.session,
          served.dataset.frame(t % served.dataset.frame_count()));
      if (server.front_door_stats().evicted > 0) break;
    }
    for (int k = 0; k < 400 && server.front_door_stats().evicted == 0;
         ++k) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  server.stop();
  loop.join();

  const auto fd = server.front_door_stats();
  EXPECT_EQ(fd.evicted, 1);
  EXPECT_EQ(fd.connections_open, 0);
  // Eviction closed the connection's sessions server-side.
  EXPECT_EQ(served.engine.session_count(), 0);
}

TEST(Server, ErrorResponsesLeaveTheConnectionUsable) {
  PoolGuard guard;
  ServedEngine served;
  Server server(served.engine, ServerConfig{});
  std::thread loop([&] { server.run(); });
  {
    Client client("127.0.0.1", server.port());

    // Unknown model.
    auto req = open_request_for(served.dataset, "no-such-model");
    auto open = client.open(req);
    EXPECT_EQ(open.status, Status::kError);
    EXPECT_NE(open.error.find("no-such-model"), std::string::npos);

    // Push to a session that does not exist.
    auto push = client.push(12345, served.dataset.frame(0));
    EXPECT_EQ(push.status, Status::kError);

    // A real session still opens and serves on the same connection.
    open = client.open(open_request_for(served.dataset, "zipnet"));
    ASSERT_EQ(open.status, Status::kOk);

    // Wrong frame geometry is rejected before admission.
    push = client.push(open.session, Tensor(Shape{4, 4}));
    EXPECT_EQ(push.status, Status::kError);
    EXPECT_NE(push.error.find("shape"), std::string::npos);

    // And the session still works after all of the above.
    push = client.push(open.session, served.dataset.frame(0));
    EXPECT_EQ(push.status, Status::kWarmup);

    // Closing someone else's session id fails; closing ours succeeds.
    EXPECT_EQ(client.close_session(999).status, Status::kError);
    EXPECT_EQ(client.close_session(open.session).status, Status::kOk);

    const auto fd = server.front_door_stats();
    EXPECT_EQ(fd.errors, 4);
    EXPECT_EQ(fd.protocol_errors, 0);
  }
  server.stop();
  loop.join();
}

TEST(Server, GarbageFramesCutTheConnection) {
  PoolGuard guard;
  ServedEngine served;
  Server server(served.engine, ServerConfig{});
  std::thread loop([&] { server.run(); });
  {
    Client good("127.0.0.1", server.port());
    const auto open =
        good.open(open_request_for(served.dataset, "zipnet"));
    ASSERT_EQ(open.status, Status::kOk);

    // A raw socket sends a frame with an unknown verb byte: the server
    // counts a protocol error and cuts that connection (EOF client-side),
    // leaving every other connection untouched.
    const int raw = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(raw, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(server.port()));
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(::connect(raw, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    auto wire = encode_close(CloseRequest{1});
    wire[4] = 0x63;  // clobber the verb byte
    ASSERT_EQ(::send(raw, wire.data(), wire.size(), 0),
              static_cast<ssize_t>(wire.size()));
    char sink[16];
    EXPECT_EQ(::recv(raw, sink, sizeof(sink), 0), 0);  // orderly EOF
    ::close(raw);

    for (int k = 0;
         k < 400 && server.front_door_stats().protocol_errors == 0; ++k) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_EQ(server.front_door_stats().protocol_errors, 1);

    // The good connection is unaffected.
    const auto resp = good.push(open.session, served.dataset.frame(0));
    EXPECT_EQ(resp.status, Status::kWarmup);
  }
  server.stop();
  loop.join();
}

}  // namespace
}  // namespace mtsr::net
