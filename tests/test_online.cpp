// Tests for the continuous-learning service (src/online): FrameTap
// drop-oldest semantics, the engine frame sink across all three push paths
// (the same hook the net front door's push_all drain feeds), holdout-gated
// checkpoint promotion with staleness bookkeeping, forced-rejection leaving
// serving bit-identical (background trainer running or not), concurrent
// serve+train with zero dropped frames (the TSan leg runs this file), and
// torn-checkpoint rejection on top of the atomic save path.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>
#include <vector>

#include "src/common/check.hpp"
#include "src/common/parallel.hpp"
#include "src/core/pipeline.hpp"
#include "src/data/milan.hpp"
#include "src/nn/model_io.hpp"
#include "src/online/trainer.hpp"
#include "src/serving/engine.hpp"
#include "src/serving/model.hpp"

namespace mtsr::online {
namespace {

struct PoolGuard {
  ~PoolGuard() {
    set_num_threads(0);
    set_num_shards(0);
  }
};

data::TrafficDataset small_dataset(std::uint64_t seed = 510,
                                   std::int64_t side = 16) {
  data::MilanConfig config;
  config.rows = side;
  config.cols = side;
  config.num_hotspots = 10;
  config.seed = seed;
  return data::TrafficDataset(
      data::MilanTrafficGenerator(config).generate(0, 40), 10);
}

core::PipelineConfig small_pipeline_config() {
  core::PipelineConfig config;
  config.instance = data::MtsrInstance::kUp4;
  config.window = 8;
  config.temporal_length = 3;
  config.zipnet.base_channels = 3;
  config.zipnet.zipper_modules = 3;
  config.zipnet.zipper_channels = 6;
  config.zipnet.final_channels = 8;
  config.discriminator.base_channels = 2;
  config.pretrain_steps = 20;
  config.gan_rounds = 0;
  return config;
}

serving::SessionConfig stream_config(const data::TrafficDataset& dataset) {
  return serving::SessionConfig::from_dataset(
      "zipnet", data::MtsrInstance::kUp4, dataset, 8, 4);
}

TrainerConfig small_online_config(const data::TrafficDataset& dataset,
                                  const char* prefix) {
  TrainerConfig config = TrainerConfig::from_dataset(
      "zipnet", data::MtsrInstance::kUp4, dataset, 8);
  config.trainer.batch_size = 4;
  config.steps_per_round = 2;
  config.rounds_per_checkpoint = 1;
  config.holdout_frames = 2;
  config.checkpoint_prefix = prefix;
  return config;
}

void expect_bitwise(const Tensor& a, const Tensor& b, const char* what) {
  ASSERT_EQ(a.shape(), b.shape()) << what;
  for (std::int64_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.flat(i), b.flat(i)) << what << " differs at " << i;
  }
}

void remove_checkpoints(const Trainer& trainer) {
  for (const auto& path : trainer.retained_checkpoints()) {
    std::remove(path.c_str());
  }
}

Tensor constant_frame(std::int64_t side, float value) {
  Tensor frame(Shape{side, side});
  frame.fill(value);
  return frame;
}

TEST(FrameTap, DropOldestAtCapacity) {
  FrameTap tap(/*capacity_per_stream=*/3);
  EXPECT_TRUE(tap.snapshot("live").empty());
  for (int i = 0; i < 5; ++i) {
    tap.publish("live", constant_frame(4, static_cast<float>(i)));
  }
  // 5 published into a 3-ring: frames 0 and 1 evicted, 2..4 left in order.
  const auto frames = tap.snapshot("live");
  ASSERT_EQ(frames.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(frames[static_cast<std::size_t>(i)].flat(0),
              static_cast<float>(i + 2));
  }

  tap.publish("other", constant_frame(4, 9.f));
  const FrameTapStats stats = tap.stats();
  EXPECT_EQ(stats.published, 6);
  EXPECT_EQ(stats.dropped, 2);
  EXPECT_EQ(stats.buffered, 4);
  EXPECT_EQ(stats.streams, 2);
  EXPECT_EQ(tap.streams(), (std::vector<std::string>{"live", "other"}));
  // Eviction is per-ring: "other" kept its only frame.
  EXPECT_EQ(tap.snapshot("other").size(), 1u);
}

// The tap hook fires once per distinct stream per dispatch round on every
// push path. push_all is what the net front door's drain calls, so this is
// also the wire-ingress coverage.
TEST(OnlineTrainer, TapFedByAllEnginePushPaths) {
  data::TrafficDataset dataset = small_dataset();
  core::MtsrPipeline pipeline(small_pipeline_config(), dataset);
  serving::Engine engine;
  engine.register_model(
      "zipnet", std::make_shared<serving::ZipNetModel>(pipeline.generator()));
  Trainer trainer(engine, pipeline.generator(),
                  small_online_config(dataset, "test-online-paths"));

  serving::SessionConfig tagged = stream_config(dataset);
  tagged.stream = "live";
  const auto a = engine.open_session(tagged);
  const auto b = engine.open_session(tagged);
  serving::SessionConfig untagged = stream_config(dataset);
  const auto c = engine.open_session(untagged);

  // push(): one publish under the session's key.
  (void)engine.push(c, dataset.frame(0));
  EXPECT_EQ(trainer.tap().stats().published, 1);
  EXPECT_EQ(trainer.tap().snapshot("session-" + std::to_string(c)).size(),
            1u);

  // push_all(): two tagged consumers of "live" + one untagged session in
  // one round — "live" publishes ONCE, the untagged key once.
  (void)engine.push_all({a, b, c},
                        {dataset.frame(1), dataset.frame(1),
                         dataset.frame(1)});
  EXPECT_EQ(trainer.tap().stats().published, 3);
  EXPECT_EQ(trainer.tap().snapshot("live").size(), 1u);

  // push_fused(): N consumers of one snapshot publish exactly once.
  (void)engine.push_fused({a, b}, dataset.frame(2));
  EXPECT_EQ(trainer.tap().stats().published, 4);
  EXPECT_EQ(trainer.tap().snapshot("live").size(), 2u);
  EXPECT_EQ(trainer.tap().stats().dropped, 0);

  engine.close_session(a);
  engine.close_session(b);
  engine.close_session(c);
}

TEST(OnlineTrainer, PromotionThroughHoldoutGate) {
  data::TrafficDataset dataset = small_dataset(511);
  core::MtsrPipeline pipeline(small_pipeline_config(), dataset);
  serving::Engine engine;
  engine.register_model(
      "zipnet", std::make_shared<serving::ZipNetModel>(pipeline.generator()));

  TrainerConfig config = small_online_config(dataset, "test-online-promote");
  // A wide-open gate: every candidate passes, so this test pins the
  // promotion plumbing (reload + counters + staleness), not gate policy.
  config.max_nrmse_regression = 1e6;
  config.retain_checkpoints = 2;
  Trainer trainer(engine, pipeline.generator(), config);

  const auto id = engine.open_session(stream_config(dataset));
  for (std::int64_t t = 0; t < 10; ++t) (void)engine.push(id, dataset.frame(t));

  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const double staleness_before = trainer.stats().staleness_seconds;
  EXPECT_GE(staleness_before, 0.05);

  EXPECT_EQ(trainer.run_rounds(2), 2);
  const auto stats = trainer.stats();
  EXPECT_EQ(stats.candidates, 2);
  EXPECT_EQ(stats.promoted, 2);  // acceptance floor: >= 2 reloads applied
  EXPECT_EQ(stats.rejected, 0);
  EXPECT_EQ(stats.steps, 4);
  EXPECT_GE(stats.holdout_nrmse, 0.0);
  // Promotion resets the staleness clock.
  EXPECT_LT(stats.staleness_seconds, staleness_before);

  // Retention: only the newest `retain_checkpoints` candidate files live.
  const auto retained = trainer.retained_checkpoints();
  ASSERT_EQ(retained.size(), 2u);
  for (const auto& path : retained) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
  }

  // The engine reports the trainer through its stats surface.
  const auto engine_stats = engine.stats();
  ASSERT_TRUE(engine_stats.online.has_value());
  EXPECT_EQ(engine_stats.online->promoted, 2);
  const std::string table = serving::render_stats_table(engine_stats);
  EXPECT_NE(table.find("online trainer"), std::string::npos);
  EXPECT_NE(table.find("2 promoted"), std::string::npos);

  engine.close_session(id);
  remove_checkpoints(trainer);
}

TEST(OnlineTrainer, RejectedCandidateLeavesServingBitIdentical) {
  data::TrafficDataset dataset = small_dataset(512);
  core::MtsrPipeline pipeline(small_pipeline_config(), dataset);
  serving::Engine online_engine;
  online_engine.register_model(
      "zipnet", std::make_shared<serving::ZipNetModel>(pipeline.generator()));
  serving::Engine control;
  control.register_model(
      "zipnet", std::make_shared<serving::ZipNetModel>(pipeline.generator()));

  TrainerConfig config = small_online_config(dataset, "test-online-reject");
  config.max_nrmse_regression = -1.0;  // negative margin: reject everything
  Trainer trainer(online_engine, pipeline.generator(), config);

  const auto online_id = online_engine.open_session(stream_config(dataset));
  const auto control_id = control.open_session(stream_config(dataset));
  for (std::int64_t t = 0; t < 10; ++t) {
    auto a = online_engine.push(online_id, dataset.frame(t));
    auto b = control.push(control_id, dataset.frame(t));
    ASSERT_EQ(a.has_value(), b.has_value());
    if (a) expect_bitwise(*a, *b, "pre-training serving parity");
  }

  EXPECT_GE(trainer.run_rounds(3), 3);
  const auto stats = trainer.stats();
  EXPECT_EQ(stats.candidates, 3);
  EXPECT_EQ(stats.promoted, 0);
  EXPECT_EQ(stats.rejected, 3);

  // The trainer fine-tuned its clone and emitted candidates, but none
  // promoted: the engine must keep serving the original weights bitwise.
  for (std::int64_t t = 10; t < 14; ++t) {
    auto a = online_engine.push(online_id, dataset.frame(t));
    auto b = control.push(control_id, dataset.frame(t));
    ASSERT_TRUE(a && b);
    expect_bitwise(*a, *b, "post-rejection serving parity");
  }

  online_engine.close_session(online_id);
  control.close_session(control_id);
  remove_checkpoints(trainer);
}

// Background thread + serving thread, promotions landing mid-stream: every
// admitted push yields a frame once warm (zero dropped/duplicated blocks).
// The TSan CI leg runs this against MTSR_THREADS=4 MTSR_SHARDS=2.
TEST(OnlineTrainer, ConcurrentServeAndTrainDropsNothing) {
  data::TrafficDataset dataset = small_dataset(513);
  core::MtsrPipeline pipeline(small_pipeline_config(), dataset);
  serving::Engine engine;
  engine.register_model(
      "zipnet", std::make_shared<serving::ZipNetModel>(pipeline.generator()));

  TrainerConfig config = small_online_config(dataset, "test-online-concur");
  config.max_nrmse_regression = 1e6;  // promote eagerly while serving
  config.idle_wait_ms = 1.0;
  Trainer trainer(engine, pipeline.generator(), config);

  const auto id = engine.open_session(stream_config(dataset));
  const std::int64_t warmup = engine.session(id).temporal_length() - 1;
  trainer.start();
  EXPECT_TRUE(trainer.running());

  std::int64_t served = 0;
  for (std::int64_t t = 0; t < 30; ++t) {
    if (engine.push(id, dataset.frame(t % dataset.frame_count()))) ++served;
    (void)engine.stats();  // the other documented concurrent surface
  }
  trainer.stop();
  EXPECT_FALSE(trainer.running());
  EXPECT_EQ(trainer.last_error(), std::string());
  EXPECT_EQ(served, 30 - warmup);

  const auto stats = trainer.stats();
  EXPECT_EQ(stats.tap_published, 30);
  EXPECT_EQ(stats.promoted + stats.rejected, stats.candidates);

  engine.close_session(id);
  remove_checkpoints(trainer);
}

// A running trainer that never promotes must be invisible to serving:
// outputs stay bitwise-identical to an engine with no trainer at all.
TEST(OnlineTrainer, NonPromotingBackgroundTrainerKeepsServingBitwise) {
  data::TrafficDataset dataset = small_dataset(514);
  core::MtsrPipeline pipeline(small_pipeline_config(), dataset);
  serving::Engine online_engine;
  online_engine.register_model(
      "zipnet", std::make_shared<serving::ZipNetModel>(pipeline.generator()));
  serving::Engine control;
  control.register_model(
      "zipnet", std::make_shared<serving::ZipNetModel>(pipeline.generator()));

  TrainerConfig config = small_online_config(dataset, "test-online-shadow");
  config.max_nrmse_regression = -1.0;  // fine-tune hard, promote never
  config.idle_wait_ms = 1.0;
  Trainer trainer(online_engine, pipeline.generator(), config);

  const auto online_id = online_engine.open_session(stream_config(dataset));
  const auto control_id = control.open_session(stream_config(dataset));
  trainer.start();
  for (std::int64_t t = 0; t < 24; ++t) {
    auto a = online_engine.push(online_id,
                                dataset.frame(t % dataset.frame_count()));
    auto b = control.push(control_id,
                          dataset.frame(t % dataset.frame_count()));
    ASSERT_EQ(a.has_value(), b.has_value());
    if (a) expect_bitwise(*a, *b, "shadow-training serving parity");
  }
  trainer.stop();
  EXPECT_EQ(trainer.last_error(), std::string());
  EXPECT_EQ(trainer.stats().promoted, 0);

  online_engine.close_session(online_id);
  control.close_session(control_id);
  remove_checkpoints(trainer);
}

TEST(OnlineTrainer, TornCheckpointRejectedAndServingUntouched) {
  data::TrafficDataset dataset = small_dataset(515);
  core::MtsrPipeline pipeline(small_pipeline_config(), dataset);
  serving::Engine engine;
  engine.register_model(
      "zipnet", std::make_shared<serving::ZipNetModel>(pipeline.generator()));
  const auto id = engine.open_session(stream_config(dataset));
  std::vector<Tensor> before;
  for (std::int64_t t = 0; t < 6; ++t) {
    if (auto out = engine.push(id, dataset.frame(t))) {
      before.push_back(*out);
    }
  }

  // A healthy save is atomic: the final file round-trips and no temp file
  // survives.
  const std::string path = "test-online-torn.bin";
  nn::save_model(path, pipeline.generator());
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  engine.reload_model("zipnet", path);

  // Simulate the torn write the atomic path prevents: a truncated
  // checkpoint must throw out of reload_model...
  std::ifstream in(path, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  {
    std::ofstream torn(path, std::ios::binary | std::ios::trunc);
    torn.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_THROW(engine.reload_model("zipnet", path), std::exception);

  // ...and the old weights keep serving bit-identically. The control
  // session replays the same history first so both sessions' temporal
  // windows line up frame for frame.
  serving::Engine control;
  control.register_model(
      "zipnet", std::make_shared<serving::ZipNetModel>(pipeline.generator()));
  const auto control_id = control.open_session(stream_config(dataset));
  for (std::int64_t t = 0; t < 6; ++t) {
    (void)control.push(control_id, dataset.frame(t));
  }
  std::size_t produced = 0;
  for (std::int64_t t = 0; t < 6; ++t) {
    auto a = engine.push(id, dataset.frame(t));
    auto b = control.push(control_id, dataset.frame(t));
    ASSERT_EQ(a.has_value(), b.has_value());
    if (a) {
      expect_bitwise(*a, *b, "post-torn-reload serving parity");
      ++produced;
    }
  }
  EXPECT_GT(produced, 0u);

  engine.close_session(id);
  control.close_session(control_id);
  std::remove(path.c_str());
}

TEST(OnlineTrainer, ConfigValidation) {
  data::TrafficDataset dataset = small_dataset(516);
  core::MtsrPipeline pipeline(small_pipeline_config(), dataset);
  serving::Engine engine;
  engine.register_model(
      "zipnet", std::make_shared<serving::ZipNetModel>(pipeline.generator()));

  TrainerConfig config = small_online_config(dataset, "test-online-bad");
  config.model = "missing";
  EXPECT_THROW(Trainer(engine, pipeline.generator(), config),
               ContractViolation);

  config = small_online_config(dataset, "test-online-bad");
  config.holdout_frames = 0;
  EXPECT_THROW(Trainer(engine, pipeline.generator(), config),
               ContractViolation);

  EXPECT_THROW(FrameTap(0), ContractViolation);
}

}  // namespace
}  // namespace mtsr::online
