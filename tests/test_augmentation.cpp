// Tests for window-cropping augmentation and moving-average stitching
// (Section 4 / Fig. 7): the paper's 441-window count, sample geometry, and
// full-grid reconstruction.
#include <gtest/gtest.h>

#include "src/common/check.hpp"
#include "src/common/rng.hpp"
#include "src/data/augmentation.hpp"
#include "src/tensor/tensor_ops.hpp"

namespace mtsr::data {
namespace {

TrafficDataset make_dataset(std::int64_t side, int count,
                            std::uint64_t seed = 90) {
  Rng rng(seed);
  std::vector<Tensor> frames;
  for (int i = 0; i < count; ++i) {
    frames.push_back(Tensor::uniform(Shape{side, side}, rng, 10.f, 100.f));
  }
  return TrafficDataset(std::move(frames), 10);
}

TEST(Augmentation, PaperGeometryYields441Windows) {
  // The paper: 100x100 snapshots cropped into 80x80 windows at offset 1
  // produce 441 sub-frames (21 x 21).
  EXPECT_EQ(windows_per_snapshot(100, 100, 80, 1), 441);
}

TEST(Augmentation, WindowCountsForOtherGeometries) {
  EXPECT_EQ(windows_per_snapshot(40, 40, 40, 1), 1);
  EXPECT_EQ(windows_per_snapshot(40, 40, 20, 4), 6 * 6);
  // Stride not dividing the range: boundary window is clamped in.
  EXPECT_EQ(windows_per_snapshot(10, 10, 4, 5), 3 * 3);
}

TEST(Augmentation, EnumerateRespectsTemporalLength) {
  auto specs = enumerate_samples(8, 8, 8, 1, 0, 5, 3);
  // Frames 2, 3, 4 are eligible (need S-1 = 2 predecessors).
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs.front().t, 2);
  EXPECT_EQ(specs.back().t, 4);
}

TEST(Augmentation, MakeSampleShapes) {
  TrafficDataset ds = make_dataset(16, 6);
  UniformProbeLayout layout(8, 8, 2);
  Sample sample = make_sample(ds, layout, {3, 4, 2}, 3, 8);
  EXPECT_EQ(sample.input.shape(), Shape({3, 4, 4}));
  EXPECT_EQ(sample.target.shape(), Shape({8, 8}));
}

TEST(Augmentation, SampleInputIsWindowLocalAggregate) {
  TrafficDataset ds = make_dataset(16, 4);
  UniformProbeLayout layout(8, 8, 4);
  const SampleSpec spec{2, 5, 3};
  Sample sample = make_sample(ds, layout, spec, 1, 8);
  // Input slice 0 must equal the probe average of the cropped window of the
  // (normalised) frame at t = 2.
  Tensor window = crop2d(ds.normalized_frame(2), 5, 3, 8, 8);
  Tensor expected = layout.coarsen(window);
  for (std::int64_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(sample.input.flat(i), expected.flat(i), 1e-6);
  }
}

TEST(Augmentation, SampleTargetIsNormalisedCrop) {
  TrafficDataset ds = make_dataset(12, 4);
  UniformProbeLayout layout(4, 4, 2);
  Sample sample = make_sample(ds, layout, {3, 2, 6}, 2, 4);
  Tensor expected = crop2d(ds.normalized_frame(3), 2, 6, 4, 4);
  for (std::int64_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(sample.target.flat(i), expected.flat(i));
  }
}

TEST(Augmentation, MakeSampleValidatesSpec) {
  TrafficDataset ds = make_dataset(12, 4);
  UniformProbeLayout layout(4, 4, 2);
  EXPECT_THROW((void)make_sample(ds, layout, {0, 0, 0}, 2, 4),
               ContractViolation);  // t < S-1
  EXPECT_THROW((void)make_sample(ds, layout, {2, 10, 0}, 2, 4),
               ContractViolation);  // window out of range
  UniformProbeLayout wrong(8, 8, 2);
  EXPECT_THROW((void)make_sample(ds, wrong, {2, 0, 0}, 2, 4),
               ContractViolation);  // layout/window mismatch
}

TEST(Stitching, IdentityPredictorReconstructsTruth) {
  // If the "predictor" returns the true window, stitching must reproduce
  // the normalised frame exactly (moving average of identical overlaps).
  TrafficDataset ds = make_dataset(12, 5);
  UniformProbeLayout layout(6, 6, 2);
  const std::int64_t t = 3, s = 2, window = 6, stride = 3;
  Tensor truth = ds.normalized_frame(t);
  // Capture crops keyed by the coarse input; emulate a perfect oracle by
  // recomputing the window from its origin. The predictor interface only
  // sees the input, so track origins via a queue matching stitch order.
  std::vector<Tensor> expected_windows;
  for (std::int64_t r0 = 0; r0 + window <= 12; r0 += stride) {
    for (std::int64_t c0 = 0; c0 + window <= 12; c0 += stride) {
      expected_windows.push_back(crop2d(truth, r0, c0, window, window));
    }
  }
  std::size_t next = 0;
  WindowPredictor oracle = [&](const Tensor&) {
    return expected_windows.at(next++);
  };
  Tensor stitched =
      stitch_prediction(ds, layout, oracle, t, s, window, stride);
  for (std::int64_t i = 0; i < truth.size(); ++i) {
    EXPECT_NEAR(stitched.flat(i), truth.flat(i), 1e-5);
  }
}

TEST(Stitching, ConstantPredictorGivesConstantGrid) {
  TrafficDataset ds = make_dataset(8, 4);
  UniformProbeLayout layout(4, 4, 2);
  WindowPredictor constant = [](const Tensor&) {
    return Tensor::full(Shape{4, 4}, 2.5f);
  };
  Tensor stitched = stitch_prediction(ds, layout, constant, 2, 1, 4, 2);
  for (std::int64_t i = 0; i < stitched.size(); ++i) {
    EXPECT_FLOAT_EQ(stitched.flat(i), 2.5f);
  }
}

TEST(Stitching, CoversGridWhenStrideDoesNotDivide) {
  TrafficDataset ds = make_dataset(10, 4);
  UniformProbeLayout layout(4, 4, 2);
  WindowPredictor constant = [](const Tensor&) {
    return Tensor::ones(Shape{4, 4});
  };
  // stride 3 over extent 10 with window 4: origins 0, 3, 6 + clamped 6...
  Tensor stitched = stitch_prediction(ds, layout, constant, 1, 1, 4, 3);
  for (std::int64_t i = 0; i < stitched.size(); ++i) {
    EXPECT_FLOAT_EQ(stitched.flat(i), 1.f);
  }
}

}  // namespace
}  // namespace mtsr::data
