// Cross-module property sweeps (TEST_P): shape algebra of the 3-D layers
// over kernel/stride grids, generator determinism and physical bounds over
// grid sizes, probe-layout invariants over factors, and metric invariants
// over random inputs.
#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "src/common/rng.hpp"
#include "src/data/milan.hpp"
#include "src/data/probes.hpp"
#include "src/metrics/metrics.hpp"
#include "src/nn/conv3d.hpp"
#include "src/nn/conv_transpose3d.hpp"

namespace mtsr {
namespace {

// --- Conv3d shape algebra ---------------------------------------------------

struct Conv3dGeom {
  std::array<int, 3> kernel;
  std::array<int, 3> stride;
  std::array<int, 3> padding;
};

class Conv3dShapeSweep : public ::testing::TestWithParam<Conv3dGeom> {};

TEST_P(Conv3dShapeSweep, OutputFollowsConvArithmetic) {
  const auto geom = GetParam();
  Rng rng(200);
  nn::Conv3d conv(2, 3, geom.kernel, geom.stride, geom.padding, rng);
  const std::int64_t d = 6, h = 9, w = 8;
  Tensor out = conv.forward(Tensor::zeros(Shape{1, 2, d, h, w}), true);
  auto expect = [&](int axis, std::int64_t in) {
    return (in + 2 * geom.padding[static_cast<std::size_t>(axis)] -
            geom.kernel[static_cast<std::size_t>(axis)]) /
               geom.stride[static_cast<std::size_t>(axis)] +
           1;
  };
  EXPECT_EQ(out.dim(1), 3);
  EXPECT_EQ(out.dim(2), expect(0, d));
  EXPECT_EQ(out.dim(3), expect(1, h));
  EXPECT_EQ(out.dim(4), expect(2, w));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Conv3dShapeSweep,
    ::testing::Values(Conv3dGeom{{1, 1, 1}, {1, 1, 1}, {0, 0, 0}},
                      Conv3dGeom{{3, 3, 3}, {1, 1, 1}, {1, 1, 1}},
                      Conv3dGeom{{1, 3, 3}, {1, 2, 2}, {0, 1, 1}},
                      Conv3dGeom{{3, 5, 5}, {1, 1, 1}, {1, 2, 2}},
                      Conv3dGeom{{2, 2, 2}, {2, 2, 2}, {0, 0, 0}}));

// --- ConvTranspose3d round-trip geometry ------------------------------------

class Deconv3dFactorSweep : public ::testing::TestWithParam<int> {};

TEST_P(Deconv3dFactorSweep, SpatialExtentScalesByFactorDepthPreserved) {
  const int f = GetParam();
  Rng rng(201);
  nn::ConvTranspose3d deconv(1, 1, {3, f + 2, f + 2}, {1, f, f}, {1, 1, 1},
                             rng);
  const std::int64_t d = 4, side = 5;
  Tensor out = deconv.forward(Tensor::zeros(Shape{1, 1, d, side, side}),
                              true);
  EXPECT_EQ(out.dim(2), d);         // temporal depth preserved
  EXPECT_EQ(out.dim(3), side * f);  // spatial extent multiplied
  EXPECT_EQ(out.dim(4), side * f);
}

INSTANTIATE_TEST_SUITE_P(Factors, Deconv3dFactorSweep,
                         ::testing::Values(1, 2, 3, 4, 5));

// --- Milan generator invariants over grid sizes ------------------------------

class MilanSizeSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(MilanSizeSweep, FramesBoundedAndDeterministic) {
  const std::int64_t side = GetParam();
  data::MilanConfig config;
  config.rows = side;
  config.cols = side;
  config.num_hotspots = std::max<std::int64_t>(side / 4, 4);
  config.seed = 202;
  data::MilanTrafficGenerator a(config);
  data::MilanTrafficGenerator b(config);
  auto fa = a.generate(10, 2);
  auto fb = b.generate(10, 2);
  for (std::size_t t = 0; t < fa.size(); ++t) {
    EXPECT_EQ(fa[t].shape(), Shape({side, side}));
    EXPECT_GE(fa[t].min(), 0.f);                       // no negative traffic
    EXPECT_LE(fa[t].max(), 1.5f * 5496.f);             // bounded near peak
    for (std::int64_t i = 0; i < fa[t].size(); ++i) {  // deterministic
      ASSERT_EQ(fa[t].flat(i), fb[t].flat(i));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MilanSizeSweep,
                         ::testing::Values(12, 20, 40, 60));

TEST(MilanCommute, ScheduleBounds) {
  data::MilanConfig config;
  config.rows = config.cols = 12;
  config.num_hotspots = 4;
  config.start_minute_of_week = 0;
  data::MilanTrafficGenerator gen(config);
  for (std::int64_t t = 0; t < 7 * 144; t += 7) {
    const double p = gen.commute_progress(t);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
  // Weekday noon near full commute; 03:00 near zero; weekend damped.
  EXPECT_GT(gen.commute_progress(72), 0.9);        // Monday 12:00
  EXPECT_LT(gen.commute_progress(18), 0.05);       // Monday 03:00
  EXPECT_LT(gen.commute_progress(5 * 144 + 72),    // Saturday 12:00
            0.5 * gen.commute_progress(72));
}

TEST(MilanTowers, SpikesAreSubProbeDetail) {
  // Tower cells must be local maxima clearly above their neighbourhood —
  // the needle texture of the paper's Fig. 10 surfaces.
  data::MilanConfig config;
  config.rows = config.cols = 30;
  config.num_hotspots = 10;
  config.seed = 203;
  data::MilanTrafficGenerator gen(config);
  auto frame = gen.generate(84, 1).front();  // mid-day
  const auto& towers = gen.towers();
  ASSERT_FALSE(towers.empty());
  // Check the strongest tower (away from grid edges).
  const data::Tower* strongest = nullptr;
  for (const auto& t : towers) {
    if (t.row < 2 || t.row > 27 || t.col < 2 || t.col > 27) continue;
    if (strongest == nullptr || t.amplitude > strongest->amplitude) {
      strongest = &t;
    }
  }
  ASSERT_NE(strongest, nullptr);
  const float centre = frame.at(strongest->row, strongest->col);
  const float far_ring = frame.at(strongest->row + 2, strongest->col + 2);
  EXPECT_GT(centre, far_ring);
}

// --- Probe layout invariants over factors ------------------------------------

class UniformFactorSweep : public ::testing::TestWithParam<int> {};

TEST_P(UniformFactorSweep, CoarsenSpreadRoundTripIsProjection) {
  // spread(coarsen(x)) is idempotent: applying it twice equals once.
  const int factor = GetParam();
  Rng rng(204);
  data::UniformProbeLayout layout(40, 40, factor);
  Tensor fine = Tensor::uniform(Shape{40, 40}, rng, 1.f, 100.f);
  Tensor once = layout.spread_average(fine);
  Tensor twice = layout.spread_average(once);
  for (std::int64_t i = 0; i < once.size(); ++i) {
    EXPECT_NEAR(once.flat(i), twice.flat(i), 1e-3);
  }
}

INSTANTIATE_TEST_SUITE_P(Factors, UniformFactorSweep,
                         ::testing::Values(2, 4, 5, 8, 10));

// --- Metric invariants over random inputs ------------------------------------

class MetricInvariantSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MetricInvariantSweep, HoldForRandomPairs) {
  Rng rng(GetParam());
  Tensor truth = Tensor::uniform(Shape{12, 12}, rng, 10.f, 500.f);
  Tensor pred = Tensor::uniform(Shape{12, 12}, rng, 10.f, 500.f);

  // NRMSE non-negative; zero iff identical.
  EXPECT_GT(metrics::nrmse(pred, truth), 0.0);
  EXPECT_DOUBLE_EQ(metrics::nrmse(truth, truth), 0.0);
  // SSIM is symmetric when the stabilisers are fixed explicitly (the
  // defaults derive c1/c2 from the truth's range, breaking exact symmetry
  // by design), and bounded by 1.
  const double c1 = 25.0, c2 = 225.0;
  const double s1 = metrics::ssim(pred, truth, c1, c2);
  const double s2 = metrics::ssim(truth, pred, c1, c2);
  EXPECT_NEAR(s1, s2, 1e-9);
  EXPECT_LE(metrics::ssim(pred, truth), 1.0 + 1e-9);
  // PSNR decreases when error is doubled away from the truth.
  Tensor worse = truth;
  worse.axpy_(2.f, pred.sub(truth));
  EXPECT_GT(metrics::psnr(pred, truth, 5496.0),
            metrics::psnr(worse, truth, 5496.0));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricInvariantSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace mtsr
