// Tests for anomalous-traffic injection (Section 5.5) and surge detection.
#include <gtest/gtest.h>

#include "src/common/check.hpp"
#include "src/data/anomaly.hpp"

namespace mtsr::data {
namespace {

TEST(Anomaly, EventFieldPeaksAtCentreMidEvent) {
  TrafficEvent event;
  event.t_begin = 0;
  event.t_end = 10;
  event.row = 5;
  event.col = 7;
  event.radius = 1.5;
  event.amplitude_mb = 1000;
  Tensor field = event_field(event, 5, 16, 16);
  // Peak at the centre...
  float max_v = field.max();
  EXPECT_NEAR(field.at(5, 7), max_v, 1e-4);
  // ...close to the full amplitude at the envelope peak.
  EXPECT_GT(max_v, 900.f);
  // Far away the surge is negligible.
  EXPECT_LT(field.at(15, 0), 1.f);
}

TEST(Anomaly, EnvelopeIsZeroOutsideEventWindow) {
  TrafficEvent event;
  event.t_begin = 5;
  event.t_end = 8;
  EXPECT_EQ(event_field(event, 4, 8, 8).sum(), 0.0);
  EXPECT_EQ(event_field(event, 8, 8, 8).sum(), 0.0);
  EXPECT_GT(event_field(event, 6, 8, 8).sum(), 0.0);
}

TEST(Anomaly, InjectEventAddsOnlyDuringWindow) {
  std::vector<Tensor> frames;
  for (int i = 0; i < 6; ++i) frames.push_back(Tensor::full(Shape{8, 8}, 10.f));
  TrafficEvent event;
  event.t_begin = 2;
  event.t_end = 5;
  event.row = 4;
  event.col = 4;
  event.radius = 1.0;
  event.amplitude_mb = 500;
  inject_event(frames, event);
  EXPECT_DOUBLE_EQ(frames[0].sum(), 10.0 * 64);
  EXPECT_GT(frames[3].sum(), 10.0 * 64 + 100.0);
  EXPECT_DOUBLE_EQ(frames[5].sum(), 10.0 * 64);
}

TEST(Anomaly, InjectValidatesRange) {
  std::vector<Tensor> frames(3, Tensor(Shape{4, 4}));
  TrafficEvent event;
  event.t_begin = 1;
  event.t_end = 5;  // beyond frame count
  EXPECT_THROW(inject_event(frames, event), ContractViolation);
}

TEST(Anomaly, DetectSurgeFlagsOnlyElevatedCells) {
  Tensor reference = Tensor::full(Shape{4, 4}, 10.f);
  Tensor snapshot = reference;
  snapshot.at(2, 3) = 200.f;
  snapshot.at(0, 0) = 15.f;  // below threshold
  Tensor mask = detect_surge(snapshot, reference, 50.0);
  EXPECT_FLOAT_EQ(mask.at(2, 3), 1.f);
  EXPECT_FLOAT_EQ(mask.at(0, 0), 0.f);
  EXPECT_DOUBLE_EQ(mask.sum(), 1.0);
}

}  // namespace
}  // namespace mtsr::data
