// Tests for Algorithm 1: pre-training convergence, adversarial stability
// with the Eq. 9 empirical loss, and the Eq. 8 ablation path.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/check.hpp"
#include "src/core/gan_trainer.hpp"
#include "src/data/milan.hpp"

namespace mtsr::core {
namespace {

// A small synthetic MTSR problem: up-2 on 8x8 windows from a tiny city.
struct Fixture {
  Fixture()
      : dataset(make_frames(), 10),
        layout(8, 8, 2),
        source([this](Rng& rng) {
          data::SampleSpec spec;
          spec.t = rng.uniform_int(1, dataset.frame_count() - 1);
          spec.r0 = rng.uniform_int(0, dataset.rows() - 8);
          spec.c0 = rng.uniform_int(0, dataset.cols() - 8);
          return data::make_sample(dataset, layout, spec, 2, 8);
        }) {}

  static std::vector<Tensor> make_frames() {
    data::MilanConfig config;
    config.rows = 16;
    config.cols = 16;
    config.num_hotspots = 8;
    config.seed = 55;
    return data::MilanTrafficGenerator(config).generate(60, 30);
  }

  ZipNetConfig generator_config() const {
    ZipNetConfig config;
    config.temporal_length = 2;
    config.upscale_factors = {2};
    config.base_channels = 3;
    config.zipper_modules = 3;
    config.zipper_channels = 6;
    config.final_channels = 8;
    return config;
  }

  DiscriminatorConfig discriminator_config() const {
    DiscriminatorConfig config;
    config.base_channels = 2;
    return config;
  }

  data::TrafficDataset dataset;
  data::UniformProbeLayout layout;
  SampleSource source;
};

TEST(GanTrainer, PretrainReducesMse) {
  Fixture f;
  Rng rng(150);
  ZipNet g(f.generator_config(), rng);
  Discriminator d(f.discriminator_config(), rng);
  GanTrainerConfig config;
  config.batch_size = 4;
  config.learning_rate = 2e-3f;
  GanTrainer trainer(g, d, config);

  auto losses = trainer.pretrain(f.source, 60);
  ASSERT_EQ(losses.size(), 60u);
  double head = 0.0, tail = 0.0;
  for (int i = 0; i < 10; ++i) {
    head += losses[static_cast<std::size_t>(i)];
    tail += losses[losses.size() - 10 + static_cast<std::size_t>(i)];
  }
  EXPECT_LT(tail, head);
}

TEST(GanTrainer, AdversarialRoundsStayFiniteAndBounded) {
  Fixture f;
  Rng rng(151);
  ZipNet g(f.generator_config(), rng);
  Discriminator d(f.discriminator_config(), rng);
  GanTrainerConfig config;
  config.batch_size = 4;
  config.learning_rate = 1e-3f;
  GanTrainer trainer(g, d, config);

  (void)trainer.pretrain(f.source, 20);
  auto history = trainer.train(f.source, 15);
  ASSERT_EQ(history.size(), 15u);
  for (const auto& round : history) {
    EXPECT_TRUE(std::isfinite(round.d_loss));
    EXPECT_TRUE(std::isfinite(round.g_loss));
    EXPECT_TRUE(std::isfinite(round.g_mse));
    EXPECT_GT(round.d_real_prob, 0.0);
    EXPECT_LT(round.d_real_prob, 1.0);
    EXPECT_GT(round.d_fake_prob, 0.0);
    EXPECT_LT(round.d_fake_prob, 1.0);
  }
}

TEST(GanTrainer, EmpiricalLossKeepsMseAnchored) {
  // The Eq. 9 weighting must not let the generator drift away from the
  // data: g_mse after adversarial rounds stays in the same regime as after
  // pre-training (the paper's stability claim, scaled down).
  Fixture f;
  Rng rng(152);
  ZipNet g(f.generator_config(), rng);
  Discriminator d(f.discriminator_config(), rng);
  GanTrainerConfig config;
  config.batch_size = 4;
  config.learning_rate = 1e-3f;
  config.loss_mode = LossMode::kEmpirical;
  GanTrainer trainer(g, d, config);

  auto pre = trainer.pretrain(f.source, 60);
  const double pre_tail = pre.back();
  auto history = trainer.train(f.source, 20);
  const double post = history.back().g_mse;
  EXPECT_LT(post, std::max(4.0 * pre_tail, pre_tail + 1.0));
}

TEST(GanTrainer, FixedSigmaModeRuns) {
  Fixture f;
  Rng rng(153);
  ZipNet g(f.generator_config(), rng);
  Discriminator d(f.discriminator_config(), rng);
  GanTrainerConfig config;
  config.batch_size = 4;
  config.loss_mode = LossMode::kFixedSigma;
  config.sigma2 = 0.05f;
  GanTrainer trainer(g, d, config);
  (void)trainer.pretrain(f.source, 10);
  auto history = trainer.train(f.source, 5);
  for (const auto& round : history) {
    EXPECT_TRUE(std::isfinite(round.g_loss));
  }
}

TEST(GanTrainer, RejectsBadConfig) {
  Fixture f;
  Rng rng(154);
  ZipNet g(f.generator_config(), rng);
  Discriminator d(f.discriminator_config(), rng);
  GanTrainerConfig config;
  config.batch_size = 0;
  EXPECT_THROW(GanTrainer(g, d, config), ContractViolation);

  GanTrainerConfig bad_critic;
  bad_critic.critic_iters = 0;
  EXPECT_THROW(GanTrainer(g, d, bad_critic), ContractViolation);
  GanTrainerConfig bad_clip;
  bad_clip.weight_clip = -0.1f;
  EXPECT_THROW(GanTrainer(g, d, bad_clip), ContractViolation);
}

TEST(GanTrainer, CriticItersAndWeightClipStabilitySchedule) {
  // The WGAN-style knobs: critic_iters multiplies the discriminator
  // sub-epochs per round, weight_clip clamps every discriminator parameter
  // after each critic step. Rounds stay finite and the clamp actually
  // binds.
  Fixture f;
  Rng rng(155);
  ZipNet g(f.generator_config(), rng);
  Discriminator d(f.discriminator_config(), rng);
  GanTrainerConfig config;
  config.batch_size = 4;
  config.learning_rate = 1e-3f;
  config.critic_iters = 3;
  config.weight_clip = 0.01f;
  GanTrainer trainer(g, d, config);

  (void)trainer.pretrain(f.source, 10);
  auto history = trainer.train(f.source, 5);
  ASSERT_EQ(history.size(), 5u);
  for (const auto& round : history) {
    EXPECT_TRUE(std::isfinite(round.d_loss));
    EXPECT_TRUE(std::isfinite(round.g_loss));
  }
  for (const nn::Parameter* param : d.parameters()) {
    for (std::int64_t i = 0; i < param->value.size(); ++i) {
      EXPECT_LE(std::abs(param->value.flat(i)), 0.01f + 1e-7f)
          << param->name << " escaped the clip at " << i;
    }
  }
}

TEST(GanTrainer, DefaultCriticScheduleIsLegacyBitIdentical) {
  // critic_iters=1 / weight_clip=0 must not perturb the legacy trainer:
  // same seeds, same sample source => bit-identical generator weights.
  Fixture f;
  auto run = [&](bool set_defaults_explicitly) {
    Rng rng(156);
    ZipNet g(f.generator_config(), rng);
    Discriminator d(f.discriminator_config(), rng);
    GanTrainerConfig config;
    config.batch_size = 4;
    config.learning_rate = 1e-3f;
    if (set_defaults_explicitly) {
      config.critic_iters = 1;
      config.weight_clip = 0.f;
    }
    GanTrainer trainer(g, d, config);
    (void)trainer.pretrain(f.source, 8);
    (void)trainer.train(f.source, 4);
    std::vector<float> weights;
    for (const nn::Parameter* param : g.parameters()) {
      for (std::int64_t i = 0; i < param->value.size(); ++i) {
        weights.push_back(param->value.flat(i));
      }
    }
    return weights;
  };
  const auto a = run(false);
  const auto b = run(true);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "weight " << i;
  }
}

}  // namespace
}  // namespace mtsr::core
