// Tests for the int8 inference path: quantise/dequantise round-trip error
// bounds, gemm_u8s8 bit-exactness against the scalar s32 reference across
// pool sizes, BatchNorm-fold parity against the unfused float stack,
// ZipNetInt8 conversion fidelity, int8 serving interchangeability with the
// float model (NRMSE), and the zero-arena-growth steady-state contract for
// int8 sessions.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "src/baselines/srcnn.hpp"
#include "src/baselines/srcnn_int8.hpp"
#include "src/common/check.hpp"
#include "src/common/parallel.hpp"
#include "src/common/workspace.hpp"
#include "src/core/discriminator_int8.hpp"
#include "src/core/pipeline.hpp"
#include "src/core/zipnet_int8.hpp"
#include "src/data/milan.hpp"
#include "src/metrics/metrics.hpp"
#include "src/nn/activations.hpp"
#include "src/nn/quantized.hpp"
#include "src/serving/engine.hpp"
#include "src/serving/model.hpp"
#include "src/tensor/quant.hpp"
#include "src/tensor/tensor_ops.hpp"

namespace mtsr {
namespace {

struct PoolGuard {
  ~PoolGuard() { set_num_threads(0); }
};

// ---- quantise / dequantise -------------------------------------------------

TEST(Quant, ActivationRoundTripErrorBound) {
  Rng rng(11);
  Tensor x = Tensor::uniform(Shape{512}, rng, -3.f, 5.f);
  quant::RangeObserver obs;
  obs.observe(x);
  const quant::ActQuant aq = quant::choose_act_quant(obs.lo, obs.hi);
  ASSERT_GT(aq.scale, 0.f);
  std::vector<std::uint8_t> q(static_cast<std::size_t>(x.size()));
  std::vector<float> back(static_cast<std::size_t>(x.size()));
  quant::quantize_u8(x.data(), x.size(), aq, q.data());
  quant::dequantize_u8(q.data(), x.size(), aq, back.data());
  for (std::int64_t i = 0; i < x.size(); ++i) {
    ASSERT_EQ(q[static_cast<std::size_t>(i)],
              quant::quantize_value(x.flat(i), aq));
    // In-range values round-trip within half a quantisation step.
    EXPECT_LE(std::fabs(back[static_cast<std::size_t>(i)] - x.flat(i)),
              aq.scale * 0.5f + 1e-6f)
        << "at " << i;
  }
  // Zero is exactly representable (the zero point).
  EXPECT_EQ(quant::dequantize_value(quant::quantize_value(0.f, aq), aq), 0.f);
  // Out-of-range values clamp to the calibrated bounds.
  const float below =
      quant::dequantize_value(quant::quantize_value(obs.lo - 100.f, aq), aq);
  const float above =
      quant::dequantize_value(quant::quantize_value(obs.hi + 100.f, aq), aq);
  EXPECT_LE(std::fabs(below - (-aq.scale * aq.zero_point)), 1e-6f);
  EXPECT_LE(std::fabs(above - aq.scale * (255 - aq.zero_point)), 1e-6f);
}

TEST(Quant, DegenerateRangesAreSafe) {
  const quant::ActQuant all_zero = quant::choose_act_quant(0.f, 0.f);
  EXPECT_GT(all_zero.scale, 0.f);
  EXPECT_EQ(quant::quantize_value(0.f, all_zero), all_zero.zero_point);
  // Purely positive and purely negative ranges still bracket zero.
  const quant::ActQuant pos = quant::choose_act_quant(2.f, 6.f);
  EXPECT_EQ(quant::dequantize_value(quant::quantize_value(0.f, pos), pos),
            0.f);
  const quant::ActQuant neg = quant::choose_act_quant(-6.f, -2.f);
  EXPECT_EQ(quant::dequantize_value(quant::quantize_value(0.f, neg), neg),
            0.f);
}

TEST(Quant, WeightRoundTripPerChannel) {
  Rng rng(12);
  const std::int64_t channels = 5, per = 37;
  Tensor w = Tensor::randn(Shape{channels, per}, rng, 0.3f);
  w.flat(0) = 2.5f;  // make channel 0's range distinct
  std::vector<std::int8_t> wq(static_cast<std::size_t>(channels * per));
  std::vector<float> scales(static_cast<std::size_t>(channels));
  quant::quantize_weights_per_channel(w.data(), channels, per, wq.data(),
                                      scales.data());
  for (std::int64_t o = 0; o < channels; ++o) {
    ASSERT_GT(scales[static_cast<std::size_t>(o)], 0.f);
    for (std::int64_t i = 0; i < per; ++i) {
      const std::int8_t q = wq[static_cast<std::size_t>(o * per + i)];
      EXPECT_LE(std::abs(static_cast<int>(q)), quant::kWeightQmax);
      const float back = scales[static_cast<std::size_t>(o)] * q;
      EXPECT_LE(std::fabs(back - w.flat(o * per + i)),
                scales[static_cast<std::size_t>(o)] * 0.5f + 1e-6f);
    }
  }
}

TEST(Quant, QuantizeTransposeMatchesElementwise) {
  Rng rng(13);
  const std::int64_t rows = 23, cols = 41;
  Tensor m = Tensor::uniform(Shape{rows, cols}, rng, -2.f, 2.f);
  const quant::ActQuant aq = quant::choose_act_quant(-2.f, 2.f);
  const std::int64_t stride = (rows + 3) / 4 * 4;
  std::vector<std::uint8_t> out(static_cast<std::size_t>(cols * stride),
                                0xEE);
  quant::quantize_transpose_u8(m.data(), rows, cols, aq, out.data(), stride);
  for (std::int64_t c = 0; c < cols; ++c) {
    for (std::int64_t r = 0; r < rows; ++r) {
      EXPECT_EQ(out[static_cast<std::size_t>(c * stride + r)],
                quant::quantize_value(m.flat(r * cols + c), aq));
    }
    for (std::int64_t r = rows; r < stride; ++r) {
      EXPECT_EQ(out[static_cast<std::size_t>(c * stride + r)], 0);
    }
  }
}

TEST(Quant, ByteLoweringMatchesQuantisedFloatLowering) {
  Rng rng(24);
  const std::int64_t n = 2, c = 3, h = 7, w = 9;
  Tensor input = Tensor::uniform(Shape{n, c, h, w}, rng, -1.f, 3.f);
  const quant::ActQuant aq = quant::choose_act_quant(-1.f, 3.f);
  // Quantise-then-lower must equal lower-then-quantise: padding taps are
  // 0.0 in the float lowering and the zero point in the byte lowering.
  const Tensor fcols = im2col_batched(input, 3, 3, 1, 1, 1, 1);
  std::vector<std::uint8_t> qin(static_cast<std::size_t>(input.size()));
  quant::quantize_u8(input.data(), input.size(), aq, qin.data());
  std::vector<std::uint8_t> qcols(static_cast<std::size_t>(fcols.size()));
  im2col_batched_u8_into(qin.data(), n, c, h, w, 3, 3, 1, 1, 1, 1,
                         static_cast<std::uint8_t>(aq.zero_point),
                         qcols.data());
  for (std::int64_t i = 0; i < fcols.size(); ++i) {
    ASSERT_EQ(qcols[static_cast<std::size_t>(i)],
              quant::quantize_value(fcols.flat(i), aq))
        << "at " << i;
  }
  // Same contract for the 3-D lowering (stride 2 exercises the generic
  // non-unit-stride line path).
  Tensor vol = Tensor::uniform(Shape{n, c, 3, h, w}, rng, -1.f, 3.f);
  const Tensor fvol = vol2col_batched(vol, 3, 3, 3, 1, 2, 2, 1, 1, 1);
  std::vector<std::uint8_t> qvol(static_cast<std::size_t>(vol.size()));
  quant::quantize_u8(vol.data(), vol.size(), aq, qvol.data());
  std::vector<std::uint8_t> qvcols(static_cast<std::size_t>(fvol.size()));
  vol2col_batched_u8_into(qvol.data(), n, c, 3, h, w, 3, 3, 3, 1, 2, 2, 1, 1,
                          1, static_cast<std::uint8_t>(aq.zero_point),
                          qvcols.data());
  for (std::int64_t i = 0; i < fvol.size(); ++i) {
    ASSERT_EQ(qvcols[static_cast<std::size_t>(i)],
              quant::quantize_value(fvol.flat(i), aq))
        << "vol at " << i;
  }
}

TEST(Quant, ByteTransposeMatchesNaive) {
  Rng rng(25);
  // Sizes straddle the 16×16 SIMD tile and the 64-byte macro tile.
  for (const auto& [rows, cols] : std::vector<std::pair<std::int64_t,
                                                        std::int64_t>>{
           {16, 16}, {64, 64}, {17, 33}, {65, 130}, {1, 5}, {130, 3}}) {
    std::vector<std::uint8_t> src(static_cast<std::size_t>(rows * cols));
    for (auto& v : src) v = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    const std::int64_t stride = (rows + 3) / 4 * 4;
    std::vector<std::uint8_t> dst(static_cast<std::size_t>(cols * stride),
                                  0xAB);
    transpose_u8_into(src.data(), rows, cols, dst.data(), stride);
    for (std::int64_t c = 0; c < cols; ++c) {
      for (std::int64_t r = 0; r < rows; ++r) {
        ASSERT_EQ(dst[static_cast<std::size_t>(c * stride + r)],
                  src[static_cast<std::size_t>(r * cols + c)])
            << rows << "x" << cols << " at (" << r << "," << c << ")";
      }
      for (std::int64_t r = rows; r < stride; ++r) {
        ASSERT_EQ(dst[static_cast<std::size_t>(c * stride + r)], 0);
      }
    }
  }
}

// ---- gemm_u8s8 -------------------------------------------------------------

struct GemmCase {
  std::int64_t m, k, n;
};

TEST(GemmU8S8, BitExactVsScalarReferenceAcrossPoolSizes) {
  PoolGuard guard;
  Rng rng(14);
  const GemmCase cases[] = {{1, 1, 1},    {4, 4, 16},   {37, 23, 17},
                            {129, 144, 32}, {8, 7, 100}, {3, 288, 96},
                            {65, 13, 1}};
  const int hw = num_threads();
  for (const auto& [m, k, n] : cases) {
    const std::int64_t kpad = (k + 3) / 4 * 4;
    std::vector<std::uint8_t> a(static_cast<std::size_t>(m * kpad));
    for (auto& v : a) v = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    std::vector<std::int8_t> b(static_cast<std::size_t>(k * n));
    for (auto& v : b) {
      v = static_cast<std::int8_t>(
          rng.uniform_int(-quant::kWeightQmax, quant::kWeightQmax));
    }
    const PackedInt8B packed = pack_b_s8(b.data(), k, n);
    EXPECT_EQ(packed.kpad(), kpad);
    std::vector<float> col_scale(static_cast<std::size_t>(n));
    std::vector<float> bias(static_cast<std::size_t>(n));
    for (auto& v : col_scale) v = 0.001f + 0.01f * rng.uniform();
    for (auto& v : bias) v = rng.uniform() - 0.5f;
    for (const bool with_bias : {true, false}) {
      for (const float alpha : {1.f, 0.1f}) {
        const QuantEpilogue ep{col_scale.data(), 37,
                               with_bias ? bias.data() : nullptr, alpha};
        std::vector<float> ref(static_cast<std::size_t>(m * n));
        gemm_u8s8_ref(a.data(), kpad, packed, m, ep, ref.data());
        for (const int pool : {1, 2, hw}) {
          set_num_threads(pool);
          std::vector<float> got(static_cast<std::size_t>(m * n), -1e30f);
          gemm_u8s8(a.data(), kpad, packed, m, ep, got.data());
          ASSERT_EQ(std::memcmp(ref.data(), got.data(),
                                ref.size() * sizeof(float)),
                    0)
              << "kernel " << gemm_u8s8_kernel_name() << " m=" << m
              << " k=" << k << " n=" << n << " pool=" << pool
              << " bias=" << with_bias << " alpha=" << alpha;
        }
        set_num_threads(0);
      }
    }
  }
}

TEST(GemmU8S8, DequantisedProductTracksFloatGemm) {
  Rng rng(15);
  const std::int64_t m = 50, k = 72, n = 24;
  Tensor af = Tensor::uniform(Shape{m, k}, rng, -1.f, 3.f);
  Tensor bf = Tensor::randn(Shape{k, n}, rng, 0.5f);

  // Quantise A per tensor (transposed source to exercise the production
  // path) and B per column.
  const quant::ActQuant aq = quant::choose_act_quant(-1.f, 3.f);
  const std::int64_t kpad = (k + 3) / 4 * 4;
  Tensor at = transpose(af);  // (k, m) so quantize_transpose yields (m, kpad)
  std::vector<std::uint8_t> a8(static_cast<std::size_t>(m * kpad));
  quant::quantize_transpose_u8(at.data(), k, m, aq, a8.data(), kpad);

  Tensor bt = transpose(bf);  // (n, k): per-"channel" rows
  std::vector<std::int8_t> wq(static_cast<std::size_t>(n * k));
  std::vector<float> scales(static_cast<std::size_t>(n));
  quant::quantize_weights_per_channel(bt.data(), n, k, wq.data(),
                                      scales.data());
  std::vector<std::int8_t> b8(static_cast<std::size_t>(k * n));
  for (std::int64_t j = 0; j < n; ++j) {
    for (std::int64_t kk = 0; kk < k; ++kk) {
      b8[static_cast<std::size_t>(kk * n + j)] =
          wq[static_cast<std::size_t>(j * k + kk)];
    }
  }
  const PackedInt8B packed = pack_b_s8(b8.data(), k, n);
  std::vector<float> col_scale(static_cast<std::size_t>(n));
  for (std::int64_t j = 0; j < n; ++j) {
    col_scale[static_cast<std::size_t>(j)] =
        aq.scale * scales[static_cast<std::size_t>(j)];
  }
  const QuantEpilogue ep{col_scale.data(), aq.zero_point, nullptr, 1.f};
  std::vector<float> got(static_cast<std::size_t>(m * n));
  gemm_u8s8(a8.data(), kpad, packed, m, ep, got.data());

  const Tensor want = matmul(af, bf);
  // The zero-point compensation and per-column scales must reconstruct the
  // float product up to quantisation noise: a few percent in relative L2
  // for 8-bit operands at k = 72.
  double num = 0.0, den = 0.0, worst = 0.0;
  for (std::int64_t i = 0; i < want.size(); ++i) {
    const double err = want.flat(i) - got[i];
    num += err * err;
    den += static_cast<double>(want.flat(i)) * want.flat(i);
    worst = std::max(worst, std::fabs(err));
  }
  EXPECT_LE(std::sqrt(num / den), 0.03)
      << "quantisation error beyond the noise budget";
  EXPECT_GT(worst, 0.0);  // it IS quantised
}

TEST(GemmU8S8, PackRejectsSaturationUnsafeWeights) {
  std::vector<std::int8_t> b(16, 0);
  b[3] = 127;  // outside ±kWeightQmax
  EXPECT_THROW((void)pack_b_s8(b.data(), 4, 4), ContractViolation);
}

TEST(GemmU8S8, FullRangePackAdmitsWiderWeights) {
  std::vector<std::int8_t> b(16, 0);
  b[3] = 127;
  b[7] = -127;
  const PackedInt8B packed = pack_b_s8(b.data(), 4, 4, /*full_range=*/true);
  EXPECT_TRUE(packed.full_range);
  EXPECT_EQ(packed.colsum[3], 127 - 127);
}

TEST(GemmU8S8, KernelNameIsKnown) {
  const std::string name = gemm_u8s8_kernel_name();
  EXPECT_TRUE(name == "scalar" || name == "avx2" || name == "avx512" ||
              name == "vnni")
      << name;
  const char* forced = std::getenv("MTSR_SIMD");
  if (forced != nullptr && std::string(forced) == "scalar") {
    EXPECT_EQ(name, "scalar");
  }
}

// Every SIMD level this host can run must reproduce the scalar s32
// reference bit-for-bit in the default ±63 mode; the levels that accept
// full-range (±127) packs — scalar and VNNI — must agree bit-for-bit there
// too, and a full-range pack pushed through a maddubs level must demote to
// the scalar kernel (same bits) rather than saturate.
TEST(GemmU8S8, ForcedKernelSweepBitExactInBothRanges) {
  Rng rng(41);
  const GemmCase cases[] = {{5, 288, 96}, {64, 48, 16}, {7, 40, 33}};
  const char* levels[] = {"scalar", "sse2", "avx2", "avx512", "vnni"};
  for (const auto& [m, k, n] : cases) {
    const std::int64_t kpad = (k + 3) / 4 * 4;
    std::vector<std::uint8_t> a(static_cast<std::size_t>(m * kpad));
    for (auto& v : a) v = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    for (const bool full_range : {false, true}) {
      const int qmax =
          full_range ? quant::kWeightQmaxFull : quant::kWeightQmax;
      std::vector<std::int8_t> b(static_cast<std::size_t>(k * n));
      for (auto& v : b) {
        v = static_cast<std::int8_t>(rng.uniform_int(-qmax, qmax));
      }
      const PackedInt8B packed = pack_b_s8(b.data(), k, n, full_range);
      std::vector<float> col_scale(static_cast<std::size_t>(n));
      std::vector<float> bias(static_cast<std::size_t>(n));
      for (auto& v : col_scale) v = 0.001f + 0.01f * rng.uniform();
      for (auto& v : bias) v = rng.uniform() - 0.5f;
      const QuantEpilogue ep{col_scale.data(), 19, bias.data(), 0.1f};
      std::vector<float> ref(static_cast<std::size_t>(m * n));
      gemm_u8s8_ref(a.data(), kpad, packed, m, ep, ref.data());
      int levels_run = 0;
      for (const char* level : levels) {
        std::vector<float> got(static_cast<std::size_t>(m * n), -1e30f);
        if (!gemm_u8s8_forced_kernel(level, a.data(), kpad, packed, m, ep,
                                     got.data())) {
          continue;  // host cannot execute this level
        }
        ++levels_run;
        ASSERT_EQ(std::memcmp(ref.data(), got.data(),
                              ref.size() * sizeof(float)),
                  0)
            << "level " << level << " full_range=" << full_range << " m="
            << m << " k=" << k << " n=" << n;
      }
      EXPECT_GE(levels_run, 2);  // scalar + sse2 run everywhere
    }
  }
  EXPECT_FALSE(gemm_u8s8_forced_kernel("no-such-level", nullptr, 4,
                                       PackedInt8B{}, 1, QuantEpilogue{},
                                       nullptr));
}

// ---- quantised layers: BatchNorm-fold parity -------------------------------

// Runs a few training steps so BatchNorm's running statistics diverge from
// their initial values, then compares the folded calibration path against
// the unfused float [conv → BN → LeakyReLU] stack in inference mode.
template <typename Conv, typename MakeInput>
void expect_fold_parity(Conv& conv, nn::BatchNorm& bn, float alpha,
                        MakeInput&& make_input, auto&& build_quant) {
  Rng rng(16);
  nn::LeakyReLU lrelu(alpha);
  for (int step = 0; step < 3; ++step) {
    Workspace::Scope scope(Workspace::tls());
    Tensor x = make_input(rng);
    (void)bn.forward(conv.forward(x, true), true);  // update running stats
  }
  auto quantised = build_quant(conv, bn, alpha);

  Tensor x = make_input(rng);
  Tensor want;
  {
    Workspace::Scope scope(Workspace::tls());
    want = lrelu.forward(bn.forward(conv.forward(x, false), false), false);
  }
  Tensor got;
  {
    Workspace::Scope scope(Workspace::tls());
    got = quantised->forward_calibrate(x);
  }
  ASSERT_EQ(want.shape(), got.shape());
  for (std::int64_t i = 0; i < want.size(); ++i) {
    ASSERT_NEAR(want.flat(i), got.flat(i), 1e-4)
        << "BN-fold parity failed at " << i;
  }

  // After freeze, the quantised forward tracks the float output within the
  // quantisation noise of the observed ranges.
  quantised->freeze();
  Tensor q8;
  {
    Workspace::Scope scope(Workspace::tls());
    q8 = quantised->forward(x);
  }
  ASSERT_EQ(want.shape(), q8.shape());
  double num = 0.0, den = 0.0;
  for (std::int64_t i = 0; i < want.size(); ++i) {
    num += (want.flat(i) - q8.flat(i)) * (want.flat(i) - q8.flat(i));
    den += want.flat(i) * want.flat(i);
  }
  EXPECT_LE(std::sqrt(num / want.size()),
            0.05 * std::sqrt(den / want.size()) + 1e-3)
      << "int8 forward strayed beyond quantisation noise";
}

TEST(QuantLayers, Conv2dFoldParityAndInt8Accuracy) {
  Rng rng(17);
  nn::Conv2d conv(5, 7, 3, 1, 1, rng);
  nn::BatchNorm bn(7);
  expect_fold_parity(
      conv, bn, 0.1f,
      [](Rng& r) { return Tensor::randn(Shape{2, 5, 9, 9}, r); },
      [](const nn::Conv2d& c, const nn::BatchNorm& b, float a) {
        return std::make_unique<nn::QuantConv2d>(c, &b, a);
      });
}

TEST(QuantLayers, Conv3dFoldParityAndInt8Accuracy) {
  Rng rng(18);
  nn::Conv3d conv(3, 4, {3, 3, 3}, {1, 1, 1}, {1, 1, 1}, rng);
  nn::BatchNorm bn(4);
  expect_fold_parity(
      conv, bn, 0.1f,
      [](Rng& r) { return Tensor::randn(Shape{2, 3, 3, 7, 7}, r); },
      [](const nn::Conv3d& c, const nn::BatchNorm& b, float a) {
        return std::make_unique<nn::QuantConv3d>(c, &b, a);
      });
}

TEST(QuantLayers, ConvTranspose2dFoldParityAndInt8Accuracy) {
  Rng rng(19);
  nn::ConvTranspose2d deconv(4, 3, 4, 2, 1, rng);
  nn::BatchNorm bn(3);
  expect_fold_parity(
      deconv, bn, 0.1f,
      [](Rng& r) { return Tensor::randn(Shape{2, 4, 6, 6}, r); },
      [](const nn::ConvTranspose2d& c, const nn::BatchNorm& b, float a) {
        return std::make_unique<nn::QuantConvTranspose2d>(c, &b, a);
      });
}

TEST(QuantLayers, ConvTranspose3dFoldParityAndInt8Accuracy) {
  Rng rng(20);
  nn::ConvTranspose3d deconv(3, 4, {3, 4, 4}, {1, 2, 2}, {1, 1, 1}, rng);
  nn::BatchNorm bn(4);
  expect_fold_parity(
      deconv, bn, 0.1f,
      [](Rng& r) { return Tensor::randn(Shape{2, 3, 3, 5, 5}, r); },
      [](const nn::ConvTranspose3d& c, const nn::BatchNorm& b, float a) {
        return std::make_unique<nn::QuantConvTranspose3d>(c, &b, a);
      });
}

TEST(QuantLayers, DenseInt8TracksFloat) {
  Rng rng(21);
  nn::Dense dense(34, 11, rng);
  nn::QuantDense quantised(dense);
  Tensor x = Tensor::randn(Shape{6, 34}, rng);
  Tensor want;
  {
    Workspace::Scope scope(Workspace::tls());
    want = quantised.forward_calibrate(x);
    // The calibration path reproduces the float layer itself.
    Tensor direct = dense.forward(x, false);
    for (std::int64_t i = 0; i < want.size(); ++i) {
      ASSERT_NEAR(want.flat(i), direct.flat(i), 1e-4);
    }
  }
  quantised.freeze();
  EXPECT_TRUE(quantised.frozen());
  Tensor got;
  {
    Workspace::Scope scope(Workspace::tls());
    got = quantised.forward(x);
  }
  ASSERT_EQ(want.shape(), got.shape());
  for (std::int64_t i = 0; i < want.size(); ++i) {
    EXPECT_NEAR(want.flat(i), got.flat(i), 0.15f);
  }
}

TEST(QuantLayers, FreezeRequiresCalibration) {
  Rng rng(22);
  nn::Conv2d conv(2, 2, 3, 1, 1, rng);
  nn::QuantConv2d quantised(conv, nullptr);
  EXPECT_THROW(quantised.freeze(), ContractViolation);
  Tensor x = Tensor::randn(Shape{1, 2, 5, 5}, rng);
  EXPECT_THROW((void)quantised.forward(x), ContractViolation);
  {
    Workspace::Scope scope(Workspace::tls());
    (void)quantised.forward_calibrate(x);
  }
  quantised.freeze();
  EXPECT_THROW(quantised.freeze(), ContractViolation);
  EXPECT_THROW((void)quantised.forward_calibrate(x), ContractViolation);
}

// ---- ZipNetInt8 + serving --------------------------------------------------

data::TrafficDataset quant_dataset(std::uint64_t seed = 430,
                                   std::int64_t side = 16) {
  data::MilanConfig config;
  config.rows = side;
  config.cols = side;
  config.num_hotspots = 10;
  config.seed = seed;
  return data::TrafficDataset(
      data::MilanTrafficGenerator(config).generate(0, 40), 10);
}

core::PipelineConfig quant_pipeline_config() {
  core::PipelineConfig config;
  config.instance = data::MtsrInstance::kUp4;
  config.window = 8;
  config.temporal_length = 3;
  config.zipnet.base_channels = 3;
  config.zipnet.zipper_modules = 3;
  config.zipnet.zipper_channels = 6;
  config.zipnet.final_channels = 8;
  config.discriminator.base_channels = 2;
  config.pretrain_steps = 60;
  config.gan_rounds = 0;
  return config;
}

TEST(ZipNetInt8, ConvertRequiresCalibrationBatches) {
  data::TrafficDataset dataset = quant_dataset();
  core::MtsrPipeline pipeline(quant_pipeline_config(), dataset);
  EXPECT_THROW(
      (void)core::ZipNetInt8::convert(pipeline.generator(), {}),
      ContractViolation);
  core::ZipNetInt8 net(pipeline.generator());
  Rng rng(23);
  Tensor batch = Tensor::randn(Shape{2, 3, 2, 2}, rng);
  EXPECT_THROW((void)net.forward(batch), ContractViolation);  // not frozen
}

TEST(ZipNetInt8, MirrorsFloatGeneratorWithinQuantisationNoise) {
  data::TrafficDataset dataset = quant_dataset(431);
  core::MtsrPipeline pipeline(quant_pipeline_config(), dataset);
  const std::vector<Tensor> calibration = serving::calibration_batches(
      dataset, pipeline.window_layout(), 3, 8, 4);
  ASSERT_FALSE(calibration.empty());

  core::ZipNetInt8 net(pipeline.generator());
  // Calibration forward equals the float generator's inference forward to
  // fold-associativity error.
  {
    Workspace::Scope scope(Workspace::tls());
    Tensor want = pipeline.generator().forward(calibration[0], false);
    Tensor got = net.forward_calibrate(calibration[0]);
    ASSERT_EQ(want.shape(), got.shape());
    for (std::int64_t i = 0; i < want.size(); ++i) {
      ASSERT_NEAR(want.flat(i), got.flat(i), 1e-4);
    }
  }
  for (std::size_t i = 1; i < calibration.size(); ++i) {
    Workspace::Scope scope(Workspace::tls());
    (void)net.forward_calibrate(calibration[i]);
  }
  net.freeze();
  EXPECT_TRUE(net.frozen());

  Workspace::Scope scope(Workspace::tls());
  Tensor want = pipeline.generator().forward(calibration[0], false);
  Tensor got = net.forward(calibration[0]);
  ASSERT_EQ(want.shape(), got.shape());
  double num = 0.0, den = 0.0;
  for (std::int64_t i = 0; i < want.size(); ++i) {
    num += (want.flat(i) - got.flat(i)) * (want.flat(i) - got.flat(i));
    den += want.flat(i) * want.flat(i);
  }
  EXPECT_LE(std::sqrt(num), 0.05 * std::sqrt(den) + 1e-3)
      << "int8 generator strayed beyond quantisation noise";
}

TEST(ServingInt8, InterchangeableWithFloatAndNrmseWithinTwoPercent) {
  data::TrafficDataset dataset = quant_dataset(432);
  core::PipelineConfig config = quant_pipeline_config();
  // The 2%-relative criterion presumes a usefully trained generator: with
  // random weights the prediction error is as large as the signal and any
  // quantisation noise lands on top of it coherently.
  config.pretrain_steps = 700;
  core::MtsrPipeline pipeline(config, dataset);
  pipeline.train();  // pretrain only (gan_rounds = 0)

  serving::Engine engine;
  engine.register_model("zipnet", std::make_shared<serving::ZipNetModel>(
                                      pipeline.generator()));
  engine.register_model(
      "zipnet-int8",
      serving::quantize_generator(
          pipeline.generator(),
          serving::calibration_batches(dataset, pipeline.window_layout(), 3,
                                       8, 6)));

  serving::SessionConfig stream = serving::SessionConfig::from_dataset(
      "zipnet", data::MtsrInstance::kUp4, dataset, 8, 4);
  const auto float_id = engine.open_session(stream);
  stream.model = "zipnet-int8";
  const auto int8_id = engine.open_session(stream);

  const data::SplitRange test = dataset.test_range();
  double nrmse_float = 0.0, nrmse_int8 = 0.0;
  int frames = 0;
  for (std::int64_t t = test.begin; t < std::min(test.begin + 5, test.end);
       ++t) {
    auto f = engine.push(float_id, dataset.frame(t));
    auto q = engine.push(int8_id, dataset.frame(t));
    ASSERT_EQ(f.has_value(), q.has_value());
    if (!f) continue;
    ASSERT_EQ(f->shape(), q->shape());
    nrmse_float += metrics::nrmse(*f, dataset.frame(t));
    nrmse_int8 += metrics::nrmse(*q, dataset.frame(t));
    ++frames;
  }
  ASSERT_GT(frames, 0);
  nrmse_float /= frames;
  nrmse_int8 /= frames;
  // Acceptance criterion: stitched-frame NRMSE within 2% relative of the
  // float path on the test split.
  EXPECT_LE(std::fabs(nrmse_int8 - nrmse_float), 0.02 * nrmse_float)
      << "float NRMSE " << nrmse_float << " vs int8 " << nrmse_int8;
}

TEST(ServingInt8, SteadyStateZeroArenaGrowth) {
  data::TrafficDataset dataset = quant_dataset(433);
  core::MtsrPipeline pipeline(quant_pipeline_config(), dataset);
  serving::Engine engine;
  engine.register_model(
      "zipnet-int8",
      serving::quantize_generator(
          pipeline.generator(),
          serving::calibration_batches(dataset, pipeline.window_layout(), 3,
                                       8, 3)));
  serving::SessionConfig config = serving::SessionConfig::from_dataset(
      "zipnet-int8", data::MtsrInstance::kUp4, dataset, 8, 4);
  config.block = 2;  // 9 windows -> 5 blocks: both arena slots in play
  const auto id = engine.open_session(config);

  for (std::int64_t t = 0; t < 3; ++t) {
    (void)engine.push(id, dataset.frame(t));
  }
  const Workspace::Stats warm = engine.session(id).arena_stats();
  EXPECT_GT(warm.capacity_bytes, 0);

  for (std::int64_t t = 3; t < 8; ++t) {
    ASSERT_TRUE(engine.push(id, dataset.frame(t)).has_value());
  }
  const Workspace::Stats after = engine.session(id).arena_stats();
  EXPECT_EQ(after.capacity_bytes, warm.capacity_bytes);
  EXPECT_EQ(after.growth_events, warm.growth_events);
  EXPECT_EQ(after.live_bytes, 0);
  EXPECT_GT(after.alloc_count, warm.alloc_count);

  const serving::Engine::Stats stats = engine.stats();
  ASSERT_EQ(stats.sessions.size(), 1u);
  EXPECT_EQ(stats.sessions[0].model, "zipnet-int8");
}

// ---- SrcnnInt8 -------------------------------------------------------------

// A small SRCNN fitted on the dataset's training split.
std::unique_ptr<baselines::Srcnn> fitted_srcnn(
    const data::TrafficDataset& dataset, const data::ProbeLayout& layout) {
  baselines::SrcnnConfig config;
  config.channels1 = 8;
  config.channels2 = 4;
  config.window = 16;
  config.epochs = 40;
  config.crops_per_epoch = 32;
  config.learning_rate = 1e-3f;
  auto srcnn = std::make_unique<baselines::Srcnn>(config);
  const data::SplitRange train = dataset.train_range();
  std::vector<Tensor> frames;
  for (std::int64_t t = train.begin; t < train.end; ++t) {
    frames.push_back(dataset.frame(t));
  }
  srcnn->fit(frames, layout);
  return srcnn;
}

TEST(SrcnnInt8, ConversionGuardsAndCalibrationParity) {
  // Conversion requires a fitted float network.
  baselines::Srcnn unfitted;
  EXPECT_THROW(baselines::SrcnnInt8 bad(unfitted), ContractViolation);

  data::TrafficDataset dataset = quant_dataset(434);
  data::UniformProbeLayout layout(16, 16, 4);
  auto srcnn = fitted_srcnn(dataset, layout);

  baselines::SrcnnInt8 net(*srcnn);
  EXPECT_EQ(net.name(), "srcnn-int8");
  const Tensor frame = dataset.frame(dataset.test_range().begin);
  // Inference-only: the float fit is the only fit.
  EXPECT_THROW(net.fit({frame}, layout), ContractViolation);
  // Not frozen yet.
  EXPECT_THROW((void)net.super_resolve(frame, layout), ContractViolation);
  EXPECT_THROW((void)baselines::SrcnnInt8::convert(*srcnn, {}, layout),
               ContractViolation);

  // The calibration resolve reproduces the float resolver (no BN to fold:
  // only conv order-of-operations noise).
  Tensor want = srcnn->super_resolve(frame, layout);
  Tensor got = net.super_resolve_calibrate(frame, layout);
  ASSERT_EQ(want.shape(), got.shape());
  for (std::int64_t i = 0; i < want.size(); ++i) {
    ASSERT_NEAR(want.flat(i), got.flat(i), 1e-3) << "at " << i;
  }
}

TEST(SrcnnInt8, ServingNrmseWithinTwoPercentOfFloat) {
  data::TrafficDataset dataset = quant_dataset(435);
  data::UniformProbeLayout layout(16, 16, 4);
  auto srcnn = fitted_srcnn(dataset, layout);

  // Calibrate on window-geometry crops — exactly what serving sessions
  // feed the resolver.
  data::UniformProbeLayout window_layout(8, 8, 4);
  const data::SplitRange train = dataset.train_range();
  std::vector<Tensor> calibration;
  for (std::int64_t t = train.begin;
       t < std::min(train.begin + 6, train.end); ++t) {
    calibration.push_back(crop2d(dataset.frame(t), 0, 0, 8, 8));
    calibration.push_back(crop2d(dataset.frame(t), 8, 8, 8, 8));
  }

  serving::Engine engine;
  engine.register_model("SRCNN",
                        std::make_shared<serving::BaselineModel>(*srcnn));
  engine.register_model(
      "srcnn-int8",
      serving::quantize_srcnn(*srcnn, calibration, window_layout));

  serving::SessionConfig stream = serving::SessionConfig::from_dataset(
      "SRCNN", data::MtsrInstance::kUp4, dataset, 8, 4);
  const auto float_id = engine.open_session(stream);
  stream.model = "srcnn-int8";
  const auto int8_id = engine.open_session(stream);

  const data::SplitRange test = dataset.test_range();
  double nrmse_float = 0.0, nrmse_int8 = 0.0;
  int frames = 0;
  for (std::int64_t t = test.begin; t < std::min(test.begin + 4, test.end);
       ++t) {
    auto f = engine.push(float_id, dataset.frame(t));
    auto q = engine.push(int8_id, dataset.frame(t));
    ASSERT_EQ(f.has_value(), q.has_value());
    if (!f) continue;
    ASSERT_EQ(f->shape(), q->shape());
    nrmse_float += metrics::nrmse(*f, dataset.frame(t));
    nrmse_int8 += metrics::nrmse(*q, dataset.frame(t));
    ++frames;
  }
  ASSERT_GT(frames, 0);
  nrmse_float /= frames;
  nrmse_int8 /= frames;
  // Acceptance criterion: the registered "srcnn-int8" model serves within
  // 2% relative of the float SRCNN baseline.
  EXPECT_LE(std::fabs(nrmse_int8 - nrmse_float), 0.02 * nrmse_float)
      << "float NRMSE " << nrmse_float << " vs int8 " << nrmse_int8;
}

// ---- DiscriminatorInt8 -----------------------------------------------------

TEST(DiscriminatorInt8, MirrorsFloatWithinQuantisationNoise) {
  Rng rng(24);
  core::DiscriminatorConfig config;
  config.base_channels = 4;
  core::Discriminator disc(config, rng);

  // A few training forwards move the BatchNorm running statistics off
  // their init values, so the fold is exercised for real.
  std::vector<Tensor> batches;
  for (int i = 0; i < 3; ++i) {
    batches.push_back(Tensor::randn(Shape{2, 16, 16}, rng));
    Workspace::Scope scope(Workspace::tls());
    (void)disc.forward(batches.back(), true);
  }

  EXPECT_THROW((void)core::DiscriminatorInt8::convert(disc, {}),
               ContractViolation);

  core::DiscriminatorInt8 net(disc);
  Tensor want;
  {
    Workspace::Scope scope(Workspace::tls());
    want = disc.forward(batches[0], false);
    Tensor got = net.forward_calibrate(batches[0]);
    ASSERT_EQ(want.shape(), got.shape());
    for (std::int64_t i = 0; i < want.size(); ++i) {
      ASSERT_NEAR(want.flat(i), got.flat(i), 1e-4) << "at " << i;
    }
  }
  EXPECT_THROW((void)net.forward(batches[0]), ContractViolation);

  auto frozen = core::DiscriminatorInt8::convert(disc, batches);
  ASSERT_TRUE(frozen->frozen());
  Workspace::Scope scope(Workspace::tls());
  Tensor got = frozen->forward(batches[0]);
  ASSERT_EQ(got.shape(), want.shape());
  for (std::int64_t i = 0; i < got.size(); ++i) {
    // Probabilities stay in (0, 1) and track the float head within the
    // accumulated quantisation noise of seven int8 layers.
    EXPECT_GT(got.flat(i), 0.f);
    EXPECT_LT(got.flat(i), 1.f);
    EXPECT_NEAR(got.flat(i), want.flat(i), 0.1f) << "at " << i;
  }
}

}  // namespace
}  // namespace mtsr
