// Tests for the streaming inference engine and pipeline checkpointing —
// the Section-6 deployment surface.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "src/common/check.hpp"
#include "src/core/pipeline.hpp"
#include "src/core/streaming.hpp"
#include "src/data/milan.hpp"
#include "src/metrics/metrics.hpp"

namespace mtsr::core {
namespace {

data::TrafficDataset small_dataset(std::uint64_t seed = 180) {
  data::MilanConfig config;
  config.rows = 16;
  config.cols = 16;
  config.num_hotspots = 10;
  config.seed = seed;
  return data::TrafficDataset(
      data::MilanTrafficGenerator(config).generate(0, 40), 10);
}

PipelineConfig small_pipeline_config() {
  PipelineConfig config;
  config.instance = data::MtsrInstance::kUp4;
  config.window = 8;
  config.temporal_length = 3;
  config.zipnet.base_channels = 3;
  config.zipnet.zipper_modules = 3;
  config.zipnet.zipper_channels = 6;
  config.zipnet.final_channels = 8;
  config.discriminator.base_channels = 2;
  config.pretrain_steps = 20;
  config.gan_rounds = 0;
  return config;
}

TEST(StreamingInferencer, WarmsUpThenEmitsEveryInterval) {
  data::TrafficDataset dataset = small_dataset();
  MtsrPipeline pipeline(small_pipeline_config(), dataset);
  StreamingInferencer stream = StreamingInferencer::from_dataset(
      pipeline.generator(), pipeline.window_layout(), dataset, 8, 4);

  EXPECT_EQ(stream.temporal_length(), 3);
  EXPECT_EQ(stream.frames_until_ready(), 3);

  // First S-1 frames warm the ring buffer without output.
  EXPECT_FALSE(stream.push_fine(dataset.frame(0)).has_value());
  EXPECT_FALSE(stream.push_fine(dataset.frame(1)).has_value());
  EXPECT_EQ(stream.frames_until_ready(), 1);

  // From the S-th frame on, every interval yields a prediction.
  for (std::int64_t t = 2; t < 6; ++t) {
    auto prediction = stream.push_fine(dataset.frame(t));
    ASSERT_TRUE(prediction.has_value());
    EXPECT_EQ(prediction->shape(), dataset.frame(t).shape());
    EXPECT_TRUE(prediction->all_finite());
  }
  EXPECT_EQ(stream.inference_count(), 4);
}

TEST(StreamingInferencer, MatchesOfflinePipelinePrediction) {
  // The live path must produce exactly what the offline pipeline's stitched
  // prediction produces for the same frame history.
  data::TrafficDataset dataset = small_dataset(181);
  PipelineConfig config = small_pipeline_config();
  config.stitch_stride = 4;
  MtsrPipeline pipeline(config, dataset);
  pipeline.train_pretrain_only();

  StreamingInferencer stream = StreamingInferencer::from_dataset(
      pipeline.generator(), pipeline.window_layout(), dataset, 8, 4);
  std::optional<Tensor> live;
  const std::int64_t t = 5;
  for (std::int64_t i = t - 2; i <= t; ++i) {
    live = stream.push_fine(dataset.frame(i));
  }
  ASSERT_TRUE(live.has_value());
  Tensor offline = pipeline.predict_frame(t);
  for (std::int64_t i = 0; i < offline.size(); ++i) {
    EXPECT_NEAR(live->flat(i), offline.flat(i), 1e-2);
  }
}

TEST(StreamingInferencer, RejectsWrongGeometry) {
  data::TrafficDataset dataset = small_dataset(182);
  MtsrPipeline pipeline(small_pipeline_config(), dataset);
  StreamingInferencer stream = StreamingInferencer::from_dataset(
      pipeline.generator(), pipeline.window_layout(), dataset, 8, 4);
  EXPECT_THROW((void)stream.push_fine(Tensor(Shape{8, 8})),
               ContractViolation);
}

TEST(PipelineCheckpoint, SaveLoadRestoresPredictions) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "mtsr_generator_ckpt.bin")
          .string();
  data::TrafficDataset dataset = small_dataset(183);
  PipelineConfig config = small_pipeline_config();
  config.pretrain_steps = 40;

  MtsrPipeline trained(config, dataset);
  trained.train_pretrain_only();
  Tensor expected = trained.predict_frame(30);
  trained.save_generator(path);

  MtsrPipeline restored(config, dataset);  // fresh weights
  Tensor before = restored.predict_frame(30);
  EXPECT_GT(metrics::mae(before, expected), 1e-4);  // differs pre-load
  restored.load_generator(path);
  Tensor after = restored.predict_frame(30);
  for (std::int64_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(after.flat(i), expected.flat(i), 1e-3);
  }
  std::remove(path.c_str());
}

TEST(PipelineCheckpoint, MismatchedArchitectureRejected) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "mtsr_generator_ckpt2.bin")
          .string();
  data::TrafficDataset dataset = small_dataset(184);
  MtsrPipeline a(small_pipeline_config(), dataset);
  a.save_generator(path);

  PipelineConfig other = small_pipeline_config();
  other.zipnet.zipper_channels = 12;  // different width
  MtsrPipeline b(other, dataset);
  EXPECT_THROW(b.load_generator(path), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mtsr::core
