// Tests for the dense linear-algebra helpers: Cholesky solves, ridge
// regression recovery, K-means behaviour and row normalisation.
#include <gtest/gtest.h>

#include <cmath>

#include "src/baselines/linalg.hpp"
#include "src/tensor/tensor_ops.hpp"

namespace mtsr::baselines {
namespace {

TEST(Cholesky, SolvesKnownSystem) {
  // A = [[4, 2], [2, 3]], b = [8, 7] -> x = [1.1, 1.6].
  Tensor a(Shape{2, 2}, {4.f, 2.f, 2.f, 3.f});
  Tensor b(Shape{2, 1}, {8.f, 7.f});
  Tensor x = cholesky_solve(a, b);
  EXPECT_NEAR(x.at(0, 0), 1.25f, 1e-4);
  EXPECT_NEAR(x.at(1, 0), 1.5f, 1e-4);
}

TEST(Cholesky, ResidualIsSmallOnRandomSpd) {
  Rng rng(80);
  // Random SPD: A = M Mᵀ + I.
  Tensor m = Tensor::randn(Shape{6, 6}, rng);
  Tensor a = matmul_nt(m, m);
  for (int i = 0; i < 6; ++i) a.at(i, i) += 1.f;
  Tensor b = Tensor::randn(Shape{6, 3}, rng);
  Tensor x = cholesky_solve(a, b);
  Tensor residual = matmul(a, x).sub(b);
  EXPECT_LT(residual.squared_norm(), 1e-6);
}

TEST(Cholesky, NonSpdRejected) {
  Tensor a(Shape{2, 2}, {1.f, 2.f, 2.f, 1.f});  // indefinite
  Tensor b(Shape{2, 1}, {1.f, 1.f});
  EXPECT_THROW((void)cholesky_solve(a, b), std::runtime_error);
}

TEST(Ridge, RecoversLinearMap) {
  // Generate y = W x with known W; ridge with tiny lambda must recover it.
  Rng rng(81);
  Tensor w_true(Shape{2, 3}, {1.f, -2.f, 0.5f, 3.f, 0.f, -1.f});
  Tensor x = Tensor::randn(Shape{3, 50}, rng);
  Tensor y = matmul(w_true, x);
  Tensor w = ridge_regression(x, y, 1e-6f);
  ASSERT_EQ(w.shape(), w_true.shape());
  for (std::int64_t i = 0; i < w.size(); ++i) {
    EXPECT_NEAR(w.flat(i), w_true.flat(i), 1e-2);
  }
}

TEST(Ridge, LambdaShrinksSolution) {
  Rng rng(82);
  Tensor x = Tensor::randn(Shape{4, 30}, rng);
  Tensor y = Tensor::randn(Shape{2, 30}, rng);
  Tensor w_small = ridge_regression(x, y, 1e-4f);
  Tensor w_large = ridge_regression(x, y, 1e3f);
  EXPECT_LT(w_large.squared_norm(), w_small.squared_norm());
}

TEST(KMeans, SeparatesTwoObviousClusters) {
  Rng rng(83);
  // 20 points near (0,0), 20 near (10,10).
  Tensor samples(Shape{40, 2});
  for (int i = 0; i < 20; ++i) {
    samples.at(i, 0) = static_cast<float>(rng.normal(0.0, 0.3));
    samples.at(i, 1) = static_cast<float>(rng.normal(0.0, 0.3));
    samples.at(20 + i, 0) = static_cast<float>(rng.normal(10.0, 0.3));
    samples.at(20 + i, 1) = static_cast<float>(rng.normal(10.0, 0.3));
  }
  KMeansResult result = kmeans(samples, 2, 20, rng);
  // All first-half points share one cluster, all second-half the other.
  for (int i = 1; i < 20; ++i) {
    EXPECT_EQ(result.assignment[static_cast<std::size_t>(i)],
              result.assignment[0]);
    EXPECT_EQ(result.assignment[static_cast<std::size_t>(20 + i)],
              result.assignment[20]);
  }
  EXPECT_NE(result.assignment[0], result.assignment[20]);
  // Centroids land near the true means.
  const float c0x = result.centroids.at(result.assignment[0], 0);
  EXPECT_NEAR(c0x, 0.f, 0.5f);
}

TEST(KMeans, KEqualsNTrivialClusters) {
  Rng rng(84);
  Tensor samples = Tensor::randn(Shape{5, 3}, rng);
  KMeansResult result = kmeans(samples, 5, 10, rng);
  // Every sample its own centroid (possibly permuted): distances ~ 0.
  for (int i = 0; i < 5; ++i) {
    const int c = result.assignment[static_cast<std::size_t>(i)];
    double dist = 0.0;
    for (int j = 0; j < 3; ++j) {
      const double d = samples.at(i, j) - result.centroids.at(c, j);
      dist += d * d;
    }
    EXPECT_LT(dist, 1e-6);
  }
}

TEST(NormalizeRows, UnitNormsAndOriginalsReturned) {
  Tensor m(Shape{2, 2}, {3.f, 4.f, 0.f, 0.f});
  auto norms = normalize_rows(m);
  EXPECT_FLOAT_EQ(norms[0], 5.f);
  EXPECT_NEAR(m.at(0, 0), 0.6f, 1e-6);
  EXPECT_NEAR(m.at(0, 1), 0.8f, 1e-6);
  // Zero row untouched.
  EXPECT_EQ(m.at(1, 0), 0.f);
}

}  // namespace
}  // namespace mtsr::baselines
