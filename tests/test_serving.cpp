// Tests for the serving layer: engine/session lifecycle, warm-up
// semantics, multi-session determinism (pool sizes, interleavings, overlap
// on/off), shim-vs-engine output identity, per-session arena telemetry and
// the zero-growth steady-state contract, baseline interchangeability, and
// the load_generator architecture diagnostics.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <vector>

#include "src/baselines/super_resolver.hpp"
#include "src/common/check.hpp"
#include "src/common/parallel.hpp"
#include "src/common/topology.hpp"
#include "src/core/pipeline.hpp"
#include "src/core/streaming.hpp"
#include "src/data/milan.hpp"
#include "src/serving/engine.hpp"
#include "src/serving/model.hpp"

namespace mtsr::serving {
namespace {

struct PoolGuard {
  ~PoolGuard() {
    set_num_threads(0);
    set_num_shards(0);
  }
};

data::TrafficDataset small_dataset(std::uint64_t seed = 410,
                                   std::int64_t side = 16,
                                   bool log_transform = true) {
  data::MilanConfig config;
  config.rows = side;
  config.cols = side;
  config.num_hotspots = 10;
  config.seed = seed;
  return data::TrafficDataset(
      data::MilanTrafficGenerator(config).generate(0, 40), 10,
      log_transform);
}

core::PipelineConfig small_pipeline_config() {
  core::PipelineConfig config;
  config.instance = data::MtsrInstance::kUp4;
  config.window = 8;
  config.temporal_length = 3;
  config.zipnet.base_channels = 3;
  config.zipnet.zipper_modules = 3;
  config.zipnet.zipper_channels = 6;
  config.zipnet.final_channels = 8;
  config.discriminator.base_channels = 2;
  config.pretrain_steps = 20;
  config.gan_rounds = 0;
  return config;
}

void expect_bitwise(const Tensor& a, const Tensor& b, const char* what) {
  ASSERT_EQ(a.shape(), b.shape()) << what;
  for (std::int64_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.flat(i), b.flat(i)) << what << " differs at " << i;
  }
}

TEST(Engine, RegistryAndSessionLifecycle) {
  data::TrafficDataset dataset = small_dataset();
  core::MtsrPipeline pipeline(small_pipeline_config(), dataset);

  Engine engine;
  EXPECT_FALSE(engine.has_model("zipnet"));
  EXPECT_THROW((void)engine.model("zipnet"), ContractViolation);
  engine.register_model(
      "zipnet", std::make_shared<ZipNetModel>(pipeline.generator()));
  engine.register_model("uniform",
                        std::make_shared<BaselineModel>(
                            baselines::make_super_resolver("uniform")));
  EXPECT_TRUE(engine.has_model("zipnet"));
  EXPECT_EQ(engine.model_names(),
            (std::vector<std::string>{"uniform", "zipnet"}));

  SessionConfig config = SessionConfig::from_dataset(
      "zipnet", data::MtsrInstance::kUp4, dataset, 8, 4);
  const auto id = engine.open_session(config);
  EXPECT_EQ(engine.session_count(), 1);
  EXPECT_EQ(engine.session(id).temporal_length(), 3);

  SessionConfig unknown = config;
  unknown.model = "missing";
  EXPECT_THROW((void)engine.open_session(unknown), ContractViolation);

  engine.close_session(id);
  EXPECT_EQ(engine.session_count(), 0);
  EXPECT_THROW((void)engine.session(id), ContractViolation);
  EXPECT_THROW(engine.close_session(id), ContractViolation);
}

TEST(Engine, RejectsIncompatibleStreamGeometry) {
  data::TrafficDataset dataset = small_dataset();
  core::MtsrPipeline pipeline(small_pipeline_config(), dataset);
  Engine engine;
  engine.register_model(
      "zipnet", std::make_shared<ZipNetModel>(pipeline.generator()));

  // up-2 layout over the same window: input side 4 (not 2), so the
  // generator's 4x upscale no longer maps onto the window.
  SessionConfig config = SessionConfig::from_dataset(
      "zipnet", data::MtsrInstance::kUp2, dataset, 8, 4);
  EXPECT_THROW((void)engine.open_session(config), ContractViolation);

  SessionConfig window_too_big = SessionConfig::from_dataset(
      "zipnet", data::MtsrInstance::kUp4, dataset, 32, 4);
  EXPECT_THROW((void)engine.open_session(window_too_big), ContractViolation);
}

TEST(Session, WarmUpSemanticsThroughEngine) {
  data::TrafficDataset dataset = small_dataset(411);
  core::MtsrPipeline pipeline(small_pipeline_config(), dataset);
  Engine engine;
  engine.register_model(
      "zipnet", std::make_shared<ZipNetModel>(pipeline.generator()));
  const auto id = engine.open_session(SessionConfig::from_dataset(
      "zipnet", data::MtsrInstance::kUp4, dataset, 8, 4));

  Session& session = engine.session(id);
  EXPECT_EQ(session.frames_until_ready(), 3);
  EXPECT_FALSE(engine.push(id, dataset.frame(0)).has_value());
  EXPECT_FALSE(engine.push(id, dataset.frame(1)).has_value());
  EXPECT_EQ(session.frames_until_ready(), 1);
  for (std::int64_t t = 2; t < 6; ++t) {
    auto prediction = engine.push(id, dataset.frame(t));
    ASSERT_TRUE(prediction.has_value());
    EXPECT_EQ(prediction->shape(), dataset.frame(t).shape());
    EXPECT_TRUE(prediction->all_finite());
    EXPECT_EQ(session.frames_until_ready(), 0);
  }
  EXPECT_EQ(session.inference_count(), 4);

  session.reset();
  EXPECT_EQ(session.frames_until_ready(), 3);
  EXPECT_FALSE(engine.push(id, dataset.frame(0)).has_value());

  EXPECT_THROW((void)engine.push(id, Tensor(Shape{8, 8})),
               ContractViolation);
}

TEST(Session, PipelineShimMatchesEngineSession) {
  // The predict_frame shim and a hand-opened session with the same legacy
  // configuration must produce bit-identical full-grid predictions.
  data::TrafficDataset dataset = small_dataset(412);
  core::PipelineConfig config = small_pipeline_config();
  config.stitch_stride = 3;
  core::MtsrPipeline pipeline(config, dataset);

  SessionConfig session_config = SessionConfig::from_dataset(
      "zipnet", data::MtsrInstance::kUp4, dataset, 8, 3);
  session_config.block = SessionConfig::kLegacyBlock;
  const auto id = pipeline.engine().open_session(session_config);

  for (std::int64_t t : {4, 5, 9}) {
    Session& session = pipeline.engine().session(id);
    session.reset();
    std::optional<Tensor> manual;
    for (std::int64_t f = t - 2; f <= t; ++f) {
      manual = session.push(dataset.frame(f));
    }
    ASSERT_TRUE(manual.has_value());
    Tensor shim = pipeline.predict_frame(t);
    expect_bitwise(shim, *manual, "predict_frame vs engine session");
  }
}

TEST(Session, StreamingShimMatchesEngineSession) {
  data::TrafficDataset dataset = small_dataset(413);
  core::MtsrPipeline pipeline(small_pipeline_config(), dataset);

  core::StreamingInferencer stream = core::StreamingInferencer::from_dataset(
      pipeline.generator(), pipeline.window_layout(), dataset, 8, 4);

  Engine engine;
  engine.register_model(
      "zipnet", std::make_shared<ZipNetModel>(pipeline.generator()));
  SessionConfig config = SessionConfig::from_dataset(
      "zipnet", data::MtsrInstance::kUp4, dataset, 8, 4);
  config.block = 1;  // the streaming shim's legacy per-window batching
  const auto id = engine.open_session(config);

  for (std::int64_t t = 0; t < 6; ++t) {
    auto from_shim = stream.push_fine(dataset.frame(t));
    auto from_engine = engine.push(id, dataset.frame(t));
    ASSERT_EQ(from_shim.has_value(), from_engine.has_value());
    if (from_shim) {
      expect_bitwise(*from_shim, *from_engine, "push_fine vs engine session");
    }
  }
  EXPECT_EQ(stream.inference_count(), 4);
}

TEST(Session, DeterministicAcrossPoolSizesInterleavingsAndOverlap) {
  PoolGuard guard;
  data::TrafficDataset dataset = small_dataset(414);
  core::MtsrPipeline pipeline(small_pipeline_config(), dataset);
  auto model = std::make_shared<ZipNetModel>(pipeline.generator());

  // Reference: pool size 1, sessions fed one after the other, no overlap.
  auto run = [&](int threads, bool interleave,
                 SessionConfig::Overlap overlap) {
    set_num_threads(threads);
    Engine engine;
    engine.register_model("zipnet", model);
    SessionConfig config = SessionConfig::from_dataset(
        "zipnet", data::MtsrInstance::kUp4, dataset, 8, 4);
    config.overlap = overlap;
    const auto a = engine.open_session(config);
    const auto b = engine.open_session(config);
    // Keyed (session, frame) so the comparison is independent of the order
    // the predictions were produced in.
    std::vector<Tensor> outputs(10);
    auto record = [&](int which, std::int64_t t, std::optional<Tensor> p) {
      if (p) outputs[static_cast<std::size_t>(which * 5 + t)] = std::move(*p);
    };
    if (interleave) {
      for (std::int64_t t = 0; t < 5; ++t) {
        record(0, t, engine.push(a, dataset.frame(t)));
        record(1, t, engine.push(b, dataset.frame(t)));
      }
    } else {
      for (int which : {0, 1}) {
        for (std::int64_t t = 0; t < 5; ++t) {
          record(which, t,
                 engine.push(which == 0 ? a : b, dataset.frame(t)));
        }
      }
    }
    return outputs;
  };

  const auto reference = run(1, false, SessionConfig::Overlap::kOff);
  ASSERT_EQ(reference.size(), 10u);  // slots; first 2 per session stay empty

  const int hw = []() {
    set_num_threads(0);
    return num_threads();
  }();
  for (int threads : {1, 2, hw}) {
    for (bool interleave : {false, true}) {
      for (auto overlap :
           {SessionConfig::Overlap::kOff, SessionConfig::Overlap::kOn}) {
        const auto outputs = run(threads, interleave, overlap);
        ASSERT_EQ(outputs.size(), reference.size());
        for (std::size_t i = 0; i < outputs.size(); ++i) {
          ASSERT_EQ(outputs[i].empty(), reference[i].empty());
          if (outputs[i].empty()) continue;
          expect_bitwise(outputs[i], reference[i],
                         "engine output across pool/interleave/overlap");
        }
      }
    }
  }
}

TEST(Session, BitIdenticalAcrossShardCountsAndPoolSizes) {
  PoolGuard guard;
  data::TrafficDataset dataset = small_dataset(418);
  core::MtsrPipeline pipeline(small_pipeline_config(), dataset);
  auto model = std::make_shared<ZipNetModel>(pipeline.generator());

  // Single-request serving (engine.push) must be bit-identical however the
  // pool is sharded: sharding changes WHERE a session's passes run, never
  // their chunk geometry or float-add order.
  auto run = [&](int shards, int threads) {
    set_num_shards(shards);
    set_num_threads(threads);
    Engine engine;
    engine.register_model("zipnet", model);
    SessionConfig config = SessionConfig::from_dataset(
        "zipnet", data::MtsrInstance::kUp4, dataset, 8, 4);
    const auto a = engine.open_session(config);
    const auto b = engine.open_session(config);
    std::vector<Tensor> outputs;
    for (std::int64_t t = 0; t < 5; ++t) {
      for (auto id : {a, b}) {
        auto out = engine.push(id, dataset.frame(t));
        if (out) outputs.push_back(std::move(*out));
      }
    }
    return outputs;
  };

  const auto reference = run(1, 1);
  ASSERT_EQ(reference.size(), 6u);
  const int hw = []() {
    set_num_threads(0);
    return num_threads();
  }();
  for (int shards : {1, 2}) {
    for (int threads : {1, 2, hw}) {
      const auto outputs = run(shards, threads);
      ASSERT_EQ(outputs.size(), reference.size());
      for (std::size_t i = 0; i < outputs.size(); ++i) {
        expect_bitwise(outputs[i], reference[i],
                       "single-request output across shard/pool topology");
      }
    }
  }
}

TEST(Session, OpenSessionsHoldThePoolTopology) {
  PoolGuard guard;
  data::TrafficDataset dataset = small_dataset(419);
  core::MtsrPipeline pipeline(small_pipeline_config(), dataset);

  set_num_threads(2);
  Engine engine;
  engine.register_model(
      "zipnet", std::make_shared<ZipNetModel>(pipeline.generator()));
  const auto id = engine.open_session(SessionConfig::from_dataset(
      "zipnet", data::MtsrInstance::kUp4, dataset, 8, 4));

  // A session's shard assignment and arenas are sized against the pool at
  // open time, so reconfiguration must be rejected while any is open...
  EXPECT_THROW(set_num_threads(4), ContractViolation);
  EXPECT_THROW(engine.set_shards(2), ContractViolation);
  EXPECT_THROW(set_affinity_policy(AffinityPolicy::kCompact),
               ContractViolation);
  EXPECT_EQ(num_threads(), 2);

  // ...and becomes legal as soon as the last one closes.
  engine.close_session(id);
  set_num_threads(3);
  EXPECT_EQ(num_threads(), 3);
  engine.set_shards(1);
}

TEST(Session, SteadyStateServingHasZeroArenaGrowth) {
  data::TrafficDataset dataset = small_dataset(415);
  core::MtsrPipeline pipeline(small_pipeline_config(), dataset);
  Engine engine;
  engine.register_model(
      "zipnet", std::make_shared<ZipNetModel>(pipeline.generator()));
  SessionConfig config = SessionConfig::from_dataset(
      "zipnet", data::MtsrInstance::kUp4, dataset, 8, 4);
  config.block = 2;  // 9 windows -> 5 blocks: both arena slots in play
  const auto id = engine.open_session(config);

  // Warm-up: the first inference pushes both rotating arenas to their
  // high-water capacity.
  for (std::int64_t t = 0; t < 3; ++t) {
    (void)engine.push(id, dataset.frame(t));
  }
  const Workspace::Stats warm = engine.session(id).arena_stats();
  EXPECT_GT(warm.capacity_bytes, 0);

  for (std::int64_t t = 3; t < 8; ++t) {
    ASSERT_TRUE(engine.push(id, dataset.frame(t)).has_value());
  }
  const Workspace::Stats after = engine.session(id).arena_stats();
  EXPECT_EQ(after.capacity_bytes, warm.capacity_bytes);
  EXPECT_EQ(after.growth_events, warm.growth_events);
  EXPECT_EQ(after.live_bytes, 0);
  EXPECT_GT(after.alloc_count, warm.alloc_count);  // the arenas were used

  // The telemetry surface reports the same counters per session.
  const Engine::Stats stats = engine.stats();
  ASSERT_EQ(stats.sessions.size(), 1u);
  EXPECT_EQ(stats.sessions[0].arena.capacity_bytes, after.capacity_bytes);
  EXPECT_EQ(stats.sessions[0].inference_count, 6);
  const std::string table = render_stats_table(stats);
  EXPECT_NE(table.find("zipnet"), std::string::npos);
  EXPECT_NE(table.find("growth"), std::string::npos);
}

TEST(Session, BaselinesServeBehindTheSameVtable) {
  // log_transform off so normalise/denormalise round-trips exactly enough
  // to compare against the resolver's direct output.
  data::TrafficDataset dataset = small_dataset(416, 16, false);
  Engine engine;
  engine.register_model("uniform",
                        std::make_shared<BaselineModel>(
                            baselines::make_super_resolver("uniform")));
  engine.register_model("bicubic",
                        std::make_shared<BaselineModel>(
                            baselines::make_super_resolver("bicubic")));

  // Single window covering the whole grid: stitching is a no-op, so the
  // session output equals the resolver applied to the frame.
  SessionConfig config = SessionConfig::from_dataset(
      "uniform", data::MtsrInstance::kUp4, dataset, 16, 16);
  const auto id = engine.open_session(config);
  auto layout = data::make_layout(data::MtsrInstance::kUp4, 16, 16);
  baselines::UniformInterpolator uniform;
  const std::int64_t t = dataset.test_range().begin;
  auto served = engine.push(id, dataset.frame(t));
  ASSERT_TRUE(served.has_value());  // S = 1: ready after one frame
  Tensor direct = uniform.super_resolve(dataset.frame(t), *layout);
  ASSERT_EQ(served->shape(), direct.shape());
  for (std::int64_t i = 0; i < direct.size(); ++i) {
    EXPECT_NEAR(served->flat(i), direct.flat(i),
                1e-3 * std::max(1.f, std::abs(direct.flat(i))));
  }

  // Stitched baseline serving (overlapping windows) stays finite and keeps
  // per-window batching semantics.
  SessionConfig stitched = SessionConfig::from_dataset(
      "bicubic", data::MtsrInstance::kUp4, dataset, 8, 4);
  const auto id2 = engine.open_session(stitched);
  auto pred = engine.push(id2, dataset.frame(t));
  ASSERT_TRUE(pred.has_value());
  EXPECT_EQ(pred->shape(), dataset.frame(t).shape());
  EXPECT_TRUE(pred->all_finite());
}

TEST(LoadGenerator, NamesMismatchedLayerAndShapes) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "mtsr_serving_ckpt.bin")
          .string();
  data::TrafficDataset dataset = small_dataset(417);
  core::MtsrPipeline a(small_pipeline_config(), dataset);
  a.save_generator(path);

  // Same parameter count, different width: the error must name the first
  // mismatched parameter and both shapes.
  core::PipelineConfig wider = small_pipeline_config();
  wider.zipnet.zipper_channels = 12;
  core::MtsrPipeline b(wider, dataset);
  try {
    b.load_generator(path);
    FAIL() << "expected a runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("load_generator"), std::string::npos) << message;
    EXPECT_NE(message.find("shape mismatch at parameter"), std::string::npos)
        << message;
    EXPECT_NE(message.find("model expects"), std::string::npos) << message;
    EXPECT_NE(message.find("checkpoint has"), std::string::npos) << message;
    EXPECT_NE(message.find("(12, "), std::string::npos) << message;
    EXPECT_NE(message.find("(6, "), std::string::npos) << message;
  }

  // Different module count: the count mismatch must report the first
  // diverging entry, not just the totals.
  core::PipelineConfig deeper = small_pipeline_config();
  deeper.zipnet.zipper_modules = 4;
  core::MtsrPipeline c(deeper, dataset);
  try {
    c.load_generator(path);
    FAIL() << "expected a runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("tensor count mismatch"), std::string::npos)
        << message;
    EXPECT_NE(message.find("divergence"), std::string::npos) << message;
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mtsr::serving
