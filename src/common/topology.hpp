// CPU/NUMA topology detection and worker affinity policies.
//
// The serving pool shards its workers across NUMA nodes (one shard per node
// by default) so each shard's GEMM panels stream node-local memory. This
// layer answers two questions for the pool: "what does the machine look
// like?" (Topology) and "where should this worker run?" (AffinityPolicy).
//
// Detection reads /sys/devices/system/{cpu,node} on Linux and degrades to a
// single node spanning hardware_concurrency cpus anywhere that sysfs is
// absent or unparsable. Pinning uses pthread_setaffinity_np and NEVER
// aborts: a host that rejects the mask (cgroup cpuset restrictions,
// non-Linux libc) logs one warning, counts the failure, and serves
// unpinned.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mtsr {

/// Worker pinning policy, selected via MTSR_AFFINITY=none|compact|scatter or
/// set_affinity_policy(). Applied when the pool (re)builds its workers.
enum class AffinityPolicy {
  kNone,     ///< no pinning (default) — the OS schedules workers freely
  kCompact,  ///< shard s's workers pinned to consecutive cpus of node
             ///< (s % nodes): one shard per node, node-local panel streams
  kScatter,  ///< shard s's workers round-robined across ALL nodes: trades
             ///< locality for aggregate memory bandwidth
};

/// Immutable machine description, detected once at first use.
class Topology {
 public:
  struct Node {
    int id = 0;                ///< NUMA node id (nodeN in sysfs)
    std::vector<int> cpus;     ///< online cpus of this node, ascending
  };

  /// The detected (or fallback) topology. Thread-safe, detection runs once.
  static const Topology& instance();

  [[nodiscard]] const std::vector<Node>& nodes() const { return nodes_; }
  [[nodiscard]] int node_count() const {
    return static_cast<int>(nodes_.size());
  }
  /// Total online cpus across all nodes (>= 1).
  [[nodiscard]] int cpu_count() const { return cpu_count_; }
  /// True when the layout came from sysfs; false for the fallback guess.
  [[nodiscard]] bool detected_from_sysfs() const { return from_sysfs_; }
  /// e.g. "2 nodes x 8 cpus (sysfs)" — for banners and stats tables.
  [[nodiscard]] std::string summary() const;

  // Exposed for tests: parses a sysfs cpulist like "0-3,8,10-11".
  static std::vector<int> parse_cpu_list(const std::string& text);

 private:
  Topology();

  std::vector<Node> nodes_;
  int cpu_count_ = 1;
  bool from_sysfs_ = false;
};

/// Current affinity policy. Defaults from MTSR_AFFINITY (unset -> kNone).
[[nodiscard]] AffinityPolicy affinity_policy();

/// Replaces the affinity policy and rebuilds the pool's workers so the new
/// pins take effect. Same restrictions as set_num_threads: throws from
/// inside a parallel region or while serving sessions hold the pool
/// topology open.
void set_affinity_policy(AffinityPolicy policy);

/// Parses "none" / "compact" / "scatter" (case-sensitive, as documented for
/// MTSR_AFFINITY). Unknown strings return kNone.
[[nodiscard]] AffinityPolicy parse_affinity_policy(const char* text);
[[nodiscard]] const char* affinity_policy_name(AffinityPolicy policy);

namespace detail {

/// Raw policy store used by set_affinity_policy (which lives with the pool
/// so it can rebuild the workers under the pool's own guards).
void store_affinity_policy(AffinityPolicy policy);

/// Pins the calling thread to a single cpu. Returns false (and counts the
/// failure, warning once per process) when the host rejects the mask.
bool pin_current_thread_to_cpu(int cpu);

/// Pins the calling thread to every cpu of `node` (index into
/// Topology::nodes()). Used for shard runner/stage threads, which should
/// stay on their shard's node without claiming a specific core.
bool pin_current_thread_to_node(int node_index);

/// Number of pin attempts the host rejected since process start. The
/// affinity-fallback contract is "warn once, keep serving unpinned" — tests
/// assert this counter moves instead of the process dying.
[[nodiscard]] std::int64_t pin_failure_count();

/// Test hook: while true, every pin attempt fails as if
/// pthread_setaffinity_np returned EINVAL. Lets the fallback path run on
/// hosts where pinning would otherwise succeed.
void simulate_pin_failure(bool enabled);

/// Cpu for worker `worker_index` of shard `shard` under `policy`, or -1 for
/// "do not pin". Pure function of the detected topology.
[[nodiscard]] int cpu_for_worker(AffinityPolicy policy, int shard,
                                 int shard_count, int worker_index);

}  // namespace detail

}  // namespace mtsr
