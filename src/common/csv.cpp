#include "src/common/csv.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace mtsr {
namespace {

bool needs_quoting(const std::string& cell) {
  return cell.find_first_of(",\"\n") != std::string::npos;
}

std::string quote(const std::string& cell) {
  if (!needs_quoting(cell)) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}

void write_row(std::ofstream& out, const std::vector<std::string>& row) {
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out << ',';
    out << quote(row[i]);
  }
  out << '\n';
}

std::vector<std::string> parse_line(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    char ch = line[i];
    if (in_quotes) {
      if (ch == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cell += ch;
      }
    } else if (ch == '"') {
      in_quotes = true;
    } else if (ch == ',') {
      cells.push_back(std::move(cell));
      cell.clear();
    } else {
      cell += ch;
    }
  }
  cells.push_back(std::move(cell));
  return cells;
}

}  // namespace

void write_csv(const std::string& path,
               const std::vector<std::string>& header,
               const std::vector<std::vector<std::string>>& rows) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_csv: cannot open " + path);
  write_row(out, header);
  for (const auto& row : rows) write_row(out, row);
  if (!out) throw std::runtime_error("write_csv: write failed for " + path);
}

std::vector<std::vector<std::string>> read_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_csv: cannot open " + path);
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    rows.push_back(parse_line(line));
  }
  return rows;
}

}  // namespace mtsr
