// StageExecutor lives in its own translation unit: the pool's dispatch path
// in parallel.cpp is hot (every kernel schedules through it), and folding
// the executor's thread/queue machinery into that TU measurably perturbs
// its code generation on the microkernel-bound hosts the benches run on.
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>

#include "src/common/check.hpp"
#include "src/common/parallel.hpp"
#include "src/common/topology.hpp"

namespace mtsr {

struct StageExecutor::Impl {
  std::mutex mutex;
  std::condition_variable cv;
  std::condition_variable idle_cv;
  std::deque<std::packaged_task<void()>> queue;
  std::thread thread;
  int shard = -1;
  bool started = false;
  bool stopping = false;
  bool executing = false;

  void loop() {
    // Stage tasks must never race the pool's in-flight tasks, so the
    // stage thread runs with nested-region semantics: its parallel_for
    // calls execute serially right here while the submitting thread keeps
    // the pool busy with GEMMs.
    detail::mark_thread_inside_parallel_region();
    if (shard >= 0 && affinity_policy() != AffinityPolicy::kNone) {
      // Keep staged gathers/scatters on their shard's node so the slices
      // they first-touch stay local to the shard's GEMM workers.
      detail::pin_current_thread_to_node(shard %
                                         Topology::instance().node_count());
    }
    for (;;) {
      std::packaged_task<void()> task;
      {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [&] { return stopping || !queue.empty(); });
        if (queue.empty()) return;  // stopping and drained
        task = std::move(queue.front());
        queue.pop_front();
        executing = true;
      }
      task();  // exceptions land in the task's future
      {
        std::lock_guard<std::mutex> lock(mutex);
        executing = false;
      }
      idle_cv.notify_all();
    }
  }
};

StageExecutor::StageExecutor(int shard) : impl_(std::make_unique<Impl>()) {
  impl_->shard = shard;
}

StageExecutor::~StageExecutor() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stopping = true;
  }
  impl_->cv.notify_all();
  if (impl_->thread.joinable()) impl_->thread.join();
}

std::future<void> StageExecutor::submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> result = task.get_future();
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    check(!impl_->stopping, "StageExecutor::submit after shutdown");
    impl_->queue.push_back(std::move(task));
    if (!impl_->started) {
      impl_->started = true;
      impl_->thread = std::thread([impl = impl_.get()] { impl->loop(); });
    }
  }
  impl_->cv.notify_one();
  return result;
}

void StageExecutor::drain() {
  std::unique_lock<std::mutex> lock(impl_->mutex);
  impl_->idle_cv.wait(
      lock, [&] { return impl_->queue.empty() && !impl_->executing; });
}

}  // namespace mtsr
