#include "src/common/cli.hpp"

#include <cstdio>
#include <sstream>

#include "src/common/check.hpp"

namespace mtsr {

CliParser::CliParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void CliParser::add_int(const std::string& name, long long default_value,
                        const std::string& help) {
  options_[name] = Option{Kind::kInt, help, std::to_string(default_value)};
}

void CliParser::add_double(const std::string& name, double default_value,
                           const std::string& help) {
  std::ostringstream ss;
  ss << default_value;
  options_[name] = Option{Kind::kDouble, help, ss.str()};
}

void CliParser::add_string(const std::string& name, std::string default_value,
                           const std::string& help) {
  options_[name] = Option{Kind::kString, help, std::move(default_value)};
}

void CliParser::add_flag(const std::string& name, const std::string& help) {
  options_[name] = Option{Kind::kBool, help, "0"};
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    check(arg.rfind("--", 0) == 0, "expected flag starting with --: " + arg);
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    auto it = options_.find(arg);
    check(it != options_.end(), "unknown flag --" + arg + "\n" + usage());
    if (it->second.kind == Kind::kBool) {
      it->second.value = has_value ? value : "1";
    } else {
      if (!has_value) {
        check(i + 1 < argc, "flag --" + arg + " requires a value");
        value = argv[++i];
      }
      it->second.value = value;
    }
  }
  return true;
}

const CliParser::Option& CliParser::find(const std::string& name,
                                         Kind kind) const {
  auto it = options_.find(name);
  check(it != options_.end(), "flag --" + name + " was never registered");
  check(it->second.kind == kind, "flag --" + name + " accessed as wrong type");
  return it->second;
}

long long CliParser::get_int(const std::string& name) const {
  const Option& opt = find(name, Kind::kInt);
  try {
    return std::stoll(opt.value);
  } catch (const std::exception&) {
    throw ContractViolation("flag --" + name + " is not an integer: " +
                            opt.value);
  }
}

double CliParser::get_double(const std::string& name) const {
  const Option& opt = find(name, Kind::kDouble);
  try {
    return std::stod(opt.value);
  } catch (const std::exception&) {
    throw ContractViolation("flag --" + name + " is not a number: " +
                            opt.value);
  }
}

const std::string& CliParser::get_string(const std::string& name) const {
  return find(name, Kind::kString).value;
}

bool CliParser::get_flag(const std::string& name) const {
  const Option& opt = find(name, Kind::kBool);
  return opt.value == "1" || opt.value == "true";
}

std::string CliParser::usage() const {
  std::ostringstream out;
  out << program_ << " — " << description_ << "\n\nOptions:\n";
  for (const auto& [name, opt] : options_) {
    out << "  --" << name;
    switch (opt.kind) {
      case Kind::kInt: out << " <int>"; break;
      case Kind::kDouble: out << " <float>"; break;
      case Kind::kString: out << " <str>"; break;
      case Kind::kBool: break;
    }
    out << "  " << opt.help << " (default: " << opt.value << ")\n";
  }
  return out.str();
}

}  // namespace mtsr
