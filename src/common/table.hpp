// Console table formatting for paper-style result tables.
//
// Bench binaries print their reproduced figure/table rows through this
// formatter so all outputs share one consistent, diff-friendly layout.
#pragma once

#include <string>
#include <vector>

namespace mtsr {

/// Accumulates rows of string cells and renders an aligned ASCII table.
///
/// Usage:
///   Table t({"method", "NRMSE", "PSNR", "SSIM"});
///   t.add_row({"bicubic", "0.41", "22.1", "0.63"});
///   std::cout << t.render();
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Appends one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Number of data rows added so far.
  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Renders the table, headers first, columns padded to content width.
  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given number of decimal places.
[[nodiscard]] std::string fmt(double value, int decimals = 4);

/// Formats a double in scientific notation with the given precision.
[[nodiscard]] std::string fmt_sci(double value, int precision = 3);

/// Formats a byte count with a binary-unit suffix ("640 B", "1.5 KiB",
/// "12.0 MiB") — used by the serving telemetry tables.
[[nodiscard]] std::string fmt_bytes(long long bytes);

}  // namespace mtsr
