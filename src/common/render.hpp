// ASCII heat-map rendering of traffic grids.
//
// The paper's Figs. 6 and 10-13 are 3-D surface plots of traffic snapshots;
// in a terminal reproduction we render the same grids as ASCII heat maps
// (one glyph per cell, darker glyph = more traffic) plus summary statistics,
// and dump the raw grids to CSV for external plotting.
#pragma once

#include <string>
#include <vector>

namespace mtsr {

/// Options controlling ASCII heat-map rendering.
struct RenderOptions {
  /// Glyph ramp from lowest to highest intensity.
  std::string ramp = " .:-=+*#%@";
  /// If >0, downsample the grid (by averaging) so the rendered width is at
  /// most this many characters.
  int max_width = 64;
  /// If true, scale against the provided [lo, hi] range; otherwise use the
  /// grid's own min/max.
  bool fixed_range = false;
  double lo = 0.0;
  double hi = 1.0;
};

/// Renders a row-major `rows x cols` grid as an ASCII heat map.
[[nodiscard]] std::string render_heatmap(const std::vector<float>& grid,
                                         int rows, int cols,
                                         const RenderOptions& options = {});

/// Writes a row-major grid as a CSV matrix (one CSV row per grid row).
void write_grid_csv(const std::string& path, const std::vector<float>& grid,
                    int rows, int cols);

}  // namespace mtsr
