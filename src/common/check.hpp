// Contract-checking helpers used across the MTSR library.
//
// Following the C++ Core Guidelines (I.6/I.8, E.12) we express preconditions
// as explicit checks that throw std::invalid_argument / std::logic_error with
// a message naming the violated contract. Hot inner loops avoid these checks;
// public API boundaries use them.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>
#include <string_view>

namespace mtsr {

/// Thrown when a caller violates a documented precondition of a public API.
class ContractViolation : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Checks a precondition; throws ContractViolation with a descriptive
/// message (including the call site) when `condition` is false.
inline void check(bool condition, std::string_view message,
                  std::source_location loc = std::source_location::current()) {
  if (!condition) {
    throw ContractViolation(std::string(message) + " [" + loc.file_name() +
                            ":" + std::to_string(loc.line()) + "]");
  }
}

/// Checks an internal invariant (a bug in this library, not the caller,
/// when it fails); throws std::logic_error.
inline void check_internal(
    bool condition, std::string_view message,
    std::source_location loc = std::source_location::current()) {
  if (!condition) {
    throw std::logic_error("internal invariant violated: " +
                           std::string(message) + " [" + loc.file_name() +
                           ":" + std::to_string(loc.line()) + "]");
  }
}

}  // namespace mtsr
