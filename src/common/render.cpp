#include "src/common/render.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "src/common/check.hpp"

namespace mtsr {

std::string render_heatmap(const std::vector<float>& grid, int rows, int cols,
                           const RenderOptions& options) {
  check(rows > 0 && cols > 0, "render_heatmap requires positive dimensions");
  check(grid.size() == static_cast<std::size_t>(rows) * cols,
        "render_heatmap grid size must equal rows*cols");
  check(!options.ramp.empty(), "render_heatmap requires a non-empty ramp");

  int stride = 1;
  if (options.max_width > 0 && cols > options.max_width) {
    stride = (cols + options.max_width - 1) / options.max_width;
  }
  const int out_rows = (rows + stride - 1) / stride;
  const int out_cols = (cols + stride - 1) / stride;

  std::vector<float> down(static_cast<std::size_t>(out_rows) * out_cols, 0.f);
  for (int r = 0; r < out_rows; ++r) {
    for (int c = 0; c < out_cols; ++c) {
      double acc = 0.0;
      int count = 0;
      for (int dr = 0; dr < stride; ++dr) {
        for (int dc = 0; dc < stride; ++dc) {
          const int rr = r * stride + dr;
          const int cc = c * stride + dc;
          if (rr < rows && cc < cols) {
            acc += grid[static_cast<std::size_t>(rr) * cols + cc];
            ++count;
          }
        }
      }
      down[static_cast<std::size_t>(r) * out_cols + c] =
          static_cast<float>(acc / std::max(count, 1));
    }
  }

  double lo = options.lo;
  double hi = options.hi;
  if (!options.fixed_range) {
    lo = std::numeric_limits<double>::infinity();
    hi = -std::numeric_limits<double>::infinity();
    for (float v : down) {
      lo = std::min(lo, static_cast<double>(v));
      hi = std::max(hi, static_cast<double>(v));
    }
  }
  const double span = (hi > lo) ? (hi - lo) : 1.0;

  std::ostringstream out;
  for (int r = 0; r < out_rows; ++r) {
    for (int c = 0; c < out_cols; ++c) {
      const double v = down[static_cast<std::size_t>(r) * out_cols + c];
      double norm = (v - lo) / span;
      norm = std::clamp(norm, 0.0, 1.0);
      const auto idx = static_cast<std::size_t>(
          std::lround(norm * static_cast<double>(options.ramp.size() - 1)));
      out << options.ramp[idx];
    }
    out << '\n';
  }
  return out.str();
}

void write_grid_csv(const std::string& path, const std::vector<float>& grid,
                    int rows, int cols) {
  check(grid.size() == static_cast<std::size_t>(rows) * cols,
        "write_grid_csv grid size must equal rows*cols");
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_grid_csv: cannot open " + path);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c > 0) out << ',';
      out << grid[static_cast<std::size_t>(r) * cols + c];
    }
    out << '\n';
  }
}

}  // namespace mtsr
