// Tiny command-line flag parser for examples and bench binaries.
//
// Supports `--name value` and `--name=value` forms plus boolean switches.
// Unknown flags raise an error listing the registered ones, so every binary
// is self-documenting via `--help`.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mtsr {

/// Declarative command-line parser.
///
///   CliParser cli("quickstart", "Train a compact ZipNet-GAN");
///   cli.add_int("grid", 40, "fine grid side length");
///   cli.add_flag("verbose", "print per-epoch losses");
///   cli.parse(argc, argv);
///   int grid = cli.get_int("grid");
class CliParser {
 public:
  CliParser(std::string program, std::string description);

  /// Registers an integer flag with a default value.
  void add_int(const std::string& name, long long default_value,
               const std::string& help);
  /// Registers a floating-point flag with a default value.
  void add_double(const std::string& name, double default_value,
                  const std::string& help);
  /// Registers a string flag with a default value.
  void add_string(const std::string& name, std::string default_value,
                  const std::string& help);
  /// Registers a boolean switch (false unless present).
  void add_flag(const std::string& name, const std::string& help);

  /// Parses argv. Returns false (after printing usage) iff --help was given.
  /// Throws ContractViolation on unknown flags or malformed values.
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] long long get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] const std::string& get_string(const std::string& name) const;
  [[nodiscard]] bool get_flag(const std::string& name) const;

  /// Renders the usage/help text.
  [[nodiscard]] std::string usage() const;

 private:
  enum class Kind { kInt, kDouble, kString, kBool };
  struct Option {
    Kind kind;
    std::string help;
    std::string value;  // textual; parsed on access
  };

  const Option& find(const std::string& name, Kind kind) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Option> options_;
};

}  // namespace mtsr
