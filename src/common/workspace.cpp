#include "src/common/workspace.hpp"

#include <algorithm>

#include "src/common/check.hpp"

namespace mtsr {
namespace {

// Alignment and minimum block size, in floats. 64-byte alignment keeps
// GEMM panel loads cache-line aligned; the 256 KiB floor stops tiny first
// allocations from fragmenting the arena into many blocks during warm-up.
constexpr std::int64_t kAlignFloats = 16;  // 64 bytes
constexpr std::int64_t kMinBlockFloats = 64 * 1024;

std::int64_t round_up(std::int64_t n, std::int64_t to) {
  return (n + to - 1) / to * to;
}

}  // namespace

void Workspace::add_block(std::int64_t min_floats) {
  Block b;
  // Doubling policy: each growth at least doubles total capacity, so a
  // warm-up phase performs O(log peak) heap allocations in the worst case.
  b.cap = std::max({min_floats, kMinBlockFloats, capacity_});
  b.storage = std::make_unique<float[]>(
      static_cast<std::size_t>(b.cap + kAlignFloats));
  auto addr = reinterpret_cast<std::uintptr_t>(b.storage.get());
  const std::uintptr_t aligned = round_up(static_cast<std::int64_t>(addr),
                                          kAlignFloats * sizeof(float));
  b.base = b.storage.get() + (aligned - addr) / sizeof(float);
  capacity_ += b.cap;
  ++growth_events_;
  blocks_.push_back(std::move(b));
}

float* Workspace::alloc(std::int64_t count) {
  check(count >= 0, "Workspace::alloc: negative size");
  const std::int64_t need = std::max(round_up(count, kAlignFloats),
                                     kAlignFloats);
  // Advance past full blocks. Blocks beyond cur_ are empty (a rewind reset
  // them), so the first one with room is the bump target.
  while (cur_ < static_cast<std::int32_t>(blocks_.size()) &&
         blocks_[static_cast<std::size_t>(cur_)].cap -
                 blocks_[static_cast<std::size_t>(cur_)].used <
             need) {
    ++cur_;
  }
  if (cur_ == static_cast<std::int32_t>(blocks_.size())) add_block(need);
  Block& b = blocks_[static_cast<std::size_t>(cur_)];
  float* p = b.base + b.used;
  b.used += need;
  live_ += need;
  peak_ = std::max(peak_, live_);
  ++alloc_count_;
  return p;
}

Workspace::Checkpoint Workspace::checkpoint() const {
  if (blocks_.empty()) return Checkpoint{};
  return Checkpoint{cur_, blocks_[static_cast<std::size_t>(cur_)].used};
}

bool Workspace::alive(const Checkpoint& cp) const {
  if (blocks_.empty()) return cp.block == 0 && cp.used == 0;
  if (cp.block < 0 || cp.block >= static_cast<std::int32_t>(blocks_.size())) {
    return false;
  }
  return cp.block < cur_ ||
         (cp.block == cur_ &&
          cp.used <= blocks_[static_cast<std::size_t>(cur_)].used);
}

void Workspace::recompute_live() {
  live_ = 0;
  for (const Block& b : blocks_) live_ += b.used;
}

void Workspace::rewind(const Checkpoint& cp) {
  if (blocks_.empty()) {
    check(cp.block == 0 && cp.used == 0, "Workspace::rewind: bad checkpoint");
    return;
  }
  check(cp.block >= 0 && cp.block < static_cast<std::int32_t>(blocks_.size()),
        "Workspace::rewind: checkpoint block out of range");
  const bool in_order =
      cp.block < cur_ ||
      (cp.block == cur_ &&
       cp.used <= blocks_[static_cast<std::size_t>(cur_)].used);
  check(in_order, "Workspace::rewind: out-of-order (non-LIFO) rewind");
  check(cp.used <= blocks_[static_cast<std::size_t>(cp.block)].used,
        "Workspace::rewind: checkpoint above block watermark");
  for (std::size_t i = static_cast<std::size_t>(cp.block) + 1;
       i < blocks_.size(); ++i) {
    blocks_[i].used = 0;
  }
  blocks_[static_cast<std::size_t>(cp.block)].used = cp.used;
  cur_ = cp.block;
  recompute_live();
  // Fully drained: consolidate the chain into one block of the same total
  // capacity so steady state bumps through a single contiguous span. Not a
  // growth event — capacity is unchanged.
  if (live_ == 0 && blocks_.size() > 1) {
    const std::int64_t total = capacity_;
    blocks_.clear();
    capacity_ = 0;
    const std::int64_t saved_growth = growth_events_;
    add_block(total);
    growth_events_ = saved_growth;
    cur_ = 0;
  }
}

void Workspace::release_all() {
  if (blocks_.empty()) return;
  rewind(Checkpoint{0, 0});
}

Workspace::Stats Workspace::stats() const {
  constexpr std::int64_t f = static_cast<std::int64_t>(sizeof(float));
  return Stats{capacity_ * f, live_ * f, peak_ * f, alloc_count_,
               growth_events_};
}

Workspace& Workspace::tls() {
  static thread_local Workspace ws;
  return ws;
}

void Workspace::swap_guts(Workspace& other) {
  blocks_.swap(other.blocks_);
  std::swap(cur_, other.cur_);
  std::swap(capacity_, other.capacity_);
  std::swap(live_, other.live_);
  std::swap(peak_, other.peak_);
  std::swap(alloc_count_, other.alloc_count_);
  std::swap(growth_events_, other.growth_events_);
}

Workspace::Bind::Bind(Workspace& ws) : target_(&ws) {
  tls().swap_guts(*target_);
}

Workspace::Bind::~Bind() { tls().swap_guts(*target_); }

WsMatrix ws_matrix(Workspace& ws, std::int64_t rows, std::int64_t cols) {
  check(rows >= 0 && cols >= 0, "ws_matrix: negative extent");
  WsMatrix m;
  m.mark = ws.checkpoint();
  m.data = ws.alloc(rows * cols);
  m.end = ws.checkpoint();
  m.rows = rows;
  m.cols = cols;
  return m;
}

}  // namespace mtsr
