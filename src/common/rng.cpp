#include "src/common/rng.hpp"

#include <algorithm>

#include "src/common/check.hpp"

namespace mtsr {

double Rng::uniform(double lo, double hi) {
  check(lo <= hi, "Rng::uniform requires lo <= hi");
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  check(lo <= hi, "Rng::uniform_int requires lo <= hi");
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::normal(double mean, double stddev) {
  check(stddev >= 0.0, "Rng::normal requires stddev >= 0");
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

double Rng::lognormal(double mu, double sigma) {
  check(sigma >= 0.0, "Rng::lognormal requires sigma >= 0");
  std::lognormal_distribution<double> dist(mu, sigma);
  return dist(engine_);
}

int Rng::poisson(double mean) {
  check(mean >= 0.0, "Rng::poisson requires mean >= 0");
  if (mean == 0.0) return 0;
  std::poisson_distribution<int> dist(mean);
  return dist(engine_);
}

bool Rng::bernoulli(double p) {
  check(p >= 0.0 && p <= 1.0, "Rng::bernoulli requires p in [0,1]");
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

double Rng::exponential(double rate) {
  check(rate > 0.0, "Rng::exponential requires rate > 0");
  std::exponential_distribution<double> dist(rate);
  return dist(engine_);
}

std::size_t Rng::categorical(const std::vector<double>& weights) {
  check(!weights.empty(), "Rng::categorical requires non-empty weights");
  std::discrete_distribution<std::size_t> dist(weights.begin(), weights.end());
  return dist(engine_);
}

void Rng::shuffle(std::vector<std::size_t>& indices) {
  std::shuffle(indices.begin(), indices.end(), engine_);
}

Rng Rng::fork() { return Rng(next_u64() ^ 0x9e3779b97f4a7c15ULL); }

std::uint64_t Rng::derive_stream_seed(std::uint64_t seed, std::uint64_t key) {
  // SplitMix64 finaliser applied to seed advanced by (key + 1) gammas: a
  // well-mixed, stateless (seed, key) -> seed map. key and key + 1 yield
  // uncorrelated engines, and the +1 keeps stream(0) distinct from the
  // parent seed itself.
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (key + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace mtsr
