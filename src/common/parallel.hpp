// Shared parallel execution engine: a persistent thread pool driving
// deterministic index-range parallelism.
//
// Every compute layer (tensor GEMM kernels, conv lowering, batch-norm,
// pooling, the baselines and the GAN trainer) schedules work through
// parallel_for / parallel_for_chunks instead of spawning ad-hoc threads.
//
// Determinism contract: [0, n) is split into parallel_chunk_count(n)
// contiguous chunks whose geometry depends ONLY on n — never on the pool
// size. Each index is processed exactly once, in ascending order within its
// chunk, and per-chunk accumulator slots reduced in slot order therefore
// yield bit-identical results for every pool size (1, 2, hardware, ...).
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <vector>

namespace mtsr {

/// Chunk body: processes the contiguous index range [begin, end). `slot` is
/// the chunk index in [0, parallel_chunk_count(n)) — use it to index
/// per-chunk accumulator slots for deterministic reductions.
using ChunkBody =
    std::function<void(std::int64_t begin, std::int64_t end, int slot)>;

/// Current worker count (>= 1). Defaults to hardware_concurrency, clamped
/// to >= 1; the MTSR_THREADS environment variable overrides the default.
[[nodiscard]] int num_threads();

/// Resizes the pool to `n` workers (n >= 1); n < 1 restores the default
/// (MTSR_THREADS or hardware_concurrency). Must not be called from inside a
/// parallel region.
void set_num_threads(int n);

/// Number of chunks (== accumulator slots) parallel_for_chunks will use for
/// a trip count of n. Depends only on n, never on the pool size.
[[nodiscard]] int parallel_chunk_count(std::int64_t n);

/// Runs `body` over [0, n) split into parallel_chunk_count(n) contiguous
/// chunks, distributed over the pool. Blocks until all chunks finish;
/// rethrows the first chunk exception. Nested calls (from inside a chunk)
/// execute serially on the calling thread.
void parallel_for_chunks(std::int64_t n, const ChunkBody& body);

/// Like parallel_for_chunks but guarantees each chunk spans at least
/// `min_grain` indices (except a final short chunk when n < min_grain).
/// Chunk count is clamp(n / min_grain, 1, parallel_chunk_count(n)) — still
/// a pure function of n, never of the pool size. Use for kernels whose
/// per-chunk setup (tile packing, scratch buffers) must amortise over a
/// minimum block of work.
void parallel_for_grain(std::int64_t n, std::int64_t min_grain,
                        const ChunkBody& body);

/// Element-wise convenience wrapper: runs fn(i) for every i in [0, n) with
/// the same chunking/determinism guarantees as parallel_for_chunks.
template <typename Fn>
void parallel_for(std::int64_t n, Fn&& fn) {
  parallel_for_chunks(n, [&fn](std::int64_t begin, std::int64_t end, int) {
    for (std::int64_t i = begin; i < end; ++i) fn(i);
  });
}

namespace detail {
/// Permanently marks the calling thread as being inside a parallel region,
/// so its parallel_for calls run serially and never contend with the
/// pool's in-flight task. Used by dedicated stage threads (StageExecutor);
/// pool workers get the same flag from the pool itself.
void mark_thread_inside_parallel_region();

/// Scoped form of the flag above: while alive, the current thread's
/// parallel_for calls execute serially, then the previous state is
/// restored. Lets side-band work (e.g. building a replacement model during
/// a checkpoint hot-reload) run on any thread without ever scheduling into
/// the pool — whose single in-flight task may belong to a concurrently
/// serving thread.
class NestedParallelRegion {
 public:
  NestedParallelRegion();
  ~NestedParallelRegion();
  NestedParallelRegion(const NestedParallelRegion&) = delete;
  NestedParallelRegion& operator=(const NestedParallelRegion&) = delete;

 private:
  bool previous_;
};
}  // namespace detail

/// A dedicated background thread for pipeline-stage tasks that must overlap
/// pool-parallel work (e.g. the window gather of stitch block i+1 while
/// block i is inside the generator GEMMs). Tasks run serially in submission
/// order on the stage thread; the thread counts as being inside a parallel
/// region, so parallel_for calls made from a task execute serially on the
/// stage thread and never contend with the pool's in-flight task.
class StageExecutor {
 public:
  /// The stage thread starts lazily on the first submit().
  StageExecutor();
  /// Drains pending tasks, then joins the stage thread.
  ~StageExecutor();
  StageExecutor(const StageExecutor&) = delete;
  StageExecutor& operator=(const StageExecutor&) = delete;

  /// Schedules `fn` after all previously submitted tasks. The returned
  /// future's get()/wait() blocks until the task finishes and rethrows any
  /// exception it raised.
  std::future<void> submit(std::function<void()> fn);

  /// Blocks until every task submitted so far has finished (queue empty and
  /// no task executing). Task exceptions stay in their futures — drain()
  /// never throws them. Exception-unwind paths use this to guarantee no
  /// in-flight stage task still touches state about to be torn down.
  void drain();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Deterministic parallel reduction: `body(begin, end)` produces one
/// partial value per chunk; partials are combined with `combine` in slot
/// order, so the result is bit-identical for every pool size.
template <typename T, typename Body, typename Combine>
[[nodiscard]] T parallel_reduce(std::int64_t n, T init, Body&& body,
                                Combine&& combine) {
  const int slots = parallel_chunk_count(n);
  if (slots <= 0) return init;
  std::vector<T> partials(static_cast<std::size_t>(slots), init);
  parallel_for_chunks(n, [&](std::int64_t begin, std::int64_t end, int slot) {
    partials[static_cast<std::size_t>(slot)] = body(begin, end);
  });
  T acc = init;
  for (int s = 0; s < slots; ++s) {
    acc = combine(acc, partials[static_cast<std::size_t>(s)]);
  }
  return acc;
}

}  // namespace mtsr
