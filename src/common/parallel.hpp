// Shared parallel execution engine: a persistent thread pool driving
// deterministic index-range parallelism.
//
// Every compute layer (tensor GEMM kernels, conv lowering, batch-norm,
// pooling, the baselines and the GAN trainer) schedules work through
// parallel_for / parallel_for_chunks instead of spawning ad-hoc threads.
//
// Determinism contract: [0, n) is split into parallel_chunk_count(n)
// contiguous chunks whose geometry depends ONLY on n — never on the pool
// size. Each index is processed exactly once, in ascending order within its
// chunk, and per-chunk accumulator slots reduced in slot order therefore
// yield bit-identical results for every pool size (1, 2, hardware, ...).
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <vector>

namespace mtsr {

/// Chunk body: processes the contiguous index range [begin, end). `slot` is
/// the chunk index in [0, parallel_chunk_count(n)) — use it to index
/// per-chunk accumulator slots for deterministic reductions.
using ChunkBody =
    std::function<void(std::int64_t begin, std::int64_t end, int slot)>;

/// Current total worker count across all shards (>= 1). Defaults to
/// hardware_concurrency, clamped to >= 1; the MTSR_THREADS environment
/// variable overrides the default.
[[nodiscard]] int num_threads();

/// Resizes the pool to `n` workers total (n >= 1); n < 1 restores the
/// default (MTSR_THREADS or hardware_concurrency). Must not be called from
/// inside a parallel region, and throws while serving sessions are open
/// (they pin the pool topology for their lifetime).
void set_num_threads(int n);

/// Number of worker shards the pool is split into (>= 1). Each shard is an
/// independent worker group with its own in-flight task; a thread's
/// parallel_for dispatches into the shard it belongs to (current_shard()),
/// so shards execute concurrently without contending. Defaults to one shard
/// per detected NUMA node; the MTSR_SHARDS environment variable overrides
/// the default.
[[nodiscard]] int num_shards();

/// Reshards the pool into `n` worker groups; n < 1 restores the default
/// (MTSR_SHARDS or the NUMA node count). The total worker count is divided
/// as evenly as possible across shards (every shard keeps at least its
/// participating caller slot). Same restrictions as set_num_threads.
void set_num_shards(int n);

/// Worker slots of shard `s` (dedicated workers plus the participating
/// caller), >= 1.
[[nodiscard]] int shard_size(int shard);

/// The shard this thread's parallel_for calls dispatch into. 0 for ordinary
/// threads; shard runner threads (run_on_shard) and pool workers report
/// their own shard.
[[nodiscard]] int current_shard();

/// Runs `fn` on shard `shard`'s dedicated runner thread, where
/// current_shard() == shard, so every parallel_for inside `fn` fans out over
/// that shard's workers (and allocations first-touch that shard's memory
/// under compact affinity). Tasks of one shard run serially in submission
/// order; distinct shards run concurrently. The returned future rethrows
/// `fn`'s exception.
std::future<void> run_on_shard(int shard, std::function<void()> fn);

/// Cumulative per-shard pool telemetry since process start. busy_seconds is
/// the summed wall time worker slots (including participating callers)
/// spent executing chunk bodies — divide a delta by wall time x workers for
/// a utilisation ratio.
struct PoolShardStats {
  int shard = 0;
  int workers = 0;  ///< slots of this shard (dedicated + caller)
  std::int64_t tasks = 0;
  double busy_seconds = 0.0;
};
[[nodiscard]] std::vector<PoolShardStats> pool_shard_stats();

/// Number of chunks (== accumulator slots) parallel_for_chunks will use for
/// a trip count of n. Depends only on n, never on the pool size.
[[nodiscard]] int parallel_chunk_count(std::int64_t n);

/// Runs `body` over [0, n) split into parallel_chunk_count(n) contiguous
/// chunks, distributed over the pool. Blocks until all chunks finish;
/// rethrows the first chunk exception. Nested calls (from inside a chunk)
/// execute serially on the calling thread.
void parallel_for_chunks(std::int64_t n, const ChunkBody& body);

/// Like parallel_for_chunks but guarantees each chunk spans at least
/// `min_grain` indices (except a final short chunk when n < min_grain).
/// Chunk count is clamp(n / min_grain, 1, parallel_chunk_count(n)) — still
/// a pure function of n, never of the pool size. Use for kernels whose
/// per-chunk setup (tile packing, scratch buffers) must amortise over a
/// minimum block of work.
void parallel_for_grain(std::int64_t n, std::int64_t min_grain,
                        const ChunkBody& body);

/// Element-wise convenience wrapper: runs fn(i) for every i in [0, n) with
/// the same chunking/determinism guarantees as parallel_for_chunks.
template <typename Fn>
void parallel_for(std::int64_t n, Fn&& fn) {
  parallel_for_chunks(n, [&fn](std::int64_t begin, std::int64_t end, int) {
    for (std::int64_t i = begin; i < end; ++i) fn(i);
  });
}

namespace detail {
/// Permanently marks the calling thread as being inside a parallel region,
/// so its parallel_for calls run serially and never contend with the
/// pool's in-flight task. Used by dedicated stage threads (StageExecutor);
/// pool workers get the same flag from the pool itself.
void mark_thread_inside_parallel_region();

/// Scoped form of the flag above: while alive, the current thread's
/// parallel_for calls execute serially, then the previous state is
/// restored. Lets side-band work (e.g. building a replacement model during
/// a checkpoint hot-reload) run on any thread without ever scheduling into
/// the pool — whose single in-flight task may belong to a concurrently
/// serving thread.
class NestedParallelRegion {
 public:
  NestedParallelRegion();
  ~NestedParallelRegion();
  NestedParallelRegion(const NestedParallelRegion&) = delete;
  NestedParallelRegion& operator=(const NestedParallelRegion&) = delete;

 private:
  bool previous_;
};

/// While any instance is alive, set_num_threads / set_num_shards /
/// set_affinity_policy throw: serving sessions hold one for their lifetime
/// because their shard assignment, gather slots and fused-pass arenas are
/// sized against the pool topology at open time.
class PoolTopologyPin {
 public:
  PoolTopologyPin();
  ~PoolTopologyPin();
  PoolTopologyPin(const PoolTopologyPin&) = delete;
  PoolTopologyPin& operator=(const PoolTopologyPin&) = delete;
};
}  // namespace detail

/// A dedicated background thread for pipeline-stage tasks that must overlap
/// pool-parallel work (e.g. the window gather of stitch block i+1 while
/// block i is inside the generator GEMMs). Tasks run serially in submission
/// order on the stage thread; the thread counts as being inside a parallel
/// region, so parallel_for calls made from a task execute serially on the
/// stage thread and never contend with the pool's in-flight task.
class StageExecutor {
 public:
  /// The stage thread starts lazily on the first submit(). When `shard` is
  /// >= 0 the thread is pinned to that shard's NUMA node (under the active
  /// affinity policy) so staged gathers/scatters first-touch shard-local
  /// memory; -1 leaves it unpinned.
  explicit StageExecutor(int shard = -1);
  /// Drains pending tasks, then joins the stage thread.
  ~StageExecutor();
  StageExecutor(const StageExecutor&) = delete;
  StageExecutor& operator=(const StageExecutor&) = delete;

  /// Schedules `fn` after all previously submitted tasks. The returned
  /// future's get()/wait() blocks until the task finishes and rethrows any
  /// exception it raised.
  std::future<void> submit(std::function<void()> fn);

  /// Blocks until every task submitted so far has finished (queue empty and
  /// no task executing). Task exceptions stay in their futures — drain()
  /// never throws them. Exception-unwind paths use this to guarantee no
  /// in-flight stage task still touches state about to be torn down.
  void drain();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Deterministic parallel reduction: `body(begin, end)` produces one
/// partial value per chunk; partials are combined with `combine` in slot
/// order, so the result is bit-identical for every pool size.
template <typename T, typename Body, typename Combine>
[[nodiscard]] T parallel_reduce(std::int64_t n, T init, Body&& body,
                                Combine&& combine) {
  const int slots = parallel_chunk_count(n);
  if (slots <= 0) return init;
  std::vector<T> partials(static_cast<std::size_t>(slots), init);
  parallel_for_chunks(n, [&](std::int64_t begin, std::int64_t end, int slot) {
    partials[static_cast<std::size_t>(slot)] = body(begin, end);
  });
  T acc = init;
  for (int s = 0; s < slots; ++s) {
    acc = combine(acc, partials[static_cast<std::size_t>(s)]);
  }
  return acc;
}

}  // namespace mtsr
