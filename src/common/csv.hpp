// Minimal CSV writing/reading used to persist bench series and snapshots.
#pragma once

#include <string>
#include <vector>

namespace mtsr {

/// Writes rows of cells to `path` as RFC-4180-ish CSV (cells containing
/// commas, quotes or newlines are quoted). Throws std::runtime_error on I/O
/// failure.
void write_csv(const std::string& path,
               const std::vector<std::string>& header,
               const std::vector<std::vector<std::string>>& rows);

/// Reads a CSV file written by write_csv (simple quoting rules). Returns all
/// rows including the header. Throws std::runtime_error on I/O failure.
[[nodiscard]] std::vector<std::vector<std::string>> read_csv(
    const std::string& path);

}  // namespace mtsr
