// Deterministic random number generation for reproducible experiments.
//
// All stochastic components of the library (data synthesis, weight
// initialisation, batch sampling, GAN noise) draw from an Rng instance that
// is seeded explicitly, so every test, example and bench is reproducible
// bit-for-bit across runs on the same platform.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace mtsr {

/// Deterministic pseudo-random source wrapping std::mt19937_64.
///
/// A single Rng instance is not thread-safe; create one per thread or per
/// component. Distinct components should derive child generators via
/// `fork()` so that adding draws to one component does not perturb another.
class Rng {
 public:
  /// Creates a generator from an explicit seed.
  explicit Rng(std::uint64_t seed = 0x5eed5eedULL)
      : engine_(seed), seed_(seed) {}

  /// Uniform real in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0);

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal (mean 0, stddev 1) scaled/shifted to (mean, stddev).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Log-normal with the given parameters of the underlying normal.
  double lognormal(double mu, double sigma);

  /// Poisson-distributed count with the given mean.
  int poisson(double mean);

  /// Bernoulli draw with probability p of true.
  bool bernoulli(double p);

  /// Exponential with the given rate (lambda).
  double exponential(double rate);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  std::size_t categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffles `indices` in place.
  void shuffle(std::vector<std::size_t>& indices);

  /// Derives an independent child generator; deterministic given this
  /// generator's current state.
  Rng fork();

  /// Counter-based stream split: derives an independent child generator
  /// from this generator's ORIGINAL seed and `key` alone. Unlike fork(),
  /// the result does not depend on how many draws have been made from this
  /// generator, so stream(k) is the same generator no matter which thread
  /// requests it, in which order, or how work is partitioned — the basis of
  /// the data-parallel trainer's replica-count-independent sampling.
  [[nodiscard]] Rng stream(std::uint64_t key) const {
    return Rng(derive_stream_seed(seed_, key));
  }

  /// The seed this generator was constructed with (streams derive from it).
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// SplitMix64-style mix of (seed, key) -> child seed; pure function.
  [[nodiscard]] static std::uint64_t derive_stream_seed(std::uint64_t seed,
                                                        std::uint64_t key);

  /// Raw 64-bit draw (used by shuffle and fork).
  std::uint64_t next_u64() { return engine_(); }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_ = 0;
};

}  // namespace mtsr
