#include "src/common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "src/common/check.hpp"

namespace mtsr {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  check(!headers_.empty(), "Table requires at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  check(cells.size() == headers_.size(),
        "Table::add_row cell count must match header count");
  rows_.push_back(std::move(cells));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row,
                        std::ostringstream& out) {
    out << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << ' ' << row[c];
      out << std::string(widths[c] - row[c].size(), ' ') << " |";
    }
    out << '\n';
  };

  std::ostringstream out;
  render_row(headers_, out);
  out << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << "|";
  }
  out << '\n';
  for (const auto& row : rows_) {
    render_row(row, out);
  }
  return out.str();
}

std::string fmt(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string fmt_sci(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", precision, value);
  return buf;
}

std::string fmt_bytes(long long bytes) {
  char buf[64];
  if (bytes < 1024) {
    std::snprintf(buf, sizeof(buf), "%lld B", bytes);
  } else if (bytes < 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1f KiB",
                  static_cast<double>(bytes) / 1024.0);
  } else if (bytes < 1024LL * 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1f MiB",
                  static_cast<double>(bytes) / (1024.0 * 1024.0));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f GiB",
                  static_cast<double>(bytes) / (1024.0 * 1024.0 * 1024.0));
  }
  return buf;
}

}  // namespace mtsr
