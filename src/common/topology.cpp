#include "src/common/topology.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace mtsr {
namespace {

std::atomic<std::int64_t> g_pin_failures{0};
std::atomic<bool> g_simulate_pin_failure{false};
std::atomic<bool> g_pin_warned{false};

void note_pin_failure(const char* what) {
  g_pin_failures.fetch_add(1, std::memory_order_relaxed);
  if (!g_pin_warned.exchange(true, std::memory_order_relaxed)) {
    std::fprintf(stderr,
                 "mtsr: warning: %s failed; affinity pinning unavailable on "
                 "this host, serving unpinned\n",
                 what);
  }
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

int fallback_cpu_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

}  // namespace

std::vector<int> Topology::parse_cpu_list(const std::string& text) {
  // sysfs cpulist format: comma-separated decimal ranges, e.g. "0-3,8,10-11".
  std::vector<int> cpus;
  std::size_t pos = 0;
  while (pos < text.size()) {
    while (pos < text.size() &&
           (text[pos] == ',' || text[pos] == ' ' || text[pos] == '\n')) {
      ++pos;
    }
    if (pos >= text.size() || !std::isdigit(static_cast<unsigned char>(text[pos]))) break;
    char* end = nullptr;
    const long lo = std::strtol(text.c_str() + pos, &end, 10);
    pos = static_cast<std::size_t>(end - text.c_str());
    long hi = lo;
    if (pos < text.size() && text[pos] == '-') {
      ++pos;
      hi = std::strtol(text.c_str() + pos, &end, 10);
      pos = static_cast<std::size_t>(end - text.c_str());
    }
    for (long c = lo; c <= hi; ++c) cpus.push_back(static_cast<int>(c));
  }
  std::sort(cpus.begin(), cpus.end());
  cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
  return cpus;
}

Topology::Topology() {
#if defined(__linux__)
  std::string online;
  if (read_file("/sys/devices/system/cpu/online", &online)) {
    const std::vector<int> online_cpus = parse_cpu_list(online);
    std::string node_list;
    std::vector<Node> nodes;
    if (!online_cpus.empty() &&
        read_file("/sys/devices/system/node/online", &node_list)) {
      for (int id : parse_cpu_list(node_list)) {
        std::string cpulist;
        if (!read_file("/sys/devices/system/node/node" + std::to_string(id) +
                           "/cpulist",
                       &cpulist)) {
          continue;
        }
        Node node;
        node.id = id;
        // A node's cpulist can include offline cpus; keep online ones only.
        for (int c : parse_cpu_list(cpulist)) {
          if (std::binary_search(online_cpus.begin(), online_cpus.end(), c)) {
            node.cpus.push_back(c);
          }
        }
        if (!node.cpus.empty()) nodes.push_back(std::move(node));
      }
    }
    if (!nodes.empty()) {
      nodes_ = std::move(nodes);
      from_sysfs_ = true;
    } else if (!online_cpus.empty()) {
      Node node;
      node.id = 0;
      node.cpus = online_cpus;
      nodes_.push_back(std::move(node));
      from_sysfs_ = true;
    }
  }
#endif
  if (nodes_.empty()) {
    Node node;
    node.id = 0;
    const int hw = fallback_cpu_count();
    node.cpus.reserve(static_cast<std::size_t>(hw));
    for (int c = 0; c < hw; ++c) node.cpus.push_back(c);
    nodes_.push_back(std::move(node));
    from_sysfs_ = false;
  }
  cpu_count_ = 0;
  for (const Node& node : nodes_) {
    cpu_count_ += static_cast<int>(node.cpus.size());
  }
  if (cpu_count_ < 1) cpu_count_ = 1;
}

const Topology& Topology::instance() {
  static Topology topology;
  return topology;
}

std::string Topology::summary() const {
  std::ostringstream ss;
  ss << nodes_.size() << (nodes_.size() == 1 ? " node x " : " nodes x ")
     << cpu_count_ << (cpu_count_ == 1 ? " cpu" : " cpus") << " ("
     << (from_sysfs_ ? "sysfs" : "fallback") << ")";
  return ss.str();
}

AffinityPolicy parse_affinity_policy(const char* text) {
  if (text == nullptr) return AffinityPolicy::kNone;
  if (std::strcmp(text, "compact") == 0) return AffinityPolicy::kCompact;
  if (std::strcmp(text, "scatter") == 0) return AffinityPolicy::kScatter;
  return AffinityPolicy::kNone;
}

const char* affinity_policy_name(AffinityPolicy policy) {
  switch (policy) {
    case AffinityPolicy::kCompact:
      return "compact";
    case AffinityPolicy::kScatter:
      return "scatter";
    case AffinityPolicy::kNone:
      break;
  }
  return "none";
}

namespace {

// -1 = not yet initialised; first read resolves MTSR_AFFINITY.
std::atomic<int> g_policy{-1};

}  // namespace

AffinityPolicy affinity_policy() {
  int v = g_policy.load(std::memory_order_relaxed);
  if (v < 0) {
    int expected = -1;
    g_policy.compare_exchange_strong(
        expected,
        static_cast<int>(parse_affinity_policy(std::getenv("MTSR_AFFINITY"))),
        std::memory_order_relaxed);
    v = g_policy.load(std::memory_order_relaxed);
  }
  return static_cast<AffinityPolicy>(v);
}

namespace detail {

void store_affinity_policy(AffinityPolicy policy) {
  g_policy.store(static_cast<int>(policy), std::memory_order_relaxed);
}

namespace {

bool apply_cpu_set(const std::vector<int>& cpus, const char* what) {
  if (g_simulate_pin_failure.load(std::memory_order_relaxed)) {
    note_pin_failure(what);
    return false;
  }
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  for (int c : cpus) {
    if (c >= 0 && c < CPU_SETSIZE) CPU_SET(c, &set);
  }
  if (CPU_COUNT(&set) == 0) {
    note_pin_failure(what);
    return false;
  }
  if (pthread_setaffinity_np(pthread_self(), sizeof(set), &set) != 0) {
    note_pin_failure(what);
    return false;
  }
  return true;
#else
  note_pin_failure(what);
  return false;
#endif
}

}  // namespace

bool pin_current_thread_to_cpu(int cpu) {
  return apply_cpu_set({cpu}, "pthread_setaffinity_np(cpu)");
}

bool pin_current_thread_to_node(int node_index) {
  const auto& nodes = Topology::instance().nodes();
  if (nodes.empty()) return false;
  const std::size_t i =
      static_cast<std::size_t>(node_index) % nodes.size();
  return apply_cpu_set(nodes[i].cpus, "pthread_setaffinity_np(node)");
}

std::int64_t pin_failure_count() {
  return g_pin_failures.load(std::memory_order_relaxed);
}

void simulate_pin_failure(bool enabled) {
  g_simulate_pin_failure.store(enabled, std::memory_order_relaxed);
}

int cpu_for_worker(AffinityPolicy policy, int shard, int shard_count,
                   int worker_index) {
  if (policy == AffinityPolicy::kNone) return -1;
  if (shard < 0 || worker_index < 0) return -1;
  const auto& nodes = Topology::instance().nodes();
  if (nodes.empty()) return -1;
  if (shard_count < 1) shard_count = 1;
  if (policy == AffinityPolicy::kCompact) {
    // One shard per node: shard s claims node (s % nodes) and packs its
    // workers onto that node's cpus in order. When several shards share a
    // node (more shards than nodes) they interleave by shard index so two
    // shards do not stack onto the same first core.
    const Topology::Node& node =
        nodes[static_cast<std::size_t>(shard) % nodes.size()];
    const int stacked = shard / static_cast<int>(nodes.size());
    const std::size_t slot =
        static_cast<std::size_t>(worker_index + stacked) % node.cpus.size();
    return node.cpus[slot];
  }
  // kScatter: spread one shard's workers across every node round-robin,
  // starting at the shard's own node so distinct shards lead differently.
  const std::size_t node_idx =
      static_cast<std::size_t>(shard + worker_index) % nodes.size();
  const Topology::Node& node = nodes[node_idx];
  const std::size_t slot =
      static_cast<std::size_t>(worker_index / static_cast<int>(nodes.size())) %
      node.cpus.size();
  return node.cpus[slot];
}

}  // namespace detail

}  // namespace mtsr
