// Lightweight wall-clock stopwatch for reporting training / inference times.
#pragma once

#include <chrono>

namespace mtsr {

/// Monotonic wall-clock stopwatch. Started at construction.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or the last reset().
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace mtsr
