#include "src/common/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/check.hpp"

namespace mtsr {
namespace {

// Fixed scheduling granularity: chunk count is min(n, kMaxChunks) so slot
// geometry is a pure function of the trip count. 32 chunks keeps all cores
// of typical deployment hosts busy while bounding accumulator-slot storage.
constexpr int kMaxChunks = 32;

// True while this thread is executing inside a parallel region (either a
// pool worker, or the caller participating in its own parallel_for). Nested
// parallel_for calls then run serially, which keeps the engine re-entrant
// (e.g. a layer parallelising over samples whose body calls a GEMM).
thread_local bool t_in_parallel_region = false;

std::int64_t chunk_begin(std::int64_t n, int chunks, int c) {
  const std::int64_t base = n / chunks;
  const std::int64_t rem = n % chunks;
  return c * base + std::min<std::int64_t>(c, rem);
}

// One parallel_for invocation. Heap-allocated and shared with the workers so
// a straggler that wakes late only ever touches its own task's state, never
// a subsequent task's.
struct Task {
  std::int64_t n = 0;
  int chunks = 0;
  const ChunkBody* body = nullptr;
  std::atomic<int> next{0};
  std::atomic<int> done{0};
  std::mutex error_mutex;
  std::exception_ptr error;

  // Claims and runs chunks until drained; used by workers and the caller.
  void work() {
    for (;;) {
      const int c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) return;
      try {
        (*body)(chunk_begin(n, chunks, c), chunk_begin(n, chunks, c + 1), c);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
      }
      done.fetch_add(1, std::memory_order_acq_rel);
    }
  }
};

class ThreadPool {
 public:
  static ThreadPool& instance() {
    static ThreadPool pool;
    return pool;
  }

  int size() {
    std::lock_guard<std::mutex> lock(mutex_);
    return worker_target_ + 1;  // workers plus the participating caller
  }

  void resize(int n) {
    if (n < 1) n = default_size();
    // The thread-local flag catches the serial/nested paths (which never
    // publish current_); the current_ check catches another thread's
    // in-flight pooled task.
    check(!t_in_parallel_region, "set_num_threads called from a parallel region");
    std::unique_lock<std::mutex> lock(mutex_);
    check(current_ == nullptr, "set_num_threads called from a parallel region");
    stop_workers(lock);
    worker_target_ = n - 1;  // the caller thread is worker number n
    start_workers();
  }

  void run(std::int64_t n, int chunks, const ChunkBody& body) {
    auto task = std::make_shared<Task>();
    task->n = n;
    task->chunks = chunks;
    task->body = &body;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (worker_target_ == 0 || chunks <= 1) {
        lock.unlock();
        t_in_parallel_region = true;
        try {
          task->work();
        } catch (...) {
          t_in_parallel_region = false;
          throw;
        }
        t_in_parallel_region = false;
        if (task->error) std::rethrow_exception(task->error);
        return;
      }
      current_ = task;
      ++generation_;
      work_cv_.notify_all();
    }

    // The caller participates as a worker on its own task.
    t_in_parallel_region = true;
    task->work();
    t_in_parallel_region = false;

    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] {
      return task->done.load(std::memory_order_acquire) == task->chunks;
    });
    current_ = nullptr;
    lock.unlock();
    if (task->error) std::rethrow_exception(task->error);
  }

  void notify_done() {
    std::lock_guard<std::mutex> lock(mutex_);
    done_cv_.notify_all();
  }

  static int default_size() {
    if (const char* env = std::getenv("MTSR_THREADS")) {
      const int n = std::atoi(env);
      if (n >= 1) return n;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? static_cast<int>(hw) : 1;
  }

 private:
  ThreadPool() {
    worker_target_ = default_size() - 1;
    start_workers();
  }

  ~ThreadPool() {
    std::unique_lock<std::mutex> lock(mutex_);
    stop_workers(lock);
  }

  void worker_loop() {
    t_in_parallel_region = true;
    std::uint64_t seen_generation = 0;
    for (;;) {
      std::shared_ptr<Task> task;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        work_cv_.wait(lock, [&] {
          return stopping_ || (current_ && generation_ != seen_generation);
        });
        if (stopping_) return;
        seen_generation = generation_;
        task = current_;
      }
      task->work();
      notify_done();
    }
  }

  void start_workers() {
    stopping_ = false;
    workers_.reserve(static_cast<std::size_t>(worker_target_));
    for (int i = 0; i < worker_target_; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  void stop_workers(std::unique_lock<std::mutex>& lock) {
    stopping_ = true;
    work_cv_.notify_all();
    lock.unlock();
    for (std::thread& w : workers_) w.join();
    workers_.clear();
    lock.lock();
  }

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  int worker_target_ = 0;
  bool stopping_ = false;
  std::uint64_t generation_ = 0;
  std::shared_ptr<Task> current_;
};

}  // namespace

int num_threads() { return ThreadPool::instance().size(); }

void set_num_threads(int n) { ThreadPool::instance().resize(n); }

int parallel_chunk_count(std::int64_t n) {
  if (n <= 0) return 0;
  return static_cast<int>(std::min<std::int64_t>(n, kMaxChunks));
}

namespace {

void dispatch_chunks(std::int64_t n, int chunks, const ChunkBody& body) {
  if (n <= 0 || chunks <= 0) return;
  if (t_in_parallel_region) {
    // Nested region: run serially on this thread, same chunk geometry.
    for (int c = 0; c < chunks; ++c) {
      body(chunk_begin(n, chunks, c), chunk_begin(n, chunks, c + 1), c);
    }
    return;
  }
  ThreadPool::instance().run(n, chunks, body);
}

}  // namespace

void parallel_for_chunks(std::int64_t n, const ChunkBody& body) {
  dispatch_chunks(n, parallel_chunk_count(n), body);
}

void parallel_for_grain(std::int64_t n, std::int64_t min_grain,
                        const ChunkBody& body) {
  if (n <= 0) return;
  if (min_grain < 1) min_grain = 1;
  const std::int64_t by_grain = n / min_grain;
  const int chunks = static_cast<int>(std::clamp<std::int64_t>(
      by_grain, 1, parallel_chunk_count(n)));
  dispatch_chunks(n, chunks, body);
}

namespace detail {

void mark_thread_inside_parallel_region() { t_in_parallel_region = true; }

NestedParallelRegion::NestedParallelRegion()
    : previous_(t_in_parallel_region) {
  t_in_parallel_region = true;
}

NestedParallelRegion::~NestedParallelRegion() {
  t_in_parallel_region = previous_;
}

}  // namespace detail

}  // namespace mtsr
