#include "src/common/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/check.hpp"
#include "src/common/topology.hpp"

namespace mtsr {
namespace {

// Fixed scheduling granularity: chunk count is min(n, kMaxChunks) so slot
// geometry is a pure function of the trip count. 32 chunks keeps all cores
// of typical deployment hosts busy while bounding accumulator-slot storage.
constexpr int kMaxChunks = 32;

// True while this thread is executing inside a parallel region (either a
// pool worker, or the caller participating in its own parallel_for). Nested
// parallel_for calls then run serially, which keeps the engine re-entrant
// (e.g. a layer parallelising over samples whose body calls a GEMM).
thread_local bool t_in_parallel_region = false;

// The shard group this thread's parallel_for dispatches into. Ordinary
// threads belong to shard 0; shard runner threads and pool workers carry
// their own shard id.
thread_local int t_shard = 0;

std::int64_t chunk_begin(std::int64_t n, int chunks, int c) {
  const std::int64_t base = n / chunks;
  const std::int64_t rem = n % chunks;
  return c * base + std::min<std::int64_t>(c, rem);
}

using Clock = std::chrono::steady_clock;

// One parallel_for invocation. Heap-allocated and shared with the workers so
// a straggler that wakes late only ever touches its own task's state, never
// a subsequent task's.
struct Task {
  std::int64_t n = 0;
  int chunks = 0;
  const ChunkBody* body = nullptr;
  std::atomic<int> next{0};
  std::atomic<int> done{0};
  std::mutex error_mutex;
  std::exception_ptr error;

  // Claims and runs chunks until drained; used by workers and the caller.
  void work() {
    for (;;) {
      const int c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) return;
      try {
        (*body)(chunk_begin(n, chunks, c), chunk_begin(n, chunks, c + 1), c);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
      }
      done.fetch_add(1, std::memory_order_acq_rel);
    }
  }
};

// One worker group: the unit parallel_for dispatches into. Chunk geometry
// is a pure function of the trip count, so outputs stay bit-identical
// however many workers the group happens to have.
class ShardGroup {
 public:
  ShardGroup(int shard, int shard_count, int worker_target,
             AffinityPolicy policy)
      : shard_(shard), worker_target_(worker_target) {
    workers_.reserve(static_cast<std::size_t>(worker_target_));
    for (int i = 0; i < worker_target_; ++i) {
      // Worker i occupies slot i; the participating caller (or the shard's
      // runner thread) is the last slot and pins itself on creation.
      const int cpu = detail::cpu_for_worker(policy, shard_, shard_count, i);
      workers_.emplace_back([this, cpu] { worker_loop(cpu); });
    }
  }

  ~ShardGroup() { stop(); }

  int slots() const { return worker_target_ + 1; }
  int shard() const { return shard_; }

  // True when no pooled task is in flight (safe to tear the group down).
  bool idle() {
    std::lock_guard<std::mutex> lock(mutex_);
    return current_ == nullptr;
  }

  void stop() {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (stopping_) return;
      stopping_ = true;
      work_cv_.notify_all();
    }
    for (std::thread& w : workers_) w.join();
    workers_.clear();
  }

  void run(std::int64_t n, int chunks, const ChunkBody& body) {
    auto task = std::make_shared<Task>();
    task->n = n;
    task->chunks = chunks;
    task->body = &body;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (worker_target_ == 0 || chunks <= 1) {
        lock.unlock();
        tasks_.fetch_add(1, std::memory_order_relaxed);
        const Clock::time_point t0 = Clock::now();
        t_in_parallel_region = true;
        try {
          task->work();
        } catch (...) {
          t_in_parallel_region = false;
          add_busy(t0);
          throw;
        }
        t_in_parallel_region = false;
        add_busy(t0);
        if (task->error) std::rethrow_exception(task->error);
        return;
      }
      current_ = task;
      ++generation_;
      work_cv_.notify_all();
    }

    // The caller participates as a worker on its own task.
    tasks_.fetch_add(1, std::memory_order_relaxed);
    const Clock::time_point t0 = Clock::now();
    t_in_parallel_region = true;
    task->work();
    t_in_parallel_region = false;
    add_busy(t0);

    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] {
      return task->done.load(std::memory_order_acquire) == task->chunks;
    });
    current_ = nullptr;
    lock.unlock();
    if (task->error) std::rethrow_exception(task->error);
  }

  std::int64_t tasks() const {
    return tasks_.load(std::memory_order_relaxed);
  }
  double busy_seconds() const {
    return static_cast<double>(busy_ns_.load(std::memory_order_relaxed)) *
           1e-9;
  }

 private:
  void add_busy(Clock::time_point t0) {
    busy_ns_.fetch_add(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0)
            .count(),
        std::memory_order_relaxed);
  }

  void worker_loop(int cpu) {
    t_in_parallel_region = true;
    t_shard = shard_;
    if (cpu >= 0) detail::pin_current_thread_to_cpu(cpu);
    std::uint64_t seen_generation = 0;
    for (;;) {
      std::shared_ptr<Task> task;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        work_cv_.wait(lock, [&] {
          return stopping_ || (current_ && generation_ != seen_generation);
        });
        if (stopping_) return;
        seen_generation = generation_;
        task = current_;
      }
      const Clock::time_point t0 = Clock::now();
      task->work();
      add_busy(t0);
      {
        std::lock_guard<std::mutex> lock(mutex_);
        done_cv_.notify_all();
      }
    }
  }

  const int shard_;
  const int worker_target_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
  std::uint64_t generation_ = 0;
  std::shared_ptr<Task> current_;
  std::atomic<std::int64_t> tasks_{0};
  std::atomic<std::int64_t> busy_ns_{0};
};

// Dedicated dispatch thread of one shard: executes run_on_shard tasks with
// t_shard set to its shard (and NOT inside a parallel region), so the tasks'
// parallel_for calls fan out over the shard's own workers.
class ShardRunner {
 public:
  explicit ShardRunner(int shard) : shard_(shard) {}

  ~ShardRunner() {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      stopping_ = true;
      cv_.notify_all();
    }
    if (thread_.joinable()) thread_.join();
  }

  std::future<void> submit(std::function<void()> fn) {
    Job job;
    job.fn = std::move(fn);
    std::future<void> future = job.promise.get_future();
    std::unique_lock<std::mutex> lock(mutex_);
    check(!stopping_, "run_on_shard during pool shutdown");
    queue_.push_back(std::move(job));
    if (!thread_.joinable()) {
      thread_ = std::thread([this] { loop(); });
    }
    cv_.notify_all();
    return future;
  }

  // True when the queue is drained and no task is executing.
  bool idle() {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.empty() && !executing_;
  }

 private:
  struct Job {
    std::function<void()> fn;
    std::promise<void> promise;
  };

  void loop() {
    t_shard = shard_;
    if (affinity_policy() != AffinityPolicy::kNone) {
      detail::pin_current_thread_to_node(shard_ %
                                         Topology::instance().node_count());
    }
    for (;;) {
      Job job;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) {
          if (stopping_) return;
          continue;
        }
        job = std::move(queue_.front());
        queue_.pop_front();
        executing_ = true;
      }
      std::exception_ptr error;
      try {
        job.fn();
      } catch (...) {
        error = std::current_exception();
      }
      {
        // Cleared BEFORE the promise is fulfilled: a caller that joins the
        // future and immediately reconfigures the pool must observe an
        // idle runner.
        std::lock_guard<std::mutex> lock(mutex_);
        executing_ = false;
      }
      if (error) {
        job.promise.set_exception(error);
      } else {
        job.promise.set_value();
      }
    }
  }

  const int shard_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Job> queue_;
  bool stopping_ = false;
  bool executing_ = false;
  std::thread thread_;
};

using GroupList = std::vector<std::unique_ptr<ShardGroup>>;

class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  int total_threads() {
    std::lock_guard<std::mutex> lock(config_mutex_);
    return total_;
  }

  int shard_count() {
    std::lock_guard<std::mutex> lock(config_mutex_);
    return shards_;
  }

  int group_slots(int shard) {
    const std::shared_ptr<const GroupList> groups = load_groups();
    check(shard >= 0 && shard < static_cast<int>(groups->size()),
          "shard_size: shard out of range");
    return (*groups)[static_cast<std::size_t>(shard)]->slots();
  }

  void resize_threads(int n) {
    if (n < 1) n = default_total();
    std::unique_lock<std::mutex> lock(config_mutex_);
    guard_reconfigure("set_num_threads");
    rebuild(n, shards_);
  }

  void resize_shards(int n) {
    if (n < 1) n = default_shards();
    std::unique_lock<std::mutex> lock(config_mutex_);
    guard_reconfigure("set_num_shards");
    rebuild(total_, n);
  }

  void set_policy(AffinityPolicy policy) {
    std::unique_lock<std::mutex> lock(config_mutex_);
    guard_reconfigure("set_affinity_policy");
    detail::store_affinity_policy(policy);
    rebuild(total_, shards_);
  }

  void dispatch(std::int64_t n, int chunks, const ChunkBody& body) {
    const std::shared_ptr<const GroupList> groups = load_groups();
    const std::size_t shard =
        static_cast<std::size_t>(t_shard) % groups->size();
    (*groups)[shard]->run(n, chunks, body);
  }

  std::future<void> submit_to_shard(int shard, std::function<void()> fn) {
    std::unique_lock<std::mutex> lock(config_mutex_);
    check(shard >= 0 && shard < shards_, "run_on_shard: shard out of range");
    std::unique_ptr<ShardRunner>& runner =
        runners_[static_cast<std::size_t>(shard)];
    if (!runner) runner = std::make_unique<ShardRunner>(shard);
    return runner->submit(std::move(fn));
  }

  std::vector<PoolShardStats> stats() {
    const std::shared_ptr<const GroupList> groups = load_groups();
    std::vector<PoolShardStats> out;
    out.reserve(groups->size());
    for (const auto& group : *groups) {
      PoolShardStats s;
      s.shard = group->shard();
      s.workers = group->slots();
      s.tasks = group->tasks();
      s.busy_seconds = group->busy_seconds();
      out.push_back(s);
    }
    return out;
  }

  void pin_topology() {
    topology_pins_.fetch_add(1, std::memory_order_relaxed);
  }
  void unpin_topology() {
    topology_pins_.fetch_sub(1, std::memory_order_relaxed);
  }

  static int default_total() {
    if (const char* env = std::getenv("MTSR_THREADS")) {
      const int n = std::atoi(env);
      if (n >= 1) return n;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? static_cast<int>(hw) : 1;
  }

  static int default_shards() {
    if (const char* env = std::getenv("MTSR_SHARDS")) {
      const int n = std::atoi(env);
      if (n >= 1) return n;
    }
    return Topology::instance().node_count();
  }

 private:
  Pool() {
    std::unique_lock<std::mutex> lock(config_mutex_);
    rebuild(default_total(), default_shards());
  }

  ~Pool() {
    // Group/runner destructors join their threads; config_mutex_ must not
    // be held (runner tasks may still be finishing a submit).
    std::shared_ptr<const GroupList> groups;
    {
      std::lock_guard<std::mutex> lock(config_mutex_);
      groups = groups_;
      groups_.reset();
      runners_.clear();
    }
    // Last reference dies here, stopping the groups.
  }

  std::shared_ptr<const GroupList> load_groups() {
    std::lock_guard<std::mutex> lock(config_mutex_);
    return groups_;
  }

  // Caller holds config_mutex_.
  void guard_reconfigure(const char* what) {
    // The thread-local flag catches the serial/nested paths (which never
    // publish a task); the idle checks catch another thread's in-flight
    // pooled task or a shard runner mid-task.
    check(!t_in_parallel_region,
          std::string(what) + " called from a parallel region");
    check(topology_pins_.load(std::memory_order_relaxed) == 0,
          std::string(what) + " while serving sessions are open");
    if (groups_) {
      for (const auto& group : *groups_) {
        check(group->idle(), std::string(what) + " called from a parallel region");
      }
    }
    for (const auto& runner : runners_) {
      check(!runner || runner->idle(),
            std::string(what) + " while a shard runner task is in flight");
    }
  }

  // Caller holds config_mutex_ and has passed guard_reconfigure.
  void rebuild(int total, int shards) {
    // Runners cache the affinity policy on thread start; rebuild them too.
    runners_.clear();
    groups_.reset();  // joins the old workers
    const AffinityPolicy policy = affinity_policy();
    auto groups = std::make_shared<GroupList>();
    groups->reserve(static_cast<std::size_t>(shards));
    for (int s = 0; s < shards; ++s) {
      // total is divided as evenly as possible; every shard keeps at least
      // its participating caller slot even when total < shards.
      const int slots =
          std::max(1, total / shards + (s < total % shards ? 1 : 0));
      groups->push_back(
          std::make_unique<ShardGroup>(s, shards, slots - 1, policy));
    }
    groups_ = std::move(groups);
    runners_.resize(static_cast<std::size_t>(shards));
    total_ = total;
    shards_ = shards;
  }

  std::mutex config_mutex_;
  std::shared_ptr<const GroupList> groups_;
  std::vector<std::unique_ptr<ShardRunner>> runners_;
  int total_ = 0;
  int shards_ = 0;
  std::atomic<int> topology_pins_{0};
};

}  // namespace

int num_threads() { return Pool::instance().total_threads(); }

void set_num_threads(int n) { Pool::instance().resize_threads(n); }

int num_shards() { return Pool::instance().shard_count(); }

void set_num_shards(int n) { Pool::instance().resize_shards(n); }

int shard_size(int shard) { return Pool::instance().group_slots(shard); }

int current_shard() { return t_shard; }

std::future<void> run_on_shard(int shard, std::function<void()> fn) {
  return Pool::instance().submit_to_shard(shard, std::move(fn));
}

std::vector<PoolShardStats> pool_shard_stats() {
  return Pool::instance().stats();
}

void set_affinity_policy(AffinityPolicy policy) {
  Pool::instance().set_policy(policy);
}

int parallel_chunk_count(std::int64_t n) {
  if (n <= 0) return 0;
  return static_cast<int>(std::min<std::int64_t>(n, kMaxChunks));
}

namespace {

void dispatch_chunks(std::int64_t n, int chunks, const ChunkBody& body) {
  if (n <= 0 || chunks <= 0) return;
  if (t_in_parallel_region) {
    // Nested region: run serially on this thread, same chunk geometry.
    for (int c = 0; c < chunks; ++c) {
      body(chunk_begin(n, chunks, c), chunk_begin(n, chunks, c + 1), c);
    }
    return;
  }
  Pool::instance().dispatch(n, chunks, body);
}

}  // namespace

void parallel_for_chunks(std::int64_t n, const ChunkBody& body) {
  dispatch_chunks(n, parallel_chunk_count(n), body);
}

void parallel_for_grain(std::int64_t n, std::int64_t min_grain,
                        const ChunkBody& body) {
  if (n <= 0) return;
  if (min_grain < 1) min_grain = 1;
  const std::int64_t by_grain = n / min_grain;
  const int chunks = static_cast<int>(std::clamp<std::int64_t>(
      by_grain, 1, parallel_chunk_count(n)));
  dispatch_chunks(n, chunks, body);
}

namespace detail {

void mark_thread_inside_parallel_region() { t_in_parallel_region = true; }

NestedParallelRegion::NestedParallelRegion()
    : previous_(t_in_parallel_region) {
  t_in_parallel_region = true;
}

NestedParallelRegion::~NestedParallelRegion() {
  t_in_parallel_region = previous_;
}

PoolTopologyPin::PoolTopologyPin() { Pool::instance().pin_topology(); }

PoolTopologyPin::~PoolTopologyPin() { Pool::instance().unpin_topology(); }

}  // namespace detail

}  // namespace mtsr
