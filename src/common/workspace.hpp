// Workspace: a bump arena with high-water-mark reuse that plans the scratch
// memory of every compute layer.
//
// The training loop runs thousands of conv2d/conv3d/deconv steps per epoch;
// each one needs im2col/vol2col matrices, GEMM outputs and channel-major
// views whose sizes repeat step after step. Instead of heap-allocating them
// anew (the dominant cost at paper-scale batch sizes), the tensor ops and
// nn layers carve them out of a per-thread Workspace: allocation is a bump,
// release is a rewind, and after a warm-up step the arena reaches its
// high-water capacity and never grows again.
//
// Ownership rules (see also README "Workspace-planned execution"):
//  - alloc() returns memory valid until a checkpoint at or below it is
//    rewound. Rewinds must be LIFO: never rewind below a slice that is
//    still live.
//  - Scope is the RAII form: everything allocated inside is freed on exit.
//  - A layer's forward may retain a slice (recording the checkpoint taken
//    just before the alloc); its backward rewinds it. Because backward
//    visits layers in exact reverse order of forward, these releases are
//    LIFO by construction.
//  - Inference-only loops (no backward) must wrap each model call in a
//    Scope, otherwise retained slices accumulate until the enclosing scope.
//  - backward must run in the same enclosing Scope as its forward.
//
// The arena is chained from blocks so growth NEVER moves live allocations;
// when a rewind drains it completely, the blocks consolidate into one so
// steady state is a single pure bump.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace mtsr {

/// Per-thread bump arena for kernel/layer scratch memory.
class Workspace {
 public:
  /// Position in the arena; obtained from checkpoint(), consumed by
  /// rewind(). Trivially copyable.
  struct Checkpoint {
    std::int32_t block = 0;
    std::int64_t used = 0;
  };

  /// Allocation statistics. capacity/growth are the signals the
  /// allocation-regression tests assert on: in steady state a train step or
  /// a stitched prediction must leave both untouched.
  struct Stats {
    std::int64_t capacity_bytes = 0;  ///< backing capacity (high-water)
    std::int64_t live_bytes = 0;      ///< currently bump-allocated
    std::int64_t peak_bytes = 0;      ///< max live_bytes ever reached
    std::int64_t alloc_count = 0;     ///< cumulative alloc() calls
    std::int64_t growth_events = 0;   ///< times the capacity grew
  };

  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// 64-byte-aligned block of `count` floats, valid until a checkpoint at
  /// or below it is rewound. count == 0 yields a distinct valid pointer.
  [[nodiscard]] float* alloc(std::int64_t count);

  /// Current position; rewind(checkpoint()) frees everything allocated
  /// after this call.
  [[nodiscard]] Checkpoint checkpoint() const;

  /// True iff the arena position is at or above `cp`, i.e. nothing
  /// allocated before `cp` has been rewound away. Layers use this to catch
  /// a backward whose forward ran in a since-rewound scope. Positional
  /// only: it cannot detect memory that was rewound and then re-bumped by
  /// unrelated allocations — pair forward/backward within one scope.
  [[nodiscard]] bool alive(const Checkpoint& cp) const;

  /// Frees every allocation made after `cp` was taken. Rewinding above the
  /// current position (out of LIFO order) is a contract violation.
  void rewind(const Checkpoint& cp);

  /// Rewinds to empty (keeps capacity).
  void release_all();

  [[nodiscard]] Stats stats() const;

  /// RAII checkpoint: frees everything allocated inside the scope.
  class Scope {
   public:
    explicit Scope(Workspace& ws) : ws_(ws), cp_(ws.checkpoint()) {}
    ~Scope() { ws_.rewind(cp_); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Workspace& ws_;
    Checkpoint cp_;
  };

  /// The calling thread's workspace. Layers and kernels allocate from the
  /// thread driving them; pool workers that allocate (rare) get their own.
  /// Returns the thread's own arena unless a Bind is active, in which case
  /// the bound arena is returned instead.
  [[nodiscard]] static Workspace& tls();

  /// RAII rebind: while alive, allocations through tls() on THIS thread
  /// land in `ws` instead of the thread's own arena, so a caller-owned
  /// workspace (e.g. a serving session's) planes every layer/kernel
  /// allocation made underneath it. Implemented by swapping the arena guts
  /// into the thread's workspace object (a handful of pointer swaps), so
  /// the tls() hot path is untouched. Binds nest (restore is LIFO) and must
  /// be destroyed on the thread that created them; a bound arena must not
  /// be entered by two threads at once.
  class Bind {
   public:
    explicit Bind(Workspace& ws);
    ~Bind();
    Bind(const Bind&) = delete;
    Bind& operator=(const Bind&) = delete;

   private:
    Workspace* target_;
  };

 private:
  struct Block {
    std::unique_ptr<float[]> storage;  // raw, over-allocated for alignment
    float* base = nullptr;             // 64-byte-aligned start
    std::int64_t cap = 0;              // floats
    std::int64_t used = 0;             // floats
  };

  void add_block(std::int64_t min_floats);
  void recompute_live();
  void swap_guts(Workspace& other);

  std::vector<Block> blocks_;
  std::int32_t cur_ = 0;  // block currently bump-allocating
  std::int64_t capacity_ = 0;
  std::int64_t live_ = 0;
  std::int64_t peak_ = 0;
  std::int64_t alloc_count_ = 0;
  std::int64_t growth_events_ = 0;
};

/// Non-owning handle to an arena-resident rank-2 scratch matrix plus the
/// checkpoint that releases it. The layer idiom: forward stores the matrix
/// it must keep for backward, backward consumes it and rewinds the mark.
struct WsMatrix {
  float* data = nullptr;
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  Workspace::Checkpoint mark;  ///< taken just before the alloc (frees it)
  Workspace::Checkpoint end;   ///< taken just after the alloc (liveness)

  [[nodiscard]] bool empty() const { return data == nullptr; }
  [[nodiscard]] std::int64_t size() const { return rows * cols; }
};

/// Takes a checkpoint, then allocates a rows×cols matrix above it, so
/// Workspace::rewind(result.mark) frees exactly this matrix (and anything
/// allocated after it).
[[nodiscard]] WsMatrix ws_matrix(Workspace& ws, std::int64_t rows,
                                 std::int64_t cols);

}  // namespace mtsr
