#include "src/net/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "src/data/probes.hpp"

namespace mtsr::net {
namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw std::runtime_error(std::string("fcntl(O_NONBLOCK): ") +
                             std::strerror(errno));
  }
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

Server::Server(serving::Engine& engine, ServerConfig config)
    : engine_(engine),
      config_(std::move(config)),
      queue_(config_.max_queue_depth) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(config_.port));
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    throw std::runtime_error("bad listen host: " + config_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    throw std::runtime_error("bind(" + config_.host + "): " + err);
  }
  if (::listen(listen_fd_, 64) < 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    throw std::runtime_error("listen: " + err);
  }
  set_nonblocking(listen_fd_);

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = static_cast<int>(ntohs(bound.sin_port));

  if (::pipe(wake_fd_) < 0) {
    ::close(listen_fd_);
    throw std::runtime_error(std::string("pipe: ") + std::strerror(errno));
  }
  set_nonblocking(wake_fd_[0]);
  set_nonblocking(wake_fd_[1]);

  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    counters_.queue_cap = config_.max_queue_depth;
    counters_.slo_ms = config_.slo_ms;
  }
}

Server::~Server() {
  for (auto& [id, conn] : connections_) {
    if (conn->fd >= 0) ::close(conn->fd);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_fd_[0] >= 0) ::close(wake_fd_[0]);
  if (wake_fd_[1] >= 0) ::close(wake_fd_[1]);
}

void Server::run() {
  stop_.store(false, std::memory_order_relaxed);
  while (!stop_.load(std::memory_order_relaxed)) {
    poll_once(100);
  }
}

void Server::stop() {
  stop_.store(true, std::memory_order_relaxed);
  const char byte = 1;
  // Best-effort: the pipe is only a wake-up; a full pipe already wakes.
  [[maybe_unused]] const auto n = ::write(wake_fd_[1], &byte, 1);
}

void Server::poll_once(int timeout_ms) {
  std::vector<pollfd> fds;
  std::vector<Connection*> fd_conns;
  fds.push_back({listen_fd_, POLLIN, 0});
  fds.push_back({wake_fd_[0], POLLIN, 0});
  for (auto& [id, conn] : connections_) {
    if (conn->dead) continue;
    short events = POLLIN;
    if (conn->write_pos < conn->write_buf.size()) events |= POLLOUT;
    fds.push_back({conn->fd, events, 0});
    fd_conns.push_back(conn.get());
  }

  const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
  if (ready > 0) {
    if (fds[1].revents & POLLIN) {
      char sink[64];
      while (::read(wake_fd_[0], sink, sizeof(sink)) > 0) {
      }
    }
    if (fds[0].revents & POLLIN) accept_ready();
    for (std::size_t i = 2; i < fds.size(); ++i) {
      Connection& conn = *fd_conns[i - 2];
      if (conn.dead) continue;
      if (fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) {
        destroy(conn, /*evicted=*/false);
        continue;
      }
      if (fds[i].revents & POLLOUT) write_ready(conn);
      if (conn.dead) continue;
      if (fds[i].revents & POLLIN) read_ready(conn);
    }
  }
  reap_dead();
  if (auto_drain_) drain();
}

void Server::accept_ready() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      return;  // transient accept errors: try again at the next wake
    }
    set_nonblocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (config_.send_buffer_bytes > 0) {
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &config_.send_buffer_bytes,
                   sizeof(config_.send_buffer_bytes));
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->id = next_conn_id_++;
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++counters_.connections_accepted;
      ++counters_.connections_open;
    }
    connections_.emplace(conn->id, std::move(conn));
  }
}

void Server::read_ready(Connection& conn) {
  std::uint8_t chunk[64 * 1024];
  std::int64_t got = 0;
  for (;;) {
    const ssize_t n = ::recv(conn.fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      conn.read_buf.insert(conn.read_buf.end(), chunk, chunk + n);
      got += n;
      continue;
    }
    if (n == 0) {  // orderly shutdown by the peer
      destroy(conn, /*evicted=*/false);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    destroy(conn, /*evicted=*/false);
    return;
  }
  if (got > 0) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    counters_.bytes_in += got;
  }

  std::size_t offset = 0;
  try {
    while (!conn.dead) {
      std::size_t consumed = 0;
      auto frame =
          try_extract_frame(conn.read_buf.data() + offset,
                            conn.read_buf.size() - offset, &consumed,
                            config_.max_frame_bytes);
      if (!frame) break;
      offset += consumed;
      handle_frame(conn, *frame);
    }
  } catch (const ProtocolError&) {
    // Framing or payload structure lied; the stream cannot be resynced.
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++counters_.protocol_errors;
    }
    destroy(conn, /*evicted=*/false);
    return;
  }
  if (offset > 0) {
    conn.read_buf.erase(conn.read_buf.begin(),
                        conn.read_buf.begin() +
                            static_cast<std::ptrdiff_t>(offset));
  }
}

void Server::write_ready(Connection& conn) { flush(conn); }

void Server::handle_frame(Connection& conn, const Frame& frame) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++counters_.requests;
  }
  Request req = decode_request(frame);  // ProtocolError -> caller cuts conn
  switch (req.verb) {
    case Verb::kOpen:
      handle_open(conn, req.open);
      break;
    case Verb::kPush:
      handle_push(conn, std::move(req.push));
      break;
    case Verb::kClose:
      handle_close(conn, req.close);
      break;
    case Verb::kStats:
      handle_stats(conn);
      break;
  }
}

void Server::handle_open(Connection& conn, const OpenRequest& req) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++counters_.opens;
  }
  OpenResponse resp;
  if (req.instance >
      static_cast<std::uint8_t>(data::MtsrInstance::kMixture)) {
    resp.status = Status::kError;
    resp.error = "unknown MTSR instance ordinal";
  } else {
    serving::SessionConfig cfg;
    cfg.model = req.model;
    cfg.stream = req.stream;
    cfg.instance = static_cast<data::MtsrInstance>(req.instance);
    cfg.rows = req.rows;
    cfg.cols = req.cols;
    cfg.window = req.window;
    cfg.stitch_stride = req.stitch_stride;
    cfg.stats = data::NormStats{req.mean, req.stddev};
    cfg.log_transform = req.log_transform;
    try {
      const auto id = engine_.open_session(std::move(cfg));
      session_owner_[id] = conn.id;
      conn.sessions.push_back(id);
      resp.session = id;
      resp.temporal_length = engine_.session(id).temporal_length();
      resp.frames_until_ready = engine_.session(id).frames_until_ready();
    } catch (const std::exception& e) {
      resp.status = Status::kError;
      resp.error = e.what();
    }
  }
  if (resp.status == Status::kError) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++counters_.errors;
  }
  send_bytes(conn, encode_response(resp));
}

void Server::handle_push(Connection& conn, PushRequest req) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++counters_.pushes;
  }
  PushResponse resp;
  resp.session = req.session;
  const auto owner = session_owner_.find(req.session);
  if (owner == session_owner_.end() || owner->second != conn.id) {
    resp.status = Status::kError;
    resp.error = "unknown session (or owned by another connection)";
  } else {
    const auto& scfg = engine_.session(req.session).config();
    if (req.frame.rank() != 2 || req.frame.dim(0) != scfg.rows ||
        req.frame.dim(1) != scfg.cols) {
      resp.status = Status::kError;
      resp.error = "frame shape does not match the session geometry";
    } else {
      PendingPush pending;
      pending.connection = conn.id;
      pending.session = req.session;
      pending.frame = std::move(req.frame);
      pending.arrival = std::chrono::steady_clock::now();
      if (queue_.enqueue(std::move(pending))) {
        std::lock_guard<std::mutex> lock(stats_mu_);
        counters_.queue_depth = queue_.depth();
        counters_.max_queue_depth = queue_.max_depth();
        return;  // answered by the dispatch round in drain()
      }
      resp.status = Status::kRejected;
      resp.retry_after_ms = config_.retry_after_ms;
    }
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (resp.status == Status::kError) ++counters_.errors;
    if (resp.status == Status::kRejected) ++counters_.rejected;
  }
  send_bytes(conn, encode_response(resp));
}

void Server::handle_close(Connection& conn, const CloseRequest& req) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++counters_.closes;
  }
  CloseResponse resp;
  resp.session = req.session;
  const auto owner = session_owner_.find(req.session);
  if (owner == session_owner_.end() || owner->second != conn.id) {
    resp.status = Status::kError;
    resp.error = "unknown session (or owned by another connection)";
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++counters_.errors;
  } else {
    queue_.drop_session(req.session);
    engine_.close_session(req.session);
    session_owner_.erase(owner);
    auto& owned = conn.sessions;
    owned.erase(std::find(owned.begin(), owned.end(), req.session));
    std::lock_guard<std::mutex> lock(stats_mu_);
    counters_.queue_depth = queue_.depth();
  }
  send_bytes(conn, encode_response(resp));
}

void Server::handle_stats(Connection& conn) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++counters_.stats_calls;
  }
  const auto full = stats();  // engine stats + front door (this thread)
  const auto& fd = *full.front_door;
  StatsResponse resp;
  resp.requests = fd.requests;
  resp.served = fd.served;
  resp.rejected = fd.rejected;
  resp.slo_violations = fd.slo_violations;
  resp.max_queue_depth = fd.max_queue_depth;
  resp.p50_ms = fd.p50_ms;
  resp.p99_ms = fd.p99_ms;
  resp.p999_ms = fd.p999_ms;
  if (full.online) {
    resp.online_steps = full.online->steps;
    resp.online_promoted = full.online->promoted;
    resp.online_rejected = full.online->rejected;
    resp.online_staleness_s = full.online->staleness_seconds;
    resp.online_holdout_nrmse = full.online->holdout_nrmse;
  }
  resp.table = serving::render_stats_table(full);
  send_bytes(conn, encode_response(resp));
}

void Server::drain() {
  for (;;) {
    auto round = queue_.next_round();
    if (round.empty()) break;

    std::vector<serving::Engine::SessionId> ids;
    std::vector<Tensor> frames;
    ids.reserve(round.size());
    frames.reserve(round.size());
    for (auto& pending : round) {
      ids.push_back(pending.session);
      frames.push_back(std::move(pending.frame));
    }

    std::vector<std::optional<Tensor>> results;
    std::string round_error;
    try {
      results = engine_.push_all(ids, frames);
    } catch (const std::exception& e) {
      round_error = e.what();
    }

    for (std::size_t i = 0; i < round.size(); ++i) {
      PushResponse resp;
      resp.session = round[i].session;
      bool is_served = false;
      if (!round_error.empty()) {
        resp.status = Status::kError;
        resp.error = round_error;
      } else if (results[i].has_value()) {
        resp.frame = std::move(*results[i]);
        is_served = true;
      } else {
        resp.status = Status::kWarmup;
        resp.frames_until_ready =
            engine_.session(round[i].session).frames_until_ready();
      }
      const double latency_ms = ms_since(round[i].arrival);
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        counters_.queue_depth = queue_.depth();
        if (!round_error.empty()) {
          ++counters_.errors;
        } else {
          latency_.record(latency_ms * 1000.0);
          is_served ? ++counters_.served : ++counters_.warmups;
          if (is_served && latency_ms > config_.slo_ms) {
            ++counters_.slo_violations;
          }
        }
      }
      const auto it = connections_.find(round[i].connection);
      if (it != connections_.end() && !it->second->dead) {
        send_bytes(*it->second, encode_response(resp));
      }
    }
  }
  reap_dead();
}

void Server::send_bytes(Connection& conn, std::vector<std::uint8_t> bytes) {
  if (conn.dead) return;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    counters_.bytes_out += static_cast<std::int64_t>(bytes.size());
  }
  conn.write_buf.insert(conn.write_buf.end(), bytes.begin(), bytes.end());
  flush(conn);
  if (conn.dead) return;
  if (conn.write_buf.size() - conn.write_pos >
      static_cast<std::size_t>(config_.max_write_buffer)) {
    destroy(conn, /*evicted=*/true);
  }
}

void Server::flush(Connection& conn) {
  while (conn.write_pos < conn.write_buf.size()) {
    const ssize_t n =
        ::send(conn.fd, conn.write_buf.data() + conn.write_pos,
               conn.write_buf.size() - conn.write_pos, MSG_NOSIGNAL);
    if (n > 0) {
      conn.write_pos += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    destroy(conn, /*evicted=*/false);
    return;
  }
  conn.write_buf.clear();
  conn.write_pos = 0;
}

void Server::destroy(Connection& conn, bool evicted) {
  if (conn.dead) return;
  conn.dead = true;
  queue_.drop_connection(conn.id);
  for (const auto id : conn.sessions) {
    queue_.drop_session(id);
    session_owner_.erase(id);
    try {
      engine_.close_session(id);
    } catch (const std::exception&) {
      // Session already gone; the maps were authoritative enough.
    }
  }
  conn.sessions.clear();
  if (conn.fd >= 0) {
    ::close(conn.fd);
    conn.fd = -1;
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  --counters_.connections_open;
  if (evicted) ++counters_.evicted;
  counters_.queue_depth = queue_.depth();
}

void Server::reap_dead() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if (it->second->dead) {
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

serving::FrontDoorStats Server::snapshot_locked() const {
  serving::FrontDoorStats s = counters_;
  s.p50_ms = latency_.quantile(0.50) / 1000.0;
  s.p99_ms = latency_.quantile(0.99) / 1000.0;
  s.p999_ms = latency_.quantile(0.999) / 1000.0;
  s.max_ms = latency_.max_micros() / 1000.0;
  return s;
}

serving::FrontDoorStats Server::front_door_stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return snapshot_locked();
}

serving::Engine::Stats Server::stats() const {
  auto s = engine_.stats();
  s.front_door = front_door_stats();
  return s;
}

}  // namespace mtsr::net
