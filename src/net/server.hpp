// net::Server — the network front door over serving::Engine.
//
// A poll()-driven, single-threaded, non-blocking TCP server speaking the
// length-prefixed binary protocol of src/net/protocol.hpp. One server
// thread owns the sockets AND every engine call — the engine is
// single-threaded by contract, and funnelling all verbs through one event
// loop satisfies it without a lock around inference.
//
// The serving path is asymmetric by design:
//  * OPEN / CLOSE / STATS execute inline when their frame parses — they are
//    cheap metadata operations;
//  * PUSH lands in the bounded AdmissionQueue. After each poll wake the
//    server drains the queue in dispatch rounds: one pending push per
//    distinct session, all served through ONE Engine::push_all call, so
//    concurrent remote streams get the scheduler's cross-session batch
//    fusion and stream-dedup exactly like in-process callers. When the
//    queue is at capacity the push is answered kRejected with a
//    retry-after — backpressure is explicit, never a silently growing
//    buffer.
//
// Slow clients: responses buffer per connection and flush as POLLOUT
// allows; a connection whose unread backlog exceeds max_write_buffer is
// evicted (connection cut, its sessions closed) so one stalled reader
// cannot hold frame memory for everyone else.
//
// Telemetry: per-request latency (parse-complete -> response enqueued) in a
// log-bucketed histogram, SLO-violation and queue-depth counters, all
// merged into Engine::Stats as FrontDoorStats (render_stats_table shows
// them; the wire STATS verb returns them to remote clients).
//
// Threading: run() drives the loop on the calling thread until stop() —
// which is safe from any thread, as are front_door_stats() and port().
// Everything else (poll_once, drain, stats) must stay on the thread that
// drives the loop.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/net/admission.hpp"
#include "src/net/histogram.hpp"
#include "src/net/protocol.hpp"
#include "src/serving/engine.hpp"

namespace mtsr::net {

struct ServerConfig {
  std::string host = "127.0.0.1";
  int port = 0;  ///< 0 = ephemeral; the bound port is Server::port()

  std::int64_t max_queue_depth = 256;  ///< admission cap -> kRejected beyond
  double retry_after_ms = 50;          ///< hint attached to rejections
  double slo_ms = 1000;                ///< PUSH latency SLO for telemetry

  std::int64_t max_write_buffer = 8ll << 20;  ///< slow-client eviction bound
  std::uint32_t max_frame_bytes = kDefaultMaxFrameBytes;

  /// When > 0, sets SO_SNDBUF on accepted sockets. Tests shrink it so a
  /// non-reading client stalls the kernel buffer quickly and exercises the
  /// eviction path without megabytes of traffic.
  int send_buffer_bytes = 0;
};

/// The TCP front door. Binds + listens in the constructor (throws on
/// failure); serves when the owner drives poll_once()/run().
class Server {
 public:
  Server(serving::Engine& engine, ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound TCP port (resolves ephemeral binds).
  [[nodiscard]] int port() const { return port_; }

  /// Runs the event loop on the calling thread until stop().
  void run();

  /// Wakes and stops a concurrent run(). Safe from any thread/handler.
  void stop();

  /// One event-loop step: waits up to `timeout_ms` for socket activity,
  /// services it, then (unless auto-drain is off) drains the admission
  /// queue through the engine. The unit-test seam — tests single-step the
  /// loop instead of racing a thread.
  void poll_once(int timeout_ms);

  /// Test seam: suspend the automatic post-poll drain so a test can pile
  /// pushes into the admission queue and observe backpressure.
  void set_auto_drain(bool on) { auto_drain_ = on; }

  /// Serves buffered pushes in dispatch rounds until the queue is empty.
  void drain();

  /// Snapshot of the request-level counters. Safe from any thread.
  [[nodiscard]] serving::FrontDoorStats front_door_stats() const;

  /// Engine stats with front_door filled in. Event-loop thread only (the
  /// engine's stats() is not thread-safe).
  [[nodiscard]] serving::Engine::Stats stats() const;

 private:
  struct Connection {
    int fd = -1;
    std::uint64_t id = 0;
    std::vector<std::uint8_t> read_buf;
    std::vector<std::uint8_t> write_buf;
    std::size_t write_pos = 0;  ///< flushed prefix of write_buf
    std::vector<std::int64_t> sessions;  ///< engine sessions owned here
    bool dead = false;
  };

  void accept_ready();
  void read_ready(Connection& conn);
  void write_ready(Connection& conn);
  void handle_frame(Connection& conn, const Frame& frame);
  void handle_open(Connection& conn, const OpenRequest& req);
  void handle_push(Connection& conn, PushRequest req);
  void handle_close(Connection& conn, const CloseRequest& req);
  void handle_stats(Connection& conn);
  void send_bytes(Connection& conn, std::vector<std::uint8_t> bytes);
  void flush(Connection& conn);
  /// Cuts the connection: closes its engine sessions, drops its queued
  /// pushes, schedules fd teardown.
  void destroy(Connection& conn, bool evicted);
  void reap_dead();
  [[nodiscard]] serving::FrontDoorStats snapshot_locked() const;

  serving::Engine& engine_;
  ServerConfig config_;
  int listen_fd_ = -1;
  int wake_fd_[2] = {-1, -1};  ///< self-pipe: stop() wakes a blocked poll
  int port_ = 0;
  std::atomic<bool> stop_{false};
  bool auto_drain_ = true;

  std::uint64_t next_conn_id_ = 1;
  std::map<std::uint64_t, std::unique_ptr<Connection>> connections_;
  std::map<std::int64_t, std::uint64_t> session_owner_;
  AdmissionQueue queue_;

  /// Counter block, guarded so front_door_stats() is clean from other
  /// threads while the event loop runs. The event loop takes the lock once
  /// per mutation batch; the engine is never called under it.
  mutable std::mutex stats_mu_;
  serving::FrontDoorStats counters_;
  LatencyHistogram latency_;
};

}  // namespace mtsr::net
