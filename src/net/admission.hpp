// net::AdmissionQueue — the bounded buffer between socket ingress and the
// scheduler's lockstep dispatch rounds.
//
// The engine's throughput lever is Engine::push_all: serving N DISTINCT
// sessions in one scheduler call fuses their compatible stitch blocks into
// shared generator passes and dedups stream-tagged duplicates. Sockets
// deliver requests one at a time, so the front door buffers pushes here and
// drains them in rounds: next_round() pops the oldest pending push of every
// distinct session (never two for one session — a session's pushes are a
// time series and must be admitted in order, one interval per round).
//
// The bound is the backpressure contract: enqueue() refuses beyond
// `capacity`, and the server answers kRejected with a retry-after instead
// of queueing unboundedly — under overload the client sees latency honestly
// as rejection, not as a queue that silently grows until the SLO is a lie.
//
// Single-threaded like the engine it feeds; the server serialises access.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <vector>

#include "src/tensor/tensor.hpp"

namespace mtsr::net {

/// One buffered PUSH awaiting a dispatch round.
struct PendingPush {
  std::uint64_t connection = 0;  ///< owning connection (for reply routing)
  std::int64_t session = 0;
  Tensor frame;
  std::chrono::steady_clock::time_point arrival{};
};

/// Bounded FIFO with one-push-per-session round extraction.
class AdmissionQueue {
 public:
  explicit AdmissionQueue(std::int64_t capacity) : capacity_(capacity) {}

  /// Buffers one push; false when the queue is at capacity (the caller
  /// rejects with retry-after).
  [[nodiscard]] bool enqueue(PendingPush push);

  /// Pops the oldest pending push of every distinct session, preserving
  /// arrival order. Empty result = nothing pending.
  [[nodiscard]] std::vector<PendingPush> next_round();

  /// Drops every pending push of `connection` (client disconnected before
  /// its round); returns how many were dropped.
  std::int64_t drop_connection(std::uint64_t connection);

  /// Drops every pending push of `session` (session closed mid-queue);
  /// returns how many were dropped.
  std::int64_t drop_session(std::int64_t session);

  [[nodiscard]] std::int64_t depth() const {
    return static_cast<std::int64_t>(queue_.size());
  }
  [[nodiscard]] std::int64_t capacity() const { return capacity_; }
  [[nodiscard]] std::int64_t max_depth() const { return max_depth_; }
  [[nodiscard]] std::int64_t rejected() const { return rejected_; }

 private:
  std::int64_t capacity_;
  std::int64_t max_depth_ = 0;
  std::int64_t rejected_ = 0;
  std::deque<PendingPush> queue_;
};

}  // namespace mtsr::net
