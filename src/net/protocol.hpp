// net::protocol — the front door's length-prefixed binary wire format.
//
// The engine serves full-grid traffic frames (a 100x100 city is 40 KB of
// float32 per request and per response), so the wire format is binary and
// zero-ceremony: every message is one frame
//
//   [u32 length][u8 verb][payload ...]
//
// where `length` counts the verb byte plus the payload, little-endian (the
// repo targets x86 gateways; the byte order is part of the protocol, not
// host-dependent). Requests and responses share the framing; a response
// echoes its request's verb and leads its payload with a status byte. Four
// verbs cover the session lifecycle — OPEN binds a stream (model name,
// geometry, normalisation, optional dedup tag), PUSH feeds one snapshot and
// returns the stitched inference (or warm-up / backpressure-reject), CLOSE
// releases the session, STATS returns the engine telemetry.
//
// Robustness contract: a frame longer than `max_frame_bytes` or a payload
// that does not parse throws ProtocolError — the server answers with an
// error frame where it still can and cuts the connection, because framing
// that has lied once cannot be resynchronised. A truncated buffer is NOT an
// error: try_extract_frame returns nullopt until the bytes arrive.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/tensor/tensor.hpp"

namespace mtsr::net {

/// Malformed wire data (bad length, unknown verb, short payload).
class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class Verb : std::uint8_t {
  kOpen = 1,
  kPush = 2,
  kClose = 3,
  kStats = 4,
};

enum class Status : std::uint8_t {
  kOk = 0,
  kWarmup = 1,    ///< session not warm yet; frames_until_ready attached
  kRejected = 2,  ///< admission queue full; retry_after_ms attached
  kError = 3,     ///< message attached; the session/connection state is told
};

/// Default cap on one frame's length field. Generous against real traffic
/// (a 1000x1000-cell city frame is 4 MB) while keeping a corrupt length
/// from allocating the connection into the ground.
inline constexpr std::uint32_t kDefaultMaxFrameBytes = 64u << 20;

/// One extracted frame: the verb plus its raw payload (status byte
/// included for responses).
struct Frame {
  Verb verb = Verb::kOpen;
  std::vector<std::uint8_t> payload;
};

/// Extracts the first complete frame from `buffer`, advancing `*consumed`
/// past it. Returns nullopt when the buffer holds only a partial frame.
/// Throws ProtocolError when the length field exceeds `max_frame_bytes` or
/// the verb is unknown.
[[nodiscard]] std::optional<Frame> try_extract_frame(
    const std::uint8_t* buffer, std::size_t size, std::size_t* consumed,
    std::uint32_t max_frame_bytes = kDefaultMaxFrameBytes);

// ---- Requests --------------------------------------------------------------

/// OPEN payload: everything a serving session needs, minus what only the
/// server knows (the probe layout is derived server-side from instance and
/// window; block/overlap stay server policy).
struct OpenRequest {
  std::string model;
  std::string stream;  ///< dedup fan-out tag; empty = independent
  std::uint8_t instance = 0;  ///< data::MtsrInstance as its wire ordinal
  bool log_transform = true;
  std::int64_t rows = 0, cols = 0, window = 0, stitch_stride = 0;
  double mean = 0, stddev = 1;
};

/// PUSH payload: the raw fine snapshot for one interval of one session.
struct PushRequest {
  std::int64_t session = 0;
  Tensor frame;  ///< (rows, cols), raw MB
};

struct CloseRequest {
  std::int64_t session = 0;
};

/// A decoded request (tagged by verb; only the matching member is set).
struct Request {
  Verb verb = Verb::kOpen;
  OpenRequest open;
  PushRequest push;
  CloseRequest close;
};

[[nodiscard]] std::vector<std::uint8_t> encode_open(const OpenRequest& req);
[[nodiscard]] std::vector<std::uint8_t> encode_push(const PushRequest& req);
[[nodiscard]] std::vector<std::uint8_t> encode_close(const CloseRequest& req);
[[nodiscard]] std::vector<std::uint8_t> encode_stats_request();

/// Decodes one request frame's payload. Throws ProtocolError on any
/// structural problem (short payload, trailing garbage, absurd dims).
[[nodiscard]] Request decode_request(const Frame& frame);

// ---- Responses -------------------------------------------------------------

struct OpenResponse {
  Status status = Status::kOk;
  std::int64_t session = 0;
  std::int64_t temporal_length = 0;
  std::int64_t frames_until_ready = 0;
  std::string error;
};

struct PushResponse {
  Status status = Status::kOk;
  std::int64_t session = 0;  ///< echoed: responses of co-served sessions
                             ///< on one connection arrive round-ordered
  Tensor frame;              ///< kOk only: the stitched fine inference
  std::int64_t frames_until_ready = 0;  ///< kWarmup only
  double retry_after_ms = 0;            ///< kRejected only
  std::string error;                    ///< kError only
};

struct CloseResponse {
  Status status = Status::kOk;
  std::int64_t session = 0;
  std::string error;
};

/// STATS response: the headline counters in binary (so load harnesses can
/// diff them without scraping) plus the rendered telemetry table.
struct StatsResponse {
  Status status = Status::kOk;
  std::int64_t requests = 0, served = 0, rejected = 0;
  std::int64_t slo_violations = 0, max_queue_depth = 0;
  double p50_ms = 0, p99_ms = 0, p999_ms = 0;
  // Continuous-learning counters; all zero (staleness -1, nrmse -1) when no
  // online trainer is attached to the serving engine.
  std::int64_t online_steps = 0, online_promoted = 0, online_rejected = 0;
  double online_staleness_s = -1, online_holdout_nrmse = -1;
  std::string table;
  std::string error;
};

/// A decoded response (tagged by verb; only the matching member is set).
struct Response {
  Verb verb = Verb::kOpen;
  OpenResponse open;
  PushResponse push;
  CloseResponse close;
  StatsResponse stats;
};

[[nodiscard]] std::vector<std::uint8_t> encode_response(
    const OpenResponse& resp);
[[nodiscard]] std::vector<std::uint8_t> encode_response(
    const PushResponse& resp);
[[nodiscard]] std::vector<std::uint8_t> encode_response(
    const CloseResponse& resp);
[[nodiscard]] std::vector<std::uint8_t> encode_response(
    const StatsResponse& resp);

/// Decodes one response frame's payload. Throws ProtocolError on any
/// structural problem.
[[nodiscard]] Response decode_response(const Frame& frame);

}  // namespace mtsr::net
