#include "src/net/histogram.hpp"

#include <algorithm>
#include <cmath>

namespace mtsr::net {

int LatencyHistogram::bucket_index(double micros) {
  if (!(micros > 0)) return 0;
  const double clamped =
      std::min(micros, std::ldexp(1.0, kExponents) - 1.0);
  const std::uint64_t v = static_cast<std::uint64_t>(clamped);
  if (v < kSubBuckets) return static_cast<int>(v);
  // Row = position of the highest set bit above the sub-bucket resolution;
  // column = the next log2(kSubBuckets) bits below it.
  int exponent = 63;
  while ((v >> exponent) == 0) --exponent;
  const int shift = exponent - 5;  // log2(kSubBuckets) == 5
  const int sub = static_cast<int>((v >> shift) & (kSubBuckets - 1));
  const int row = exponent - 4;  // rows 0..4 are the linear [0, 32) range
  const int index = row * kSubBuckets + sub;
  return std::min(index, kExponents * kSubBuckets - 1);
}

void LatencyHistogram::record(double micros) {
  ++buckets_[static_cast<std::size_t>(bucket_index(micros))];
  ++count_;
  max_ = std::max(max_, std::max(micros, 0.0));
}

double LatencyHistogram::quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  if (q >= 1.0) return max_;
  // Rank of the requested quantile, 1-based; walk buckets until reached.
  const std::int64_t rank = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::ceil(q * static_cast<double>(count_))));
  std::int64_t seen = 0;
  for (int i = 0; i < kExponents * kSubBuckets; ++i) {
    seen += buckets_[static_cast<std::size_t>(i)];
    if (seen < rank) continue;
    // Upper edge of bucket i, the inverse of bucket_index.
    if (i < kSubBuckets) return static_cast<double>(i + 1);
    const int row = i / kSubBuckets;
    const int sub = i % kSubBuckets;
    const int exponent = row + 4;
    const double scale = std::ldexp(1.0, exponent - 5);
    const double upper = (std::ldexp(1.0, 5) + sub + 1) * scale;
    return std::min(upper, max_ > 0 ? max_ : upper);
  }
  return max_;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  max_ = std::max(max_, other.max_);
}

void LatencyHistogram::reset() {
  buckets_.fill(0);
  count_ = 0;
  max_ = 0;
}

}  // namespace mtsr::net
