#include "src/net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace mtsr::net {

Client::Client(const std::string& host, int port, ClientConfig config)
    : max_frame_bytes_(config.max_frame_bytes) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  }
  if (config.recv_buffer_bytes > 0) {
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &config.recv_buffer_bytes,
                 sizeof(config.recv_buffer_bytes));
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    throw std::runtime_error("bad host: " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd_);
    throw std::runtime_error("connect(" + host + "): " + err);
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

void Client::send_all(const std::vector<std::uint8_t>& bytes) {
  std::lock_guard<std::mutex> lock(send_mu_);
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::optional<Response> Client::wait_for(Verb verb, int timeout_ms) {
  std::lock_guard<std::mutex> lock(recv_mu_);
  for (;;) {
    for (auto it = stash_.begin(); it != stash_.end(); ++it) {
      if (it->verb == verb) {
        Response resp = std::move(*it);
        stash_.erase(it);
        return resp;
      }
    }
    // Parse anything already buffered before touching the socket.
    std::size_t offset = 0;
    bool parsed = false;
    for (;;) {
      std::size_t consumed = 0;
      auto frame = try_extract_frame(read_buf_.data() + offset,
                                     read_buf_.size() - offset, &consumed,
                                     max_frame_bytes_);
      if (!frame) break;
      offset += consumed;
      stash_.push_back(decode_response(*frame));
      parsed = true;
    }
    if (offset > 0) {
      read_buf_.erase(read_buf_.begin(),
                      read_buf_.begin() + static_cast<std::ptrdiff_t>(offset));
    }
    if (parsed) continue;

    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready == 0) return std::nullopt;
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("poll: ") + std::strerror(errno));
    }
    std::uint8_t chunk[64 * 1024];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) throw std::runtime_error("server closed the connection");
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      throw std::runtime_error(std::string("recv: ") + std::strerror(errno));
    }
    read_buf_.insert(read_buf_.end(), chunk, chunk + n);
  }
}

OpenResponse Client::open(const OpenRequest& request) {
  send_all(encode_open(request));
  auto resp = wait_for(Verb::kOpen, -1);
  return std::move(resp->open);
}

void Client::send_push(std::int64_t session, const Tensor& frame) {
  PushRequest req;
  req.session = session;
  req.frame = frame;
  send_all(encode_push(req));
}

std::optional<PushResponse> Client::poll_push(int timeout_ms) {
  auto resp = wait_for(Verb::kPush, timeout_ms);
  if (!resp) return std::nullopt;
  return std::move(resp->push);
}

PushResponse Client::push(std::int64_t session, const Tensor& frame) {
  send_push(session, frame);
  auto resp = wait_for(Verb::kPush, -1);
  return std::move(resp->push);
}

CloseResponse Client::close_session(std::int64_t session) {
  CloseRequest req;
  req.session = session;
  send_all(encode_close(req));
  auto resp = wait_for(Verb::kClose, -1);
  return std::move(resp->close);
}

StatsResponse Client::stats() {
  send_all(encode_stats_request());
  auto resp = wait_for(Verb::kStats, -1);
  return std::move(resp->stats);
}

}  // namespace mtsr::net
