#include "src/net/protocol.hpp"

#include <cstring>
#include <limits>

namespace mtsr::net {
namespace {

/// Appends little-endian scalars to a byte vector. The container targets
/// x86, but serialisation is still done byte-by-byte so the wire bytes are
/// the protocol's, not the host's.
class WireWriter {
 public:
  explicit WireWriter(std::vector<std::uint8_t>& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back((v >> (8 * i)) & 0xff);
  }

  void i64(std::int64_t v) {
    const auto u = static_cast<std::uint64_t>(v);
    for (int i = 0; i < 8; ++i) out_.push_back((u >> (8 * i)) & 0xff);
  }

  void f64(double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    for (int i = 0; i < 8; ++i) out_.push_back((bits >> (8 * i)) & 0xff);
  }

  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out_.insert(out_.end(), s.begin(), s.end());
  }

  /// rows, cols, then rows*cols float32 values.
  void tensor2d(const Tensor& t) {
    u32(static_cast<std::uint32_t>(t.rank() == 2 ? t.dim(0) : 0));
    u32(static_cast<std::uint32_t>(t.rank() == 2 ? t.dim(1) : 0));
    const std::size_t n = static_cast<std::size_t>(t.size());
    const std::size_t at = out_.size();
    out_.resize(at + n * sizeof(float));
    if (n > 0) std::memcpy(out_.data() + at, t.data(), n * sizeof(float));
  }

 private:
  std::vector<std::uint8_t>& out_;
};

/// Bounds-checked little-endian reads; any overrun is a ProtocolError.
class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  std::int64_t i64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    return static_cast<std::int64_t>(v);
  }

  double f64() {
    const std::uint64_t bits = static_cast<std::uint64_t>(i64());
    double v = 0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::string str() {
    const std::uint32_t n = u32();
    if (n > size_ - pos_) throw ProtocolError("string runs past payload");
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  Tensor tensor2d() {
    const std::uint32_t rows = u32();
    const std::uint32_t cols = u32();
    // 2^26 cells (256 MB of float32) comfortably covers any city grid and
    // keeps a corrupt header from driving a giant allocation.
    if (static_cast<std::uint64_t>(rows) * cols > (1u << 26)) {
      throw ProtocolError("tensor dims exceed wire limit");
    }
    const std::size_t n = static_cast<std::size_t>(rows) * cols;
    if (n * sizeof(float) > size_ - pos_) {
      throw ProtocolError("tensor data runs past payload");
    }
    Tensor t(Shape{static_cast<std::int64_t>(rows),
                   static_cast<std::int64_t>(cols)});
    if (n > 0) std::memcpy(t.data(), data_ + pos_, n * sizeof(float));
    pos_ += n * sizeof(float);
    return t;
  }

  void finish() const {
    if (pos_ != size_) throw ProtocolError("trailing bytes after payload");
  }

 private:
  void need(std::size_t n) const {
    if (n > size_ - pos_) throw ProtocolError("payload truncated");
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Wraps `payload` (already holding the verb-specific bytes) in the frame
/// header: [u32 length][u8 verb][payload].
std::vector<std::uint8_t> frame(Verb verb,
                                const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> out;
  out.reserve(5 + payload.size());
  WireWriter w(out);
  w.u32(static_cast<std::uint32_t>(payload.size() + 1));
  w.u8(static_cast<std::uint8_t>(verb));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

Status read_status(WireReader& r) {
  const std::uint8_t raw = r.u8();
  if (raw > static_cast<std::uint8_t>(Status::kError)) {
    throw ProtocolError("unknown status byte");
  }
  return static_cast<Status>(raw);
}

}  // namespace

std::optional<Frame> try_extract_frame(const std::uint8_t* buffer,
                                       std::size_t size,
                                       std::size_t* consumed,
                                       std::uint32_t max_frame_bytes) {
  *consumed = 0;
  if (size < 4) return std::nullopt;
  std::uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<std::uint32_t>(buffer[i]) << (8 * i);
  }
  if (length < 1) throw ProtocolError("frame length below verb byte");
  if (length > max_frame_bytes) throw ProtocolError("frame exceeds size cap");
  if (size - 4 < length) return std::nullopt;
  const std::uint8_t verb_raw = buffer[4];
  if (verb_raw < static_cast<std::uint8_t>(Verb::kOpen) ||
      verb_raw > static_cast<std::uint8_t>(Verb::kStats)) {
    throw ProtocolError("unknown verb byte");
  }
  Frame f;
  f.verb = static_cast<Verb>(verb_raw);
  f.payload.assign(buffer + 5, buffer + 4 + length);
  *consumed = 4 + static_cast<std::size_t>(length);
  return f;
}

// ---- Requests --------------------------------------------------------------

std::vector<std::uint8_t> encode_open(const OpenRequest& req) {
  std::vector<std::uint8_t> body;
  WireWriter w(body);
  w.str(req.model);
  w.str(req.stream);
  w.u8(req.instance);
  w.u8(req.log_transform ? 1 : 0);
  w.i64(req.rows);
  w.i64(req.cols);
  w.i64(req.window);
  w.i64(req.stitch_stride);
  w.f64(req.mean);
  w.f64(req.stddev);
  return frame(Verb::kOpen, body);
}

std::vector<std::uint8_t> encode_push(const PushRequest& req) {
  std::vector<std::uint8_t> body;
  body.reserve(24 + static_cast<std::size_t>(req.frame.size()) * 4);
  WireWriter w(body);
  w.i64(req.session);
  w.tensor2d(req.frame);
  return frame(Verb::kPush, body);
}

std::vector<std::uint8_t> encode_close(const CloseRequest& req) {
  std::vector<std::uint8_t> body;
  WireWriter w(body);
  w.i64(req.session);
  return frame(Verb::kClose, body);
}

std::vector<std::uint8_t> encode_stats_request() {
  return frame(Verb::kStats, {});
}

Request decode_request(const Frame& f) {
  WireReader r(f.payload.data(), f.payload.size());
  Request req;
  req.verb = f.verb;
  switch (f.verb) {
    case Verb::kOpen: {
      req.open.model = r.str();
      req.open.stream = r.str();
      req.open.instance = r.u8();
      req.open.log_transform = r.u8() != 0;
      req.open.rows = r.i64();
      req.open.cols = r.i64();
      req.open.window = r.i64();
      req.open.stitch_stride = r.i64();
      req.open.mean = r.f64();
      req.open.stddev = r.f64();
      break;
    }
    case Verb::kPush: {
      req.push.session = r.i64();
      req.push.frame = r.tensor2d();
      break;
    }
    case Verb::kClose: {
      req.close.session = r.i64();
      break;
    }
    case Verb::kStats:
      break;
  }
  r.finish();
  return req;
}

// ---- Responses -------------------------------------------------------------

std::vector<std::uint8_t> encode_response(const OpenResponse& resp) {
  std::vector<std::uint8_t> body;
  WireWriter w(body);
  w.u8(static_cast<std::uint8_t>(resp.status));
  w.i64(resp.session);
  w.i64(resp.temporal_length);
  w.i64(resp.frames_until_ready);
  w.str(resp.error);
  return frame(Verb::kOpen, body);
}

std::vector<std::uint8_t> encode_response(const PushResponse& resp) {
  std::vector<std::uint8_t> body;
  body.reserve(40 + static_cast<std::size_t>(resp.frame.size()) * 4);
  WireWriter w(body);
  w.u8(static_cast<std::uint8_t>(resp.status));
  w.i64(resp.session);
  w.i64(resp.frames_until_ready);
  w.f64(resp.retry_after_ms);
  w.tensor2d(resp.frame);
  w.str(resp.error);
  return frame(Verb::kPush, body);
}

std::vector<std::uint8_t> encode_response(const CloseResponse& resp) {
  std::vector<std::uint8_t> body;
  WireWriter w(body);
  w.u8(static_cast<std::uint8_t>(resp.status));
  w.i64(resp.session);
  w.str(resp.error);
  return frame(Verb::kClose, body);
}

std::vector<std::uint8_t> encode_response(const StatsResponse& resp) {
  std::vector<std::uint8_t> body;
  WireWriter w(body);
  w.u8(static_cast<std::uint8_t>(resp.status));
  w.i64(resp.requests);
  w.i64(resp.served);
  w.i64(resp.rejected);
  w.i64(resp.slo_violations);
  w.i64(resp.max_queue_depth);
  w.f64(resp.p50_ms);
  w.f64(resp.p99_ms);
  w.f64(resp.p999_ms);
  w.i64(resp.online_steps);
  w.i64(resp.online_promoted);
  w.i64(resp.online_rejected);
  w.f64(resp.online_staleness_s);
  w.f64(resp.online_holdout_nrmse);
  w.str(resp.table);
  w.str(resp.error);
  return frame(Verb::kStats, body);
}

Response decode_response(const Frame& f) {
  WireReader r(f.payload.data(), f.payload.size());
  Response resp;
  resp.verb = f.verb;
  switch (f.verb) {
    case Verb::kOpen: {
      resp.open.status = read_status(r);
      resp.open.session = r.i64();
      resp.open.temporal_length = r.i64();
      resp.open.frames_until_ready = r.i64();
      resp.open.error = r.str();
      break;
    }
    case Verb::kPush: {
      resp.push.status = read_status(r);
      resp.push.session = r.i64();
      resp.push.frames_until_ready = r.i64();
      resp.push.retry_after_ms = r.f64();
      resp.push.frame = r.tensor2d();
      resp.push.error = r.str();
      break;
    }
    case Verb::kClose: {
      resp.close.status = read_status(r);
      resp.close.session = r.i64();
      resp.close.error = r.str();
      break;
    }
    case Verb::kStats: {
      resp.stats.status = read_status(r);
      resp.stats.requests = r.i64();
      resp.stats.served = r.i64();
      resp.stats.rejected = r.i64();
      resp.stats.slo_violations = r.i64();
      resp.stats.max_queue_depth = r.i64();
      resp.stats.p50_ms = r.f64();
      resp.stats.p99_ms = r.f64();
      resp.stats.p999_ms = r.f64();
      resp.stats.online_steps = r.i64();
      resp.stats.online_promoted = r.i64();
      resp.stats.online_rejected = r.i64();
      resp.stats.online_staleness_s = r.f64();
      resp.stats.online_holdout_nrmse = r.f64();
      resp.stats.table = r.str();
      resp.stats.error = r.str();
      break;
    }
  }
  r.finish();
  return resp;
}

}  // namespace mtsr::net
