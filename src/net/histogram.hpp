// net::LatencyHistogram — fixed-footprint log-bucketed latency histogram.
//
// The front door's telemetry contract is tail latency (p50/p99/p999), and a
// histogram that records every request must cost nanoseconds and never
// allocate on the serving path. This is the HDR-style layout: one
// power-of-two exponent range per row, kSubBuckets linear sub-buckets per
// row, so relative bucket error is bounded at 1/kSubBuckets (~3%) at every
// magnitude from sub-microsecond to hours. Everything is plain counters —
// recording is two index computations and an increment, quantile extraction
// walks the (small, fixed) table, and merge() is elementwise addition so
// per-pattern replay histograms can fold into a run total.
#pragma once

#include <array>
#include <cstdint>

namespace mtsr::net {

/// Log-bucketed histogram of non-negative latencies in microseconds.
class LatencyHistogram {
 public:
  static constexpr int kExponents = 40;   ///< covers up to ~2^40 us (~12 days)
  static constexpr int kSubBuckets = 32;  ///< ~3% relative bucket width

  /// Records one latency (clamped to the histogram range; negatives count
  /// as zero).
  void record(double micros);

  /// The q-quantile (q in [0, 1]) in microseconds: the upper edge of the
  /// bucket holding the q-th recorded value, 0 when empty. quantile(1)
  /// returns the exact maximum seen (tracked beside the buckets).
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] std::int64_t count() const { return count_; }
  [[nodiscard]] double max_micros() const { return max_; }

  /// Elementwise accumulation of another histogram into this one.
  void merge(const LatencyHistogram& other);

  void reset();

 private:
  [[nodiscard]] static int bucket_index(double micros);

  std::array<std::int64_t, kExponents * kSubBuckets> buckets_{};
  std::int64_t count_ = 0;
  double max_ = 0;
};

}  // namespace mtsr::net
