#include "src/net/admission.hpp"

#include <algorithm>
#include <unordered_set>

namespace mtsr::net {

bool AdmissionQueue::enqueue(PendingPush push) {
  if (static_cast<std::int64_t>(queue_.size()) >= capacity_) {
    ++rejected_;
    return false;
  }
  queue_.push_back(std::move(push));
  max_depth_ = std::max(max_depth_,
                        static_cast<std::int64_t>(queue_.size()));
  return true;
}

std::vector<PendingPush> AdmissionQueue::next_round() {
  std::vector<PendingPush> round;
  if (queue_.empty()) return round;
  std::unordered_set<std::int64_t> taken;
  std::deque<PendingPush> rest;
  for (auto& pending : queue_) {
    if (taken.insert(pending.session).second) {
      round.push_back(std::move(pending));
    } else {
      rest.push_back(std::move(pending));
    }
  }
  queue_ = std::move(rest);
  return round;
}

std::int64_t AdmissionQueue::drop_connection(std::uint64_t connection) {
  const auto before = queue_.size();
  queue_.erase(std::remove_if(queue_.begin(), queue_.end(),
                              [&](const PendingPush& p) {
                                return p.connection == connection;
                              }),
               queue_.end());
  return static_cast<std::int64_t>(before - queue_.size());
}

std::int64_t AdmissionQueue::drop_session(std::int64_t session) {
  const auto before = queue_.size();
  queue_.erase(std::remove_if(queue_.begin(), queue_.end(),
                              [&](const PendingPush& p) {
                                return p.session == session;
                              }),
               queue_.end());
  return static_cast<std::int64_t>(before - queue_.size());
}

}  // namespace mtsr::net
