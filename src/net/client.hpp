// net::Client — blocking convenience client for the front-door protocol.
//
// Wraps one TCP connection and the frame codec behind a call-per-verb API:
// open() / push() / close_session() / stats() each send a request and block
// for its response. For open-loop load generation (the trace replayer) the
// split pair send_push() / poll_push() decouples sending from receiving so
// the caller can keep an arrival process on schedule while responses are
// consumed by a reader thread.
//
// Response routing: the server answers every verb in its own order (PUSH
// responses arrive when their dispatch round drains, possibly after a
// later OPEN's reply), so the client stashes out-of-verb responses and each
// wait_for(verb) call returns the first response of the wanted verb while
// queueing the rest. One thread may own the whole client, or one writer
// thread may call send_push while one reader thread calls poll_push —
// the two directions lock separately.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/net/protocol.hpp"

namespace mtsr::net {

struct ClientConfig {
  /// When > 0, sets SO_RCVBUF before connecting. Tests shrink it so the
  /// server's slow-client eviction triggers without megabytes in flight.
  int recv_buffer_bytes = 0;
  std::uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
};

/// One front-door connection. Methods throw std::runtime_error on socket
/// failure and ProtocolError on malformed responses.
class Client {
 public:
  Client(const std::string& host, int port, ClientConfig config = {});
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// OPEN: binds a session; blocks for the response.
  OpenResponse open(const OpenRequest& request);

  /// PUSH + wait for this session's response (closed-loop use).
  PushResponse push(std::int64_t session, const Tensor& frame);

  /// PUSH without waiting (open-loop use; pair with poll_push).
  void send_push(std::int64_t session, const Tensor& frame);

  /// Blocks up to `timeout_ms` for the next PUSH response from any session
  /// on this connection; nullopt on timeout. -1 waits indefinitely.
  std::optional<PushResponse> poll_push(int timeout_ms);

  CloseResponse close_session(std::int64_t session);

  StatsResponse stats();

 private:
  void send_all(const std::vector<std::uint8_t>& bytes);
  /// Reads until a response of `verb` arrives (stashing others); nullopt
  /// on timeout. Throws on EOF or protocol violation.
  std::optional<Response> wait_for(Verb verb, int timeout_ms);

  int fd_ = -1;
  std::mutex send_mu_;
  std::mutex recv_mu_;
  std::vector<std::uint8_t> read_buf_;  // guarded by recv_mu_
  std::deque<Response> stash_;          // guarded by recv_mu_
  std::uint32_t max_frame_bytes_;
};

}  // namespace mtsr::net
