#include "src/metrics/metrics.hpp"

#include <cmath>
#include <limits>
#include <sstream>

#include "src/common/check.hpp"

namespace mtsr::metrics {
namespace {

void check_pair(const Tensor& prediction, const Tensor& truth,
                const char* who) {
  check(prediction.shape() == truth.shape(),
        std::string(who) + ": prediction/truth shape mismatch (" +
            prediction.shape().to_string() + " vs " +
            truth.shape().to_string() + ")");
  check(prediction.size() > 0, std::string(who) + ": empty tensors");
}

double mse(const Tensor& prediction, const Tensor& truth) {
  double acc = 0.0;
  const float* p = prediction.data();
  const float* t = truth.data();
  const std::int64_t n = prediction.size();
  for (std::int64_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(p[i]) - t[i];
    acc += d * d;
  }
  return acc / static_cast<double>(n);
}

}  // namespace

double nrmse(const Tensor& prediction, const Tensor& truth) {
  check_pair(prediction, truth, "nrmse");
  const double truth_mean = truth.mean();
  check(truth_mean != 0.0, "nrmse: ground-truth mean is zero");
  return std::sqrt(mse(prediction, truth)) / truth_mean;
}

double psnr(const Tensor& prediction, const Tensor& truth, double peak) {
  check_pair(prediction, truth, "psnr");
  check(peak > 0.0, "psnr: peak must be positive");
  const double err = mse(prediction, truth);
  if (err == 0.0) return std::numeric_limits<double>::infinity();
  // Eq. (12): 20 log10(max) - 10 log10(MSE).
  return 20.0 * std::log10(peak) - 10.0 * std::log10(err);
}

double ssim(const Tensor& prediction, const Tensor& truth, double c1,
            double c2) {
  check_pair(prediction, truth, "ssim");
  const double mu_p = prediction.mean();
  const double mu_t = truth.mean();
  const std::int64_t n = prediction.size();
  double var_p = 0.0, var_t = 0.0, cov = 0.0;
  const float* p = prediction.data();
  const float* t = truth.data();
  for (std::int64_t i = 0; i < n; ++i) {
    const double dp = p[i] - mu_p;
    const double dt = t[i] - mu_t;
    var_p += dp * dp;
    var_t += dt * dt;
    cov += dp * dt;
  }
  var_p /= static_cast<double>(n);
  var_t /= static_cast<double>(n);
  cov /= static_cast<double>(n);

  if (c1 < 0.0 || c2 < 0.0) {
    // Standard stabilisers: c = (k L)^2 with the dynamic range L taken from
    // the ground truth (k1 = 0.01, k2 = 0.03).
    const double range =
        std::max(static_cast<double>(truth.max()) - truth.min(), 1e-12);
    if (c1 < 0.0) c1 = (0.01 * range) * (0.01 * range);
    if (c2 < 0.0) c2 = (0.03 * range) * (0.03 * range);
  }

  // Eq. (13), global-statistics form.
  const double numerator = (2.0 * mu_t * mu_p + c1) * (2.0 * cov + c2);
  const double denominator =
      (mu_t * mu_t + mu_p * mu_p + c1) * (var_t + var_p + c2);
  return numerator / denominator;
}

double mae(const Tensor& prediction, const Tensor& truth) {
  check_pair(prediction, truth, "mae");
  double acc = 0.0;
  const float* p = prediction.data();
  const float* t = truth.data();
  const std::int64_t n = prediction.size();
  for (std::int64_t i = 0; i < n; ++i) {
    acc += std::abs(static_cast<double>(p[i]) - t[i]);
  }
  return acc / static_cast<double>(n);
}

double pearson(const Tensor& prediction, const Tensor& truth) {
  check_pair(prediction, truth, "pearson");
  const double mu_p = prediction.mean();
  const double mu_t = truth.mean();
  double var_p = 0.0, var_t = 0.0, cov = 0.0;
  const float* p = prediction.data();
  const float* t = truth.data();
  const std::int64_t n = prediction.size();
  for (std::int64_t i = 0; i < n; ++i) {
    const double dp = p[i] - mu_p;
    const double dt = t[i] - mu_t;
    var_p += dp * dp;
    var_t += dt * dt;
    cov += dp * dt;
  }
  if (var_p <= 0.0 || var_t <= 0.0) return 0.0;
  return cov / std::sqrt(var_p * var_t);
}

MetricAccumulator::MetricAccumulator(double peak) : peak_(peak) {
  check(peak > 0.0, "MetricAccumulator: peak must be positive");
}

void MetricAccumulator::add(const Tensor& prediction, const Tensor& truth) {
  nrmse_sum_ += nrmse(prediction, truth);
  const double snapshot_psnr = psnr(prediction, truth, peak_);
  // Identical snapshots give +inf PSNR; cap so means stay meaningful.
  psnr_sum_ += std::isfinite(snapshot_psnr) ? snapshot_psnr : 200.0;
  ssim_sum_ += ssim(prediction, truth);
  mae_sum_ += mae(prediction, truth);
  ++count_;
}

double MetricAccumulator::mean_nrmse() const {
  check(count_ > 0, "MetricAccumulator: no snapshots added");
  return nrmse_sum_ / count_;
}

double MetricAccumulator::mean_psnr() const {
  check(count_ > 0, "MetricAccumulator: no snapshots added");
  return psnr_sum_ / count_;
}

double MetricAccumulator::mean_ssim() const {
  check(count_ > 0, "MetricAccumulator: no snapshots added");
  return ssim_sum_ / count_;
}

double MetricAccumulator::mean_mae() const {
  check(count_ > 0, "MetricAccumulator: no snapshots added");
  return mae_sum_ / count_;
}

std::string MetricAccumulator::summary() const {
  std::ostringstream out;
  out << "NRMSE=" << mean_nrmse() << " PSNR=" << mean_psnr()
      << "dB SSIM=" << mean_ssim() << " (n=" << count_ << ")";
  return out.str();
}

}  // namespace mtsr::metrics
