// Evaluation metrics from Section 5.3 of the paper.
//
// * NRMSE (Eq. 11): RMSE between prediction and ground truth, normalised by
//   the ground-truth mean. Lower is better.
// * PSNR (Eq. 12): peak signal-to-noise ratio against a fixed peak value
//   (the highest traffic volume ever observed in one cell — 5496 MB in the
//   paper's Milan dataset; callers pass their dataset's peak). Higher is
//   better.
// * SSIM (Eq. 13): global-statistics structural similarity (the paper uses
//   the single-window form, not the sliding-window variant). Higher is
//   better; 1 for identical inputs.
//
// All metrics accept tensors of identical shape and treat them as flat
// vectors of sub-cell volumes, matching the per-snapshot definitions in the
// paper; `MetricAccumulator` averages per-snapshot metrics over a test set,
// matching the "averages for inferences made over 10 days" protocol.
#pragma once

#include <string>

#include "src/tensor/tensor.hpp"

namespace mtsr::metrics {

/// Normalised root mean square error (Eq. 11); `truth` supplies both the
/// reference values and the normalising mean. Throws if the ground-truth
/// mean is zero.
[[nodiscard]] double nrmse(const Tensor& prediction, const Tensor& truth);

/// Peak signal-to-noise ratio in dB (Eq. 12) against an explicit peak
/// value. Returns +inf for identical inputs.
[[nodiscard]] double psnr(const Tensor& prediction, const Tensor& truth,
                          double peak);

/// Structural similarity (Eq. 13, global statistics). `c1`/`c2` default to
/// the standard (k·L)² constants with k1=0.01, k2=0.03 and dynamic range L
/// estimated from the ground truth max; pass explicit values to override.
[[nodiscard]] double ssim(const Tensor& prediction, const Tensor& truth,
                          double c1 = -1.0, double c2 = -1.0);

/// Mean absolute error.
[[nodiscard]] double mae(const Tensor& prediction, const Tensor& truth);

/// Pearson correlation coefficient between prediction and truth. Returns 0
/// when either side has zero variance.
[[nodiscard]] double pearson(const Tensor& prediction, const Tensor& truth);

/// Averages per-snapshot metrics over a test set, the way the paper reports
/// Fig. 9 (bars are means over 1440 snapshots).
class MetricAccumulator {
 public:
  /// `peak` is the PSNR reference peak (dataset-wide max cell volume).
  explicit MetricAccumulator(double peak);

  /// Adds one (prediction, truth) snapshot pair.
  void add(const Tensor& prediction, const Tensor& truth);

  [[nodiscard]] int count() const { return count_; }
  [[nodiscard]] double mean_nrmse() const;
  [[nodiscard]] double mean_psnr() const;
  [[nodiscard]] double mean_ssim() const;
  [[nodiscard]] double mean_mae() const;

  /// One-line summary, e.g. "NRMSE=0.312 PSNR=24.1dB SSIM=0.71 (n=96)".
  [[nodiscard]] std::string summary() const;

 private:
  double peak_;
  int count_ = 0;
  double nrmse_sum_ = 0.0;
  double psnr_sum_ = 0.0;
  double ssim_sum_ = 0.0;
  double mae_sum_ = 0.0;
};

}  // namespace mtsr::metrics
