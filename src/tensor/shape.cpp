#include "src/tensor/shape.hpp"

#include <numeric>
#include <sstream>

#include "src/common/check.hpp"

namespace mtsr {
namespace {

void validate(const std::vector<std::int64_t>& dims) {
  check(dims.size() <= static_cast<std::size_t>(Shape::kMaxRank),
        "Shape rank exceeds kMaxRank");
  for (std::int64_t d : dims) {
    check(d >= 0, "Shape dimensions must be non-negative");
  }
}

}  // namespace

Shape::Shape(std::initializer_list<std::int64_t> dims) : dims_(dims) {
  validate(dims_);
}

Shape::Shape(std::vector<std::int64_t> dims) : dims_(std::move(dims)) {
  validate(dims_);
}

std::int64_t Shape::dim(int axis) const {
  const int r = rank();
  if (axis < 0) axis += r;
  check(axis >= 0 && axis < r, "Shape::dim axis out of range");
  return dims_[static_cast<std::size_t>(axis)];
}

std::int64_t Shape::volume() const {
  return std::accumulate(dims_.begin(), dims_.end(), std::int64_t{1},
                         std::multiplies<>());
}

std::vector<std::int64_t> Shape::strides() const {
  std::vector<std::int64_t> s(dims_.size(), 1);
  for (int i = rank() - 2; i >= 0; --i) {
    s[static_cast<std::size_t>(i)] =
        s[static_cast<std::size_t>(i + 1)] * dims_[static_cast<std::size_t>(i + 1)];
  }
  return s;
}

std::string Shape::to_string() const {
  std::ostringstream out;
  out << '(';
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i > 0) out << ", ";
    out << dims_[i];
  }
  out << ')';
  return out.str();
}

}  // namespace mtsr
