#include "src/tensor/quant.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "src/common/check.hpp"
#include "src/common/parallel.hpp"

namespace mtsr::quant {
namespace {

// Round-half-up quantisation core. For v < -0.5 the truncation below is
// wrong by one, but every such value clamps to 0 anyway, so the result
// matches round-half-up for all representable outputs.
inline std::uint8_t quantize_core(float x, float inv_scale, float zp) {
  const float v = x * inv_scale + zp;
  const int q = static_cast<int>(v + 0.5f);
  return static_cast<std::uint8_t>(std::clamp(q, 0, 255));
}

}  // namespace

void RangeObserver::observe(const float* x, std::int64_t n) {
  if (n <= 0) return;
  float mn = seen ? lo : x[0];
  float mx = seen ? hi : x[0];
  double s = 0.0, sq = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    mn = std::min(mn, x[i]);
    mx = std::max(mx, x[i]);
    s += x[i];
    sq += static_cast<double>(x[i]) * x[i];
  }
  lo = mn;
  hi = mx;
  sum += s;
  sum_sq += sq;
  count += n;
  seen = true;
}

ActQuant choose_act_quant(float lo, float hi) {
  check(lo <= hi, "choose_act_quant: inverted range");
  check(std::isfinite(lo) && std::isfinite(hi),
        "choose_act_quant: non-finite range");
  // Widen to include zero so lowering padding quantises exactly.
  lo = std::min(lo, 0.f);
  hi = std::max(hi, 0.f);
  ActQuant aq;
  aq.scale = (hi - lo) / 255.f;
  if (aq.scale <= 0.f) aq.scale = 1.f;  // degenerate all-zero range
  aq.zero_point = std::clamp(
      static_cast<std::int32_t>(std::lrintf(-lo / aq.scale)), 0, 255);
  return aq;
}

ActQuant choose_act_quant(const RangeObserver& observer) {
  check(observer.seen, "choose_act_quant: observer saw no data");
  // Full observed min/max — no tail clipping. Traffic activations are
  // heavy-tailed BY DESIGN (hotspots are the signal the network must
  // reconstruct); clipping the calibrated range at mean ± k·sigma was
  // measured to triple the int8 error because it saturates exactly the
  // hotspot cells NRMSE weights most.
  return choose_act_quant(observer.lo, observer.hi);
}

std::uint8_t quantize_value(float x, const ActQuant& aq) {
  return quantize_core(x, 1.f / aq.scale,
                       static_cast<float>(aq.zero_point));
}

float dequantize_value(std::uint8_t q, const ActQuant& aq) {
  return aq.scale * static_cast<float>(static_cast<std::int32_t>(q) -
                                       aq.zero_point);
}

void quantize_u8(const float* x, std::int64_t n, const ActQuant& aq,
                 std::uint8_t* out) {
  const float inv = 1.f / aq.scale;
  const float zp = static_cast<float>(aq.zero_point);
  parallel_for_chunks(n, [&](std::int64_t b, std::int64_t e, int) {
    for (std::int64_t i = b; i < e; ++i) out[i] = quantize_core(x[i], inv, zp);
  });
}

void dequantize_u8(const std::uint8_t* q, std::int64_t n, const ActQuant& aq,
                   float* out) {
  for (std::int64_t i = 0; i < n; ++i) out[i] = dequantize_value(q[i], aq);
}

void quantize_transpose_u8(const float* src, std::int64_t rows,
                           std::int64_t cols, const ActQuant& aq,
                           std::uint8_t* out, std::int64_t row_stride) {
  check(row_stride >= rows, "quantize_transpose_u8: row_stride < rows");
  const float inv = 1.f / aq.scale;
  const float zp = static_cast<float>(aq.zero_point);
  // 32×32 tiles keep the strided read stream in L1 (cf. transpose_into).
  constexpr std::int64_t kTile = 32;
  parallel_for_grain(cols, kTile, [&](std::int64_t c0, std::int64_t c1, int) {
    for (std::int64_t ct = c0; ct < c1; ct += kTile) {
      const std::int64_t cmax = std::min(c1, ct + kTile);
      for (std::int64_t rt = 0; rt < rows; rt += kTile) {
        const std::int64_t rmax = std::min(rows, rt + kTile);
        for (std::int64_t c = ct; c < cmax; ++c) {
          std::uint8_t* orow = out + c * row_stride;
          for (std::int64_t r = rt; r < rmax; ++r) {
            orow[r] = quantize_core(src[r * cols + c], inv, zp);
          }
        }
      }
      // Zero the k-alignment tail once per output row.
      if (row_stride > rows) {
        for (std::int64_t c = ct; c < cmax; ++c) {
          std::memset(out + c * row_stride + rows, 0,
                      static_cast<std::size_t>(row_stride - rows));
        }
      }
    }
  });
}

void quantize_batch_transpose_u8(const float* src, std::int64_t n,
                                 std::int64_t c, std::int64_t inner,
                                 const ActQuant& aq, std::uint8_t* out,
                                 std::int64_t row_stride) {
  check(row_stride >= c, "quantize_batch_transpose_u8: row_stride < c");
  const float inv = 1.f / aq.scale;
  const float zp = static_cast<float>(aq.zero_point);
  parallel_for(n, [&](std::int64_t i) {
    const float* sample = src + i * c * inner;
    std::uint8_t* block = out + i * inner * row_stride;
    constexpr std::int64_t kTile = 32;
    for (std::int64_t pt = 0; pt < inner; pt += kTile) {
      const std::int64_t pmax = std::min(inner, pt + kTile);
      for (std::int64_t cht = 0; cht < c; cht += kTile) {
        const std::int64_t chmax = std::min(c, cht + kTile);
        for (std::int64_t pos = pt; pos < pmax; ++pos) {
          std::uint8_t* orow = block + pos * row_stride;
          for (std::int64_t ch = cht; ch < chmax; ++ch) {
            orow[ch] = quantize_core(sample[ch * inner + pos], inv, zp);
          }
        }
      }
    }
    if (row_stride > c) {
      for (std::int64_t pos = 0; pos < inner; ++pos) {
        std::memset(block + pos * row_stride + c, 0,
                    static_cast<std::size_t>(row_stride - c));
      }
    }
  });
}

namespace {

// Quantisation MSE of one channel row at clip threshold `clip`.
double channel_quant_mse(const float* row, std::int64_t n, float clip,
                         int qmax) {
  const float scale = clip / static_cast<float>(qmax);
  const float inv = 1.f / scale;
  double mse = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    const int q = std::clamp(static_cast<int>(std::lrintf(row[i] * inv)),
                             -qmax, qmax);
    const double err = static_cast<double>(row[i]) - scale * q;
    mse += err * err;
  }
  return mse;
}

}  // namespace

void quantize_weights_per_channel(const float* w, std::int64_t channels,
                                  std::int64_t per_channel, std::int8_t* wq,
                                  float* scales, bool mse_clip, int qmax) {
  check(channels > 0 && per_channel > 0,
        "quantize_weights_per_channel: empty weight");
  check(qmax > 0 && qmax <= kWeightQmaxFull,
        "quantize_weights_per_channel: qmax outside (0, 127]");
  parallel_for(channels, [&](std::int64_t o) {
    const float* row = w + o * per_channel;
    float amax = 0.f;
    for (std::int64_t i = 0; i < per_channel; ++i) {
      amax = std::max(amax, std::fabs(row[i]));
    }
    float clip = amax;
    if (mse_clip && amax > 0.f) {
      // Grid-search the clip threshold: a channel whose range is set by a
      // single outlier tap trades a bounded clip error on that tap for a
      // finer step on the bulk.
      double best = channel_quant_mse(row, per_channel, amax, qmax);
      for (int step = 1; step <= 10; ++step) {
        const float candidate =
            amax * (1.f - 0.05f * static_cast<float>(step));
        const double mse =
            channel_quant_mse(row, per_channel, candidate, qmax);
        if (mse < best) {
          best = mse;
          clip = candidate;
        }
      }
    }
    const float scale =
        clip > 0.f ? clip / static_cast<float>(qmax) : 1.f;
    scales[o] = scale;
    const float inv = 1.f / scale;
    std::int8_t* qrow = wq + o * per_channel;
    for (std::int64_t i = 0; i < per_channel; ++i) {
      const int q = static_cast<int>(std::lrintf(row[i] * inv));
      qrow[i] = static_cast<std::int8_t>(std::clamp(q, -qmax, qmax));
    }
  });
}

}  // namespace mtsr::quant
