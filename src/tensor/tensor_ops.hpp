// Free-function tensor operations: matmul, im2col/col2im, padding, cropping,
// pooling and upsampling.
//
// These are the building blocks the src/nn layers are written against. Each
// hot op comes in two forms:
//
//  - the pure variant (value in, value out) validates its shape contract
//    and allocates the result tensor;
//  - the `_into` variant is destination-passing: it writes into a caller-
//    provided buffer (typically carved from the thread's Workspace arena)
//    and performs no allocation of its own beyond transient GEMM packing
//    scratch.
//
// The pure variants are thin wrappers over the `_into` cores, so both paths
// compute identical results. The matmul family runs a cache-blocked,
// packed-B panel kernel on the shared thread pool (src/common/parallel.hpp):
// the B matrix is packed once per (k-tile, j-tile) panel and shared across
// row chunks, cutting DRAM traffic on the short-and-wide products conv
// lowering produces. Every kernel preserves a fixed per-element accumulation
// order, so results are bit-identical for every pool size.
#pragma once

#include <cstdint>

#include "src/tensor/tensor.hpp"

namespace mtsr {

// ---- GEMM family -----------------------------------------------------------

/// C = A (m×k) * B (k×n). Both inputs must be rank-2.
[[nodiscard]] Tensor matmul(const Tensor& a, const Tensor& b);

/// C = Aᵀ (k×m) * B (k×n); the transpose is never exposed to the caller.
[[nodiscard]] Tensor matmul_tn(const Tensor& a, const Tensor& b);

/// C = A (m×k) * Bᵀ (n×k) without materialising Bᵀ.
[[nodiscard]] Tensor matmul_nt(const Tensor& a, const Tensor& b);

/// Transpose of a rank-2 tensor.
[[nodiscard]] Tensor transpose(const Tensor& a);

/// c = a (m×k) * b (k×n), written into caller memory. When `accumulate` is
/// set the product is added onto the existing contents of c instead of
/// overwriting — the destination-passing form of `grad.add_(matmul(...))`.
void matmul_into(const float* a, const float* b, float* c, std::int64_t m,
                 std::int64_t k, std::int64_t n, bool accumulate = false);

/// c = aᵀ * b for a stored (k×m) row-major and b (k×n). Uses transient
/// Workspace scratch for the packed transpose.
void matmul_tn_into(const float* a, const float* b, float* c, std::int64_t k,
                    std::int64_t m, std::int64_t n, bool accumulate = false);

/// c = a (m×k) * bᵀ for b stored (n×k) row-major.
void matmul_nt_into(const float* a, const float* b, float* c, std::int64_t m,
                    std::int64_t k, std::int64_t n, bool accumulate = false);

/// out (n×m) = transpose of a (m×n), written into caller memory.
void transpose_into(const float* a, std::int64_t m, std::int64_t n,
                    float* out);

// ---- Conv lowering ---------------------------------------------------------

/// im2col for 2-D convolution.
///
/// Input  (C, H, W); output (C*kh*kw, oh*ow) where
/// oh = (H + 2*pad_h - kh)/stride_h + 1 and likewise for ow. Out-of-bounds
/// taps read as zero (zero padding).
[[nodiscard]] Tensor im2col(const Tensor& input, int kh, int kw, int stride_h,
                            int stride_w, int pad_h, int pad_w);

/// Adjoint of im2col: scatters columns back into a (C, H, W) image,
/// accumulating where patches overlap.
[[nodiscard]] Tensor col2im(const Tensor& columns, std::int64_t channels,
                            std::int64_t height, std::int64_t width, int kh,
                            int kw, int stride_h, int stride_w, int pad_h,
                            int pad_w);

/// Whole-batch im2col: input (N, C, H, W) -> (C*kh*kw, N*oh*ow), with the
/// columns of sample i occupying the contiguous range [i*oh*ow, (i+1)*oh*ow).
/// Lets a convolution over the whole batch run as ONE GEMM per step.
[[nodiscard]] Tensor im2col_batched(const Tensor& input, int kh, int kw,
                                    int stride_h, int stride_w, int pad_h,
                                    int pad_w);

/// Adjoint of im2col_batched: scatters (C*kh*kw, N*oh*ow) columns back into
/// an (N, C, H, W) batch, accumulating where patches overlap.
[[nodiscard]] Tensor col2im_batched(const Tensor& columns, std::int64_t n,
                                    std::int64_t channels, std::int64_t height,
                                    std::int64_t width, int kh, int kw,
                                    int stride_h, int stride_w, int pad_h,
                                    int pad_w);

/// Whole-batch 3-D lowering: input (N, C, D, H, W) ->
/// (C*kd*kh*kw, N*od*oh*ow), sample i's columns contiguous as in
/// im2col_batched.
[[nodiscard]] Tensor vol2col_batched(const Tensor& input, int kd, int kh,
                                     int kw, int stride_d, int stride_h,
                                     int stride_w, int pad_d, int pad_h,
                                     int pad_w);

/// Adjoint of vol2col_batched: scatters columns back into an
/// (N, C, D, H, W) batch.
[[nodiscard]] Tensor col2vol_batched(const Tensor& columns, std::int64_t n,
                                     std::int64_t channels, std::int64_t depth,
                                     std::int64_t height, std::int64_t width,
                                     int kd, int kh, int kw, int stride_d,
                                     int stride_h, int stride_w, int pad_d,
                                     int pad_h, int pad_w);

/// Destination-passing im2col_batched: input (n, c, h, w) laid out
/// row-major at `input`, columns written to `out` (c*kh*kw rows of
/// n*oh*ow floats). Every output element is written (padding taps as 0).
void im2col_batched_into(const float* input, std::int64_t n, std::int64_t c,
                         std::int64_t h, std::int64_t w, int kh, int kw,
                         int stride_h, int stride_w, int pad_h, int pad_w,
                         float* out);

/// Destination-passing col2im_batched; `out` (n*channels*height*width) is
/// zeroed before the scatter.
void col2im_batched_into(const float* columns, std::int64_t n,
                         std::int64_t channels, std::int64_t height,
                         std::int64_t width, int kh, int kw, int stride_h,
                         int stride_w, int pad_h, int pad_w, float* out);

/// Destination-passing vol2col_batched (see vol2col_batched).
void vol2col_batched_into(const float* input, std::int64_t n, std::int64_t c,
                          std::int64_t d, std::int64_t h, std::int64_t w,
                          int kd, int kh, int kw, int stride_d, int stride_h,
                          int stride_w, int pad_d, int pad_h, int pad_w,
                          float* out);

/// Destination-passing col2vol_batched; `out` is zeroed before the scatter.
void col2vol_batched_into(const float* columns, std::int64_t n,
                          std::int64_t channels, std::int64_t depth,
                          std::int64_t height, std::int64_t width, int kd,
                          int kh, int kw, int stride_d, int stride_h,
                          int stride_w, int pad_d, int pad_h, int pad_w,
                          float* out);

// ---- Batch/channel-major reordering ----------------------------------------

/// Reorders (N, C, *) into a channel-major matrix (C, N*inner) where inner
/// is the product of the trailing dims. The GEMM-side layout of the batched
/// conv lowering.
[[nodiscard]] Tensor batch_to_channel_major(const Tensor& input);

/// Inverse of batch_to_channel_major: (C, N*inner) -> out_shape, which must
/// be (N, C, *) with matching volume.
[[nodiscard]] Tensor channel_major_to_batch(const Tensor& mat,
                                            const Shape& out_shape);

/// Destination-passing batch_to_channel_major over raw (n, c, inner) data.
void batch_to_channel_major_into(const float* input, std::int64_t n,
                                 std::int64_t c, std::int64_t inner,
                                 float* out);

/// Destination-passing channel_major_to_batch over raw (n, c, inner) data.
void channel_major_to_batch_into(const float* mat, std::int64_t n,
                                 std::int64_t c, std::int64_t inner,
                                 float* out);

// ---- Channel bias / reductions ---------------------------------------------

/// In-place broadcast-add of a per-channel bias (C) over an (N, C, *)
/// batch. The bias path shared by every conv layer's forward.
void add_channel_bias(Tensor& batch, const Tensor& bias);

/// Accumulates per-channel sums of an (N, C, *) batch into `sums` (C) —
/// the bias-gradient reduction shared by every conv layer's backward.
/// Deterministic: channel c sums samples then positions in ascending order
/// regardless of pool size.
void accumulate_channel_sums(const Tensor& batch, Tensor& sums);

// ---- Spatial helpers -------------------------------------------------------

/// Zero-pads the last two axes of a rank-2..4 tensor by (pad_h, pad_w) on
/// each side.
[[nodiscard]] Tensor pad2d(const Tensor& input, int pad_h, int pad_w);

/// Crops the last two axes: rows [r0, r0+rows), cols [c0, c0+cols).
[[nodiscard]] Tensor crop2d(const Tensor& input, std::int64_t r0,
                            std::int64_t c0, std::int64_t rows,
                            std::int64_t cols);

/// Average-pools the last two axes with a non-overlapping factor×factor
/// window. Both spatial dims must be divisible by factor.
[[nodiscard]] Tensor avg_pool2d(const Tensor& input, int factor);

/// Sum-pools the last two axes with a non-overlapping factor×factor window.
[[nodiscard]] Tensor sum_pool2d(const Tensor& input, int factor);

/// Nearest-neighbour upsampling of the last two axes by an integer factor.
[[nodiscard]] Tensor upsample_nearest2d(const Tensor& input, int factor);

/// Destination-passing nearest-neighbour upsample over raw (batch, rows,
/// cols) data, with every output element scaled by `scale` — the fused form
/// of AvgPool2d's backward (upsample then divide by factor²).
void upsample_nearest2d_into(const float* input, std::int64_t batch,
                             std::int64_t rows, std::int64_t cols, int factor,
                             float scale, float* out);

/// Concatenates rank-N tensors along axis 0. All other dims must match.
[[nodiscard]] Tensor concat0(const std::vector<Tensor>& parts);

/// Stacks rank-N tensors into a rank-(N+1) tensor along a new axis 0.
[[nodiscard]] Tensor stack0(const std::vector<Tensor>& parts);

/// Extracts subtensor `index` along axis 0 of a rank-N tensor (result rank
/// N-1).
[[nodiscard]] Tensor select0(const Tensor& input, std::int64_t index);

}  // namespace mtsr
