// Free-function tensor operations: matmul, im2col/col2im, padding, cropping,
// pooling and upsampling.
//
// These are the building blocks the src/nn layers are written against. Each
// hot op comes in two forms:
//
//  - the pure variant (value in, value out) validates its shape contract
//    and allocates the result tensor;
//  - the `_into` variant is destination-passing: it writes into a caller-
//    provided buffer (typically carved from the thread's Workspace arena)
//    and performs no allocation of its own beyond transient GEMM packing
//    scratch.
//
// The pure variants are thin wrappers over the `_into` cores, so both paths
// compute identical results. The matmul family runs a cache-blocked,
// packed-B panel kernel on the shared thread pool (src/common/parallel.hpp):
// the B matrix is packed once per (k-tile, j-tile) panel and shared across
// row chunks, cutting DRAM traffic on the short-and-wide products conv
// lowering produces. Every kernel preserves a fixed per-element accumulation
// order, so results are bit-identical for every pool size.
#pragma once

#include <cstdint>
#include <vector>

#include "src/tensor/tensor.hpp"

namespace mtsr {

// ---- GEMM family -----------------------------------------------------------

/// C = A (m×k) * B (k×n). Both inputs must be rank-2.
[[nodiscard]] Tensor matmul(const Tensor& a, const Tensor& b);

/// C = Aᵀ (k×m) * B (k×n); the transpose is never exposed to the caller.
[[nodiscard]] Tensor matmul_tn(const Tensor& a, const Tensor& b);

/// C = A (m×k) * Bᵀ (n×k) without materialising Bᵀ.
[[nodiscard]] Tensor matmul_nt(const Tensor& a, const Tensor& b);

/// Transpose of a rank-2 tensor.
[[nodiscard]] Tensor transpose(const Tensor& a);

/// c = a (m×k) * b (k×n), written into caller memory. When `accumulate` is
/// set the product is added onto the existing contents of c instead of
/// overwriting — the destination-passing form of `grad.add_(matmul(...))`.
void matmul_into(const float* a, const float* b, float* c, std::int64_t m,
                 std::int64_t k, std::int64_t n, bool accumulate = false);

/// c = aᵀ * b for a stored (k×m) row-major and b (k×n). Uses transient
/// Workspace scratch for the packed transpose.
void matmul_tn_into(const float* a, const float* b, float* c, std::int64_t k,
                    std::int64_t m, std::int64_t n, bool accumulate = false);

/// c = a (m×k) * bᵀ for b stored (n×k) row-major.
void matmul_nt_into(const float* a, const float* b, float* c, std::int64_t m,
                    std::int64_t k, std::int64_t n, bool accumulate = false);

/// out (n×m) = transpose of a (m×n), written into caller memory.
void transpose_into(const float* a, std::int64_t m, std::int64_t n,
                    float* out);

/// Feature-test macro for the forced-kernel seams below — lets the bench
/// binary compile against trees that predate the hand-scheduled kernels.
#define MTSR_TENSOR_OPS_FORCED_KERNELS 1

/// Name of the hand-scheduled panel microkernel the float matmul family
/// dispatches to on this host: "avx512" (8×32 FMA register tile), "avx2"
/// (6×16), or "generic" (the portable fallback). The MTSR_SIMD environment
/// variable caps the choice at process start, exactly like the int8
/// dispatch (gemm_u8s8_kernel_name).
[[nodiscard]] const char* matmul_kernel_name();

/// Testing/benchmark seam: runs matmul_into with the microkernel of an
/// explicit dispatch level — "scalar"/"sse2"/"generic" (portable kernel),
/// "avx2", "avx512", "vnni" (same float kernel as "avx512"), or "clones"
/// (the pre-hand-scheduling target_clones kernel, kept for interleaved
/// old-vs-new benchmarking) — regardless of MTSR_SIMD. Returns false
/// without touching `c` when this host cannot execute the requested level.
/// The production dispatch, resolved once per process, is unaffected.
[[nodiscard]] bool matmul_into_forced_kernel(const char* level,
                                             const float* a, const float* b,
                                             float* c, std::int64_t m,
                                             std::int64_t k, std::int64_t n,
                                             bool accumulate = false);

// ---- Quantised GEMM (u8 activations · s8 weights) --------------------------
//
// The int8 inference path: C (m×n float) = dequant(A_u8 (m×k) · B_s8 (k×n)).
// Unlike the float packed-B path — which re-packs B panels on every call —
// the s8 B operand (the WEIGHTS of a quantised layer) is packed ONCE at
// model-load time into a PackedInt8B and reused for the model's lifetime:
// weight memory traffic drops 4x and the pack cost disappears from the
// serving loop. A is quantised into workspace scratch per call by the
// layer (quant.hpp). Accumulation is exact int32, so results are
// bit-identical for every pool size and every SIMD level by construction;
// the dequant + bias + LeakyReLU epilogue is fused into the register-tile
// store (single-rounding fmaf in every path).

/// s8 B matrix packed for gemm_u8s8: k-groups of 4 interleaved per column
/// so the maddubs/vpdpbusd microkernels stream one contiguous load per 4
/// k-steps. Values must lie within ±quant::kWeightQmax (checked at pack
/// time) — the saturation-freedom contract of the maddubs paths — unless
/// the pack was made with full_range set, which admits the full ±127 clip
/// and restricts dispatch to the kernels that accumulate u8·s8 groups
/// straight into s32 (scalar and VNNI).
struct PackedInt8B {
  std::vector<std::int8_t> data;     ///< (kpad/4, npad, 4) s8, zero-padded
  std::vector<std::int32_t> colsum;  ///< per-column Σ_k b[k,j] (length npad)
  std::int64_t k = 0;                ///< logical row count
  std::int64_t n = 0;                ///< logical column count
  std::int64_t npad = 0;             ///< n rounded up to 16 columns
  bool full_range = false;           ///< ±127 pack (scalar/VNNI only)

  [[nodiscard]] bool empty() const { return data.empty(); }
  /// k rounded up to 4: the minimum row stride (lda) of the A operand.
  [[nodiscard]] std::int64_t kpad() const { return (k + 3) / 4 * 4; }
};

/// Packs a row-major (k × n) s8 matrix. Throws when any value exceeds the
/// admitted clip: ±quant::kWeightQmax by default, ±quant::kWeightQmaxFull
/// with `full_range` set. Full-range packs are an opt-in for VNNI hosts —
/// gemm_u8s8 demotes them to the scalar kernel when the process kernel is
/// a maddubs path, so correctness never depends on the host ISA; the
/// default ±63 mode keeps the cross-ISA bit-exactness contract unchanged.
[[nodiscard]] PackedInt8B pack_b_s8(const std::int8_t* b, std::int64_t k,
                                    std::int64_t n, bool full_range = false);

/// Fused epilogue of gemm_u8s8, applied per output element as
///   y = fmaf(col_scale[j], float(acc − a_zp·colsum[j]), bias ? bias[j] : 0)
///   c[i,j] = max(y, lrelu_alpha·y)
/// col_scale[j] is the combined activation×weight scale of column j;
/// lrelu_alpha = 1 leaves y unchanged (no activation), alpha < 1 applies
/// LeakyReLU. Pointers must cover [0, n) of the packed B.
struct QuantEpilogue {
  const float* col_scale = nullptr;
  std::int32_t a_zp = 0;
  const float* bias = nullptr;  ///< per-column bias, or null
  float lrelu_alpha = 1.f;
};

/// C (m × b.n, row-major float, row stride ldc) = epilogue(A_u8 · B).
/// `lda` is A's row stride in elements and must be >= b.kpad(); bytes past
/// column k−1 may hold anything (they multiply packed zeros). ldc <= 0
/// selects b.n. When the caller passes ldc >= b.npad the kernel computes
/// the full padded column span — the zero-pad columns write epilogue(0)
/// (= 0 when their col_scale/bias pad entries are 0) and the vector path
/// never drops to the scalar column tail, which is what makes few-output-
/// channel convolutions (e.g. a 1-channel output head) run at SIMD speed;
/// ep.col_scale (and ep.bias when set) must then cover b.npad entries.
/// Pool-parallel over rows (tall) or 16-column blocks (wide);
/// bit-identical for every pool size and SIMD level.
void gemm_u8s8(const std::uint8_t* a, std::int64_t lda, const PackedInt8B& b,
               std::int64_t m, const QuantEpilogue& ep, float* c,
               std::int64_t ldc = 0);

/// Serial scalar reference implementation (same contract, same epilogue) —
/// the bit-exactness oracle for the SIMD kernels.
void gemm_u8s8_ref(const std::uint8_t* a, std::int64_t lda,
                   const PackedInt8B& b, std::int64_t m,
                   const QuantEpilogue& ep, float* c, std::int64_t ldc = 0);

/// Name of the microkernel gemm_u8s8 dispatches to on this host:
/// "vnni", "avx512", "avx2", or "scalar". The MTSR_SIMD environment
/// variable (values "scalar", "sse2", "avx2", "avx512", "vnni") caps the
/// choice at process start — MTSR_SIMD=scalar is the forced-lowest-ISA
/// mode CI uses to keep the scalar fallback tested on wide hosts, and
/// "avx512" deliberately caps below VNNI so the maddubs AVX-512 kernel
/// stays reachable on VNNI hosts.
[[nodiscard]] const char* gemm_u8s8_kernel_name();

/// Testing seam: runs gemm_u8s8 with the microkernel of an explicit
/// dispatch level ("scalar"/"sse2", "avx2", "avx512", "vnni") regardless
/// of MTSR_SIMD. Returns false without touching `c` when this host cannot
/// execute the requested level. Full-range packs demote maddubs levels to
/// the scalar kernel exactly as the production dispatch does.
[[nodiscard]] bool gemm_u8s8_forced_kernel(const char* level,
                                           const std::uint8_t* a,
                                           std::int64_t lda,
                                           const PackedInt8B& b,
                                           std::int64_t m,
                                           const QuantEpilogue& ep, float* c,
                                           std::int64_t ldc = 0);

// ---- Conv lowering ---------------------------------------------------------

/// im2col for 2-D convolution.
///
/// Input  (C, H, W); output (C*kh*kw, oh*ow) where
/// oh = (H + 2*pad_h - kh)/stride_h + 1 and likewise for ow. Out-of-bounds
/// taps read as zero (zero padding).
[[nodiscard]] Tensor im2col(const Tensor& input, int kh, int kw, int stride_h,
                            int stride_w, int pad_h, int pad_w);

/// Adjoint of im2col: scatters columns back into a (C, H, W) image,
/// accumulating where patches overlap.
[[nodiscard]] Tensor col2im(const Tensor& columns, std::int64_t channels,
                            std::int64_t height, std::int64_t width, int kh,
                            int kw, int stride_h, int stride_w, int pad_h,
                            int pad_w);

/// Whole-batch im2col: input (N, C, H, W) -> (C*kh*kw, N*oh*ow), with the
/// columns of sample i occupying the contiguous range [i*oh*ow, (i+1)*oh*ow).
/// Lets a convolution over the whole batch run as ONE GEMM per step.
[[nodiscard]] Tensor im2col_batched(const Tensor& input, int kh, int kw,
                                    int stride_h, int stride_w, int pad_h,
                                    int pad_w);

/// Adjoint of im2col_batched: scatters (C*kh*kw, N*oh*ow) columns back into
/// an (N, C, H, W) batch, accumulating where patches overlap.
[[nodiscard]] Tensor col2im_batched(const Tensor& columns, std::int64_t n,
                                    std::int64_t channels, std::int64_t height,
                                    std::int64_t width, int kh, int kw,
                                    int stride_h, int stride_w, int pad_h,
                                    int pad_w);

/// Whole-batch 3-D lowering: input (N, C, D, H, W) ->
/// (C*kd*kh*kw, N*od*oh*ow), sample i's columns contiguous as in
/// im2col_batched.
[[nodiscard]] Tensor vol2col_batched(const Tensor& input, int kd, int kh,
                                     int kw, int stride_d, int stride_h,
                                     int stride_w, int pad_d, int pad_h,
                                     int pad_w);

/// Adjoint of vol2col_batched: scatters columns back into an
/// (N, C, D, H, W) batch.
[[nodiscard]] Tensor col2vol_batched(const Tensor& columns, std::int64_t n,
                                     std::int64_t channels, std::int64_t depth,
                                     std::int64_t height, std::int64_t width,
                                     int kd, int kh, int kw, int stride_d,
                                     int stride_h, int stride_w, int pad_d,
                                     int pad_h, int pad_w);

/// Destination-passing im2col_batched: input (n, c, h, w) laid out
/// row-major at `input`, columns written to `out` (c*kh*kw rows of
/// n*oh*ow floats). Every output element is written (padding taps as 0).
void im2col_batched_into(const float* input, std::int64_t n, std::int64_t c,
                         std::int64_t h, std::int64_t w, int kh, int kw,
                         int stride_h, int stride_w, int pad_h, int pad_w,
                         float* out);

/// Destination-passing col2im_batched; `out` (n*channels*height*width) is
/// zeroed before the scatter.
void col2im_batched_into(const float* columns, std::int64_t n,
                         std::int64_t channels, std::int64_t height,
                         std::int64_t width, int kh, int kw, int stride_h,
                         int stride_w, int pad_h, int pad_w, float* out);

/// Destination-passing vol2col_batched (see vol2col_batched).
void vol2col_batched_into(const float* input, std::int64_t n, std::int64_t c,
                          std::int64_t d, std::int64_t h, std::int64_t w,
                          int kd, int kh, int kw, int stride_d, int stride_h,
                          int stride_w, int pad_d, int pad_h, int pad_w,
                          float* out);

/// Destination-passing col2vol_batched; `out` is zeroed before the scatter.
void col2vol_batched_into(const float* columns, std::int64_t n,
                          std::int64_t channels, std::int64_t depth,
                          std::int64_t height, std::int64_t width, int kd,
                          int kh, int kw, int stride_d, int stride_h,
                          int stride_w, int pad_d, int pad_h, int pad_w,
                          float* out);

// ---- Quantised (uint8) lowering --------------------------------------------
//
// The int8 conv path quantises the layer INPUT image once (N·C·H·W
// elements) and lowers bytes instead of floats: the k²-fold duplication of
// im2col then moves 4x less memory, and the subsequent A-operand transpose
// is a byte transpose. Padding taps are filled with `pad` — the
// activation zero point, which is exactly where 0.0 quantises (quant.hpp).

/// uint8 im2col_batched (see im2col_batched_into); out-of-bounds taps read
/// as `pad`.
void im2col_batched_u8_into(const std::uint8_t* input, std::int64_t n,
                            std::int64_t c, std::int64_t h, std::int64_t w,
                            int kh, int kw, int stride_h, int stride_w,
                            int pad_h, int pad_w, std::uint8_t pad,
                            std::uint8_t* out);

/// uint8 vol2col_batched (see vol2col_batched_into).
void vol2col_batched_u8_into(const std::uint8_t* input, std::int64_t n,
                             std::int64_t c, std::int64_t d, std::int64_t h,
                             std::int64_t w, int kd, int kh, int kw,
                             int stride_d, int stride_h, int stride_w,
                             int pad_d, int pad_h, int pad_w, std::uint8_t pad,
                             std::uint8_t* out);

/// Byte transpose: out (cols × row_stride) = aᵀ for a (rows × cols), each
/// output row zero-filled from `rows` to `row_stride` (the GEMM
/// k-alignment tail). Tiled and pool-parallel.
void transpose_u8_into(const std::uint8_t* a, std::int64_t rows,
                       std::int64_t cols, std::uint8_t* out,
                       std::int64_t row_stride);

// ---- Batch/channel-major reordering ----------------------------------------

/// Reorders (N, C, *) into a channel-major matrix (C, N*inner) where inner
/// is the product of the trailing dims. The GEMM-side layout of the batched
/// conv lowering.
[[nodiscard]] Tensor batch_to_channel_major(const Tensor& input);

/// Inverse of batch_to_channel_major: (C, N*inner) -> out_shape, which must
/// be (N, C, *) with matching volume.
[[nodiscard]] Tensor channel_major_to_batch(const Tensor& mat,
                                            const Shape& out_shape);

/// Destination-passing batch_to_channel_major over raw (n, c, inner) data.
void batch_to_channel_major_into(const float* input, std::int64_t n,
                                 std::int64_t c, std::int64_t inner,
                                 float* out);

/// Destination-passing channel_major_to_batch over raw (n, c, inner) data.
void channel_major_to_batch_into(const float* mat, std::int64_t n,
                                 std::int64_t c, std::int64_t inner,
                                 float* out);

// ---- Channel bias / reductions ---------------------------------------------

/// In-place broadcast-add of a per-channel bias (C) over an (N, C, *)
/// batch. The bias path shared by every conv layer's forward.
void add_channel_bias(Tensor& batch, const Tensor& bias);

/// Accumulates per-channel sums of an (N, C, *) batch into `sums` (C) —
/// the bias-gradient reduction shared by every conv layer's backward.
/// Deterministic: channel c sums samples then positions in ascending order
/// regardless of pool size.
void accumulate_channel_sums(const Tensor& batch, Tensor& sums);

// ---- Spatial helpers -------------------------------------------------------

/// Zero-pads the last two axes of a rank-2..4 tensor by (pad_h, pad_w) on
/// each side.
[[nodiscard]] Tensor pad2d(const Tensor& input, int pad_h, int pad_w);

/// Crops the last two axes: rows [r0, r0+rows), cols [c0, c0+cols).
[[nodiscard]] Tensor crop2d(const Tensor& input, std::int64_t r0,
                            std::int64_t c0, std::int64_t rows,
                            std::int64_t cols);

/// Average-pools the last two axes with a non-overlapping factor×factor
/// window. Both spatial dims must be divisible by factor.
[[nodiscard]] Tensor avg_pool2d(const Tensor& input, int factor);

/// Sum-pools the last two axes with a non-overlapping factor×factor window.
[[nodiscard]] Tensor sum_pool2d(const Tensor& input, int factor);

/// Nearest-neighbour upsampling of the last two axes by an integer factor.
[[nodiscard]] Tensor upsample_nearest2d(const Tensor& input, int factor);

/// Destination-passing nearest-neighbour upsample over raw (batch, rows,
/// cols) data, with every output element scaled by `scale` — the fused form
/// of AvgPool2d's backward (upsample then divide by factor²).
void upsample_nearest2d_into(const float* input, std::int64_t batch,
                             std::int64_t rows, std::int64_t cols, int factor,
                             float scale, float* out);

/// Concatenates rank-N tensors along axis 0. All other dims must match.
[[nodiscard]] Tensor concat0(const std::vector<Tensor>& parts);

/// Stacks rank-N tensors into a rank-(N+1) tensor along a new axis 0.
[[nodiscard]] Tensor stack0(const std::vector<Tensor>& parts);

/// Extracts subtensor `index` along axis 0 of a rank-N tensor (result rank
/// N-1).
[[nodiscard]] Tensor select0(const Tensor& input, std::int64_t index);

}  // namespace mtsr
