// Free-function tensor operations: matmul, im2col/col2im, padding, cropping,
// pooling and upsampling.
//
// These are the building blocks the src/nn layers are written against. All
// functions are pure (value in, value out) and validate their shape
// contracts; the hot loops themselves are check-free.
#pragma once

#include <cstdint>

#include "src/tensor/tensor.hpp"

namespace mtsr {

/// C = A (m×k) * B (k×n). Both inputs must be rank-2.
[[nodiscard]] Tensor matmul(const Tensor& a, const Tensor& b);

/// C = Aᵀ (k×m) * B (k×n) without materialising Aᵀ.
[[nodiscard]] Tensor matmul_tn(const Tensor& a, const Tensor& b);

/// C = A (m×k) * Bᵀ (n×k) without materialising Bᵀ.
[[nodiscard]] Tensor matmul_nt(const Tensor& a, const Tensor& b);

/// Transpose of a rank-2 tensor.
[[nodiscard]] Tensor transpose(const Tensor& a);

/// im2col for 2-D convolution.
///
/// Input  (C, H, W); output (C*kh*kw, oh*ow) where
/// oh = (H + 2*pad_h - kh)/stride_h + 1 and likewise for ow. Out-of-bounds
/// taps read as zero (zero padding).
[[nodiscard]] Tensor im2col(const Tensor& input, int kh, int kw, int stride_h,
                            int stride_w, int pad_h, int pad_w);

/// Adjoint of im2col: scatters columns back into a (C, H, W) image,
/// accumulating where patches overlap.
[[nodiscard]] Tensor col2im(const Tensor& columns, std::int64_t channels,
                            std::int64_t height, std::int64_t width, int kh,
                            int kw, int stride_h, int stride_w, int pad_h,
                            int pad_w);

/// Zero-pads the last two axes of a rank-2..4 tensor by (pad_h, pad_w) on
/// each side.
[[nodiscard]] Tensor pad2d(const Tensor& input, int pad_h, int pad_w);

/// Crops the last two axes: rows [r0, r0+rows), cols [c0, c0+cols).
[[nodiscard]] Tensor crop2d(const Tensor& input, std::int64_t r0,
                            std::int64_t c0, std::int64_t rows,
                            std::int64_t cols);

/// Average-pools the last two axes with a non-overlapping factor×factor
/// window. Both spatial dims must be divisible by factor.
[[nodiscard]] Tensor avg_pool2d(const Tensor& input, int factor);

/// Sum-pools the last two axes with a non-overlapping factor×factor window.
[[nodiscard]] Tensor sum_pool2d(const Tensor& input, int factor);

/// Nearest-neighbour upsampling of the last two axes by an integer factor.
[[nodiscard]] Tensor upsample_nearest2d(const Tensor& input, int factor);

/// Concatenates rank-N tensors along axis 0. All other dims must match.
[[nodiscard]] Tensor concat0(const std::vector<Tensor>& parts);

/// Stacks rank-N tensors into a rank-(N+1) tensor along a new axis 0.
[[nodiscard]] Tensor stack0(const std::vector<Tensor>& parts);

/// Extracts subtensor `index` along axis 0 of a rank-N tensor (result rank
/// N-1).
[[nodiscard]] Tensor select0(const Tensor& input, std::int64_t index);

}  // namespace mtsr
