// Free-function tensor operations: matmul, im2col/col2im, padding, cropping,
// pooling and upsampling.
//
// These are the building blocks the src/nn layers are written against. All
// functions are pure (value in, value out) and validate their shape
// contracts; the hot loops themselves are check-free.
//
// The matmul family and the batched lowering helpers run cache-blocked
// kernels on the shared thread pool (src/common/parallel.hpp). Every kernel
// preserves a fixed per-element accumulation order, so results are
// bit-identical for every pool size.
#pragma once

#include <cstdint>

#include "src/tensor/tensor.hpp"

namespace mtsr {

/// C = A (m×k) * B (k×n). Both inputs must be rank-2.
[[nodiscard]] Tensor matmul(const Tensor& a, const Tensor& b);

/// C = Aᵀ (k×m) * B (k×n); the transpose is never exposed to the caller.
[[nodiscard]] Tensor matmul_tn(const Tensor& a, const Tensor& b);

/// C = A (m×k) * Bᵀ (n×k) without materialising Bᵀ.
[[nodiscard]] Tensor matmul_nt(const Tensor& a, const Tensor& b);

/// Transpose of a rank-2 tensor.
[[nodiscard]] Tensor transpose(const Tensor& a);

/// im2col for 2-D convolution.
///
/// Input  (C, H, W); output (C*kh*kw, oh*ow) where
/// oh = (H + 2*pad_h - kh)/stride_h + 1 and likewise for ow. Out-of-bounds
/// taps read as zero (zero padding).
[[nodiscard]] Tensor im2col(const Tensor& input, int kh, int kw, int stride_h,
                            int stride_w, int pad_h, int pad_w);

/// Adjoint of im2col: scatters columns back into a (C, H, W) image,
/// accumulating where patches overlap.
[[nodiscard]] Tensor col2im(const Tensor& columns, std::int64_t channels,
                            std::int64_t height, std::int64_t width, int kh,
                            int kw, int stride_h, int stride_w, int pad_h,
                            int pad_w);

/// Whole-batch im2col: input (N, C, H, W) -> (C*kh*kw, N*oh*ow), with the
/// columns of sample i occupying the contiguous range [i*oh*ow, (i+1)*oh*ow).
/// Lets a convolution over the whole batch run as ONE GEMM per step.
[[nodiscard]] Tensor im2col_batched(const Tensor& input, int kh, int kw,
                                    int stride_h, int stride_w, int pad_h,
                                    int pad_w);

/// Adjoint of im2col_batched: scatters (C*kh*kw, N*oh*ow) columns back into
/// an (N, C, H, W) batch, accumulating where patches overlap.
[[nodiscard]] Tensor col2im_batched(const Tensor& columns, std::int64_t n,
                                    std::int64_t channels, std::int64_t height,
                                    std::int64_t width, int kh, int kw,
                                    int stride_h, int stride_w, int pad_h,
                                    int pad_w);

/// Whole-batch 3-D lowering: input (N, C, D, H, W) ->
/// (C*kd*kh*kw, N*od*oh*ow), sample i's columns contiguous as in
/// im2col_batched.
[[nodiscard]] Tensor vol2col_batched(const Tensor& input, int kd, int kh,
                                     int kw, int stride_d, int stride_h,
                                     int stride_w, int pad_d, int pad_h,
                                     int pad_w);

/// Adjoint of vol2col_batched: scatters columns back into an
/// (N, C, D, H, W) batch.
[[nodiscard]] Tensor col2vol_batched(const Tensor& columns, std::int64_t n,
                                     std::int64_t channels, std::int64_t depth,
                                     std::int64_t height, std::int64_t width,
                                     int kd, int kh, int kw, int stride_d,
                                     int stride_h, int stride_w, int pad_d,
                                     int pad_h, int pad_w);

/// Reorders (N, C, *) into a channel-major matrix (C, N*inner) where inner
/// is the product of the trailing dims. The GEMM-side layout of the batched
/// conv lowering.
[[nodiscard]] Tensor batch_to_channel_major(const Tensor& input);

/// Inverse of batch_to_channel_major: (C, N*inner) -> out_shape, which must
/// be (N, C, *) with matching volume.
[[nodiscard]] Tensor channel_major_to_batch(const Tensor& mat,
                                            const Shape& out_shape);

/// In-place broadcast-add of a per-channel bias (C) over an (N, C, *)
/// batch. The bias path shared by every conv layer's forward.
void add_channel_bias(Tensor& batch, const Tensor& bias);

/// Accumulates per-channel sums of an (N, C, *) batch into `sums` (C) —
/// the bias-gradient reduction shared by every conv layer's backward.
/// Deterministic: channel c sums samples then positions in ascending order
/// regardless of pool size.
void accumulate_channel_sums(const Tensor& batch, Tensor& sums);

/// Zero-pads the last two axes of a rank-2..4 tensor by (pad_h, pad_w) on
/// each side.
[[nodiscard]] Tensor pad2d(const Tensor& input, int pad_h, int pad_w);

/// Crops the last two axes: rows [r0, r0+rows), cols [c0, c0+cols).
[[nodiscard]] Tensor crop2d(const Tensor& input, std::int64_t r0,
                            std::int64_t c0, std::int64_t rows,
                            std::int64_t cols);

/// Average-pools the last two axes with a non-overlapping factor×factor
/// window. Both spatial dims must be divisible by factor.
[[nodiscard]] Tensor avg_pool2d(const Tensor& input, int factor);

/// Sum-pools the last two axes with a non-overlapping factor×factor window.
[[nodiscard]] Tensor sum_pool2d(const Tensor& input, int factor);

/// Nearest-neighbour upsampling of the last two axes by an integer factor.
[[nodiscard]] Tensor upsample_nearest2d(const Tensor& input, int factor);

/// Concatenates rank-N tensors along axis 0. All other dims must match.
[[nodiscard]] Tensor concat0(const std::vector<Tensor>& parts);

/// Stacks rank-N tensors into a rank-(N+1) tensor along a new axis 0.
[[nodiscard]] Tensor stack0(const std::vector<Tensor>& parts);

/// Extracts subtensor `index` along axis 0 of a rank-N tensor (result rank
/// N-1).
[[nodiscard]] Tensor select0(const Tensor& input, std::int64_t index);

}  // namespace mtsr
