#include "src/tensor/tensor_ops.hpp"

#include <algorithm>
#include <cstring>

#include "src/common/check.hpp"
#include "src/common/parallel.hpp"

namespace mtsr {
namespace {

// Splits a rank-2..4 tensor into (batch, rows, cols) where batch collapses
// all leading axes. Used by the 2-D spatial helpers below.
struct Flat3 {
  std::int64_t batch;
  std::int64_t rows;
  std::int64_t cols;
};

Flat3 flatten_spatial(const Shape& s, const char* who) {
  check(s.rank() >= 2 && s.rank() <= 4,
        std::string(who) + " requires a rank-2..4 tensor");
  std::int64_t batch = 1;
  for (int i = 0; i < s.rank() - 2; ++i) batch *= s.dim(i);
  return {batch, s.dim(-2), s.dim(-1)};
}

Shape with_spatial(const Shape& s, std::int64_t rows, std::int64_t cols) {
  std::vector<std::int64_t> dims = s.dims();
  dims[dims.size() - 2] = rows;
  dims[dims.size() - 1] = cols;
  return Shape(dims);
}

// ---- Blocked GEMM kernels --------------------------------------------------
//
// Cache-blocked, pool-parallel kernels behind matmul / matmul_tn /
// matmul_nt. Work is split over contiguous row (or column) chunks of C, so
// every output element is owned by exactly one thread and accumulates over
// k in a fixed ascending order — results are bit-identical for every pool
// size.

constexpr std::int64_t kKc = 256;   // k-tile: A pack of 4*kKc floats (4 KB)
constexpr std::int64_t kNc = 1024;  // j-tile of the B/C row segments (4 KB)

// C[i0:i1, j0:j1] += A[i0:i1, :] * B[:, j0:j1] for row-major A (lda = k),
// B (ldb) and C (ldc). Inner microkernel: 4 packed A rows against a B row
// segment streamed through L1.
void gemm_nn_block(const float* pa, const float* pb, float* pc,
                   std::int64_t k, std::int64_t ldb, std::int64_t ldc,
                   std::int64_t i0, std::int64_t i1, std::int64_t j0,
                   std::int64_t j1) {
  alignas(64) float apack[4 * kKc];
  for (std::int64_t kk0 = 0; kk0 < k; kk0 += kKc) {
    const std::int64_t kk1 = std::min(k, kk0 + kKc);
    std::int64_t i = i0;
    for (; i + 4 <= i1; i += 4) {
      // Pack the 4×kc A tile k-major: the microkernel reads one quad per k.
      for (std::int64_t kk = kk0; kk < kk1; ++kk) {
        float* q = apack + (kk - kk0) * 4;
        q[0] = pa[(i + 0) * k + kk];
        q[1] = pa[(i + 1) * k + kk];
        q[2] = pa[(i + 2) * k + kk];
        q[3] = pa[(i + 3) * k + kk];
      }
      float* c0 = pc + (i + 0) * ldc;
      float* c1 = pc + (i + 1) * ldc;
      float* c2 = pc + (i + 2) * ldc;
      float* c3 = pc + (i + 3) * ldc;
      for (std::int64_t jj0 = j0; jj0 < j1; jj0 += kNc) {
        const std::int64_t jj1 = std::min(j1, jj0 + kNc);
        for (std::int64_t kk = kk0; kk < kk1; ++kk) {
          const float* q = apack + (kk - kk0) * 4;
          const float a0 = q[0], a1 = q[1], a2 = q[2], a3 = q[3];
          if (a0 == 0.f && a1 == 0.f && a2 == 0.f && a3 == 0.f) continue;
          const float* brow = pb + kk * ldb;
          for (std::int64_t j = jj0; j < jj1; ++j) {
            const float bkj = brow[j];
            c0[j] += a0 * bkj;
            c1[j] += a1 * bkj;
            c2[j] += a2 * bkj;
            c3[j] += a3 * bkj;
          }
        }
      }
    }
    for (; i < i1; ++i) {  // remainder rows: plain i-k-j over the tile
      float* crow = pc + i * ldc;
      for (std::int64_t kk = kk0; kk < kk1; ++kk) {
        const float aik = pa[i * k + kk];
        if (aik == 0.f) continue;
        const float* brow = pb + kk * ldb;
        for (std::int64_t j = j0; j < j1; ++j) crow[j] += aik * brow[j];
      }
    }
  }
}

// Parallel driver for C = A * B given row-major operands. Splits over rows
// when C is tall, over columns when C is wide (conv lowering produces
// short-and-wide products), so the pool stays busy either way.
// Minimum work per chunk: wide-enough column blocks keep the vectorised
// inner loop long, tall-enough row blocks amortise the A-tile packing.
constexpr std::int64_t kRowGrain = 16;
constexpr std::int64_t kColGrain = 128;

void gemm_nn(const float* pa, const float* pb, float* pc, std::int64_t m,
             std::int64_t k, std::int64_t n) {
  if (m >= n) {
    parallel_for_grain(m, kRowGrain, [&](std::int64_t i0, std::int64_t i1, int) {
      gemm_nn_block(pa, pb, pc, k, n, n, i0, i1, 0, n);
    });
  } else {
    parallel_for_grain(n, kColGrain, [&](std::int64_t j0, std::int64_t j1, int) {
      gemm_nn_block(pa, pb, pc, k, n, n, 0, m, j0, j1);
    });
  }
}

// C[i0:i1, j0:j1] with C[i,j] = dot(A row i, B row j); both rows are
// contiguous of length k. Fixed four-lane reduction over k (lane l sums
// k ≡ l mod 4, lanes combined in order) — deterministic in k alone.
void gemm_nt_block(const float* pa, const float* pb, float* pc,
                   std::int64_t k, std::int64_t ldc, std::int64_t i0,
                   std::int64_t i1, std::int64_t j0, std::int64_t j1) {
  constexpr std::int64_t kJt = 16;  // B rows kept hot per tile
  for (std::int64_t jj0 = j0; jj0 < j1; jj0 += kJt) {
    const std::int64_t jj1 = std::min(j1, jj0 + kJt);
    for (std::int64_t i = i0; i < i1; ++i) {
      const float* arow = pa + i * k;
      float* crow = pc + i * ldc;
      for (std::int64_t j = jj0; j < jj1; ++j) {
        const float* brow = pb + j * k;
        float acc0 = 0.f, acc1 = 0.f, acc2 = 0.f, acc3 = 0.f;
        std::int64_t kk = 0;
        for (; kk + 4 <= k; kk += 4) {
          acc0 += arow[kk + 0] * brow[kk + 0];
          acc1 += arow[kk + 1] * brow[kk + 1];
          acc2 += arow[kk + 2] * brow[kk + 2];
          acc3 += arow[kk + 3] * brow[kk + 3];
        }
        float acc = (acc0 + acc1) + (acc2 + acc3);
        for (; kk < k; ++kk) acc += arow[kk] * brow[kk];
        crow[j] = acc;
      }
    }
  }
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  check(a.rank() == 2 && b.rank() == 2, "matmul requires rank-2 tensors");
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  check(b.dim(0) == k, "matmul inner dimensions must agree: " +
                           a.shape().to_string() + " * " +
                           b.shape().to_string());
  Tensor c(Shape{m, n});
  gemm_nn(a.data(), b.data(), c.data(), m, k, n);
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  check(a.rank() == 2 && b.rank() == 2, "matmul_tn requires rank-2 tensors");
  const std::int64_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  check(b.dim(0) == k, "matmul_tn inner dimensions must agree");
  // Materialise Aᵀ (O(m·k), negligible next to the O(m·k·n) product) so the
  // core kernel always streams contiguous A rows.
  Tensor at = transpose(a);
  Tensor c(Shape{m, n});
  gemm_nn(at.data(), b.data(), c.data(), m, k, n);
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  check(a.rank() == 2 && b.rank() == 2, "matmul_nt requires rank-2 tensors");
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  check(b.dim(1) == k, "matmul_nt inner dimensions must agree");
  Tensor c(Shape{m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  if (m >= n) {
    parallel_for_grain(m, kRowGrain, [&](std::int64_t i0, std::int64_t i1, int) {
      gemm_nt_block(pa, pb, pc, k, n, i0, i1, 0, n);
    });
  } else {
    parallel_for_grain(n, kRowGrain, [&](std::int64_t j0, std::int64_t j1, int) {
      gemm_nt_block(pa, pb, pc, k, n, 0, m, j0, j1);
    });
  }
  return c;
}

Tensor transpose(const Tensor& a) {
  check(a.rank() == 2, "transpose requires a rank-2 tensor");
  const std::int64_t m = a.dim(0), n = a.dim(1);
  Tensor out(Shape{n, m});
  const float* pi = a.data();
  float* po = out.data();
  // 32×32 tiles keep both the read and the strided write streams in L1.
  constexpr std::int64_t kTile = 32;
  parallel_for_grain(n, kTile, [&](std::int64_t r0, std::int64_t r1, int) {
    for (std::int64_t jt = r0; jt < r1; jt += kTile) {
      const std::int64_t jmax = std::min(r1, jt + kTile);
      for (std::int64_t it = 0; it < m; it += kTile) {
        const std::int64_t imax = std::min(m, it + kTile);
        for (std::int64_t j = jt; j < jmax; ++j) {
          for (std::int64_t i = it; i < imax; ++i) {
            po[j * m + i] = pi[i * n + j];
          }
        }
      }
    }
  });
  return out;
}

Tensor im2col(const Tensor& input, int kh, int kw, int stride_h, int stride_w,
              int pad_h, int pad_w) {
  check(input.rank() == 3, "im2col expects input of shape (C, H, W)");
  check(kh > 0 && kw > 0 && stride_h > 0 && stride_w > 0 && pad_h >= 0 &&
            pad_w >= 0,
        "im2col parameters out of range");
  const std::int64_t c = input.dim(0), h = input.dim(1), w = input.dim(2);
  const std::int64_t oh = (h + 2 * pad_h - kh) / stride_h + 1;
  const std::int64_t ow = (w + 2 * pad_w - kw) / stride_w + 1;
  check(oh > 0 && ow > 0, "im2col produces empty output for these params");

  Tensor out(Shape{c * kh * kw, oh * ow});
  float* po = out.data();
  const float* pi = input.data();
  for (std::int64_t ch = 0; ch < c; ++ch) {
    for (int ky = 0; ky < kh; ++ky) {
      for (int kx = 0; kx < kw; ++kx) {
        const std::int64_t row = (ch * kh + ky) * kw + kx;
        float* orow = po + row * oh * ow;
        for (std::int64_t oy = 0; oy < oh; ++oy) {
          const std::int64_t iy = oy * stride_h - pad_h + ky;
          if (iy < 0 || iy >= h) {
            std::fill(orow + oy * ow, orow + (oy + 1) * ow, 0.f);
            continue;
          }
          const float* irow = pi + (ch * h + iy) * w;
          for (std::int64_t ox = 0; ox < ow; ++ox) {
            const std::int64_t ix = ox * stride_w - pad_w + kx;
            orow[oy * ow + ox] = (ix >= 0 && ix < w) ? irow[ix] : 0.f;
          }
        }
      }
    }
  }
  return out;
}

Tensor col2im(const Tensor& columns, std::int64_t channels,
              std::int64_t height, std::int64_t width, int kh, int kw,
              int stride_h, int stride_w, int pad_h, int pad_w) {
  check(columns.rank() == 2, "col2im expects rank-2 columns");
  const std::int64_t oh = (height + 2 * pad_h - kh) / stride_h + 1;
  const std::int64_t ow = (width + 2 * pad_w - kw) / stride_w + 1;
  check(columns.dim(0) == channels * kh * kw,
        "col2im columns row count mismatch");
  check(columns.dim(1) == oh * ow, "col2im columns col count mismatch");

  Tensor out(Shape{channels, height, width});
  float* po = out.data();
  const float* pc = columns.data();
  for (std::int64_t ch = 0; ch < channels; ++ch) {
    for (int ky = 0; ky < kh; ++ky) {
      for (int kx = 0; kx < kw; ++kx) {
        const std::int64_t row = (ch * kh + ky) * kw + kx;
        const float* crow = pc + row * oh * ow;
        for (std::int64_t oy = 0; oy < oh; ++oy) {
          const std::int64_t iy = oy * stride_h - pad_h + ky;
          if (iy < 0 || iy >= height) continue;
          float* orow = po + (ch * height + iy) * width;
          for (std::int64_t ox = 0; ox < ow; ++ox) {
            const std::int64_t ix = ox * stride_w - pad_w + kx;
            if (ix >= 0 && ix < width) orow[ix] += crow[oy * ow + ox];
          }
        }
      }
    }
  }
  return out;
}

Tensor im2col_batched(const Tensor& input, int kh, int kw, int stride_h,
                      int stride_w, int pad_h, int pad_w) {
  check(input.rank() == 4, "im2col_batched expects input of shape (N, C, H, W)");
  check(kh > 0 && kw > 0 && stride_h > 0 && stride_w > 0 && pad_h >= 0 &&
            pad_w >= 0,
        "im2col_batched parameters out of range");
  const std::int64_t n = input.dim(0), c = input.dim(1), h = input.dim(2),
                     w = input.dim(3);
  const std::int64_t oh = (h + 2 * pad_h - kh) / stride_h + 1;
  const std::int64_t ow = (w + 2 * pad_w - kw) / stride_w + 1;
  check(oh > 0 && ow > 0, "im2col_batched produces empty output");

  Tensor out(Shape{c * kh * kw, n * oh * ow});
  float* po = out.data();
  const float* pi = input.data();
  // Each output row is contiguous over all samples; rows are independent.
  parallel_for(c * kh * kw, [&](std::int64_t row) {
    const std::int64_t ch = row / (kh * kw);
    const std::int64_t rem = row % (kh * kw);
    const int ky = static_cast<int>(rem / kw);
    const int kx = static_cast<int>(rem % kw);
    float* orow = po + row * n * oh * ow;
    for (std::int64_t i = 0; i < n; ++i) {
      const float* img = pi + (i * c + ch) * h * w;
      float* oseg = orow + i * oh * ow;
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        const std::int64_t iy = oy * stride_h - pad_h + ky;
        if (iy < 0 || iy >= h) {
          std::fill(oseg + oy * ow, oseg + (oy + 1) * ow, 0.f);
          continue;
        }
        const float* irow = img + iy * w;
        for (std::int64_t ox = 0; ox < ow; ++ox) {
          const std::int64_t ix = ox * stride_w - pad_w + kx;
          oseg[oy * ow + ox] = (ix >= 0 && ix < w) ? irow[ix] : 0.f;
        }
      }
    }
  });
  return out;
}

Tensor col2im_batched(const Tensor& columns, std::int64_t n,
                      std::int64_t channels, std::int64_t height,
                      std::int64_t width, int kh, int kw, int stride_h,
                      int stride_w, int pad_h, int pad_w) {
  check(columns.rank() == 2, "col2im_batched expects rank-2 columns");
  const std::int64_t oh = (height + 2 * pad_h - kh) / stride_h + 1;
  const std::int64_t ow = (width + 2 * pad_w - kw) / stride_w + 1;
  check(columns.dim(0) == channels * kh * kw,
        "col2im_batched columns row count mismatch");
  check(columns.dim(1) == n * oh * ow,
        "col2im_batched columns col count mismatch");

  Tensor out(Shape{n, channels, height, width});
  float* po = out.data();
  const float* pc = columns.data();
  // Samples write disjoint output chunks; scatter order within a sample is
  // fixed, so results are pool-size independent.
  parallel_for(n, [&](std::int64_t i) {
    float* img_base = po + i * channels * height * width;
    for (std::int64_t ch = 0; ch < channels; ++ch) {
      for (int ky = 0; ky < kh; ++ky) {
        for (int kx = 0; kx < kw; ++kx) {
          const std::int64_t row = (ch * kh + ky) * kw + kx;
          const float* crow = pc + row * n * oh * ow + i * oh * ow;
          for (std::int64_t oy = 0; oy < oh; ++oy) {
            const std::int64_t iy = oy * stride_h - pad_h + ky;
            if (iy < 0 || iy >= height) continue;
            float* orow = img_base + (ch * height + iy) * width;
            for (std::int64_t ox = 0; ox < ow; ++ox) {
              const std::int64_t ix = ox * stride_w - pad_w + kx;
              if (ix >= 0 && ix < width) orow[ix] += crow[oy * ow + ox];
            }
          }
        }
      }
    }
  });
  return out;
}

Tensor vol2col_batched(const Tensor& input, int kd, int kh, int kw,
                       int stride_d, int stride_h, int stride_w, int pad_d,
                       int pad_h, int pad_w) {
  check(input.rank() == 5,
        "vol2col_batched expects input of shape (N, C, D, H, W)");
  check(kd > 0 && kh > 0 && kw > 0 && stride_d > 0 && stride_h > 0 &&
            stride_w > 0 && pad_d >= 0 && pad_h >= 0 && pad_w >= 0,
        "vol2col_batched parameters out of range");
  const std::int64_t n = input.dim(0), c = input.dim(1), d = input.dim(2),
                     h = input.dim(3), w = input.dim(4);
  const std::int64_t od = (d + 2 * pad_d - kd) / stride_d + 1;
  const std::int64_t oh = (h + 2 * pad_h - kh) / stride_h + 1;
  const std::int64_t ow = (w + 2 * pad_w - kw) / stride_w + 1;
  check(od > 0 && oh > 0 && ow > 0, "vol2col_batched produces empty output");

  Tensor out(Shape{c * kd * kh * kw, n * od * oh * ow});
  float* po = out.data();
  const float* pi = input.data();
  const std::int64_t taps = static_cast<std::int64_t>(kd) * kh * kw;
  parallel_for(c * taps, [&](std::int64_t row) {
    const std::int64_t ch = row / taps;
    std::int64_t rem = row % taps;
    const int kz = static_cast<int>(rem / (kh * kw));
    rem %= kh * kw;
    const int ky = static_cast<int>(rem / kw);
    const int kx = static_cast<int>(rem % kw);
    float* orow = po + row * n * od * oh * ow;
    for (std::int64_t i = 0; i < n; ++i) {
      const float* vol = pi + (i * c + ch) * d * h * w;
      float* oseg = orow + i * od * oh * ow;
      for (std::int64_t oz = 0; oz < od; ++oz) {
        const std::int64_t iz = oz * stride_d - pad_d + kz;
        if (iz < 0 || iz >= d) {
          std::fill(oseg + oz * oh * ow, oseg + (oz + 1) * oh * ow, 0.f);
          continue;
        }
        for (std::int64_t oy = 0; oy < oh; ++oy) {
          const std::int64_t iy = oy * stride_h - pad_h + ky;
          float* oline = oseg + (oz * oh + oy) * ow;
          if (iy < 0 || iy >= h) {
            std::fill(oline, oline + ow, 0.f);
            continue;
          }
          const float* irow = vol + (iz * h + iy) * w;
          for (std::int64_t ox = 0; ox < ow; ++ox) {
            const std::int64_t ix = ox * stride_w - pad_w + kx;
            oline[ox] = (ix >= 0 && ix < w) ? irow[ix] : 0.f;
          }
        }
      }
    }
  });
  return out;
}

Tensor col2vol_batched(const Tensor& columns, std::int64_t n,
                       std::int64_t channels, std::int64_t depth,
                       std::int64_t height, std::int64_t width, int kd, int kh,
                       int kw, int stride_d, int stride_h, int stride_w,
                       int pad_d, int pad_h, int pad_w) {
  check(columns.rank() == 2, "col2vol_batched expects rank-2 columns");
  const std::int64_t od = (depth + 2 * pad_d - kd) / stride_d + 1;
  const std::int64_t oh = (height + 2 * pad_h - kh) / stride_h + 1;
  const std::int64_t ow = (width + 2 * pad_w - kw) / stride_w + 1;
  const std::int64_t taps = static_cast<std::int64_t>(kd) * kh * kw;
  check(columns.dim(0) == channels * taps,
        "col2vol_batched columns row count mismatch");
  check(columns.dim(1) == n * od * oh * ow,
        "col2vol_batched columns col count mismatch");

  Tensor out(Shape{n, channels, depth, height, width});
  float* po = out.data();
  const float* pc = columns.data();
  parallel_for(n, [&](std::int64_t i) {
    float* vol_base = po + i * channels * depth * height * width;
    for (std::int64_t ch = 0; ch < channels; ++ch) {
      for (int kz = 0; kz < kd; ++kz) {
        for (int ky = 0; ky < kh; ++ky) {
          for (int kx = 0; kx < kw; ++kx) {
            const std::int64_t row =
                ((ch * kd + kz) * kh + ky) * kw + kx;
            const float* crow =
                pc + row * n * od * oh * ow + i * od * oh * ow;
            for (std::int64_t oz = 0; oz < od; ++oz) {
              const std::int64_t iz = oz * stride_d - pad_d + kz;
              if (iz < 0 || iz >= depth) continue;
              for (std::int64_t oy = 0; oy < oh; ++oy) {
                const std::int64_t iy = oy * stride_h - pad_h + ky;
                if (iy < 0 || iy >= height) continue;
                float* orow =
                    vol_base + ((ch * depth + iz) * height + iy) * width;
                const float* cline = crow + (oz * oh + oy) * ow;
                for (std::int64_t ox = 0; ox < ow; ++ox) {
                  const std::int64_t ix = ox * stride_w - pad_w + kx;
                  if (ix >= 0 && ix < width) orow[ix] += cline[ox];
                }
              }
            }
          }
        }
      }
    }
  });
  return out;
}

Tensor batch_to_channel_major(const Tensor& input) {
  check(input.rank() >= 3, "batch_to_channel_major expects (N, C, ...) input");
  const std::int64_t n = input.dim(0), c = input.dim(1);
  std::int64_t inner = 1;
  for (int i = 2; i < input.rank(); ++i) inner *= input.dim(i);
  Tensor out(Shape{c, n * inner});
  const float* pi = input.data();
  float* po = out.data();
  parallel_for(c, [&](std::int64_t ch) {
    for (std::int64_t i = 0; i < n; ++i) {
      std::memcpy(po + (ch * n + i) * inner, pi + (i * c + ch) * inner,
                  static_cast<std::size_t>(inner) * sizeof(float));
    }
  });
  return out;
}

Tensor channel_major_to_batch(const Tensor& mat, const Shape& out_shape) {
  check(mat.rank() == 2, "channel_major_to_batch expects a rank-2 matrix");
  check(out_shape.rank() >= 3, "channel_major_to_batch needs (N, C, ...) out");
  const std::int64_t n = out_shape.dim(0), c = out_shape.dim(1);
  std::int64_t inner = 1;
  for (int i = 2; i < out_shape.rank(); ++i) inner *= out_shape.dim(i);
  check(mat.dim(0) == c && mat.dim(1) == n * inner,
        "channel_major_to_batch shape mismatch");
  Tensor out(out_shape);
  const float* pi = mat.data();
  float* po = out.data();
  parallel_for(n, [&](std::int64_t i) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      std::memcpy(po + (i * c + ch) * inner, pi + (ch * n + i) * inner,
                  static_cast<std::size_t>(inner) * sizeof(float));
    }
  });
  return out;
}

void add_channel_bias(Tensor& batch, const Tensor& bias) {
  check(batch.rank() >= 3, "add_channel_bias expects (N, C, ...) input");
  const std::int64_t n = batch.dim(0), c = batch.dim(1);
  check(bias.rank() == 1 && bias.dim(0) == c,
        "add_channel_bias bias shape mismatch");
  std::int64_t inner = 1;
  for (int i = 2; i < batch.rank(); ++i) inner *= batch.dim(i);
  float* po = batch.data();
  const float* pb = bias.data();
  parallel_for(n * c, [&](std::int64_t i) {
    const float b = pb[i % c];
    float* seg = po + i * inner;
    for (std::int64_t p = 0; p < inner; ++p) seg[p] += b;
  });
}

void accumulate_channel_sums(const Tensor& batch, Tensor& sums) {
  check(batch.rank() >= 3, "accumulate_channel_sums expects (N, C, ...)");
  const std::int64_t n = batch.dim(0), c = batch.dim(1);
  check(sums.rank() == 1 && sums.dim(0) == c,
        "accumulate_channel_sums sums shape mismatch");
  std::int64_t inner = 1;
  for (int i = 2; i < batch.rank(); ++i) inner *= batch.dim(i);
  const float* pi = batch.data();
  float* ps = sums.data();
  parallel_for(c, [&](std::int64_t ch) {
    double acc = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      const float* seg = pi + (i * c + ch) * inner;
      for (std::int64_t p = 0; p < inner; ++p) acc += seg[p];
    }
    ps[ch] += static_cast<float>(acc);
  });
}

Tensor pad2d(const Tensor& input, int pad_h, int pad_w) {
  check(pad_h >= 0 && pad_w >= 0, "pad2d requires non-negative padding");
  const Flat3 f = flatten_spatial(input.shape(), "pad2d");
  const std::int64_t orows = f.rows + 2 * pad_h;
  const std::int64_t ocols = f.cols + 2 * pad_w;
  Tensor out(with_spatial(input.shape(), orows, ocols));
  const float* pi = input.data();
  float* po = out.data();
  for (std::int64_t b = 0; b < f.batch; ++b) {
    for (std::int64_t r = 0; r < f.rows; ++r) {
      std::memcpy(po + (b * orows + r + pad_h) * ocols + pad_w,
                  pi + (b * f.rows + r) * f.cols,
                  static_cast<std::size_t>(f.cols) * sizeof(float));
    }
  }
  return out;
}

Tensor crop2d(const Tensor& input, std::int64_t r0, std::int64_t c0,
              std::int64_t rows, std::int64_t cols) {
  const Flat3 f = flatten_spatial(input.shape(), "crop2d");
  check(r0 >= 0 && c0 >= 0 && rows > 0 && cols > 0 && r0 + rows <= f.rows &&
            c0 + cols <= f.cols,
        "crop2d window out of range");
  Tensor out(with_spatial(input.shape(), rows, cols));
  const float* pi = input.data();
  float* po = out.data();
  for (std::int64_t b = 0; b < f.batch; ++b) {
    for (std::int64_t r = 0; r < rows; ++r) {
      std::memcpy(po + (b * rows + r) * cols,
                  pi + (b * f.rows + r0 + r) * f.cols + c0,
                  static_cast<std::size_t>(cols) * sizeof(float));
    }
  }
  return out;
}

namespace {

Tensor pool2d(const Tensor& input, int factor, bool average) {
  check(factor > 0, "pool2d requires factor > 0");
  const Flat3 f = flatten_spatial(input.shape(),
                                  average ? "avg_pool2d" : "sum_pool2d");
  check(f.rows % factor == 0 && f.cols % factor == 0,
        "pool2d spatial dims must be divisible by factor");
  const std::int64_t orows = f.rows / factor;
  const std::int64_t ocols = f.cols / factor;
  Tensor out(with_spatial(input.shape(), orows, ocols));
  const float* pi = input.data();
  float* po = out.data();
  const float scale = average ? 1.f / (static_cast<float>(factor) * factor)
                              : 1.f;
  parallel_for(f.batch, [&](std::int64_t b) {
    for (std::int64_t r = 0; r < orows; ++r) {
      for (std::int64_t c = 0; c < ocols; ++c) {
        double acc = 0.0;
        for (int dr = 0; dr < factor; ++dr) {
          const float* irow =
              pi + (b * f.rows + r * factor + dr) * f.cols + c * factor;
          for (int dc = 0; dc < factor; ++dc) acc += irow[dc];
        }
        po[(b * orows + r) * ocols + c] = static_cast<float>(acc) * scale;
      }
    }
  });
  return out;
}

}  // namespace

Tensor avg_pool2d(const Tensor& input, int factor) {
  return pool2d(input, factor, /*average=*/true);
}

Tensor sum_pool2d(const Tensor& input, int factor) {
  return pool2d(input, factor, /*average=*/false);
}

Tensor upsample_nearest2d(const Tensor& input, int factor) {
  check(factor > 0, "upsample_nearest2d requires factor > 0");
  const Flat3 f = flatten_spatial(input.shape(), "upsample_nearest2d");
  const std::int64_t orows = f.rows * factor;
  const std::int64_t ocols = f.cols * factor;
  Tensor out(with_spatial(input.shape(), orows, ocols));
  const float* pi = input.data();
  float* po = out.data();
  parallel_for(f.batch, [&](std::int64_t b) {
    for (std::int64_t r = 0; r < orows; ++r) {
      const float* irow = pi + (b * f.rows + r / factor) * f.cols;
      float* orow = po + (b * orows + r) * ocols;
      for (std::int64_t c = 0; c < ocols; ++c) orow[c] = irow[c / factor];
    }
  });
  return out;
}

Tensor concat0(const std::vector<Tensor>& parts) {
  check(!parts.empty(), "concat0 requires at least one tensor");
  std::int64_t total0 = 0;
  for (const Tensor& p : parts) {
    check(p.rank() == parts.front().rank(), "concat0 rank mismatch");
    for (int ax = 1; ax < p.rank(); ++ax) {
      check(p.dim(ax) == parts.front().dim(ax), "concat0 trailing dim mismatch");
    }
    total0 += p.dim(0);
  }
  std::vector<std::int64_t> dims = parts.front().shape().dims();
  dims[0] = total0;
  Tensor out{Shape(dims)};
  float* po = out.data();
  for (const Tensor& p : parts) {
    std::memcpy(po, p.data(), static_cast<std::size_t>(p.size()) * sizeof(float));
    po += p.size();
  }
  return out;
}

Tensor stack0(const std::vector<Tensor>& parts) {
  check(!parts.empty(), "stack0 requires at least one tensor");
  for (const Tensor& p : parts) {
    check(p.shape() == parts.front().shape(), "stack0 shape mismatch");
  }
  std::vector<std::int64_t> dims = parts.front().shape().dims();
  dims.insert(dims.begin(), static_cast<std::int64_t>(parts.size()));
  Tensor out{Shape(dims)};
  float* po = out.data();
  for (const Tensor& p : parts) {
    std::memcpy(po, p.data(), static_cast<std::size_t>(p.size()) * sizeof(float));
    po += p.size();
  }
  return out;
}

Tensor select0(const Tensor& input, std::int64_t index) {
  check(input.rank() >= 2, "select0 requires rank >= 2");
  check(index >= 0 && index < input.dim(0), "select0 index out of range");
  std::vector<std::int64_t> dims(input.shape().dims().begin() + 1,
                                 input.shape().dims().end());
  Shape out_shape(dims);
  const std::int64_t chunk = out_shape.volume();
  Tensor out(out_shape);
  std::memcpy(out.data(), input.data() + index * chunk,
              static_cast<std::size_t>(chunk) * sizeof(float));
  return out;
}

}  // namespace mtsr
