#include "src/tensor/tensor_ops.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string_view>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

#include "src/common/check.hpp"
#include "src/common/parallel.hpp"
#include "src/common/workspace.hpp"
#include "src/tensor/quant.hpp"

namespace mtsr {
namespace {

// Splits a rank-2..4 tensor into (batch, rows, cols) where batch collapses
// all leading axes. Used by the 2-D spatial helpers below.
struct Flat3 {
  std::int64_t batch;
  std::int64_t rows;
  std::int64_t cols;
};

Flat3 flatten_spatial(const Shape& s, const char* who) {
  check(s.rank() >= 2 && s.rank() <= 4,
        std::string(who) + " requires a rank-2..4 tensor");
  std::int64_t batch = 1;
  for (int i = 0; i < s.rank() - 2; ++i) batch *= s.dim(i);
  return {batch, s.dim(-2), s.dim(-1)};
}

Shape with_spatial(const Shape& s, std::int64_t rows, std::int64_t cols) {
  std::vector<std::int64_t> dims = s.dims();
  dims[dims.size() - 2] = rows;
  dims[dims.size() - 1] = cols;
  return Shape(dims);
}

// ---- Packed-B blocked GEMM -------------------------------------------------
//
// C = A * B runs over (k-tile, j-tile) panels of B packed into Workspace
// scratch: each panel is a kKc×kNc tile copied once into a contiguous,
// cache-line-aligned span, then streamed through L1/L2 by every row group
// that needs it. Tall products (m >= n) pack all panels up front and share
// them across the pool's row chunks; wide products (the conv lowerings:
// short A, enormous B) split over panel-aligned column chunks, each packing
// its own panels exactly once.
//
// Work is split so every output element is owned by exactly one thread and
// accumulates over k in a fixed ascending order — results are bit-identical
// for every pool size.

constexpr std::int64_t kKc = 256;  // k rows per panel (A quad pack: 4 KB)
constexpr std::int64_t kNc = 512;  // j columns per panel (panel: 512 KB, L2-resident)

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

// Copies B[kk0:kk1, j0:j1] (row-major, leading dimension ldb) into `panel`
// with a fixed row stride of kNc.
void pack_b_panel(const float* pb, std::int64_t ldb, std::int64_t kk0,
                  std::int64_t kk1, std::int64_t j0, std::int64_t j1,
                  float* panel) {
  const std::size_t bytes =
      static_cast<std::size_t>(j1 - j0) * sizeof(float);
  for (std::int64_t kk = kk0; kk < kk1; ++kk) {
    std::memcpy(panel + (kk - kk0) * kNc, pb + kk * ldb + j0, bytes);
  }
}

// Register-tile width of the portable microkernel: a 4×16 C tile is held
// in registers across the whole k-tile, so C is loaded/stored once per
// panel instead of once per k step.
constexpr std::int64_t kMr = 16;

// SIMD dispatch of the float panel microkernel: the hand-scheduled AVX-512
// (8×32 register tile) and AVX2 (6×16) kernels below are selected once per
// process by CPUID, capped by the MTSR_SIMD environment variable; the
// portable generic kernel is the fallback everywhere else. The previous
// compiler-scheduled target_clones kernel is kept reachable — only through
// the forced-kernel seam, under the level name "clones" — so the benchmark
// can measure old vs new in the same binary. target_clones is disabled
// under sanitizers (ifunc resolution order) and on non-x86 targets, where
// "clones" degrades to the generic kernel.
#if defined(__x86_64__) && defined(__GNUC__) && \
    !defined(__SANITIZE_ADDRESS__) && !defined(__SANITIZE_THREAD__)
#define MTSR_SIMD_CLONES \
  __attribute__((target_clones("avx512f", "avx2", "default")))
#else
#define MTSR_SIMD_CLONES
#endif

#if defined(__GNUC__)
#define MTSR_ALWAYS_INLINE __attribute__((always_inline)) inline
#else
#define MTSR_ALWAYS_INLINE inline
#endif

// C[i0:i1, j0:j1] += A[i0:i1, kk0:kk1] * panel, where `panel` holds B rows
// kk0:kk1 for absolute columns [j0, j1) (row stride kNc). Portable
// microkernel body: a 4×kMr C tile accumulated in registers against packed
// A quads and panel rows streamed through L1. Per output element the
// accumulation is the plain ascending-k sequence (the registers only hold
// what memory held before), so results stay bit-identical across pool
// sizes AND match the unblocked i-k-j order exactly. always_inline so the
// target_clones wrapper below compiles one copy per ISA clone.
MTSR_ALWAYS_INLINE void gemm_nn_panel_body(
    const float* pa, std::int64_t lda, const float* panel, float* pc,
    std::int64_t ldc, std::int64_t i0, std::int64_t i1, std::int64_t kk0,
    std::int64_t kk1, std::int64_t j0, std::int64_t j1) {
  alignas(64) float apack[4 * kKc];
  const std::int64_t width = j1 - j0;
  std::int64_t i = i0;
  for (; i + 4 <= i1; i += 4) {
    // Pack the 4×kc A tile k-major: the microkernel reads one quad per k.
    for (std::int64_t kk = kk0; kk < kk1; ++kk) {
      float* q = apack + (kk - kk0) * 4;
      q[0] = pa[(i + 0) * lda + kk];
      q[1] = pa[(i + 1) * lda + kk];
      q[2] = pa[(i + 2) * lda + kk];
      q[3] = pa[(i + 3) * lda + kk];
    }
    float* c0 = pc + (i + 0) * ldc + j0;
    float* c1 = pc + (i + 1) * ldc + j0;
    float* c2 = pc + (i + 2) * ldc + j0;
    float* c3 = pc + (i + 3) * ldc + j0;
    std::int64_t j = 0;
    for (; j + kMr <= width; j += kMr) {
      alignas(64) float acc0[kMr], acc1[kMr], acc2[kMr], acc3[kMr];
      for (int t = 0; t < kMr; ++t) {
        acc0[t] = c0[j + t];
        acc1[t] = c1[j + t];
        acc2[t] = c2[j + t];
        acc3[t] = c3[j + t];
      }
      for (std::int64_t kk = kk0; kk < kk1; ++kk) {
        const float* q = apack + (kk - kk0) * 4;
        const float a0 = q[0], a1 = q[1], a2 = q[2], a3 = q[3];
        if (a0 == 0.f && a1 == 0.f && a2 == 0.f && a3 == 0.f) continue;
        const float* b = panel + (kk - kk0) * kNc + j;
        for (int t = 0; t < kMr; ++t) {
          const float bt = b[t];
          acc0[t] += a0 * bt;
          acc1[t] += a1 * bt;
          acc2[t] += a2 * bt;
          acc3[t] += a3 * bt;
        }
      }
      for (int t = 0; t < kMr; ++t) {
        c0[j + t] = acc0[t];
        c1[j + t] = acc1[t];
        c2[j + t] = acc2[t];
        c3[j + t] = acc3[t];
      }
    }
    for (; j < width; ++j) {  // tail columns: same order, registers per row
      float s0 = c0[j], s1 = c1[j], s2 = c2[j], s3 = c3[j];
      for (std::int64_t kk = kk0; kk < kk1; ++kk) {
        const float* q = apack + (kk - kk0) * 4;
        const float bt = panel[(kk - kk0) * kNc + j];
        s0 += q[0] * bt;
        s1 += q[1] * bt;
        s2 += q[2] * bt;
        s3 += q[3] * bt;
      }
      c0[j] = s0;
      c1[j] = s1;
      c2[j] = s2;
      c3[j] = s3;
    }
  }
  for (; i < i1; ++i) {  // remainder rows: plain i-k-j over the panel
    float* crow = pc + i * ldc + j0;
    for (std::int64_t kk = kk0; kk < kk1; ++kk) {
      const float aik = pa[i * lda + kk];
      if (aik == 0.f) continue;
      const float* brow = panel + (kk - kk0) * kNc;
      for (std::int64_t j = 0; j < width; ++j) crow[j] += aik * brow[j];
    }
  }
}

// Portable fallback kernel — also the "scalar"/"sse2" forced levels.
void gemm_nn_panel_generic(const float* pa, std::int64_t lda,
                           const float* panel, float* pc, std::int64_t ldc,
                           std::int64_t i0, std::int64_t i1, std::int64_t kk0,
                           std::int64_t kk1, std::int64_t j0,
                           std::int64_t j1) {
  gemm_nn_panel_body(pa, lda, panel, pc, ldc, i0, i1, kk0, kk1, j0, j1);
}

// The pre-hand-scheduling kernel, compiler-vectorised per ISA by
// target_clones: the benchmark baseline the speedup claims are measured
// against (reachable only through matmul_into_forced_kernel("clones")).
MTSR_SIMD_CLONES
void gemm_nn_panel_clones(const float* pa, std::int64_t lda,
                          const float* panel, float* pc, std::int64_t ldc,
                          std::int64_t i0, std::int64_t i1, std::int64_t kk0,
                          std::int64_t kk1, std::int64_t j0,
                          std::int64_t j1) {
  gemm_nn_panel_body(pa, lda, panel, pc, ldc, i0, i1, kk0, kk1, j0, j1);
}

#if defined(__x86_64__) && defined(__GNUC__)

// Hand-scheduled AVX-512 panel microkernel: an 8×32 C tile — 16 zmm
// accumulators, two 16-lane B loads and eight broadcast-FMAs per k step —
// held in registers across the whole k-tile, with the B panel prefetched
// four k rows ahead of use. Every output element accumulates as the plain
// ascending-k fold of single-rounded FMAs (no zero-skip, no
// reassociation), so the per-element result is independent of row-group
// phase, column-tile position, and chunk geometry: bit-identity across
// pool sizes holds by construction. Column tails run the identical FMA
// sequence through masked loads/stores.
__attribute__((target("avx512f"))) void gemm_nn_panel_avx512(
    const float* pa, std::int64_t lda, const float* panel, float* pc,
    std::int64_t ldc, std::int64_t i0, std::int64_t i1, std::int64_t kk0,
    std::int64_t kk1, std::int64_t j0, std::int64_t j1) {
  alignas(64) float apack[8 * kKc];
  const std::int64_t width = j1 - j0;
  const std::int64_t kc = kk1 - kk0;
  std::int64_t i = i0;
  for (; i + 8 <= i1; i += 8) {
    // Pack the 8×kc A tile k-major: one 8-float quad read per k step.
    for (std::int64_t kk = 0; kk < kc; ++kk) {
      float* q = apack + kk * 8;
      const float* acol = pa + kk0 + kk;
      q[0] = acol[(i + 0) * lda];
      q[1] = acol[(i + 1) * lda];
      q[2] = acol[(i + 2) * lda];
      q[3] = acol[(i + 3) * lda];
      q[4] = acol[(i + 4) * lda];
      q[5] = acol[(i + 5) * lda];
      q[6] = acol[(i + 6) * lda];
      q[7] = acol[(i + 7) * lda];
    }
    std::int64_t j = 0;
    for (; j + 32 <= width; j += 32) {
      const float* bp = panel + j;
      float* cp = pc + i * ldc + j0 + j;
      __m512 acc[8][2];
      for (int r = 0; r < 8; ++r) {
        acc[r][0] = _mm512_loadu_ps(cp + r * ldc);
        acc[r][1] = _mm512_loadu_ps(cp + r * ldc + 16);
      }
      for (std::int64_t kk = 0; kk < kc; ++kk) {
        const float* brow = bp + kk * kNc;
        _mm_prefetch(reinterpret_cast<const char*>(brow + 4 * kNc),
                     _MM_HINT_T0);
        const __m512 b0 = _mm512_loadu_ps(brow);
        const __m512 b1 = _mm512_loadu_ps(brow + 16);
        const float* q = apack + kk * 8;
        for (int r = 0; r < 8; ++r) {
          const __m512 av = _mm512_set1_ps(q[r]);
          acc[r][0] = _mm512_fmadd_ps(av, b0, acc[r][0]);
          acc[r][1] = _mm512_fmadd_ps(av, b1, acc[r][1]);
        }
      }
      for (int r = 0; r < 8; ++r) {
        _mm512_storeu_ps(cp + r * ldc, acc[r][0]);
        _mm512_storeu_ps(cp + r * ldc + 16, acc[r][1]);
      }
    }
    for (; j < width; j += 16) {  // 16-wide tail, masked on the last block
      const std::int64_t rem = width - j;
      const __mmask16 mask =
          rem >= 16 ? static_cast<__mmask16>(0xffff)
                    : static_cast<__mmask16>((1u << rem) - 1u);
      const float* bp = panel + j;
      float* cp = pc + i * ldc + j0 + j;
      __m512 acc[8];
      for (int r = 0; r < 8; ++r) {
        acc[r] = _mm512_maskz_loadu_ps(mask, cp + r * ldc);
      }
      for (std::int64_t kk = 0; kk < kc; ++kk) {
        const __m512 b = _mm512_maskz_loadu_ps(mask, bp + kk * kNc);
        const float* q = apack + kk * 8;
        for (int r = 0; r < 8; ++r) {
          acc[r] = _mm512_fmadd_ps(_mm512_set1_ps(q[r]), b, acc[r]);
        }
      }
      for (int r = 0; r < 8; ++r) {
        _mm512_mask_storeu_ps(cp + r * ldc, mask, acc[r]);
      }
    }
  }
  for (; i < i1; ++i) {  // remainder rows: same per-element FMA fold
    const float* arow = pa + i * lda + kk0;
    float* crow = pc + i * ldc + j0;
    for (std::int64_t j = 0; j < width; j += 16) {
      const std::int64_t rem = width - j;
      const __mmask16 mask =
          rem >= 16 ? static_cast<__mmask16>(0xffff)
                    : static_cast<__mmask16>((1u << rem) - 1u);
      __m512 acc = _mm512_maskz_loadu_ps(mask, crow + j);
      for (std::int64_t kk = 0; kk < kc; ++kk) {
        const __m512 b = _mm512_maskz_loadu_ps(mask, panel + kk * kNc + j);
        acc = _mm512_fmadd_ps(_mm512_set1_ps(arow[kk]), b, acc);
      }
      _mm512_mask_storeu_ps(crow + j, mask, acc);
    }
  }
}

// Hand-scheduled AVX2 panel microkernel: a 6×16 C tile (12 ymm
// accumulators, two B loads + six broadcast-FMAs per k step; 15 of 16 ymm
// in flight). Tails drop to one 8-lane vector, then scalar std::fmaf —
// the identical single-rounded ascending-k fold per element, so the same
// bit-identity argument as the AVX-512 kernel applies.
__attribute__((target("avx2,fma"))) void gemm_nn_panel_avx2(
    const float* pa, std::int64_t lda, const float* panel, float* pc,
    std::int64_t ldc, std::int64_t i0, std::int64_t i1, std::int64_t kk0,
    std::int64_t kk1, std::int64_t j0, std::int64_t j1) {
  alignas(64) float apack[6 * kKc];
  const std::int64_t width = j1 - j0;
  const std::int64_t kc = kk1 - kk0;
  std::int64_t i = i0;
  for (; i + 6 <= i1; i += 6) {
    for (std::int64_t kk = 0; kk < kc; ++kk) {
      float* q = apack + kk * 6;
      const float* acol = pa + kk0 + kk;
      q[0] = acol[(i + 0) * lda];
      q[1] = acol[(i + 1) * lda];
      q[2] = acol[(i + 2) * lda];
      q[3] = acol[(i + 3) * lda];
      q[4] = acol[(i + 4) * lda];
      q[5] = acol[(i + 5) * lda];
    }
    std::int64_t j = 0;
    for (; j + 16 <= width; j += 16) {
      const float* bp = panel + j;
      float* cp = pc + i * ldc + j0 + j;
      __m256 acc[6][2];
      for (int r = 0; r < 6; ++r) {
        acc[r][0] = _mm256_loadu_ps(cp + r * ldc);
        acc[r][1] = _mm256_loadu_ps(cp + r * ldc + 8);
      }
      for (std::int64_t kk = 0; kk < kc; ++kk) {
        const float* brow = bp + kk * kNc;
        _mm_prefetch(reinterpret_cast<const char*>(brow + 4 * kNc),
                     _MM_HINT_T0);
        const __m256 b0 = _mm256_loadu_ps(brow);
        const __m256 b1 = _mm256_loadu_ps(brow + 8);
        const float* q = apack + kk * 6;
        for (int r = 0; r < 6; ++r) {
          const __m256 av = _mm256_set1_ps(q[r]);
          acc[r][0] = _mm256_fmadd_ps(av, b0, acc[r][0]);
          acc[r][1] = _mm256_fmadd_ps(av, b1, acc[r][1]);
        }
      }
      for (int r = 0; r < 6; ++r) {
        _mm256_storeu_ps(cp + r * ldc, acc[r][0]);
        _mm256_storeu_ps(cp + r * ldc + 8, acc[r][1]);
      }
    }
    for (; j + 8 <= width; j += 8) {
      const float* bp = panel + j;
      float* cp = pc + i * ldc + j0 + j;
      __m256 acc[6];
      for (int r = 0; r < 6; ++r) acc[r] = _mm256_loadu_ps(cp + r * ldc);
      for (std::int64_t kk = 0; kk < kc; ++kk) {
        const __m256 b = _mm256_loadu_ps(bp + kk * kNc);
        const float* q = apack + kk * 6;
        for (int r = 0; r < 6; ++r) {
          acc[r] = _mm256_fmadd_ps(_mm256_set1_ps(q[r]), b, acc[r]);
        }
      }
      for (int r = 0; r < 6; ++r) _mm256_storeu_ps(cp + r * ldc, acc[r]);
    }
    for (; j < width; ++j) {  // scalar columns: fmaf keeps FMA rounding
      float* cp = pc + i * ldc + j0 + j;
      float s[6];
      for (int r = 0; r < 6; ++r) s[r] = cp[r * ldc];
      for (std::int64_t kk = 0; kk < kc; ++kk) {
        const float bt = panel[kk * kNc + j];
        const float* q = apack + kk * 6;
        for (int r = 0; r < 6; ++r) s[r] = std::fmaf(q[r], bt, s[r]);
      }
      for (int r = 0; r < 6; ++r) cp[r * ldc] = s[r];
    }
  }
  for (; i < i1; ++i) {  // remainder rows
    const float* arow = pa + i * lda + kk0;
    float* crow = pc + i * ldc + j0;
    std::int64_t j = 0;
    for (; j + 8 <= width; j += 8) {
      __m256 acc = _mm256_loadu_ps(crow + j);
      for (std::int64_t kk = 0; kk < kc; ++kk) {
        const __m256 b = _mm256_loadu_ps(panel + kk * kNc + j);
        acc = _mm256_fmadd_ps(_mm256_set1_ps(arow[kk]), b, acc);
      }
      _mm256_storeu_ps(crow + j, acc);
    }
    for (; j < width; ++j) {
      float s = crow[j];
      for (std::int64_t kk = 0; kk < kc; ++kk) {
        s = std::fmaf(arow[kk], panel[kk * kNc + j], s);
      }
      crow[j] = s;
    }
  }
}

#endif  // __x86_64__ && __GNUC__

using FloatPanelFn = void (*)(const float*, std::int64_t, const float*,
                              float*, std::int64_t, std::int64_t,
                              std::int64_t, std::int64_t, std::int64_t,
                              std::int64_t, std::int64_t);

struct FloatPanelKernel {
  FloatPanelFn fn = &gemm_nn_panel_generic;
  const char* name = "generic";
};

// Strict level lookup shared by the forced-kernel testing seam: resolves
// exactly the requested level or reports that this host cannot run it.
// "vnni" maps to the AVX-512 float kernel — the levels are shared with the
// int8 dispatch and VNNI only changes the int8 microkernel.
bool float_kernel_for_level(std::string_view level, FloatPanelKernel* out) {
  if (level == "scalar" || level == "sse2" || level == "generic") {
    *out = {&gemm_nn_panel_generic, "generic"};
    return true;
  }
  if (level == "clones") {
    *out = {&gemm_nn_panel_clones, "clones"};
    return true;
  }
#if defined(__x86_64__) && defined(__GNUC__)
  if ((level == "avx512" || level == "vnni") &&
      __builtin_cpu_supports("avx512f")) {
    *out = {&gemm_nn_panel_avx512, "avx512"};
    return true;
  }
  if (level == "avx2" && __builtin_cpu_supports("avx2") &&
      __builtin_cpu_supports("fma")) {
    *out = {&gemm_nn_panel_avx2, "avx2"};
    return true;
  }
#endif
  return false;
}

// Picks the widest float kernel the host supports, capped by MTSR_SIMD.
// Resolved once per process, so the choice cannot vary mid-run.
FloatPanelKernel resolve_float_kernel() {
  const char* env = std::getenv("MTSR_SIMD");
  const std::string_view want = env != nullptr ? env : "";
  if (want == "scalar" || want == "sse2") return {};
  if (want == "clones") return {&gemm_nn_panel_clones, "clones"};
#if defined(__x86_64__) && defined(__GNUC__)
  const bool allow_avx512 =
      want.empty() || want == "avx512" || want == "vnni";
  const bool allow_avx2 = allow_avx512 || want == "avx2";
  if (allow_avx512 && __builtin_cpu_supports("avx512f")) {
    return {&gemm_nn_panel_avx512, "avx512"};
  }
  if (allow_avx2 && __builtin_cpu_supports("avx2") &&
      __builtin_cpu_supports("fma")) {
    return {&gemm_nn_panel_avx2, "avx2"};
  }
#endif
  return {};
}

const FloatPanelKernel& float_panel_kernel() {
  static const FloatPanelKernel kernel = resolve_float_kernel();
  return kernel;
}

// Minimum rows per chunk in the tall dispatch: amortises the A-tile packing.
constexpr std::int64_t kRowGrain = 16;
// Minimum columns per chunk in the small-k column dispatch.
constexpr std::int64_t kColGrain = 128;

// Products with only a few accumulation terms per output element cannot
// amortise panel packing or the register-tile load/store, so they stream B
// in place and accumulate straight into C. Dispatch is a pure function of
// k, so determinism across pool sizes is unaffected.
constexpr std::int64_t kSmallK = 32;

MTSR_SIMD_CLONES
void gemm_nn_small_k_block(const float* pa, const float* pb, float* pc,
                           std::int64_t k, std::int64_t ldb,
                           std::int64_t ldc, std::int64_t i0, std::int64_t i1,
                           std::int64_t j0, std::int64_t j1,
                           bool accumulate) {
  alignas(64) float apack[4 * kSmallK];
  const std::size_t row_bytes =
      static_cast<std::size_t>(j1 - j0) * sizeof(float);
  std::int64_t i = i0;
  for (; i + 4 <= i1; i += 4) {
    for (std::int64_t kk = 0; kk < k; ++kk) {
      float* q = apack + kk * 4;
      q[0] = pa[(i + 0) * k + kk];
      q[1] = pa[(i + 1) * k + kk];
      q[2] = pa[(i + 2) * k + kk];
      q[3] = pa[(i + 3) * k + kk];
    }
    float* c0 = pc + (i + 0) * ldc;
    float* c1 = pc + (i + 1) * ldc;
    float* c2 = pc + (i + 2) * ldc;
    float* c3 = pc + (i + 3) * ldc;
    if (!accumulate) {
      std::memset(c0 + j0, 0, row_bytes);
      std::memset(c1 + j0, 0, row_bytes);
      std::memset(c2 + j0, 0, row_bytes);
      std::memset(c3 + j0, 0, row_bytes);
    }
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float* q = apack + kk * 4;
      const float a0 = q[0], a1 = q[1], a2 = q[2], a3 = q[3];
      if (a0 == 0.f && a1 == 0.f && a2 == 0.f && a3 == 0.f) continue;
      const float* brow = pb + kk * ldb;
      for (std::int64_t j = j0; j < j1; ++j) {
        const float bkj = brow[j];
        c0[j] += a0 * bkj;
        c1[j] += a1 * bkj;
        c2[j] += a2 * bkj;
        c3[j] += a3 * bkj;
      }
    }
  }
  for (; i < i1; ++i) {  // remainder rows
    float* crow = pc + i * ldc;
    if (!accumulate) std::memset(crow + j0, 0, row_bytes);
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float aik = pa[i * k + kk];
      if (aik == 0.f) continue;
      const float* brow = pb + kk * ldb;
      for (std::int64_t j = j0; j < j1; ++j) crow[j] += aik * brow[j];
    }
  }
}

// Parallel packed-B driver for C = A * B (all row-major). Splits over rows
// when C is tall, over B panels when C is wide (conv lowering produces
// short-and-wide products), so the pool stays busy either way. `kernel` is
// the panel microkernel resolved by the caller (production dispatch or the
// forced-kernel seam); the small-k path is kernel-independent.
void gemm_nn(const float* pa, const float* pb, float* pc, std::int64_t m,
             std::int64_t k, std::int64_t n, bool accumulate,
             FloatPanelFn kernel) {
  if (k <= kSmallK) {  // degenerate k: no packing, no workspace
    if (m >= n) {
      parallel_for_grain(m, kRowGrain,
                         [&](std::int64_t i0, std::int64_t i1, int) {
        gemm_nn_small_k_block(pa, pb, pc, k, n, n, i0, i1, 0, n, accumulate);
      });
    } else {
      parallel_for_grain(n, kColGrain,
                         [&](std::int64_t j0, std::int64_t j1, int) {
        gemm_nn_small_k_block(pa, pb, pc, k, n, n, 0, m, j0, j1, accumulate);
      });
    }
    return;
  }
  Workspace& ws = Workspace::tls();
  Workspace::Scope scratch(ws);
  const std::int64_t nkt = ceil_div(k, kKc);
  const std::int64_t njt = ceil_div(n, kNc);
  // jt-major so one column block's k-panels are contiguous; k-tiles within
  // a block pack back-to-back (no padding between short edge tiles).
  float* packed = ws.alloc(njt * k * kNc);
  const auto panel_at = [&](std::int64_t kk0, std::int64_t jt) {
    return packed + (jt * k + kk0) * kNc;
  };

  if (m >= n) {
    // Tall C: pack every panel once (parallel over panels), then share the
    // packed matrix read-only across all row chunks.
    parallel_for(nkt * njt, [&](std::int64_t p) {
      const std::int64_t jt = p / nkt, kk0 = (p % nkt) * kKc;
      pack_b_panel(pb, n, kk0, std::min(k, kk0 + kKc), jt * kNc,
                   std::min(n, (jt + 1) * kNc), panel_at(kk0, jt));
    });
    parallel_for_grain(m, kRowGrain,
                       [&](std::int64_t i0, std::int64_t i1, int) {
      if (!accumulate) {
        std::memset(pc + i0 * n, 0,
                    static_cast<std::size_t>((i1 - i0) * n) * sizeof(float));
      }
      for (std::int64_t jt = 0; jt < njt; ++jt) {
        const std::int64_t j0 = jt * kNc, j1 = std::min(n, j0 + kNc);
        for (std::int64_t kk0 = 0; kk0 < k; kk0 += kKc) {
          kernel(pa, k, panel_at(kk0, jt), pc, n, i0, i1, kk0,
                 std::min(k, kk0 + kKc), j0, j1);
        }
      }
    });
  } else {
    // Wide C: panel-aligned column chunks. Each chunk owns a range of
    // j-tiles outright, packs each of its panels exactly once, and consumes
    // it while it is still L2-hot.
    parallel_for_grain(njt, 1, [&](std::int64_t t0, std::int64_t t1, int) {
      for (std::int64_t jt = t0; jt < t1; ++jt) {
        const std::int64_t j0 = jt * kNc, j1 = std::min(n, j0 + kNc);
        if (!accumulate) {
          for (std::int64_t i = 0; i < m; ++i) {
            std::memset(pc + i * n + j0, 0,
                        static_cast<std::size_t>(j1 - j0) * sizeof(float));
          }
        }
        for (std::int64_t kk0 = 0; kk0 < k; kk0 += kKc) {
          float* panel = panel_at(kk0, jt);
          const std::int64_t kk1 = std::min(k, kk0 + kKc);
          pack_b_panel(pb, n, kk0, kk1, j0, j1, panel);
          kernel(pa, k, panel, pc, n, 0, m, kk0, kk1, j0, j1);
        }
      }
    });
  }
}

// C[i0:i1, j0:j1] with C[i,j] (+)= dot(A row i, B row j); both rows are
// contiguous of length k, so B needs no packing. Fixed four-lane reduction
// over k (lane l sums k ≡ l mod 4, lanes combined in order) — deterministic
// in k alone.
MTSR_SIMD_CLONES
void gemm_nt_block(const float* pa, const float* pb, float* pc,
                   std::int64_t k, std::int64_t ldc, std::int64_t i0,
                   std::int64_t i1, std::int64_t j0, std::int64_t j1,
                   bool accumulate) {
  constexpr std::int64_t kJt = 16;  // B rows kept hot per tile
  for (std::int64_t jj0 = j0; jj0 < j1; jj0 += kJt) {
    const std::int64_t jj1 = std::min(j1, jj0 + kJt);
    for (std::int64_t i = i0; i < i1; ++i) {
      const float* arow = pa + i * k;
      float* crow = pc + i * ldc;
      for (std::int64_t j = jj0; j < jj1; ++j) {
        const float* brow = pb + j * k;
        float acc0 = 0.f, acc1 = 0.f, acc2 = 0.f, acc3 = 0.f;
        std::int64_t kk = 0;
        for (; kk + 4 <= k; kk += 4) {
          acc0 += arow[kk + 0] * brow[kk + 0];
          acc1 += arow[kk + 1] * brow[kk + 1];
          acc2 += arow[kk + 2] * brow[kk + 2];
          acc3 += arow[kk + 3] * brow[kk + 3];
        }
        float acc = (acc0 + acc1) + (acc2 + acc3);
        for (; kk < k; ++kk) acc += arow[kk] * brow[kk];
        if (accumulate) {
          crow[j] += acc;
        } else {
          crow[j] = acc;
        }
      }
    }
  }
}

// ---- Quantised u8·s8 GEMM --------------------------------------------------
//
// C = epilogue(A_u8 · B_s8) with exact int32 accumulation. B is pre-packed
// (PackedInt8B) in (k-group, column, 4) order so each 4-k step of one
// column is a contiguous 4-byte group: the AVX2/AVX-512 kernels broadcast
// 4 A bytes and run maddubs (u8·s8 pairs → i16) + madd (i16 pairs → i32)
// against 8/16 columns per vector. Weights are bounded by ±quant::kWeightQmax
// (= 63), so the i16 pair sums can never saturate and every kernel —
// scalar, AVX2, AVX-512, any pool size — produces identical accumulators.
// The float epilogue uses single-rounding fmaf/fmadd and max-based
// LeakyReLU in all paths, so outputs are bit-identical too.

// One output element's dequant + bias + LeakyReLU. max(y, alpha*y) equals
// LeakyReLU for alpha <= 1 and is the exact elementwise form the vector
// epilogues use.
inline float u8s8_epilogue_one(std::int32_t acc, std::int32_t zp_comp,
                               float scale, float bias, float alpha) {
  const float y =
      std::fmaf(scale, static_cast<float>(acc - zp_comp), bias);
  return std::max(y, y * alpha);
}

// Scalar kernel (and the j/row-tail path of the SIMD kernels): plain
// ascending-k s32 accumulation over the packed layout.
void u8s8_block_scalar(const std::uint8_t* a, std::int64_t lda,
                       const std::int8_t* packed, std::int64_t npad,
                       std::int64_t kgroups, const std::int32_t* colsum,
                       float* c, std::int64_t ldc, std::int64_t i0,
                       std::int64_t i1, std::int64_t j0, std::int64_t j1,
                       const QuantEpilogue& ep) {
  for (std::int64_t i = i0; i < i1; ++i) {
    const std::uint8_t* arow = a + i * lda;
    float* crow = c + i * ldc;
    for (std::int64_t j = j0; j < j1; ++j) {
      std::int32_t acc = 0;
      for (std::int64_t kg = 0; kg < kgroups; ++kg) {
        const std::int8_t* bq = packed + (kg * npad + j) * 4;
        const std::uint8_t* aq = arow + kg * 4;
        acc += static_cast<std::int32_t>(aq[0]) * bq[0] +
               static_cast<std::int32_t>(aq[1]) * bq[1] +
               static_cast<std::int32_t>(aq[2]) * bq[2] +
               static_cast<std::int32_t>(aq[3]) * bq[3];
      }
      crow[j] = u8s8_epilogue_one(acc, ep.a_zp * colsum[j], ep.col_scale[j],
                                  ep.bias != nullptr ? ep.bias[j] : 0.f,
                                  ep.lrelu_alpha);
    }
  }
}

using U8S8BlockFn = void (*)(const std::uint8_t*, std::int64_t,
                             const std::int8_t*, std::int64_t, std::int64_t,
                             const std::int32_t*, float*, std::int64_t,
                             std::int64_t, std::int64_t, std::int64_t,
                             std::int64_t, const QuantEpilogue&);

#if defined(__x86_64__) && defined(__GNUC__)

// AVX2 kernel: 4-row × 16-column register tile, maddubs + madd per 4-k
// group, vectorised epilogue. Full 16-column blocks only; the column tail
// falls through to the scalar kernel (identical results).
__attribute__((target("avx2,fma"))) void u8s8_block_avx2(
    const std::uint8_t* a, std::int64_t lda, const std::int8_t* packed,
    std::int64_t npad, std::int64_t kgroups, const std::int32_t* colsum,
    float* c, std::int64_t ldc, std::int64_t i0, std::int64_t i1,
    std::int64_t j0, std::int64_t j1, const QuantEpilogue& ep) {
  const __m256i ones16 = _mm256_set1_epi16(1);
  const __m256i zp = _mm256_set1_epi32(ep.a_zp);
  const __m256 alpha = _mm256_set1_ps(ep.lrelu_alpha);
  for (std::int64_t i = i0; i < i1; i += 4) {
    const std::int64_t rg = std::min<std::int64_t>(4, i1 - i);
    std::int64_t j = j0;
    for (; j + 16 <= j1; j += 16) {
      __m256i acc[4][2];
      for (std::int64_t r = 0; r < rg; ++r) {
        acc[r][0] = _mm256_setzero_si256();
        acc[r][1] = _mm256_setzero_si256();
      }
      for (std::int64_t kg = 0; kg < kgroups; ++kg) {
        const std::int8_t* bq = packed + (kg * npad + j) * 4;
        const __m256i b0 =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bq));
        const __m256i b1 =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bq + 32));
        for (std::int64_t r = 0; r < rg; ++r) {
          std::int32_t aw;
          std::memcpy(&aw, a + (i + r) * lda + kg * 4, 4);
          const __m256i av = _mm256_set1_epi32(aw);
          acc[r][0] = _mm256_add_epi32(
              acc[r][0],
              _mm256_madd_epi16(_mm256_maddubs_epi16(av, b0), ones16));
          acc[r][1] = _mm256_add_epi32(
              acc[r][1],
              _mm256_madd_epi16(_mm256_maddubs_epi16(av, b1), ones16));
        }
      }
      const __m256i comp0 = _mm256_mullo_epi32(
          zp, _mm256_loadu_si256(
                  reinterpret_cast<const __m256i*>(colsum + j)));
      const __m256i comp1 = _mm256_mullo_epi32(
          zp, _mm256_loadu_si256(
                  reinterpret_cast<const __m256i*>(colsum + j + 8)));
      const __m256 sc0 = _mm256_loadu_ps(ep.col_scale + j);
      const __m256 sc1 = _mm256_loadu_ps(ep.col_scale + j + 8);
      const __m256 bi0 = ep.bias != nullptr ? _mm256_loadu_ps(ep.bias + j)
                                            : _mm256_setzero_ps();
      const __m256 bi1 = ep.bias != nullptr
                             ? _mm256_loadu_ps(ep.bias + j + 8)
                             : _mm256_setzero_ps();
      for (std::int64_t r = 0; r < rg; ++r) {
        const __m256 t0 =
            _mm256_cvtepi32_ps(_mm256_sub_epi32(acc[r][0], comp0));
        const __m256 t1 =
            _mm256_cvtepi32_ps(_mm256_sub_epi32(acc[r][1], comp1));
        __m256 y0 = _mm256_fmadd_ps(sc0, t0, bi0);
        __m256 y1 = _mm256_fmadd_ps(sc1, t1, bi1);
        y0 = _mm256_max_ps(y0, _mm256_mul_ps(y0, alpha));
        y1 = _mm256_max_ps(y1, _mm256_mul_ps(y1, alpha));
        _mm256_storeu_ps(c + (i + r) * ldc + j, y0);
        _mm256_storeu_ps(c + (i + r) * ldc + j + 8, y1);
      }
    }
    if (j < j1) {
      u8s8_block_scalar(a, lda, packed, npad, kgroups, colsum, c, ldc, i,
                        i + rg, j, j1, ep);
    }
  }
}

// AVX-512BW kernel: same structure, 16 columns per vector.
// GCC's avx512fintrin.h implements _mm512_undefined_ps as "__Y = __Y",
// which trips -Wmaybe-uninitialized through the cvt/max wrappers; the
// value is never actually consumed uninitialised.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
__attribute__((target("avx512f,avx512bw"))) void u8s8_block_avx512(
    const std::uint8_t* a, std::int64_t lda, const std::int8_t* packed,
    std::int64_t npad, std::int64_t kgroups, const std::int32_t* colsum,
    float* c, std::int64_t ldc, std::int64_t i0, std::int64_t i1,
    std::int64_t j0, std::int64_t j1, const QuantEpilogue& ep) {
  const __m512i ones16 = _mm512_set1_epi16(1);
  const __m512i zp = _mm512_set1_epi32(ep.a_zp);
  const __m512 alpha = _mm512_set1_ps(ep.lrelu_alpha);
  for (std::int64_t i = i0; i < i1; i += 4) {
    const std::int64_t rg = std::min<std::int64_t>(4, i1 - i);
    std::int64_t j = j0;
    for (; j + 16 <= j1; j += 16) {
      __m512i acc[4];
      for (std::int64_t r = 0; r < rg; ++r) acc[r] = _mm512_setzero_si512();
      for (std::int64_t kg = 0; kg < kgroups; ++kg) {
        const __m512i b = _mm512_loadu_si512(packed + (kg * npad + j) * 4);
        for (std::int64_t r = 0; r < rg; ++r) {
          std::int32_t aw;
          std::memcpy(&aw, a + (i + r) * lda + kg * 4, 4);
          const __m512i av = _mm512_set1_epi32(aw);
          acc[r] = _mm512_add_epi32(
              acc[r], _mm512_madd_epi16(_mm512_maddubs_epi16(av, b), ones16));
        }
      }
      const __m512i comp = _mm512_mullo_epi32(
          zp, _mm512_loadu_si512(colsum + j));
      const __m512 sc = _mm512_loadu_ps(ep.col_scale + j);
      const __m512 bi = ep.bias != nullptr ? _mm512_loadu_ps(ep.bias + j)
                                           : _mm512_setzero_ps();
      for (std::int64_t r = 0; r < rg; ++r) {
        const __m512 t = _mm512_cvtepi32_ps(_mm512_sub_epi32(acc[r], comp));
        __m512 y = _mm512_fmadd_ps(sc, t, bi);
        y = _mm512_max_ps(y, _mm512_mul_ps(y, alpha));
        _mm512_storeu_ps(c + (i + r) * ldc + j, y);
      }
    }
    if (j < j1) {
      u8s8_block_scalar(a, lda, packed, npad, kgroups, colsum, c, ldc, i,
                        i + rg, j, j1, ep);
    }
  }
}

// VNNI kernel: vpdpbusd folds each 4-byte u8·s8 group straight into the
// s32 accumulator — no intermediate i16 stage, so it is exact for the full
// ±127 weight range, not just the maddubs-safe ±63. A 4-row × 32-column
// register tile (eight zmm accumulators; two 64-byte packed-B loads + four
// broadcasts + eight vpdpbusd per k-group), a 16-column secondary loop,
// and the scalar kernel for the column tail — identical s32 accumulators
// and the identical fused epilogue in every path.
__attribute__((target("avx512f,avx512bw,avx512vnni"))) void u8s8_block_vnni(
    const std::uint8_t* a, std::int64_t lda, const std::int8_t* packed,
    std::int64_t npad, std::int64_t kgroups, const std::int32_t* colsum,
    float* c, std::int64_t ldc, std::int64_t i0, std::int64_t i1,
    std::int64_t j0, std::int64_t j1, const QuantEpilogue& ep) {
  const __m512i zp = _mm512_set1_epi32(ep.a_zp);
  const __m512 alpha = _mm512_set1_ps(ep.lrelu_alpha);
  for (std::int64_t i = i0; i < i1; i += 4) {
    const std::int64_t rg = std::min<std::int64_t>(4, i1 - i);
    std::int64_t j = j0;
    for (; j + 32 <= j1; j += 32) {
      __m512i acc[4][2];
      for (std::int64_t r = 0; r < rg; ++r) {
        acc[r][0] = _mm512_setzero_si512();
        acc[r][1] = _mm512_setzero_si512();
      }
      for (std::int64_t kg = 0; kg < kgroups; ++kg) {
        const std::int8_t* bq = packed + (kg * npad + j) * 4;
        const __m512i b0 = _mm512_loadu_si512(bq);
        const __m512i b1 = _mm512_loadu_si512(bq + 64);
        for (std::int64_t r = 0; r < rg; ++r) {
          std::int32_t aw;
          std::memcpy(&aw, a + (i + r) * lda + kg * 4, 4);
          const __m512i av = _mm512_set1_epi32(aw);
          acc[r][0] = _mm512_dpbusd_epi32(acc[r][0], av, b0);
          acc[r][1] = _mm512_dpbusd_epi32(acc[r][1], av, b1);
        }
      }
      for (int half = 0; half < 2; ++half) {
        const std::int64_t jj = j + half * 16;
        const __m512i comp = _mm512_mullo_epi32(
            zp, _mm512_loadu_si512(colsum + jj));
        const __m512 sc = _mm512_loadu_ps(ep.col_scale + jj);
        const __m512 bi = ep.bias != nullptr
                              ? _mm512_loadu_ps(ep.bias + jj)
                              : _mm512_setzero_ps();
        for (std::int64_t r = 0; r < rg; ++r) {
          const __m512 t =
              _mm512_cvtepi32_ps(_mm512_sub_epi32(acc[r][half], comp));
          __m512 y = _mm512_fmadd_ps(sc, t, bi);
          y = _mm512_max_ps(y, _mm512_mul_ps(y, alpha));
          _mm512_storeu_ps(c + (i + r) * ldc + jj, y);
        }
      }
    }
    for (; j + 16 <= j1; j += 16) {
      __m512i acc[4];
      for (std::int64_t r = 0; r < rg; ++r) acc[r] = _mm512_setzero_si512();
      for (std::int64_t kg = 0; kg < kgroups; ++kg) {
        const __m512i b = _mm512_loadu_si512(packed + (kg * npad + j) * 4);
        for (std::int64_t r = 0; r < rg; ++r) {
          std::int32_t aw;
          std::memcpy(&aw, a + (i + r) * lda + kg * 4, 4);
          acc[r] = _mm512_dpbusd_epi32(acc[r], _mm512_set1_epi32(aw), b);
        }
      }
      const __m512i comp = _mm512_mullo_epi32(
          zp, _mm512_loadu_si512(colsum + j));
      const __m512 sc = _mm512_loadu_ps(ep.col_scale + j);
      const __m512 bi = ep.bias != nullptr ? _mm512_loadu_ps(ep.bias + j)
                                           : _mm512_setzero_ps();
      for (std::int64_t r = 0; r < rg; ++r) {
        const __m512 t = _mm512_cvtepi32_ps(_mm512_sub_epi32(acc[r], comp));
        __m512 y = _mm512_fmadd_ps(sc, t, bi);
        y = _mm512_max_ps(y, _mm512_mul_ps(y, alpha));
        _mm512_storeu_ps(c + (i + r) * ldc + j, y);
      }
    }
    if (j < j1) {
      u8s8_block_scalar(a, lda, packed, npad, kgroups, colsum, c, ldc, i,
                        i + rg, j, j1, ep);
    }
  }
}
#pragma GCC diagnostic pop

#endif  // __x86_64__ && __GNUC__

struct U8S8Kernel {
  U8S8BlockFn fn = &u8s8_block_scalar;
  const char* name = "scalar";
  // Exact for ±127 ("full range") packs: true for the kernels that fold
  // u8·s8 groups straight into s32 (scalar, VNNI); false for the maddubs
  // kernels, whose i16 pair stage is only saturation-free within ±63.
  bool full_range_safe = true;
};

// Strict level lookup for the forced-kernel testing seam: resolves exactly
// the requested level or reports that this host cannot run it.
bool u8s8_kernel_for_level(std::string_view level, U8S8Kernel* out) {
  if (level == "scalar" || level == "sse2") {
    *out = {};
    return true;
  }
#if defined(__x86_64__) && defined(__GNUC__)
  if (level == "avx2" && __builtin_cpu_supports("avx2") &&
      __builtin_cpu_supports("fma")) {
    *out = {&u8s8_block_avx2, "avx2", false};
    return true;
  }
  if (level == "avx512" && __builtin_cpu_supports("avx512bw")) {
    *out = {&u8s8_block_avx512, "avx512", false};
    return true;
  }
  if (level == "vnni" && __builtin_cpu_supports("avx512vnni")) {
    *out = {&u8s8_block_vnni, "vnni", true};
    return true;
  }
#endif
  return false;
}

// Picks the widest kernel the host supports, capped by MTSR_SIMD
// ("scalar" | "avx2" | "avx512" | "vnni"; "avx512" deliberately caps BELOW
// VNNI so the maddubs AVX-512 kernel stays forceable on VNNI hosts).
// Resolved once per process, so the choice cannot vary mid-run. Safe to
// default to VNNI where present: every kernel produces exact s32
// accumulators, so the cross-ISA bit-exactness contract is unchanged.
U8S8Kernel resolve_u8s8_kernel() {
#if defined(__x86_64__) && defined(__GNUC__)
  const char* env = std::getenv("MTSR_SIMD");
  const std::string_view want = env != nullptr ? env : "";
  if (want == "scalar" || want == "sse2") return {};
  const bool allow_vnni = want.empty() || want == "vnni";
  const bool allow_avx512 = allow_vnni || want == "avx512";
  const bool allow_avx2 = allow_avx512 || want == "avx2";
  if (allow_vnni && __builtin_cpu_supports("avx512vnni")) {
    return {&u8s8_block_vnni, "vnni", true};
  }
  if (allow_avx512 && __builtin_cpu_supports("avx512bw")) {
    return {&u8s8_block_avx512, "avx512", false};
  }
  if (allow_avx2 && __builtin_cpu_supports("avx2") &&
      __builtin_cpu_supports("fma")) {
    return {&u8s8_block_avx2, "avx2", false};
  }
#endif
  return {};
}

const U8S8Kernel& u8s8_kernel() {
  static const U8S8Kernel kernel = resolve_u8s8_kernel();
  return kernel;
}

// Shared driver behind gemm_u8s8 and the forced-kernel seam. A full-range
// (±127) pack demotes maddubs kernels to the scalar kernel — their i16
// pair stage could saturate — while scalar/VNNI run as chosen; both are
// exact in s32, so results stay bit-identical either way.
void gemm_u8s8_dispatch(const std::uint8_t* a, std::int64_t lda,
                        const PackedInt8B& b, std::int64_t m,
                        const QuantEpilogue& ep, float* c, std::int64_t ldc,
                        const U8S8Kernel& kernel) {
  check(!b.empty(), "gemm_u8s8: empty packed B");
  check(m > 0, "gemm_u8s8: empty A");
  check(lda >= b.kpad(), "gemm_u8s8: lda must cover the padded k extent");
  check(ep.col_scale != nullptr, "gemm_u8s8: missing column scales");
  if (ldc <= 0) ldc = b.n;
  check(ldc >= b.n, "gemm_u8s8: ldc must cover the column extent");
  // Padded destination: compute the zero-pad columns too, so the vector
  // path never falls back to the scalar column tail.
  const std::int64_t jspan = ldc >= b.npad ? b.npad : b.n;
  const U8S8BlockFn fn = (b.full_range && !kernel.full_range_safe)
                             ? &u8s8_block_scalar
                             : kernel.fn;
  const std::int64_t kgroups = b.kpad() / 4;
  const std::int8_t* packed = b.data.data();
  const std::int32_t* colsum = b.colsum.data();
  if (m >= jspan) {
    // Tall C: split rows; every chunk streams the whole (small) packed B.
    parallel_for_grain(m, kRowGrain,
                       [&](std::int64_t i0, std::int64_t i1, int) {
      fn(a, lda, packed, b.npad, kgroups, colsum, c, ldc, i0, i1, 0, jspan,
         ep);
    });
  } else {
    // Wide C: split 16-column blocks so SIMD chunks stay vector-aligned.
    const std::int64_t nblocks = (jspan + 15) / 16;
    parallel_for_grain(nblocks, 1, [&](std::int64_t t0, std::int64_t t1,
                                       int) {
      fn(a, lda, packed, b.npad, kgroups, colsum, c, ldc, 0, m, t0 * 16,
         std::min(jspan, t1 * 16), ep);
    });
  }
}

}  // namespace

PackedInt8B pack_b_s8(const std::int8_t* b, std::int64_t k, std::int64_t n,
                      bool full_range) {
  check(k > 0 && n > 0, "pack_b_s8: empty matrix");
  PackedInt8B packed;
  packed.k = k;
  packed.n = n;
  packed.npad = (n + 15) / 16 * 16;
  packed.full_range = full_range;
  const int qmax =
      full_range ? quant::kWeightQmaxFull : quant::kWeightQmax;
  const std::int64_t kgroups = packed.kpad() / 4;
  packed.data.assign(
      static_cast<std::size_t>(kgroups * packed.npad * 4), 0);
  packed.colsum.assign(static_cast<std::size_t>(packed.npad), 0);
  for (std::int64_t kk = 0; kk < k; ++kk) {
    const std::int8_t* brow = b + kk * n;
    const std::int64_t kg = kk / 4, kr = kk % 4;
    std::int8_t* prow = packed.data.data() + kg * packed.npad * 4 + kr;
    for (std::int64_t j = 0; j < n; ++j) {
      check(brow[j] >= -qmax && brow[j] <= qmax,
            full_range
                ? "pack_b_s8: value outside the ±kWeightQmaxFull range"
                : "pack_b_s8: value outside the ±kWeightQmax "
                  "saturation-free weight range");
      prow[j * 4] = brow[j];
      packed.colsum[static_cast<std::size_t>(j)] += brow[j];
    }
  }
  return packed;
}

void gemm_u8s8(const std::uint8_t* a, std::int64_t lda, const PackedInt8B& b,
               std::int64_t m, const QuantEpilogue& ep, float* c,
               std::int64_t ldc) {
  gemm_u8s8_dispatch(a, lda, b, m, ep, c, ldc, u8s8_kernel());
}

bool gemm_u8s8_forced_kernel(const char* level, const std::uint8_t* a,
                             std::int64_t lda, const PackedInt8B& b,
                             std::int64_t m, const QuantEpilogue& ep,
                             float* c, std::int64_t ldc) {
  U8S8Kernel kernel;
  if (!u8s8_kernel_for_level(level != nullptr ? level : "", &kernel)) {
    return false;
  }
  gemm_u8s8_dispatch(a, lda, b, m, ep, c, ldc, kernel);
  return true;
}

void gemm_u8s8_ref(const std::uint8_t* a, std::int64_t lda,
                   const PackedInt8B& b, std::int64_t m,
                   const QuantEpilogue& ep, float* c, std::int64_t ldc) {
  check(!b.empty(), "gemm_u8s8_ref: empty packed B");
  check(lda >= b.kpad(), "gemm_u8s8_ref: lda must cover the padded k extent");
  check(ep.col_scale != nullptr, "gemm_u8s8_ref: missing column scales");
  if (ldc <= 0) ldc = b.n;
  check(ldc >= b.n, "gemm_u8s8_ref: ldc must cover the column extent");
  const std::int64_t jspan = ldc >= b.npad ? b.npad : b.n;
  u8s8_block_scalar(a, lda, b.data.data(), b.npad, b.kpad() / 4,
                    b.colsum.data(), c, ldc, 0, m, 0, jspan, ep);
}

const char* gemm_u8s8_kernel_name() { return u8s8_kernel().name; }

const char* matmul_kernel_name() { return float_panel_kernel().name; }

void matmul_into(const float* a, const float* b, float* c, std::int64_t m,
                 std::int64_t k, std::int64_t n, bool accumulate) {
  gemm_nn(a, b, c, m, k, n, accumulate, float_panel_kernel().fn);
}

bool matmul_into_forced_kernel(const char* level, const float* a,
                               const float* b, float* c, std::int64_t m,
                               std::int64_t k, std::int64_t n,
                               bool accumulate) {
  FloatPanelKernel kernel;
  if (!float_kernel_for_level(level != nullptr ? level : "", &kernel)) {
    return false;
  }
  gemm_nn(a, b, c, m, k, n, accumulate, kernel.fn);
  return true;
}

void matmul_tn_into(const float* a, const float* b, float* c, std::int64_t k,
                    std::int64_t m, std::int64_t n, bool accumulate) {
  // Materialise Aᵀ in workspace scratch (O(m·k), negligible next to the
  // O(m·k·n) product) so the core kernel always streams contiguous A rows.
  Workspace& ws = Workspace::tls();
  Workspace::Scope scratch(ws);
  float* at = ws.alloc(m * k);
  transpose_into(a, k, m, at);
  gemm_nn(at, b, c, m, k, n, accumulate, float_panel_kernel().fn);
}

void matmul_nt_into(const float* a, const float* b, float* c, std::int64_t m,
                    std::int64_t k, std::int64_t n, bool accumulate) {
  if (m >= n) {
    parallel_for_grain(m, kRowGrain,
                       [&](std::int64_t i0, std::int64_t i1, int) {
      gemm_nt_block(a, b, c, k, n, i0, i1, 0, n, accumulate);
    });
  } else {
    parallel_for_grain(n, kRowGrain,
                       [&](std::int64_t j0, std::int64_t j1, int) {
      gemm_nt_block(a, b, c, k, n, 0, m, j0, j1, accumulate);
    });
  }
}

void transpose_into(const float* a, std::int64_t m, std::int64_t n,
                    float* out) {
  // 32×32 tiles keep both the read and the strided write streams in L1.
  constexpr std::int64_t kTile = 32;
  parallel_for_grain(n, kTile, [&](std::int64_t r0, std::int64_t r1, int) {
    for (std::int64_t jt = r0; jt < r1; jt += kTile) {
      const std::int64_t jmax = std::min(r1, jt + kTile);
      for (std::int64_t it = 0; it < m; it += kTile) {
        const std::int64_t imax = std::min(m, it + kTile);
        for (std::int64_t j = jt; j < jmax; ++j) {
          for (std::int64_t i = it; i < imax; ++i) {
            out[j * m + i] = a[i * n + j];
          }
        }
      }
    }
  });
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  check(a.rank() == 2 && b.rank() == 2, "matmul requires rank-2 tensors");
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  check(b.dim(0) == k, "matmul inner dimensions must agree: " +
                           a.shape().to_string() + " * " +
                           b.shape().to_string());
  Tensor c(Shape{m, n});
  // The fresh tensor is already zeroed; accumulate mode skips the kernel's
  // redundant clear of C (bitwise-identical result).
  matmul_into(a.data(), b.data(), c.data(), m, k, n, /*accumulate=*/true);
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  check(a.rank() == 2 && b.rank() == 2, "matmul_tn requires rank-2 tensors");
  const std::int64_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  check(b.dim(0) == k, "matmul_tn inner dimensions must agree");
  Tensor c(Shape{m, n});
  matmul_tn_into(a.data(), b.data(), c.data(), k, m, n, /*accumulate=*/true);
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  check(a.rank() == 2 && b.rank() == 2, "matmul_nt requires rank-2 tensors");
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  check(b.dim(1) == k, "matmul_nt inner dimensions must agree");
  Tensor c(Shape{m, n});
  matmul_nt_into(a.data(), b.data(), c.data(), m, k, n);
  return c;
}

Tensor transpose(const Tensor& a) {
  check(a.rank() == 2, "transpose requires a rank-2 tensor");
  Tensor out(Shape{a.dim(1), a.dim(0)});
  transpose_into(a.data(), a.dim(0), a.dim(1), out.data());
  return out;
}

Tensor im2col(const Tensor& input, int kh, int kw, int stride_h, int stride_w,
              int pad_h, int pad_w) {
  check(input.rank() == 3, "im2col expects input of shape (C, H, W)");
  check(kh > 0 && kw > 0 && stride_h > 0 && stride_w > 0 && pad_h >= 0 &&
            pad_w >= 0,
        "im2col parameters out of range");
  const std::int64_t c = input.dim(0), h = input.dim(1), w = input.dim(2);
  const std::int64_t oh = (h + 2 * pad_h - kh) / stride_h + 1;
  const std::int64_t ow = (w + 2 * pad_w - kw) / stride_w + 1;
  check(oh > 0 && ow > 0, "im2col produces empty output for these params");

  Tensor out(Shape{c * kh * kw, oh * ow});
  float* po = out.data();
  const float* pi = input.data();
  for (std::int64_t ch = 0; ch < c; ++ch) {
    for (int ky = 0; ky < kh; ++ky) {
      for (int kx = 0; kx < kw; ++kx) {
        const std::int64_t row = (ch * kh + ky) * kw + kx;
        float* orow = po + row * oh * ow;
        for (std::int64_t oy = 0; oy < oh; ++oy) {
          const std::int64_t iy = oy * stride_h - pad_h + ky;
          if (iy < 0 || iy >= h) {
            std::fill(orow + oy * ow, orow + (oy + 1) * ow, 0.f);
            continue;
          }
          const float* irow = pi + (ch * h + iy) * w;
          for (std::int64_t ox = 0; ox < ow; ++ox) {
            const std::int64_t ix = ox * stride_w - pad_w + kx;
            orow[oy * ow + ox] = (ix >= 0 && ix < w) ? irow[ix] : 0.f;
          }
        }
      }
    }
  }
  return out;
}

Tensor col2im(const Tensor& columns, std::int64_t channels,
              std::int64_t height, std::int64_t width, int kh, int kw,
              int stride_h, int stride_w, int pad_h, int pad_w) {
  check(columns.rank() == 2, "col2im expects rank-2 columns");
  const std::int64_t oh = (height + 2 * pad_h - kh) / stride_h + 1;
  const std::int64_t ow = (width + 2 * pad_w - kw) / stride_w + 1;
  check(columns.dim(0) == channels * kh * kw,
        "col2im columns row count mismatch");
  check(columns.dim(1) == oh * ow, "col2im columns col count mismatch");

  Tensor out(Shape{channels, height, width});
  float* po = out.data();
  const float* pc = columns.data();
  for (std::int64_t ch = 0; ch < channels; ++ch) {
    for (int ky = 0; ky < kh; ++ky) {
      for (int kx = 0; kx < kw; ++kx) {
        const std::int64_t row = (ch * kh + ky) * kw + kx;
        const float* crow = pc + row * oh * ow;
        for (std::int64_t oy = 0; oy < oh; ++oy) {
          const std::int64_t iy = oy * stride_h - pad_h + ky;
          if (iy < 0 || iy >= height) continue;
          float* orow = po + (ch * height + iy) * width;
          for (std::int64_t ox = 0; ox < ow; ++ox) {
            const std::int64_t ix = ox * stride_w - pad_w + kx;
            if (ix >= 0 && ix < width) orow[ix] += crow[oy * ow + ox];
          }
        }
      }
    }
  }
  return out;
}

void im2col_batched_into(const float* pi, std::int64_t n, std::int64_t c,
                         std::int64_t h, std::int64_t w, int kh, int kw,
                         int stride_h, int stride_w, int pad_h, int pad_w,
                         float* po) {
  const std::int64_t oh = (h + 2 * pad_h - kh) / stride_h + 1;
  const std::int64_t ow = (w + 2 * pad_w - kw) / stride_w + 1;
  // Each output row is contiguous over all samples; rows are independent.
  parallel_for(c * kh * kw, [&](std::int64_t row) {
    const std::int64_t ch = row / (kh * kw);
    const std::int64_t rem = row % (kh * kw);
    const int ky = static_cast<int>(rem / kw);
    const int kx = static_cast<int>(rem % kw);
    float* orow = po + row * n * oh * ow;
    for (std::int64_t i = 0; i < n; ++i) {
      const float* img = pi + (i * c + ch) * h * w;
      float* oseg = orow + i * oh * ow;
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        const std::int64_t iy = oy * stride_h - pad_h + ky;
        if (iy < 0 || iy >= h) {
          std::fill(oseg + oy * ow, oseg + (oy + 1) * ow, 0.f);
          continue;
        }
        const float* irow = img + iy * w;
        for (std::int64_t ox = 0; ox < ow; ++ox) {
          const std::int64_t ix = ox * stride_w - pad_w + kx;
          oseg[oy * ow + ox] = (ix >= 0 && ix < w) ? irow[ix] : 0.f;
        }
      }
    }
  });
}

Tensor im2col_batched(const Tensor& input, int kh, int kw, int stride_h,
                      int stride_w, int pad_h, int pad_w) {
  check(input.rank() == 4, "im2col_batched expects input of shape (N, C, H, W)");
  check(kh > 0 && kw > 0 && stride_h > 0 && stride_w > 0 && pad_h >= 0 &&
            pad_w >= 0,
        "im2col_batched parameters out of range");
  const std::int64_t n = input.dim(0), c = input.dim(1), h = input.dim(2),
                     w = input.dim(3);
  const std::int64_t oh = (h + 2 * pad_h - kh) / stride_h + 1;
  const std::int64_t ow = (w + 2 * pad_w - kw) / stride_w + 1;
  check(oh > 0 && ow > 0, "im2col_batched produces empty output");

  Tensor out(Shape{c * kh * kw, n * oh * ow});
  im2col_batched_into(input.data(), n, c, h, w, kh, kw, stride_h, stride_w,
                      pad_h, pad_w, out.data());
  return out;
}

void col2im_batched_into(const float* pc, std::int64_t n,
                         std::int64_t channels, std::int64_t height,
                         std::int64_t width, int kh, int kw, int stride_h,
                         int stride_w, int pad_h, int pad_w, float* po) {
  const std::int64_t oh = (height + 2 * pad_h - kh) / stride_h + 1;
  const std::int64_t ow = (width + 2 * pad_w - kw) / stride_w + 1;
  // Samples write disjoint output chunks; scatter order within a sample is
  // fixed, so results are pool-size independent.
  parallel_for(n, [&](std::int64_t i) {
    float* img_base = po + i * channels * height * width;
    std::memset(img_base, 0,
                static_cast<std::size_t>(channels * height * width) *
                    sizeof(float));
    for (std::int64_t ch = 0; ch < channels; ++ch) {
      for (int ky = 0; ky < kh; ++ky) {
        for (int kx = 0; kx < kw; ++kx) {
          const std::int64_t row = (ch * kh + ky) * kw + kx;
          const float* crow = pc + row * n * oh * ow + i * oh * ow;
          for (std::int64_t oy = 0; oy < oh; ++oy) {
            const std::int64_t iy = oy * stride_h - pad_h + ky;
            if (iy < 0 || iy >= height) continue;
            float* orow = img_base + (ch * height + iy) * width;
            for (std::int64_t ox = 0; ox < ow; ++ox) {
              const std::int64_t ix = ox * stride_w - pad_w + kx;
              if (ix >= 0 && ix < width) orow[ix] += crow[oy * ow + ox];
            }
          }
        }
      }
    }
  });
}

Tensor col2im_batched(const Tensor& columns, std::int64_t n,
                      std::int64_t channels, std::int64_t height,
                      std::int64_t width, int kh, int kw, int stride_h,
                      int stride_w, int pad_h, int pad_w) {
  check(columns.rank() == 2, "col2im_batched expects rank-2 columns");
  const std::int64_t oh = (height + 2 * pad_h - kh) / stride_h + 1;
  const std::int64_t ow = (width + 2 * pad_w - kw) / stride_w + 1;
  check(columns.dim(0) == channels * kh * kw,
        "col2im_batched columns row count mismatch");
  check(columns.dim(1) == n * oh * ow,
        "col2im_batched columns col count mismatch");

  Tensor out(Shape{n, channels, height, width});
  col2im_batched_into(columns.data(), n, channels, height, width, kh, kw,
                      stride_h, stride_w, pad_h, pad_w, out.data());
  return out;
}

void vol2col_batched_into(const float* pi, std::int64_t n, std::int64_t c,
                          std::int64_t d, std::int64_t h, std::int64_t w,
                          int kd, int kh, int kw, int stride_d, int stride_h,
                          int stride_w, int pad_d, int pad_h, int pad_w,
                          float* po) {
  const std::int64_t od = (d + 2 * pad_d - kd) / stride_d + 1;
  const std::int64_t oh = (h + 2 * pad_h - kh) / stride_h + 1;
  const std::int64_t ow = (w + 2 * pad_w - kw) / stride_w + 1;
  const std::int64_t taps = static_cast<std::int64_t>(kd) * kh * kw;
  parallel_for(c * taps, [&](std::int64_t row) {
    const std::int64_t ch = row / taps;
    std::int64_t rem = row % taps;
    const int kz = static_cast<int>(rem / (kh * kw));
    rem %= kh * kw;
    const int ky = static_cast<int>(rem / kw);
    const int kx = static_cast<int>(rem % kw);
    float* orow = po + row * n * od * oh * ow;
    for (std::int64_t i = 0; i < n; ++i) {
      const float* vol = pi + (i * c + ch) * d * h * w;
      float* oseg = orow + i * od * oh * ow;
      for (std::int64_t oz = 0; oz < od; ++oz) {
        const std::int64_t iz = oz * stride_d - pad_d + kz;
        if (iz < 0 || iz >= d) {
          std::fill(oseg + oz * oh * ow, oseg + (oz + 1) * oh * ow, 0.f);
          continue;
        }
        for (std::int64_t oy = 0; oy < oh; ++oy) {
          const std::int64_t iy = oy * stride_h - pad_h + ky;
          float* oline = oseg + (oz * oh + oy) * ow;
          if (iy < 0 || iy >= h) {
            std::fill(oline, oline + ow, 0.f);
            continue;
          }
          const float* irow = vol + (iz * h + iy) * w;
          for (std::int64_t ox = 0; ox < ow; ++ox) {
            const std::int64_t ix = ox * stride_w - pad_w + kx;
            oline[ox] = (ix >= 0 && ix < w) ? irow[ix] : 0.f;
          }
        }
      }
    }
  });
}

Tensor vol2col_batched(const Tensor& input, int kd, int kh, int kw,
                       int stride_d, int stride_h, int stride_w, int pad_d,
                       int pad_h, int pad_w) {
  check(input.rank() == 5,
        "vol2col_batched expects input of shape (N, C, D, H, W)");
  check(kd > 0 && kh > 0 && kw > 0 && stride_d > 0 && stride_h > 0 &&
            stride_w > 0 && pad_d >= 0 && pad_h >= 0 && pad_w >= 0,
        "vol2col_batched parameters out of range");
  const std::int64_t n = input.dim(0), c = input.dim(1), d = input.dim(2),
                     h = input.dim(3), w = input.dim(4);
  const std::int64_t od = (d + 2 * pad_d - kd) / stride_d + 1;
  const std::int64_t oh = (h + 2 * pad_h - kh) / stride_h + 1;
  const std::int64_t ow = (w + 2 * pad_w - kw) / stride_w + 1;
  check(od > 0 && oh > 0 && ow > 0, "vol2col_batched produces empty output");

  Tensor out(Shape{c * kd * kh * kw, n * od * oh * ow});
  vol2col_batched_into(input.data(), n, c, d, h, w, kd, kh, kw, stride_d,
                       stride_h, stride_w, pad_d, pad_h, pad_w, out.data());
  return out;
}

void col2vol_batched_into(const float* pc, std::int64_t n,
                          std::int64_t channels, std::int64_t depth,
                          std::int64_t height, std::int64_t width, int kd,
                          int kh, int kw, int stride_d, int stride_h,
                          int stride_w, int pad_d, int pad_h, int pad_w,
                          float* po) {
  const std::int64_t od = (depth + 2 * pad_d - kd) / stride_d + 1;
  const std::int64_t oh = (height + 2 * pad_h - kh) / stride_h + 1;
  const std::int64_t ow = (width + 2 * pad_w - kw) / stride_w + 1;
  parallel_for(n, [&](std::int64_t i) {
    float* vol_base = po + i * channels * depth * height * width;
    std::memset(vol_base, 0,
                static_cast<std::size_t>(channels * depth * height * width) *
                    sizeof(float));
    for (std::int64_t ch = 0; ch < channels; ++ch) {
      for (int kz = 0; kz < kd; ++kz) {
        for (int ky = 0; ky < kh; ++ky) {
          for (int kx = 0; kx < kw; ++kx) {
            const std::int64_t row =
                ((ch * kd + kz) * kh + ky) * kw + kx;
            const float* crow =
                pc + row * n * od * oh * ow + i * od * oh * ow;
            for (std::int64_t oz = 0; oz < od; ++oz) {
              const std::int64_t iz = oz * stride_d - pad_d + kz;
              if (iz < 0 || iz >= depth) continue;
              for (std::int64_t oy = 0; oy < oh; ++oy) {
                const std::int64_t iy = oy * stride_h - pad_h + ky;
                if (iy < 0 || iy >= height) continue;
                float* orow =
                    vol_base + ((ch * depth + iz) * height + iy) * width;
                const float* cline = crow + (oz * oh + oy) * ow;
                for (std::int64_t ox = 0; ox < ow; ++ox) {
                  const std::int64_t ix = ox * stride_w - pad_w + kx;
                  if (ix >= 0 && ix < width) orow[ix] += cline[ox];
                }
              }
            }
          }
        }
      }
    }
  });
}

Tensor col2vol_batched(const Tensor& columns, std::int64_t n,
                       std::int64_t channels, std::int64_t depth,
                       std::int64_t height, std::int64_t width, int kd, int kh,
                       int kw, int stride_d, int stride_h, int stride_w,
                       int pad_d, int pad_h, int pad_w) {
  check(columns.rank() == 2, "col2vol_batched expects rank-2 columns");
  const std::int64_t od = (depth + 2 * pad_d - kd) / stride_d + 1;
  const std::int64_t oh = (height + 2 * pad_h - kh) / stride_h + 1;
  const std::int64_t ow = (width + 2 * pad_w - kw) / stride_w + 1;
  const std::int64_t taps = static_cast<std::int64_t>(kd) * kh * kw;
  check(columns.dim(0) == channels * taps,
        "col2vol_batched columns row count mismatch");
  check(columns.dim(1) == n * od * oh * ow,
        "col2vol_batched columns col count mismatch");

  Tensor out(Shape{n, channels, depth, height, width});
  col2vol_batched_into(columns.data(), n, channels, depth, height, width, kd,
                       kh, kw, stride_d, stride_h, stride_w, pad_d, pad_h,
                       pad_w, out.data());
  return out;
}

namespace {

// One lowered output line: ow bytes for a fixed (channel, ky, kx) tap and
// input row. For the unit-stride case the in-range span is one contiguous
// memcpy between two pad fills; the generic case checks per element.
inline void lower_u8_line(const std::uint8_t* irow, std::int64_t w,
                          std::int64_t ow, int stride_w, int pad_w, int kx,
                          std::uint8_t pad, std::uint8_t* oline) {
  if (stride_w == 1) {
    // ix = ox - pad_w + kx in [0, w) <=> ox in [head, head + span).
    const std::int64_t head =
        std::min(ow, std::max<std::int64_t>(0, pad_w - kx));
    const std::int64_t span =
        std::min(ow, w + pad_w - kx) - head;
    if (head > 0) std::memset(oline, pad, static_cast<std::size_t>(head));
    if (span > 0) {
      std::memcpy(oline + head, irow + head - pad_w + kx,
                  static_cast<std::size_t>(span));
    }
    const std::int64_t tail = ow - head - std::max<std::int64_t>(span, 0);
    if (tail > 0) {
      std::memset(oline + ow - tail, pad, static_cast<std::size_t>(tail));
    }
    return;
  }
  for (std::int64_t ox = 0; ox < ow; ++ox) {
    const std::int64_t ix = ox * stride_w - pad_w + kx;
    oline[ox] = (ix >= 0 && ix < w) ? irow[ix] : pad;
  }
}

}  // namespace

void im2col_batched_u8_into(const std::uint8_t* pi, std::int64_t n,
                            std::int64_t c, std::int64_t h, std::int64_t w,
                            int kh, int kw, int stride_h, int stride_w,
                            int pad_h, int pad_w, std::uint8_t pad,
                            std::uint8_t* po) {
  const std::int64_t oh = (h + 2 * pad_h - kh) / stride_h + 1;
  const std::int64_t ow = (w + 2 * pad_w - kw) / stride_w + 1;
  // Same row-parallel structure as the float lowering, 4x less bandwidth.
  parallel_for(c * kh * kw, [&](std::int64_t row) {
    const std::int64_t ch = row / (kh * kw);
    const std::int64_t rem = row % (kh * kw);
    const int ky = static_cast<int>(rem / kw);
    const int kx = static_cast<int>(rem % kw);
    std::uint8_t* orow = po + row * n * oh * ow;
    for (std::int64_t i = 0; i < n; ++i) {
      const std::uint8_t* img = pi + (i * c + ch) * h * w;
      std::uint8_t* oseg = orow + i * oh * ow;
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        const std::int64_t iy = oy * stride_h - pad_h + ky;
        if (iy < 0 || iy >= h) {
          std::memset(oseg + oy * ow, pad, static_cast<std::size_t>(ow));
          continue;
        }
        lower_u8_line(img + iy * w, w, ow, stride_w, pad_w, kx, pad,
                      oseg + oy * ow);
      }
    }
  });
}

void vol2col_batched_u8_into(const std::uint8_t* pi, std::int64_t n,
                             std::int64_t c, std::int64_t d, std::int64_t h,
                             std::int64_t w, int kd, int kh, int kw,
                             int stride_d, int stride_h, int stride_w,
                             int pad_d, int pad_h, int pad_w, std::uint8_t pad,
                             std::uint8_t* po) {
  const std::int64_t od = (d + 2 * pad_d - kd) / stride_d + 1;
  const std::int64_t oh = (h + 2 * pad_h - kh) / stride_h + 1;
  const std::int64_t ow = (w + 2 * pad_w - kw) / stride_w + 1;
  const std::int64_t taps = static_cast<std::int64_t>(kd) * kh * kw;
  parallel_for(c * taps, [&](std::int64_t row) {
    const std::int64_t ch = row / taps;
    std::int64_t rem = row % taps;
    const int kz = static_cast<int>(rem / (kh * kw));
    rem %= kh * kw;
    const int ky = static_cast<int>(rem / kw);
    const int kx = static_cast<int>(rem % kw);
    std::uint8_t* orow = po + row * n * od * oh * ow;
    for (std::int64_t i = 0; i < n; ++i) {
      const std::uint8_t* vol = pi + (i * c + ch) * d * h * w;
      std::uint8_t* oseg = orow + i * od * oh * ow;
      for (std::int64_t oz = 0; oz < od; ++oz) {
        const std::int64_t iz = oz * stride_d - pad_d + kz;
        if (iz < 0 || iz >= d) {
          std::memset(oseg + oz * oh * ow, pad,
                      static_cast<std::size_t>(oh * ow));
          continue;
        }
        for (std::int64_t oy = 0; oy < oh; ++oy) {
          const std::int64_t iy = oy * stride_h - pad_h + ky;
          std::uint8_t* oline = oseg + (oz * oh + oy) * ow;
          if (iy < 0 || iy >= h) {
            std::memset(oline, pad, static_cast<std::size_t>(ow));
            continue;
          }
          lower_u8_line(vol + (iz * h + iy) * w, w, ow, stride_w, pad_w, kx,
                        pad, oline);
        }
      }
    }
  });
}

namespace {

#if defined(__x86_64__)
// 16×16 byte-tile transpose: four unpack-butterfly stages (stride-8
// pairing with doubling element width) land the transpose in identity row
// order. SSE2 is the x86-64 baseline, so no dispatch is needed.
inline void transpose16x16_u8(const std::uint8_t* src, std::int64_t src_ld,
                              std::uint8_t* dst, std::int64_t dst_ld) {
  __m128i x[16], y[16];
  for (int i = 0; i < 16; ++i) {
    x[i] = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(src + i * src_ld));
  }
  for (int s = 0; s < 2; ++s) {
    for (int i = 0; i < 8; ++i) {
      y[2 * i] = _mm_unpacklo_epi8(x[i], x[i + 8]);
      y[2 * i + 1] = _mm_unpackhi_epi8(x[i], x[i + 8]);
    }
    for (int i = 0; i < 8; ++i) {
      x[2 * i] = _mm_unpacklo_epi8(y[i], y[i + 8]);
      x[2 * i + 1] = _mm_unpackhi_epi8(y[i], y[i + 8]);
    }
  }
  for (int i = 0; i < 16; ++i) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i * dst_ld), x[i]);
  }
}
#endif

}  // namespace

void transpose_u8_into(const std::uint8_t* a, std::int64_t rows,
                       std::int64_t cols, std::uint8_t* out,
                       std::int64_t row_stride) {
  check(row_stride >= rows, "transpose_u8_into: row_stride < rows");
  // 64×64 byte macro-tiles keep both streams L1-resident; inside, full
  // 16×16 sub-tiles run the SIMD butterfly and the edges go scalar.
  constexpr std::int64_t kTile = 64;
  parallel_for_grain(cols, kTile, [&](std::int64_t c0, std::int64_t c1, int) {
    for (std::int64_t ct = c0; ct < c1; ct += kTile) {
      const std::int64_t cmax = std::min(c1, ct + kTile);
      for (std::int64_t rt = 0; rt < rows; rt += kTile) {
        const std::int64_t rmax = std::min(rows, rt + kTile);
        std::int64_t c = ct;
#if defined(__x86_64__)
        for (; c + 16 <= cmax; c += 16) {
          std::int64_t r = rt;
          for (; r + 16 <= rmax; r += 16) {
            transpose16x16_u8(a + r * cols + c, cols,
                              out + c * row_stride + r, row_stride);
          }
          for (std::int64_t cc = c; cc < c + 16; ++cc) {
            std::uint8_t* orow = out + cc * row_stride;
            for (std::int64_t rr = r; rr < rmax; ++rr) {
              orow[rr] = a[rr * cols + cc];
            }
          }
        }
#endif
        for (; c < cmax; ++c) {
          std::uint8_t* orow = out + c * row_stride;
          for (std::int64_t r = rt; r < rmax; ++r) {
            orow[r] = a[r * cols + c];
          }
        }
      }
      if (row_stride > rows) {
        for (std::int64_t c = ct; c < cmax; ++c) {
          std::memset(out + c * row_stride + rows, 0,
                      static_cast<std::size_t>(row_stride - rows));
        }
      }
    }
  });
}

void batch_to_channel_major_into(const float* pi, std::int64_t n,
                                 std::int64_t c, std::int64_t inner,
                                 float* po) {
  parallel_for(c, [&](std::int64_t ch) {
    for (std::int64_t i = 0; i < n; ++i) {
      std::memcpy(po + (ch * n + i) * inner, pi + (i * c + ch) * inner,
                  static_cast<std::size_t>(inner) * sizeof(float));
    }
  });
}

Tensor batch_to_channel_major(const Tensor& input) {
  check(input.rank() >= 3, "batch_to_channel_major expects (N, C, ...) input");
  const std::int64_t n = input.dim(0), c = input.dim(1);
  std::int64_t inner = 1;
  for (int i = 2; i < input.rank(); ++i) inner *= input.dim(i);
  Tensor out(Shape{c, n * inner});
  batch_to_channel_major_into(input.data(), n, c, inner, out.data());
  return out;
}

void channel_major_to_batch_into(const float* pi, std::int64_t n,
                                 std::int64_t c, std::int64_t inner,
                                 float* po) {
  parallel_for(n, [&](std::int64_t i) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      std::memcpy(po + (i * c + ch) * inner, pi + (ch * n + i) * inner,
                  static_cast<std::size_t>(inner) * sizeof(float));
    }
  });
}

Tensor channel_major_to_batch(const Tensor& mat, const Shape& out_shape) {
  check(mat.rank() == 2, "channel_major_to_batch expects a rank-2 matrix");
  check(out_shape.rank() >= 3, "channel_major_to_batch needs (N, C, ...) out");
  const std::int64_t n = out_shape.dim(0), c = out_shape.dim(1);
  std::int64_t inner = 1;
  for (int i = 2; i < out_shape.rank(); ++i) inner *= out_shape.dim(i);
  check(mat.dim(0) == c && mat.dim(1) == n * inner,
        "channel_major_to_batch shape mismatch");
  Tensor out(out_shape);
  channel_major_to_batch_into(mat.data(), n, c, inner, out.data());
  return out;
}

void add_channel_bias(Tensor& batch, const Tensor& bias) {
  check(batch.rank() >= 3, "add_channel_bias expects (N, C, ...) input");
  const std::int64_t n = batch.dim(0), c = batch.dim(1);
  check(bias.rank() == 1 && bias.dim(0) == c,
        "add_channel_bias bias shape mismatch");
  std::int64_t inner = 1;
  for (int i = 2; i < batch.rank(); ++i) inner *= batch.dim(i);
  float* po = batch.data();
  const float* pb = bias.data();
  parallel_for(n * c, [&](std::int64_t i) {
    const float b = pb[i % c];
    float* seg = po + i * inner;
    for (std::int64_t p = 0; p < inner; ++p) seg[p] += b;
  });
}

void accumulate_channel_sums(const Tensor& batch, Tensor& sums) {
  check(batch.rank() >= 3, "accumulate_channel_sums expects (N, C, ...)");
  const std::int64_t n = batch.dim(0), c = batch.dim(1);
  check(sums.rank() == 1 && sums.dim(0) == c,
        "accumulate_channel_sums sums shape mismatch");
  std::int64_t inner = 1;
  for (int i = 2; i < batch.rank(); ++i) inner *= batch.dim(i);
  const float* pi = batch.data();
  float* ps = sums.data();
  parallel_for(c, [&](std::int64_t ch) {
    double acc = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      const float* seg = pi + (i * c + ch) * inner;
      for (std::int64_t p = 0; p < inner; ++p) acc += seg[p];
    }
    ps[ch] += static_cast<float>(acc);
  });
}

Tensor pad2d(const Tensor& input, int pad_h, int pad_w) {
  check(pad_h >= 0 && pad_w >= 0, "pad2d requires non-negative padding");
  const Flat3 f = flatten_spatial(input.shape(), "pad2d");
  const std::int64_t orows = f.rows + 2 * pad_h;
  const std::int64_t ocols = f.cols + 2 * pad_w;
  Tensor out(with_spatial(input.shape(), orows, ocols));
  const float* pi = input.data();
  float* po = out.data();
  for (std::int64_t b = 0; b < f.batch; ++b) {
    for (std::int64_t r = 0; r < f.rows; ++r) {
      std::memcpy(po + (b * orows + r + pad_h) * ocols + pad_w,
                  pi + (b * f.rows + r) * f.cols,
                  static_cast<std::size_t>(f.cols) * sizeof(float));
    }
  }
  return out;
}

Tensor crop2d(const Tensor& input, std::int64_t r0, std::int64_t c0,
              std::int64_t rows, std::int64_t cols) {
  const Flat3 f = flatten_spatial(input.shape(), "crop2d");
  check(r0 >= 0 && c0 >= 0 && rows > 0 && cols > 0 && r0 + rows <= f.rows &&
            c0 + cols <= f.cols,
        "crop2d window out of range");
  Tensor out(with_spatial(input.shape(), rows, cols));
  const float* pi = input.data();
  float* po = out.data();
  for (std::int64_t b = 0; b < f.batch; ++b) {
    for (std::int64_t r = 0; r < rows; ++r) {
      std::memcpy(po + (b * rows + r) * cols,
                  pi + (b * f.rows + r0 + r) * f.cols + c0,
                  static_cast<std::size_t>(cols) * sizeof(float));
    }
  }
  return out;
}

namespace {

Tensor pool2d(const Tensor& input, int factor, bool average) {
  check(factor > 0, "pool2d requires factor > 0");
  const Flat3 f = flatten_spatial(input.shape(),
                                  average ? "avg_pool2d" : "sum_pool2d");
  check(f.rows % factor == 0 && f.cols % factor == 0,
        "pool2d spatial dims must be divisible by factor");
  const std::int64_t orows = f.rows / factor;
  const std::int64_t ocols = f.cols / factor;
  Tensor out(with_spatial(input.shape(), orows, ocols));
  const float* pi = input.data();
  float* po = out.data();
  const float scale = average ? 1.f / (static_cast<float>(factor) * factor)
                              : 1.f;
  parallel_for(f.batch, [&](std::int64_t b) {
    for (std::int64_t r = 0; r < orows; ++r) {
      for (std::int64_t c = 0; c < ocols; ++c) {
        double acc = 0.0;
        for (int dr = 0; dr < factor; ++dr) {
          const float* irow =
              pi + (b * f.rows + r * factor + dr) * f.cols + c * factor;
          for (int dc = 0; dc < factor; ++dc) acc += irow[dc];
        }
        po[(b * orows + r) * ocols + c] = static_cast<float>(acc) * scale;
      }
    }
  });
  return out;
}

}  // namespace

Tensor avg_pool2d(const Tensor& input, int factor) {
  return pool2d(input, factor, /*average=*/true);
}

Tensor sum_pool2d(const Tensor& input, int factor) {
  return pool2d(input, factor, /*average=*/false);
}

void upsample_nearest2d_into(const float* pi, std::int64_t batch,
                             std::int64_t rows, std::int64_t cols, int factor,
                             float scale, float* po) {
  const std::int64_t orows = rows * factor;
  const std::int64_t ocols = cols * factor;
  parallel_for(batch, [&](std::int64_t b) {
    for (std::int64_t r = 0; r < orows; ++r) {
      const float* irow = pi + (b * rows + r / factor) * cols;
      float* orow = po + (b * orows + r) * ocols;
      for (std::int64_t c = 0; c < ocols; ++c) {
        orow[c] = irow[c / factor] * scale;
      }
    }
  });
}

Tensor upsample_nearest2d(const Tensor& input, int factor) {
  check(factor > 0, "upsample_nearest2d requires factor > 0");
  const Flat3 f = flatten_spatial(input.shape(), "upsample_nearest2d");
  Tensor out(with_spatial(input.shape(), f.rows * factor, f.cols * factor));
  upsample_nearest2d_into(input.data(), f.batch, f.rows, f.cols, factor, 1.f,
                          out.data());
  return out;
}

Tensor concat0(const std::vector<Tensor>& parts) {
  check(!parts.empty(), "concat0 requires at least one tensor");
  std::int64_t total0 = 0;
  for (const Tensor& p : parts) {
    check(p.rank() == parts.front().rank(), "concat0 rank mismatch");
    for (int ax = 1; ax < p.rank(); ++ax) {
      check(p.dim(ax) == parts.front().dim(ax), "concat0 trailing dim mismatch");
    }
    total0 += p.dim(0);
  }
  std::vector<std::int64_t> dims = parts.front().shape().dims();
  dims[0] = total0;
  Tensor out{Shape(dims)};
  float* po = out.data();
  for (const Tensor& p : parts) {
    std::memcpy(po, p.data(), static_cast<std::size_t>(p.size()) * sizeof(float));
    po += p.size();
  }
  return out;
}

Tensor stack0(const std::vector<Tensor>& parts) {
  check(!parts.empty(), "stack0 requires at least one tensor");
  for (const Tensor& p : parts) {
    check(p.shape() == parts.front().shape(), "stack0 shape mismatch");
  }
  std::vector<std::int64_t> dims = parts.front().shape().dims();
  dims.insert(dims.begin(), static_cast<std::int64_t>(parts.size()));
  Tensor out{Shape(dims)};
  float* po = out.data();
  for (const Tensor& p : parts) {
    std::memcpy(po, p.data(), static_cast<std::size_t>(p.size()) * sizeof(float));
    po += p.size();
  }
  return out;
}

Tensor select0(const Tensor& input, std::int64_t index) {
  check(input.rank() >= 2, "select0 requires rank >= 2");
  check(index >= 0 && index < input.dim(0), "select0 index out of range");
  std::vector<std::int64_t> dims(input.shape().dims().begin() + 1,
                                 input.shape().dims().end());
  Shape out_shape(dims);
  const std::int64_t chunk = out_shape.volume();
  Tensor out(out_shape);
  std::memcpy(out.data(), input.data() + index * chunk,
              static_cast<std::size_t>(chunk) * sizeof(float));
  return out;
}

}  // namespace mtsr
