#include "src/tensor/tensor_ops.hpp"

#include <algorithm>
#include <cstring>

#include "src/common/check.hpp"

namespace mtsr {
namespace {

// Splits a rank-2..4 tensor into (batch, rows, cols) where batch collapses
// all leading axes. Used by the 2-D spatial helpers below.
struct Flat3 {
  std::int64_t batch;
  std::int64_t rows;
  std::int64_t cols;
};

Flat3 flatten_spatial(const Shape& s, const char* who) {
  check(s.rank() >= 2 && s.rank() <= 4,
        std::string(who) + " requires a rank-2..4 tensor");
  std::int64_t batch = 1;
  for (int i = 0; i < s.rank() - 2; ++i) batch *= s.dim(i);
  return {batch, s.dim(-2), s.dim(-1)};
}

Shape with_spatial(const Shape& s, std::int64_t rows, std::int64_t cols) {
  std::vector<std::int64_t> dims = s.dims();
  dims[dims.size() - 2] = rows;
  dims[dims.size() - 1] = cols;
  return Shape(dims);
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  check(a.rank() == 2 && b.rank() == 2, "matmul requires rank-2 tensors");
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  check(b.dim(0) == k, "matmul inner dimensions must agree: " +
                           a.shape().to_string() + " * " +
                           b.shape().to_string());
  Tensor c(Shape{m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  // i-k-j loop order: the inner loop streams both B and C rows.
  for (std::int64_t i = 0; i < m; ++i) {
    float* crow = pc + i * n;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float aik = pa[i * k + kk];
      if (aik == 0.f) continue;
      const float* brow = pb + kk * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  check(a.rank() == 2 && b.rank() == 2, "matmul_tn requires rank-2 tensors");
  const std::int64_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  check(b.dim(0) == k, "matmul_tn inner dimensions must agree");
  Tensor c(Shape{m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (std::int64_t kk = 0; kk < k; ++kk) {
    const float* arow = pa + kk * m;
    const float* brow = pb + kk * n;
    for (std::int64_t i = 0; i < m; ++i) {
      const float aki = arow[i];
      if (aki == 0.f) continue;
      float* crow = pc + i * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += aki * brow[j];
    }
  }
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  check(a.rank() == 2 && b.rank() == 2, "matmul_nt requires rank-2 tensors");
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  check(b.dim(1) == k, "matmul_nt inner dimensions must agree");
  Tensor c(Shape{m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    float* crow = pc + i * n;
    for (std::int64_t j = 0; j < n; ++j) {
      const float* brow = pb + j * k;
      float acc = 0.f;
      for (std::int64_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      crow[j] = acc;
    }
  }
  return c;
}

Tensor transpose(const Tensor& a) {
  check(a.rank() == 2, "transpose requires a rank-2 tensor");
  const std::int64_t m = a.dim(0), n = a.dim(1);
  Tensor out(Shape{n, m});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      out.data()[j * m + i] = a.data()[i * n + j];
    }
  }
  return out;
}

Tensor im2col(const Tensor& input, int kh, int kw, int stride_h, int stride_w,
              int pad_h, int pad_w) {
  check(input.rank() == 3, "im2col expects input of shape (C, H, W)");
  check(kh > 0 && kw > 0 && stride_h > 0 && stride_w > 0 && pad_h >= 0 &&
            pad_w >= 0,
        "im2col parameters out of range");
  const std::int64_t c = input.dim(0), h = input.dim(1), w = input.dim(2);
  const std::int64_t oh = (h + 2 * pad_h - kh) / stride_h + 1;
  const std::int64_t ow = (w + 2 * pad_w - kw) / stride_w + 1;
  check(oh > 0 && ow > 0, "im2col produces empty output for these params");

  Tensor out(Shape{c * kh * kw, oh * ow});
  float* po = out.data();
  const float* pi = input.data();
  for (std::int64_t ch = 0; ch < c; ++ch) {
    for (int ky = 0; ky < kh; ++ky) {
      for (int kx = 0; kx < kw; ++kx) {
        const std::int64_t row = (ch * kh + ky) * kw + kx;
        float* orow = po + row * oh * ow;
        for (std::int64_t oy = 0; oy < oh; ++oy) {
          const std::int64_t iy = oy * stride_h - pad_h + ky;
          if (iy < 0 || iy >= h) {
            std::fill(orow + oy * ow, orow + (oy + 1) * ow, 0.f);
            continue;
          }
          const float* irow = pi + (ch * h + iy) * w;
          for (std::int64_t ox = 0; ox < ow; ++ox) {
            const std::int64_t ix = ox * stride_w - pad_w + kx;
            orow[oy * ow + ox] = (ix >= 0 && ix < w) ? irow[ix] : 0.f;
          }
        }
      }
    }
  }
  return out;
}

Tensor col2im(const Tensor& columns, std::int64_t channels,
              std::int64_t height, std::int64_t width, int kh, int kw,
              int stride_h, int stride_w, int pad_h, int pad_w) {
  check(columns.rank() == 2, "col2im expects rank-2 columns");
  const std::int64_t oh = (height + 2 * pad_h - kh) / stride_h + 1;
  const std::int64_t ow = (width + 2 * pad_w - kw) / stride_w + 1;
  check(columns.dim(0) == channels * kh * kw,
        "col2im columns row count mismatch");
  check(columns.dim(1) == oh * ow, "col2im columns col count mismatch");

  Tensor out(Shape{channels, height, width});
  float* po = out.data();
  const float* pc = columns.data();
  for (std::int64_t ch = 0; ch < channels; ++ch) {
    for (int ky = 0; ky < kh; ++ky) {
      for (int kx = 0; kx < kw; ++kx) {
        const std::int64_t row = (ch * kh + ky) * kw + kx;
        const float* crow = pc + row * oh * ow;
        for (std::int64_t oy = 0; oy < oh; ++oy) {
          const std::int64_t iy = oy * stride_h - pad_h + ky;
          if (iy < 0 || iy >= height) continue;
          float* orow = po + (ch * height + iy) * width;
          for (std::int64_t ox = 0; ox < ow; ++ox) {
            const std::int64_t ix = ox * stride_w - pad_w + kx;
            if (ix >= 0 && ix < width) orow[ix] += crow[oy * ow + ox];
          }
        }
      }
    }
  }
  return out;
}

Tensor pad2d(const Tensor& input, int pad_h, int pad_w) {
  check(pad_h >= 0 && pad_w >= 0, "pad2d requires non-negative padding");
  const Flat3 f = flatten_spatial(input.shape(), "pad2d");
  const std::int64_t orows = f.rows + 2 * pad_h;
  const std::int64_t ocols = f.cols + 2 * pad_w;
  Tensor out(with_spatial(input.shape(), orows, ocols));
  const float* pi = input.data();
  float* po = out.data();
  for (std::int64_t b = 0; b < f.batch; ++b) {
    for (std::int64_t r = 0; r < f.rows; ++r) {
      std::memcpy(po + (b * orows + r + pad_h) * ocols + pad_w,
                  pi + (b * f.rows + r) * f.cols,
                  static_cast<std::size_t>(f.cols) * sizeof(float));
    }
  }
  return out;
}

Tensor crop2d(const Tensor& input, std::int64_t r0, std::int64_t c0,
              std::int64_t rows, std::int64_t cols) {
  const Flat3 f = flatten_spatial(input.shape(), "crop2d");
  check(r0 >= 0 && c0 >= 0 && rows > 0 && cols > 0 && r0 + rows <= f.rows &&
            c0 + cols <= f.cols,
        "crop2d window out of range");
  Tensor out(with_spatial(input.shape(), rows, cols));
  const float* pi = input.data();
  float* po = out.data();
  for (std::int64_t b = 0; b < f.batch; ++b) {
    for (std::int64_t r = 0; r < rows; ++r) {
      std::memcpy(po + (b * rows + r) * cols,
                  pi + (b * f.rows + r0 + r) * f.cols + c0,
                  static_cast<std::size_t>(cols) * sizeof(float));
    }
  }
  return out;
}

namespace {

Tensor pool2d(const Tensor& input, int factor, bool average) {
  check(factor > 0, "pool2d requires factor > 0");
  const Flat3 f = flatten_spatial(input.shape(),
                                  average ? "avg_pool2d" : "sum_pool2d");
  check(f.rows % factor == 0 && f.cols % factor == 0,
        "pool2d spatial dims must be divisible by factor");
  const std::int64_t orows = f.rows / factor;
  const std::int64_t ocols = f.cols / factor;
  Tensor out(with_spatial(input.shape(), orows, ocols));
  const float* pi = input.data();
  float* po = out.data();
  const float scale = average ? 1.f / (static_cast<float>(factor) * factor)
                              : 1.f;
  for (std::int64_t b = 0; b < f.batch; ++b) {
    for (std::int64_t r = 0; r < orows; ++r) {
      for (std::int64_t c = 0; c < ocols; ++c) {
        double acc = 0.0;
        for (int dr = 0; dr < factor; ++dr) {
          const float* irow =
              pi + (b * f.rows + r * factor + dr) * f.cols + c * factor;
          for (int dc = 0; dc < factor; ++dc) acc += irow[dc];
        }
        po[(b * orows + r) * ocols + c] = static_cast<float>(acc) * scale;
      }
    }
  }
  return out;
}

}  // namespace

Tensor avg_pool2d(const Tensor& input, int factor) {
  return pool2d(input, factor, /*average=*/true);
}

Tensor sum_pool2d(const Tensor& input, int factor) {
  return pool2d(input, factor, /*average=*/false);
}

Tensor upsample_nearest2d(const Tensor& input, int factor) {
  check(factor > 0, "upsample_nearest2d requires factor > 0");
  const Flat3 f = flatten_spatial(input.shape(), "upsample_nearest2d");
  const std::int64_t orows = f.rows * factor;
  const std::int64_t ocols = f.cols * factor;
  Tensor out(with_spatial(input.shape(), orows, ocols));
  const float* pi = input.data();
  float* po = out.data();
  for (std::int64_t b = 0; b < f.batch; ++b) {
    for (std::int64_t r = 0; r < orows; ++r) {
      const float* irow = pi + (b * f.rows + r / factor) * f.cols;
      float* orow = po + (b * orows + r) * ocols;
      for (std::int64_t c = 0; c < ocols; ++c) orow[c] = irow[c / factor];
    }
  }
  return out;
}

Tensor concat0(const std::vector<Tensor>& parts) {
  check(!parts.empty(), "concat0 requires at least one tensor");
  std::int64_t total0 = 0;
  for (const Tensor& p : parts) {
    check(p.rank() == parts.front().rank(), "concat0 rank mismatch");
    for (int ax = 1; ax < p.rank(); ++ax) {
      check(p.dim(ax) == parts.front().dim(ax), "concat0 trailing dim mismatch");
    }
    total0 += p.dim(0);
  }
  std::vector<std::int64_t> dims = parts.front().shape().dims();
  dims[0] = total0;
  Tensor out{Shape(dims)};
  float* po = out.data();
  for (const Tensor& p : parts) {
    std::memcpy(po, p.data(), static_cast<std::size_t>(p.size()) * sizeof(float));
    po += p.size();
  }
  return out;
}

Tensor stack0(const std::vector<Tensor>& parts) {
  check(!parts.empty(), "stack0 requires at least one tensor");
  for (const Tensor& p : parts) {
    check(p.shape() == parts.front().shape(), "stack0 shape mismatch");
  }
  std::vector<std::int64_t> dims = parts.front().shape().dims();
  dims.insert(dims.begin(), static_cast<std::int64_t>(parts.size()));
  Tensor out{Shape(dims)};
  float* po = out.data();
  for (const Tensor& p : parts) {
    std::memcpy(po, p.data(), static_cast<std::size_t>(p.size()) * sizeof(float));
    po += p.size();
  }
  return out;
}

Tensor select0(const Tensor& input, std::int64_t index) {
  check(input.rank() >= 2, "select0 requires rank >= 2");
  check(index >= 0 && index < input.dim(0), "select0 index out of range");
  std::vector<std::int64_t> dims(input.shape().dims().begin() + 1,
                                 input.shape().dims().end());
  Shape out_shape(dims);
  const std::int64_t chunk = out_shape.volume();
  Tensor out(out_shape);
  std::memcpy(out.data(), input.data() + index * chunk,
              static_cast<std::size_t>(chunk) * sizeof(float));
  return out;
}

}  // namespace mtsr
