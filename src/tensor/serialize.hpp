// Binary (de)serialization of tensors.
//
// Format: magic "MTSRTNSR", u32 version, u32 rank, rank × i64 dims, then
// volume × float32 little-endian payload. Used for model checkpoints and
// dataset caching.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "src/tensor/tensor.hpp"

namespace mtsr {

/// Writes one tensor to a binary stream. Throws std::runtime_error on I/O
/// failure.
void write_tensor(std::ostream& out, const Tensor& tensor);

/// Reads one tensor previously written by write_tensor. Throws
/// std::runtime_error on malformed input.
[[nodiscard]] Tensor read_tensor(std::istream& in);

/// Writes a named collection of tensors to `path` (count-prefixed sequence
/// of (name, tensor) pairs). The write is atomic: the payload lands in
/// `path + ".tmp"` first and renames over `path` only once complete, so a
/// crash mid-save never leaves a torn checkpoint behind and concurrent
/// readers of `path` see either the old file or the new one, whole.
void save_tensors(const std::string& path,
                  const std::vector<std::pair<std::string, Tensor>>& tensors);

/// Reads back a collection written by save_tensors.
[[nodiscard]] std::vector<std::pair<std::string, Tensor>> load_tensors(
    const std::string& path);

}  // namespace mtsr
