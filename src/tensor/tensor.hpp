// Tensor: dense row-major float32 N-d array, rank <= 5.
//
// This is the numeric substrate for the whole reproduction: traffic frames
// are rank-2 tensors, training batches are rank-4 (N, C, H, W) or rank-5
// (N, C, D, H, W) tensors, and the neural-network layers in src/nn operate
// on them. The design follows the C++ Core Guidelines: a regular value type
// with deep-copy semantics, cheap moves, explicit contracts, and no raw
// owning pointers (storage is a std::vector<float>).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/common/rng.hpp"
#include "src/tensor/shape.hpp"

namespace mtsr {

/// Dense row-major float32 tensor of rank <= 5.
class Tensor {
 public:
  /// Rank-0 empty tensor (volume 1 semantics are NOT provided; data_ empty).
  Tensor() = default;

  /// Zero-initialised tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Tensor of the given shape taking ownership of `values`
  /// (values.size() must equal shape.volume()).
  Tensor(Shape shape, std::vector<float> values);

  // ---- Factories -----------------------------------------------------------

  /// All-zeros tensor.
  [[nodiscard]] static Tensor zeros(Shape shape);
  /// All-ones tensor.
  [[nodiscard]] static Tensor ones(Shape shape);
  /// Constant-filled tensor.
  [[nodiscard]] static Tensor full(Shape shape, float value);
  /// I.i.d. N(0, stddev²) entries.
  [[nodiscard]] static Tensor randn(Shape shape, Rng& rng,
                                    float stddev = 1.f);
  /// I.i.d. U[lo, hi) entries.
  [[nodiscard]] static Tensor uniform(Shape shape, Rng& rng, float lo = 0.f,
                                      float hi = 1.f);
  /// 1-D tensor [0, 1, ..., n-1].
  [[nodiscard]] static Tensor arange(std::int64_t n);

  // ---- Introspection -------------------------------------------------------

  [[nodiscard]] const Shape& shape() const { return shape_; }
  [[nodiscard]] int rank() const { return shape_.rank(); }
  [[nodiscard]] std::int64_t dim(int axis) const { return shape_.dim(axis); }
  [[nodiscard]] std::int64_t size() const {
    return static_cast<std::int64_t>(data_.size());
  }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  [[nodiscard]] float* data() { return data_.data(); }
  [[nodiscard]] const float* data() const { return data_.data(); }
  [[nodiscard]] std::vector<float>& storage() { return data_; }
  [[nodiscard]] const std::vector<float>& storage() const { return data_; }

  // ---- Element access ------------------------------------------------------

  /// Flat (row-major) element access with bounds check.
  [[nodiscard]] float& flat(std::int64_t i);
  [[nodiscard]] float flat(std::int64_t i) const;

  /// Multi-index element access; the number of indices must equal rank().
  template <typename... Ix>
  [[nodiscard]] float& at(Ix... ix) {
    return data_[offset({static_cast<std::int64_t>(ix)...})];
  }
  template <typename... Ix>
  [[nodiscard]] float at(Ix... ix) const {
    return data_[offset({static_cast<std::int64_t>(ix)...})];
  }

  // ---- Shape manipulation (value-returning; `this` untouched) --------------

  /// Same data, new shape (volumes must match).
  [[nodiscard]] Tensor reshape(Shape new_shape) const;

  /// Deep copy.
  [[nodiscard]] Tensor clone() const { return *this; }

  // ---- In-place arithmetic -------------------------------------------------

  Tensor& fill(float value);
  Tensor& add_(const Tensor& other);          ///< this += other (same shape)
  Tensor& sub_(const Tensor& other);          ///< this -= other (same shape)
  Tensor& mul_(const Tensor& other);          ///< this *= other (elementwise)
  Tensor& add_scalar_(float s);               ///< this += s
  Tensor& mul_scalar_(float s);               ///< this *= s
  Tensor& axpy_(float alpha, const Tensor& x); ///< this += alpha * x
  Tensor& apply_(const std::function<float(float)>& fn);

  // ---- Value-returning arithmetic ------------------------------------------

  [[nodiscard]] Tensor add(const Tensor& other) const;
  [[nodiscard]] Tensor sub(const Tensor& other) const;
  [[nodiscard]] Tensor mul(const Tensor& other) const;
  [[nodiscard]] Tensor add_scalar(float s) const;
  [[nodiscard]] Tensor mul_scalar(float s) const;
  [[nodiscard]] Tensor apply(const std::function<float(float)>& fn) const;

  // ---- Reductions ----------------------------------------------------------

  [[nodiscard]] double sum() const;
  [[nodiscard]] double mean() const;
  [[nodiscard]] float min() const;
  [[nodiscard]] float max() const;
  /// Standard deviation (population, i.e. divide by N).
  [[nodiscard]] double stddev() const;
  /// Sum of squared entries.
  [[nodiscard]] double squared_norm() const;
  /// True iff all entries are finite.
  [[nodiscard]] bool all_finite() const;

  /// Human-readable summary: shape plus min/mean/max.
  [[nodiscard]] std::string describe() const;

 private:
  [[nodiscard]] std::size_t offset(
      std::initializer_list<std::int64_t> idx) const;

  Shape shape_;
  std::vector<float> data_;
};

}  // namespace mtsr
