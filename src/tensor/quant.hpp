// Quantisation primitives for the int8 inference path.
//
// The deployment story of the paper (Section 6) is inference on
// gateway-class hardware, where float32 GEMM bandwidth is the dominant
// cost. The int8 path cuts weight memory traffic 4x and runs the products
// through the u8·s8 microkernel (tensor_ops.hpp: gemm_u8s8). This header
// holds the numeric conventions every quantised layer shares:
//
//  * Weights: per-output-channel SYMMETRIC int8. Each output channel o gets
//    scale s_w[o] = max|W[o,:]| / kWeightQmax and stores round(w / s_w[o]).
//    The range is ±63 (7 bits), not ±127: it guarantees that the AVX2
//    maddubs path — which accumulates u8·s8 product PAIRS in int16 — can
//    never saturate (255·63·2 = 32130 < 32767), so every SIMD kernel is
//    bit-exact against the scalar s32 reference.
//  * Activations: per-tensor ASYMMETRIC uint8 with a zero point,
//    q = clamp(round(x / scale) + zero_point, 0, 255), calibrated from the
//    min/max observed over a handful of warm-up frames (RangeObserver).
//    The range always includes 0.0 so zero padding introduced by the conv
//    lowering quantises exactly to the zero point.
//
// Dequantisation of an s32 accumulator is
//    x̂·ŵ = s_a · s_w[o] · (acc - zero_point · Σ_k w_q[k,o])
// — the zero-point compensation term is a per-column constant the packed-B
// container precomputes at pack time (PackedInt8B::colsum).
#pragma once

#include <cstdint>

#include "src/tensor/tensor.hpp"

namespace mtsr::quant {

/// Weight quantisation range: ±63 (7 bits). See header comment — this is
/// what keeps the maddubs int16 pair accumulation saturation-free and the
/// SIMD kernels bit-exact against the scalar reference.
inline constexpr int kWeightQmax = 63;

/// Opt-in full int8 weight range for kernels that fold u8·s8 groups
/// straight into s32 accumulators (the scalar reference and the VNNI
/// vpdpbusd path, which needs no maddubs saturation headroom:
/// 255·127·4 = 129540 fits an s32 lane). Chosen at pack time
/// (pack_b_s8 full_range) — off by default so the cross-ISA bit-exactness
/// contract of ±63 is unchanged.
inline constexpr int kWeightQmaxFull = 127;

/// Per-tensor asymmetric uint8 activation quantisation parameters.
struct ActQuant {
  float scale = 1.f;
  std::int32_t zero_point = 0;
};

/// Running min/max plus first/second moments over every tensor observed
/// during calibration. The scale chooser uses the full min/max (see
/// choose_act_quant); the moments are kept for range diagnostics.
struct RangeObserver {
  float lo = 0.f;
  float hi = 0.f;
  double sum = 0.0;
  double sum_sq = 0.0;
  std::int64_t count = 0;
  bool seen = false;

  void observe(const float* x, std::int64_t n);
  void observe(const Tensor& t) { observe(t.data(), t.size()); }
};

/// Chooses activation quantisation parameters for the range [lo, hi]. The
/// range is widened to include 0 (so lowering padding is exact) and
/// degenerate ranges collapse to a safe non-zero scale.
[[nodiscard]] ActQuant choose_act_quant(float lo, float hi);

/// Calibration from an observer: the full observed min/max. Deliberately
/// NOT tail-clipped — mobile-traffic activations are heavy-tailed by
/// design (hotspots are the signal), and clipping the range at a few
/// sigma saturates exactly the cells NRMSE weights most (measured: ~3x
/// worse int8 error). The moments stay available for diagnostics.
[[nodiscard]] ActQuant choose_act_quant(const RangeObserver& observer);

/// q = clamp(round(x / scale) + zero_point, 0, 255), round-half-up.
[[nodiscard]] std::uint8_t quantize_value(float x, const ActQuant& aq);

/// x̂ = scale * (q - zero_point).
[[nodiscard]] float dequantize_value(std::uint8_t q, const ActQuant& aq);

/// Element-wise quantisation of `n` floats into uint8.
void quantize_u8(const float* x, std::int64_t n, const ActQuant& aq,
                 std::uint8_t* out);

/// Element-wise dequantisation.
void dequantize_u8(const std::uint8_t* q, std::int64_t n, const ActQuant& aq,
                   float* out);

/// Quantise-and-transpose: reads a row-major (rows × cols) float matrix and
/// writes the uint8 transpose (cols × rows) with each output row
/// zero-padded to `row_stride` bytes (row_stride >= rows; the tail padding
/// is the GEMM's k-alignment and multiplies against packed-B rows that are
/// themselves zero). The general float-source route to a gemm_u8s8 A
/// operand — the conv layers take the cheaper byte route instead
/// (quantize_u8 on the input image, then the u8 lowering + byte transpose
/// in tensor_ops.hpp), so use this when the float matrix already exists.
/// Tiled and pool-parallel; deterministic (element-wise independent).
void quantize_transpose_u8(const float* src, std::int64_t rows,
                           std::int64_t cols, const ActQuant& aq,
                           std::uint8_t* out, std::int64_t row_stride);

/// Per-sample quantise-and-transpose of an (n, c, inner) batch: output row
/// m = i*inner + pos holds the c channel values of sample i at position
/// pos, zero-padded to `row_stride`. The u8 A operand of the transposed-
/// convolution GEMM, produced straight from the layer input (no
/// channel-major float staging needed).
void quantize_batch_transpose_u8(const float* src, std::int64_t n,
                                 std::int64_t c, std::int64_t inner,
                                 const ActQuant& aq, std::uint8_t* out,
                                 std::int64_t row_stride);

/// Per-output-channel symmetric weight quantisation: `w` is row-major
/// (channels × per_channel); row o is quantised to ±qmax with its own
/// scale written to scales[o]. A zero row gets scale 1 (all-zero
/// quantised values). `qmax` defaults to kWeightQmax (the saturation-free
/// contract); pass kWeightQmaxFull for packs destined for full-range
/// (scalar/VNNI) dispatch.
///
/// With `mse_clip` set (the layer conversion default) each channel's clip
/// threshold is grid-searched below max|w| for the minimum quantisation
/// MSE: a channel whose range is stretched by one outlier tap keeps a fine
/// step for the bulk and accepts a bounded clip error on the outlier.
/// Without it the scale is exactly max|w| / qmax (every value round-trips
/// within scale/2 — the documented contract).
void quantize_weights_per_channel(const float* w, std::int64_t channels,
                                  std::int64_t per_channel, std::int8_t* wq,
                                  float* scales, bool mse_clip = false,
                                  int qmax = kWeightQmax);

}  // namespace mtsr::quant
