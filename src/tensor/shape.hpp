// Shape: the dimension list of a Tensor.
//
// Tensors in this library are dense, row-major and at most rank 5 — enough
// for the (N, C, D, H, W) layout of the 3D-convolutional ZipNet blocks. Shape
// is a small value type with the usual equality/indexing/volume helpers.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace mtsr {

/// Dimension list of a dense row-major tensor. Immutable value type.
class Shape {
 public:
  /// Maximum supported rank; (N, C, D, H, W) is the largest layout we use.
  static constexpr int kMaxRank = 5;

  /// Empty (rank-0) shape describing a default-constructed tensor.
  Shape() = default;

  /// Constructs from an explicit dimension list. All dims must be >= 0;
  /// rank must not exceed kMaxRank.
  Shape(std::initializer_list<std::int64_t> dims);
  explicit Shape(std::vector<std::int64_t> dims);

  /// Number of dimensions.
  [[nodiscard]] int rank() const { return static_cast<int>(dims_.size()); }

  /// Size of dimension `axis`; negative axes count from the back.
  [[nodiscard]] std::int64_t dim(int axis) const;

  /// Alias of dim() for bracket-style access.
  std::int64_t operator[](int axis) const { return dim(axis); }

  /// Total number of elements (product of dims; 1 for rank-0).
  [[nodiscard]] std::int64_t volume() const;

  /// Row-major strides, in elements.
  [[nodiscard]] std::vector<std::int64_t> strides() const;

  /// The raw dimension vector.
  [[nodiscard]] const std::vector<std::int64_t>& dims() const { return dims_; }

  /// Human-readable form, e.g. "(2, 3, 8, 8)".
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Shape& a, const Shape& b) {
    return a.dims_ == b.dims_;
  }
  friend bool operator!=(const Shape& a, const Shape& b) { return !(a == b); }

 private:
  std::vector<std::int64_t> dims_;
};

}  // namespace mtsr
