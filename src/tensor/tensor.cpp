#include "src/tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <sstream>

#include "src/common/check.hpp"

namespace mtsr {

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(shape_.volume()), 0.f) {
  check(shape_.rank() > 0, "Tensor requires a rank >= 1 shape");
}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(std::move(shape)), data_(std::move(values)) {
  check(shape_.rank() > 0, "Tensor requires a rank >= 1 shape");
  check(static_cast<std::int64_t>(data_.size()) == shape_.volume(),
        "Tensor value count must equal shape volume");
}

Tensor Tensor::zeros(Shape shape) { return Tensor(std::move(shape)); }

Tensor Tensor::ones(Shape shape) { return full(std::move(shape), 1.f); }

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::randn(Shape shape, Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  for (float& v : t.data_) v = static_cast<float>(rng.normal(0.0, stddev));
  return t;
}

Tensor Tensor::uniform(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (float& v : t.data_) v = static_cast<float>(rng.uniform(lo, hi));
  return t;
}

Tensor Tensor::arange(std::int64_t n) {
  check(n >= 0, "Tensor::arange requires n >= 0");
  Tensor t(Shape{n});
  std::iota(t.data_.begin(), t.data_.end(), 0.f);
  return t;
}

float& Tensor::flat(std::int64_t i) {
  check(i >= 0 && i < size(), "Tensor::flat index out of range");
  return data_[static_cast<std::size_t>(i)];
}

float Tensor::flat(std::int64_t i) const {
  check(i >= 0 && i < size(), "Tensor::flat index out of range");
  return data_[static_cast<std::size_t>(i)];
}

std::size_t Tensor::offset(std::initializer_list<std::int64_t> idx) const {
  check(static_cast<int>(idx.size()) == rank(),
        "Tensor::at index count must equal rank");
  std::size_t off = 0;
  int axis = 0;
  const auto strides = shape_.strides();
  for (std::int64_t i : idx) {
    check(i >= 0 && i < shape_.dim(axis), "Tensor::at index out of range");
    off += static_cast<std::size_t>(i * strides[static_cast<std::size_t>(axis)]);
    ++axis;
  }
  return off;
}

Tensor Tensor::reshape(Shape new_shape) const {
  check(new_shape.volume() == shape_.volume(),
        "Tensor::reshape must preserve volume (" + shape_.to_string() +
            " -> " + new_shape.to_string() + ")");
  return Tensor(std::move(new_shape), data_);
}

Tensor& Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
  return *this;
}

Tensor& Tensor::add_(const Tensor& other) {
  check(shape_ == other.shape_, "Tensor::add_ shape mismatch: " +
                                    shape_.to_string() + " vs " +
                                    other.shape_.to_string());
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::sub_(const Tensor& other) {
  check(shape_ == other.shape_, "Tensor::sub_ shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Tensor& Tensor::mul_(const Tensor& other) {
  check(shape_ == other.shape_, "Tensor::mul_ shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
  return *this;
}

Tensor& Tensor::add_scalar_(float s) {
  for (float& v : data_) v += s;
  return *this;
}

Tensor& Tensor::mul_scalar_(float s) {
  for (float& v : data_) v *= s;
  return *this;
}

Tensor& Tensor::axpy_(float alpha, const Tensor& x) {
  check(shape_ == x.shape_, "Tensor::axpy_ shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += alpha * x.data_[i];
  }
  return *this;
}

Tensor& Tensor::apply_(const std::function<float(float)>& fn) {
  for (float& v : data_) v = fn(v);
  return *this;
}

Tensor Tensor::add(const Tensor& other) const {
  Tensor out = *this;
  out.add_(other);
  return out;
}

Tensor Tensor::sub(const Tensor& other) const {
  Tensor out = *this;
  out.sub_(other);
  return out;
}

Tensor Tensor::mul(const Tensor& other) const {
  Tensor out = *this;
  out.mul_(other);
  return out;
}

Tensor Tensor::add_scalar(float s) const {
  Tensor out = *this;
  out.add_scalar_(s);
  return out;
}

Tensor Tensor::mul_scalar(float s) const {
  Tensor out = *this;
  out.mul_scalar_(s);
  return out;
}

Tensor Tensor::apply(const std::function<float(float)>& fn) const {
  Tensor out = *this;
  out.apply_(fn);
  return out;
}

double Tensor::sum() const {
  return std::accumulate(data_.begin(), data_.end(), 0.0);
}

double Tensor::mean() const {
  check(!data_.empty(), "Tensor::mean of empty tensor");
  return sum() / static_cast<double>(data_.size());
}

float Tensor::min() const {
  check(!data_.empty(), "Tensor::min of empty tensor");
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::max() const {
  check(!data_.empty(), "Tensor::max of empty tensor");
  return *std::max_element(data_.begin(), data_.end());
}

double Tensor::stddev() const {
  check(!data_.empty(), "Tensor::stddev of empty tensor");
  const double m = mean();
  double acc = 0.0;
  for (float v : data_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(data_.size()));
}

double Tensor::squared_norm() const {
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return acc;
}

bool Tensor::all_finite() const {
  return std::all_of(data_.begin(), data_.end(),
                     [](float v) { return std::isfinite(v); });
}

std::string Tensor::describe() const {
  std::ostringstream out;
  out << "Tensor" << shape_.to_string();
  if (!data_.empty()) {
    out << " min=" << min() << " mean=" << mean() << " max=" << max();
  }
  return out.str();
}

}  // namespace mtsr
