#include "src/tensor/serialize.hpp"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "src/common/check.hpp"

namespace mtsr {
namespace {

constexpr char kMagic[8] = {'M', 'T', 'S', 'R', 'T', 'N', 'S', 'R'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("tensor deserialization: truncated input");
  return value;
}

void write_string(std::ostream& out, const std::string& s) {
  write_pod<std::uint32_t>(out, static_cast<std::uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& in) {
  const auto n = read_pod<std::uint32_t>(in);
  std::string s(n, '\0');
  in.read(s.data(), n);
  if (!in) throw std::runtime_error("tensor deserialization: truncated name");
  return s;
}

}  // namespace

void write_tensor(std::ostream& out, const Tensor& tensor) {
  out.write(kMagic, sizeof(kMagic));
  write_pod(out, kVersion);
  write_pod<std::uint32_t>(out, static_cast<std::uint32_t>(tensor.rank()));
  for (int i = 0; i < tensor.rank(); ++i) {
    write_pod<std::int64_t>(out, tensor.dim(i));
  }
  out.write(reinterpret_cast<const char*>(tensor.data()),
            static_cast<std::streamsize>(tensor.size() * sizeof(float)));
  if (!out) throw std::runtime_error("write_tensor: stream write failed");
}

Tensor read_tensor(std::istream& in) {
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("read_tensor: bad magic");
  }
  const auto version = read_pod<std::uint32_t>(in);
  if (version != kVersion) {
    throw std::runtime_error("read_tensor: unsupported version " +
                             std::to_string(version));
  }
  const auto rank = read_pod<std::uint32_t>(in);
  if (rank == 0 || rank > static_cast<std::uint32_t>(Shape::kMaxRank)) {
    throw std::runtime_error("read_tensor: bad rank");
  }
  std::vector<std::int64_t> dims(rank);
  for (auto& d : dims) {
    d = read_pod<std::int64_t>(in);
    if (d < 0) throw std::runtime_error("read_tensor: negative dim");
  }
  Shape shape(dims);
  std::vector<float> values(static_cast<std::size_t>(shape.volume()));
  in.read(reinterpret_cast<char*>(values.data()),
          static_cast<std::streamsize>(values.size() * sizeof(float)));
  if (!in) throw std::runtime_error("read_tensor: truncated payload");
  return Tensor(shape, std::move(values));
}

void save_tensors(const std::string& path,
                  const std::vector<std::pair<std::string, Tensor>>& tensors) {
  // Write-temp + atomic rename: a crash (or thrown write error) mid-save
  // must never leave a torn file at `path` — readers either see the old
  // complete file or the new complete file. The temp lives next to the
  // target so the rename stays within one filesystem.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("save_tensors: cannot open " + tmp);
    write_pod<std::uint32_t>(out, static_cast<std::uint32_t>(tensors.size()));
    for (const auto& [name, tensor] : tensors) {
      write_string(out, name);
      write_tensor(out, tensor);
    }
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      throw std::runtime_error("save_tensors: write failed for " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("save_tensors: cannot rename " + tmp + " to " +
                             path);
  }
}

std::vector<std::pair<std::string, Tensor>> load_tensors(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_tensors: cannot open " + path);
  const auto count = read_pod<std::uint32_t>(in);
  std::vector<std::pair<std::string, Tensor>> tensors;
  tensors.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string name = read_string(in);
    tensors.emplace_back(std::move(name), read_tensor(in));
  }
  return tensors;
}

}  // namespace mtsr
