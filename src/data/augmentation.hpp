// Window-cropping data augmentation and moving-average stitching (Section 4
// and Fig. 7 of the paper).
//
// The paper crops each 100×100 snapshot into 80×80 windows at every 1-cell
// offset, producing 441 sub-frames per snapshot, and reconstructs full-grid
// predictions from overlapping windows with a moving-average filter. Both
// operations are implemented here, parameterised over window size and
// stride so CPU-scale geometries work identically.
//
// A training sample pairs
//   input  — S consecutive coarse windows (tensor (S, ci, ci)), obtained by
//            applying a window-local probe layout to the cropped fine
//            frames (probes are aggregated inside the window, which is what
//            makes arbitrary offsets legal), with
//   target — the fine window of the most recent frame (tensor (w, w)).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/data/dataset.hpp"
#include "src/data/probes.hpp"
#include "src/tensor/tensor.hpp"

namespace mtsr::data {

/// Identifies one training sample: predict frame `t` from frames
/// [t-S+1, t], all cropped at window origin (r0, c0).
struct SampleSpec {
  std::int64_t t;
  std::int64_t r0;
  std::int64_t c0;
};

/// A ready training pair (normalised units).
struct Sample {
  Tensor input;   ///< (S, ci, ci) coarse window sequence
  Tensor target;  ///< (w, w) fine window of frame t
};

/// Enumerates all sample specs for frames [t_begin, t_end) of a dataset,
/// with the window cropped at every offset multiple of `stride`
/// (stride 1 reproduces the paper's 441 windows for 100→80).
[[nodiscard]] std::vector<SampleSpec> enumerate_samples(
    std::int64_t rows, std::int64_t cols, std::int64_t window,
    std::int64_t stride, std::int64_t t_begin, std::int64_t t_end,
    std::int64_t temporal_length);

/// Number of window positions per snapshot for the given geometry (e.g.
/// 441 for rows=cols=100, window=80, stride=1).
[[nodiscard]] std::int64_t windows_per_snapshot(std::int64_t rows,
                                                std::int64_t cols,
                                                std::int64_t window,
                                                std::int64_t stride);

/// Builds one (input, target) pair from normalised dataset frames.
/// `window_layout` must be a layout constructed for (window × window).
[[nodiscard]] Sample make_sample(const TrafficDataset& dataset,
                                 const ProbeLayout& window_layout,
                                 const SampleSpec& spec,
                                 std::int64_t temporal_length,
                                 std::int64_t window);

/// Predictor signature used for stitching: maps one coarse window sequence
/// (S, ci, ci) to a fine window prediction (w, w), all in normalised units.
using WindowPredictor = std::function<Tensor(const Tensor&)>;

/// Reconstructs a full-grid prediction for frame `t` by sliding the window
/// across the grid at `stride` (windows are clamped to the grid boundary so
/// edges are always covered) and averaging overlapping predictions — the
/// paper's moving-average filter. Returns a normalised (rows, cols) tensor.
[[nodiscard]] Tensor stitch_prediction(const TrafficDataset& dataset,
                                       const ProbeLayout& window_layout,
                                       const WindowPredictor& predictor,
                                       std::int64_t t,
                                       std::int64_t temporal_length,
                                       std::int64_t window,
                                       std::int64_t stride);

/// Batched predictor signature: maps ALL coarse window sequences at once,
/// (W, S, ci, ci) -> (W, w, w), so the network underneath runs one
/// whole-batch lowered pass instead of W per-window passes.
using BatchWindowPredictor = std::function<Tensor(const Tensor&)>;

/// stitch_prediction with whole-batch lowering: gathers every window of
/// frame `t` into one batch, runs `predictor` once, and applies the same
/// moving-average filter. Identical output to the per-window overload when
/// the predictors agree per sample.
[[nodiscard]] Tensor stitch_prediction_batched(
    const TrafficDataset& dataset, const ProbeLayout& window_layout,
    const BatchWindowPredictor& predictor, std::int64_t t,
    std::int64_t temporal_length, std::int64_t window, std::int64_t stride);

}  // namespace mtsr::data
