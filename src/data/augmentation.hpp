// Window-cropping data augmentation and moving-average stitching (Section 4
// and Fig. 7 of the paper).
//
// The paper crops each 100×100 snapshot into 80×80 windows at every 1-cell
// offset, producing 441 sub-frames per snapshot, and reconstructs full-grid
// predictions from overlapping windows with a moving-average filter. Both
// operations are implemented here, parameterised over window size and
// stride so CPU-scale geometries work identically.
//
// A training sample pairs
//   input  — S consecutive coarse windows (tensor (S, ci, ci)), obtained by
//            applying a window-local probe layout to the cropped fine
//            frames (probes are aggregated inside the window, which is what
//            makes arbitrary offsets legal), with
//   target — the fine window of the most recent frame (tensor (w, w)).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/data/dataset.hpp"
#include "src/data/probes.hpp"
#include "src/tensor/tensor.hpp"

namespace mtsr::data {

/// Identifies one training sample: predict frame `t` from frames
/// [t-S+1, t], all cropped at window origin (r0, c0).
struct SampleSpec {
  std::int64_t t;
  std::int64_t r0;
  std::int64_t c0;
};

/// A ready training pair (normalised units).
struct Sample {
  Tensor input;   ///< (S, ci, ci) coarse window sequence
  Tensor target;  ///< (w, w) fine window of frame t
};

/// Enumerates all sample specs for frames [t_begin, t_end) of a dataset,
/// with the window cropped at every offset multiple of `stride`
/// (stride 1 reproduces the paper's 441 windows for 100→80).
[[nodiscard]] std::vector<SampleSpec> enumerate_samples(
    std::int64_t rows, std::int64_t cols, std::int64_t window,
    std::int64_t stride, std::int64_t t_begin, std::int64_t t_end,
    std::int64_t temporal_length);

/// Number of window positions per snapshot for the given geometry (e.g.
/// 441 for rows=cols=100, window=80, stride=1).
[[nodiscard]] std::int64_t windows_per_snapshot(std::int64_t rows,
                                                std::int64_t cols,
                                                std::int64_t window,
                                                std::int64_t stride);

/// Builds one (input, target) pair from normalised dataset frames.
/// `window_layout` must be a layout constructed for (window × window).
[[nodiscard]] Sample make_sample(const TrafficDataset& dataset,
                                 const ProbeLayout& window_layout,
                                 const SampleSpec& spec,
                                 std::int64_t temporal_length,
                                 std::int64_t window);

/// Predictor signature used for stitching: maps one coarse window sequence
/// (S, ci, ci) to a fine window prediction (w, w), all in normalised units.
using WindowPredictor = std::function<Tensor(const Tensor&)>;

/// Reconstructs a full-grid prediction for frame `t` by sliding the window
/// across the grid at `stride` (windows are clamped to the grid boundary so
/// edges are always covered) and averaging overlapping predictions — the
/// paper's moving-average filter. Returns a normalised (rows, cols) tensor.
[[nodiscard]] Tensor stitch_prediction(const TrafficDataset& dataset,
                                       const ProbeLayout& window_layout,
                                       const WindowPredictor& predictor,
                                       std::int64_t t,
                                       std::int64_t temporal_length,
                                       std::int64_t window,
                                       std::int64_t stride);

/// Batched predictor signature: maps ALL coarse window sequences at once,
/// (W, S, ci, ci) -> (W, w, w), so the network underneath runs one
/// whole-batch lowered pass instead of W per-window passes.
using BatchWindowPredictor = std::function<Tensor(const Tensor&)>;

/// Window origins along one axis: multiples of `stride`, with a final
/// origin clamped to the boundary so the whole extent is covered even when
/// stride does not divide (extent - window).
[[nodiscard]] std::vector<std::int64_t> stitch_origins(std::int64_t extent,
                                                       std::int64_t window,
                                                       std::int64_t stride);

/// The pool-scaled sub-batch size stitch_prediction_batched has always
/// used: enough windows per generator pass to keep every worker's GEMM rows
/// full, small enough that the lowered column matrices stay cache-resident.
/// Pool-size dependent — serving sessions that must be reproducible across
/// pool sizes pick a fixed block instead.
[[nodiscard]] std::int64_t legacy_stitch_block();

/// The window tiling of one full-grid stitched prediction: per-axis origins
/// plus the sub-batch block size (windows per predictor pass). Window i (in
/// row-major window order) covers origin(i) .. origin(i) + window.
struct StitchPlan {
  std::vector<std::int64_t> row_origins;
  std::vector<std::int64_t> col_origins;
  std::int64_t rows = 0;    ///< full-grid extent the windows tile
  std::int64_t cols = 0;
  std::int64_t window = 0;
  std::int64_t block = 0;

  [[nodiscard]] std::int64_t window_count() const {
    return static_cast<std::int64_t>(row_origins.size() * col_origins.size());
  }
  [[nodiscard]] std::int64_t block_count() const {
    return (window_count() + block - 1) / block;
  }
  [[nodiscard]] std::int64_t row_origin(std::int64_t i) const {
    return row_origins[static_cast<std::size_t>(
        i / static_cast<std::int64_t>(col_origins.size()))];
  }
  [[nodiscard]] std::int64_t col_origin(std::int64_t i) const {
    return col_origins[static_cast<std::size_t>(
        i % static_cast<std::int64_t>(col_origins.size()))];
  }
};

/// Builds the stitch plan for a grid. `block` <= 0 selects
/// legacy_stitch_block().
[[nodiscard]] StitchPlan make_stitch_plan(std::int64_t rows, std::int64_t cols,
                                          std::int64_t window,
                                          std::int64_t stride,
                                          std::int64_t block = 0);

/// Accumulates one block's predictions (windows [w0, w0 + preds.dim(0)) of
/// the plan, preds of shape (B, w, w)) into the moving-average accumulators.
/// Additions run in ascending window order, so every stitcher built on this
/// helper performs bit-identical float arithmetic regardless of how blocks
/// were produced (serially or double-buffered).
void stitch_accumulate(const StitchPlan& plan, const Tensor& preds,
                       std::int64_t w0, Tensor& acc, Tensor& weight);

/// Row-range form for fused cross-session passes: accumulates `count`
/// windows starting at row `preds_row` of a (B, w, w) prediction batch that
/// may hold several sessions' blocks — the scatter half of batch fusion
/// reads its slice in place instead of copying rows out. Bitwise identical
/// to slicing the rows into a fresh tensor and calling the overload above.
void stitch_accumulate(const StitchPlan& plan, const Tensor& preds,
                       std::int64_t preds_row, std::int64_t count,
                       std::int64_t w0, Tensor& acc, Tensor& weight);

/// Divides the accumulated predictions by their coverage counts in place —
/// the final moving-average step shared by all stitchers.
void stitch_finalize(Tensor& acc, const Tensor& weight);

/// stitch_prediction with whole-batch lowering: gathers every window of
/// frame `t` into one batch, runs `predictor` once, and applies the same
/// moving-average filter. Identical output to the per-window overload when
/// the predictors agree per sample.
[[nodiscard]] Tensor stitch_prediction_batched(
    const TrafficDataset& dataset, const ProbeLayout& window_layout,
    const BatchWindowPredictor& predictor, std::int64_t t,
    std::int64_t temporal_length, std::int64_t window, std::int64_t stride);

}  // namespace mtsr::data
