#include "src/data/cdr.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/check.hpp"

namespace mtsr::data {
namespace {

double day_bump(double hour, double centre, double sigma) {
  double d = std::abs(hour - centre);
  d = std::min(d, 24.0 - d);
  return std::exp(-d * d / (2.0 * sigma * sigma));
}

std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  a ^= b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2);
  return a;
}

}  // namespace

CdrSimulator::CdrSimulator(CdrConfig config)
    : config_(config), rng_(config.seed) {
  check(config_.rows > 0 && config_.cols > 0, "CdrConfig: bad grid dims");
  check(config_.num_users > 0, "CdrConfig: need users");
  check(config_.num_intervals > 0, "CdrConfig: need intervals");
  check(config_.interval_minutes > 0, "CdrConfig: bad interval");
  check(config_.interim_threshold_mb > 0.0, "CdrConfig: bad 5MB threshold");

  // Homes follow a broad ring around the centre; workplaces cluster in the
  // central business district — the same geography as the field generator.
  const double rows = static_cast<double>(config_.rows);
  const double cols = static_cast<double>(config_.cols);
  const double cr = rows / 2.0, cc = cols / 2.0;
  users_.reserve(static_cast<std::size_t>(config_.num_users));
  for (std::int64_t u = 0; u < config_.num_users; ++u) {
    User user{};
    const double hr = std::clamp(cr + rng_.normal(0.0, rows * 0.25), 0.0,
                                 rows - 1.0);
    const double hc = std::clamp(cc + rng_.normal(0.0, cols * 0.25), 0.0,
                                 cols - 1.0);
    const double wr = std::clamp(cr + rng_.normal(0.0, rows * 0.07), 0.0,
                                 rows - 1.0);
    const double wc = std::clamp(cc + rng_.normal(0.0, cols * 0.07), 0.0,
                                 cols - 1.0);
    user.home_cell = static_cast<std::int64_t>(hr) * config_.cols +
                     static_cast<std::int64_t>(hc);
    user.work_cell = static_cast<std::int64_t>(wr) * config_.cols +
                     static_cast<std::int64_t>(wc);
    user.activity = rng_.lognormal(0.0, 0.6);
    users_.push_back(user);
  }
}

int CdrSimulator::minute_of_week(std::int64_t t) const {
  const std::int64_t minutes =
      config_.start_minute_of_week +
      t * static_cast<std::int64_t>(config_.interval_minutes);
  return static_cast<int>(minutes % (7 * 24 * 60));
}

double CdrSimulator::session_rate(std::int64_t t) const {
  // Sessions per user per interval, shaped by a day/evening double peak.
  const int mow = minute_of_week(t);
  const double hour = (mow % (24 * 60)) / 60.0;
  const double shape = 0.15 + day_bump(hour, 11.0, 3.0) +
                       0.8 * day_bump(hour, 20.5, 2.5);
  const double per_day = config_.sessions_per_user_per_day * shape / 0.9;
  return per_day * static_cast<double>(config_.interval_minutes) / (24.0 * 60);
}

std::int64_t CdrSimulator::user_cell(std::int64_t u, std::int64_t t) const {
  check(u >= 0 && u < config_.num_users, "user_cell: user out of range");
  const User& user = users_[static_cast<std::size_t>(u)];
  const int mow = minute_of_week(t);
  const int day = mow / (24 * 60);
  const double hour = (mow % (24 * 60)) / 60.0;
  const bool weekday = day < 5;
  const bool at_work = weekday && hour >= 9.0 && hour < 17.5;
  std::int64_t cell = at_work ? user.work_cell : user.home_cell;

  // Small deterministic jitter: users wander to neighbouring cells.
  Rng jitter(hash_combine(hash_combine(config_.seed, static_cast<std::uint64_t>(u)),
                          static_cast<std::uint64_t>(t)));
  if (jitter.bernoulli(0.3)) {
    const std::int64_t r = std::clamp<std::int64_t>(
        cell / config_.cols + jitter.uniform_int(-1, 1), 0, config_.rows - 1);
    const std::int64_t c = std::clamp<std::int64_t>(
        cell % config_.cols + jitter.uniform_int(-1, 1), 0, config_.cols - 1);
    cell = r * config_.cols + c;
  }
  return cell;
}

std::vector<CdrRecord> CdrSimulator::simulate() {
  std::vector<CdrRecord> records;
  for (std::int64_t t = 0; t < config_.num_intervals; ++t) {
    const double rate = session_rate(t);
    for (std::int64_t u = 0; u < config_.num_users; ++u) {
      const User& user = users_[static_cast<std::size_t>(u)];
      Rng local(hash_combine(
          hash_combine(config_.seed ^ 0xabcdefULL,
                       static_cast<std::uint64_t>(u)),
          static_cast<std::uint64_t>(t)));
      const int sessions = local.poisson(rate * user.activity);
      if (sessions == 0) continue;
      const std::int64_t cell = user_cell(u, t);
      for (int s = 0; s < sessions; ++s) {
        const double volume =
            local.lognormal(config_.volume_mu, config_.volume_sigma);
        // Session start/end record carrying the total volume...
        records.push_back({u, t, cell, static_cast<float>(volume), false});
        // ...plus one interim record per full 5 MB consumed (volume counted
        // once — interim records carry zero volume and only mark the event,
        // as the real CDRs mark state transitions).
        const int interims = static_cast<int>(
            volume / config_.interim_threshold_mb);
        for (int k = 0; k < interims; ++k) {
          records.push_back({u, t, cell, 0.f, true});
        }
      }
    }
  }
  return records;
}

std::vector<Tensor> CdrSimulator::aggregate(
    const std::vector<CdrRecord>& records, const CdrConfig& config) {
  std::vector<Tensor> frames;
  frames.reserve(static_cast<std::size_t>(config.num_intervals));
  for (std::int64_t t = 0; t < config.num_intervals; ++t) {
    frames.emplace_back(Shape{config.rows, config.cols});
  }
  const std::int64_t cells = config.rows * config.cols;
  for (const CdrRecord& record : records) {
    check(record.t >= 0 && record.t < config.num_intervals,
          "aggregate: record interval out of range");
    check(record.cell >= 0 && record.cell < cells,
          "aggregate: record cell out of range");
    frames[static_cast<std::size_t>(record.t)].flat(record.cell) +=
        record.volume_mb;
  }
  return frames;
}

}  // namespace mtsr::data
