// Event-level CDR (call detail record) simulator.
//
// The paper's Milan dataset was built "by combining call detail records
// (CDR) that were generated upon user interactions with base stations,
// namely each time a user started/ended an Internet connection, or a user
// consumed more than 5 MB". This module reproduces that measurement
// substrate end to end: a synthetic user population with home/work cells
// and commuting behaviour generates data sessions; sessions emit CDRs
// (including the >5 MB interim records); aggregating the records into
// 10-minute grid bins yields exactly the kind of fine-grained frames the
// field-based generator produces — but derived from events, which lets
// tests validate the aggregation pipeline itself.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/rng.hpp"
#include "src/tensor/tensor.hpp"

namespace mtsr::data {

/// One call detail record: a user consumed `volume_mb` in `cell` during
/// interval `t`. `interim` marks records triggered by the 5 MB rule rather
/// than session start/end.
struct CdrRecord {
  std::int64_t user;
  std::int64_t t;
  std::int64_t cell;  ///< row-major cell index
  float volume_mb;
  bool interim;
};

/// Simulator configuration.
struct CdrConfig {
  std::int64_t rows = 40;
  std::int64_t cols = 40;
  std::int64_t num_users = 2000;
  std::int64_t num_intervals = 288;  ///< 2 days at 10-minute bins
  int interval_minutes = 10;
  double sessions_per_user_per_day = 18.0;
  double volume_mu = 0.3;     ///< lognormal location of session MB
  double volume_sigma = 1.1;  ///< lognormal scale (heavy tail)
  double interim_threshold_mb = 5.0;  ///< the paper's 5 MB rule
  std::uint64_t seed = 7;
  /// Minutes since Monday 00:00 at interval 0.
  int start_minute_of_week = 0;
};

/// Synthesises a population, its mobility, sessions, and the CDR stream.
class CdrSimulator {
 public:
  explicit CdrSimulator(CdrConfig config);

  /// Runs the simulation and returns all records, ordered by interval.
  [[nodiscard]] std::vector<CdrRecord> simulate();

  /// Aggregates records into per-interval traffic frames (MB per cell) —
  /// the post-processing step MTSR renders unnecessary at runtime.
  [[nodiscard]] static std::vector<Tensor> aggregate(
      const std::vector<CdrRecord>& records, const CdrConfig& config);

  /// Where user `u` is located at interval `t` (row-major cell index).
  /// Deterministic per (seed, user); exposed for tests.
  [[nodiscard]] std::int64_t user_cell(std::int64_t u, std::int64_t t) const;

  [[nodiscard]] const CdrConfig& config() const { return config_; }

 private:
  struct User {
    std::int64_t home_cell;
    std::int64_t work_cell;
    double activity;  ///< per-user session-rate multiplier
  };

  [[nodiscard]] int minute_of_week(std::int64_t t) const;
  [[nodiscard]] double session_rate(std::int64_t t) const;

  CdrConfig config_;
  Rng rng_;
  std::vector<User> users_;
};

}  // namespace mtsr::data
