#include "src/data/augmentation.hpp"

#include <algorithm>

#include "src/common/check.hpp"
#include "src/common/parallel.hpp"
#include "src/common/workspace.hpp"
#include "src/tensor/tensor_ops.hpp"

namespace mtsr::data {

std::vector<std::int64_t> stitch_origins(std::int64_t extent,
                                         std::int64_t window,
                                         std::int64_t stride) {
  check(window > 0 && stride > 0 && window <= extent,
        "stitch_origins: bad geometry");
  std::vector<std::int64_t> origins;
  for (std::int64_t o = 0; o + window <= extent; o += stride) {
    origins.push_back(o);
  }
  if (origins.empty() || origins.back() + window < extent) {
    origins.push_back(extent - window);
  }
  return origins;
}

std::int64_t legacy_stitch_block() {
  return std::max<std::int64_t>(2, 2 * static_cast<std::int64_t>(num_threads()));
}

StitchPlan make_stitch_plan(std::int64_t rows, std::int64_t cols,
                            std::int64_t window, std::int64_t stride,
                            std::int64_t block) {
  StitchPlan plan;
  plan.row_origins = stitch_origins(rows, window, stride);
  plan.col_origins = stitch_origins(cols, window, stride);
  plan.rows = rows;
  plan.cols = cols;
  plan.window = window;
  plan.block = block > 0 ? block : legacy_stitch_block();
  return plan;
}

void stitch_accumulate(const StitchPlan& plan, const Tensor& preds,
                       std::int64_t w0, Tensor& acc, Tensor& weight) {
  stitch_accumulate(plan, preds, 0, preds.dim(0), w0, acc, weight);
}

void stitch_accumulate(const StitchPlan& plan, const Tensor& preds,
                       std::int64_t preds_row, std::int64_t count,
                       std::int64_t w0, Tensor& acc, Tensor& weight) {
  const std::int64_t window = plan.window;
  check(preds.rank() == 3 && preds.dim(1) == window && preds.dim(2) == window,
        "stitch_accumulate: predictions have the wrong window shape");
  check(preds_row >= 0 && count >= 0 && preds_row + count <= preds.dim(0),
        "stitch_accumulate: prediction row range out of batch");
  check(w0 >= 0 && w0 + count <= plan.window_count(),
        "stitch_accumulate: window range out of plan");
  const float* pp = preds.data() + preds_row * window * window;
  for (std::int64_t i = w0; i < w0 + count; ++i) {
    const std::int64_t r0 = plan.row_origin(i);
    const std::int64_t c0 = plan.col_origin(i);
    const float* pred = pp + (i - w0) * window * window;
    for (std::int64_t r = 0; r < window; ++r) {
      for (std::int64_t c = 0; c < window; ++c) {
        acc.at(r0 + r, c0 + c) += pred[r * window + c];
        weight.at(r0 + r, c0 + c) += 1.f;
      }
    }
  }
}

void stitch_finalize(Tensor& acc, const Tensor& weight) {
  for (std::int64_t i = 0; i < acc.size(); ++i) {
    check_internal(weight.flat(i) > 0.f, "stitching left uncovered cells");
    acc.flat(i) /= weight.flat(i);
  }
}

std::int64_t windows_per_snapshot(std::int64_t rows, std::int64_t cols,
                                  std::int64_t window, std::int64_t stride) {
  check(window > 0 && stride > 0 && window <= rows && window <= cols,
        "windows_per_snapshot: bad geometry");
  const auto r = static_cast<std::int64_t>(
      stitch_origins(rows, window, stride).size());
  const auto c = static_cast<std::int64_t>(
      stitch_origins(cols, window, stride).size());
  return r * c;
}

std::vector<SampleSpec> enumerate_samples(std::int64_t rows,
                                          std::int64_t cols,
                                          std::int64_t window,
                                          std::int64_t stride,
                                          std::int64_t t_begin,
                                          std::int64_t t_end,
                                          std::int64_t temporal_length) {
  check(window > 0 && stride > 0 && window <= rows && window <= cols,
        "enumerate_samples: bad geometry");
  check(temporal_length >= 1, "enumerate_samples: S must be >= 1");
  const auto row_origins = stitch_origins(rows, window, stride);
  const auto col_origins = stitch_origins(cols, window, stride);
  std::vector<SampleSpec> specs;
  const std::int64_t first_t = std::max(t_begin, temporal_length - 1);
  for (std::int64_t t = first_t; t < t_end; ++t) {
    for (std::int64_t r0 : row_origins) {
      for (std::int64_t c0 : col_origins) {
        specs.push_back({t, r0, c0});
      }
    }
  }
  return specs;
}

Sample make_sample(const TrafficDataset& dataset,
                   const ProbeLayout& window_layout, const SampleSpec& spec,
                   std::int64_t temporal_length, std::int64_t window) {
  check(window_layout.rows() == window && window_layout.cols() == window,
        "make_sample: layout geometry must match the window");
  check(spec.t >= temporal_length - 1 && spec.t < dataset.frame_count(),
        "make_sample: spec.t out of range");
  check(spec.r0 >= 0 && spec.c0 >= 0 && spec.r0 + window <= dataset.rows() &&
            spec.c0 + window <= dataset.cols(),
        "make_sample: window out of range");

  std::vector<Tensor> coarse_frames;
  coarse_frames.reserve(static_cast<std::size_t>(temporal_length));
  for (std::int64_t s = 0; s < temporal_length; ++s) {
    const std::int64_t t = spec.t - temporal_length + 1 + s;
    Tensor fine = crop2d(dataset.normalized_frame(t), spec.r0, spec.c0,
                         window, window);
    coarse_frames.push_back(window_layout.coarsen(fine));
  }
  Sample sample;
  sample.input = stack0(coarse_frames);  // (S, ci, ci)
  sample.target = crop2d(dataset.normalized_frame(spec.t), spec.r0, spec.c0,
                         window, window);
  return sample;
}

Tensor stitch_prediction(const TrafficDataset& dataset,
                         const ProbeLayout& window_layout,
                         const WindowPredictor& predictor, std::int64_t t,
                         std::int64_t temporal_length, std::int64_t window,
                         std::int64_t stride) {
  const std::int64_t rows = dataset.rows(), cols = dataset.cols();
  check(window <= rows && window <= cols, "stitch_prediction: window too big");
  const auto row_origins = stitch_origins(rows, window, stride);
  const auto col_origins = stitch_origins(cols, window, stride);

  Tensor acc(Shape{rows, cols});
  Tensor weight(Shape{rows, cols});
  for (std::int64_t r0 : row_origins) {
    for (std::int64_t c0 : col_origins) {
      const Sample sample = make_sample(dataset, window_layout,
                                        {t, r0, c0}, temporal_length, window);
      // Scoped per window: whatever arena memory the predictor's layers
      // retain is reclaimed before the next window.
      Workspace::Scope ws_scope(Workspace::tls());
      Tensor pred = predictor(sample.input);
      check(pred.rank() == 2 && pred.dim(0) == window && pred.dim(1) == window,
            "stitch_prediction: predictor returned wrong shape");
      for (std::int64_t r = 0; r < window; ++r) {
        for (std::int64_t c = 0; c < window; ++c) {
          acc.at(r0 + r, c0 + c) += pred.at(r, c);
          weight.at(r0 + r, c0 + c) += 1.f;
        }
      }
    }
  }
  for (std::int64_t i = 0; i < acc.size(); ++i) {
    check_internal(weight.flat(i) > 0.f,
                   "stitch_prediction left uncovered cells");
    acc.flat(i) /= weight.flat(i);
  }
  return acc;
}

Tensor stitch_prediction_batched(const TrafficDataset& dataset,
                                 const ProbeLayout& window_layout,
                                 const BatchWindowPredictor& predictor,
                                 std::int64_t t, std::int64_t temporal_length,
                                 std::int64_t window, std::int64_t stride) {
  const std::int64_t rows = dataset.rows(), cols = dataset.cols();
  check(window <= rows && window <= cols,
        "stitch_prediction_batched: window too big");
  // The legacy pool-scaled sub-batch keeps every worker's GEMM rows full
  // while the lowered column matrices stay cache-resident and bounded (a
  // paper-scale 100×100 grid has 441 windows; lowering them all at once
  // would allocate gigabytes).
  const StitchPlan plan = make_stitch_plan(rows, cols, window, stride);
  const std::int64_t n_windows = plan.window_count();

  Tensor acc(Shape{rows, cols});
  Tensor weight(Shape{rows, cols});
  for (std::int64_t b0 = 0; b0 < n_windows; b0 += plan.block) {
    const std::int64_t b1 = std::min(n_windows, b0 + plan.block);

    // Gather this block's coarse input sequences (windows are independent).
    std::vector<Tensor> inputs(static_cast<std::size_t>(b1 - b0));
    parallel_for(b1 - b0, [&](std::int64_t j) {
      const std::int64_t i = b0 + j;
      inputs[static_cast<std::size_t>(j)] =
          make_sample(dataset, window_layout,
                      {t, plan.row_origin(i), plan.col_origin(i)},
                      temporal_length, window)
              .input;
    });

    // One whole-batch pass through the predictor per block, scoped so any
    // arena memory the predictor's layers retain is reclaimed per block.
    Workspace::Scope ws_scope(Workspace::tls());
    Tensor preds = predictor(stack0(inputs));  // (b1-b0, w, w)
    check(preds.rank() == 3 && preds.dim(0) == b1 - b0,
          "stitch_prediction_batched: predictor returned wrong shape");
    stitch_accumulate(plan, preds, b0, acc, weight);
  }
  stitch_finalize(acc, weight);
  return acc;
}

}  // namespace mtsr::data
