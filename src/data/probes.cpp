#include "src/data/probes.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>
#include <sstream>

#include "src/common/check.hpp"
#include "src/tensor/tensor_ops.hpp"

namespace mtsr::data {

ProbeLayout::ProbeLayout(std::int64_t rows, std::int64_t cols) {
  check(rows > 0 && cols > 0, "ProbeLayout requires positive grid dims");
  rows_ = rows;
  cols_ = cols;
}

// ---------------------------------------------------------------------------
// UniformProbeLayout
// ---------------------------------------------------------------------------

UniformProbeLayout::UniformProbeLayout(std::int64_t rows, std::int64_t cols,
                                       int factor)
    : ProbeLayout(rows, cols), factor_(factor) {
  check(factor > 0, "UniformProbeLayout requires positive factor");
  check(rows % factor == 0 && cols % factor == 0,
        "UniformProbeLayout grid dims must be divisible by factor");
  check(rows == cols, "UniformProbeLayout expects a square grid");
  probe_map_.resize(static_cast<std::size_t>(rows * cols));
  const std::int64_t pc = cols / factor;
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      probe_map_[static_cast<std::size_t>(r * cols + c)] =
          static_cast<std::int32_t>((r / factor) * pc + (c / factor));
    }
  }
}

std::int64_t UniformProbeLayout::probe_count() const {
  return (rows() / factor_) * (cols() / factor_);
}

std::int64_t UniformProbeLayout::input_side() const {
  return rows() / factor_;
}

double UniformProbeLayout::average_factor() const { return factor_; }

Tensor UniformProbeLayout::coarsen(const Tensor& fine) const {
  check(fine.rank() == 2 && fine.dim(0) == rows() && fine.dim(1) == cols(),
        "UniformProbeLayout::coarsen: wrong snapshot shape");
  return avg_pool2d(fine, factor_);
}

Tensor UniformProbeLayout::spread_average(const Tensor& fine) const {
  return upsample_nearest2d(coarsen(fine), factor_);
}

const std::vector<std::int32_t>& UniformProbeLayout::probe_map() const {
  return probe_map_;
}

Tensor UniformProbeLayout::granularity_map() const {
  return Tensor::full(Shape{rows(), cols()}, static_cast<float>(factor_));
}

std::string UniformProbeLayout::name() const {
  std::ostringstream out;
  out << "up-" << factor_;
  return out.str();
}

// ---------------------------------------------------------------------------
// MixtureProbeLayout
// ---------------------------------------------------------------------------

namespace {

constexpr std::int64_t kSuperblock = 20;  // LCM-compatible zone unit

enum class Zone : int { kFine = 0, kMedium = 1, kCoarse = 2 };

constexpr int zone_probe_side(Zone z) {
  switch (z) {
    case Zone::kFine: return 2;
    case Zone::kMedium: return 4;
    case Zone::kCoarse: return 10;
  }
  return 0;
}

constexpr std::int64_t zone_probe_count_per_superblock(Zone z) {
  const std::int64_t side = kSuperblock / zone_probe_side(z);
  return side * side;
}

}  // namespace

MixtureProbeLayout::MixtureProbeLayout(std::int64_t rows, std::int64_t cols)
    : ProbeLayout(rows, cols) {
  check(rows == cols, "MixtureProbeLayout expects a square grid");
  check(rows % kSuperblock == 0,
        "MixtureProbeLayout grid side must be divisible by 20");
  const std::int64_t sb = rows / kSuperblock;  // superblocks per side
  const std::int64_t n_super = sb * sb;

  // Rank superblocks by distance from the grid centre: the closest get the
  // finest probes (the paper's "more probes serve the city centre").
  struct Ranked {
    double dist;
    std::int64_t index;
  };
  std::vector<Ranked> ranked;
  ranked.reserve(static_cast<std::size_t>(n_super));
  const double centre = (static_cast<double>(sb) - 1.0) / 2.0;
  for (std::int64_t sr = 0; sr < sb; ++sr) {
    for (std::int64_t sc = 0; sc < sb; ++sc) {
      const double dr = static_cast<double>(sr) - centre;
      const double dc = static_cast<double>(sc) - centre;
      ranked.push_back({std::sqrt(dr * dr + dc * dc), sr * sb + sc});
    }
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const Ranked& a, const Ranked& b) {
                     return a.dist < b.dist;
                   });

  // Target composition close to the paper's 49% / 44% / 7% probe-count mix
  // (up to superblock rounding): ~12% of superblocks fine and ~44% medium
  // yields those probe proportions because fine superblocks hold 100 probes
  // and medium ones 25.
  std::int64_t n_fine = std::max<std::int64_t>(1, (n_super * 12 + 50) / 100);
  std::int64_t n_medium = std::max<std::int64_t>(1, (n_super * 44 + 50) / 100);
  if (n_fine + n_medium >= n_super) {
    n_fine = std::max<std::int64_t>(1, n_super / 4);
    n_medium = std::max<std::int64_t>(0, n_super - n_fine - 1);
  }

  // The projected input square must hold every probe; shrink the fine zone
  // until the probe count fits the next integer-ratio square (side s/4,
  // matching the instance's average factor of ~4 as in Table 1).
  const std::int64_t input_limit = (rows / 4) * (rows / 4);
  auto total_probes = [&](std::int64_t f, std::int64_t m) {
    const std::int64_t c = n_super - f - m;
    return f * zone_probe_count_per_superblock(Zone::kFine) +
           m * zone_probe_count_per_superblock(Zone::kMedium) +
           c * zone_probe_count_per_superblock(Zone::kCoarse);
  };
  while (total_probes(n_fine, n_medium) > input_limit && n_fine > 0) {
    --n_fine;
    ++n_medium;
  }
  while (total_probes(n_fine, n_medium) > input_limit && n_medium > 0) {
    --n_medium;
  }
  check_internal(total_probes(n_fine, n_medium) <= input_limit,
                 "mixture layout cannot fit the input square");

  std::vector<Zone> zone_of_super(static_cast<std::size_t>(n_super),
                                  Zone::kCoarse);
  for (std::int64_t i = 0; i < n_super; ++i) {
    Zone z = Zone::kCoarse;
    if (i < n_fine) {
      z = Zone::kFine;
    } else if (i < n_fine + n_medium) {
      z = Zone::kMedium;
    }
    zone_of_super[static_cast<std::size_t>(ranked[static_cast<std::size_t>(i)]
                                               .index)] = z;
  }

  // Enumerate probes zone by zone (fine first), each zone in superblock
  // row-major order then within-superblock row-major order. This is the
  // projection order onto the input square.
  probe_map_.assign(static_cast<std::size_t>(rows * cols), -1);
  for (Zone z : {Zone::kFine, Zone::kMedium, Zone::kCoarse}) {
    const int side = zone_probe_side(z);
    for (std::int64_t s = 0; s < n_super; ++s) {
      if (zone_of_super[static_cast<std::size_t>(s)] != z) continue;
      const std::int64_t sr = (s / sb) * kSuperblock;
      const std::int64_t sc = (s % sb) * kSuperblock;
      for (std::int64_t pr = 0; pr < kSuperblock / side; ++pr) {
        for (std::int64_t pc = 0; pc < kSuperblock / side; ++pc) {
          const auto id = static_cast<std::int32_t>(probes_.size());
          const Probe probe{sr + pr * side, sc + pc * side, side};
          probes_.push_back(probe);
          for (int dr = 0; dr < side; ++dr) {
            for (int dc = 0; dc < side; ++dc) {
              probe_map_[static_cast<std::size_t>(
                  (probe.r0 + dr) * cols + probe.c0 + dc)] = id;
            }
          }
        }
      }
    }
  }
  check_internal(std::none_of(probe_map_.begin(), probe_map_.end(),
                              [](std::int32_t v) { return v < 0; }),
                 "mixture layout left uncovered cells");

  input_side_ = rows / 4;
  check_internal(static_cast<std::int64_t>(probes_.size()) <=
                     input_side_ * input_side_,
                 "mixture probe count exceeds input square");
}

std::int64_t MixtureProbeLayout::probe_count() const {
  return static_cast<std::int64_t>(probes_.size());
}

std::int64_t MixtureProbeLayout::input_side() const { return input_side_; }

double MixtureProbeLayout::average_factor() const {
  // Probe-count-weighted mean side, the convention of Table 1 (avg n_f = 4
  // for the mixture of 49% 2×2, 44% 4×4, 7% 10×10 probes).
  double acc = 0.0;
  for (const Probe& p : probes_) acc += p.side;
  return acc / static_cast<double>(probes_.size());
}

Tensor MixtureProbeLayout::coarsen(const Tensor& fine) const {
  check(fine.rank() == 2 && fine.dim(0) == rows() && fine.dim(1) == cols(),
        "MixtureProbeLayout::coarsen: wrong snapshot shape");
  Tensor input(Shape{input_side_, input_side_});
  for (std::size_t i = 0; i < probes_.size(); ++i) {
    const Probe& p = probes_[i];
    double acc = 0.0;
    for (int dr = 0; dr < p.side; ++dr) {
      for (int dc = 0; dc < p.side; ++dc) {
        acc += fine.at(p.r0 + dr, p.c0 + dc);
      }
    }
    input.flat(static_cast<std::int64_t>(i)) =
        static_cast<float>(acc / (static_cast<double>(p.side) * p.side));
  }
  return input;
}

Tensor MixtureProbeLayout::spread_average(const Tensor& fine) const {
  check(fine.rank() == 2 && fine.dim(0) == rows() && fine.dim(1) == cols(),
        "MixtureProbeLayout::spread_average: wrong snapshot shape");
  Tensor out(Shape{rows(), cols()});
  for (const Probe& p : probes_) {
    double acc = 0.0;
    for (int dr = 0; dr < p.side; ++dr) {
      for (int dc = 0; dc < p.side; ++dc) {
        acc += fine.at(p.r0 + dr, p.c0 + dc);
      }
    }
    const auto avg =
        static_cast<float>(acc / (static_cast<double>(p.side) * p.side));
    for (int dr = 0; dr < p.side; ++dr) {
      for (int dc = 0; dc < p.side; ++dc) {
        out.at(p.r0 + dr, p.c0 + dc) = avg;
      }
    }
  }
  return out;
}

const std::vector<std::int32_t>& MixtureProbeLayout::probe_map() const {
  return probe_map_;
}

Tensor MixtureProbeLayout::granularity_map() const {
  Tensor out(Shape{rows(), cols()});
  for (const Probe& p : probes_) {
    for (int dr = 0; dr < p.side; ++dr) {
      for (int dc = 0; dc < p.side; ++dc) {
        out.at(p.r0 + dr, p.c0 + dc) = static_cast<float>(p.side);
      }
    }
  }
  return out;
}

std::string MixtureProbeLayout::name() const { return "mixture"; }

std::array<std::int64_t, 3> MixtureProbeLayout::composition() const {
  std::array<std::int64_t, 3> counts{0, 0, 0};
  for (const Probe& p : probes_) {
    if (p.side == 2) ++counts[0];
    else if (p.side == 4) ++counts[1];
    else ++counts[2];
  }
  return counts;
}

// ---------------------------------------------------------------------------
// Instance helpers
// ---------------------------------------------------------------------------

std::string instance_name(MtsrInstance instance) {
  switch (instance) {
    case MtsrInstance::kUp2: return "up-2";
    case MtsrInstance::kUp4: return "up-4";
    case MtsrInstance::kUp10: return "up-10";
    case MtsrInstance::kMixture: return "mixture";
  }
  return "unknown";
}

std::unique_ptr<ProbeLayout> make_layout(MtsrInstance instance,
                                         std::int64_t rows,
                                         std::int64_t cols) {
  switch (instance) {
    case MtsrInstance::kUp2:
      return std::make_unique<UniformProbeLayout>(rows, cols, 2);
    case MtsrInstance::kUp4:
      return std::make_unique<UniformProbeLayout>(rows, cols, 4);
    case MtsrInstance::kUp10:
      return std::make_unique<UniformProbeLayout>(rows, cols, 10);
    case MtsrInstance::kMixture:
      return std::make_unique<MixtureProbeLayout>(rows, cols);
  }
  throw ContractViolation("make_layout: unknown instance");
}

}  // namespace mtsr::data
