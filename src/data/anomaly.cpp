#include "src/data/anomaly.hpp"

#include <cmath>

#include "src/common/check.hpp"

namespace mtsr::data {
namespace {

constexpr double kPi = 3.14159265358979323846;

double envelope(const TrafficEvent& event, std::int64_t t) {
  if (t < event.t_begin || t >= event.t_end) return 0.0;
  const double span = static_cast<double>(event.t_end - event.t_begin);
  const double phase = (static_cast<double>(t - event.t_begin) + 0.5) / span;
  return 0.5 * (1.0 - std::cos(2.0 * kPi * phase));
}

}  // namespace

Tensor event_field(const TrafficEvent& event, std::int64_t t,
                   std::int64_t rows, std::int64_t cols) {
  check(rows > 0 && cols > 0, "event_field: bad grid dims");
  Tensor field(Shape{rows, cols});
  const double env = envelope(event, t);
  if (env == 0.0) return field;
  const double two_sigma_sq = 2.0 * event.radius * event.radius;
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      const double dr = static_cast<double>(r) - event.row;
      const double dc = static_cast<double>(c) - event.col;
      field.at(r, c) = static_cast<float>(
          event.amplitude_mb * env * std::exp(-(dr * dr + dc * dc) /
                                              two_sigma_sq));
    }
  }
  return field;
}

void inject_event(std::vector<Tensor>& frames, const TrafficEvent& event) {
  check(!frames.empty(), "inject_event: no frames");
  check(event.t_end > event.t_begin, "inject_event: empty time range");
  check(event.t_begin >= 0 &&
            event.t_end <= static_cast<std::int64_t>(frames.size()),
        "inject_event: event time range outside frame range");
  const std::int64_t rows = frames.front().dim(0);
  const std::int64_t cols = frames.front().dim(1);
  for (std::int64_t t = event.t_begin; t < event.t_end; ++t) {
    frames[static_cast<std::size_t>(t)].add_(
        event_field(event, t, rows, cols));
  }
}

Tensor detect_surge(const Tensor& snapshot, const Tensor& reference,
                    double threshold_mb) {
  check(snapshot.shape() == reference.shape(),
        "detect_surge: shape mismatch");
  check(threshold_mb > 0.0, "detect_surge: threshold must be positive");
  Tensor mask(snapshot.shape());
  for (std::int64_t i = 0; i < snapshot.size(); ++i) {
    mask.flat(i) =
        (snapshot.flat(i) - reference.flat(i) > threshold_mb) ? 1.f : 0.f;
  }
  return mask;
}

}  // namespace mtsr::data
