// Anomalous-traffic injection (Section 5.5 of the paper).
//
// The paper evaluates robustness by artificially adding "abrupt traffic
// demands in suburban areas, which can be regarded as occurrences of social
// events (e.g. concert, football match)" to the *test* set only — the
// events never appear in training. This module injects such events: a
// localised Gaussian traffic surge that ramps up, holds, and decays over a
// time interval.
#pragma once

#include <cstdint>
#include <vector>

#include "src/tensor/tensor.hpp"

namespace mtsr::data {

/// One synthetic social event.
struct TrafficEvent {
  std::int64_t t_begin = 0;   ///< first affected interval (inclusive)
  std::int64_t t_end = 0;     ///< last affected interval (exclusive)
  double row = 0.0;           ///< event centre (fractional cells)
  double col = 0.0;
  double radius = 2.0;        ///< spatial sigma, in cells
  double amplitude_mb = 2000; ///< peak extra traffic at the centre
};

/// Adds `event` to each frame of `frames` (in place). The temporal envelope
/// is a raised cosine over [t_begin, t_end): zero at both ends, peak in the
/// middle — an abrupt but smooth surge.
void inject_event(std::vector<Tensor>& frames, const TrafficEvent& event);

/// Returns the per-cell surge added at interval `t` (useful as ground truth
/// in detection tests). Shape (rows, cols).
[[nodiscard]] Tensor event_field(const TrafficEvent& event, std::int64_t t,
                                 std::int64_t rows, std::int64_t cols);

/// Simple detector used to evaluate "MTSR as anomaly detector": flags cells
/// whose value exceeds `reference` by more than `threshold_mb`. Returns a
/// 0/1 mask.
[[nodiscard]] Tensor detect_surge(const Tensor& snapshot,
                                  const Tensor& reference,
                                  double threshold_mb);

}  // namespace mtsr::data
