// TrafficDataset: an ordered sequence of fine-grained traffic snapshots with
// train/validation/test splits and z-score normalisation.
//
// Mirrors the paper's protocol (Section 5.2): models are trained on the
// first chronological span, validated on the next, tested on the last, and
// "prior to training, all data is normalised by subtraction of the mean and
// division by the standard deviation" — statistics are computed on the
// training span only, to avoid leaking test information.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/tensor/tensor.hpp"

namespace mtsr::data {

/// Normalisation statistics (computed over the training split).
struct NormStats {
  double mean = 0.0;
  double stddev = 1.0;
};

/// The dataset normalisation kernel: optional log1p (clamped at zero),
/// then the z-score. The ONE definition of the transform — the dataset,
/// the serving sessions, and the baseline adapters all call it, so their
/// outputs stay bit-identical by construction.
[[nodiscard]] Tensor normalize_frame(const Tensor& raw, const NormStats& stats,
                                     bool log_transform);

/// Inverse of normalize_frame (expm1 clamped at 20 against overflow).
[[nodiscard]] Tensor denormalize_frame(const Tensor& normalized,
                                       const NormStats& stats,
                                       bool log_transform);

/// Contiguous index range [begin, end).
struct SplitRange {
  std::int64_t begin = 0;
  std::int64_t end = 0;

  [[nodiscard]] std::int64_t size() const { return end - begin; }
};

/// Ordered fine-grained snapshots plus split/normalisation bookkeeping.
class TrafficDataset {
 public:
  /// Takes ownership of chronologically ordered (rows, cols) snapshots.
  /// Splits default to the paper's 40/10/10-day proportions (≈2/3, 1/6,
  /// 1/6); override with `set_splits`.
  ///
  /// `log_transform` applies log1p before the z-score: per-cell mobile
  /// traffic volumes are heavy-tailed (busy cells reach ~50x the mean), and
  /// stochastic training on raw z-scores is dominated by the rare extreme
  /// cells. The paper's GPU-scale training absorbs this; at CPU scale the
  /// log transform restores balanced gradients (DESIGN.md §7). Metrics are
  /// always computed in raw MB — denormalize() inverts the transform.
  TrafficDataset(std::vector<Tensor> frames, int interval_minutes,
                 bool log_transform = true);

  /// Re-partitions by fractions (must sum to <= 1; test gets the rest).
  void set_splits(double train_fraction, double validation_fraction);

  [[nodiscard]] std::int64_t frame_count() const {
    return static_cast<std::int64_t>(frames_.size());
  }
  [[nodiscard]] std::int64_t rows() const { return frames_.front().dim(0); }
  [[nodiscard]] std::int64_t cols() const { return frames_.front().dim(1); }
  [[nodiscard]] int interval_minutes() const { return interval_minutes_; }

  /// Raw snapshot (MB per sub-cell).
  [[nodiscard]] const Tensor& frame(std::int64_t t) const;

  /// Normalised snapshot: (frame - mean) / stddev, train-split statistics.
  [[nodiscard]] Tensor normalized_frame(std::int64_t t) const;

  /// Maps a normalised tensor back to MB.
  [[nodiscard]] Tensor denormalize(const Tensor& normalized) const;

  [[nodiscard]] const NormStats& stats() const { return stats_; }
  [[nodiscard]] SplitRange train_range() const { return train_; }
  [[nodiscard]] SplitRange validation_range() const { return validation_; }
  [[nodiscard]] SplitRange test_range() const { return test_; }

  /// Highest single-cell volume across the whole dataset — the PSNR peak
  /// (the paper uses 5496 MB, its dataset maximum).
  [[nodiscard]] double peak() const { return peak_; }

  /// Binary round-trip (all frames + metadata).
  void save(const std::string& path) const;
  [[nodiscard]] static TrafficDataset load(const std::string& path);

  [[nodiscard]] bool log_transform() const { return log_transform_; }

 private:
  void recompute_stats();

  std::vector<Tensor> frames_;
  int interval_minutes_;
  bool log_transform_;
  NormStats stats_;
  SplitRange train_, validation_, test_;
  double peak_ = 0.0;
};

}  // namespace mtsr::data
