// Probe deployment models (Section 5.2, Table 1 and Fig. 8 of the paper).
//
// A probe summarises mobile traffic over a square group of sub-cells. The
// paper evaluates four MTSR instances:
//   * up-2 / up-4 / up-10 — uniformly deployed probes covering n_f × n_f
//     sub-cells; the model input is the per-probe average, arranged on the
//     natural (H/n_f, W/n_f) coarse grid.
//   * mixture — probes of three sizes (2×2, 4×4, 10×10); the city centre is
//     served by the finest probes and the periphery by the coarsest. The
//     per-probe aggregates are projected, zone by zone in row-major order,
//     onto a compact square that becomes the model input (cf. Fig. 8 right),
//     deliberately distorting spatial adjacency exactly as the paper's
//     projection does.
//
// Deviation from the paper, documented in DESIGN.md: the paper's mixture
// aggregates are sums while ours are per-probe averages. Each input-square
// slot maps to a fixed probe, so the two differ by a fixed per-slot factor
// that the generator's first convolution absorbs; averages keep all slots on
// one scale, which stabilises small-batch CPU training.
#pragma once

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "src/tensor/tensor.hpp"

namespace mtsr::data {

/// Interface over probe deployments: turns a fine-grained snapshot into the
/// coarse model input, and exposes the per-cell probe structure baselines
/// need.
class ProbeLayout {
 public:
  virtual ~ProbeLayout() = default;

  ProbeLayout(const ProbeLayout&) = delete;
  ProbeLayout& operator=(const ProbeLayout&) = delete;

  /// Fine grid rows/cols this layout was built for.
  [[nodiscard]] std::int64_t rows() const { return rows_; }
  [[nodiscard]] std::int64_t cols() const { return cols_; }

  /// Number of probes.
  [[nodiscard]] virtual std::int64_t probe_count() const = 0;

  /// Side length of the square model input.
  [[nodiscard]] virtual std::int64_t input_side() const = 0;

  /// Average upscaling factor n_f (Table 1).
  [[nodiscard]] virtual double average_factor() const = 0;

  /// Produces the model input square (input_side × input_side) from a fine
  /// snapshot of shape (rows, cols).
  [[nodiscard]] virtual Tensor coarsen(const Tensor& fine) const = 0;

  /// Spreads each probe's average back over its coverage: the Uniform
  /// interpolation baseline, and the low-resolution spread map other
  /// baselines refine. Shape (rows, cols).
  [[nodiscard]] virtual Tensor spread_average(const Tensor& fine) const = 0;

  /// Per-cell probe id map (row-major, shape rows×cols).
  [[nodiscard]] virtual const std::vector<std::int32_t>& probe_map() const = 0;

  /// Per-cell probe side length (the 2-D granularity map of Fig. 8 right).
  [[nodiscard]] virtual Tensor granularity_map() const = 0;

  [[nodiscard]] virtual std::string name() const = 0;

 protected:
  ProbeLayout(std::int64_t rows, std::int64_t cols);

 private:
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
};

/// Uniform deployment: every probe covers factor×factor sub-cells
/// (instances up-2, up-4, up-10). Grid dims must be divisible by factor.
class UniformProbeLayout final : public ProbeLayout {
 public:
  UniformProbeLayout(std::int64_t rows, std::int64_t cols, int factor);

  [[nodiscard]] std::int64_t probe_count() const override;
  [[nodiscard]] std::int64_t input_side() const override;
  [[nodiscard]] double average_factor() const override;
  [[nodiscard]] Tensor coarsen(const Tensor& fine) const override;
  [[nodiscard]] Tensor spread_average(const Tensor& fine) const override;
  [[nodiscard]] const std::vector<std::int32_t>& probe_map() const override;
  [[nodiscard]] Tensor granularity_map() const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] int factor() const { return factor_; }

 private:
  int factor_;
  std::vector<std::int32_t> probe_map_;
};

/// Heterogeneous deployment (Table 1 "mixture", Fig. 8): the grid is split
/// into 20×20-cell superblocks; the superblocks closest to the grid centre
/// are tiled with 2×2 probes, a middle band with 4×4 probes, and the
/// periphery with 10×10 probes. Probe aggregates are projected row-major by
/// zone into a compact square padded with zeros.
class MixtureProbeLayout final : public ProbeLayout {
 public:
  /// Grid dims must be divisible by 20 (the superblock side, the LCM of the
  /// probe sizes {2, 4, 10} that keeps every zone tileable).
  MixtureProbeLayout(std::int64_t rows, std::int64_t cols);

  [[nodiscard]] std::int64_t probe_count() const override;
  [[nodiscard]] std::int64_t input_side() const override;
  [[nodiscard]] double average_factor() const override;
  [[nodiscard]] Tensor coarsen(const Tensor& fine) const override;
  [[nodiscard]] Tensor spread_average(const Tensor& fine) const override;
  [[nodiscard]] const std::vector<std::int32_t>& probe_map() const override;
  [[nodiscard]] Tensor granularity_map() const override;
  [[nodiscard]] std::string name() const override;

  /// Probe counts per size class: {n_2x2, n_4x4, n_10x10}.
  [[nodiscard]] std::array<std::int64_t, 3> composition() const;

 private:
  struct Probe {
    std::int64_t r0, c0;  // top-left cell
    int side;             // 2, 4 or 10
  };

  std::vector<Probe> probes_;
  std::vector<std::int32_t> probe_map_;
  std::int64_t input_side_;
};

/// The four MTSR instances of Table 1.
enum class MtsrInstance { kUp2, kUp4, kUp10, kMixture };

/// Human-readable instance name ("up-2", ..., "mixture").
[[nodiscard]] std::string instance_name(MtsrInstance instance);

/// Builds the probe layout for an instance over the given grid.
[[nodiscard]] std::unique_ptr<ProbeLayout> make_layout(MtsrInstance instance,
                                                       std::int64_t rows,
                                                       std::int64_t cols);

}  // namespace mtsr::data
