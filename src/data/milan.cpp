#include "src/data/milan.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/check.hpp"

namespace mtsr::data {
namespace {

constexpr double kPi = 3.14159265358979323846;

/// Gaussian bump over hour-of-day, wrapping at midnight.
double day_bump(double hour, double centre, double sigma) {
  double d = std::abs(hour - centre);
  d = std::min(d, 24.0 - d);
  return std::exp(-d * d / (2.0 * sigma * sigma));
}

std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  a ^= b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2);
  return a;
}

}  // namespace

MilanTrafficGenerator::MilanTrafficGenerator(MilanConfig config)
    : config_(config), rng_(config.seed) {
  check(config_.rows > 0 && config_.cols > 0, "MilanConfig: bad grid dims");
  check(config_.interval_minutes > 0, "MilanConfig: bad interval");
  check(config_.num_hotspots > 0, "MilanConfig: need at least one hotspot");
  check(config_.peak_traffic_mb > config_.base_traffic_mb,
        "MilanConfig: peak must exceed base traffic");

  const double rows = static_cast<double>(config_.rows);
  const double cols = static_cast<double>(config_.cols);
  const double side = std::min(rows, cols);
  const double cr = rows / 2.0, cc = cols / 2.0;

  // --- Fixed geography -----------------------------------------------------
  check(config_.mobile_fraction >= 0.0 && config_.mobile_fraction <= 1.0,
        "MilanConfig: mobile_fraction must be in [0,1]");
  check(config_.commute_distance >= 0.0 && config_.commute_distance < 0.5,
        "MilanConfig: commute_distance must be in [0,0.5)");
  hotspots_.reserve(static_cast<std::size_t>(config_.num_hotspots));
  for (std::int64_t i = 0; i < config_.num_hotspots; ++i) {
    Hotspot h{};
    const double pick = rng_.uniform();
    if (pick < 0.40) {
      // Central business district: tight cluster of strong hotspots.
      h.land_use = LandUse::kBusiness;
      h.row = cr + rng_.normal(0.0, side * 0.08);
      h.col = cc + rng_.normal(0.0, side * 0.08);
      h.radius = rng_.uniform(1.0, 2.2);
      h.amplitude = rng_.lognormal(0.3, 0.5);
    } else if (pick < 0.70) {
      // Residential belt around the centre.
      h.land_use = LandUse::kResidential;
      const double angle = rng_.uniform(0.0, 2.0 * kPi);
      const double dist = rng_.uniform(0.15, 0.45) * side;
      h.row = cr + dist * std::sin(angle);
      h.col = cc + dist * std::cos(angle);
      h.radius = rng_.uniform(1.4, 3.0);
      h.amplitude = rng_.lognormal(-0.2, 0.4);
    } else {
      // Entertainment venues scattered across the city.
      h.land_use = LandUse::kEntertainment;
      h.row = rng_.uniform(0.1 * rows, 0.9 * rows);
      h.col = rng_.uniform(0.1 * cols, 0.9 * cols);
      h.radius = rng_.uniform(1.0, 1.8);
      h.amplitude = rng_.lognormal(-0.3, 0.5);
    }
    h.row = std::clamp(h.row, 0.0, rows - 1.0);
    h.col = std::clamp(h.col, 0.0, cols - 1.0);

    // Commuting crowds: mobile hotspots spend the night at a home anchor
    // displaced radially outward and the working day at a work anchor
    // pulled toward the centre.
    h.mobile = rng_.bernoulli(config_.mobile_fraction);
    h.work_row = h.row;
    h.work_col = h.col;
    if (h.mobile) {
      const double dr = h.row - cr, dc = h.col - cc;
      const double dist = std::max(std::sqrt(dr * dr + dc * dc), 1.0);
      const double d = config_.commute_distance * side;
      h.row = std::clamp(h.row + dr / dist * d * 0.5, 0.0, rows - 1.0);
      h.col = std::clamp(h.col + dc / dist * d * 0.5, 0.0, cols - 1.0);
      h.work_row = std::clamp(h.work_row - dr / dist * d * 0.5, 0.0,
                              rows - 1.0);
      h.work_col = std::clamp(h.work_col - dc / dist * d * 0.5, 0.0,
                              cols - 1.0);
    }
    hotspots_.push_back(h);
  }

  // Spatial kernels for static hotspots (unit-peak Gaussians); mobile ones
  // are evaluated per frame at their instantaneous position.
  kernels_.reserve(hotspots_.size());
  for (const Hotspot& h : hotspots_) {
    Tensor k(Shape{config_.rows, config_.cols});
    if (!h.mobile) {
      for (std::int64_t r = 0; r < config_.rows; ++r) {
        for (std::int64_t c = 0; c < config_.cols; ++c) {
          const double dr = static_cast<double>(r) - h.row;
          const double dc = static_cast<double>(c) - h.col;
          k.at(r, c) = static_cast<float>(
              std::exp(-(dr * dr + dc * dc) / (2.0 * h.radius * h.radius)));
        }
      }
    }
    kernels_.push_back(std::move(k));
  }

  // Residential background: broad bump over the whole city, decaying with
  // distance from the centre.
  base_field_ = Tensor(Shape{config_.rows, config_.cols});
  const double bg_sigma = side * 0.45;
  for (std::int64_t r = 0; r < config_.rows; ++r) {
    for (std::int64_t c = 0; c < config_.cols; ++c) {
      const double dr = static_cast<double>(r) - cr;
      const double dc = static_cast<double>(c) - cc;
      base_field_.at(r, c) = static_cast<float>(
          0.3 + 0.7 * std::exp(-(dr * dr + dc * dc) /
                               (2.0 * bg_sigma * bg_sigma)));
    }
  }

  // --- Point-source towers --------------------------------------------------
  // Single-cell spikes with heavy-tailed amplitudes; half cluster in the
  // centre (dense urban deployments), half spread across the city. Their
  // positions are the sub-probe detail MTSR must learn to localise.
  check(config_.tower_share >= 0.0 && config_.tower_share < 1.0,
        "MilanConfig: tower_share must be in [0,1)");
  check(config_.tower_spillover >= 0.0 && config_.tower_spillover <= 1.0,
        "MilanConfig: tower_spillover must be in [0,1]");
  std::int64_t num_towers = config_.num_towers;
  if (num_towers < 0) num_towers = (config_.rows * config_.cols) / 13;
  towers_.reserve(static_cast<std::size_t>(num_towers));
  for (std::int64_t i = 0; i < num_towers; ++i) {
    Tower tower{};
    if (rng_.bernoulli(0.5)) {
      tower.row = std::clamp<std::int64_t>(
          static_cast<std::int64_t>(cr + rng_.normal(0.0, side * 0.14)), 0,
          config_.rows - 1);
      tower.col = std::clamp<std::int64_t>(
          static_cast<std::int64_t>(cc + rng_.normal(0.0, side * 0.14)), 0,
          config_.cols - 1);
    } else {
      tower.row = rng_.uniform_int(0, config_.rows - 1);
      tower.col = rng_.uniform_int(0, config_.cols - 1);
    }
    tower.amplitude = rng_.lognormal(0.0, 1.0);  // heavy tail
    const double pick = rng_.uniform();
    tower.land_use = pick < 0.4 ? LandUse::kBusiness
                     : pick < 0.7 ? LandUse::kResidential
                                  : LandUse::kEntertainment;
    towers_.push_back(tower);
  }

  // --- Amplitude calibration ----------------------------------------------
  // Split the calibrated peak between the smooth hotspot fields and the
  // tower spikes: the busiest cell at a weekday peak reaches
  // ~peak_traffic_mb while quiet cells sit near base_traffic_mb. Mobile
  // hotspots are calibrated at their work anchor (the peak-hour geometry).
  const double headroom = config_.peak_traffic_mb - config_.base_traffic_mb;
  Tensor combined(Shape{config_.rows, config_.cols});
  for (std::size_t i = 0; i < hotspots_.size(); ++i) {
    const Hotspot& h = hotspots_[i];
    if (h.mobile) {
      for (std::int64_t r = 0; r < config_.rows; ++r) {
        for (std::int64_t c = 0; c < config_.cols; ++c) {
          const double dr = static_cast<double>(r) - h.work_row;
          const double dc = static_cast<double>(c) - h.work_col;
          combined.at(r, c) += static_cast<float>(
              h.amplitude *
              std::exp(-(dr * dr + dc * dc) / (2.0 * h.radius * h.radius)));
        }
      }
    } else {
      combined.axpy_(static_cast<float>(h.amplitude), kernels_[i]);
    }
  }
  const double max_combined = combined.max();
  check_internal(max_combined > 0.0, "hotspot field is empty");
  const double field_scale =
      headroom * (1.0 - config_.tower_share) / max_combined;
  for (Hotspot& h : hotspots_) h.amplitude *= field_scale;

  if (!towers_.empty()) {
    double max_tower = 0.0;
    for (const Tower& t : towers_) max_tower = std::max(max_tower, t.amplitude);
    const double tower_scale = headroom * config_.tower_share / max_tower;
    for (Tower& t : towers_) t.amplitude *= tower_scale;
  }

  // Phases for the smooth deterministic hotspot/tower noise (sinusoids).
  ar_state_.resize(hotspots_.size() * 3);
  for (double& phase : ar_state_) phase = rng_.uniform(0.0, 2.0 * kPi);
  tower_phase_.resize(towers_.size() * 3);
  for (double& phase : tower_phase_) phase = rng_.uniform(0.0, 2.0 * kPi);
}

double MilanTrafficGenerator::commute_progress(std::int64_t t) const {
  const int mow = minute_of_week(t);
  const int day = mow / (24 * 60);
  const double hour = (mow % (24 * 60)) / 60.0;
  auto smoothstep = [](double x) {
    x = std::clamp(x, 0.0, 1.0);
    return x * x * (3.0 - 2.0 * x);
  };
  // Ramp in 07:00-09:30, plateau, ramp out 16:30-20:00.
  const double up = smoothstep((hour - 7.0) / 2.5);
  const double down = smoothstep((hour - 16.5) / 3.5);
  const double progress = up * (1.0 - down);
  return day >= 5 ? 0.25 * progress : progress;
}

int MilanTrafficGenerator::minute_of_week(std::int64_t t) const {
  const std::int64_t minutes =
      config_.start_minute_of_week +
      t * static_cast<std::int64_t>(config_.interval_minutes);
  return static_cast<int>(minutes % (7 * 24 * 60));
}

double MilanTrafficGenerator::temporal_profile(LandUse land_use,
                                               std::int64_t t) const {
  const int mow = minute_of_week(t);
  const int day = mow / (24 * 60);          // 0 = Monday
  const double hour = (mow % (24 * 60)) / 60.0;
  const bool weekend = day >= 5;
  const bool party_night = day == 4 || day == 5;  // Friday, Saturday

  switch (land_use) {
    case LandUse::kBusiness: {
      const double shape =
          day_bump(hour, 10.0, 2.5) + 0.9 * day_bump(hour, 15.0, 2.5);
      return 0.05 + shape * (weekend ? 0.35 : 1.0);
    }
    case LandUse::kResidential: {
      const double shape = 0.3 * day_bump(hour, 8.0, 1.5) +
                           0.25 * day_bump(hour, 13.0, 2.0) +
                           day_bump(hour, 21.0, 2.5);
      return 0.08 + shape * (weekend ? 1.15 : 1.0);
    }
    case LandUse::kEntertainment: {
      const double shape =
          day_bump(hour, 22.0, 2.0) + 0.5 * day_bump(hour, 19.0, 1.5);
      return 0.05 + shape * (party_night ? 1.5 : 0.8);
    }
  }
  return 0.0;
}

std::vector<Tensor> MilanTrafficGenerator::generate(std::int64_t t0,
                                                    std::int64_t count) {
  check(t0 >= 0 && count >= 0, "generate: bad time range");
  std::vector<Tensor> frames;
  frames.reserve(static_cast<std::size_t>(count));

  const std::int64_t cells = config_.rows * config_.cols;
  // Periods (in intervals) of the smooth hotspot noise components.
  constexpr double kPeriods[3] = {37.0, 101.0, 223.0};

  for (std::int64_t t = t0; t < t0 + count; ++t) {
    Tensor frame(Shape{config_.rows, config_.cols});

    // Background: broad residential field with a day-time activity cycle.
    const int mow = minute_of_week(t);
    const double hour = (mow % (24 * 60)) / 60.0;
    const double base_cycle = 0.25 + 0.75 * day_bump(hour, 14.0, 5.0);
    for (std::int64_t i = 0; i < cells; ++i) {
      frame.flat(i) = static_cast<float>(config_.base_traffic_mb * base_cycle *
                                         base_field_.flat(i));
    }

    // Hotspots with land-use profiles and smooth multiplicative noise;
    // mobile hotspots sit at their commute-interpolated position.
    const double commute = commute_progress(t);
    for (std::size_t hi = 0; hi < hotspots_.size(); ++hi) {
      const Hotspot& h = hotspots_[hi];
      double noise = 0.0;
      for (int k = 0; k < 3; ++k) {
        noise += std::sin(2.0 * kPi * static_cast<double>(t) / kPeriods[k] +
                          ar_state_[hi * 3 + static_cast<std::size_t>(k)]);
      }
      noise *= config_.noise_level / std::sqrt(3.0);
      const double factor =
          h.amplitude * temporal_profile(h.land_use, t) * (1.0 + noise);
      if (!h.mobile) {
        frame.axpy_(static_cast<float>(factor), kernels_[hi]);
        continue;
      }
      const double row = h.row + (h.work_row - h.row) * commute;
      const double col = h.col + (h.work_col - h.col) * commute;
      const double reach = 3.5 * h.radius;
      const auto r0 = static_cast<std::int64_t>(
          std::max(0.0, std::floor(row - reach)));
      const auto r1 = static_cast<std::int64_t>(std::min(
          static_cast<double>(config_.rows - 1), std::ceil(row + reach)));
      const auto c0 = static_cast<std::int64_t>(
          std::max(0.0, std::floor(col - reach)));
      const auto c1 = static_cast<std::int64_t>(std::min(
          static_cast<double>(config_.cols - 1), std::ceil(col + reach)));
      const double two_sigma_sq = 2.0 * h.radius * h.radius;
      for (std::int64_t r = r0; r <= r1; ++r) {
        for (std::int64_t c = c0; c <= c1; ++c) {
          const double dr = static_cast<double>(r) - row;
          const double dc = static_cast<double>(c) - col;
          frame.at(r, c) += static_cast<float>(
              factor * std::exp(-(dr * dr + dc * dc) / two_sigma_sq));
        }
      }
    }

    // Tower spikes: point sources with a small 4-neighbour spillover.
    for (std::size_t ti = 0; ti < towers_.size(); ++ti) {
      const Tower& tower = towers_[ti];
      double noise = 0.0;
      for (int k = 0; k < 3; ++k) {
        noise += std::sin(2.0 * kPi * static_cast<double>(t) / kPeriods[k] +
                          tower_phase_[ti * 3 + static_cast<std::size_t>(k)]);
      }
      noise *= config_.noise_level * 2.0 / std::sqrt(3.0);
      const double load =
          tower.amplitude * temporal_profile(tower.land_use, t) *
          std::max(1.0 + noise, 0.0);
      const double spill = load * config_.tower_spillover / 4.0;
      frame.at(tower.row, tower.col) +=
          static_cast<float>(load * (1.0 - config_.tower_spillover));
      const std::int64_t nr[4] = {tower.row - 1, tower.row + 1, tower.row,
                                  tower.row};
      const std::int64_t nc[4] = {tower.col, tower.col, tower.col - 1,
                                  tower.col + 1};
      for (int k = 0; k < 4; ++k) {
        if (nr[k] >= 0 && nr[k] < config_.rows && nc[k] >= 0 &&
            nc[k] < config_.cols) {
          frame.at(nr[k], nc[k]) += static_cast<float>(spill);
        }
      }
    }

    // Additive spatially-correlated measurement noise: white field smoothed
    // with two box-blur passes. Seeded per (generator seed, t) so frames are
    // deterministic regardless of generation order.
    Rng frame_rng(hash_combine(config_.seed, static_cast<std::uint64_t>(t)));
    Tensor white(Shape{config_.rows, config_.cols});
    for (std::int64_t i = 0; i < cells; ++i) {
      white.flat(i) = static_cast<float>(frame_rng.normal());
    }
    for (int pass = 0; pass < 2; ++pass) {
      Tensor blurred(Shape{config_.rows, config_.cols});
      for (std::int64_t r = 0; r < config_.rows; ++r) {
        for (std::int64_t c = 0; c < config_.cols; ++c) {
          double acc = 0.0;
          int n = 0;
          for (int dr = -1; dr <= 1; ++dr) {
            for (int dc = -1; dc <= 1; ++dc) {
              const std::int64_t rr = r + dr, cc2 = c + dc;
              if (rr < 0 || rr >= config_.rows || cc2 < 0 ||
                  cc2 >= config_.cols) {
                continue;
              }
              acc += white.at(rr, cc2);
              ++n;
            }
          }
          blurred.at(r, c) = static_cast<float>(acc / n);
        }
      }
      white = std::move(blurred);
    }
    frame.axpy_(static_cast<float>(config_.field_noise_mb * 3.0), white);

    // Traffic volumes cannot be negative.
    for (std::int64_t i = 0; i < cells; ++i) {
      frame.flat(i) = std::max(frame.flat(i), 0.5f);
    }
    frames.push_back(std::move(frame));
  }
  return frames;
}

}  // namespace mtsr::data
