// Synthetic Milan-like mobile traffic generator.
//
// Substitute for the Telecom Italia Big Data Challenge dataset the paper
// trains on (CDR-derived traffic volumes on a 100×100 grid of 0.055 km²
// sub-cells at 10-minute resolution, 1 Nov 2013 – 1 Jan 2014). We cannot
// redistribute that dataset, so this module synthesises traffic fields with
// the statistical properties MTSR depends on (see DESIGN.md §2):
//
//  * a fixed urban geography — a dense city-centre cluster of business
//    hotspots, satellite business/residential/entertainment hotspots, and a
//    broad residential background with distance decay (cf. Fig. 6: traffic
//    concentrates in central Milan);
//  * point-source "towers": single-cell traffic spikes with heavy-tailed
//    amplitudes, reproducing the needle-like texture of the paper's
//    fine-grained surfaces (Fig. 10). Tower positions are sub-probe detail
//    that wide-context models can memorise but small-patch interpolators
//    cannot — the property behind the paper's method ordering;
//  * hotspot spatial scale smaller than coarse probe coverage, so genuine
//    sub-probe detail exists for super-resolution to recover;
//  * diurnal and weekly modulation per land-use class (business peaks on
//    weekday working hours, residential in the evening, entertainment at
//    night and weekends);
//  * smooth multiplicative temporally-correlated hotspot/tower noise
//    (deterministic sinusoid mixtures with random phases) plus an additive
//    spatially-correlated field noise;
//  * volumes scaled to the paper's observed range (~20 MB off-peak to
//    ~5496 MB peak per cell per 10 minutes).
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/rng.hpp"
#include "src/tensor/tensor.hpp"

namespace mtsr::data {

/// Land-use class of a hotspot; selects its temporal profile.
enum class LandUse { kBusiness, kResidential, kEntertainment };

/// One traffic hotspot: a Gaussian bump of activity. Mobile hotspots model
/// commuting crowds: their centre drifts between a home anchor (row, col)
/// and a work anchor (work_row, work_col) following the diurnal commute
/// schedule, so the *instantaneous* sub-probe position of the bump is only
/// recoverable from temporal context — the property the paper's 3-D
/// convolutional blocks exploit and single-frame interpolators cannot.
struct Hotspot {
  double row;        ///< home-anchor centre (fractional cells)
  double col;
  double work_row;   ///< work-anchor centre (equals home if static)
  double work_col;
  bool mobile;       ///< drifts with the commute schedule when true
  double radius;     ///< Gaussian sigma, in cells
  double amplitude;  ///< peak contribution, in MB per interval
  LandUse land_use;
};

/// Generator configuration.
struct MilanConfig {
  std::int64_t rows = 100;
  std::int64_t cols = 100;
  int interval_minutes = 10;       ///< paper: 10-minute bins
  std::int64_t num_hotspots = 60;  ///< scaled down with the grid in benches
  /// Point-source towers (single-cell spikes); <0 derives a density of one
  /// tower per ~13 cells from the grid area.
  std::int64_t num_towers = -1;
  /// Fraction of hotspots that commute between home and work anchors.
  double mobile_fraction = 0.5;
  /// Commute displacement as a fraction of the grid side.
  double commute_distance = 0.25;
  /// Fraction of the calibrated peak carried by the tower spikes (the rest
  /// comes from the smooth hotspot fields).
  double tower_share = 0.35;
  /// Fraction of each tower's traffic spilling into its 4-neighbours.
  double tower_spillover = 0.2;
  double base_traffic_mb = 20.0;   ///< off-peak floor (paper: ~20 MB)
  double peak_traffic_mb = 5496.0; ///< city-centre peak (paper: 5496 MB)
  double noise_level = 0.08;       ///< relative smooth hotspot/tower noise
  double field_noise_mb = 4.0;     ///< additive spatial noise scale
  std::uint64_t seed = 42;
  /// Simulation start, expressed as minutes since Monday 00:00 (weekly
  /// phase); the paper's data starts Friday 1 Nov 2013 00:00.
  int start_minute_of_week = 4 * 24 * 60;
};

/// A single-cell point source (base-station-like traffic spike).
struct Tower {
  std::int64_t row;
  std::int64_t col;
  double amplitude;  ///< peak contribution in MB per interval
  LandUse land_use;
};

/// Deterministic synthetic traffic source. All snapshots produced by one
/// generator share the same geography; only temporal factors and noise vary.
class MilanTrafficGenerator {
 public:
  explicit MilanTrafficGenerator(MilanConfig config);

  /// Generates `count` consecutive snapshots starting at interval `t0`.
  /// Each snapshot is a (rows, cols) tensor of MB consumed per sub-cell.
  [[nodiscard]] std::vector<Tensor> generate(std::int64_t t0,
                                             std::int64_t count);

  /// The temporal activity multiplier of a land-use class at interval t
  /// (exposed for tests; strictly positive, dimensionless).
  [[nodiscard]] double temporal_profile(LandUse land_use,
                                        std::int64_t t) const;

  /// The commute progress at interval t: 0 = everyone at the home anchor,
  /// 1 = everyone at the work anchor (weekdays ~09:00-17:00), smooth
  /// transitions in between; damped on weekends. Exposed for tests.
  [[nodiscard]] double commute_progress(std::int64_t t) const;

  /// The static hotspot list (fixed geography).
  [[nodiscard]] const std::vector<Hotspot>& hotspots() const {
    return hotspots_;
  }

  /// The static tower list (fixed geography).
  [[nodiscard]] const std::vector<Tower>& towers() const { return towers_; }

  [[nodiscard]] const MilanConfig& config() const { return config_; }

 private:
  /// Minute-of-week for interval t.
  [[nodiscard]] int minute_of_week(std::int64_t t) const;

  MilanConfig config_;
  Rng rng_;
  std::vector<Hotspot> hotspots_;
  std::vector<Tower> towers_;
  std::vector<Tensor> kernels_;     ///< per-hotspot spatial field
  Tensor base_field_;               ///< residential background field
  std::vector<double> ar_state_;    ///< noise phases per hotspot
  std::vector<double> tower_phase_; ///< noise phases per tower
};

}  // namespace mtsr::data
