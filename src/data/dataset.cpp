#include "src/data/dataset.hpp"

#include <cmath>
#include <fstream>
#include <stdexcept>

#include "src/common/check.hpp"
#include "src/tensor/serialize.hpp"

namespace mtsr::data {

TrafficDataset::TrafficDataset(std::vector<Tensor> frames,
                               int interval_minutes, bool log_transform)
    : frames_(std::move(frames)),
      interval_minutes_(interval_minutes),
      log_transform_(log_transform) {
  check(!frames_.empty(), "TrafficDataset requires at least one frame");
  check(interval_minutes > 0, "TrafficDataset: bad interval");
  const Shape& shape = frames_.front().shape();
  check(shape.rank() == 2, "TrafficDataset frames must be rank-2");
  for (const Tensor& f : frames_) {
    check(f.shape() == shape, "TrafficDataset frames must share one shape");
  }
  set_splits(2.0 / 3.0, 1.0 / 6.0);
}

void TrafficDataset::set_splits(double train_fraction,
                                double validation_fraction) {
  check(train_fraction > 0.0 && validation_fraction >= 0.0 &&
            train_fraction + validation_fraction <= 1.0,
        "TrafficDataset::set_splits: bad fractions");
  const auto n = frame_count();
  const auto n_train = static_cast<std::int64_t>(
      std::floor(static_cast<double>(n) * train_fraction));
  const auto n_val = static_cast<std::int64_t>(
      std::floor(static_cast<double>(n) * validation_fraction));
  check(n_train >= 1, "TrafficDataset::set_splits: empty training split");
  train_ = {0, n_train};
  validation_ = {n_train, n_train + n_val};
  test_ = {n_train + n_val, n};
  recompute_stats();
}

void TrafficDataset::recompute_stats() {
  double sum = 0.0, sq = 0.0;
  std::int64_t count = 0;
  peak_ = 0.0;
  for (std::int64_t t = 0; t < frame_count(); ++t) {
    peak_ = std::max(peak_, static_cast<double>(frames_[static_cast<std::size_t>(t)].max()));
  }
  for (std::int64_t t = train_.begin; t < train_.end; ++t) {
    const Tensor& f = frames_[static_cast<std::size_t>(t)];
    for (std::int64_t i = 0; i < f.size(); ++i) {
      const double v = log_transform_ ? std::log1p(static_cast<double>(
                                            std::max(f.flat(i), 0.f)))
                                      : f.flat(i);
      sum += v;
      sq += v * v;
    }
    count += f.size();
  }
  stats_.mean = sum / static_cast<double>(count);
  const double var =
      std::max(sq / static_cast<double>(count) - stats_.mean * stats_.mean,
               1e-12);
  stats_.stddev = std::sqrt(var);
}

const Tensor& TrafficDataset::frame(std::int64_t t) const {
  check(t >= 0 && t < frame_count(), "TrafficDataset::frame out of range");
  return frames_[static_cast<std::size_t>(t)];
}

Tensor normalize_frame(const Tensor& raw, const NormStats& stats,
                       bool log_transform) {
  Tensor out = raw;
  if (log_transform) {
    out.apply_([](float v) { return std::log1p(std::max(v, 0.f)); });
  }
  out.add_scalar_(static_cast<float>(-stats.mean));
  out.mul_scalar_(static_cast<float>(1.0 / stats.stddev));
  return out;
}

Tensor denormalize_frame(const Tensor& normalized, const NormStats& stats,
                         bool log_transform) {
  Tensor out = normalized;
  out.mul_scalar_(static_cast<float>(stats.stddev));
  out.add_scalar_(static_cast<float>(stats.mean));
  if (log_transform) {
    out.apply_([](float v) { return std::expm1(std::min(v, 20.f)); });
  }
  return out;
}

Tensor TrafficDataset::normalized_frame(std::int64_t t) const {
  return normalize_frame(frame(t), stats_, log_transform_);
}

Tensor TrafficDataset::denormalize(const Tensor& normalized) const {
  return denormalize_frame(normalized, stats_, log_transform_);
}

void TrafficDataset::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("TrafficDataset::save: cannot open " + path);
  const std::int64_t n = frame_count();
  const std::int32_t iv = interval_minutes_;
  const std::uint8_t log_flag = log_transform_ ? 1 : 0;
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(&iv), sizeof(iv));
  out.write(reinterpret_cast<const char*>(&log_flag), sizeof(log_flag));
  for (const Tensor& f : frames_) write_tensor(out, f);
  if (!out) throw std::runtime_error("TrafficDataset::save: write failed");
}

TrafficDataset TrafficDataset::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("TrafficDataset::load: cannot open " + path);
  std::int64_t n = 0;
  std::int32_t iv = 0;
  std::uint8_t log_flag = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  in.read(reinterpret_cast<char*>(&iv), sizeof(iv));
  in.read(reinterpret_cast<char*>(&log_flag), sizeof(log_flag));
  if (!in || n <= 0 || iv <= 0 || log_flag > 1) {
    throw std::runtime_error("TrafficDataset::load: bad header");
  }
  std::vector<Tensor> frames;
  frames.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) frames.push_back(read_tensor(in));
  return TrafficDataset(std::move(frames), iv, log_flag == 1);
}

}  // namespace mtsr::data
