// online::FrameTap — the serving-to-training frame bridge.
//
// The continuous learner needs the frames the engine is actually serving,
// but the dispatch round must never wait on the trainer: publish() copies
// the snapshot into a bounded per-stream ring under a short mutex and
// evicts the OLDEST buffered frame when the stream is at capacity
// (drop-oldest — recent traffic is what online fine-tuning wants anyway).
// It never blocks on the consumer and never fails, so a slow, wedged or
// absent trainer cannot stall serving; the drop counter in stats() is the
// signal that the stream is outrunning the fine-tune loop.
//
// Producer side: Engine::set_frame_sink installs publish() on the serving
// thread(s). Consumer side: the trainer thread snapshots a stream's frames
// (a copy, oldest first) once per fine-tune round. Both sides are cheap —
// a city frame is rows x cols floats — and the mutex is held only for the
// copy, never across training or inference.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/tensor/tensor.hpp"

namespace mtsr::online {

/// Tap-side counters of serving::OnlineTrainerStats.
struct FrameTapStats {
  std::int64_t buffered = 0;   ///< frames currently held, all streams
  std::int64_t published = 0;  ///< frames ever published
  std::int64_t dropped = 0;    ///< drop-oldest evictions
  std::int64_t streams = 0;    ///< distinct stream keys seen
};

/// Bounded per-stream ring buffer between serving and training threads.
class FrameTap {
 public:
  /// `capacity_per_stream` bounds each stream's ring (>= 1).
  explicit FrameTap(std::int64_t capacity_per_stream = 64);

  /// Serving-side: copies `frame` into `stream`'s ring, evicting the
  /// oldest buffered frame when full. Never blocks, never throws on
  /// capacity.
  void publish(const std::string& stream, const Tensor& frame);

  /// Trainer-side: copies out `stream`'s buffered frames, oldest first.
  /// Empty when the stream has never published.
  [[nodiscard]] std::vector<Tensor> snapshot(const std::string& stream) const;

  /// Stream keys that have published at least one frame, sorted.
  [[nodiscard]] std::vector<std::string> streams() const;

  [[nodiscard]] FrameTapStats stats() const;

  [[nodiscard]] std::int64_t capacity_per_stream() const { return capacity_; }

 private:
  std::int64_t capacity_;
  mutable std::mutex mu_;
  std::map<std::string, std::deque<Tensor>> rings_;
  std::int64_t published_ = 0;
  std::int64_t dropped_ = 0;
};

}  // namespace mtsr::online
