// online::Trainer — the continuous-learning service: train-while-serve.
//
// ZipNet-GAN is trained once offline, but live traffic drifts by hour and
// by season; a frozen generator degrades as the measured city moves away
// from what it saw in training. The trainer closes the loop the serving
// stack left open:
//
//   serving sessions --Engine frame sink--> FrameTap (bounded, drop-oldest)
//        ^                                        |
//        |                              trainer thread: recency-weighted
//   Engine::reload_model  <-- holdout gate <-- fine-tune rounds (GanTrainer)
//
// The trainer owns a CLONE of the serving generator (same architecture,
// weights copied at attach), fine-tunes it on frames snapshotted from the
// tap, and periodically emits an atomic checkpoint. A candidate only
// reaches serving through the holdout gate: the newest `holdout_frames`
// tapped frames are reserved (never trained on) and the candidate's NRMSE
// on them must not regress past `max_nrmse_regression` relative to the
// weights currently serving — a degrading fine-tune run leaves serving
// bit-identical. Promotion goes through Engine::reload_model, so open
// sessions pick the new weights up at their next stitch-block boundary
// with zero dropped or duplicated blocks (PR 5's hot-reload contract).
//
// Serving-latency isolation: the background thread always runs inside a
// detail::NestedParallelRegion, so every parallel_for it issues directly
// (optimizer steps, losses, legacy train steps) executes serially on the
// trainer thread and never contends for the pool's in-flight task. The
// compute budget is `config.trainer.replicas`:
//   -1 (default)  fully isolated — the whole fine-tune step runs serially
//                 on the trainer thread; serving latency is untouched.
//   >= 1 (or 0)   replica-sharded steps (PR 9): slice forwards/backwards
//                 enqueue on the shard runner queues via run_on_shard,
//                 interleaving with dispatch rounds in queue order —
//                 training shares the shards, bounded by queue fairness;
//                 bench_online records the honest p99 impact.
//
// Threading contract: start()/stop() and run_rounds() are caller-thread
// operations and must not overlap each other; while the background thread
// runs, the serving thread may keep calling push/push_all/push_fused and
// stats() freely (promotion uses the reload/stats concurrency the engine
// documents). Do NOT open/close sessions or register models while the
// background trainer is running — reload_model validates against the open
// session set.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/common/rng.hpp"
#include "src/common/stopwatch.hpp"
#include "src/core/discriminator.hpp"
#include "src/core/gan_trainer.hpp"
#include "src/core/zipnet.hpp"
#include "src/data/dataset.hpp"
#include "src/data/probes.hpp"
#include "src/online/tap.hpp"
#include "src/serving/engine.hpp"

namespace mtsr::online {

/// Everything the continuous learner needs to know about the stream it
/// fine-tunes on and the promotion policy it applies.
struct TrainerConfig {
  TrainerConfig() { trainer.replicas = -1; }  // isolated by default

  std::string model = "zipnet";  ///< engine registry slot promotions target
  /// Tap stream to learn from (a session's stream tag, or "session-<id>"
  /// for untagged sessions). Empty: each round follows whichever stream
  /// currently buffers the most frames.
  std::string stream;

  // Stream geometry + normalisation (SessionConfig's view of the feed).
  data::MtsrInstance instance = data::MtsrInstance::kUp4;
  std::int64_t rows = 0, cols = 0;
  std::int64_t window = 0;  ///< training crop side (the serving window)
  data::NormStats norm;     ///< the TRAINING split's normalisation
  bool log_transform = true;

  /// Fine-tune engine configuration. `trainer.replicas` is the serving
  /// isolation budget (see the header comment); the TrainerConfig default
  /// overrides GanTrainerConfig's auto to -1 (fully isolated).
  core::GanTrainerConfig trainer;
  core::DiscriminatorConfig discriminator;  ///< for adversarial_rounds > 0

  int steps_per_round = 8;     ///< MSE fine-tune steps per loop round
  int adversarial_rounds = 0;  ///< GAN rounds after the MSE steps (ablation)
  int rounds_per_checkpoint = 2;  ///< candidate cadence

  std::int64_t tap_capacity = 64;   ///< per-stream ring bound (drop-oldest)
  std::int64_t holdout_frames = 3;  ///< newest frames reserved for the gate
  /// Reject a candidate whose holdout NRMSE exceeds the serving weights'
  /// by more than this relative margin (candidate <= serving * (1 + x)
  /// promotes). Negative values force rejection — useful for drills.
  double max_nrmse_regression = 0.05;
  /// Recency weighting half-life, in frames: a frame `a` intervals older
  /// than the newest trainable frame is drawn with weight 2^(-a / h).
  double recency_half_life = 16.0;

  std::string checkpoint_dir = ".";
  std::string checkpoint_prefix = "online-ckpt";
  int retain_checkpoints = 3;  ///< older candidate files are deleted

  double idle_wait_ms = 20.0;  ///< background poll while the tap is short

  /// Fills geometry + normalisation from a dataset (mirrors
  /// SessionConfig::from_dataset so trainer and session agree on units).
  [[nodiscard]] static TrainerConfig from_dataset(
      std::string model, data::MtsrInstance instance,
      const data::TrafficDataset& dataset, std::int64_t window);
};

/// The train-while-serve loop. Construction attaches to the engine (frame
/// sink + online stats source) and clones the reference generator;
/// start()/stop() run the loop on a dedicated thread, run_rounds() drives
/// it synchronously (tests, benches, deterministic demos).
class Trainer {
 public:
  /// `reference` is the generator whose architecture (and initial weights)
  /// the trainer clones — the one serving under `config.model`. It is
  /// read at construction only and never touched again.
  Trainer(serving::Engine& engine, core::ZipNet& reference,
          TrainerConfig config);
  ~Trainer();

  Trainer(const Trainer&) = delete;
  Trainer& operator=(const Trainer&) = delete;

  /// Launches the background fine-tune loop. No-op when already running.
  void start();
  /// Stops and joins the background thread. Safe to call when stopped.
  void stop();
  [[nodiscard]] bool running() const { return running_.load(); }

  /// Synchronous driver: runs up to `rounds` fine-tune rounds inline on
  /// the calling thread (rounds with too few tapped frames still count).
  /// Must not overlap the background thread. Returns rounds that trained.
  int run_rounds(int rounds);

  [[nodiscard]] FrameTap& tap() { return tap_; }
  [[nodiscard]] const TrainerConfig& config() const { return config_; }

  /// Thread-safe counters snapshot (also what Engine::stats() reports).
  [[nodiscard]] serving::OnlineTrainerStats stats() const;

  /// The loop error that stopped a background trainer, empty otherwise.
  [[nodiscard]] std::string last_error() const;

  /// Paths of the candidate checkpoints currently retained on disk.
  [[nodiscard]] std::vector<std::string> retained_checkpoints() const;

 private:
  void loop();
  /// One fine-tune round over a fresh tap snapshot; false when the tap is
  /// still too short to train.
  bool round();
  /// Emits a candidate checkpoint, gates it on the holdout window and
  /// promotes or rejects. `raw`/`normalized` are the round's snapshot.
  void emit_and_gate(const std::vector<Tensor>& raw,
                     const std::vector<Tensor>& normalized);
  /// Mean denormalised NRMSE of `net` over the reserved holdout frames.
  [[nodiscard]] double holdout_nrmse(core::ZipNet& net,
                                     const std::vector<Tensor>& raw,
                                     const std::vector<Tensor>& normalized);
  /// Builds one (input, target) pair from normalised tap frames: predict
  /// frame `t` from the window at (r0, c0) of frames [t-S+1, t].
  [[nodiscard]] data::Sample make_tap_sample(
      const std::vector<Tensor>& normalized, std::int64_t t, std::int64_t r0,
      std::int64_t c0) const;
  [[nodiscard]] std::string active_stream() const;
  [[nodiscard]] std::string checkpoint_path(std::int64_t serial) const;
  void gc_checkpoints();

  serving::Engine& engine_;
  TrainerConfig config_;
  FrameTap tap_;
  std::unique_ptr<data::ProbeLayout> layout_;  ///< window-local coarsener
  std::int64_t temporal_ = 0;                  ///< S, from the generator

  // The trainer's own model pair: net_ is fine-tuned; serving_twin_ holds
  // a copy of the weights serving right now (updated on promotion), the
  // gate's comparison point.
  std::unique_ptr<core::ZipNet> net_;
  std::unique_ptr<core::ZipNet> serving_twin_;
  std::unique_ptr<core::Discriminator> disc_;
  std::unique_ptr<core::GanTrainer> gan_;

  std::thread thread_;
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> running_{false};

  mutable std::mutex mu_;  ///< guards the counters + retained list below
  std::int64_t steps_ = 0;
  std::int64_t batches_ = 0;
  std::int64_t candidates_ = 0;
  std::int64_t promoted_ = 0;
  std::int64_t rejected_ = 0;
  double holdout_nrmse_ = -1;
  double serving_nrmse_ = -1;
  std::string last_error_;
  std::vector<std::string> retained_;
  Stopwatch staleness_;  ///< reset at attach and at every promotion

  int rounds_since_checkpoint_ = 0;  ///< trainer thread only
  std::int64_t next_serial_ = 0;     ///< trainer thread only
};

}  // namespace mtsr::online
