#include "src/online/tap.hpp"

#include "src/common/check.hpp"

namespace mtsr::online {

FrameTap::FrameTap(std::int64_t capacity_per_stream)
    : capacity_(capacity_per_stream) {
  check(capacity_ >= 1, "FrameTap: capacity_per_stream must be >= 1");
}

void FrameTap::publish(const std::string& stream, const Tensor& frame) {
  std::lock_guard<std::mutex> lock(mu_);
  std::deque<Tensor>& ring = rings_[stream];
  if (static_cast<std::int64_t>(ring.size()) >= capacity_) {
    ring.pop_front();
    ++dropped_;
  }
  ring.push_back(frame);
  ++published_;
}

std::vector<Tensor> FrameTap::snapshot(const std::string& stream) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = rings_.find(stream);
  if (it == rings_.end()) return {};
  return {it->second.begin(), it->second.end()};
}

std::vector<std::string> FrameTap::streams() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> keys;
  keys.reserve(rings_.size());
  for (const auto& [key, _] : rings_) keys.push_back(key);
  return keys;
}

FrameTapStats FrameTap::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  FrameTapStats stats;
  for (const auto& [_, ring] : rings_) {
    stats.buffered += static_cast<std::int64_t>(ring.size());
  }
  stats.published = published_;
  stats.dropped = dropped_;
  stats.streams = static_cast<std::int64_t>(rings_.size());
  return stats;
}

}  // namespace mtsr::online
