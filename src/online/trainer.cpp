#include "src/online/trainer.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <utility>

#include "src/common/check.hpp"
#include "src/common/parallel.hpp"
#include "src/metrics/metrics.hpp"
#include "src/nn/model_io.hpp"
#include "src/tensor/tensor_ops.hpp"

namespace mtsr::online {
namespace {

/// Copies every parameter and buffer of `src` into the architecture-equal
/// `dst` (the checkpoint round-trip without touching disk).
void copy_state(core::ZipNet& src, core::ZipNet& dst) {
  const auto sp = src.parameters();
  const auto dp = dst.parameters();
  check(sp.size() == dp.size(), "online::Trainer: parameter count mismatch");
  for (std::size_t i = 0; i < sp.size(); ++i) {
    check(dp[i]->value.shape() == sp[i]->value.shape(),
          "online::Trainer: parameter shape mismatch at " + sp[i]->name);
    dp[i]->value = sp[i]->value;
  }
  const auto sb = src.buffers();
  const auto db = dst.buffers();
  check(sb.size() == db.size(), "online::Trainer: buffer count mismatch");
  for (std::size_t i = 0; i < sb.size(); ++i) {
    *db[i].second = *sb[i].second;
  }
}

/// Architecture clone: mirrors the reference net's config (fresh Rng —
/// the weights are overwritten by copy_state right after).
std::unique_ptr<core::ZipNet> clone_generator(core::ZipNet& reference) {
  Rng rng(0);
  auto net = std::make_unique<core::ZipNet>(reference.config(), rng);
  copy_state(reference, *net);
  return net;
}

/// The gate's evaluation origins: four corners + centre of the grid,
/// deduplicated (small grids collapse them). Deterministic, so gate
/// decisions depend only on weights + holdout frames.
std::vector<std::pair<std::int64_t, std::int64_t>> gate_origins(
    std::int64_t rows, std::int64_t cols, std::int64_t window) {
  const std::int64_t rmax = rows - window;
  const std::int64_t cmax = cols - window;
  std::vector<std::pair<std::int64_t, std::int64_t>> origins{
      {0, 0}, {0, cmax}, {rmax, 0}, {rmax, cmax}, {rmax / 2, cmax / 2}};
  std::sort(origins.begin(), origins.end());
  origins.erase(std::unique(origins.begin(), origins.end()), origins.end());
  return origins;
}

}  // namespace

TrainerConfig TrainerConfig::from_dataset(std::string model,
                                          data::MtsrInstance instance,
                                          const data::TrafficDataset& dataset,
                                          std::int64_t window) {
  TrainerConfig config;
  config.model = std::move(model);
  config.instance = instance;
  config.rows = dataset.rows();
  config.cols = dataset.cols();
  config.window = window;
  config.norm = dataset.stats();
  config.log_transform = dataset.log_transform();
  return config;
}

Trainer::Trainer(serving::Engine& engine, core::ZipNet& reference,
                 TrainerConfig config)
    : engine_(engine),
      config_(std::move(config)),
      tap_(config_.tap_capacity),
      layout_(data::make_layout(config_.instance, config_.window,
                                config_.window)),
      temporal_(reference.config().temporal_length) {
  check(config_.rows >= config_.window && config_.cols >= config_.window &&
            config_.window > 0,
        "online::Trainer: bad stream geometry");
  check(config_.holdout_frames >= 1,
        "online::Trainer: holdout_frames must be >= 1");
  check(config_.rounds_per_checkpoint >= 1,
        "online::Trainer: rounds_per_checkpoint must be >= 1");
  check(config_.retain_checkpoints >= 1,
        "online::Trainer: retain_checkpoints must be >= 1");
  check(config_.recency_half_life > 0,
        "online::Trainer: recency_half_life must be positive");
  check(engine_.has_model(config_.model),
        "online::Trainer: engine has no model \"" + config_.model + "\"");

  net_ = clone_generator(reference);
  serving_twin_ = clone_generator(reference);
  Rng disc_rng(config_.trainer.seed + 1);
  disc_ = std::make_unique<core::Discriminator>(config_.discriminator,
                                                disc_rng);
  gan_ = std::make_unique<core::GanTrainer>(*net_, *disc_, config_.trainer);

  engine_.set_frame_sink(
      [this](const std::string& stream, const Tensor& frame) {
        tap_.publish(stream, frame);
      });
  engine_.set_online_stats_source([this] { return stats(); });
  staleness_.reset();
}

Trainer::~Trainer() {
  stop();
  // Detach the engine hooks that capture `this` (the engine usually
  // outlives the trainer). Callers must not race pushes or stats() against
  // trainer destruction — same rule as Engine::register_model.
  engine_.set_frame_sink({});
  engine_.set_online_stats_source({});
}

void Trainer::start() {
  if (running_.load()) return;
  stop_requested_.store(false);
  running_.store(true);
  thread_ = std::thread([this] { loop(); });
}

void Trainer::stop() {
  stop_requested_.store(true);
  if (thread_.joinable()) thread_.join();
  running_.store(false);
}

void Trainer::loop() {
  // Everything this thread runs directly — optimizer steps, losses, the
  // legacy serial train step — executes serially under the nested-region
  // guard, never contending for the pool's in-flight task against a
  // concurrently serving thread. Replica-budget configs still fan their
  // slices out through the shard runner queues (run_on_shard is safe to
  // enqueue from here).
  detail::NestedParallelRegion nested;
  while (!stop_requested_.load()) {
    bool trained = false;
    try {
      trained = round();
    } catch (const std::exception& e) {
      std::lock_guard<std::mutex> lock(mu_);
      last_error_ = e.what();
      break;
    }
    if (!trained && !stop_requested_.load()) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          config_.idle_wait_ms));
    }
  }
  running_.store(false);
}

int Trainer::run_rounds(int rounds) {
  check(!running_.load(),
        "online::Trainer::run_rounds: background trainer is running");
  int trained = 0;
  for (int r = 0; r < rounds; ++r) {
    if (round()) ++trained;
  }
  return trained;
}

std::string Trainer::active_stream() const {
  if (!config_.stream.empty()) return config_.stream;
  // Follow the busiest stream: deterministic (ties break by key order) and
  // robust to the caller not tagging its sessions.
  std::string best;
  std::int64_t best_depth = -1;
  for (const std::string& key : tap_.streams()) {
    const auto depth =
        static_cast<std::int64_t>(tap_.snapshot(key).size());
    if (depth > best_depth) {
      best_depth = depth;
      best = key;
    }
  }
  return best;
}

data::Sample Trainer::make_tap_sample(const std::vector<Tensor>& normalized,
                                      std::int64_t t, std::int64_t r0,
                                      std::int64_t c0) const {
  const std::int64_t w = config_.window;
  std::vector<Tensor> coarse;
  coarse.reserve(static_cast<std::size_t>(temporal_));
  for (std::int64_t s = t - temporal_ + 1; s <= t; ++s) {
    Tensor fine = crop2d(normalized[static_cast<std::size_t>(s)], r0, c0, w, w);
    coarse.push_back(layout_->coarsen(fine));
  }
  data::Sample sample;
  sample.input = stack0(coarse);
  sample.target =
      crop2d(normalized[static_cast<std::size_t>(t)], r0, c0, w, w);
  return sample;
}

bool Trainer::round() {
  const std::string stream = active_stream();
  if (stream.empty()) return false;
  const std::vector<Tensor> raw = tap_.snapshot(stream);
  const auto n = static_cast<std::int64_t>(raw.size());
  // Trainable targets are [S-1, n-1-holdout]; the newest holdout_frames
  // stay reserved for the gate (they need S-1 frames of history, which may
  // reach into the trainable range — histories overlap, targets never do).
  const std::int64_t newest_trainable = n - 1 - config_.holdout_frames;
  if (newest_trainable < temporal_ - 1) return false;

  std::vector<Tensor> normalized;
  normalized.reserve(raw.size());
  for (const Tensor& frame : raw) {
    normalized.push_back(
        data::normalize_frame(frame, config_.norm, config_.log_transform));
  }

  // Recency-weighted target draw: weight 2^(-age / half_life) against the
  // newest trainable frame, window origin uniform. The sample depends only
  // on the per-sample RNG stream and this round's snapshot.
  std::vector<double> weights(
      static_cast<std::size_t>(newest_trainable - (temporal_ - 1) + 1));
  for (std::size_t k = 0; k < weights.size(); ++k) {
    const auto t = static_cast<std::int64_t>(k) + temporal_ - 1;
    weights[k] = std::exp2(-static_cast<double>(newest_trainable - t) /
                           config_.recency_half_life);
  }
  const core::SampleSource source = [&](Rng& rng) {
    const std::int64_t t =
        temporal_ - 1 + static_cast<std::int64_t>(rng.categorical(weights));
    const std::int64_t r0 = rng.uniform_int(0, config_.rows - config_.window);
    const std::int64_t c0 = rng.uniform_int(0, config_.cols - config_.window);
    return make_tap_sample(normalized, t, r0, c0);
  };

  gan_->pretrain(source, config_.steps_per_round);
  std::int64_t new_steps = config_.steps_per_round;
  if (config_.adversarial_rounds > 0) {
    gan_->train(source, config_.adversarial_rounds);
    new_steps += static_cast<std::int64_t>(config_.adversarial_rounds) *
                 (config_.trainer.n_d * config_.trainer.critic_iters +
                  config_.trainer.n_g);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    steps_ += new_steps;
    batches_ += new_steps;  // one staged mini-batch per step
  }

  if (++rounds_since_checkpoint_ >= config_.rounds_per_checkpoint) {
    rounds_since_checkpoint_ = 0;
    emit_and_gate(raw, normalized);
  }
  return true;
}

double Trainer::holdout_nrmse(core::ZipNet& net,
                              const std::vector<Tensor>& raw,
                              const std::vector<Tensor>& normalized) {
  const auto n = static_cast<std::int64_t>(raw.size());
  const std::int64_t w = config_.window;
  const auto origins = gate_origins(config_.rows, config_.cols, w);
  double sum = 0.0;
  std::int64_t windows = 0;
  for (std::int64_t t = n - config_.holdout_frames; t < n; ++t) {
    if (t < temporal_ - 1) continue;  // not enough history yet
    for (const auto& [r0, c0] : origins) {
      const data::Sample sample = make_tap_sample(normalized, t, r0, c0);
      Workspace::Scope scope(Workspace::tls());
      Tensor pred = net.forward(stack0({sample.input}), /*training=*/false);
      Tensor fine = data::denormalize_frame(pred.reshape(Shape{w, w}),
                                            config_.norm,
                                            config_.log_transform);
      const Tensor truth =
          crop2d(raw[static_cast<std::size_t>(t)], r0, c0, w, w);
      // nrmse normalises by the ground-truth mean: skip windows of (near)
      // dead air, which would blow the ratio up on noise.
      if (truth.mean() <= 1e-6) continue;
      sum += metrics::nrmse(fine, truth);
      ++windows;
    }
  }
  return windows > 0 ? sum / static_cast<double>(windows) : 0.0;
}

std::string Trainer::checkpoint_path(std::int64_t serial) const {
  return config_.checkpoint_dir + "/" + config_.checkpoint_prefix + "-" +
         std::to_string(serial) + ".bin";
}

void Trainer::gc_checkpoints() {
  while (static_cast<std::int64_t>(retained_.size()) >
         config_.retain_checkpoints) {
    std::remove(retained_.front().c_str());
    retained_.erase(retained_.begin());
  }
}

void Trainer::emit_and_gate(const std::vector<Tensor>& raw,
                            const std::vector<Tensor>& normalized) {
  // Atomic candidate emission (save_tensors writes temp + rename): a crash
  // here never leaves a torn file for reload_model to trip on.
  const std::string path = checkpoint_path(next_serial_++);
  nn::save_model(path, *net_);

  // The holdout gate: candidate vs the weights serving right now, both on
  // the reserved newest frames, in denormalised units.
  const double cand = holdout_nrmse(*net_, raw, normalized);
  const double serving = holdout_nrmse(*serving_twin_, raw, normalized);
  const bool accept = cand <= serving * (1.0 + config_.max_nrmse_regression);

  {
    std::lock_guard<std::mutex> lock(mu_);
    ++candidates_;
    holdout_nrmse_ = cand;
    serving_nrmse_ = serving;
    retained_.push_back(path);
    gc_checkpoints();
  }

  if (accept) {
    // Promotion: the open sessions pick the candidate up at their next
    // stitch-block boundary (reload may run beside the serving thread).
    engine_.reload_model(config_.model, path);
    copy_state(*net_, *serving_twin_);
    std::lock_guard<std::mutex> lock(mu_);
    ++promoted_;
    staleness_.reset();
  } else {
    std::lock_guard<std::mutex> lock(mu_);
    ++rejected_;
  }
}

serving::OnlineTrainerStats Trainer::stats() const {
  const FrameTapStats tap = tap_.stats();
  std::lock_guard<std::mutex> lock(mu_);
  serving::OnlineTrainerStats stats;
  stats.running = running_.load();
  stats.steps = steps_;
  stats.batches = batches_;
  stats.tap_frames = tap.buffered;
  stats.tap_published = tap.published;
  stats.tap_dropped = tap.dropped;
  stats.tap_streams = tap.streams;
  stats.candidates = candidates_;
  stats.promoted = promoted_;
  stats.rejected = rejected_;
  stats.staleness_seconds = staleness_.seconds();
  stats.holdout_nrmse = holdout_nrmse_;
  stats.serving_nrmse = serving_nrmse_;
  return stats;
}

std::string Trainer::last_error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_error_;
}

std::vector<std::string> Trainer::retained_checkpoints() const {
  std::lock_guard<std::mutex> lock(mu_);
  return retained_;
}

}  // namespace mtsr::online
