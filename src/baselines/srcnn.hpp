// SRCNN baseline (Dong et al., TPAMI 2016).
//
// The "benchmark deep learning architecture that comprises three
// convolutional layers" the paper compares against: a 9-1-5 convolutional
// stack applied to the bicubic-upscaled coarse input, trained end-to-end
// with MSE. Channel widths default to a CPU-scale 24/12 (the original uses
// 64/32); all widths are configurable so the full-size model remains
// constructible.
#pragma once

#include <cstdint>
#include <memory>

#include "src/baselines/super_resolver.hpp"
#include "src/common/rng.hpp"
#include "src/nn/sequential.hpp"

namespace mtsr::baselines {

/// SRCNN configuration.
struct SrcnnConfig {
  std::int64_t channels1 = 24;   ///< first-layer feature maps (paper: 64)
  std::int64_t channels2 = 12;   ///< second-layer feature maps (paper: 32)
  int window = 24;               ///< training crop side
  int epochs = 60;               ///< passes over the sampled crop set
  int batch_size = 8;
  int crops_per_epoch = 48;
  float learning_rate = 5e-4f;
  std::uint64_t seed = 17;
  /// Data-parallel replica workers per train step: -1 forces the legacy
  /// whole-batch serial step, 0 resolves automatically (MTSR_TRAIN_REPLICAS,
  /// else one replica per pool shard, minimum 1 — auto never picks legacy),
  /// >= 1 forces that many workers. Results are bit-identical across
  /// settings >= 1 (see nn/replica.hpp).
  int replicas = 0;
};

/// Three-layer super-resolution CNN on bicubic-upscaled input.
class Srcnn final : public SuperResolver {
 public:
  explicit Srcnn(SrcnnConfig config = {});
  ~Srcnn() override;

  void fit(const std::vector<Tensor>& fine_frames,
           const data::ProbeLayout& layout) override;
  [[nodiscard]] Tensor super_resolve(
      const Tensor& fine_frame, const data::ProbeLayout& layout) const override;
  [[nodiscard]] std::string name() const override { return "SRCNN"; }

  /// Training-loss trace (one value per epoch), for convergence tests.
  [[nodiscard]] const std::vector<double>& loss_history() const {
    return loss_history_;
  }

  /// Trained 9-1-5 stack (nullptr before fit) and the normalisation
  /// statistics it was trained under — read by the int8 conversion
  /// (SrcnnInt8), which mirrors the network layer by layer.
  [[nodiscard]] const nn::Sequential* network() const {
    return network_.get();
  }
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double stddev() const { return stddev_; }
  [[nodiscard]] const SrcnnConfig& config() const { return config_; }

 private:
  SrcnnConfig config_;
  // forward() mutates layer caches, so the network is mutable to keep the
  // SuperResolver interface const-correct for callers.
  mutable std::unique_ptr<nn::Sequential> network_;
  double mean_ = 0.0;
  double stddev_ = 1.0;
  std::vector<double> loss_history_;
};

}  // namespace mtsr::baselines
