#include "src/baselines/bicubic.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/check.hpp"
#include "src/tensor/tensor_ops.hpp"

namespace mtsr::baselines {
namespace {

/// Catmull-Rom kernel (a = -0.5), the classic bicubic weighting.
float cubic_kernel(float x) {
  x = std::abs(x);
  if (x <= 1.f) {
    return 1.5f * x * x * x - 2.5f * x * x + 1.f;
  }
  if (x < 2.f) {
    return -0.5f * x * x * x + 2.5f * x * x - 4.f * x + 2.f;
  }
  return 0.f;
}

float sample_clamped(const Tensor& grid, std::int64_t r, std::int64_t c) {
  r = std::clamp<std::int64_t>(r, 0, grid.dim(0) - 1);
  c = std::clamp<std::int64_t>(c, 0, grid.dim(1) - 1);
  return grid.at(r, c);
}

}  // namespace

Tensor bicubic_upsample(const Tensor& coarse, int factor) {
  check(coarse.rank() == 2, "bicubic_upsample expects a rank-2 grid");
  check(factor >= 1, "bicubic_upsample requires factor >= 1");
  const std::int64_t h = coarse.dim(0), w = coarse.dim(1);
  const std::int64_t oh = h * factor, ow = w * factor;
  Tensor out(Shape{oh, ow});
  const float inv = 1.f / static_cast<float>(factor);
  for (std::int64_t r = 0; r < oh; ++r) {
    // Cell-centre alignment: fine centre (r+0.5) maps to coarse coordinate
    // (r+0.5)/factor - 0.5 in sample index space.
    const float v = (static_cast<float>(r) + 0.5f) * inv - 0.5f;
    const auto v0 = static_cast<std::int64_t>(std::floor(v));
    const float fv = v - static_cast<float>(v0);
    float wr[4];
    for (int i = 0; i < 4; ++i) {
      wr[i] = cubic_kernel(fv - static_cast<float>(i - 1));
    }
    for (std::int64_t c = 0; c < ow; ++c) {
      const float u = (static_cast<float>(c) + 0.5f) * inv - 0.5f;
      const auto u0 = static_cast<std::int64_t>(std::floor(u));
      const float fu = u - static_cast<float>(u0);
      float wc[4];
      for (int i = 0; i < 4; ++i) {
        wc[i] = cubic_kernel(fu - static_cast<float>(i - 1));
      }
      float acc = 0.f;
      for (int i = 0; i < 4; ++i) {
        for (int j = 0; j < 4; ++j) {
          acc += wr[i] * wc[j] *
                 sample_clamped(coarse, v0 - 1 + i, u0 - 1 + j);
        }
      }
      out.at(r, c) = acc;
    }
  }
  return out;
}

Tensor bicubic_upsample_adjoint(const Tensor& grad_fine, int factor) {
  check(grad_fine.rank() == 2, "bicubic_upsample_adjoint expects rank-2");
  check(factor >= 1, "bicubic_upsample_adjoint requires factor >= 1");
  const std::int64_t oh = grad_fine.dim(0), ow = grad_fine.dim(1);
  check(oh % factor == 0 && ow % factor == 0,
        "bicubic_upsample_adjoint: fine dims must be multiples of factor");
  const std::int64_t h = oh / factor, w = ow / factor;
  Tensor out(Shape{h, w});
  const float inv = 1.f / static_cast<float>(factor);
  for (std::int64_t r = 0; r < oh; ++r) {
    const float v = (static_cast<float>(r) + 0.5f) * inv - 0.5f;
    const auto v0 = static_cast<std::int64_t>(std::floor(v));
    const float fv = v - static_cast<float>(v0);
    float wr[4];
    for (int i = 0; i < 4; ++i) {
      wr[i] = cubic_kernel(fv - static_cast<float>(i - 1));
    }
    for (std::int64_t c = 0; c < ow; ++c) {
      const float u = (static_cast<float>(c) + 0.5f) * inv - 0.5f;
      const auto u0 = static_cast<std::int64_t>(std::floor(u));
      const float fu = u - static_cast<float>(u0);
      const float g = grad_fine.at(r, c);
      if (g == 0.f) continue;
      for (int i = 0; i < 4; ++i) {
        const std::int64_t rr =
            std::clamp<std::int64_t>(v0 - 1 + i, 0, h - 1);
        for (int j = 0; j < 4; ++j) {
          const std::int64_t cc =
              std::clamp<std::int64_t>(u0 - 1 + j, 0, w - 1);
          out.at(rr, cc) +=
              g * wr[i] * cubic_kernel(fu - static_cast<float>(j - 1));
        }
      }
    }
  }
  return out;
}

Tensor BicubicInterpolator::super_resolve(
    const Tensor& fine_frame, const data::ProbeLayout& layout) const {
  if (const auto* uniform =
          dynamic_cast<const data::UniformProbeLayout*>(&layout)) {
    return bicubic_upsample(uniform->coarsen(fine_frame), uniform->factor());
  }
  // Heterogeneous layout: no regular coarse grid. Pool the spread map to
  // the finest probe size and resample.
  Tensor spread = layout.spread_average(fine_frame);
  return bicubic_upsample(avg_pool2d(spread, 2), 2);
}

}  // namespace mtsr::baselines
