// Bicubic interpolation baseline.
//
// Catmull-Rom bicubic resampling, the "popular non-parametric tool
// frequently used to enhance the resolution of images" the paper compares
// against. For uniform probe layouts the coarse (H/f, W/f) grid is
// interpolated directly to the fine grid. For the mixture layout (probes of
// unequal sizes, so no regular coarse grid exists) the per-cell spread map
// is pooled to the finest probe granularity (2×2) and bicubic-resampled
// back, producing the characteristic smooth surface of Fig. 11's bicubic
// panel; this generic path is documented in DESIGN.md.
#pragma once

#include "src/baselines/super_resolver.hpp"

namespace mtsr::baselines {

/// Upsamples a (h, w) grid by an integer factor with Catmull-Rom bicubic
/// interpolation, treating samples as cell-centre values. Output is
/// (h*factor, w*factor).
[[nodiscard]] Tensor bicubic_upsample(const Tensor& coarse, int factor);

/// Adjoint of bicubic_upsample: maps a fine-grid cotangent (h*factor,
/// w*factor) back to the coarse grid (h, w), satisfying
/// <bicubic_upsample(x), y> == <x, bicubic_upsample_adjoint(y)>. Used to
/// backpropagate through bicubic residual bases.
[[nodiscard]] Tensor bicubic_upsample_adjoint(const Tensor& grad_fine,
                                              int factor);

/// Bicubic interpolation baseline over any probe layout.
class BicubicInterpolator final : public SuperResolver {
 public:
  BicubicInterpolator() = default;

  [[nodiscard]] Tensor super_resolve(
      const Tensor& fine_frame, const data::ProbeLayout& layout) const override;
  [[nodiscard]] std::string name() const override { return "Bicubic"; }
};

}  // namespace mtsr::baselines
