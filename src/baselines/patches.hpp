// Patch machinery shared by the SC and A+ baselines.
//
// Both methods operate on overlapping patches of the bicubic "mid" image
// (the coarse input upscaled to fine size): a feature vector is computed per
// mid patch (mean-removed intensities plus first-order gradients), a
// high-resolution residual patch (truth minus mid) is predicted from it,
// and overlapping predictions are averaged back into the full grid.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/rng.hpp"
#include "src/tensor/tensor.hpp"

namespace mtsr::baselines {

/// Patch extraction geometry.
struct PatchConfig {
  int size = 5;     ///< square patch side
  int stride = 1;   ///< sampling stride (prediction uses stride 1..size)
};

/// Feature dimension for a given patch size: size² mean-removed intensities
/// + 2·size² gradient taps.
[[nodiscard]] std::int64_t feature_dim(int patch_size);

/// Extracts the feature vector of the patch whose top-left corner is
/// (r0, c0) in `mid`. Writes feature_dim(size) floats to `out`.
void extract_feature(const Tensor& mid, std::int64_t r0, std::int64_t c0,
                     int size, float* out);

/// Enumerates all top-left corners at the given stride (the last row/col is
/// clamped so the whole grid is covered).
[[nodiscard]] std::vector<std::pair<std::int64_t, std::int64_t>>
patch_origins(std::int64_t rows, std::int64_t cols, int size, int stride);

/// Builds the (n, feat) feature matrix and (n, size²) residual-target
/// matrix from a list of (mid, truth) frame pairs.
struct PatchDataset {
  Tensor features;   ///< (n, feature_dim)
  Tensor residuals;  ///< (n, size²), truth − mid per patch
};
[[nodiscard]] PatchDataset collect_patches(
    const std::vector<Tensor>& mids, const std::vector<Tensor>& truths,
    const PatchConfig& config, std::int64_t max_patches, Rng& rng);

/// Adds predicted residual patches (n, size²) back onto `mid`, averaging
/// overlaps; origins must match the order used to produce the predictions.
[[nodiscard]] Tensor assemble_patches(
    const Tensor& mid,
    const std::vector<std::pair<std::int64_t, std::int64_t>>& origins,
    const Tensor& residuals, int size);

}  // namespace mtsr::baselines
