// Sparse Coding super-resolution baseline (Yang et al., TIP 2010).
//
// Coupled-dictionary SR: a low-resolution dictionary D_l is learned over
// patch features of the bicubic-upscaled input, each patch is sparse-coded
// over D_l with Orthogonal Matching Pursuit, and a high-resolution
// dictionary D_h (fit by ridge regression on the training codes) maps the
// code to a high-resolution residual patch. Overlapping patch predictions
// are averaged.
//
// Simplification vs. Yang et al., documented in DESIGN.md: D_l comes from
// K-means over feature patches (a standard fast variant) instead of joint
// ℓ1 dictionary learning; the coupled D_h fit and OMP coding follow the
// original.
#pragma once

#include <cstdint>

#include "src/baselines/patches.hpp"
#include "src/baselines/super_resolver.hpp"
#include "src/common/rng.hpp"

namespace mtsr::baselines {

/// Orthogonal Matching Pursuit: returns the sparse code (dictionary_size)
/// of `signal` over row-normalised `dictionary` (k×d), selecting at most
/// `sparsity` atoms.
[[nodiscard]] Tensor omp_encode(const Tensor& dictionary, const float* signal,
                                std::int64_t signal_dim, int sparsity);

/// Configuration of the SC baseline.
struct SparseCodingConfig {
  int dictionary_size = 128;
  int patch_size = 5;
  int sparsity = 3;
  int train_stride = 2;         ///< patch sampling stride during training
  int predict_stride = 2;       ///< patch stride during prediction
  std::int64_t max_train_patches = 12000;
  float ridge_lambda = 1e-2f;
  int kmeans_iterations = 15;
  std::uint64_t seed = 11;
};

/// Sparse-coding super-resolver.
class SparseCodingSR final : public SuperResolver {
 public:
  explicit SparseCodingSR(SparseCodingConfig config = {});

  void fit(const std::vector<Tensor>& fine_frames,
           const data::ProbeLayout& layout) override;
  [[nodiscard]] Tensor super_resolve(
      const Tensor& fine_frame, const data::ProbeLayout& layout) const override;
  [[nodiscard]] std::string name() const override { return "SC"; }

  [[nodiscard]] bool is_fitted() const { return fitted_; }

 private:
  SparseCodingConfig config_;
  bool fitted_ = false;
  Tensor dict_lo_;  ///< (k, feat), row-normalised
  Tensor dict_hi_;  ///< (patch², k)
};

}  // namespace mtsr::baselines
