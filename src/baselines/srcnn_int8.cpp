#include "src/baselines/srcnn_int8.hpp"

#include "src/baselines/bicubic.hpp"
#include "src/common/check.hpp"
#include "src/common/workspace.hpp"
#include "src/nn/conv2d.hpp"
#include "src/tensor/tensor_ops.hpp"

namespace mtsr::baselines {
namespace {

// Casts Sequential::layer(i) to the expected concrete type; the 9-1-5
// stack is fixed by Srcnn::fit, so a mismatch means the conversion walked
// out of sync with the architecture.
template <typename L>
const L& layer_as(const nn::Sequential& seq, std::size_t i) {
  const L* typed = dynamic_cast<const L*>(&seq.layer(i));
  check(typed != nullptr, "SrcnnInt8: unexpected layer type in 9-1-5 stack");
  return *typed;
}

}  // namespace

SrcnnInt8::SrcnnInt8(const Srcnn& srcnn)
    : mean_(srcnn.mean()), stddev_(srcnn.stddev()) {
  const nn::Sequential* net = srcnn.network();
  check(net != nullptr, "SrcnnInt8: Srcnn must be fitted before conversion");
  check(net->size() == 5, "SrcnnInt8: unexpected SRCNN stack length");
  // conv(9) → ReLU, conv(1) → ReLU, conv(5) linear. The ReLUs become
  // fused LeakyReLU epilogues with slope 0 (max(y, 0·y) == max(y, 0)).
  layers_.push_back(std::make_unique<nn::QuantConv2d>(
      layer_as<nn::Conv2d>(*net, 0), nullptr, 0.f));
  layers_.push_back(std::make_unique<nn::QuantConv2d>(
      layer_as<nn::Conv2d>(*net, 2), nullptr, 0.f));
  layers_.push_back(std::make_unique<nn::QuantConv2d>(
      layer_as<nn::Conv2d>(*net, 4), nullptr, 1.f));
}

void SrcnnInt8::fit(const std::vector<Tensor>& fine_frames,
                    const data::ProbeLayout& layout) {
  (void)fine_frames;
  (void)layout;
  check(false,
        "SrcnnInt8 is inference-only: fit the float Srcnn, then "
        "SrcnnInt8::convert");
}

Tensor SrcnnInt8::super_resolve_calibrate(const Tensor& fine_frame,
                                          const data::ProbeLayout& layout) {
  check(!frozen_, "SrcnnInt8::super_resolve_calibrate after freeze()");
  return run(fine_frame, layout, /*quantised=*/false);
}

void SrcnnInt8::freeze() {
  check(!frozen_, "SrcnnInt8: already frozen");
  for (auto& layer : layers_) layer->freeze();
  frozen_ = true;
}

Tensor SrcnnInt8::super_resolve(const Tensor& fine_frame,
                                const data::ProbeLayout& layout) const {
  check(frozen_, "SrcnnInt8::super_resolve before freeze() — calibrate first");
  return run(fine_frame, layout, /*quantised=*/true);
}

std::unique_ptr<SrcnnInt8> SrcnnInt8::convert(
    const Srcnn& srcnn, const std::vector<Tensor>& calibration,
    const data::ProbeLayout& layout) {
  check(!calibration.empty(),
        "SrcnnInt8::convert: calibration frames required (activation "
        "scales are data-dependent)");
  auto net = std::make_unique<SrcnnInt8>(srcnn);
  for (const Tensor& frame : calibration) {
    Workspace::Scope scope(Workspace::tls());
    (void)net->super_resolve_calibrate(frame, layout);
  }
  net->freeze();
  return net;
}

// Mirrors Srcnn::super_resolve: bicubic upscale, normalise, 9-1-5 network
// (quantised or calibrating), denormalise.
Tensor SrcnnInt8::run(const Tensor& fine_frame, const data::ProbeLayout& layout,
                      bool quantised) const {
  BicubicInterpolator bicubic;
  Tensor mid = bicubic.super_resolve(fine_frame, layout);
  const std::int64_t rows = mid.dim(0), cols = mid.dim(1);
  mid.add_scalar_(static_cast<float>(-mean_));
  mid.mul_scalar_(static_cast<float>(1.0 / stddev_));
  Tensor x = mid.reshape(Shape{1, 1, rows, cols});
  Workspace::Scope ws_scope(Workspace::tls());
  for (auto& layer : layers_) {
    x = quantised ? layer->forward(x) : layer->forward_calibrate(x);
  }
  Tensor out = x.reshape(Shape{rows, cols});
  out.mul_scalar_(static_cast<float>(stddev_));
  out.add_scalar_(static_cast<float>(mean_));
  return out;
}

}  // namespace mtsr::baselines
