#include "src/baselines/linalg.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "src/common/check.hpp"
#include "src/tensor/tensor_ops.hpp"

namespace mtsr::baselines {
namespace {

/// In-place Cholesky factorisation A = L Lᵀ (lower triangle). Returns false
/// if a non-positive pivot is met.
bool cholesky_factor(Tensor& a) {
  const std::int64_t n = a.dim(0);
  float* p = a.data();
  for (std::int64_t j = 0; j < n; ++j) {
    double diag = p[j * n + j];
    for (std::int64_t k = 0; k < j; ++k) {
      diag -= static_cast<double>(p[j * n + k]) * p[j * n + k];
    }
    if (diag <= 0.0) return false;
    const double ljj = std::sqrt(diag);
    p[j * n + j] = static_cast<float>(ljj);
    for (std::int64_t i = j + 1; i < n; ++i) {
      double acc = p[i * n + j];
      for (std::int64_t k = 0; k < j; ++k) {
        acc -= static_cast<double>(p[i * n + k]) * p[j * n + k];
      }
      p[i * n + j] = static_cast<float>(acc / ljj);
    }
    for (std::int64_t i = 0; i < j; ++i) p[i * n + j] = 0.f;
  }
  return true;
}

}  // namespace

Tensor cholesky_solve(const Tensor& a, const Tensor& b) {
  check(a.rank() == 2 && a.dim(0) == a.dim(1), "cholesky_solve: A not square");
  check(b.rank() == 2 && b.dim(0) == a.dim(0),
        "cholesky_solve: B row count mismatch");
  const std::int64_t n = a.dim(0), m = b.dim(1);

  Tensor l = a;
  if (!cholesky_factor(l)) {
    // Retry with diagonal jitter before giving up.
    l = a;
    const float jitter = 1e-5f * std::max(1.f, a.max());
    for (std::int64_t i = 0; i < n; ++i) l.at(i, i) += jitter;
    if (!cholesky_factor(l)) {
      throw std::runtime_error("cholesky_solve: matrix not positive definite");
    }
  }

  // Forward substitution L Z = B, then back substitution Lᵀ X = Z.
  Tensor x = b;
  float* px = x.data();
  const float* pl = l.data();
  for (std::int64_t col = 0; col < m; ++col) {
    for (std::int64_t i = 0; i < n; ++i) {
      double acc = px[i * m + col];
      for (std::int64_t k = 0; k < i; ++k) {
        acc -= static_cast<double>(pl[i * n + k]) * px[k * m + col];
      }
      px[i * m + col] = static_cast<float>(acc / pl[i * n + i]);
    }
    for (std::int64_t i = n - 1; i >= 0; --i) {
      double acc = px[i * m + col];
      for (std::int64_t k = i + 1; k < n; ++k) {
        acc -= static_cast<double>(pl[k * n + i]) * px[k * m + col];
      }
      px[i * m + col] = static_cast<float>(acc / pl[i * n + i]);
    }
  }
  return x;
}

Tensor ridge_regression(const Tensor& x, const Tensor& y, float lambda) {
  check(x.rank() == 2 && y.rank() == 2, "ridge_regression: rank-2 inputs");
  check(x.dim(1) == y.dim(1), "ridge_regression: sample count mismatch");
  check(lambda >= 0.f, "ridge_regression: negative lambda");
  const std::int64_t d_in = x.dim(0);
  Tensor gram = matmul_nt(x, x);  // (d_in, d_in)
  for (std::int64_t i = 0; i < d_in; ++i) gram.at(i, i) += lambda;
  Tensor yxt = matmul_nt(y, x);  // (d_out, d_in)
  // Solve gram Wᵀ = (Y Xᵀ)ᵀ, i.e. W = Y Xᵀ gram⁻¹ using symmetry of gram.
  Tensor wt = cholesky_solve(gram, transpose(yxt));  // (d_in, d_out)
  return transpose(wt);
}

KMeansResult kmeans(const Tensor& samples, int k, int max_iterations,
                    Rng& rng) {
  check(samples.rank() == 2, "kmeans: samples must be (n, d)");
  const std::int64_t n = samples.dim(0), d = samples.dim(1);
  check(k > 0 && k <= n, "kmeans: k must be in [1, n]");

  auto sq_dist = [&](const float* a, const float* b) {
    double acc = 0.0;
    for (std::int64_t i = 0; i < d; ++i) {
      const double diff = static_cast<double>(a[i]) - b[i];
      acc += diff * diff;
    }
    return acc;
  };

  // k-means++ seeding.
  Tensor centroids(Shape{k, d});
  std::vector<double> min_dist(static_cast<std::size_t>(n),
                               std::numeric_limits<double>::infinity());
  std::int64_t first = rng.uniform_int(0, n - 1);
  std::copy(samples.data() + first * d, samples.data() + (first + 1) * d,
            centroids.data());
  for (int c = 1; c < k; ++c) {
    std::vector<double> weights(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
      min_dist[static_cast<std::size_t>(i)] =
          std::min(min_dist[static_cast<std::size_t>(i)],
                   sq_dist(samples.data() + i * d,
                           centroids.data() + (c - 1) * d));
      weights[static_cast<std::size_t>(i)] =
          min_dist[static_cast<std::size_t>(i)] + 1e-12;
    }
    const std::int64_t pick =
        static_cast<std::int64_t>(rng.categorical(weights));
    std::copy(samples.data() + pick * d, samples.data() + (pick + 1) * d,
              centroids.data() + c * d);
  }

  std::vector<int> assignment(static_cast<std::size_t>(n), 0);
  for (int iter = 0; iter < max_iterations; ++iter) {
    bool changed = false;
    // Assignment step.
    for (std::int64_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      int best_c = 0;
      for (int c = 0; c < k; ++c) {
        const double dist =
            sq_dist(samples.data() + i * d, centroids.data() + c * d);
        if (dist < best) {
          best = dist;
          best_c = c;
        }
      }
      if (assignment[static_cast<std::size_t>(i)] != best_c) {
        assignment[static_cast<std::size_t>(i)] = best_c;
        changed = true;
      }
    }
    if (!changed && iter > 0) break;
    // Update step.
    centroids.fill(0.f);
    std::vector<std::int64_t> counts(static_cast<std::size_t>(k), 0);
    for (std::int64_t i = 0; i < n; ++i) {
      const int c = assignment[static_cast<std::size_t>(i)];
      ++counts[static_cast<std::size_t>(c)];
      for (std::int64_t j = 0; j < d; ++j) {
        centroids.data()[c * d + j] += samples.data()[i * d + j];
      }
    }
    for (int c = 0; c < k; ++c) {
      if (counts[static_cast<std::size_t>(c)] == 0) {
        // Re-seed an empty cluster from a random sample.
        const std::int64_t pick = rng.uniform_int(0, n - 1);
        std::copy(samples.data() + pick * d, samples.data() + (pick + 1) * d,
                  centroids.data() + c * d);
        continue;
      }
      const float inv =
          1.f / static_cast<float>(counts[static_cast<std::size_t>(c)]);
      for (std::int64_t j = 0; j < d; ++j) {
        centroids.data()[c * d + j] *= inv;
      }
    }
  }
  return {std::move(centroids), std::move(assignment)};
}

std::vector<float> normalize_rows(Tensor& matrix, float min_norm) {
  check(matrix.rank() == 2, "normalize_rows: rank-2 matrix expected");
  const std::int64_t n = matrix.dim(0), d = matrix.dim(1);
  std::vector<float> norms(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    double acc = 0.0;
    float* row = matrix.data() + i * d;
    for (std::int64_t j = 0; j < d; ++j) {
      acc += static_cast<double>(row[j]) * row[j];
    }
    const auto norm = static_cast<float>(std::sqrt(acc));
    norms[static_cast<std::size_t>(i)] = norm;
    if (norm > min_norm) {
      for (std::int64_t j = 0; j < d; ++j) row[j] /= norm;
    }
  }
  return norms;
}

}  // namespace mtsr::baselines
