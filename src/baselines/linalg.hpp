// Small dense linear-algebra helpers for the SC and A+ baselines:
// Cholesky factorisation/solves for ridge regressions and a K-means
// clusterer used to learn dictionary anchors.
#pragma once

#include <vector>

#include "src/common/rng.hpp"
#include "src/tensor/tensor.hpp"

namespace mtsr::baselines {

/// Solves A X = B for X, where A is symmetric positive definite (n×n) and
/// B is (n×m), via Cholesky factorisation. Throws if A is not SPD (after a
/// small diagonal jitter retry).
[[nodiscard]] Tensor cholesky_solve(const Tensor& a, const Tensor& b);

/// Ridge regression: returns W (d_out×d_in) minimising ‖W X − Y‖² + λ‖W‖²,
/// where X is (d_in×n) and Y is (d_out×n). Solved via the normal equations
/// W = Y Xᵀ (X Xᵀ + λI)⁻¹.
[[nodiscard]] Tensor ridge_regression(const Tensor& x, const Tensor& y,
                                      float lambda);

/// K-means result: centroids (k×d) and per-sample assignments.
struct KMeansResult {
  Tensor centroids;
  std::vector<int> assignment;
};

/// Lloyd's K-means over row-vector samples (n×d) with k-means++ seeding.
/// Deterministic given `rng`. Empty clusters are re-seeded from the sample
/// farthest from its centroid.
[[nodiscard]] KMeansResult kmeans(const Tensor& samples, int k,
                                  int max_iterations, Rng& rng);

/// L2-normalises each row of a (n×d) matrix in place; rows with near-zero
/// norm are left unchanged. Returns the per-row original norms.
std::vector<float> normalize_rows(Tensor& matrix, float min_norm = 1e-8f);

}  // namespace mtsr::baselines
