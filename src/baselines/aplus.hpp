// A+ baseline: Adjusted Anchored Neighbourhood Regression (Timofte et al.,
// ACCV 2014).
//
// A dictionary of anchors is learned over low-resolution patch features;
// for every anchor an offline ridge regressor is fit on the training
// samples closest to that anchor (its "anchored neighbourhood"). At test
// time each patch picks its most correlated anchor and applies the
// precomputed projection — making inference a single matrix-vector product
// per patch, which is the method's selling point over SC.
#pragma once

#include <cstdint>
#include <vector>

#include "src/baselines/patches.hpp"
#include "src/baselines/super_resolver.hpp"

namespace mtsr::baselines {

/// Configuration of the A+ baseline.
struct APlusConfig {
  int anchors = 64;
  int patch_size = 5;
  int neighbourhood = 512;     ///< training samples per anchored regression
  int train_stride = 2;
  int predict_stride = 2;
  std::int64_t max_train_patches = 12000;
  float ridge_lambda = 1e-1f;
  int kmeans_iterations = 15;
  std::uint64_t seed = 13;
};

/// A+ super-resolver.
class APlusSR final : public SuperResolver {
 public:
  explicit APlusSR(APlusConfig config = {});

  void fit(const std::vector<Tensor>& fine_frames,
           const data::ProbeLayout& layout) override;
  [[nodiscard]] Tensor super_resolve(
      const Tensor& fine_frame, const data::ProbeLayout& layout) const override;
  [[nodiscard]] std::string name() const override { return "A+"; }

  [[nodiscard]] bool is_fitted() const { return fitted_; }
  [[nodiscard]] int anchor_count() const { return config_.anchors; }

 private:
  /// Index of the anchor most correlated with a (normalised) feature.
  [[nodiscard]] std::int64_t nearest_anchor(const float* feature,
                                            std::int64_t dim) const;

  APlusConfig config_;
  bool fitted_ = false;
  Tensor anchors_;                    ///< (k, feat), row-normalised
  std::vector<Tensor> projections_;   ///< per anchor: (patch², feat)
};

}  // namespace mtsr::baselines
