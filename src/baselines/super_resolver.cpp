#include "src/baselines/super_resolver.hpp"

namespace mtsr::baselines {

Tensor UniformInterpolator::super_resolve(
    const Tensor& fine_frame, const data::ProbeLayout& layout) const {
  return layout.spread_average(fine_frame);
}

}  // namespace mtsr::baselines
