#include "src/baselines/super_resolver.hpp"

#include "src/baselines/aplus.hpp"
#include "src/baselines/bicubic.hpp"
#include "src/baselines/sparse_coding.hpp"
#include "src/baselines/srcnn.hpp"
#include "src/common/check.hpp"

namespace mtsr::baselines {

Tensor UniformInterpolator::super_resolve(
    const Tensor& fine_frame, const data::ProbeLayout& layout) const {
  return layout.spread_average(fine_frame);
}

std::unique_ptr<SuperResolver> make_super_resolver(const std::string& name) {
  if (name == "uniform") return std::make_unique<UniformInterpolator>();
  if (name == "bicubic") return std::make_unique<BicubicInterpolator>();
  if (name == "sc") return std::make_unique<SparseCodingSR>();
  if (name == "aplus") return std::make_unique<APlusSR>();
  if (name == "srcnn") return std::make_unique<Srcnn>();
  check(false, "make_super_resolver: unknown baseline \"" + name +
                   "\" (known: uniform, bicubic, sc, aplus, srcnn)");
  return nullptr;  // unreachable
}

}  // namespace mtsr::baselines
