// SuperResolver: common interface of the comparison methods of Section 5.3.
//
// The paper compares ZipNet(-GAN) against Uniform interpolation, Bicubic
// interpolation, Sparse Coding (SC), Adjusted Anchored Neighbourhood
// Regression (A+), and SRCNN. All of them are *single-snapshot* methods:
// they reconstruct the fine-grained frame from the current coarse
// aggregates only (no temporal context), exactly as image super-resolution
// operates on one image.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/data/probes.hpp"
#include "src/tensor/tensor.hpp"

namespace mtsr::baselines {

/// Interface over the baseline SR methods. `fit` may be a no-op for
/// non-parametric interpolators. Inputs/outputs are raw MB snapshots; each
/// method derives its coarse input from the fine frame via the layout
/// (the same measurement model the deep pipeline uses).
class SuperResolver {
 public:
  virtual ~SuperResolver() = default;

  SuperResolver(const SuperResolver&) = delete;
  SuperResolver& operator=(const SuperResolver&) = delete;

  /// Trains on raw fine-grained frames (parametric methods only).
  virtual void fit(const std::vector<Tensor>& fine_frames,
                   const data::ProbeLayout& layout) {
    (void)fine_frames;
    (void)layout;
  }

  /// Reconstructs the fine snapshot from the coarse aggregates of
  /// `fine_frame` under `layout`. Returns a (rows, cols) tensor in MB.
  [[nodiscard]] virtual Tensor super_resolve(
      const Tensor& fine_frame, const data::ProbeLayout& layout) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;

 protected:
  SuperResolver() = default;
};

/// Uniform interpolation: spreads each probe's average uniformly over its
/// coverage — the operator practice the paper cites as its weakest baseline
/// ("it is frequently assumed users and traffic are uniformly distributed").
class UniformInterpolator final : public SuperResolver {
 public:
  UniformInterpolator() = default;

  [[nodiscard]] Tensor super_resolve(
      const Tensor& fine_frame, const data::ProbeLayout& layout) const override;
  [[nodiscard]] std::string name() const override { return "Uniform"; }
};

/// Constructs a baseline by its Section-5.3 name — "uniform", "bicubic",
/// "sc", "aplus" or "srcnn" (case-sensitive), with each method's default
/// configuration. Parametric methods come unfitted; call fit() before use.
/// Throws ContractViolation for unknown names, listing the known ones.
/// This is the registry the serving engine's BaselineModel adapters build
/// on, so deep and shallow methods are interchangeable by name.
[[nodiscard]] std::unique_ptr<SuperResolver> make_super_resolver(
    const std::string& name);

}  // namespace mtsr::baselines
