#include "src/baselines/sparse_coding.hpp"

#include <algorithm>
#include <cmath>

#include "src/baselines/bicubic.hpp"
#include "src/baselines/linalg.hpp"
#include "src/common/check.hpp"
#include "src/common/parallel.hpp"
#include "src/tensor/tensor_ops.hpp"

namespace mtsr::baselines {

Tensor omp_encode(const Tensor& dictionary, const float* signal,
                  std::int64_t signal_dim, int sparsity) {
  check(dictionary.rank() == 2 && dictionary.dim(1) == signal_dim,
        "omp_encode: dictionary/signal dim mismatch");
  check(sparsity > 0, "omp_encode: sparsity must be positive");
  const std::int64_t k = dictionary.dim(0);
  sparsity = static_cast<int>(std::min<std::int64_t>(sparsity, k));

  Tensor code(Shape{k});
  std::vector<float> residual(signal, signal + signal_dim);
  std::vector<std::int64_t> selected;

  for (int step = 0; step < sparsity; ++step) {
    // Atom most correlated with the residual.
    std::int64_t best = -1;
    double best_abs = 1e-12;
    for (std::int64_t a = 0; a < k; ++a) {
      if (std::find(selected.begin(), selected.end(), a) != selected.end()) {
        continue;
      }
      double dot = 0.0;
      const float* atom = dictionary.data() + a * signal_dim;
      for (std::int64_t i = 0; i < signal_dim; ++i) dot += atom[i] * residual[static_cast<std::size_t>(i)];
      if (std::abs(dot) > best_abs) {
        best_abs = std::abs(dot);
        best = a;
      }
    }
    if (best < 0) break;  // residual orthogonal to all remaining atoms
    selected.push_back(best);

    // Least-squares refit on the selected set: solve (AᵀA) x = Aᵀ y.
    const auto s = static_cast<std::int64_t>(selected.size());
    Tensor gram(Shape{s, s});
    Tensor rhs(Shape{s, 1});
    for (std::int64_t i = 0; i < s; ++i) {
      const float* ai = dictionary.data() + selected[static_cast<std::size_t>(i)] * signal_dim;
      double ry = 0.0;
      for (std::int64_t t = 0; t < signal_dim; ++t) ry += ai[t] * signal[t];
      rhs.at(i, 0) = static_cast<float>(ry);
      for (std::int64_t j = 0; j <= i; ++j) {
        const float* aj =
            dictionary.data() + selected[static_cast<std::size_t>(j)] * signal_dim;
        double dot = 0.0;
        for (std::int64_t t = 0; t < signal_dim; ++t) dot += ai[t] * aj[t];
        gram.at(i, j) = static_cast<float>(dot);
        gram.at(j, i) = static_cast<float>(dot);
      }
      gram.at(i, i) += 1e-6f;
    }
    Tensor coef = cholesky_solve(gram, rhs);

    // Updated residual y - A x.
    residual.assign(signal, signal + signal_dim);
    for (std::int64_t i = 0; i < s; ++i) {
      const float* ai =
          dictionary.data() + selected[static_cast<std::size_t>(i)] * signal_dim;
      const float c = coef.at(i, 0);
      for (std::int64_t t = 0; t < signal_dim; ++t) {
        residual[static_cast<std::size_t>(t)] -= c * ai[t];
      }
    }
    // Write current coefficients into the dense code.
    code.fill(0.f);
    for (std::int64_t i = 0; i < s; ++i) {
      code.flat(selected[static_cast<std::size_t>(i)]) = coef.at(i, 0);
    }
  }
  return code;
}

SparseCodingSR::SparseCodingSR(SparseCodingConfig config)
    : config_(config) {
  check(config_.dictionary_size > 0 && config_.patch_size > 0 &&
            config_.sparsity > 0,
        "SparseCodingConfig: bad parameters");
}

void SparseCodingSR::fit(const std::vector<Tensor>& fine_frames,
                         const data::ProbeLayout& layout) {
  check(!fine_frames.empty(), "SparseCodingSR::fit: no training frames");
  Rng rng(config_.seed);

  // Mid images: bicubic reconstructions of each training frame.
  BicubicInterpolator bicubic;
  std::vector<Tensor> mids;
  mids.reserve(fine_frames.size());
  for (const Tensor& f : fine_frames) {
    mids.push_back(bicubic.super_resolve(f, layout));
  }

  PatchConfig pc{config_.patch_size, config_.train_stride};
  PatchDataset ds = collect_patches(mids, fine_frames, pc,
                                    config_.max_train_patches, rng);
  const std::int64_t n = ds.features.dim(0);
  check(n > config_.dictionary_size,
        "SparseCodingSR::fit: not enough patches for the dictionary");

  // Low-resolution dictionary: K-means centroids over features, then
  // row-normalised for OMP.
  KMeansResult km = kmeans(ds.features, config_.dictionary_size,
                           config_.kmeans_iterations, rng);
  dict_lo_ = std::move(km.centroids);
  normalize_rows(dict_lo_);

  // Sparse-code the training set over D_l. Patches are independent, so the
  // encode loop fans out over the shared pool (each i writes column i).
  const std::int64_t feat = ds.features.dim(1);
  Tensor codes(Shape{config_.dictionary_size, n});  // (k, n)
  parallel_for(n, [&](std::int64_t i) {
    Tensor code = omp_encode(dict_lo_, ds.features.data() + i * feat, feat,
                             config_.sparsity);
    for (std::int64_t a = 0; a < config_.dictionary_size; ++a) {
      codes.at(a, i) = code.flat(a);
    }
  });

  // Coupled high-resolution dictionary: ridge fit residuals ≈ D_h · codes.
  dict_hi_ = ridge_regression(codes, transpose(ds.residuals),
                              config_.ridge_lambda);  // (patch², k)
  fitted_ = true;
}

Tensor SparseCodingSR::super_resolve(const Tensor& fine_frame,
                                     const data::ProbeLayout& layout) const {
  check(fitted_, "SparseCodingSR::super_resolve called before fit");
  BicubicInterpolator bicubic;
  Tensor mid = bicubic.super_resolve(fine_frame, layout);

  const int size = config_.patch_size;
  const std::int64_t feat = feature_dim(size);
  const auto origins = patch_origins(mid.dim(0), mid.dim(1), size,
                                     config_.predict_stride);
  Tensor residuals(
      Shape{static_cast<std::int64_t>(origins.size()),
            static_cast<std::int64_t>(size) * size});
  // Patch predictions are independent: encode and decode on the pool, one
  // feature scratch buffer per chunk.
  parallel_for_chunks(
      static_cast<std::int64_t>(origins.size()),
      [&](std::int64_t begin, std::int64_t end, int) {
        std::vector<float> feature(static_cast<std::size_t>(feat));
        for (std::int64_t i = begin; i < end; ++i) {
          const auto& origin = origins[static_cast<std::size_t>(i)];
          extract_feature(mid, origin.first, origin.second, size,
                          feature.data());
          Tensor code =
              omp_encode(dict_lo_, feature.data(), feat, config_.sparsity);
          // residual_patch = D_h · code
          for (std::int64_t r = 0; r < residuals.dim(1); ++r) {
            double acc = 0.0;
            for (std::int64_t a = 0; a < config_.dictionary_size; ++a) {
              acc += static_cast<double>(dict_hi_.at(r, a)) * code.flat(a);
            }
            residuals.at(i, r) = static_cast<float>(acc);
          }
        }
      });
  return assemble_patches(mid, origins, residuals, size);
}

}  // namespace mtsr::baselines
