#include "src/baselines/srcnn.hpp"

#include <cmath>

#include "src/baselines/bicubic.hpp"
#include "src/common/check.hpp"
#include "src/common/parallel.hpp"
#include "src/common/workspace.hpp"
#include "src/nn/activations.hpp"
#include "src/nn/conv2d.hpp"
#include "src/nn/loss.hpp"
#include "src/nn/optimizer.hpp"
#include "src/nn/replica.hpp"
#include "src/tensor/tensor_ops.hpp"

namespace mtsr::baselines {

Srcnn::Srcnn(SrcnnConfig config) : config_(config) {
  check(config_.channels1 > 0 && config_.channels2 > 0,
        "SrcnnConfig: bad channel widths");
  check(config_.window >= 16, "SrcnnConfig: window must be >= 16");
}

Srcnn::~Srcnn() = default;

void Srcnn::fit(const std::vector<Tensor>& fine_frames,
                const data::ProbeLayout& layout) {
  check(!fine_frames.empty(), "Srcnn::fit: no training frames");
  Rng rng(config_.seed);

  // Normalisation statistics over the training frames (deterministic
  // slot-order reduction on the pool).
  const auto frame_count = static_cast<std::int64_t>(fine_frames.size());
  std::int64_t count = 0;
  for (const Tensor& f : fine_frames) count += f.size();
  using Stats = std::pair<double, double>;  // (sum, sum of squares)
  const auto [sum, sq] = parallel_reduce(
      frame_count, Stats{0.0, 0.0},
      [&](std::int64_t begin, std::int64_t end) {
        Stats acc{0.0, 0.0};
        for (std::int64_t fi = begin; fi < end; ++fi) {
          const Tensor& f = fine_frames[static_cast<std::size_t>(fi)];
          const float* pf = f.data();
          for (std::int64_t i = 0; i < f.size(); ++i) {
            acc.first += pf[i];
            acc.second += static_cast<double>(pf[i]) * pf[i];
          }
        }
        return acc;
      },
      [](Stats a, Stats b) {
        return Stats{a.first + b.first, a.second + b.second};
      });
  mean_ = sum / static_cast<double>(count);
  stddev_ = std::sqrt(
      std::max(sq / static_cast<double>(count) - mean_ * mean_, 1e-12));

  // Bicubic mids, normalised, plus normalised targets; frames are
  // independent, so the preprocessing fans out over the pool.
  BicubicInterpolator bicubic;
  std::vector<Tensor> mids(fine_frames.size());
  std::vector<Tensor> targets(fine_frames.size());
  parallel_for(frame_count, [&](std::int64_t fi) {
    const Tensor& f = fine_frames[static_cast<std::size_t>(fi)];
    Tensor mid = bicubic.super_resolve(f, layout);
    mid.add_scalar_(static_cast<float>(-mean_));
    mid.mul_scalar_(static_cast<float>(1.0 / stddev_));
    mids[static_cast<std::size_t>(fi)] = std::move(mid);
    Tensor t = f;
    t.add_scalar_(static_cast<float>(-mean_));
    t.mul_scalar_(static_cast<float>(1.0 / stddev_));
    targets[static_cast<std::size_t>(fi)] = std::move(t);
  });

  // 9-1-5 architecture (Dong et al.), zero-padded to preserve extent.
  network_ = std::make_unique<nn::Sequential>();
  network_->emplace<nn::Conv2d>(1, config_.channels1, 9, 1, 4, rng);
  network_->emplace<nn::ReLU>();
  network_->emplace<nn::Conv2d>(config_.channels1, config_.channels2, 1, 1, 0,
                                rng);
  network_->emplace<nn::ReLU>();
  network_->emplace<nn::Conv2d>(config_.channels2, 1, 5, 1, 2, rng);

  nn::Adam optimizer(network_->parameters(), config_.learning_rate);
  const int replicas = nn::resolve_train_replicas(config_.replicas);
  const std::int64_t w = config_.window;
  const std::int64_t rows = fine_frames.front().dim(0);
  const std::int64_t cols = fine_frames.front().dim(1);
  check(w <= rows && w <= cols, "Srcnn::fit: window larger than frames");

  loss_history_.clear();
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    double epoch_loss = 0.0;
    int batches = 0;
    for (int step = 0; step < config_.crops_per_epoch;
         step += config_.batch_size) {
      const int bs = std::min<int>(config_.batch_size,
                                   config_.crops_per_epoch - step);
      std::vector<Tensor> xs, ys;
      xs.reserve(static_cast<std::size_t>(bs));
      ys.reserve(static_cast<std::size_t>(bs));
      for (int b = 0; b < bs; ++b) {
        const auto f = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(mids.size()) - 1));
        const std::int64_t r0 = rng.uniform_int(0, rows - w);
        const std::int64_t c0 = rng.uniform_int(0, cols - w);
        xs.push_back(crop2d(mids[f], r0, c0, w, w).reshape(Shape{1, w, w}));
        ys.push_back(crop2d(targets[f], r0, c0, w, w).reshape(Shape{1, w, w}));
      }
      double loss = 0.0;
      if (replicas == 0) {
        Tensor x = stack0(xs);  // (bs, 1, w, w)
        Tensor y = stack0(ys);
        // Step-scoped workspace: the conv layers' lowering slices are
        // rewound by backward; the scope reclaims any remainder so the
        // arena stops growing after the first step.
        Workspace::Scope ws_step(Workspace::tls());
        Tensor pred = network_->forward(x, /*training=*/true);
        auto [step_loss, grad] = nn::mse_loss(pred, y);
        optimizer.zero_grad();
        network_->backward(grad);
        optimizer.step();
        loss = step_loss;
      } else {
        // Replica-sharded step: micro-slices of the crop batch run
        // concurrently under slice-private gradient slots, reduced in
        // ascending slice order — bit-identical for any replica count.
        const int slices = nn::train_slice_count(bs);
        std::vector<Tensor> x_slices, y_slices;
        x_slices.reserve(static_cast<std::size_t>(slices));
        y_slices.reserve(static_cast<std::size_t>(slices));
        std::int64_t total_elements = 0;
        for (int s = 0; s < slices; ++s) {
          const nn::SliceRange range = nn::train_slice_range(bs, slices, s);
          std::vector<Tensor> xs_s(xs.begin() + range.begin,
                                   xs.begin() + range.end);
          std::vector<Tensor> ys_s(ys.begin() + range.begin,
                                   ys.begin() + range.end);
          x_slices.push_back(stack0(xs_s));
          y_slices.push_back(stack0(ys_s));
          total_elements += y_slices.back().size();
        }
        optimizer.zero_grad();
        network_->prepare_replica_slots(slices);
        std::vector<double> partial(static_cast<std::size_t>(slices), 0.0);
        nn::run_replicated(slices, replicas, [&](int s) {
          const auto si = static_cast<std::size_t>(s);
          Tensor pred = network_->forward(x_slices[si], /*training=*/true);
          nn::SliceLossResult slice =
              nn::mse_loss_slice(pred, y_slices[si], total_elements);
          network_->backward(slice.grad);
          partial[si] = slice.sum;
        });
        network_->reduce_replica_slots(slices);
        optimizer.step();
        double sum = 0.0;
        for (double p : partial) sum += p;
        loss = sum / static_cast<double>(total_elements);
      }
      epoch_loss += loss;
      ++batches;
    }
    loss_history_.push_back(epoch_loss / std::max(batches, 1));
  }
}

Tensor Srcnn::super_resolve(const Tensor& fine_frame,
                            const data::ProbeLayout& layout) const {
  check(network_ != nullptr, "Srcnn::super_resolve called before fit");
  BicubicInterpolator bicubic;
  Tensor mid = bicubic.super_resolve(fine_frame, layout);
  const std::int64_t rows = mid.dim(0), cols = mid.dim(1);
  mid.add_scalar_(static_cast<float>(-mean_));
  mid.mul_scalar_(static_cast<float>(1.0 / stddev_));
  Tensor x = mid.reshape(Shape{1, 1, rows, cols});
  // Inference-only pass: scope away the retained lowering slices.
  Workspace::Scope ws_scope(Workspace::tls());
  Tensor pred = network_->forward(x, /*training=*/false);
  Tensor out = pred.reshape(Shape{rows, cols});
  out.mul_scalar_(static_cast<float>(stddev_));
  out.add_scalar_(static_cast<float>(mean_));
  return out;
}

}  // namespace mtsr::baselines
