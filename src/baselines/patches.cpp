#include "src/baselines/patches.hpp"

#include <algorithm>

#include "src/common/check.hpp"
#include "src/common/rng.hpp"

namespace mtsr::baselines {

std::int64_t feature_dim(int patch_size) {
  return 3LL * patch_size * patch_size;
}

void extract_feature(const Tensor& mid, std::int64_t r0, std::int64_t c0,
                     int size, float* out) {
  const std::int64_t rows = mid.dim(0), cols = mid.dim(1);
  const std::int64_t n = static_cast<std::int64_t>(size) * size;

  // Mean-removed intensities.
  double mean = 0.0;
  for (int r = 0; r < size; ++r) {
    for (int c = 0; c < size; ++c) {
      mean += mid.at(r0 + r, c0 + c);
    }
  }
  mean /= static_cast<double>(n);
  std::int64_t k = 0;
  for (int r = 0; r < size; ++r) {
    for (int c = 0; c < size; ++c) {
      out[k++] = mid.at(r0 + r, c0 + c) - static_cast<float>(mean);
    }
  }
  // First-order gradients (central differences, clamped at borders).
  auto sample = [&](std::int64_t r, std::int64_t c) {
    r = std::clamp<std::int64_t>(r, 0, rows - 1);
    c = std::clamp<std::int64_t>(c, 0, cols - 1);
    return mid.at(r, c);
  };
  for (int r = 0; r < size; ++r) {
    for (int c = 0; c < size; ++c) {
      out[k++] = 0.5f * (sample(r0 + r, c0 + c + 1) -
                         sample(r0 + r, c0 + c - 1));
    }
  }
  for (int r = 0; r < size; ++r) {
    for (int c = 0; c < size; ++c) {
      out[k++] = 0.5f * (sample(r0 + r + 1, c0 + c) -
                         sample(r0 + r - 1, c0 + c));
    }
  }
}

std::vector<std::pair<std::int64_t, std::int64_t>> patch_origins(
    std::int64_t rows, std::int64_t cols, int size, int stride) {
  check(size > 0 && stride > 0 && size <= rows && size <= cols,
        "patch_origins: bad geometry");
  std::vector<std::int64_t> row_list, col_list;
  for (std::int64_t r = 0; r + size <= rows; r += stride) row_list.push_back(r);
  if (row_list.empty() || row_list.back() + size < rows) {
    row_list.push_back(rows - size);
  }
  for (std::int64_t c = 0; c + size <= cols; c += stride) col_list.push_back(c);
  if (col_list.empty() || col_list.back() + size < cols) {
    col_list.push_back(cols - size);
  }
  std::vector<std::pair<std::int64_t, std::int64_t>> origins;
  origins.reserve(row_list.size() * col_list.size());
  for (std::int64_t r : row_list) {
    for (std::int64_t c : col_list) origins.emplace_back(r, c);
  }
  return origins;
}

PatchDataset collect_patches(const std::vector<Tensor>& mids,
                             const std::vector<Tensor>& truths,
                             const PatchConfig& config,
                             std::int64_t max_patches, Rng& rng) {
  check(mids.size() == truths.size() && !mids.empty(),
        "collect_patches: frame list mismatch");
  check(max_patches > 0, "collect_patches: max_patches must be positive");

  // Enumerate all (frame, origin) candidates, then subsample.
  struct Candidate {
    std::size_t frame;
    std::int64_t r0, c0;
  };
  std::vector<Candidate> candidates;
  for (std::size_t f = 0; f < mids.size(); ++f) {
    check(mids[f].shape() == truths[f].shape(),
          "collect_patches: mid/truth shape mismatch");
    for (auto [r0, c0] : patch_origins(mids[f].dim(0), mids[f].dim(1),
                                       config.size, config.stride)) {
      candidates.push_back({f, r0, c0});
    }
  }
  std::vector<std::size_t> order(candidates.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.shuffle(order);
  const std::int64_t n = std::min<std::int64_t>(
      max_patches, static_cast<std::int64_t>(candidates.size()));

  const std::int64_t feat = feature_dim(config.size);
  const std::int64_t out_dim =
      static_cast<std::int64_t>(config.size) * config.size;
  PatchDataset ds{Tensor(Shape{n, feat}), Tensor(Shape{n, out_dim})};
  for (std::int64_t i = 0; i < n; ++i) {
    const Candidate& cand = candidates[order[static_cast<std::size_t>(i)]];
    extract_feature(mids[cand.frame], cand.r0, cand.c0, config.size,
                    ds.features.data() + i * feat);
    std::int64_t k = 0;
    for (int r = 0; r < config.size; ++r) {
      for (int c = 0; c < config.size; ++c) {
        ds.residuals.data()[i * out_dim + k++] =
            truths[cand.frame].at(cand.r0 + r, cand.c0 + c) -
            mids[cand.frame].at(cand.r0 + r, cand.c0 + c);
      }
    }
  }
  return ds;
}

Tensor assemble_patches(
    const Tensor& mid,
    const std::vector<std::pair<std::int64_t, std::int64_t>>& origins,
    const Tensor& residuals, int size) {
  check(residuals.rank() == 2 &&
            residuals.dim(0) == static_cast<std::int64_t>(origins.size()) &&
            residuals.dim(1) == static_cast<std::int64_t>(size) * size,
        "assemble_patches: residual matrix shape mismatch");
  Tensor acc(mid.shape());
  Tensor weight(mid.shape());
  for (std::size_t i = 0; i < origins.size(); ++i) {
    const auto [r0, c0] = origins[i];
    std::int64_t k = 0;
    for (int r = 0; r < size; ++r) {
      for (int c = 0; c < size; ++c) {
        acc.at(r0 + r, c0 + c) +=
            residuals.data()[static_cast<std::int64_t>(i) * size * size + k++];
        weight.at(r0 + r, c0 + c) += 1.f;
      }
    }
  }
  Tensor out = mid;
  for (std::int64_t i = 0; i < out.size(); ++i) {
    if (weight.flat(i) > 0.f) out.flat(i) += acc.flat(i) / weight.flat(i);
  }
  return out;
}

}  // namespace mtsr::baselines
