#include "src/baselines/aplus.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/baselines/bicubic.hpp"
#include "src/baselines/linalg.hpp"
#include "src/common/check.hpp"
#include "src/common/parallel.hpp"
#include "src/tensor/tensor_ops.hpp"

namespace mtsr::baselines {

APlusSR::APlusSR(APlusConfig config) : config_(config) {
  check(config_.anchors > 0 && config_.patch_size > 0 &&
            config_.neighbourhood > 0,
        "APlusConfig: bad parameters");
}

std::int64_t APlusSR::nearest_anchor(const float* feature,
                                     std::int64_t dim) const {
  double best = -2.0;
  std::int64_t best_a = 0;
  // Features and anchors are compared by correlation on the unit sphere;
  // normalise the query on the fly.
  double norm = 0.0;
  for (std::int64_t i = 0; i < dim; ++i) {
    norm += static_cast<double>(feature[i]) * feature[i];
  }
  norm = std::sqrt(std::max(norm, 1e-12));
  for (std::int64_t a = 0; a < anchors_.dim(0); ++a) {
    const float* anchor = anchors_.data() + a * dim;
    double dot = 0.0;
    for (std::int64_t i = 0; i < dim; ++i) dot += anchor[i] * feature[i];
    dot /= norm;
    if (dot > best) {
      best = dot;
      best_a = a;
    }
  }
  return best_a;
}

void APlusSR::fit(const std::vector<Tensor>& fine_frames,
                  const data::ProbeLayout& layout) {
  check(!fine_frames.empty(), "APlusSR::fit: no training frames");
  Rng rng(config_.seed);

  BicubicInterpolator bicubic;
  std::vector<Tensor> mids;
  mids.reserve(fine_frames.size());
  for (const Tensor& f : fine_frames) {
    mids.push_back(bicubic.super_resolve(f, layout));
  }

  PatchConfig pc{config_.patch_size, config_.train_stride};
  PatchDataset ds = collect_patches(mids, fine_frames, pc,
                                    config_.max_train_patches, rng);
  const std::int64_t n = ds.features.dim(0);
  const std::int64_t feat = ds.features.dim(1);
  const std::int64_t out_dim = ds.residuals.dim(1);
  check(n > config_.anchors, "APlusSR::fit: not enough patches");

  // Anchors: K-means centroids over the features, normalised.
  KMeansResult km = kmeans(ds.features, config_.anchors,
                           config_.kmeans_iterations, rng);
  anchors_ = std::move(km.centroids);
  normalize_rows(anchors_);

  // Normalised copy of the features for correlation ranking.
  Tensor unit_features = ds.features;
  normalize_rows(unit_features);

  const int nn = static_cast<int>(
      std::min<std::int64_t>(config_.neighbourhood, n));
  // Anchors are independent: each chunk ranks neighbours and solves its
  // ridge systems with chunk-local scratch, writing projections_[a].
  projections_.assign(static_cast<std::size_t>(config_.anchors), Tensor());
  parallel_for_chunks(
      config_.anchors, [&](std::int64_t begin, std::int64_t end, int) {
        std::vector<std::int64_t> index(static_cast<std::size_t>(n));
        std::vector<double> corr(static_cast<std::size_t>(n));
        for (std::int64_t a = begin; a < end; ++a) {
          const float* anchor = anchors_.data() + a * feat;
          for (std::int64_t i = 0; i < n; ++i) {
            const float* f = unit_features.data() + i * feat;
            double dot = 0.0;
            for (std::int64_t j = 0; j < feat; ++j) dot += anchor[j] * f[j];
            corr[static_cast<std::size_t>(i)] = dot;
          }
          std::iota(index.begin(), index.end(), 0);
          std::partial_sort(index.begin(), index.begin() + nn, index.end(),
                            [&](std::int64_t x, std::int64_t y) {
                              return corr[static_cast<std::size_t>(x)] >
                                     corr[static_cast<std::size_t>(y)];
                            });
          // Anchored neighbourhood matrices: X (feat, nn), Y (out, nn) over
          // raw (unnormalised) samples.
          Tensor x(Shape{feat, static_cast<std::int64_t>(nn)});
          Tensor y(Shape{out_dim, static_cast<std::int64_t>(nn)});
          for (int i = 0; i < nn; ++i) {
            const std::int64_t s = index[static_cast<std::size_t>(i)];
            for (std::int64_t j = 0; j < feat; ++j) {
              x.at(j, i) = ds.features.at(s, j);
            }
            for (std::int64_t j = 0; j < out_dim; ++j) {
              y.at(j, i) = ds.residuals.at(s, j);
            }
          }
          projections_[static_cast<std::size_t>(a)] =
              ridge_regression(x, y, config_.ridge_lambda);
        }
      });
  fitted_ = true;
}

Tensor APlusSR::super_resolve(const Tensor& fine_frame,
                              const data::ProbeLayout& layout) const {
  check(fitted_, "APlusSR::super_resolve called before fit");
  BicubicInterpolator bicubic;
  Tensor mid = bicubic.super_resolve(fine_frame, layout);

  const int size = config_.patch_size;
  const std::int64_t feat = feature_dim(size);
  const std::int64_t out_dim = static_cast<std::int64_t>(size) * size;
  const auto origins = patch_origins(mid.dim(0), mid.dim(1), size,
                                     config_.predict_stride);
  Tensor residuals(Shape{static_cast<std::int64_t>(origins.size()), out_dim});
  // Patch regressions are independent: fan out with per-chunk scratch.
  parallel_for_chunks(
      static_cast<std::int64_t>(origins.size()),
      [&](std::int64_t begin, std::int64_t end, int) {
        std::vector<float> feature(static_cast<std::size_t>(feat));
        for (std::int64_t i = begin; i < end; ++i) {
          const auto& origin = origins[static_cast<std::size_t>(i)];
          extract_feature(mid, origin.first, origin.second, size,
                          feature.data());
          const std::int64_t a = nearest_anchor(feature.data(), feat);
          const Tensor& p = projections_[static_cast<std::size_t>(a)];
          for (std::int64_t r = 0; r < out_dim; ++r) {
            double acc = 0.0;
            const float* row = p.data() + r * feat;
            for (std::int64_t j = 0; j < feat; ++j) {
              acc += row[j] * feature[static_cast<std::size_t>(j)];
            }
            residuals.at(i, r) = static_cast<float>(acc);
          }
        }
      });
  return assemble_patches(mid, origins, residuals, size);
}

}  // namespace mtsr::baselines
