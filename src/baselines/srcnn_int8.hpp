// SrcnnInt8: the int8 inference mirror of a fitted SRCNN baseline.
//
// Same one-shot conversion story as ZipNetInt8 (src/core/zipnet_int8.hpp):
// the constructor walks the trained 9-1-5 stack and mirrors each conv as a
// QuantConv2d — the two ReLUs fuse into the GEMM epilogue as LeakyReLU with
// slope 0 (max(y, 0·y) is exactly max(y, 0)), the output conv stays linear.
// SRCNN has no BatchNorm, so there is nothing to fold; the bicubic
// upscaling and the mean/stddev normalisation around the network run in
// float exactly as in Srcnn::super_resolve.
//
// Calibration workflow:
//   auto int8 = SrcnnInt8::convert(srcnn, fine_frames, layout);
// runs the float (calibrating) resolve over each raw fine frame, recording
// every layer's activation range, then freezes. The frozen resolver is the
// "srcnn-int8" serving model (serving::quantize_srcnn).
#pragma once

#include <memory>
#include <vector>

#include "src/baselines/srcnn.hpp"
#include "src/baselines/super_resolver.hpp"
#include "src/nn/quantized.hpp"

namespace mtsr::baselines {

/// int8 inference twin of a fitted Srcnn. Single-snapshot like every
/// SuperResolver: raw (rows, cols) MB frames in and out.
class SrcnnInt8 final : public SuperResolver {
 public:
  /// Mirrors `srcnn`'s trained network (throws when unfitted). The float
  /// resolver is only read during construction and may be freed after.
  explicit SrcnnInt8(const Srcnn& srcnn);

  /// Inference-only: conversion inherits the float fit. Throws.
  void fit(const std::vector<Tensor>& fine_frames,
           const data::ProbeLayout& layout) override;

  /// Float (calibrating) resolve recording activation ranges. Output
  /// matches Srcnn::super_resolve to float-associativity error.
  [[nodiscard]] Tensor super_resolve_calibrate(const Tensor& fine_frame,
                                               const data::ProbeLayout& layout);

  /// Quantises + packs every layer. Requires at least one
  /// super_resolve_calibrate() pass; super_resolve() is int8 from here on.
  void freeze();

  /// int8 resolve (requires freeze()).
  [[nodiscard]] Tensor super_resolve(
      const Tensor& fine_frame, const data::ProbeLayout& layout) const override;

  [[nodiscard]] std::string name() const override { return "srcnn-int8"; }
  [[nodiscard]] bool frozen() const { return frozen_; }

  /// One-shot conversion: mirror, calibrate over every raw fine frame,
  /// freeze. Throws when `calibration` is empty — the activation scales
  /// would be unconstrained.
  [[nodiscard]] static std::unique_ptr<SrcnnInt8> convert(
      const Srcnn& srcnn, const std::vector<Tensor>& calibration,
      const data::ProbeLayout& layout);

 private:
  [[nodiscard]] Tensor run(const Tensor& fine_frame,
                           const data::ProbeLayout& layout,
                           bool quantised) const;

  double mean_ = 0.0;
  double stddev_ = 1.0;
  // forward_calibrate mutates the range observers; mutable mirrors the
  // float Srcnn's treatment of its network under the const interface.
  mutable std::vector<std::unique_ptr<nn::QuantConv2d>> layers_;
  bool frozen_ = false;
};

}  // namespace mtsr::baselines
