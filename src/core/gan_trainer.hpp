// GanTrainer: Algorithm 1 of the paper.
//
// Training has two phases:
//  1. Pre-training — the generator alone is fit by MSE (Eq. 10) so the
//     discriminator cannot trivially reject early generator output.
//  2. Adversarial training — D and G are updated alternately (n_D then n_G
//     sub-epochs per round) with Adam at learning rate λ = 1e-4.
//
// Losses:
//  * Discriminator: Eq. 5, the standard adversarial objective (maximise
//    log D(real) + log(1 − D(G(input))); implemented as BCE minimisation).
//  * Generator: the paper's *empirical* loss Eq. 9,
//        L(Θ_G) = mean_t (1 − 2·log D(G(F))) · ‖D^H − G(F)‖²,
//    which replaces the fixed σ² trade-off of Eq. 8. Eq. 8 is also
//    implemented (LossMode::kFixedSigma) for the stability ablation bench.
//
// Execution: the trainer runs data-parallel by default on sharded pools.
// Each step splits the batch into micro-slices (geometry pure in the batch
// size — see nn/replica.hpp), runs slice forwards/backwards concurrently on
// replica workers under slice-private gradient slots, and reduces in fixed
// ascending-slice order, so trained parameters are bit-identical for every
// replica count and pool size. Batch sampling + augmentation are staged on
// a dedicated input-pipeline thread, overlapping the next batch's assembly
// with the current step's compute. Sampling draws from counter-derived RNG
// streams (one per sample), never from a shared engine, so the sample
// sequence is independent of staging and replica scheduling.
#pragma once

#include <functional>
#include <vector>

#include "src/common/parallel.hpp"
#include "src/common/rng.hpp"
#include "src/core/discriminator.hpp"
#include "src/core/zipnet.hpp"
#include "src/data/augmentation.hpp"
#include "src/nn/optimizer.hpp"
#include "src/nn/replica.hpp"

namespace mtsr::core {

/// Generator loss used during adversarial training.
enum class LossMode {
  kEmpirical,   ///< Eq. 9 (the paper's contribution)
  kFixedSigma,  ///< Eq. 8 with a manually set σ² weight
};

/// Draws one random training sample; implementations wrap the dataset +
/// augmentation machinery (see make_sample_source in pipeline.hpp).
using SampleSource = std::function<data::Sample(Rng&)>;

/// Trainer configuration (names follow Algorithm 1).
struct GanTrainerConfig {
  int batch_size = 8;          ///< m
  float learning_rate = 1e-4f; ///< pre-training λ
  /// λ for the adversarial phase. The paper uses 1e-4 throughout; at CPU
  /// scale pre-training runs hotter, and the adversarial refinement keeps
  /// the paper's gentle rate so Eq. 9's adversarial term polishes fidelity
  /// without undoing the MSE fit.
  float adversarial_learning_rate = 1e-4f;
  int n_d = 1;                 ///< discriminator sub-epochs per round
  int n_g = 1;                 ///< generator sub-epochs per round
  LossMode loss_mode = LossMode::kEmpirical;
  float sigma2 = 0.1f;         ///< σ² for LossMode::kFixedSigma
  float prob_clamp = 1e-4f;    ///< clamp D outputs to [c, 1-c] in logs
  /// WGAN-style critic stability controls (cf. the critic_iter /
  /// weight_clipping idiom of Wasserstein training loops). Online
  /// fine-tuning stresses GAN stability far harder than one-shot offline
  /// training, so both knobs exist as an ablation flag for the continuous
  /// learner; at their defaults the training path is bit-identical to the
  /// legacy trainer. `critic_iters` multiplies the discriminator sub-epochs
  /// per round (the critic trains critic_iters × n_D steps before each
  /// generator update); `weight_clip > 0` clamps every discriminator
  /// parameter to [-weight_clip, +weight_clip] after each critic step,
  /// the Lipschitz surrogate of weight-clipped WGAN. The critic keeps its
  /// probabilistic head (this is NOT the full Wasserstein objective —
  /// only its stability schedule).
  int critic_iters = 1;
  float weight_clip = 0.f;
  std::uint64_t seed = 23;
  /// Data-parallel replica workers per train step: -1 forces the legacy
  /// whole-batch serial step, 0 resolves automatically (MTSR_TRAIN_REPLICAS,
  /// else one replica per pool shard, minimum 1 — auto never picks legacy,
  /// keeping results independent of pool geometry), >= 1 forces that many
  /// workers. See nn::resolve_train_replicas.
  int replicas = 0;
};

/// Per-round training telemetry.
struct GanRoundStats {
  double d_loss = 0.0;
  double g_loss = 0.0;
  double g_mse = 0.0;       ///< data term of the generator loss
  double d_real_prob = 0.0; ///< mean D(real)
  double d_fake_prob = 0.0; ///< mean D(G(input))
};

/// Runs Algorithm 1 over externally supplied G and D.
class GanTrainer {
 public:
  GanTrainer(ZipNet& generator, Discriminator& discriminator,
             GanTrainerConfig config);

  /// Phase 1: MSE pre-training of the generator (Eq. 10). Returns the
  /// per-step batch losses.
  std::vector<double> pretrain(const SampleSource& source, int steps);

  /// Phase 2: adversarial rounds (each = n_D discriminator sub-epochs then
  /// n_G generator sub-epochs). Switches both optimizers to
  /// `adversarial_learning_rate`. Returns per-round telemetry.
  std::vector<GanRoundStats> train(const SampleSource& source, int rounds);

  /// Adjusts the generator optimizer's learning rate (decay schedules).
  void set_generator_learning_rate(float lr);

  [[nodiscard]] const GanTrainerConfig& config() const { return config_; }

  /// Resolved replica worker count: 0 = legacy whole-batch serial step.
  [[nodiscard]] int replica_workers() const { return replicas_; }

  /// Per-worker thread-local arena telemetry from the most recent
  /// replicated step (empty in legacy mode). Steady-state training must
  /// show zero growth_events across steps once warmed up.
  [[nodiscard]] const std::vector<nn::ReplicaArenaStats>&
  replica_arena_stats() const {
    return last_arena_stats_;
  }

 private:
  /// A sampled batch, pre-split into the step's micro-slices (a single
  /// slice in legacy mode).
  struct Batch {
    std::vector<Tensor> inputs;   ///< per slice: (m_s, S, ci, ci)
    std::vector<Tensor> targets;  ///< per slice: (m_s, h, w)
    std::int64_t rows = 0;        ///< m, summed over slices
    std::int64_t target_elements = 0;  ///< m*h*w, summed over slices
  };

  [[nodiscard]] int slice_count() const;
  /// WGAN weight clipping: clamps every discriminator parameter to
  /// [-weight_clip, +weight_clip] (no-op at the default 0).
  void clip_critic_weights();
  [[nodiscard]] Batch build_batch(const SampleSource& source,
                                  std::uint64_t base_counter);
  void stage_batch(const SampleSource& source);
  [[nodiscard]] Batch take_staged();

  // Legacy whole-batch serial steps (config replicas == -1 only):
  // bit-identical to the original single-threaded trainer.
  double pretrain_step_legacy(const Tensor& inputs, const Tensor& targets);
  double train_discriminator_step_legacy(const Tensor& inputs,
                                         const Tensor& targets,
                                         GanRoundStats& stats);
  double train_generator_step_legacy(const Tensor& inputs,
                                     const Tensor& targets,
                                     GanRoundStats& stats);

  // Replica-sharded steps: slice fan-out + fixed-order reduction.
  double pretrain_step_replicated(const Batch& batch);
  double train_discriminator_step_replicated(const Batch& batch,
                                             GanRoundStats& stats);
  double train_generator_step_replicated(const Batch& batch,
                                         GanRoundStats& stats);

  ZipNet& generator_;
  Discriminator& discriminator_;
  GanTrainerConfig config_;
  /// Stream base only — no draws; sample k uses rng_.stream(k).
  Rng rng_;
  std::uint64_t sample_counter_ = 0;
  int replicas_;
  nn::Adam opt_g_;
  nn::Adam opt_d_;

  // Input pipeline: one staged batch in flight on a dedicated thread.
  StageExecutor stager_;
  Batch staged_;
  std::future<void> staged_future_;
  std::vector<nn::ReplicaArenaStats> last_arena_stats_;
};

}  // namespace mtsr::core
