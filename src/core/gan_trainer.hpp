// GanTrainer: Algorithm 1 of the paper.
//
// Training has two phases:
//  1. Pre-training — the generator alone is fit by MSE (Eq. 10) so the
//     discriminator cannot trivially reject early generator output.
//  2. Adversarial training — D and G are updated alternately (n_D then n_G
//     sub-epochs per round) with Adam at learning rate λ = 1e-4.
//
// Losses:
//  * Discriminator: Eq. 5, the standard adversarial objective (maximise
//    log D(real) + log(1 − D(G(input))); implemented as BCE minimisation).
//  * Generator: the paper's *empirical* loss Eq. 9,
//        L(Θ_G) = mean_t (1 − 2·log D(G(F))) · ‖D^H − G(F)‖²,
//    which replaces the fixed σ² trade-off of Eq. 8. Eq. 8 is also
//    implemented (LossMode::kFixedSigma) for the stability ablation bench.
#pragma once

#include <functional>
#include <vector>

#include "src/common/rng.hpp"
#include "src/core/discriminator.hpp"
#include "src/core/zipnet.hpp"
#include "src/data/augmentation.hpp"
#include "src/nn/optimizer.hpp"

namespace mtsr::core {

/// Generator loss used during adversarial training.
enum class LossMode {
  kEmpirical,   ///< Eq. 9 (the paper's contribution)
  kFixedSigma,  ///< Eq. 8 with a manually set σ² weight
};

/// Draws one random training sample; implementations wrap the dataset +
/// augmentation machinery (see make_sample_source in pipeline.hpp).
using SampleSource = std::function<data::Sample(Rng&)>;

/// Trainer configuration (names follow Algorithm 1).
struct GanTrainerConfig {
  int batch_size = 8;          ///< m
  float learning_rate = 1e-4f; ///< pre-training λ
  /// λ for the adversarial phase. The paper uses 1e-4 throughout; at CPU
  /// scale pre-training runs hotter, and the adversarial refinement keeps
  /// the paper's gentle rate so Eq. 9's adversarial term polishes fidelity
  /// without undoing the MSE fit.
  float adversarial_learning_rate = 1e-4f;
  int n_d = 1;                 ///< discriminator sub-epochs per round
  int n_g = 1;                 ///< generator sub-epochs per round
  LossMode loss_mode = LossMode::kEmpirical;
  float sigma2 = 0.1f;         ///< σ² for LossMode::kFixedSigma
  float prob_clamp = 1e-4f;    ///< clamp D outputs to [c, 1-c] in logs
  std::uint64_t seed = 23;
};

/// Per-round training telemetry.
struct GanRoundStats {
  double d_loss = 0.0;
  double g_loss = 0.0;
  double g_mse = 0.0;       ///< data term of the generator loss
  double d_real_prob = 0.0; ///< mean D(real)
  double d_fake_prob = 0.0; ///< mean D(G(input))
};

/// Runs Algorithm 1 over externally supplied G and D.
class GanTrainer {
 public:
  GanTrainer(ZipNet& generator, Discriminator& discriminator,
             GanTrainerConfig config);

  /// Phase 1: MSE pre-training of the generator (Eq. 10). Returns the
  /// per-step batch losses.
  std::vector<double> pretrain(const SampleSource& source, int steps);

  /// Phase 2: adversarial rounds (each = n_D discriminator sub-epochs then
  /// n_G generator sub-epochs). Switches both optimizers to
  /// `adversarial_learning_rate`. Returns per-round telemetry.
  std::vector<GanRoundStats> train(const SampleSource& source, int rounds);

  /// Adjusts the generator optimizer's learning rate (decay schedules).
  void set_generator_learning_rate(float lr);

  [[nodiscard]] const GanTrainerConfig& config() const { return config_; }

 private:
  struct Batch {
    Tensor inputs;   ///< (m, S, ci, ci)
    Tensor targets;  ///< (m, h, w)
  };
  [[nodiscard]] Batch sample_batch(const SampleSource& source);

  double train_discriminator_step(const Batch& batch, GanRoundStats& stats);
  double train_generator_step(const Batch& batch, GanRoundStats& stats);

  ZipNet& generator_;
  Discriminator& discriminator_;
  GanTrainerConfig config_;
  Rng rng_;
  nn::Adam opt_g_;
  nn::Adam opt_d_;
};

}  // namespace mtsr::core
