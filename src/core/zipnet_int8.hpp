// ZipNetInt8: the int8 inference mirror of the ZipNet generator.
//
// Built by one-shot conversion from a trained (or checkpoint-restored)
// float ZipNet: the constructor walks the generator's blocks and mirrors
// each [conv → BatchNorm → LeakyReLU] stack as one quantised layer with the
// BatchNorm folded into the conv's scales (src/nn/quantized.hpp). The skip
// wiring of the zipper chain, the collapse between the 3-D and 2-D stages
// and the residual interpolation base are replicated exactly — those run in
// float either way; only the GEMMs (the dominant cost) run u8·s8.
//
// Calibration workflow:
//   auto int8 = ZipNetInt8::convert(generator, calibration_batches);
// runs a float forward over each calibration batch (a handful of warm-up
// coarse-window batches, (B, S, ci, ci) normalised), recording every
// layer's activation range, then freezes: weights quantise per output
// channel, pack once, and the float copies are released. The frozen network
// is the "zipnet-int8" serving model (src/serving/model.hpp).
#pragma once

#include <memory>
#include <vector>

#include "src/core/zipnet.hpp"
#include "src/nn/quantized.hpp"

namespace mtsr::core {

/// int8 inference twin of a ZipNet generator. Input (N, S, ci, ci) coarse
/// sequences; output (N, ci·Πf, ci·Πf) fine predictions (normalised
/// units) — the same contract as ZipNet::forward(·, training=false).
class ZipNetInt8 {
 public:
  /// Mirrors `generator`'s architecture with folded float weights. The
  /// generator is only read during construction and may be freed after.
  explicit ZipNetInt8(const ZipNet& generator);

  ZipNetInt8(const ZipNetInt8&) = delete;
  ZipNetInt8& operator=(const ZipNetInt8&) = delete;

  /// Float (folded-BN) forward recording activation ranges. Output matches
  /// the float generator's inference forward to fold-associativity error.
  [[nodiscard]] Tensor forward_calibrate(const Tensor& input);

  /// Quantises + packs every layer. Requires at least one
  /// forward_calibrate() pass; forward() is int8 from here on.
  void freeze();

  /// int8 forward (requires freeze()).
  [[nodiscard]] Tensor forward(const Tensor& input);

  [[nodiscard]] bool frozen() const { return frozen_; }
  [[nodiscard]] const ZipNetConfig& config() const { return config_; }
  [[nodiscard]] int total_upscale() const;
  [[nodiscard]] std::int64_t temporal_length() const {
    return config_.temporal_length;
  }

  /// One-shot conversion: mirror, calibrate over every batch ((B, S, ci,
  /// ci) normalised coarse sequences), freeze. Throws when `calibration`
  /// is empty — the activation scales would be unconstrained.
  [[nodiscard]] static std::unique_ptr<ZipNetInt8> convert(
      const ZipNet& generator, const std::vector<Tensor>& calibration);

 private:
  [[nodiscard]] Tensor run(const Tensor& input, bool quantised);

  ZipNetConfig config_;

  /// One 3-D upscaling stage: deconv + refinement convs (BN + LeakyReLU
  /// folded/fused into each).
  struct Stage3d {
    std::unique_ptr<nn::QuantConvTranspose3d> deconv;
    std::vector<std::unique_ptr<nn::QuantConv3d>> convs;
  };
  std::vector<Stage3d> upscale_;
  std::unique_ptr<nn::QuantConv2d> entry_;
  std::vector<std::unique_ptr<nn::QuantConv2d>> zipper_;
  std::vector<std::unique_ptr<nn::QuantConv2d>> final_;  ///< last is linear
  bool frozen_ = false;
};

}  // namespace mtsr::core
