#include "src/core/gan_trainer.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/check.hpp"
#include "src/common/parallel.hpp"
#include "src/common/workspace.hpp"
#include "src/nn/loss.hpp"
#include "src/tensor/tensor_ops.hpp"

namespace mtsr::core {

GanTrainer::GanTrainer(ZipNet& generator, Discriminator& discriminator,
                       GanTrainerConfig config)
    : generator_(generator),
      discriminator_(discriminator),
      config_(config),
      rng_(config.seed),
      opt_g_(generator.parameters(), config.learning_rate),
      opt_d_(discriminator.parameters(), config.learning_rate) {
  check(config_.batch_size > 0, "GanTrainerConfig: bad batch size");
  check(config_.n_d >= 1 && config_.n_g >= 1,
        "GanTrainerConfig: sub-epoch counts must be >= 1");
  check(config_.prob_clamp > 0.f && config_.prob_clamp < 0.5f,
        "GanTrainerConfig: bad prob clamp");
}

GanTrainer::Batch GanTrainer::sample_batch(const SampleSource& source) {
  std::vector<Tensor> inputs, targets;
  inputs.reserve(static_cast<std::size_t>(config_.batch_size));
  targets.reserve(static_cast<std::size_t>(config_.batch_size));
  for (int b = 0; b < config_.batch_size; ++b) {
    data::Sample sample = source(rng_);
    inputs.push_back(std::move(sample.input));
    targets.push_back(std::move(sample.target));
  }
  return {stack0(inputs), stack0(targets)};
}

std::vector<double> GanTrainer::pretrain(const SampleSource& source,
                                         int steps) {
  check(steps >= 0, "pretrain: negative step count");
  std::vector<double> losses;
  losses.reserve(static_cast<std::size_t>(steps));
  for (int step = 0; step < steps; ++step) {
    // Step-scoped workspace: backward rewinds what forward retained, and
    // the scope reclaims anything left, so the arena stops growing after
    // the first step.
    Workspace::Scope ws_step(Workspace::tls());
    Batch batch = sample_batch(source);
    Tensor pred = generator_.forward(batch.inputs, /*training=*/true);
    auto [loss, grad] = nn::mse_loss(pred, batch.targets);
    opt_g_.zero_grad();
    generator_.backward(grad);
    opt_g_.step();
    losses.push_back(loss);
  }
  return losses;
}

double GanTrainer::train_discriminator_step(const Batch& batch,
                                            GanRoundStats& stats) {
  // Step-scoped workspace: reclaims the generator's inference-pass slices
  // (no backward runs through it in the D sub-epoch).
  Workspace::Scope ws_step(Workspace::tls());
  // Real half: maximise log D(real) <=> minimise BCE(D(real), 1).
  opt_d_.zero_grad();
  Tensor p_real = discriminator_.forward(batch.targets, /*training=*/true);
  auto [loss_real, grad_real] = nn::bce_loss(p_real, 1.f);
  discriminator_.backward(grad_real);

  // Fake half: minimise BCE(D(G(F)), 0). The generator runs in inference
  // mode here — its parameters are fixed during the D sub-epoch.
  Tensor fake = generator_.forward(batch.inputs, /*training=*/false);
  Tensor p_fake = discriminator_.forward(fake, /*training=*/true);
  auto [loss_fake, grad_fake] = nn::bce_loss(p_fake, 0.f);
  discriminator_.backward(grad_fake);
  opt_d_.step();

  stats.d_real_prob = p_real.mean();
  stats.d_fake_prob = p_fake.mean();
  return loss_real + loss_fake;
}

double GanTrainer::train_generator_step(const Batch& batch,
                                        GanRoundStats& stats) {
  Workspace::Scope ws_step(Workspace::tls());
  const std::int64_t n = batch.inputs.dim(0);

  Tensor pred = generator_.forward(batch.inputs, /*training=*/true);
  Tensor probs = discriminator_.forward(pred, /*training=*/true);  // (N, 1)

  // Per-sample quantities of Eq. 9 / Eq. 8.
  Tensor sq_err = nn::per_sample_sq_error(pred, batch.targets);  // (N)
  const float clamp_lo = config_.prob_clamp;
  const float clamp_hi = 1.f - config_.prob_clamp;

  // Gradient of the loss w.r.t. D's output, fed backwards through D to
  // reach the generator's output (D's own parameter gradients are discarded
  // at its next zero_grad()).
  Tensor grad_probs(Shape{n, 1});
  // Per-sample multiplier for the MSE part of the gradient.
  std::vector<float> mse_scale(static_cast<std::size_t>(n));

  // Per-sample terms are independent: the chunk body fills the disjoint
  // grad/scale entries and returns the chunk's (loss, mse) partial, which
  // reduces deterministically in slot order.
  using Terms = std::pair<double, double>;  // (loss, mse)
  auto [loss, mse_term] = parallel_reduce(
      n, Terms{0.0, 0.0},
      [&](std::int64_t begin, std::int64_t end) {
        Terms acc{0.0, 0.0};
        for (std::int64_t i = begin; i < end; ++i) {
          const float di = std::clamp(probs.flat(i), clamp_lo, clamp_hi);
          const float se = sq_err.flat(i);
          switch (config_.loss_mode) {
            case LossMode::kEmpirical: {
              // L_i = (1 − 2 log d_i) · ‖e_i‖²
              const float a = 1.f - 2.f * std::log(di);
              acc.first += static_cast<double>(a) * se;
              mse_scale[static_cast<std::size_t>(i)] =
                  a / static_cast<float>(n);
              grad_probs.flat(i) =
                  (-2.f / di) * se / static_cast<float>(n);
              break;
            }
            case LossMode::kFixedSigma: {
              // L_i = ‖e_i‖² − 2σ² log d_i
              acc.first += static_cast<double>(se) -
                           2.0 * config_.sigma2 *
                               std::log(static_cast<double>(di));
              mse_scale[static_cast<std::size_t>(i)] =
                  1.f / static_cast<float>(n);
              grad_probs.flat(i) =
                  (-2.f * config_.sigma2 / di) / static_cast<float>(n);
              break;
            }
          }
          acc.second += se;
        }
        return acc;
      },
      [](Terms a, Terms b) {
        return Terms{a.first + b.first, a.second + b.second};
      });
  loss /= static_cast<double>(n);
  // Telemetry reports the per-element MSE so it is directly comparable with
  // the pre-training loss (Eq. 10); the loss itself keeps Eq. 9's
  // per-sample ‖·‖² convention.
  mse_term /= static_cast<double>(pred.size());

  // Adversarial path: d(loss)/d(pred) through the discriminator.
  opt_g_.zero_grad();
  opt_d_.zero_grad();  // absorbs the unused D-parameter gradients
  Tensor grad_pred = discriminator_.backward(grad_probs);  // (N, h, w)

  // Data path: d/d(pred) of the per-sample weighted squared error.
  const std::int64_t inner = pred.size() / n;
  float* pgp = grad_pred.data();
  const float* pp = pred.data();
  const float* pt = batch.targets.data();
  parallel_for(n, [&](std::int64_t i) {
    const float scale = 2.f * mse_scale[static_cast<std::size_t>(i)];
    for (std::int64_t j = 0; j < inner; ++j) {
      const std::int64_t off = i * inner + j;
      pgp[off] += scale * (pp[off] - pt[off]);
    }
  });

  generator_.backward(grad_pred);
  opt_g_.step();

  stats.g_mse = mse_term;
  return loss;
}

void GanTrainer::set_generator_learning_rate(float lr) {
  opt_g_.set_learning_rate(lr);
}

std::vector<GanRoundStats> GanTrainer::train(const SampleSource& source,
                                             int rounds) {
  check(rounds >= 0, "train: negative round count");
  opt_g_.set_learning_rate(config_.adversarial_learning_rate);
  opt_d_.set_learning_rate(config_.adversarial_learning_rate);
  std::vector<GanRoundStats> history;
  history.reserve(static_cast<std::size_t>(rounds));
  for (int round = 0; round < rounds; ++round) {
    GanRoundStats stats;
    double d_loss = 0.0;
    for (int e = 0; e < config_.n_d; ++e) {
      Batch batch = sample_batch(source);
      d_loss += train_discriminator_step(batch, stats);
    }
    stats.d_loss = d_loss / config_.n_d;
    double g_loss = 0.0;
    for (int e = 0; e < config_.n_g; ++e) {
      Batch batch = sample_batch(source);
      g_loss += train_generator_step(batch, stats);
    }
    stats.g_loss = g_loss / config_.n_g;
    history.push_back(stats);
  }
  return history;
}

}  // namespace mtsr::core
