#include "src/core/gan_trainer.hpp"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <utility>

#include "src/common/check.hpp"
#include "src/common/workspace.hpp"
#include "src/nn/loss.hpp"
#include "src/tensor/tensor_ops.hpp"

namespace mtsr::core {
namespace {

/// Unwind guard: no in-flight stage task may outlive the pretrain/train
/// call whose sample source it captured.
struct StageDrainGuard {
  StageExecutor& executor;
  ~StageDrainGuard() { executor.drain(); }
};

}  // namespace

GanTrainer::GanTrainer(ZipNet& generator, Discriminator& discriminator,
                       GanTrainerConfig config)
    : generator_(generator),
      discriminator_(discriminator),
      config_(config),
      rng_(config.seed),
      replicas_(nn::resolve_train_replicas(config.replicas)),
      opt_g_(generator.parameters(), config.learning_rate),
      opt_d_(discriminator.parameters(), config.learning_rate) {
  check(config_.batch_size > 0, "GanTrainerConfig: bad batch size");
  check(config_.n_d >= 1 && config_.n_g >= 1,
        "GanTrainerConfig: sub-epoch counts must be >= 1");
  check(config_.prob_clamp > 0.f && config_.prob_clamp < 0.5f,
        "GanTrainerConfig: bad prob clamp");
  check(config_.critic_iters >= 1, "GanTrainerConfig: critic_iters must "
        "be >= 1");
  check(config_.weight_clip >= 0.f,
        "GanTrainerConfig: negative weight_clip");
}

void GanTrainer::clip_critic_weights() {
  if (config_.weight_clip <= 0.f) return;
  const float c = config_.weight_clip;
  for (nn::Parameter* param : discriminator_.parameters()) {
    float* v = param->value.data();
    const std::int64_t n = param->value.size();
    for (std::int64_t i = 0; i < n; ++i) v[i] = std::clamp(v[i], -c, c);
  }
}

int GanTrainer::slice_count() const {
  return replicas_ == 0 ? 1 : nn::train_slice_count(config_.batch_size);
}

GanTrainer::Batch GanTrainer::build_batch(const SampleSource& source,
                                          std::uint64_t base_counter) {
  const std::int64_t m = config_.batch_size;
  std::vector<Tensor> inputs, targets;
  inputs.reserve(static_cast<std::size_t>(m));
  targets.reserve(static_cast<std::size_t>(m));
  for (std::int64_t b = 0; b < m; ++b) {
    // One private stream per global sample index: the drawn sample depends
    // only on (seed, counter), never on which thread assembles the batch or
    // how many replicas consume it.
    Rng sample_rng = rng_.stream(base_counter + static_cast<std::uint64_t>(b));
    data::Sample sample = source(sample_rng);
    inputs.push_back(std::move(sample.input));
    targets.push_back(std::move(sample.target));
  }
  const int slices = slice_count();
  Batch batch;
  batch.rows = m;
  batch.inputs.reserve(static_cast<std::size_t>(slices));
  batch.targets.reserve(static_cast<std::size_t>(slices));
  for (int s = 0; s < slices; ++s) {
    const nn::SliceRange range = nn::train_slice_range(m, slices, s);
    std::vector<Tensor> in_slice(
        std::make_move_iterator(inputs.begin() + range.begin),
        std::make_move_iterator(inputs.begin() + range.end));
    std::vector<Tensor> tg_slice(
        std::make_move_iterator(targets.begin() + range.begin),
        std::make_move_iterator(targets.begin() + range.end));
    batch.inputs.push_back(stack0(in_slice));
    batch.targets.push_back(stack0(tg_slice));
    batch.target_elements += batch.targets.back().size();
  }
  return batch;
}

void GanTrainer::stage_batch(const SampleSource& source) {
  // The counter range is claimed here, on the caller's thread, so the
  // sample sequence is fixed before the stage thread ever runs.
  const std::uint64_t base = sample_counter_;
  sample_counter_ += static_cast<std::uint64_t>(config_.batch_size);
  staged_future_ = stager_.submit(
      [this, &source, base] { staged_ = build_batch(source, base); });
}

GanTrainer::Batch GanTrainer::take_staged() {
  staged_future_.get();
  return std::move(staged_);
}

// ---------------------------------------------------------------------------
// Phase 1: pre-training.
// ---------------------------------------------------------------------------

std::vector<double> GanTrainer::pretrain(const SampleSource& source,
                                         int steps) {
  check(steps >= 0, "pretrain: negative step count");
  std::vector<double> losses;
  losses.reserve(static_cast<std::size_t>(steps));
  if (steps == 0) return losses;
  StageDrainGuard drain{stager_};
  stage_batch(source);  // prefetch step 0
  for (int step = 0; step < steps; ++step) {
    Batch batch = take_staged();
    if (step + 1 < steps) stage_batch(source);  // overlap with compute
    if (replicas_ == 0) {
      losses.push_back(pretrain_step_legacy(batch.inputs[0], batch.targets[0]));
    } else {
      losses.push_back(pretrain_step_replicated(batch));
    }
  }
  return losses;
}

double GanTrainer::pretrain_step_legacy(const Tensor& inputs,
                                        const Tensor& targets) {
  // Step-scoped workspace: backward rewinds what forward retained, and
  // the scope reclaims anything left, so the arena stops growing after
  // the first step.
  Workspace::Scope ws_step(Workspace::tls());
  Tensor pred = generator_.forward(inputs, /*training=*/true);
  auto [loss, grad] = nn::mse_loss(pred, targets);
  opt_g_.zero_grad();
  generator_.backward(grad);
  opt_g_.step();
  return loss;
}

double GanTrainer::pretrain_step_replicated(const Batch& batch) {
  const int slices = static_cast<int>(batch.inputs.size());
  opt_g_.zero_grad();
  generator_.prepare_replica_slots(slices);
  std::vector<double> partial(static_cast<std::size_t>(slices), 0.0);
  nn::run_replicated(
      slices, replicas_,
      [&](int s) {
        const auto si = static_cast<std::size_t>(s);
        Tensor pred = generator_.forward(batch.inputs[si], /*training=*/true);
        nn::SliceLossResult slice = nn::mse_loss_slice(
            pred, batch.targets[si], batch.target_elements);
        generator_.backward(slice.grad);
        partial[si] = slice.sum;
      },
      &last_arena_stats_);
  generator_.reduce_replica_slots(slices);
  opt_g_.step();
  double sum = 0.0;
  for (double p : partial) sum += p;
  return sum / static_cast<double>(batch.target_elements);
}

// ---------------------------------------------------------------------------
// Phase 2: discriminator sub-epoch.
// ---------------------------------------------------------------------------

double GanTrainer::train_discriminator_step_legacy(const Tensor& inputs,
                                                   const Tensor& targets,
                                                   GanRoundStats& stats) {
  // Step-scoped workspace: reclaims the generator's inference-pass slices
  // (no backward runs through it in the D sub-epoch).
  Workspace::Scope ws_step(Workspace::tls());
  // Real half: maximise log D(real) <=> minimise BCE(D(real), 1).
  opt_d_.zero_grad();
  Tensor p_real = discriminator_.forward(targets, /*training=*/true);
  auto [loss_real, grad_real] = nn::bce_loss(p_real, 1.f);
  discriminator_.backward(grad_real);

  // Fake half: minimise BCE(D(G(F)), 0). The generator runs in inference
  // mode here — its parameters are fixed during the D sub-epoch.
  Tensor fake = generator_.forward(inputs, /*training=*/false);
  Tensor p_fake = discriminator_.forward(fake, /*training=*/true);
  auto [loss_fake, grad_fake] = nn::bce_loss(p_fake, 0.f);
  discriminator_.backward(grad_fake);
  opt_d_.step();

  stats.d_real_prob = p_real.mean();
  stats.d_fake_prob = p_fake.mean();
  return loss_real + loss_fake;
}

double GanTrainer::train_discriminator_step_replicated(const Batch& batch,
                                                       GanRoundStats& stats) {
  const int slices = static_cast<int>(batch.inputs.size());
  struct Part {
    double real_sum = 0.0, fake_sum = 0.0;
    double p_real_sum = 0.0, p_fake_sum = 0.0;
  };
  std::vector<Part> parts(static_cast<std::size_t>(slices));
  opt_d_.zero_grad();
  discriminator_.prepare_replica_slots(slices);
  generator_.prepare_replica_slots(slices);  // inference forwards per slot
  nn::run_replicated(
      slices, replicas_,
      [&](int s) {
        const auto si = static_cast<std::size_t>(s);
        Part part;
        Tensor p_real =
            discriminator_.forward(batch.targets[si], /*training=*/true);
        nn::SliceLossResult real =
            nn::bce_loss_slice(p_real, 1.f, batch.rows);
        discriminator_.backward(real.grad);

        Tensor fake = generator_.forward(batch.inputs[si], /*training=*/false);
        Tensor p_fake = discriminator_.forward(fake, /*training=*/true);
        nn::SliceLossResult fake_loss =
            nn::bce_loss_slice(p_fake, 0.f, batch.rows);
        discriminator_.backward(fake_loss.grad);

        part.real_sum = real.sum;
        part.fake_sum = fake_loss.sum;
        for (std::int64_t i = 0; i < p_real.dim(0); ++i) {
          part.p_real_sum += static_cast<double>(p_real.flat(i));
          part.p_fake_sum += static_cast<double>(p_fake.flat(i));
        }
        parts[si] = part;
      },
      &last_arena_stats_);
  // Folds slice gradient slots and merges the two deferred batch-norm
  // updates (real forward, then fake forward) in ascending slice order.
  discriminator_.reduce_replica_slots(slices);
  opt_d_.step();

  double real_sum = 0.0, fake_sum = 0.0, p_real_sum = 0.0, p_fake_sum = 0.0;
  for (const Part& part : parts) {
    real_sum += part.real_sum;
    fake_sum += part.fake_sum;
    p_real_sum += part.p_real_sum;
    p_fake_sum += part.p_fake_sum;
  }
  const double n = static_cast<double>(batch.rows);
  stats.d_real_prob = p_real_sum / n;
  stats.d_fake_prob = p_fake_sum / n;
  return real_sum / n + fake_sum / n;
}

// ---------------------------------------------------------------------------
// Phase 2: generator sub-epoch.
// ---------------------------------------------------------------------------

double GanTrainer::train_generator_step_legacy(const Tensor& inputs,
                                               const Tensor& targets,
                                               GanRoundStats& stats) {
  Workspace::Scope ws_step(Workspace::tls());
  const std::int64_t n = inputs.dim(0);

  Tensor pred = generator_.forward(inputs, /*training=*/true);
  Tensor probs = discriminator_.forward(pred, /*training=*/true);  // (N, 1)

  // Per-sample quantities of Eq. 9 / Eq. 8.
  Tensor sq_err = nn::per_sample_sq_error(pred, targets);  // (N)
  const float clamp_lo = config_.prob_clamp;
  const float clamp_hi = 1.f - config_.prob_clamp;

  // Gradient of the loss w.r.t. D's output, fed backwards through D to
  // reach the generator's output (D's own parameter gradients are discarded
  // at its next zero_grad()).
  Tensor grad_probs(Shape{n, 1});
  // Per-sample multiplier for the MSE part of the gradient.
  std::vector<float> mse_scale(static_cast<std::size_t>(n));

  // Per-sample terms are independent: the chunk body fills the disjoint
  // grad/scale entries and returns the chunk's (loss, mse) partial, which
  // reduces deterministically in slot order.
  using Terms = std::pair<double, double>;  // (loss, mse)
  auto [loss, mse_term] = parallel_reduce(
      n, Terms{0.0, 0.0},
      [&](std::int64_t begin, std::int64_t end) {
        Terms acc{0.0, 0.0};
        for (std::int64_t i = begin; i < end; ++i) {
          const float di = std::clamp(probs.flat(i), clamp_lo, clamp_hi);
          const float se = sq_err.flat(i);
          switch (config_.loss_mode) {
            case LossMode::kEmpirical: {
              // L_i = (1 − 2 log d_i) · ‖e_i‖²
              const float a = 1.f - 2.f * std::log(di);
              acc.first += static_cast<double>(a) * se;
              mse_scale[static_cast<std::size_t>(i)] =
                  a / static_cast<float>(n);
              grad_probs.flat(i) =
                  (-2.f / di) * se / static_cast<float>(n);
              break;
            }
            case LossMode::kFixedSigma: {
              // L_i = ‖e_i‖² − 2σ² log d_i
              acc.first += static_cast<double>(se) -
                           2.0 * config_.sigma2 *
                               std::log(static_cast<double>(di));
              mse_scale[static_cast<std::size_t>(i)] =
                  1.f / static_cast<float>(n);
              grad_probs.flat(i) =
                  (-2.f * config_.sigma2 / di) / static_cast<float>(n);
              break;
            }
          }
          acc.second += se;
        }
        return acc;
      },
      [](Terms a, Terms b) {
        return Terms{a.first + b.first, a.second + b.second};
      });
  loss /= static_cast<double>(n);
  // Telemetry reports the per-element MSE so it is directly comparable with
  // the pre-training loss (Eq. 10); the loss itself keeps Eq. 9's
  // per-sample ‖·‖² convention.
  mse_term /= static_cast<double>(pred.size());

  // Adversarial path: d(loss)/d(pred) through the discriminator.
  opt_g_.zero_grad();
  opt_d_.zero_grad();  // absorbs the unused D-parameter gradients
  Tensor grad_pred = discriminator_.backward(grad_probs);  // (N, h, w)

  // Data path: d/d(pred) of the per-sample weighted squared error.
  const std::int64_t inner = pred.size() / n;
  float* pgp = grad_pred.data();
  const float* pp = pred.data();
  const float* pt = targets.data();
  parallel_for(n, [&](std::int64_t i) {
    const float scale = 2.f * mse_scale[static_cast<std::size_t>(i)];
    for (std::int64_t j = 0; j < inner; ++j) {
      const std::int64_t off = i * inner + j;
      pgp[off] += scale * (pp[off] - pt[off]);
    }
  });

  generator_.backward(grad_pred);
  opt_g_.step();

  stats.g_mse = mse_term;
  return loss;
}

double GanTrainer::train_generator_step_replicated(const Batch& batch,
                                                   GanRoundStats& stats) {
  const int slices = static_cast<int>(batch.inputs.size());
  const std::int64_t n = batch.rows;  // FULL batch denominator everywhere
  const float clamp_lo = config_.prob_clamp;
  const float clamp_hi = 1.f - config_.prob_clamp;

  struct Part {
    double loss = 0.0, mse = 0.0;
  };
  std::vector<Part> parts(static_cast<std::size_t>(slices));
  opt_g_.zero_grad();
  opt_d_.zero_grad();  // absorbs the unused D-parameter gradients
  generator_.prepare_replica_slots(slices);
  discriminator_.prepare_replica_slots(slices);
  nn::run_replicated(
      slices, replicas_,
      [&](int s) {
        const auto si = static_cast<std::size_t>(s);
        const Tensor& inputs = batch.inputs[si];
        const Tensor& targets = batch.targets[si];
        const std::int64_t ns = inputs.dim(0);

        Tensor pred = generator_.forward(inputs, /*training=*/true);
        Tensor probs = discriminator_.forward(pred, /*training=*/true);
        Tensor sq_err = nn::per_sample_sq_error(pred, targets);

        Tensor grad_probs(Shape{ns, 1});
        std::vector<float> mse_scale(static_cast<std::size_t>(ns));
        Part part;
        for (std::int64_t i = 0; i < ns; ++i) {
          const float di = std::clamp(probs.flat(i), clamp_lo, clamp_hi);
          const float se = sq_err.flat(i);
          switch (config_.loss_mode) {
            case LossMode::kEmpirical: {
              const float a = 1.f - 2.f * std::log(di);
              part.loss += static_cast<double>(a) * se;
              mse_scale[static_cast<std::size_t>(i)] =
                  a / static_cast<float>(n);
              grad_probs.flat(i) = (-2.f / di) * se / static_cast<float>(n);
              break;
            }
            case LossMode::kFixedSigma: {
              part.loss += static_cast<double>(se) -
                           2.0 * config_.sigma2 *
                               std::log(static_cast<double>(di));
              mse_scale[static_cast<std::size_t>(i)] =
                  1.f / static_cast<float>(n);
              grad_probs.flat(i) =
                  (-2.f * config_.sigma2 / di) / static_cast<float>(n);
              break;
            }
          }
          part.mse += se;
        }

        Tensor grad_pred = discriminator_.backward(grad_probs);

        const std::int64_t inner = pred.size() / ns;
        float* pgp = grad_pred.data();
        const float* pp = pred.data();
        const float* pt = targets.data();
        parallel_for(ns, [&](std::int64_t i) {
          const float scale = 2.f * mse_scale[static_cast<std::size_t>(i)];
          for (std::int64_t j = 0; j < inner; ++j) {
            const std::int64_t off = i * inner + j;
            pgp[off] += scale * (pp[off] - pt[off]);
          }
        });

        generator_.backward(grad_pred);
        parts[si] = part;
      },
      &last_arena_stats_);
  generator_.reduce_replica_slots(slices);
  // D's slice slots must drain too: the folded gradients land in D's main
  // accumulators (discarded by the next D-step zero_grad, exactly like the
  // legacy path) and its deferred batch-norm statistics get their update.
  discriminator_.reduce_replica_slots(slices);
  opt_g_.step();

  double loss = 0.0, mse_term = 0.0;
  for (const Part& part : parts) {
    loss += part.loss;
    mse_term += part.mse;
  }
  stats.g_mse = mse_term / static_cast<double>(batch.target_elements);
  return loss / static_cast<double>(n);
}

// ---------------------------------------------------------------------------
// Driver loops.
// ---------------------------------------------------------------------------

void GanTrainer::set_generator_learning_rate(float lr) {
  opt_g_.set_learning_rate(lr);
}

std::vector<GanRoundStats> GanTrainer::train(const SampleSource& source,
                                             int rounds) {
  check(rounds >= 0, "train: negative round count");
  opt_g_.set_learning_rate(config_.adversarial_learning_rate);
  opt_d_.set_learning_rate(config_.adversarial_learning_rate);
  std::vector<GanRoundStats> history;
  history.reserve(static_cast<std::size_t>(rounds));
  if (rounds == 0) return history;

  // WGAN-style critic schedule: critic_iters multiplies the discriminator
  // sub-epochs per round (1 = the legacy schedule, bit-identical).
  const int d_steps = config_.n_d * config_.critic_iters;
  const std::int64_t total_batches =
      static_cast<std::int64_t>(rounds) * (d_steps + config_.n_g);
  std::int64_t consumed = 0;
  StageDrainGuard drain{stager_};
  stage_batch(source);
  auto next_batch = [&]() {
    Batch batch = take_staged();
    if (++consumed < total_batches) stage_batch(source);
    return batch;
  };

  for (int round = 0; round < rounds; ++round) {
    GanRoundStats stats;
    double d_loss = 0.0;
    for (int e = 0; e < d_steps; ++e) {
      Batch batch = next_batch();
      if (replicas_ == 0) {
        d_loss += train_discriminator_step_legacy(batch.inputs[0],
                                                  batch.targets[0], stats);
      } else {
        d_loss += train_discriminator_step_replicated(batch, stats);
      }
      clip_critic_weights();
    }
    stats.d_loss = d_loss / d_steps;
    double g_loss = 0.0;
    for (int e = 0; e < config_.n_g; ++e) {
      Batch batch = next_batch();
      if (replicas_ == 0) {
        g_loss += train_generator_step_legacy(batch.inputs[0],
                                              batch.targets[0], stats);
      } else {
        g_loss += train_generator_step_replicated(batch, stats);
      }
    }
    stats.g_loss = g_loss / config_.n_g;
    history.push_back(stats);
  }
  return history;
}

}  // namespace mtsr::core
