// MtsrPipeline: the end-to-end system of the paper.
//
// Wires together dataset normalisation, probe aggregation, window-cropping
// augmentation (Section 4), ZipNet-GAN training (Algorithm 1) and full-grid
// prediction with moving-average stitching. This is the class a network
// operator would deploy at the gateway: feed coarse probe aggregates,
// receive fine-grained traffic maps.
#pragma once

#include <memory>

#include "src/core/gan_trainer.hpp"
#include "src/data/dataset.hpp"
#include "src/data/probes.hpp"
#include "src/metrics/metrics.hpp"
#include "src/serving/engine.hpp"

namespace mtsr::core {

/// Everything needed to train and run one MTSR instance.
struct PipelineConfig {
  data::MtsrInstance instance = data::MtsrInstance::kUp4;
  std::int64_t window = 20;          ///< fine-cell crop side (paper: 80)
  std::int64_t temporal_length = 3;  ///< S
  std::int64_t stitch_stride = 0;    ///< 0 → window/2

  ZipNetConfig zipnet;               ///< widths/depths (factors are derived)
  DiscriminatorConfig discriminator;
  GanTrainerConfig trainer;

  int pretrain_steps = 200;          ///< Eq. 10 steps
  int gan_rounds = 60;               ///< Algorithm 1 rounds
  std::uint64_t seed = 29;
};

/// Train/predict facade over one dataset + instance.
class MtsrPipeline {
 public:
  MtsrPipeline(PipelineConfig config, const data::TrafficDataset& dataset);

  /// Runs pre-training then adversarial training on the training split.
  /// Set `gan_rounds` to 0 (in the config) for a pure ZipNet (no GAN).
  void train();

  /// Pre-training only (the paper's plain "ZipNet" comparison point).
  void train_pretrain_only();

  /// Full-grid prediction for frame `t` (raw MB), stitched from overlapping
  /// windows with the moving-average filter.
  ///
  /// Forwarding shim over the serving engine: the frames [t-S+1, t] are
  /// streamed into an internal session configured for bit-identical outputs
  /// to the pre-engine implementation (legacy pool-scaled sub-batching).
  /// Consecutive calls (t, t+1, ...) reuse the session's rolling window
  /// cache, so sweeps like evaluate() skip re-aggregating shared history.
  [[nodiscard]] Tensor predict_frame(std::int64_t t);

  /// Evaluates stitched predictions against ground truth over up to
  /// `max_frames` frames of the test split (evenly spaced).
  [[nodiscard]] metrics::MetricAccumulator evaluate(std::int64_t max_frames);

  /// Random-crop sample source over a split (used by trainers and benches).
  [[nodiscard]] SampleSource make_sample_source(data::SplitRange range) const;

  /// Checkpointing: persists / restores the trained generator, so a model
  /// trained offline can be shipped to a gateway (cf. StreamingInferencer).
  /// load_generator requires an architecture-identical pipeline config.
  void save_generator(const std::string& path);
  void load_generator(const std::string& path);

  /// The serving engine behind predict_frame/evaluate. The pipeline's
  /// generator is registered as model "zipnet"; callers may open additional
  /// sessions (other strides, other models) against it.
  [[nodiscard]] serving::Engine& engine();

  [[nodiscard]] ZipNet& generator() { return *generator_; }
  [[nodiscard]] Discriminator& discriminator() { return *discriminator_; }
  [[nodiscard]] GanTrainer& trainer() { return *trainer_; }
  [[nodiscard]] const data::ProbeLayout& window_layout() const {
    return *window_layout_;
  }
  [[nodiscard]] const data::TrafficDataset& dataset() const {
    return dataset_;
  }
  [[nodiscard]] const PipelineConfig& config() const { return config_; }

  /// Training telemetry.
  [[nodiscard]] const std::vector<double>& pretrain_losses() const {
    return pretrain_losses_;
  }
  [[nodiscard]] const std::vector<GanRoundStats>& gan_history() const {
    return gan_history_;
  }

 private:
  void ensure_serving();

  PipelineConfig config_;
  const data::TrafficDataset& dataset_;
  std::unique_ptr<data::ProbeLayout> window_layout_;
  std::unique_ptr<ZipNet> generator_;
  std::unique_ptr<Discriminator> discriminator_;
  std::unique_ptr<GanTrainer> trainer_;
  std::vector<double> pretrain_losses_;
  std::vector<GanRoundStats> gan_history_;

  std::unique_ptr<serving::Engine> engine_;
  serving::Engine::SessionId session_ = 0;
  std::int64_t streamed_t_ = -1;  ///< newest frame in the session history
};

}  // namespace mtsr::core
