// ZipNet: the paper's generator architecture (Section 3.2, Figs. 3-4).
//
// Three stages:
//  1. 3D upscaling blocks — one per upscale stage. Each block is a 3-D
//     transposed convolution (stride (1, f, f): spatial enlargement by the
//     stage factor f, temporal depth preserved) followed by `convs_per_block`
//     3-D convolutions, each with batch-norm + LeakyReLU. These "jointly
//     extract spatial and temporal features". The paper uses 1 to 3 blocks
//     depending on resolution; the factor decompositions used here are
//     up-2 → {2}, up-4 → {2, 2}, up-10 → {1, 2, 5} (a factor-1 block is a
//     pure 3-D refinement stage, giving the paper's three blocks for up-10).
//  2. Zipper convolutional blocks — after collapsing (channels × temporal
//     depth) into 2-D feature maps, a chain of M modules (conv+BN+LReLU).
//     Skip wiring is the "zipper": module outputs x_i = B_i(x_{i-1}) + x_{i-2}
//     form two interleaved residual chains (staggered skip connections
//     linking every two modules), plus a global skip x_M + x_0. No extra
//     parameters are introduced by any skip. The paper's ResNet ablation
//     (non-overlapping pairs) and no-skip variant are selectable for the
//     ablation bench.
//  3. Convolutional blocks — three plain conv+BN+LReLU layers with growing
//     feature maps, then a linear 3×3 conv producing the single-channel
//     fine-grained prediction.
//
// The paper's full-scale configuration (24 zipper modules, >50 layers) is
// constructible; benches default to CPU-scale widths (DESIGN.md §7).
#pragma once

#include <memory>
#include <vector>

#include "src/common/rng.hpp"
#include "src/nn/layer.hpp"
#include "src/nn/sequential.hpp"

namespace mtsr::core {

/// Skip-connection wiring of the zipper chain (ablation knob).
enum class SkipMode {
  kZipper,         ///< staggered overlapping skips + global skip (the paper)
  kResidualPairs,  ///< classic ResNet: non-overlapping pair skips + global
  kNone,           ///< plain chain, no skips
};

/// Architecture hyper-parameters.
struct ZipNetConfig {
  std::int64_t temporal_length = 3;       ///< S, input snapshots
  std::vector<int> upscale_factors{2, 2}; ///< per-stage spatial factors
  std::int64_t base_channels = 8;         ///< 3-D stage feature maps
  int convs_per_block = 1;                ///< 3-D convs per upscaling block (paper: 3)
  int zipper_modules = 6;                 ///< M, conv modules in the zipper (paper: 24)
  std::int64_t zipper_channels = 16;      ///< zipper feature maps
  std::int64_t final_channels = 24;       ///< first final-block width; grows per layer
  float lrelu_alpha = 0.1f;               ///< Eq. 3 slope
  SkipMode skip_mode = SkipMode::kZipper;
  /// CPU-scale training aid (DESIGN.md §7): adds an upsampling of the most
  /// recent coarse frame to the network output, so the stack learns the
  /// *correction* to an interpolation baseline rather than the full
  /// mapping. Cuts convergence from GPU-days to CPU-seconds; kNone gives
  /// the paper-exact architecture. Only valid when the coarse input is
  /// spatially aligned with the output (the pipeline selects kNone for the
  /// mixture instance, whose input square is a distorted projection).
  enum class ResidualBase { kNone, kNearest, kBicubic };
  ResidualBase residual_base = ResidualBase::kBicubic;
};

/// The ZipNet generator. Input (N, S, ci, ci) coarse sequences; output
/// (N, ci·Πf, ci·Πf) fine predictions (normalised units).
class ZipNet final : public nn::Layer {
 public:
  ZipNet(ZipNetConfig config, Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<nn::Parameter*> parameters() override;
  std::vector<std::pair<std::string, Tensor*>> buffers() override;
  void prepare_replica_slots(int count) override;
  void reduce_replica_slots(int count) override;
  [[nodiscard]] std::string name() const override;

  /// Total spatial upscaling factor (product of stage factors).
  [[nodiscard]] int total_upscale() const;

  [[nodiscard]] const ZipNetConfig& config() const { return config_; }

  /// Read-only structural access — the int8 conversion (zipnet_int8.hpp)
  /// walks these blocks to mirror the architecture with quantised layers.
  [[nodiscard]] const std::vector<std::unique_ptr<nn::Sequential>>&
  upscale_blocks() const {
    return upscale_blocks_;
  }
  [[nodiscard]] const nn::Sequential& entry_block() const { return *entry_; }
  [[nodiscard]] const std::vector<std::unique_ptr<nn::Sequential>>&
  zipper_blocks() const {
    return zipper_modules_;
  }
  [[nodiscard]] const nn::Sequential& final_block() const { return *final_; }

 private:
  /// Extracts the most recent temporal slice of an (N, S, ci, ci) input.
  [[nodiscard]] Tensor crop_latest_input(const Tensor& input) const;

  ZipNetConfig config_;

  std::vector<std::unique_ptr<nn::Sequential>> upscale_blocks_;
  std::unique_ptr<nn::Sequential> entry_;   ///< collapse -> zipper width
  std::vector<std::unique_ptr<nn::Sequential>> zipper_modules_;
  std::unique_ptr<nn::Sequential> final_;

  // Forward caches, one slot per replica slice (slot 0 in direct mode).
  // The zipper activations themselves are local to forward — backward only
  // routes gradients along the (linear) skips, so nothing batch-sized is
  // pinned between passes.
  struct Cache {
    Shape input_shape;
    Shape collapsed_shape;  ///< (N, C·S, h, w) between 3-D and 2-D stages
    bool forward_ran = false;
  };
  std::vector<Cache> cache_ = std::vector<Cache>(1);
  Cache& cache_slot();
};

/// Stage-factor decomposition for a total upscale factor, following the
/// paper's block counts: 2 → {2}; 4 → {2,2}; 10 → {1,2,5}. Other totals are
/// factorised greedily into factors <= 5 (1 is only used for 10).
[[nodiscard]] std::vector<int> upscale_stages(int total_factor);

/// Extracts the most recent temporal slice of an (N, S, ci, ci) coarse
/// input — the frame the residual interpolation base upsamples. Shared by
/// the float generator and its int8 mirror.
[[nodiscard]] Tensor latest_coarse_frame(const Tensor& input);

/// Adds the residual interpolation base in place: `latest` (N, ci, ci)
/// upsampled by `factor` (nearest or bicubic per `mode`) onto `result`
/// (N, ci·factor, ci·factor). kNone is a no-op.
void add_residual_base(Tensor& result, const Tensor& latest,
                       ZipNetConfig::ResidualBase mode, int factor);

}  // namespace mtsr::core
