// The discriminator D (Section 3.2, Fig. 5): a simplified VGG-net of six
// convolutional blocks (conv + BN + LeakyReLU), feature maps doubling every
// other layer, followed by a sigmoid head constraining the output to (0, 1).
//
// A global-average-pool + dense head lets the same discriminator judge any
// grid geometry, which the four MTSR instances require.
#pragma once

#include <memory>

#include "src/common/rng.hpp"
#include "src/nn/layer.hpp"
#include "src/nn/sequential.hpp"

namespace mtsr::core {

/// Discriminator hyper-parameters.
struct DiscriminatorConfig {
  std::int64_t base_channels = 8;  ///< width of the first block
  float lrelu_alpha = 0.1f;
};

/// VGG-style binary classifier: (N, H, W) snapshots -> (N, 1) probability
/// of being a real fine-grained measurement.
class Discriminator final : public nn::Layer {
 public:
  Discriminator(DiscriminatorConfig config, Rng& rng);

  /// Input is (N, H, W); internally reshaped to (N, 1, H, W).
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<nn::Parameter*> parameters() override;
  std::vector<std::pair<std::string, Tensor*>> buffers() override;
  void prepare_replica_slots(int count) override;
  void reduce_replica_slots(int count) override;
  [[nodiscard]] std::string name() const override;

  /// Layer stack and hyper-parameters, read by the int8 conversion
  /// (DiscriminatorInt8), which mirrors the network block by block.
  [[nodiscard]] const nn::Sequential& network() const { return *network_; }
  [[nodiscard]] const DiscriminatorConfig& config() const { return config_; }

 private:
  DiscriminatorConfig config_;
  std::unique_ptr<nn::Sequential> network_;
  // Cached input shape, one slot per replica slice (slot 0 = direct mode).
  std::vector<Shape> input_shape_ = std::vector<Shape>(1);
};

}  // namespace mtsr::core
