// StreamingInferencer: continuous gateway-side MTSR (Section 6).
//
// The paper argues that, once trained, ZipNet-GAN "can continuously perform
// inferences on live streams, unlike post-processing approaches that only
// work off-line". This component is that deployment surface: it consumes
// coarse probe snapshots one interval at a time, maintains the rolling
// window of the last S frames, and emits a fine-grained traffic map as soon
// as enough history has accumulated.
//
// Since the serving redesign this class is a thin forwarding shim over
// mtsr::serving::Engine — one registered ZipNet model, one session — kept
// for API compatibility and configured for bit-identical outputs to the
// pre-engine implementation (per-window batch-1 generator passes). New code
// should open sessions on an Engine directly: it serves many streams and
// many models at once and sub-batches the generator passes.
#pragma once

#include <optional>

#include "src/core/zipnet.hpp"
#include "src/data/dataset.hpp"
#include "src/data/probes.hpp"
#include "src/serving/engine.hpp"

namespace mtsr::core {

/// Online fine-grained inference over a live coarse measurement stream.
class StreamingInferencer {
 public:
  /// `generator` must outlive the inferencer and match the window geometry:
  /// windows of `window × window` fine cells, coarse inputs from
  /// `window_layout`, stitched across the `grid_rows × grid_cols` city at
  /// `stitch_stride`. `stats`/`log_transform` are the training dataset's
  /// normalisation parameters.
  StreamingInferencer(ZipNet& generator,
                      const data::ProbeLayout& window_layout,
                      std::int64_t grid_rows, std::int64_t grid_cols,
                      std::int64_t window, std::int64_t stitch_stride,
                      data::NormStats stats, bool log_transform);

  /// Convenience: pulls geometry and normalisation from a trained
  /// pipeline's dataset.
  [[nodiscard]] static StreamingInferencer from_dataset(
      ZipNet& generator, const data::ProbeLayout& window_layout,
      const data::TrafficDataset& dataset, std::int64_t window,
      std::int64_t stitch_stride);

  /// Feeds the snapshot for the current interval (raw MB). In a deployment
  /// the gateway only holds probe aggregates; this method models the
  /// measurement step by aggregating internally via the probe layout, so
  /// the generator only ever sees coarse data. Returns the fine-grained
  /// inference once at least S frames have been observed, std::nullopt
  /// while the history is still warming up.
  std::optional<Tensor> push_fine(const Tensor& fine_snapshot);

  /// Number of additional frames needed before inference starts.
  [[nodiscard]] std::int64_t frames_until_ready() const;

  /// Temporal window length S required by the generator.
  [[nodiscard]] std::int64_t temporal_length() const;

  /// Number of inferences produced so far.
  [[nodiscard]] std::int64_t inference_count() const;

 private:
  serving::Engine engine_;
  serving::Engine::SessionId session_ = 0;
};

}  // namespace mtsr::core
