#include "src/core/gradient_analysis.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/check.hpp"
#include "src/nn/loss.hpp"
#include "src/tensor/tensor_ops.hpp"

namespace mtsr::core {

std::vector<double> input_gradient_magnitudes(
    ZipNet& generator, Discriminator& discriminator,
    const SampleSource& source, int batches, int batch_size,
    const GanTrainerConfig& config, Rng& rng) {
  check(batches > 0 && batch_size > 0,
        "input_gradient_magnitudes: bad batch geometry");

  std::vector<double> sums;
  std::int64_t per_frame_count = 0;

  for (int b = 0; b < batches; ++b) {
    std::vector<Tensor> inputs, targets;
    inputs.reserve(static_cast<std::size_t>(batch_size));
    targets.reserve(static_cast<std::size_t>(batch_size));
    for (int i = 0; i < batch_size; ++i) {
      data::Sample sample = source(rng);
      inputs.push_back(std::move(sample.input));
      targets.push_back(std::move(sample.target));
    }
    Tensor x = stack0(inputs);   // (N, S, ci, ci)
    Tensor y = stack0(targets);  // (N, h, w)
    const std::int64_t n = x.dim(0), s = x.dim(1);
    if (sums.empty()) sums.assign(static_cast<std::size_t>(s), 0.0);

    // Eq. 9 loss gradient w.r.t. the generator output (same math as the
    // generator training step, parameters untouched).
    Tensor pred = generator.forward(x, /*training=*/false);
    Tensor probs = discriminator.forward(pred, /*training=*/false);
    Tensor sq_err = nn::per_sample_sq_error(pred, y);

    Tensor grad_probs(Shape{n, 1});
    std::vector<float> mse_scale(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
      const float di = std::clamp(probs.flat(i), config.prob_clamp,
                                  1.f - config.prob_clamp);
      const float a = 1.f - 2.f * std::log(di);
      mse_scale[static_cast<std::size_t>(i)] = a / static_cast<float>(n);
      grad_probs.flat(i) = (-2.f / di) * sq_err.flat(i) /
                           static_cast<float>(n);
    }
    generator.zero_grad();
    discriminator.zero_grad();
    Tensor grad_pred = discriminator.backward(grad_probs);
    const std::int64_t inner = pred.size() / n;
    for (std::int64_t i = 0; i < n; ++i) {
      const float scale = 2.f * mse_scale[static_cast<std::size_t>(i)];
      for (std::int64_t j = 0; j < inner; ++j) {
        const std::int64_t off = i * inner + j;
        grad_pred.flat(off) += scale * (pred.flat(off) - y.flat(off));
      }
    }
    Tensor grad_input = generator.backward(grad_pred);  // (N, S, ci, ci)

    const std::int64_t frame_cells = grad_input.size() / (n * s);
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t f = 0; f < s; ++f) {
        double acc = 0.0;
        const std::int64_t base = (i * s + f) * frame_cells;
        for (std::int64_t j = 0; j < frame_cells; ++j) {
          acc += std::abs(grad_input.flat(base + j));
        }
        sums[static_cast<std::size_t>(f)] += acc;
      }
    }
    per_frame_count += n * frame_cells;
  }

  for (double& v : sums) v /= static_cast<double>(per_frame_count);
  return sums;
}

}  // namespace mtsr::core
