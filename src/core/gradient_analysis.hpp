// Input-gradient analysis (Section 5.6, Fig. 15 of the paper).
//
// The paper approximates the sensitivity of the prediction to each input
// frame by the mean magnitude of the first-order derivative of the loss
// with respect to the input, |∂L(F^S_t)/∂F^S_t|, averaged over test inputs.
// The most recent frame should dominate, and the weight of historical
// frames should grow with the upscaling factor.
#pragma once

#include <vector>

#include "src/core/gan_trainer.hpp"

namespace mtsr::core {

/// Computes the mean |∂L/∂input| per temporal frame (index 0 = oldest,
/// S-1 = most recent), averaged over `batches` batches drawn from `source`.
/// L is the generator loss in the trainer's configured mode (Eq. 9 by
/// default).
[[nodiscard]] std::vector<double> input_gradient_magnitudes(
    ZipNet& generator, Discriminator& discriminator,
    const SampleSource& source, int batches, int batch_size,
    const GanTrainerConfig& config, Rng& rng);

}  // namespace mtsr::core
