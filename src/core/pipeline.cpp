#include "src/core/pipeline.hpp"

#include <algorithm>

#include "src/common/check.hpp"
#include "src/nn/model_io.hpp"
#include "src/serving/model.hpp"

namespace mtsr::core {

MtsrPipeline::MtsrPipeline(PipelineConfig config,
                           const data::TrafficDataset& dataset)
    : config_(std::move(config)), dataset_(dataset) {
  check(config_.window > 0 && config_.window <= dataset.rows() &&
            config_.window <= dataset.cols(),
        "MtsrPipeline: window must fit the grid");
  check(config_.temporal_length >= 1, "MtsrPipeline: S must be >= 1");

  window_layout_ =
      data::make_layout(config_.instance, config_.window, config_.window);
  const std::int64_t input_side = window_layout_->input_side();
  check(config_.window % input_side == 0,
        "MtsrPipeline: window must be an integer multiple of the input side");
  const int total_factor = static_cast<int>(config_.window / input_side);

  ZipNetConfig zc = config_.zipnet;
  zc.temporal_length = config_.temporal_length;
  zc.upscale_factors = upscale_stages(total_factor);
  if (config_.instance == data::MtsrInstance::kMixture) {
    // The mixture input square is a zone-ordered projection, not a spatial
    // downsampling — an upsampled residual base would be misaligned.
    zc.residual_base = ZipNetConfig::ResidualBase::kNone;
  }
  config_.zipnet = zc;

  Rng rng(config_.seed);
  generator_ = std::make_unique<ZipNet>(zc, rng);
  discriminator_ = std::make_unique<Discriminator>(config_.discriminator, rng);
  trainer_ = std::make_unique<GanTrainer>(*generator_, *discriminator_,
                                          config_.trainer);
}

SampleSource MtsrPipeline::make_sample_source(data::SplitRange range) const {
  const std::int64_t s = config_.temporal_length;
  const std::int64_t window = config_.window;
  const std::int64_t t_lo = std::max(range.begin, s - 1);
  check(t_lo < range.end, "make_sample_source: split too short for S");
  const data::TrafficDataset& dataset = dataset_;
  const data::ProbeLayout& layout = *window_layout_;
  return [&dataset, &layout, s, window, t_lo, range](Rng& rng) {
    data::SampleSpec spec;
    spec.t = rng.uniform_int(t_lo, range.end - 1);
    spec.r0 = rng.uniform_int(0, dataset.rows() - window);
    spec.c0 = rng.uniform_int(0, dataset.cols() - window);
    return data::make_sample(dataset, layout, spec, s, window);
  };
}

void MtsrPipeline::train() {
  train_pretrain_only();
  const SampleSource source = make_sample_source(dataset_.train_range());
  gan_history_ = trainer_->train(source, config_.gan_rounds);
}

void MtsrPipeline::train_pretrain_only() {
  const SampleSource source = make_sample_source(dataset_.train_range());
  // Two-phase MSE pre-training: full rate for the first 60% of the steps,
  // then a 5x decay to settle (the loss plateau otherwise oscillates at
  // CPU-scale learning rates).
  const int phase1 = config_.pretrain_steps * 3 / 5;
  const int phase2 = config_.pretrain_steps - phase1;
  pretrain_losses_ = trainer_->pretrain(source, phase1);
  trainer_->set_generator_learning_rate(config_.trainer.learning_rate * 0.2f);
  auto tail = trainer_->pretrain(source, phase2);
  pretrain_losses_.insert(pretrain_losses_.end(), tail.begin(), tail.end());
}

void MtsrPipeline::save_generator(const std::string& path) {
  nn::save_model(path, *generator_);
}

void MtsrPipeline::load_generator(const std::string& path) {
  try {
    nn::load_model(path, *generator_);
  } catch (const std::runtime_error& e) {
    // Name the generator the checkpoint was matched against: the usual
    // cause is a pipeline config (widths, modules, upscale stages) that
    // differs from the one the checkpoint was trained with.
    throw std::runtime_error(
        "load_generator(" + path +
        "): checkpoint does not match the configured generator \"" +
        generator_->name() + "\": " + e.what());
  }
}

void MtsrPipeline::ensure_serving() {
  if (engine_) return;
  const std::int64_t stride =
      config_.stitch_stride > 0 ? config_.stitch_stride : config_.window / 2;
  engine_ = std::make_unique<serving::Engine>();
  engine_->register_model(
      "zipnet", std::make_shared<serving::ZipNetModel>(*generator_));
  serving::SessionConfig session = serving::SessionConfig::from_dataset(
      "zipnet", config_.instance, dataset_, config_.window,
      std::max<std::int64_t>(stride, 1));
  session.layout = window_layout_.get();
  // Bit-identity with the pre-engine predict_frame: the legacy block keeps
  // the pool-scaled sub-batch shapes the old stitcher produced.
  session.block = serving::SessionConfig::kLegacyBlock;
  session_ = engine_->open_session(std::move(session));
}

serving::Engine& MtsrPipeline::engine() {
  ensure_serving();
  return *engine_;
}

Tensor MtsrPipeline::predict_frame(std::int64_t t) {
  const std::int64_t s = config_.temporal_length;
  check(t >= s - 1 && t < dataset_.frame_count(),
        "predict_frame: t out of range");
  ensure_serving();
  serving::Session& session = engine_->session(session_);
  std::optional<Tensor> result;
  try {
    if (t == streamed_t_ + 1 && session.frames_until_ready() == 0) {
      // Consecutive frame: the session already holds [t-S+1, t-1] coarsened.
      result = session.push(dataset_.frame(t));
    } else {
      session.reset();
      for (std::int64_t f = t - s + 1; f <= t; ++f) {
        result = session.push(dataset_.frame(f));
      }
    }
  } catch (...) {
    // The session history may have advanced past streamed_t_; drop it so a
    // retry cannot take the consecutive-frame fast path against a history
    // that no longer matches.
    session.reset();
    streamed_t_ = -1;
    throw;
  }
  streamed_t_ = t;
  check_internal(result.has_value(), "predict_frame: session not warm");
  return std::move(*result);
}

metrics::MetricAccumulator MtsrPipeline::evaluate(std::int64_t max_frames) {
  const data::SplitRange range = dataset_.test_range();
  const std::int64_t t_lo = std::max(range.begin, config_.temporal_length - 1);
  check(t_lo < range.end, "evaluate: test split too short");
  const std::int64_t available = range.end - t_lo;
  const std::int64_t count = std::min<std::int64_t>(max_frames, available);
  check(count > 0, "evaluate: nothing to evaluate");
  const std::int64_t step = std::max<std::int64_t>(available / count, 1);

  metrics::MetricAccumulator acc(dataset_.peak());
  for (std::int64_t i = 0; i < count; ++i) {
    const std::int64_t t = t_lo + i * step;
    if (t >= range.end) break;
    acc.add(predict_frame(t), dataset_.frame(t));
  }
  return acc;
}

}  // namespace mtsr::core
