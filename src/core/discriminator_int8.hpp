// DiscriminatorInt8: the int8 inference mirror of the VGG-6 discriminator.
//
// Same one-shot conversion as ZipNetInt8: the constructor walks the six
// [conv → BatchNorm → LeakyReLU] blocks, folding each BatchNorm into its
// conv's scales and fusing the LeakyReLU into the GEMM epilogue, then
// mirrors the dense head as a QuantDense. The global average pool and the
// sigmoid stay float — both are O(activations), not GEMMs.
//
// The trained discriminator is inference-useful as a realism scorer
// (Section 5's fidelity analysis ranks methods by D's probability); the
// int8 twin serves that score at the same ~4x weight-traffic saving as the
// quantised generator.
#pragma once

#include <memory>
#include <vector>

#include "src/core/discriminator.hpp"
#include "src/nn/quantized.hpp"

namespace mtsr::core {

/// int8 inference twin of a Discriminator. Input (N, H, W) snapshots;
/// output (N, 1) realness probabilities — the same contract as
/// Discriminator::forward(·, training=false).
class DiscriminatorInt8 {
 public:
  /// Mirrors `discriminator`'s architecture with folded float weights. The
  /// float network is only read during construction.
  explicit DiscriminatorInt8(const Discriminator& discriminator);

  DiscriminatorInt8(const DiscriminatorInt8&) = delete;
  DiscriminatorInt8& operator=(const DiscriminatorInt8&) = delete;

  /// Float (folded-BN) forward recording activation ranges. Output matches
  /// the float discriminator's inference forward to fold-associativity
  /// error.
  [[nodiscard]] Tensor forward_calibrate(const Tensor& input);

  /// Quantises + packs every layer. Requires at least one
  /// forward_calibrate() pass; forward() is int8 from here on.
  void freeze();

  /// int8 forward (requires freeze()).
  [[nodiscard]] Tensor forward(const Tensor& input) const;

  [[nodiscard]] bool frozen() const { return frozen_; }
  [[nodiscard]] const DiscriminatorConfig& config() const { return config_; }

  /// One-shot conversion: mirror, calibrate over every (N, H, W) batch,
  /// freeze. Throws when `calibration` is empty.
  [[nodiscard]] static std::unique_ptr<DiscriminatorInt8> convert(
      const Discriminator& discriminator,
      const std::vector<Tensor>& calibration);

 private:
  [[nodiscard]] Tensor run(const Tensor& input, bool quantised) const;

  DiscriminatorConfig config_;
  // Calibration mutates the range observers under the const-forward
  // interface, like the other int8 mirrors.
  mutable std::vector<std::unique_ptr<nn::QuantConv2d>> blocks_;
  mutable std::unique_ptr<nn::QuantDense> head_;
  bool frozen_ = false;
};

}  // namespace mtsr::core
