#include "src/core/discriminator_int8.hpp"

#include <cmath>

#include "src/common/check.hpp"

namespace mtsr::core {
namespace {

// Casts Sequential::layer(i) to the expected concrete type; the block
// structure is fixed by Discriminator's constructor, so a mismatch means
// the conversion walked out of sync with the architecture.
template <typename L>
const L& layer_as(const nn::Sequential& seq, std::size_t i) {
  const L* typed = dynamic_cast<const L*>(&seq.layer(i));
  check(typed != nullptr,
        "DiscriminatorInt8: unexpected layer type in VGG-6 stack");
  return *typed;
}

}  // namespace

DiscriminatorInt8::DiscriminatorInt8(const Discriminator& discriminator)
    : config_(discriminator.config()) {
  const nn::Sequential& net = discriminator.network();
  // Six [conv BN lrelu] blocks, then [GlobalAvgPool Dense Sigmoid].
  check(net.size() == 21, "DiscriminatorInt8: unexpected stack length");
  for (std::size_t i = 0; i < 6; ++i) {
    blocks_.push_back(std::make_unique<nn::QuantConv2d>(
        layer_as<nn::Conv2d>(net, 3 * i),
        &layer_as<nn::BatchNorm>(net, 3 * i + 1), config_.lrelu_alpha));
  }
  head_ = std::make_unique<nn::QuantDense>(layer_as<nn::Dense>(net, 19), 1.f);
}

Tensor DiscriminatorInt8::forward_calibrate(const Tensor& input) {
  check(!frozen_, "DiscriminatorInt8::forward_calibrate after freeze()");
  return run(input, /*quantised=*/false);
}

Tensor DiscriminatorInt8::forward(const Tensor& input) const {
  check(frozen_,
        "DiscriminatorInt8::forward before freeze() — calibrate first");
  return run(input, /*quantised=*/true);
}

void DiscriminatorInt8::freeze() {
  check(!frozen_, "DiscriminatorInt8: already frozen");
  for (auto& block : blocks_) block->freeze();
  head_->freeze();
  frozen_ = true;
}

std::unique_ptr<DiscriminatorInt8> DiscriminatorInt8::convert(
    const Discriminator& discriminator,
    const std::vector<Tensor>& calibration) {
  check(!calibration.empty(),
        "DiscriminatorInt8::convert: calibration batches required "
        "(activation scales are data-dependent)");
  auto net = std::make_unique<DiscriminatorInt8>(discriminator);
  for (const Tensor& batch : calibration) {
    Workspace::Scope scope(Workspace::tls());
    (void)net->forward_calibrate(batch);
  }
  net->freeze();
  return net;
}

Tensor DiscriminatorInt8::run(const Tensor& input, bool quantised) const {
  check(input.rank() == 3, "DiscriminatorInt8 expects (N, H, W) input");
  const std::int64_t n = input.dim(0);
  Tensor x = input.reshape(Shape{n, 1, input.dim(1), input.dim(2)});
  for (auto& block : blocks_) {
    x = quantised ? block->forward(x) : block->forward_calibrate(x);
  }

  // Global average pool in float: (N, C, h, w) -> (N, C).
  check(x.rank() == 4, "DiscriminatorInt8: conv stack output not 4-D");
  const std::int64_t c = x.dim(1), spatial = x.dim(2) * x.dim(3);
  Tensor pooled(Shape{n, c});
  const float* px = x.data();
  float* pp = pooled.data();
  for (std::int64_t i = 0; i < n * c; ++i) {
    double sum = 0.0;
    const float* cell = px + i * spatial;
    for (std::int64_t s = 0; s < spatial; ++s) sum += cell[s];
    pp[i] = static_cast<float>(sum / static_cast<double>(spatial));
  }

  Tensor logits =
      quantised ? head_->forward(pooled) : head_->forward_calibrate(pooled);
  float* pl = logits.data();
  for (std::int64_t i = 0; i < logits.size(); ++i) {
    pl[i] = 1.f / (1.f + std::exp(-pl[i]));
  }
  return logits;
}

}  // namespace mtsr::core
