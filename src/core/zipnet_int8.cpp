#include "src/core/zipnet_int8.hpp"

#include "src/common/check.hpp"

namespace mtsr::core {
namespace {

// Casts Sequential::layer(i) to the expected concrete type; the generator's
// block structure is fixed by ZipNet's constructor, so a mismatch means the
// conversion walked out of sync with the architecture.
template <typename L>
const L& layer_as(const nn::Sequential& seq, std::size_t i,
                  const char* where) {
  const L* typed = dynamic_cast<const L*>(&seq.layer(i));
  check(typed != nullptr, std::string("ZipNetInt8: unexpected layer type in ") +
                              where + " block");
  return *typed;
}

}  // namespace

ZipNetInt8::ZipNetInt8(const ZipNet& generator)
    : config_(generator.config()) {
  const float alpha = config_.lrelu_alpha;

  // 3-D upscaling blocks: [deconv BN lrelu, (conv BN lrelu)*].
  for (const auto& block : generator.upscale_blocks()) {
    Stage3d stage;
    stage.deconv = std::make_unique<nn::QuantConvTranspose3d>(
        layer_as<nn::ConvTranspose3d>(*block, 0, "upscale"),
        &layer_as<nn::BatchNorm>(*block, 1, "upscale"), alpha);
    for (std::size_t i = 3; i + 1 < block->size(); i += 3) {
      stage.convs.push_back(std::make_unique<nn::QuantConv3d>(
          layer_as<nn::Conv3d>(*block, i, "upscale"),
          &layer_as<nn::BatchNorm>(*block, i + 1, "upscale"), alpha));
    }
    upscale_.push_back(std::move(stage));
  }

  // Entry convolution: [conv BN lrelu].
  entry_ = std::make_unique<nn::QuantConv2d>(
      layer_as<nn::Conv2d>(generator.entry_block(), 0, "entry"),
      &layer_as<nn::BatchNorm>(generator.entry_block(), 1, "entry"), alpha);

  // Zipper modules: [conv BN lrelu] each.
  for (const auto& module : generator.zipper_blocks()) {
    zipper_.push_back(std::make_unique<nn::QuantConv2d>(
        layer_as<nn::Conv2d>(*module, 0, "zipper"),
        &layer_as<nn::BatchNorm>(*module, 1, "zipper"), alpha));
  }

  // Final blocks: two [conv BN lrelu], then the linear output conv.
  const nn::Sequential& fin = generator.final_block();
  check(fin.size() == 7, "ZipNetInt8: unexpected final block length");
  for (std::size_t i = 0; i < 6; i += 3) {
    final_.push_back(std::make_unique<nn::QuantConv2d>(
        layer_as<nn::Conv2d>(fin, i, "final"),
        &layer_as<nn::BatchNorm>(fin, i + 1, "final"), alpha));
  }
  final_.push_back(std::make_unique<nn::QuantConv2d>(
      layer_as<nn::Conv2d>(fin, 6, "final"), nullptr, 1.f));
}

int ZipNetInt8::total_upscale() const {
  int total = 1;
  for (int f : config_.upscale_factors) total *= f;
  return total;
}

Tensor ZipNetInt8::forward_calibrate(const Tensor& input) {
  check(!frozen_, "ZipNetInt8::forward_calibrate after freeze()");
  return run(input, /*quantised=*/false);
}

Tensor ZipNetInt8::forward(const Tensor& input) {
  check(frozen_, "ZipNetInt8::forward before freeze() — calibrate first");
  return run(input, /*quantised=*/true);
}

void ZipNetInt8::freeze() {
  check(!frozen_, "ZipNetInt8: already frozen");
  for (Stage3d& stage : upscale_) {
    stage.deconv->freeze();
    for (auto& conv : stage.convs) conv->freeze();
  }
  entry_->freeze();
  for (auto& module : zipper_) module->freeze();
  for (auto& conv : final_) conv->freeze();
  frozen_ = true;
}

std::unique_ptr<ZipNetInt8> ZipNetInt8::convert(
    const ZipNet& generator, const std::vector<Tensor>& calibration) {
  check(!calibration.empty(),
        "ZipNetInt8::convert: calibration batches required (activation "
        "scales are data-dependent)");
  auto net = std::make_unique<ZipNetInt8>(generator);
  for (const Tensor& batch : calibration) {
    (void)net->forward_calibrate(batch);
  }
  net->freeze();
  return net;
}

Tensor ZipNetInt8::run(const Tensor& input, bool quantised) {
  check(input.rank() == 4, "ZipNetInt8 expects (N, S, ci, ci) input");
  check(input.dim(1) == config_.temporal_length,
        "ZipNetInt8 input temporal length mismatch");
  const std::int64_t n = input.dim(0), s = input.dim(1);

  const auto conv3d_fwd = [&](nn::QuantConv3d& layer, const Tensor& x) {
    return quantised ? layer.forward(x) : layer.forward_calibrate(x);
  };
  const auto conv2d_fwd = [&](nn::QuantConv2d& layer, const Tensor& x) {
    return quantised ? layer.forward(x) : layer.forward_calibrate(x);
  };

  // (N, S, ci, ci) -> (N, 1, S, ci, ci): one 3-D channel, depth = time.
  Tensor u = input.reshape(Shape{n, 1, s, input.dim(2), input.dim(3)});
  for (Stage3d& stage : upscale_) {
    u = quantised ? stage.deconv->forward(u)
                  : stage.deconv->forward_calibrate(u);
    for (auto& conv : stage.convs) u = conv3d_fwd(*conv, u);
  }

  // Collapse channels × depth into 2-D feature maps.
  const std::int64_t ch = u.dim(1), h = u.dim(3), w = u.dim(4);
  Tensor x0 = conv2d_fwd(*entry_, u.reshape(Shape{n, ch * s, h, w}));

  // Zipper chain: x_i = B_i(x_{i-1}) [+ x_{i-2}] — float adds, exactly as
  // the float generator wires them.
  std::vector<Tensor> chain;
  chain.reserve(zipper_.size() + 1);
  chain.push_back(std::move(x0));
  for (std::size_t i = 0; i < zipper_.size(); ++i) {
    Tensor xi = conv2d_fwd(*zipper_[i], chain.back());
    const std::size_t idx = i + 1;
    switch (config_.skip_mode) {
      case SkipMode::kZipper:
        if (idx >= 2) xi.add_(chain[idx - 2]);
        break;
      case SkipMode::kResidualPairs:
        if (idx >= 2 && idx % 2 == 0) xi.add_(chain[idx - 2]);
        break;
      case SkipMode::kNone:
        break;
    }
    chain.push_back(std::move(xi));
  }

  Tensor z = chain.back();
  if (config_.skip_mode != SkipMode::kNone) {
    z = z.add(chain.front());  // global skip
  }

  for (auto& conv : final_) z = conv2d_fwd(*conv, z);
  Tensor result = z.reshape(Shape{n, z.dim(2), z.dim(3)});

  if (config_.residual_base != ZipNetConfig::ResidualBase::kNone) {
    // Same shared helpers as ZipNet::forward, so the mirror cannot
    // diverge from the float generator's residual-base handling.
    Tensor latest = latest_coarse_frame(input);
    add_residual_base(result, latest, config_.residual_base,
                      total_upscale());
  }
  return result;
}

}  // namespace mtsr::core
