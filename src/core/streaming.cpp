#include "src/core/streaming.hpp"

#include <cmath>

#include "src/common/check.hpp"
#include "src/common/workspace.hpp"
#include "src/tensor/tensor_ops.hpp"

namespace mtsr::core {

StreamingInferencer::StreamingInferencer(
    ZipNet& generator, const data::ProbeLayout& window_layout,
    std::int64_t grid_rows, std::int64_t grid_cols, std::int64_t window,
    std::int64_t stitch_stride, data::NormStats stats, bool log_transform)
    : generator_(generator),
      layout_(window_layout),
      rows_(grid_rows),
      cols_(grid_cols),
      window_(window),
      stride_(stitch_stride),
      s_(generator.config().temporal_length),
      stats_(stats),
      log_transform_(log_transform) {
  check(window_ > 0 && window_ <= rows_ && window_ <= cols_,
        "StreamingInferencer: window must fit the grid");
  check(stride_ > 0, "StreamingInferencer: stride must be positive");
  check(window_layout.rows() == window_ && window_layout.cols() == window_,
        "StreamingInferencer: layout geometry must match the window");
  check(stats_.stddev > 0.0, "StreamingInferencer: bad normalisation stats");
}

StreamingInferencer StreamingInferencer::from_dataset(
    ZipNet& generator, const data::ProbeLayout& window_layout,
    const data::TrafficDataset& dataset, std::int64_t window,
    std::int64_t stitch_stride) {
  return StreamingInferencer(generator, window_layout, dataset.rows(),
                             dataset.cols(), window, stitch_stride,
                             dataset.stats(), dataset.log_transform());
}

Tensor StreamingInferencer::normalize(const Tensor& raw) const {
  Tensor out = raw;
  if (log_transform_) {
    out.apply_([](float v) { return std::log1p(std::max(v, 0.f)); });
  }
  out.add_scalar_(static_cast<float>(-stats_.mean));
  out.mul_scalar_(static_cast<float>(1.0 / stats_.stddev));
  return out;
}

Tensor StreamingInferencer::denormalize(const Tensor& normalized) const {
  Tensor out = normalized;
  out.mul_scalar_(static_cast<float>(stats_.stddev));
  out.add_scalar_(static_cast<float>(stats_.mean));
  if (log_transform_) {
    out.apply_([](float v) { return std::expm1(std::min(v, 20.f)); });
  }
  return out;
}

std::int64_t StreamingInferencer::frames_until_ready() const {
  return std::max<std::int64_t>(
      s_ - static_cast<std::int64_t>(history_.size()), 0);
}

std::optional<Tensor> StreamingInferencer::push_fine(
    const Tensor& fine_snapshot) {
  check(fine_snapshot.rank() == 2 && fine_snapshot.dim(0) == rows_ &&
            fine_snapshot.dim(1) == cols_,
        "StreamingInferencer::push_fine: wrong snapshot shape");
  history_.push_back(normalize(fine_snapshot));
  if (static_cast<std::int64_t>(history_.size()) > s_) history_.pop_front();
  if (static_cast<std::int64_t>(history_.size()) < s_) return std::nullopt;

  // Slide the window across the grid, aggregate each crop's history into
  // the model input, and moving-average the overlapping predictions — the
  // same stitching as the offline pipeline, but over the live ring buffer.
  Tensor acc(Shape{rows_, cols_});
  Tensor weight(Shape{rows_, cols_});
  auto origins = [&](std::int64_t extent) {
    std::vector<std::int64_t> list;
    for (std::int64_t o = 0; o + window_ <= extent; o += stride_) {
      list.push_back(o);
    }
    if (list.empty() || list.back() + window_ < extent) {
      list.push_back(extent - window_);
    }
    return list;
  };
  for (std::int64_t r0 : origins(rows_)) {
    for (std::int64_t c0 : origins(cols_)) {
      std::vector<Tensor> coarse;
      coarse.reserve(static_cast<std::size_t>(s_));
      for (const Tensor& frame : history_) {
        coarse.push_back(
            layout_.coarsen(crop2d(frame, r0, c0, window_, window_)));
      }
      Tensor input = stack0(coarse);
      Tensor x = input.reshape(
          Shape{1, input.dim(0), input.dim(1), input.dim(2)});
      // Inference-only pass: reclaim the layers' retained arena slices so
      // the per-window loop runs at a fixed workspace high-water mark.
      Workspace::Scope ws_scope(Workspace::tls());
      Tensor pred = generator_.forward(x, /*training=*/false);
      for (std::int64_t r = 0; r < window_; ++r) {
        for (std::int64_t c = 0; c < window_; ++c) {
          acc.at(r0 + r, c0 + c) += pred.at(std::int64_t{0}, r, c);
          weight.at(r0 + r, c0 + c) += 1.f;
        }
      }
    }
  }
  for (std::int64_t i = 0; i < acc.size(); ++i) {
    acc.flat(i) /= weight.flat(i);
  }
  ++inferences_;
  return denormalize(acc);
}

}  // namespace mtsr::core
