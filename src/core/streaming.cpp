#include "src/core/streaming.hpp"

#include "src/common/check.hpp"
#include "src/serving/model.hpp"

namespace mtsr::core {

StreamingInferencer::StreamingInferencer(
    ZipNet& generator, const data::ProbeLayout& window_layout,
    std::int64_t grid_rows, std::int64_t grid_cols, std::int64_t window,
    std::int64_t stitch_stride, data::NormStats stats, bool log_transform) {
  check(stitch_stride > 0, "StreamingInferencer: stride must be positive");
  engine_.register_model(
      "zipnet", std::make_shared<serving::ZipNetModel>(generator));
  serving::SessionConfig session;
  session.model = "zipnet";
  session.rows = grid_rows;
  session.cols = grid_cols;
  session.window = window;
  session.stitch_stride = stitch_stride;
  session.stats = stats;
  session.log_transform = log_transform;
  session.layout = &window_layout;
  // Bit-identity with the pre-engine implementation, which ran one batch-1
  // generator pass per window.
  session.block = 1;
  session_ = engine_.open_session(std::move(session));
}

StreamingInferencer StreamingInferencer::from_dataset(
    ZipNet& generator, const data::ProbeLayout& window_layout,
    const data::TrafficDataset& dataset, std::int64_t window,
    std::int64_t stitch_stride) {
  return StreamingInferencer(generator, window_layout, dataset.rows(),
                             dataset.cols(), window, stitch_stride,
                             dataset.stats(), dataset.log_transform());
}

std::optional<Tensor> StreamingInferencer::push_fine(
    const Tensor& fine_snapshot) {
  return engine_.push(session_, fine_snapshot);
}

std::int64_t StreamingInferencer::frames_until_ready() const {
  return engine_.session(session_).frames_until_ready();
}

std::int64_t StreamingInferencer::temporal_length() const {
  return engine_.session(session_).temporal_length();
}

std::int64_t StreamingInferencer::inference_count() const {
  return engine_.session(session_).inference_count();
}

}  // namespace mtsr::core
