#include "src/core/zipnet.hpp"

#include <sstream>

#include "src/baselines/bicubic.hpp"
#include "src/common/check.hpp"
#include "src/common/workspace.hpp"
#include "src/nn/replica.hpp"
#include "src/tensor/tensor_ops.hpp"
#include "src/nn/activations.hpp"
#include "src/nn/batchnorm.hpp"
#include "src/nn/conv2d.hpp"
#include "src/nn/conv3d.hpp"
#include "src/nn/conv_transpose3d.hpp"

namespace mtsr::core {

std::vector<int> upscale_stages(int total_factor) {
  check(total_factor >= 1, "upscale_stages: factor must be >= 1");
  switch (total_factor) {
    case 1: return {1};
    case 2: return {2};
    case 4: return {2, 2};
    case 10: return {1, 2, 5};  // three blocks, as the paper uses for up-10
    default: break;
  }
  std::vector<int> stages;
  int remaining = total_factor;
  for (int f : {5, 4, 3, 2}) {
    while (remaining % f == 0) {
      stages.push_back(f);
      remaining /= f;
    }
  }
  check(remaining == 1,
        "upscale_stages: factor has a prime component larger than 5");
  return stages;
}

ZipNet::ZipNet(ZipNetConfig config, Rng& rng) : config_(std::move(config)) {
  check(config_.temporal_length >= 1, "ZipNet: S must be >= 1");
  check(!config_.upscale_factors.empty(), "ZipNet: need upscale stages");
  check(config_.zipper_modules >= 2, "ZipNet: need at least 2 zipper modules");
  check(config_.base_channels > 0 && config_.zipper_channels > 0 &&
            config_.final_channels > 0,
        "ZipNet: bad channel widths");

  const float alpha = config_.lrelu_alpha;
  const std::int64_t c = config_.base_channels;

  // --- 3D upscaling blocks ---------------------------------------------
  std::int64_t in_ch = 1;
  for (int f : config_.upscale_factors) {
    check(f >= 1, "ZipNet: upscale factors must be >= 1");
    auto block = std::make_unique<nn::Sequential>();
    // Transposed conv: depth kernel 3/stride 1 keeps S; spatial kernel f+2
    // with stride f and padding 1 gives exactly in*f output extent.
    block->emplace<nn::ConvTranspose3d>(
        in_ch, c, std::array<int, 3>{3, f + 2, f + 2},
        std::array<int, 3>{1, f, f}, std::array<int, 3>{1, 1, 1}, rng);
    block->emplace<nn::BatchNorm>(c);
    block->emplace<nn::LeakyReLU>(alpha);
    for (int k = 0; k < config_.convs_per_block; ++k) {
      block->emplace<nn::Conv3d>(c, c, std::array<int, 3>{3, 3, 3},
                                 std::array<int, 3>{1, 1, 1},
                                 std::array<int, 3>{1, 1, 1}, rng);
      block->emplace<nn::BatchNorm>(c);
      block->emplace<nn::LeakyReLU>(alpha);
    }
    upscale_blocks_.push_back(std::move(block));
    in_ch = c;
  }

  // --- Entry convolution: collapse (C·S) feature maps to zipper width ---
  entry_ = std::make_unique<nn::Sequential>();
  entry_->emplace<nn::Conv2d>(c * config_.temporal_length,
                              config_.zipper_channels, 3, 1, 1, rng);
  entry_->emplace<nn::BatchNorm>(config_.zipper_channels);
  entry_->emplace<nn::LeakyReLU>(alpha);

  // --- Zipper modules -----------------------------------------------------
  for (int m = 0; m < config_.zipper_modules; ++m) {
    auto module = std::make_unique<nn::Sequential>();
    module->emplace<nn::Conv2d>(config_.zipper_channels,
                                config_.zipper_channels, 3, 1, 1, rng);
    module->emplace<nn::BatchNorm>(config_.zipper_channels);
    module->emplace<nn::LeakyReLU>(alpha);
    zipper_modules_.push_back(std::move(module));
  }

  // --- Final convolutional blocks: growing widths, then 1-channel output --
  final_ = std::make_unique<nn::Sequential>();
  const std::int64_t f1 = config_.final_channels;
  const std::int64_t f2 = f1 + f1 / 2;
  final_->emplace<nn::Conv2d>(config_.zipper_channels, f1, 3, 1, 1, rng);
  final_->emplace<nn::BatchNorm>(f1);
  final_->emplace<nn::LeakyReLU>(alpha);
  final_->emplace<nn::Conv2d>(f1, f2, 3, 1, 1, rng);
  final_->emplace<nn::BatchNorm>(f2);
  final_->emplace<nn::LeakyReLU>(alpha);
  final_->emplace<nn::Conv2d>(f2, 1, 3, 1, 1, rng);
}

int ZipNet::total_upscale() const {
  int total = 1;
  for (int f : config_.upscale_factors) total *= f;
  return total;
}

Tensor ZipNet::forward(const Tensor& input, bool training) {
  check(input.rank() == 4, "ZipNet expects (N, S, ci, ci) input");
  check(input.dim(1) == config_.temporal_length,
        "ZipNet input temporal length mismatch");
  Cache& cache = cache_slot();
  cache.input_shape = input.shape();
  const std::int64_t n = input.dim(0), s = input.dim(1);

  // (N, S, ci, ci) -> (N, 1, S, ci, ci): one 3-D channel, depth = time.
  Tensor u = input.reshape(
      Shape{n, 1, s, input.dim(2), input.dim(3)});
  for (auto& block : upscale_blocks_) {
    u = block->forward(u, training);
  }

  // Collapse channels × depth into 2-D feature maps.
  const std::int64_t ch = u.dim(1), h = u.dim(3), w = u.dim(4);
  cache.collapsed_shape = Shape{n, ch * s, h, w};
  Tensor x0 = entry_->forward(u.reshape(cache.collapsed_shape), training);

  // Zipper chain: x_i = B_i(x_{i-1}) [+ x_{i-2}]. The activations are only
  // needed while wiring the skips, so the chain is local to forward;
  // backward re-derives the skip routing from indices alone.
  std::vector<Tensor> chain;
  chain.reserve(zipper_modules_.size() + 1);
  chain.push_back(std::move(x0));
  for (std::size_t i = 0; i < zipper_modules_.size(); ++i) {
    Tensor xi = zipper_modules_[i]->forward(chain.back(), training);
    const std::size_t idx = i + 1;  // index of x_i in the chain
    switch (config_.skip_mode) {
      case SkipMode::kZipper:
        if (idx >= 2) xi.add_(chain[idx - 2]);
        break;
      case SkipMode::kResidualPairs:
        if (idx >= 2 && idx % 2 == 0) xi.add_(chain[idx - 2]);
        break;
      case SkipMode::kNone:
        break;
    }
    chain.push_back(std::move(xi));
  }
  cache.forward_ran = true;

  Tensor z = chain.back();
  if (config_.skip_mode != SkipMode::kNone) {
    z = z.add(chain.front());  // global skip
  }

  Tensor out = final_->forward(z, training);  // (N, 1, H, W)
  Tensor result = out.reshape(Shape{n, out.dim(2), out.dim(3)});

  if (config_.residual_base != ZipNetConfig::ResidualBase::kNone) {
    // Most recent coarse frame, upsampled to the output geometry.
    Tensor latest = crop_latest_input(input);
    add_residual_base(result, latest, config_.residual_base,
                      total_upscale());
  }
  return result;
}

Tensor ZipNet::crop_latest_input(const Tensor& input) const {
  return latest_coarse_frame(input);
}

Tensor latest_coarse_frame(const Tensor& input) {
  check(input.rank() == 4, "latest_coarse_frame expects (N, S, ci, ci)");
  const std::int64_t n = input.dim(0), s = input.dim(1);
  const std::int64_t ci_h = input.dim(2), ci_w = input.dim(3);
  Tensor latest(Shape{n, ci_h, ci_w});
  const std::int64_t frame = ci_h * ci_w;
  for (std::int64_t i = 0; i < n; ++i) {
    const float* src = input.data() + ((i * s) + (s - 1)) * frame;
    std::copy(src, src + frame, latest.data() + i * frame);
  }
  return latest;
}

void add_residual_base(Tensor& result, const Tensor& latest,
                       ZipNetConfig::ResidualBase mode, int factor) {
  if (mode == ZipNetConfig::ResidualBase::kNone) return;
  const std::int64_t n = latest.dim(0);
  if (mode == ZipNetConfig::ResidualBase::kNearest) {
    // Upsample into arena scratch and fold it onto the result in place.
    Workspace& ws = Workspace::tls();
    Workspace::Scope scratch(ws);
    float* up = ws.alloc(result.size());
    upsample_nearest2d_into(latest.data(), n, latest.dim(1), latest.dim(2),
                            factor, 1.f, up);
    float* dst = result.data();
    for (std::int64_t i = 0; i < result.size(); ++i) dst[i] += up[i];
  } else {
    for (std::int64_t i = 0; i < n; ++i) {
      Tensor base = baselines::bicubic_upsample(select0(latest, i), factor);
      float* dst = result.data() + i * base.size();
      const float* src = base.data();
      for (std::int64_t j = 0; j < base.size(); ++j) dst[j] += src[j];
    }
  }
}

Tensor ZipNet::backward(const Tensor& grad_output) {
  Cache& cache = cache_slot();
  check(cache.forward_ran, "ZipNet::backward called before forward");
  const std::int64_t n = cache.input_shape.dim(0);
  check(grad_output.rank() == 3 && grad_output.dim(0) == n,
        "ZipNet::backward grad shape mismatch");

  Tensor g = final_->backward(grad_output.reshape(
      Shape{n, 1, grad_output.dim(1), grad_output.dim(2)}));

  // Gradients flowing into each x_i of the zipper chain.
  const std::size_t m = zipper_modules_.size();
  std::vector<Tensor> grad_x(m + 1);
  grad_x[m] = g;
  if (config_.skip_mode != SkipMode::kNone) {
    grad_x[0] = g;  // global skip contribution to x_0
  }

  for (std::size_t idx = m; idx >= 1; --idx) {
    // x_idx = B_idx(x_{idx-1}) [+ x_{idx-2}] — route the incoming gradient
    // through the module and along the skip.
    Tensor gi = grad_x[idx];
    check_internal(!gi.empty(), "zipper backward: missing gradient");
    const bool has_skip =
        (config_.skip_mode == SkipMode::kZipper && idx >= 2) ||
        (config_.skip_mode == SkipMode::kResidualPairs && idx >= 2 &&
         idx % 2 == 0);
    if (has_skip) {
      if (grad_x[idx - 2].empty()) {
        grad_x[idx - 2] = gi;
      } else {
        grad_x[idx - 2].add_(gi);
      }
    }
    Tensor gprev = zipper_modules_[idx - 1]->backward(gi);
    if (grad_x[idx - 1].empty()) {
      grad_x[idx - 1] = std::move(gprev);
    } else {
      grad_x[idx - 1].add_(gprev);
    }
  }

  Tensor gu = entry_->backward(grad_x[0]);

  // Un-collapse to (N, C, S, h, w) and run the 3-D stages in reverse.
  const std::int64_t s = config_.temporal_length;
  const std::int64_t ch = cache.collapsed_shape.dim(1) / s;
  Tensor g5 = gu.reshape(Shape{n, ch, s, cache.collapsed_shape.dim(2),
                               cache.collapsed_shape.dim(3)});
  for (auto it = upscale_blocks_.rbegin(); it != upscale_blocks_.rend();
       ++it) {
    g5 = (*it)->backward(g5);
  }
  Tensor grad_input = g5.reshape(cache.input_shape);

  if (config_.residual_base != ZipNetConfig::ResidualBase::kNone) {
    // Route the residual path's gradient back to the latest coarse frame:
    // nearest upsampling pools the factor² fine cells it spread over;
    // bicubic uses its exact adjoint.
    const std::int64_t n = cache.input_shape.dim(0),
                       s = cache.input_shape.dim(1);
    const std::int64_t frame =
        cache.input_shape.dim(2) * cache.input_shape.dim(3);
    Tensor pooled =
        config_.residual_base == ZipNetConfig::ResidualBase::kNearest
            ? sum_pool2d(grad_output, total_upscale())
            : Tensor();
    for (std::int64_t i = 0; i < n; ++i) {
      float* dst = grad_input.data() + ((i * s) + (s - 1)) * frame;
      if (config_.residual_base == ZipNetConfig::ResidualBase::kNearest) {
        const float* src = pooled.data() + i * frame;
        for (std::int64_t j = 0; j < frame; ++j) dst[j] += src[j];
      } else {
        Tensor coarse_grad = baselines::bicubic_upsample_adjoint(
            select0(grad_output, i), total_upscale());
        const float* src = coarse_grad.data();
        for (std::int64_t j = 0; j < frame; ++j) dst[j] += src[j];
      }
    }
  }
  return grad_input;
}

ZipNet::Cache& ZipNet::cache_slot() {
  const auto i = static_cast<std::size_t>(nn::replica::cache_index());
  check(i < cache_.size(),
        "ZipNet: replica slot not prepared (call prepare_replica_slots)");
  return cache_[i];
}

void ZipNet::prepare_replica_slots(int count) {
  if (cache_.size() < static_cast<std::size_t>(count)) {
    cache_.resize(static_cast<std::size_t>(count));
  }
  for (auto& block : upscale_blocks_) block->prepare_replica_slots(count);
  entry_->prepare_replica_slots(count);
  for (auto& module : zipper_modules_) module->prepare_replica_slots(count);
  final_->prepare_replica_slots(count);
}

void ZipNet::reduce_replica_slots(int count) {
  for (auto& block : upscale_blocks_) block->reduce_replica_slots(count);
  entry_->reduce_replica_slots(count);
  for (auto& module : zipper_modules_) module->reduce_replica_slots(count);
  final_->reduce_replica_slots(count);
}

std::vector<nn::Parameter*> ZipNet::parameters() {
  std::vector<nn::Parameter*> params;
  auto collect = [&params](nn::Layer& layer) {
    for (nn::Parameter* p : layer.parameters()) params.push_back(p);
  };
  for (auto& block : upscale_blocks_) collect(*block);
  collect(*entry_);
  for (auto& module : zipper_modules_) collect(*module);
  collect(*final_);
  return params;
}

std::vector<std::pair<std::string, Tensor*>> ZipNet::buffers() {
  std::vector<std::pair<std::string, Tensor*>> all;
  auto collect = [&all](nn::Layer& layer) {
    for (auto& buffer : layer.buffers()) all.push_back(std::move(buffer));
  };
  for (auto& block : upscale_blocks_) collect(*block);
  collect(*entry_);
  for (auto& module : zipper_modules_) collect(*module);
  collect(*final_);
  return all;
}

std::string ZipNet::name() const {
  std::ostringstream out;
  out << "ZipNet(S=" << config_.temporal_length << ", x" << total_upscale()
      << ", zipper=" << config_.zipper_modules << "x"
      << config_.zipper_channels << ")";
  return out.str();
}

}  // namespace mtsr::core
