#include "src/core/discriminator.hpp"

#include <sstream>

#include "src/common/check.hpp"
#include "src/nn/activations.hpp"
#include "src/nn/replica.hpp"
#include "src/nn/batchnorm.hpp"
#include "src/nn/conv2d.hpp"
#include "src/nn/dense.hpp"
#include "src/nn/pooling.hpp"

namespace mtsr::core {

Discriminator::Discriminator(DiscriminatorConfig config, Rng& rng)
    : config_(config) {
  check(config_.base_channels > 0, "Discriminator: bad base width");
  const std::int64_t d = config_.base_channels;
  const float alpha = config_.lrelu_alpha;

  // Six conv blocks; feature maps double every other layer (d, d, 2d, 2d,
  // 4d, 4d) and every second block halves the spatial extent.
  network_ = std::make_unique<nn::Sequential>();
  const std::int64_t widths[6] = {d, d, 2 * d, 2 * d, 4 * d, 4 * d};
  std::int64_t in_ch = 1;
  for (int i = 0; i < 6; ++i) {
    const int stride = (i % 2 == 1) ? 2 : 1;
    network_->emplace<nn::Conv2d>(in_ch, widths[i], 3, stride, 1, rng);
    network_->emplace<nn::BatchNorm>(widths[i]);
    network_->emplace<nn::LeakyReLU>(alpha);
    in_ch = widths[i];
  }
  network_->emplace<nn::GlobalAvgPool>();
  network_->emplace<nn::Dense>(4 * d, 1, rng);
  network_->emplace<nn::Sigmoid>();
}

Tensor Discriminator::forward(const Tensor& input, bool training) {
  check(input.rank() == 3, "Discriminator expects (N, H, W) input");
  const auto slot = static_cast<std::size_t>(nn::replica::cache_index());
  check(slot < input_shape_.size(),
        "Discriminator: replica slot not prepared");
  input_shape_[slot] = input.shape();
  Tensor x = input.reshape(
      Shape{input.dim(0), 1, input.dim(1), input.dim(2)});
  return network_->forward(x, training);
}

Tensor Discriminator::backward(const Tensor& grad_output) {
  const auto slot = static_cast<std::size_t>(nn::replica::cache_index());
  check(slot < input_shape_.size(),
        "Discriminator: replica slot not prepared");
  check(input_shape_[slot].rank() == 3,
        "Discriminator::backward before forward");
  Tensor g = network_->backward(grad_output);
  return g.reshape(input_shape_[slot]);
}

void Discriminator::prepare_replica_slots(int count) {
  if (input_shape_.size() < static_cast<std::size_t>(count)) {
    input_shape_.resize(static_cast<std::size_t>(count));
  }
  network_->prepare_replica_slots(count);
}

void Discriminator::reduce_replica_slots(int count) {
  network_->reduce_replica_slots(count);
}

std::vector<nn::Parameter*> Discriminator::parameters() {
  return network_->parameters();
}

std::vector<std::pair<std::string, Tensor*>> Discriminator::buffers() {
  return network_->buffers();
}

std::string Discriminator::name() const {
  std::ostringstream out;
  out << "Discriminator(VGG-6, d=" << config_.base_channels << ")";
  return out.str();
}

}  // namespace mtsr::core
