// 2-D convolution layer (im2col + GEMM implementation).
//
// Used by the discriminator's VGG blocks, the zipper convolutional blocks
// (the paper's 24-layer core operates on 2-D feature maps once temporal
// depth has been collapsed), the final convolutional blocks, and the SRCNN
// baseline.
#pragma once

#include "src/common/rng.hpp"
#include "src/common/workspace.hpp"
#include "src/nn/layer.hpp"

namespace mtsr::nn {

/// Conv2d over (N, C, H, W) inputs with zero padding.
///
/// Weight layout (out_channels, in_channels, kh, kw); optional bias per
/// output channel. Output spatial size: (H + 2p - k)/s + 1.
///
/// Workspace lifetimes: forward retains the whole-batch im2col matrix in
/// the thread's arena; backward consumes it and rewinds. Inference loops
/// that never call backward must run inside a Workspace::Scope.
class Conv2d final : public Layer {
 public:
  /// Constructs with He-normal weights and zero bias.
  Conv2d(std::int64_t in_channels, std::int64_t out_channels, int kernel,
         int stride, int padding, Rng& rng, bool bias = true);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  void prepare_replica_slots(int count) override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] std::int64_t in_channels() const { return in_channels_; }
  [[nodiscard]] std::int64_t out_channels() const { return out_channels_; }
  [[nodiscard]] int kernel() const { return kernel_; }
  [[nodiscard]] int stride() const { return stride_; }
  [[nodiscard]] int padding() const { return padding_; }
  [[nodiscard]] bool has_bias() const { return has_bias_; }
  /// Trained parameter values (read-only; used by the int8 conversion).
  [[nodiscard]] const Tensor& weight() const { return weight_.value; }
  [[nodiscard]] const Tensor& bias() const { return bias_.value; }

  /// Output spatial extent for a given input extent.
  [[nodiscard]] std::int64_t out_extent(std::int64_t in_extent) const;

 private:
  std::int64_t in_channels_;
  std::int64_t out_channels_;
  int kernel_;
  int stride_;
  int padding_;
  bool has_bias_;

  Parameter weight_;
  Parameter bias_;

  // Forward caches, one slot per replica slice (slot 0 in direct mode):
  // each concurrent slice retains its own arena-resident lowering matrix.
  struct Cache {
    Shape input_shape;
    WsMatrix cols;  // arena-resident im2col matrix (C·k·k, N·oh·ow)
  };
  std::vector<Cache> cache_{1};
  Cache& cache_slot();
};

}  // namespace mtsr::nn
