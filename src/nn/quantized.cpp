#include "src/nn/quantized.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "src/common/check.hpp"
#include "src/common/parallel.hpp"

namespace mtsr::nn {
namespace {

// Byte-typed carve from the float arena (the u8 A operand of gemm_u8s8).
std::uint8_t* ws_bytes(Workspace& ws, std::int64_t bytes) {
  return reinterpret_cast<std::uint8_t*>(ws.alloc((bytes + 3) / 4));
}

// Per-channel BN fold factors: g = γ/√(σ²+ε), shift = β − g·μ, so
// BN(y) = g·y + shift and the conv absorbs g into its weights and
// g·b + shift into its bias.
struct BnFold {
  std::vector<float> gain;   ///< per-channel weight multiplier
  std::vector<float> shift;  ///< per-channel bias offset (after gain)
};

BnFold bn_fold(const BatchNorm* bn, std::int64_t channels) {
  BnFold fold;
  fold.gain.assign(static_cast<std::size_t>(channels), 1.f);
  fold.shift.assign(static_cast<std::size_t>(channels), 0.f);
  if (bn == nullptr) return fold;
  check(bn->channels() == channels,
        "quantized: BatchNorm channel count does not match the conv");
  for (std::int64_t c = 0; c < channels; ++c) {
    const float g = bn->gamma().flat(c) /
                    std::sqrt(bn->running_var().flat(c) + bn->epsilon());
    fold.gain[static_cast<std::size_t>(c)] = g;
    fold.shift[static_cast<std::size_t>(c)] =
        bn->beta().flat(c) - g * bn->running_mean().flat(c);
  }
  return fold;
}

// Folded (W', b') for a CONV layout weight (O, per) — output channel rows.
void fold_conv(const Tensor& w, const Tensor& b, std::int64_t out_channels,
               std::int64_t per_channel, const BatchNorm* bn, Tensor& wf,
               Tensor& bf) {
  const BnFold fold = bn_fold(bn, out_channels);
  wf = Tensor(Shape{out_channels, per_channel});
  bf = Tensor(Shape{out_channels});
  for (std::int64_t o = 0; o < out_channels; ++o) {
    const float g = fold.gain[static_cast<std::size_t>(o)];
    const float* src = w.data() + o * per_channel;
    float* dst = wf.data() + o * per_channel;
    for (std::int64_t i = 0; i < per_channel; ++i) dst[i] = src[i] * g;
    bf.flat(o) = b.flat(o) * g + fold.shift[static_cast<std::size_t>(o)];
  }
}

// Folded (W', b') for a DECONV layout weight (C, O·kvol) — output channel o
// occupies the strided slices [:, o·kvol .. (o+1)·kvol).
void fold_deconv(const Tensor& w, const Tensor& b, std::int64_t in_channels,
                 std::int64_t out_channels, std::int64_t kvol,
                 const BatchNorm* bn, Tensor& wf, Tensor& bf) {
  const BnFold fold = bn_fold(bn, out_channels);
  const std::int64_t taps = out_channels * kvol;
  wf = Tensor(Shape{in_channels, taps});
  bf = Tensor(Shape{out_channels});
  for (std::int64_t ci = 0; ci < in_channels; ++ci) {
    const float* src = w.data() + ci * taps;
    float* dst = wf.data() + ci * taps;
    for (std::int64_t o = 0; o < out_channels; ++o) {
      const float g = fold.gain[static_cast<std::size_t>(o)];
      for (std::int64_t t = 0; t < kvol; ++t) {
        dst[o * kvol + t] = src[o * kvol + t] * g;
      }
    }
  }
  for (std::int64_t o = 0; o < out_channels; ++o) {
    bf.flat(o) = b.flat(o) * fold.gain[static_cast<std::size_t>(o)] +
                 fold.shift[static_cast<std::size_t>(o)];
  }
}

// In-place LeakyReLU as max(y, α·y) — the exact elementwise form of the
// fused GEMM epilogue, so float and int8 paths agree on the activation.
void apply_lrelu(Tensor& t, float alpha) {
  if (alpha == 1.f) return;
  float* p = t.data();
  parallel_for_chunks(t.size(), [&](std::int64_t b, std::int64_t e, int) {
    for (std::int64_t i = b; i < e; ++i) p[i] = std::max(p[i], p[i] * alpha);
  });
}

// Quantises + packs CONV-layout folded weights (O rows of K taps): B is the
// (K × O) transpose, per-column scales are the per-output-channel scales
// combined with the activation scale. Epilogue arrays are padded to npad so
// forward can run the GEMM over the padded destination.
void freeze_conv_core(const Tensor& wf, const Tensor& bf,
                      std::int64_t out_channels, std::int64_t k,
                      detail::QuantCore& core) {
  std::vector<std::int8_t> wq(
      static_cast<std::size_t>(out_channels * k));
  std::vector<float> scales(static_cast<std::size_t>(out_channels));
  quant::quantize_weights_per_channel(wf.data(), out_channels, k, wq.data(),
                                      scales.data(), /*mse_clip=*/true);
  std::vector<std::int8_t> bt(static_cast<std::size_t>(k * out_channels));
  for (std::int64_t o = 0; o < out_channels; ++o) {
    for (std::int64_t kk = 0; kk < k; ++kk) {
      bt[static_cast<std::size_t>(kk * out_channels + o)] =
          wq[static_cast<std::size_t>(o * k + kk)];
    }
  }
  core.packed = pack_b_s8(bt.data(), k, out_channels);
  core.col_scale.assign(static_cast<std::size_t>(core.packed.npad), 0.f);
  core.bias_pad.assign(static_cast<std::size_t>(core.packed.npad), 0.f);
  for (std::int64_t o = 0; o < out_channels; ++o) {
    core.col_scale[static_cast<std::size_t>(o)] =
        core.act.scale * scales[static_cast<std::size_t>(o)];
    core.bias_pad[static_cast<std::size_t>(o)] = bf.flat(o);
  }
  core.frozen = true;
}

// Quantises + packs DECONV-layout folded weights (C rows of O·kvol taps):
// B is the (C × taps) matrix itself, per-column scales expand the
// per-output-channel scale across that channel's kvol tap columns.
void freeze_deconv_core(const Tensor& wf, std::int64_t in_channels,
                        std::int64_t out_channels, std::int64_t kvol,
                        detail::QuantCore& core) {
  const std::int64_t taps = out_channels * kvol;
  // Rearrange to (O, C·kvol) rows so the per-channel quantiser sees each
  // output channel contiguously.
  std::vector<float> wr(static_cast<std::size_t>(out_channels * in_channels *
                                                 kvol));
  for (std::int64_t ci = 0; ci < in_channels; ++ci) {
    for (std::int64_t o = 0; o < out_channels; ++o) {
      std::memcpy(
          wr.data() + (o * in_channels + ci) * kvol,
          wf.data() + ci * taps + o * kvol,
          static_cast<std::size_t>(kvol) * sizeof(float));
    }
  }
  std::vector<std::int8_t> wq(wr.size());
  std::vector<float> scales(static_cast<std::size_t>(out_channels));
  quant::quantize_weights_per_channel(wr.data(), out_channels,
                                      in_channels * kvol, wq.data(),
                                      scales.data(), /*mse_clip=*/true);
  std::vector<std::int8_t> bt(
      static_cast<std::size_t>(in_channels * taps));
  for (std::int64_t ci = 0; ci < in_channels; ++ci) {
    for (std::int64_t o = 0; o < out_channels; ++o) {
      std::memcpy(bt.data() + ci * taps + o * kvol,
                  wq.data() + (o * in_channels + ci) * kvol,
                  static_cast<std::size_t>(kvol));
    }
  }
  core.packed = pack_b_s8(bt.data(), in_channels, taps);
  core.col_scale.assign(static_cast<std::size_t>(core.packed.npad), 0.f);
  for (std::int64_t o = 0; o < out_channels; ++o) {
    for (std::int64_t t = 0; t < kvol; ++t) {
      core.col_scale[static_cast<std::size_t>(o * kvol + t)] =
          core.act.scale * scales[static_cast<std::size_t>(o)];
    }
  }
  core.frozen = true;
}

void begin_freeze(detail::QuantCore& core, const char* who) {
  check(!core.frozen, std::string(who) + ": already frozen");
  check(core.in_range.seen,
        std::string(who) +
            ": freeze() before any forward_calibrate() pass — run at least "
            "one warm-up batch");
  core.act = quant::choose_act_quant(core.in_range);
}

// Scatters deconv GEMM output rows — one row of O·kd·kh·kw dequantised
// taps per INPUT position, row stride ld — straight into the
// (N, O, od, oh, ow) output volume. This is the row-major adjoint of
// col2vol, so the int8 deconv never materialises the (taps × M)
// transpose the float lowering layout would need. Tasks are (sample,
// output channel) pairs with disjoint output planes; the scatter order
// within a plane is fixed, so results are pool-size independent. Pass
// d = kd = stride_d = 1, pad_d = 0 for the 2-D case.
void scatter_rows_to_volume(const float* rows, std::int64_t ld,
                            std::int64_t n, std::int64_t d, std::int64_t h,
                            std::int64_t w, std::int64_t out_channels,
                            std::int64_t od, std::int64_t oh, std::int64_t ow,
                            const std::array<int, 3>& kernel,
                            const std::array<int, 3>& stride,
                            const std::array<int, 3>& padding, float* out) {
  const std::int64_t kvol =
      static_cast<std::int64_t>(kernel[0]) * kernel[1] * kernel[2];
  const std::int64_t inner = d * h * w;
  parallel_for(n * out_channels, [&](std::int64_t task) {
    const std::int64_t i = task / out_channels;
    const std::int64_t o = task % out_channels;
    float* plane = out + (i * out_channels + o) * od * oh * ow;
    std::memset(plane, 0,
                static_cast<std::size_t>(od * oh * ow) * sizeof(float));
    for (std::int64_t z = 0; z < d; ++z) {
      const std::int64_t z0 = z * stride[0] - padding[0];
      const int kz_lo = static_cast<int>(std::max<std::int64_t>(0, -z0));
      const int kz_hi =
          static_cast<int>(std::min<std::int64_t>(kernel[0], od - z0));
      for (std::int64_t y = 0; y < h; ++y) {
        const std::int64_t y0 = y * stride[1] - padding[1];
        const int ky_lo = static_cast<int>(std::max<std::int64_t>(0, -y0));
        const int ky_hi =
            static_cast<int>(std::min<std::int64_t>(kernel[1], oh - y0));
        for (std::int64_t x = 0; x < w; ++x) {
          const std::int64_t x0 = x * stride[2] - padding[2];
          const int kx_lo = static_cast<int>(std::max<std::int64_t>(0, -x0));
          const int kx_hi =
              static_cast<int>(std::min<std::int64_t>(kernel[2], ow - x0));
          const float* taps =
              rows + (i * inner + (z * h + y) * w + x) * ld + o * kvol;
          for (int kz = kz_lo; kz < kz_hi; ++kz) {
            for (int ky = ky_lo; ky < ky_hi; ++ky) {
              float* orow =
                  plane + ((z0 + kz) * oh + (y0 + ky)) * ow + x0;
              const float* trow = taps + (kz * kernel[1] + ky) * kernel[2];
              for (int kx = kx_lo; kx < kx_hi; ++kx) orow[kx] += trow[kx];
            }
          }
        }
      }
    }
  });
}

// CONV epilogue output (M × npad row stride, sample-major rows) →
// (N, O, inner) batch: a strided per-sample transpose.
void rows_to_batch(const float* cf, std::int64_t ld, std::int64_t n,
                   std::int64_t inner, std::int64_t out_channels,
                   float* dst) {
  for (std::int64_t i = 0; i < n; ++i) {
    const float* src = cf + i * inner * ld;
    float* out = dst + i * out_channels * inner;
    parallel_for_grain(inner, 256,
                       [&](std::int64_t p0, std::int64_t p1, int) {
      constexpr std::int64_t kTile = 32;
      for (std::int64_t pt = p0; pt < p1; pt += kTile) {
        const std::int64_t pmax = std::min(p1, pt + kTile);
        for (std::int64_t o = 0; o < out_channels; ++o) {
          float* orow = out + o * inner;
          for (std::int64_t pos = pt; pos < pmax; ++pos) {
            orow[pos] = src[pos * ld + o];
          }
        }
      }
    });
  }
}

}  // namespace

// ---- QuantConv2d -----------------------------------------------------------

QuantConv2d::QuantConv2d(const Conv2d& conv, const BatchNorm* bn,
                         float lrelu_alpha)
    : in_channels_(conv.in_channels()),
      out_channels_(conv.out_channels()),
      kernel_(conv.kernel()),
      stride_(conv.stride()),
      padding_(conv.padding()),
      alpha_(lrelu_alpha) {
  const std::int64_t k = in_channels_ * kernel_ * kernel_;
  fold_conv(conv.weight(), conv.bias(), out_channels_, k, bn, wf_, bf_);
}

Tensor QuantConv2d::forward_calibrate(const Tensor& input) {
  check(!core_.frozen, "QuantConv2d: forward_calibrate after freeze");
  check(input.rank() == 4 && input.dim(1) == in_channels_,
        "QuantConv2d: bad input shape");
  core_.in_range.observe(input);
  const std::int64_t n = input.dim(0), h = input.dim(2), w = input.dim(3);
  const std::int64_t oh = (h + 2 * padding_ - kernel_) / stride_ + 1;
  const std::int64_t ow = (w + 2 * padding_ - kernel_) / stride_ + 1;
  const std::int64_t k = in_channels_ * kernel_ * kernel_;
  const std::int64_t m = n * oh * ow;
  Workspace& ws = Workspace::tls();
  Workspace::Scope scope(ws);
  float* cols = ws.alloc(k * m);
  im2col_batched_into(input.data(), n, in_channels_, h, w, kernel_, kernel_,
                      stride_, stride_, padding_, padding_, cols);
  float* y = ws.alloc(out_channels_ * m);
  matmul_into(wf_.data(), cols, y, out_channels_, k, m);
  Tensor output(Shape{n, out_channels_, oh, ow});
  channel_major_to_batch_into(y, n, out_channels_, oh * ow, output.data());
  add_channel_bias(output, bf_);
  apply_lrelu(output, alpha_);
  return output;
}

void QuantConv2d::freeze() {
  begin_freeze(core_, "QuantConv2d");
  freeze_conv_core(wf_, bf_, out_channels_,
                   in_channels_ * kernel_ * kernel_, core_);
  wf_ = Tensor();  // weights live on as packed s8 only
}

Tensor QuantConv2d::forward(const Tensor& input) const {
  check(core_.frozen, "QuantConv2d::forward before freeze()");
  check(input.rank() == 4 && input.dim(1) == in_channels_,
        "QuantConv2d: bad input shape");
  const std::int64_t n = input.dim(0), h = input.dim(2), w = input.dim(3);
  const std::int64_t oh = (h + 2 * padding_ - kernel_) / stride_ + 1;
  const std::int64_t ow = (w + 2 * padding_ - kernel_) / stride_ + 1;
  check(oh > 0 && ow > 0, "QuantConv2d: output would be empty");
  const std::int64_t k = in_channels_ * kernel_ * kernel_;
  const std::int64_t m = n * oh * ow;
  const std::int64_t kpad = core_.packed.kpad();
  const std::int64_t npad = core_.packed.npad;
  Tensor output(Shape{n, out_channels_, oh, ow});
  Workspace& ws = Workspace::tls();
  Workspace::Scope scope(ws);
  // Quantise the small input image once, then lower BYTES: the k²-fold
  // im2col duplication moves 4x less memory than the float path and the
  // A-operand transpose becomes a byte transpose.
  std::uint8_t* qin = ws_bytes(ws, input.size());
  quant::quantize_u8(input.data(), input.size(), core_.act, qin);
  std::uint8_t* qcols = ws_bytes(ws, k * m);
  im2col_batched_u8_into(qin, n, in_channels_, h, w, kernel_, kernel_,
                         stride_, stride_, padding_, padding_,
                         static_cast<std::uint8_t>(core_.act.zero_point),
                         qcols);
  std::uint8_t* aq = ws_bytes(ws, m * kpad);
  transpose_u8_into(qcols, k, m, aq, kpad);
  float* cf = ws.alloc(m * npad);
  const QuantEpilogue ep{core_.col_scale.data(), core_.act.zero_point,
                         core_.bias_pad.data(), alpha_};
  gemm_u8s8(aq, kpad, core_.packed, m, ep, cf, npad);
  rows_to_batch(cf, npad, n, oh * ow, out_channels_, output.data());
  return output;
}

// ---- QuantConv3d -----------------------------------------------------------

QuantConv3d::QuantConv3d(const Conv3d& conv, const BatchNorm* bn,
                         float lrelu_alpha)
    : in_channels_(conv.in_channels()),
      out_channels_(conv.out_channels()),
      kernel_(conv.kernel()),
      stride_(conv.stride()),
      padding_(conv.padding()),
      alpha_(lrelu_alpha) {
  const std::int64_t k =
      in_channels_ * kernel_[0] * kernel_[1] * kernel_[2];
  fold_conv(conv.weight(), conv.bias(), out_channels_, k, bn, wf_, bf_);
}

Tensor QuantConv3d::forward_calibrate(const Tensor& input) {
  check(!core_.frozen, "QuantConv3d: forward_calibrate after freeze");
  check(input.rank() == 5 && input.dim(1) == in_channels_,
        "QuantConv3d: bad input shape");
  core_.in_range.observe(input);
  const std::int64_t n = input.dim(0), d = input.dim(2), h = input.dim(3),
                     w = input.dim(4);
  const std::int64_t od = (d + 2 * padding_[0] - kernel_[0]) / stride_[0] + 1;
  const std::int64_t oh = (h + 2 * padding_[1] - kernel_[1]) / stride_[1] + 1;
  const std::int64_t ow = (w + 2 * padding_[2] - kernel_[2]) / stride_[2] + 1;
  const std::int64_t k =
      in_channels_ * kernel_[0] * kernel_[1] * kernel_[2];
  const std::int64_t m = n * od * oh * ow;
  Workspace& ws = Workspace::tls();
  Workspace::Scope scope(ws);
  float* cols = ws.alloc(k * m);
  vol2col_batched_into(input.data(), n, in_channels_, d, h, w, kernel_[0],
                       kernel_[1], kernel_[2], stride_[0], stride_[1],
                       stride_[2], padding_[0], padding_[1], padding_[2],
                       cols);
  float* y = ws.alloc(out_channels_ * m);
  matmul_into(wf_.data(), cols, y, out_channels_, k, m);
  Tensor output(Shape{n, out_channels_, od, oh, ow});
  channel_major_to_batch_into(y, n, out_channels_, od * oh * ow,
                              output.data());
  add_channel_bias(output, bf_);
  apply_lrelu(output, alpha_);
  return output;
}

void QuantConv3d::freeze() {
  begin_freeze(core_, "QuantConv3d");
  freeze_conv_core(wf_, bf_, out_channels_,
                   in_channels_ * kernel_[0] * kernel_[1] * kernel_[2],
                   core_);
  wf_ = Tensor();
}

Tensor QuantConv3d::forward(const Tensor& input) const {
  check(core_.frozen, "QuantConv3d::forward before freeze()");
  check(input.rank() == 5 && input.dim(1) == in_channels_,
        "QuantConv3d: bad input shape");
  const std::int64_t n = input.dim(0), d = input.dim(2), h = input.dim(3),
                     w = input.dim(4);
  const std::int64_t od = (d + 2 * padding_[0] - kernel_[0]) / stride_[0] + 1;
  const std::int64_t oh = (h + 2 * padding_[1] - kernel_[1]) / stride_[1] + 1;
  const std::int64_t ow = (w + 2 * padding_[2] - kernel_[2]) / stride_[2] + 1;
  check(od > 0 && oh > 0 && ow > 0, "QuantConv3d: output would be empty");
  const std::int64_t k =
      in_channels_ * kernel_[0] * kernel_[1] * kernel_[2];
  const std::int64_t m = n * od * oh * ow;
  const std::int64_t kpad = core_.packed.kpad();
  const std::int64_t npad = core_.packed.npad;
  Tensor output(Shape{n, out_channels_, od, oh, ow});
  Workspace& ws = Workspace::tls();
  Workspace::Scope scope(ws);
  std::uint8_t* qin = ws_bytes(ws, input.size());
  quant::quantize_u8(input.data(), input.size(), core_.act, qin);
  std::uint8_t* qcols = ws_bytes(ws, k * m);
  vol2col_batched_u8_into(qin, n, in_channels_, d, h, w, kernel_[0],
                          kernel_[1], kernel_[2], stride_[0], stride_[1],
                          stride_[2], padding_[0], padding_[1], padding_[2],
                          static_cast<std::uint8_t>(core_.act.zero_point),
                          qcols);
  std::uint8_t* aq = ws_bytes(ws, m * kpad);
  transpose_u8_into(qcols, k, m, aq, kpad);
  float* cf = ws.alloc(m * npad);
  const QuantEpilogue ep{core_.col_scale.data(), core_.act.zero_point,
                         core_.bias_pad.data(), alpha_};
  gemm_u8s8(aq, kpad, core_.packed, m, ep, cf, npad);
  rows_to_batch(cf, npad, n, od * oh * ow, out_channels_, output.data());
  return output;
}

// ---- QuantConvTranspose2d --------------------------------------------------

QuantConvTranspose2d::QuantConvTranspose2d(const ConvTranspose2d& deconv,
                                           const BatchNorm* bn,
                                           float lrelu_alpha)
    : in_channels_(deconv.in_channels()),
      out_channels_(deconv.out_channels()),
      kernel_(deconv.kernel()),
      stride_(deconv.stride()),
      padding_(deconv.padding()),
      alpha_(lrelu_alpha) {
  fold_deconv(deconv.weight(), deconv.bias(), in_channels_, out_channels_,
              static_cast<std::int64_t>(kernel_) * kernel_, bn, wf_, bf_);
}

Tensor QuantConvTranspose2d::forward_calibrate(const Tensor& input) {
  check(!core_.frozen, "QuantConvTranspose2d: forward_calibrate after freeze");
  check(input.rank() == 4 && input.dim(1) == in_channels_,
        "QuantConvTranspose2d: bad input shape");
  core_.in_range.observe(input);
  const std::int64_t n = input.dim(0), h = input.dim(2), w = input.dim(3);
  const std::int64_t oh = (h - 1) * stride_ - 2 * padding_ + kernel_;
  const std::int64_t ow = (w - 1) * stride_ - 2 * padding_ + kernel_;
  const std::int64_t taps = out_channels_ * kernel_ * kernel_;
  const std::int64_t m = n * h * w;
  Workspace& ws = Workspace::tls();
  Workspace::Scope scope(ws);
  float* x_cm = ws.alloc(in_channels_ * m);
  batch_to_channel_major_into(input.data(), n, in_channels_, h * w, x_cm);
  float* cols = ws.alloc(taps * m);
  matmul_tn_into(wf_.data(), x_cm, cols, in_channels_, taps, m);
  Tensor output(Shape{n, out_channels_, oh, ow});
  col2im_batched_into(cols, n, out_channels_, oh, ow, kernel_, kernel_,
                      stride_, stride_, padding_, padding_, output.data());
  add_channel_bias(output, bf_);
  apply_lrelu(output, alpha_);
  return output;
}

void QuantConvTranspose2d::freeze() {
  begin_freeze(core_, "QuantConvTranspose2d");
  freeze_deconv_core(wf_, in_channels_, out_channels_,
                     static_cast<std::int64_t>(kernel_) * kernel_, core_);
  wf_ = Tensor();
}

Tensor QuantConvTranspose2d::forward(const Tensor& input) const {
  check(core_.frozen, "QuantConvTranspose2d::forward before freeze()");
  check(input.rank() == 4 && input.dim(1) == in_channels_,
        "QuantConvTranspose2d: bad input shape");
  const std::int64_t n = input.dim(0), h = input.dim(2), w = input.dim(3);
  const std::int64_t oh = (h - 1) * stride_ - 2 * padding_ + kernel_;
  const std::int64_t ow = (w - 1) * stride_ - 2 * padding_ + kernel_;
  check(oh > 0 && ow > 0, "QuantConvTranspose2d: output would be empty");
  const std::int64_t m = n * h * w;
  const std::int64_t kpad = core_.packed.kpad();
  const std::int64_t npad = core_.packed.npad;
  Tensor output(Shape{n, out_channels_, oh, ow});
  Workspace& ws = Workspace::tls();
  Workspace::Scope scope(ws);
  std::uint8_t* aq = ws_bytes(ws, m * kpad);
  quant::quantize_batch_transpose_u8(input.data(), n, in_channels_, h * w,
                                     core_.act, aq, kpad);
  float* cf = ws.alloc(m * npad);
  const QuantEpilogue ep{core_.col_scale.data(), core_.act.zero_point,
                         nullptr, 1.f};
  gemm_u8s8(aq, kpad, core_.packed, m, ep, cf, npad);
  scatter_rows_to_volume(cf, npad, n, 1, h, w, out_channels_, 1, oh, ow,
                         {1, kernel_, kernel_}, {1, stride_, stride_},
                         {0, padding_, padding_}, output.data());
  add_channel_bias(output, bf_);
  apply_lrelu(output, alpha_);
  return output;
}

// ---- QuantConvTranspose3d --------------------------------------------------

QuantConvTranspose3d::QuantConvTranspose3d(const ConvTranspose3d& deconv,
                                           const BatchNorm* bn,
                                           float lrelu_alpha)
    : in_channels_(deconv.in_channels()),
      out_channels_(deconv.out_channels()),
      kernel_(deconv.kernel()),
      stride_(deconv.stride()),
      padding_(deconv.padding()),
      alpha_(lrelu_alpha) {
  fold_deconv(deconv.weight(), deconv.bias(), in_channels_, out_channels_,
              static_cast<std::int64_t>(kernel_[0]) * kernel_[1] * kernel_[2],
              bn, wf_, bf_);
}

Tensor QuantConvTranspose3d::forward_calibrate(const Tensor& input) {
  check(!core_.frozen, "QuantConvTranspose3d: forward_calibrate after freeze");
  check(input.rank() == 5 && input.dim(1) == in_channels_,
        "QuantConvTranspose3d: bad input shape");
  core_.in_range.observe(input);
  const std::int64_t n = input.dim(0), d = input.dim(2), h = input.dim(3),
                     w = input.dim(4);
  const std::int64_t od = (d - 1) * stride_[0] - 2 * padding_[0] + kernel_[0];
  const std::int64_t oh = (h - 1) * stride_[1] - 2 * padding_[1] + kernel_[1];
  const std::int64_t ow = (w - 1) * stride_[2] - 2 * padding_[2] + kernel_[2];
  const std::int64_t taps =
      out_channels_ * kernel_[0] * kernel_[1] * kernel_[2];
  const std::int64_t m = n * d * h * w;
  Workspace& ws = Workspace::tls();
  Workspace::Scope scope(ws);
  float* x_cm = ws.alloc(in_channels_ * m);
  batch_to_channel_major_into(input.data(), n, in_channels_, d * h * w, x_cm);
  float* cols = ws.alloc(taps * m);
  matmul_tn_into(wf_.data(), x_cm, cols, in_channels_, taps, m);
  Tensor output(Shape{n, out_channels_, od, oh, ow});
  col2vol_batched_into(cols, n, out_channels_, od, oh, ow, kernel_[0],
                       kernel_[1], kernel_[2], stride_[0], stride_[1],
                       stride_[2], padding_[0], padding_[1], padding_[2],
                       output.data());
  add_channel_bias(output, bf_);
  apply_lrelu(output, alpha_);
  return output;
}

void QuantConvTranspose3d::freeze() {
  begin_freeze(core_, "QuantConvTranspose3d");
  freeze_deconv_core(
      wf_, in_channels_, out_channels_,
      static_cast<std::int64_t>(kernel_[0]) * kernel_[1] * kernel_[2], core_);
  wf_ = Tensor();
}

Tensor QuantConvTranspose3d::forward(const Tensor& input) const {
  check(core_.frozen, "QuantConvTranspose3d::forward before freeze()");
  check(input.rank() == 5 && input.dim(1) == in_channels_,
        "QuantConvTranspose3d: bad input shape");
  const std::int64_t n = input.dim(0), d = input.dim(2), h = input.dim(3),
                     w = input.dim(4);
  const std::int64_t od = (d - 1) * stride_[0] - 2 * padding_[0] + kernel_[0];
  const std::int64_t oh = (h - 1) * stride_[1] - 2 * padding_[1] + kernel_[1];
  const std::int64_t ow = (w - 1) * stride_[2] - 2 * padding_[2] + kernel_[2];
  check(od > 0 && oh > 0 && ow > 0,
        "QuantConvTranspose3d: output would be empty");
  const std::int64_t m = n * d * h * w;
  const std::int64_t kpad = core_.packed.kpad();
  const std::int64_t npad = core_.packed.npad;
  Tensor output(Shape{n, out_channels_, od, oh, ow});
  Workspace& ws = Workspace::tls();
  Workspace::Scope scope(ws);
  std::uint8_t* aq = ws_bytes(ws, m * kpad);
  quant::quantize_batch_transpose_u8(input.data(), n, in_channels_, d * h * w,
                                     core_.act, aq, kpad);
  float* cf = ws.alloc(m * npad);
  const QuantEpilogue ep{core_.col_scale.data(), core_.act.zero_point,
                         nullptr, 1.f};
  gemm_u8s8(aq, kpad, core_.packed, m, ep, cf, npad);
  scatter_rows_to_volume(cf, npad, n, d, h, w, out_channels_, od, oh, ow,
                         kernel_, stride_, padding_, output.data());
  add_channel_bias(output, bf_);
  apply_lrelu(output, alpha_);
  return output;
}

// ---- QuantDense ------------------------------------------------------------

QuantDense::QuantDense(const Dense& dense, float lrelu_alpha)
    : in_features_(dense.in_features()),
      out_features_(dense.out_features()),
      alpha_(lrelu_alpha) {
  wf_ = dense.weight();
  bf_ = dense.bias();
}

Tensor QuantDense::forward_calibrate(const Tensor& input) {
  check(!core_.frozen, "QuantDense: forward_calibrate after freeze");
  check(input.rank() == 2 && input.dim(1) == in_features_,
        "QuantDense: bad input shape");
  core_.in_range.observe(input);
  const std::int64_t n = input.dim(0);
  Tensor output(Shape{n, out_features_});
  matmul_nt_into(input.data(), wf_.data(), output.data(), n, in_features_,
                 out_features_);
  float* py = output.data();
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t o = 0; o < out_features_; ++o) {
      py[i * out_features_ + o] += bf_.flat(o);
    }
  }
  apply_lrelu(output, alpha_);
  return output;
}

void QuantDense::freeze() {
  begin_freeze(core_, "QuantDense");
  freeze_conv_core(wf_, bf_, out_features_, in_features_, core_);
  wf_ = Tensor();
}

Tensor QuantDense::forward(const Tensor& input) const {
  check(core_.frozen, "QuantDense::forward before freeze()");
  check(input.rank() == 2 && input.dim(1) == in_features_,
        "QuantDense: bad input shape");
  const std::int64_t n = input.dim(0);
  const std::int64_t kpad = core_.packed.kpad();
  const std::int64_t npad = core_.packed.npad;
  Tensor output(Shape{n, out_features_});
  Workspace& ws = Workspace::tls();
  Workspace::Scope scope(ws);
  std::uint8_t* aq = ws_bytes(ws, n * kpad);
  // Rows are already k-major. When no k-pad is needed the whole batch is
  // one contiguous quantise; otherwise one parallel pass handles the
  // per-row quantise + tail zeroing (not one pool dispatch per row).
  if (kpad == in_features_) {
    quant::quantize_u8(input.data(), n * in_features_, core_.act, aq);
  } else {
    const float* px = input.data();
    parallel_for(n, [&](std::int64_t i) {
      std::uint8_t* row = aq + i * kpad;
      for (std::int64_t j = 0; j < in_features_; ++j) {
        row[j] = quant::quantize_value(px[i * in_features_ + j], core_.act);
      }
      std::memset(row + in_features_, 0,
                  static_cast<std::size_t>(kpad - in_features_));
    });
  }
  float* cf = ws.alloc(n * npad);
  const QuantEpilogue ep{core_.col_scale.data(), core_.act.zero_point,
                         core_.bias_pad.data(), alpha_};
  gemm_u8s8(aq, kpad, core_.packed, n, ep, cf, npad);
  for (std::int64_t i = 0; i < n; ++i) {
    std::memcpy(output.data() + i * out_features_, cf + i * npad,
                static_cast<std::size_t>(out_features_) * sizeof(float));
  }
  return output;
}

}  // namespace mtsr::nn
