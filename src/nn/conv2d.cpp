#include "src/nn/conv2d.hpp"

#include <sstream>

#include "src/common/check.hpp"
#include "src/nn/init.hpp"
#include "src/tensor/tensor_ops.hpp"

namespace mtsr::nn {

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels,
               int kernel, int stride, int padding, Rng& rng, bool bias)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      has_bias_(bias),
      weight_("weight",
              he_normal(Shape{out_channels, in_channels, kernel, kernel},
                        in_channels * kernel * kernel, rng)),
      bias_("bias", Tensor::zeros(Shape{out_channels})) {
  check(in_channels > 0 && out_channels > 0, "Conv2d requires positive channels");
  check(kernel > 0 && stride > 0 && padding >= 0, "Conv2d bad hyper-parameters");
}

std::int64_t Conv2d::out_extent(std::int64_t in_extent) const {
  return (in_extent + 2 * padding_ - kernel_) / stride_ + 1;
}

Tensor Conv2d::forward(const Tensor& input, bool /*training*/) {
  check(input.rank() == 4, "Conv2d expects (N, C, H, W) input");
  check(input.dim(1) == in_channels_, "Conv2d input channel mismatch");
  const std::int64_t n = input.dim(0), h = input.dim(2), w = input.dim(3);
  const std::int64_t oh = out_extent(h), ow = out_extent(w);
  check(oh > 0 && ow > 0, "Conv2d output would be empty");

  input_shape_ = input.shape();
  // Whole-batch lowering into the arena: one (C·k·k, N·oh·ow) matrix, one
  // GEMM per step. The matrix is retained until backward rewinds it.
  Workspace& ws = Workspace::tls();
  cols_ = ws_matrix(ws, in_channels_ * kernel_ * kernel_, n * oh * ow);
  im2col_batched_into(input.data(), n, in_channels_, h, w, kernel_, kernel_,
                      stride_, stride_, padding_, padding_, cols_.data);

  Tensor output(Shape{n, out_channels_, oh, ow});
  {
    Workspace::Scope scratch(ws);
    float* y = ws.alloc(out_channels_ * cols_.cols);  // (O, N*oh*ow)
    matmul_into(weight_.value.data(), cols_.data, y, out_channels_,
                cols_.rows, cols_.cols);
    channel_major_to_batch_into(y, n, out_channels_, oh * ow, output.data());
  }
  if (has_bias_) add_channel_bias(output, bias_.value);
  return output;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  Workspace& ws = Workspace::tls();
  check(!cols_.empty() && ws.alive(cols_.end),
        "Conv2d::backward called before forward (or forward's workspace "
        "scope was rewound)");
  check(grad_output.rank() == 4 && grad_output.dim(1) == out_channels_,
        "Conv2d::backward grad shape mismatch");
  const std::int64_t n = input_shape_.dim(0);
  const std::int64_t h = input_shape_.dim(2), w = input_shape_.dim(3);
  const std::int64_t oh = grad_output.dim(2), ow = grad_output.dim(3);
  check(grad_output.dim(0) == n && n * oh * ow == cols_.cols,
        "Conv2d::backward grad geometry does not match forward");
  Tensor grad_input(input_shape_);
  {
    Workspace::Scope scratch(ws);
    // Channel-major view of the output gradient: (O, N*oh*ow).
    float* dy = ws.alloc(out_channels_ * cols_.cols);
    batch_to_channel_major_into(grad_output.data(), n, out_channels_,
                                oh * ow, dy);

    // Parameter gradients: dW accumulates straight into the grad buffer
    // (one GEMM), db is the per-channel sum reduction.
    matmul_nt_into(dy, cols_.data, weight_.grad.data(), out_channels_,
                   cols_.cols, cols_.rows, /*accumulate=*/true);
    if (has_bias_) accumulate_channel_sums(grad_output, bias_.grad);

    // Input gradient: one GEMM, then the batched col2im scatter.
    float* dcols = ws.alloc(cols_.rows * cols_.cols);  // (C*k*k, N*oh*ow)
    matmul_tn_into(weight_.value.data(), dy, dcols, out_channels_, cols_.rows,
                   cols_.cols);
    col2im_batched_into(dcols, n, in_channels_, h, w, kernel_, kernel_,
                        stride_, stride_, padding_, padding_,
                        grad_input.data());
  }
  // The lowering matrix is dead: rewind its arena slice (LIFO — everything
  // allocated after it in this layer's forward is already gone).
  ws.rewind(cols_.mark);
  cols_ = WsMatrix{};
  return grad_input;
}

std::vector<Parameter*> Conv2d::parameters() {
  if (has_bias_) return {&weight_, &bias_};
  return {&weight_};
}

std::string Conv2d::name() const {
  std::ostringstream out;
  out << "Conv2d(" << in_channels_ << "->" << out_channels_ << ", "
      << kernel_ << "x" << kernel_ << ", s" << stride_ << ", p" << padding_
      << ")";
  return out.str();
}

}  // namespace mtsr::nn
