#include "src/nn/conv2d.hpp"

#include <sstream>

#include "src/common/check.hpp"
#include "src/nn/init.hpp"
#include "src/nn/replica.hpp"
#include "src/tensor/tensor_ops.hpp"

namespace mtsr::nn {

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels,
               int kernel, int stride, int padding, Rng& rng, bool bias)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      has_bias_(bias),
      weight_("weight",
              he_normal(Shape{out_channels, in_channels, kernel, kernel},
                        in_channels * kernel * kernel, rng)),
      bias_("bias", Tensor::zeros(Shape{out_channels})) {
  check(in_channels > 0 && out_channels > 0, "Conv2d requires positive channels");
  check(kernel > 0 && stride > 0 && padding >= 0, "Conv2d bad hyper-parameters");
}

std::int64_t Conv2d::out_extent(std::int64_t in_extent) const {
  return (in_extent + 2 * padding_ - kernel_) / stride_ + 1;
}

Tensor Conv2d::forward(const Tensor& input, bool /*training*/) {
  check(input.rank() == 4, "Conv2d expects (N, C, H, W) input");
  check(input.dim(1) == in_channels_, "Conv2d input channel mismatch");
  const std::int64_t n = input.dim(0), h = input.dim(2), w = input.dim(3);
  const std::int64_t oh = out_extent(h), ow = out_extent(w);
  check(oh > 0 && ow > 0, "Conv2d output would be empty");

  Cache& c = cache_slot();
  c.input_shape = input.shape();
  // Whole-batch lowering into the arena: one (C·k·k, N·oh·ow) matrix, one
  // GEMM per step. The matrix is retained until backward rewinds it.
  Workspace& ws = Workspace::tls();
  c.cols = ws_matrix(ws, in_channels_ * kernel_ * kernel_, n * oh * ow);
  im2col_batched_into(input.data(), n, in_channels_, h, w, kernel_, kernel_,
                      stride_, stride_, padding_, padding_, c.cols.data);

  Tensor output(Shape{n, out_channels_, oh, ow});
  {
    Workspace::Scope scratch(ws);
    float* y = ws.alloc(out_channels_ * c.cols.cols);  // (O, N*oh*ow)
    matmul_into(weight_.value.data(), c.cols.data, y, out_channels_,
                c.cols.rows, c.cols.cols);
    channel_major_to_batch_into(y, n, out_channels_, oh * ow, output.data());
  }
  if (has_bias_) add_channel_bias(output, bias_.value);
  return output;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  Workspace& ws = Workspace::tls();
  Cache& c = cache_slot();
  check(!c.cols.empty() && ws.alive(c.cols.end),
        "Conv2d::backward called before forward (or forward's workspace "
        "scope was rewound)");
  check(grad_output.rank() == 4 && grad_output.dim(1) == out_channels_,
        "Conv2d::backward grad shape mismatch");
  const std::int64_t n = c.input_shape.dim(0);
  const std::int64_t h = c.input_shape.dim(2), w = c.input_shape.dim(3);
  const std::int64_t oh = grad_output.dim(2), ow = grad_output.dim(3);
  check(grad_output.dim(0) == n && n * oh * ow == c.cols.cols,
        "Conv2d::backward grad geometry does not match forward");
  Tensor grad_input(c.input_shape);
  {
    Workspace::Scope scratch(ws);
    // Channel-major view of the output gradient: (O, N*oh*ow).
    float* dy = ws.alloc(out_channels_ * c.cols.cols);
    batch_to_channel_major_into(grad_output.data(), n, out_channels_,
                                oh * ow, dy);

    // Parameter gradients: dW accumulates straight into the active grad
    // buffer (one GEMM) — this slice's private slot inside a replicated
    // step — db is the per-channel sum reduction.
    matmul_nt_into(dy, c.cols.data, weight_.active_grad().data(),
                   out_channels_, c.cols.cols, c.cols.rows,
                   /*accumulate=*/true);
    if (has_bias_) accumulate_channel_sums(grad_output, bias_.active_grad());

    // Input gradient: one GEMM, then the batched col2im scatter.
    float* dcols = ws.alloc(c.cols.rows * c.cols.cols);  // (C*k*k, N*oh*ow)
    matmul_tn_into(weight_.value.data(), dy, dcols, out_channels_,
                   c.cols.rows, c.cols.cols);
    col2im_batched_into(dcols, n, in_channels_, h, w, kernel_, kernel_,
                        stride_, stride_, padding_, padding_,
                        grad_input.data());
  }
  // The lowering matrix is dead: rewind its arena slice (LIFO — everything
  // allocated after it in this layer's forward is already gone).
  ws.rewind(c.cols.mark);
  c.cols = WsMatrix{};
  return grad_input;
}

std::vector<Parameter*> Conv2d::parameters() {
  if (has_bias_) return {&weight_, &bias_};
  return {&weight_};
}

Conv2d::Cache& Conv2d::cache_slot() {
  const auto i = static_cast<std::size_t>(replica::cache_index());
  check(i < cache_.size(),
        "Conv2d: replica slot not prepared (call prepare_replica_slots)");
  return cache_[i];
}

void Conv2d::prepare_replica_slots(int count) {
  Layer::prepare_replica_slots(count);
  if (cache_.size() < static_cast<std::size_t>(count)) {
    cache_.resize(static_cast<std::size_t>(count));
  }
}

std::string Conv2d::name() const {
  std::ostringstream out;
  out << "Conv2d(" << in_channels_ << "->" << out_channels_ << ", "
      << kernel_ << "x" << kernel_ << ", s" << stride_ << ", p" << padding_
      << ")";
  return out.str();
}

}  // namespace mtsr::nn
