#include "src/nn/conv2d.hpp"

#include <sstream>
#include <thread>

#include "src/common/check.hpp"
#include "src/nn/init.hpp"
#include "src/tensor/tensor_ops.hpp"

namespace mtsr::nn {
namespace {

/// Runs fn(i) for i in [0, n), split across at most two worker threads
/// (deterministic: each index is processed exactly once, writes are
/// disjoint per index). Falls back to serial execution for small batches.
template <typename Fn>
void parallel_batch(std::int64_t n, const Fn& fn) {
  const unsigned hw = std::thread::hardware_concurrency();
  if (n < 4 || hw < 2) {
    for (std::int64_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const std::int64_t mid = n / 2;
  std::thread worker([&] {
    for (std::int64_t i = mid; i < n; ++i) fn(i);
  });
  for (std::int64_t i = 0; i < mid; ++i) fn(i);
  worker.join();
}

}  // namespace

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels,
               int kernel, int stride, int padding, Rng& rng, bool bias)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      has_bias_(bias),
      weight_("weight",
              he_normal(Shape{out_channels, in_channels, kernel, kernel},
                        in_channels * kernel * kernel, rng)),
      bias_("bias", Tensor::zeros(Shape{out_channels})) {
  check(in_channels > 0 && out_channels > 0, "Conv2d requires positive channels");
  check(kernel > 0 && stride > 0 && padding >= 0, "Conv2d bad hyper-parameters");
}

std::int64_t Conv2d::out_extent(std::int64_t in_extent) const {
  return (in_extent + 2 * padding_ - kernel_) / stride_ + 1;
}

Tensor Conv2d::forward(const Tensor& input, bool /*training*/) {
  check(input.rank() == 4, "Conv2d expects (N, C, H, W) input");
  check(input.dim(1) == in_channels_, "Conv2d input channel mismatch");
  const std::int64_t n = input.dim(0), h = input.dim(2), w = input.dim(3);
  const std::int64_t oh = out_extent(h), ow = out_extent(w);
  check(oh > 0 && ow > 0, "Conv2d output would be empty");

  input_shape_ = input.shape();
  columns_.clear();
  columns_.reserve(static_cast<std::size_t>(n));

  const Tensor w_mat = weight_.value.reshape(
      Shape{out_channels_, in_channels_ * kernel_ * kernel_});

  Tensor output(Shape{n, out_channels_, oh, ow});
  const std::int64_t out_chunk = out_channels_ * oh * ow;
  columns_.resize(static_cast<std::size_t>(n));
  parallel_batch(n, [&](std::int64_t i) {
    Tensor sample = select0(input, i);  // (C, H, W)
    Tensor cols = im2col(sample, kernel_, kernel_, stride_, stride_,
                         padding_, padding_);
    Tensor y = matmul(w_mat, cols);  // (O, oh*ow)
    float* dst = output.data() + i * out_chunk;
    const float* src = y.data();
    for (std::int64_t o = 0; o < out_channels_; ++o) {
      const float b = has_bias_ ? bias_.value.flat(o) : 0.f;
      for (std::int64_t p = 0; p < oh * ow; ++p) {
        dst[o * oh * ow + p] = src[o * oh * ow + p] + b;
      }
    }
    columns_[static_cast<std::size_t>(i)] = std::move(cols);
  });
  return output;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  check(!columns_.empty(), "Conv2d::backward called before forward");
  check(grad_output.rank() == 4 && grad_output.dim(1) == out_channels_,
        "Conv2d::backward grad shape mismatch");
  const std::int64_t n = input_shape_.dim(0);
  const std::int64_t h = input_shape_.dim(2), w = input_shape_.dim(3);
  const std::int64_t oh = grad_output.dim(2), ow = grad_output.dim(3);

  const Tensor w_mat = weight_.value.reshape(
      Shape{out_channels_, in_channels_ * kernel_ * kernel_});

  // Two thread-local accumulators (parallel_batch splits the batch into two
  // contiguous halves at n/2); summed deterministically afterwards.
  const std::int64_t mid = n / 2;
  const Shape w_mat_shape{out_channels_, in_channels_ * kernel_ * kernel_};
  Tensor grad_w_parts[2] = {Tensor(w_mat_shape), Tensor(w_mat_shape)};
  Tensor grad_b_parts[2] = {Tensor(Shape{out_channels_}),
                            Tensor(Shape{out_channels_})};

  Tensor grad_input(input_shape_);
  const std::int64_t in_chunk = in_channels_ * h * w;
  parallel_batch(n, [&](std::int64_t i) {
    const int slot = (n >= 4 && i >= mid) ? 1 : 0;
    Tensor dy = select0(grad_output, i)
                    .reshape(Shape{out_channels_, oh * ow});  // (O, oh*ow)
    // Parameter gradients (thread-local accumulation).
    grad_w_parts[slot].add_(
        matmul_nt(dy, columns_[static_cast<std::size_t>(i)]));
    if (has_bias_) {
      for (std::int64_t o = 0; o < out_channels_; ++o) {
        double acc = 0.0;
        const float* row = dy.data() + o * oh * ow;
        for (std::int64_t p = 0; p < oh * ow; ++p) acc += row[p];
        grad_b_parts[slot].flat(o) += static_cast<float>(acc);
      }
    }
    // Input gradient (disjoint writes per sample).
    Tensor dcols = matmul_tn(w_mat, dy);  // (C*k*k, oh*ow)
    Tensor dx = col2im(dcols, in_channels_, h, w, kernel_, kernel_, stride_,
                       stride_, padding_, padding_);
    std::copy(dx.data(), dx.data() + in_chunk,
              grad_input.data() + i * in_chunk);
  });
  grad_w_parts[0].add_(grad_w_parts[1]);
  weight_.grad.add_(grad_w_parts[0].reshape(weight_.value.shape()));
  if (has_bias_) {
    grad_b_parts[0].add_(grad_b_parts[1]);
    bias_.grad.add_(grad_b_parts[0]);
  }
  return grad_input;
}

std::vector<Parameter*> Conv2d::parameters() {
  if (has_bias_) return {&weight_, &bias_};
  return {&weight_};
}

std::string Conv2d::name() const {
  std::ostringstream out;
  out << "Conv2d(" << in_channels_ << "->" << out_channels_ << ", "
      << kernel_ << "x" << kernel_ << ", s" << stride_ << ", p" << padding_
      << ")";
  return out.str();
}

}  // namespace mtsr::nn
