#include "src/nn/conv2d.hpp"

#include <sstream>

#include "src/common/check.hpp"
#include "src/nn/init.hpp"
#include "src/tensor/tensor_ops.hpp"

namespace mtsr::nn {

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels,
               int kernel, int stride, int padding, Rng& rng, bool bias)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      has_bias_(bias),
      weight_("weight",
              he_normal(Shape{out_channels, in_channels, kernel, kernel},
                        in_channels * kernel * kernel, rng)),
      bias_("bias", Tensor::zeros(Shape{out_channels})) {
  check(in_channels > 0 && out_channels > 0, "Conv2d requires positive channels");
  check(kernel > 0 && stride > 0 && padding >= 0, "Conv2d bad hyper-parameters");
}

std::int64_t Conv2d::out_extent(std::int64_t in_extent) const {
  return (in_extent + 2 * padding_ - kernel_) / stride_ + 1;
}

Tensor Conv2d::forward(const Tensor& input, bool /*training*/) {
  check(input.rank() == 4, "Conv2d expects (N, C, H, W) input");
  check(input.dim(1) == in_channels_, "Conv2d input channel mismatch");
  const std::int64_t n = input.dim(0), h = input.dim(2), w = input.dim(3);
  const std::int64_t oh = out_extent(h), ow = out_extent(w);
  check(oh > 0 && ow > 0, "Conv2d output would be empty");

  input_shape_ = input.shape();
  // Whole-batch lowering: one (C·k·k, N·oh·ow) matrix, one GEMM per step.
  columns_ = im2col_batched(input, kernel_, kernel_, stride_, stride_,
                            padding_, padding_);
  const Tensor w_mat = weight_.value.reshape(
      Shape{out_channels_, in_channels_ * kernel_ * kernel_});
  Tensor y = matmul(w_mat, columns_);  // (O, N*oh*ow)
  Tensor output =
      channel_major_to_batch(y, Shape{n, out_channels_, oh, ow});
  if (has_bias_) add_channel_bias(output, bias_.value);
  return output;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  check(!columns_.empty(), "Conv2d::backward called before forward");
  check(grad_output.rank() == 4 && grad_output.dim(1) == out_channels_,
        "Conv2d::backward grad shape mismatch");
  const std::int64_t n = input_shape_.dim(0);
  const std::int64_t h = input_shape_.dim(2), w = input_shape_.dim(3);

  const Tensor w_mat = weight_.value.reshape(
      Shape{out_channels_, in_channels_ * kernel_ * kernel_});

  // Channel-major view of the output gradient: (O, N*oh*ow).
  Tensor dy = batch_to_channel_major(grad_output);

  // Parameter gradients: one GEMM for dW, per-channel sums for db. The
  // lowering cache is dead after dW, so release it rather than keep a
  // batch-sized matrix alive until the next forward.
  weight_.grad.add_(matmul_nt(dy, columns_).reshape(weight_.value.shape()));
  columns_ = Tensor();
  if (has_bias_) accumulate_channel_sums(grad_output, bias_.grad);

  // Input gradient: one GEMM, then the batched col2im scatter.
  Tensor dcols = matmul_tn(w_mat, dy);  // (C*k*k, N*oh*ow)
  return col2im_batched(dcols, n, in_channels_, h, w, kernel_, kernel_,
                        stride_, stride_, padding_, padding_);
}

std::vector<Parameter*> Conv2d::parameters() {
  if (has_bias_) return {&weight_, &bias_};
  return {&weight_};
}

std::string Conv2d::name() const {
  std::ostringstream out;
  out << "Conv2d(" << in_channels_ << "->" << out_channels_ << ", "
      << kernel_ << "x" << kernel_ << ", s" << stride_ << ", p" << padding_
      << ")";
  return out.str();
}

}  // namespace mtsr::nn
