#include "src/nn/batchnorm.hpp"

#include <cmath>
#include <sstream>

#include "src/common/check.hpp"
#include "src/common/parallel.hpp"

namespace mtsr::nn {
namespace {

// Iteration geometry for an (N, C, ...) tensor: per (n, c) pair there is a
// contiguous run of `inner` elements.
struct Geometry {
  std::int64_t n;
  std::int64_t c;
  std::int64_t inner;
};

Geometry geometry(const Shape& shape, std::int64_t channels) {
  check(shape.rank() >= 2, "BatchNorm expects rank >= 2 input");
  check(shape.dim(1) == channels, "BatchNorm channel mismatch");
  std::int64_t inner = 1;
  for (int i = 2; i < shape.rank(); ++i) inner *= shape.dim(i);
  return {shape.dim(0), shape.dim(1), inner};
}

}  // namespace

BatchNorm::BatchNorm(std::int64_t channels, float momentum, float epsilon)
    : channels_(channels),
      momentum_(momentum),
      epsilon_(epsilon),
      gamma_("gamma", Tensor::ones(Shape{channels})),
      beta_("beta", Tensor::zeros(Shape{channels})),
      running_mean_(Tensor::zeros(Shape{channels})),
      running_var_(Tensor::ones(Shape{channels})),
      inv_std_(Tensor::zeros(Shape{channels})) {
  check(channels > 0, "BatchNorm requires positive channel count");
  check(momentum > 0.f && momentum <= 1.f, "BatchNorm momentum in (0,1]");
  check(epsilon > 0.f, "BatchNorm epsilon must be positive");
}

Tensor BatchNorm::forward(const Tensor& input, bool training) {
  const Geometry g = geometry(input.shape(), channels_);
  const std::int64_t m = g.n * g.inner;  // reduction count per channel
  check(m > 0, "BatchNorm forward on empty batch");

  input_shape_ = input.shape();
  forward_was_training_ = training;
  Tensor output(input.shape());
  // The normalised input lives in the arena until backward rewinds it.
  x_hat_ = ws_matrix(Workspace::tls(), g.n * channels_, g.inner);

  const float* px = input.data();
  float* py = output.data();
  float* pxh = x_hat_.data;

  // Channels are fully independent (statistics, normalisation and running
  // buffers), so the parallel engine splits the channel axis.
  parallel_for(channels_, [&](std::int64_t c) {
    double mean, var;
    if (training) {
      double sum = 0.0, sq = 0.0;
      for (std::int64_t in = 0; in < g.n; ++in) {
        const float* base = px + (in * channels_ + c) * g.inner;
        for (std::int64_t i = 0; i < g.inner; ++i) {
          sum += base[i];
          sq += static_cast<double>(base[i]) * base[i];
        }
      }
      mean = sum / static_cast<double>(m);
      var = sq / static_cast<double>(m) - mean * mean;
      var = std::max(var, 0.0);
      running_mean_.flat(c) = (1.f - momentum_) * running_mean_.flat(c) +
                              momentum_ * static_cast<float>(mean);
      running_var_.flat(c) = (1.f - momentum_) * running_var_.flat(c) +
                             momentum_ * static_cast<float>(var);
    } else {
      mean = running_mean_.flat(c);
      var = running_var_.flat(c);
    }
    const float inv = 1.f / std::sqrt(static_cast<float>(var) + epsilon_);
    inv_std_.flat(c) = inv;
    const float gam = gamma_.value.flat(c);
    const float bet = beta_.value.flat(c);
    for (std::int64_t in = 0; in < g.n; ++in) {
      const float* base = px + (in * channels_ + c) * g.inner;
      float* xh = pxh + (in * channels_ + c) * g.inner;
      float* yo = py + (in * channels_ + c) * g.inner;
      for (std::int64_t i = 0; i < g.inner; ++i) {
        const float norm = (base[i] - static_cast<float>(mean)) * inv;
        xh[i] = norm;
        yo[i] = gam * norm + bet;
      }
    }
  });
  return output;
}

Tensor BatchNorm::backward(const Tensor& grad_output) {
  check(!x_hat_.empty() && Workspace::tls().alive(x_hat_.end),
        "BatchNorm::backward called before forward (or forward's workspace "
        "scope was rewound)");
  check(grad_output.shape() == input_shape_,
        "BatchNorm::backward grad shape mismatch");
  const Geometry g = geometry(input_shape_, channels_);
  const double m = static_cast<double>(g.n * g.inner);

  Tensor grad_input(input_shape_);
  const float* pdy = grad_output.data();
  const float* pxh = x_hat_.data;
  float* pdx = grad_input.data();

  parallel_for(channels_, [&](std::int64_t c) {
    // Channel-wise sums of dy and dy*x_hat.
    double sum_dy = 0.0, sum_dy_xhat = 0.0;
    for (std::int64_t in = 0; in < g.n; ++in) {
      const float* dy = pdy + (in * channels_ + c) * g.inner;
      const float* xh = pxh + (in * channels_ + c) * g.inner;
      for (std::int64_t i = 0; i < g.inner; ++i) {
        sum_dy += dy[i];
        sum_dy_xhat += static_cast<double>(dy[i]) * xh[i];
      }
    }
    beta_.grad.flat(c) += static_cast<float>(sum_dy);
    gamma_.grad.flat(c) += static_cast<float>(sum_dy_xhat);

    const float gam = gamma_.value.flat(c);
    const float inv = inv_std_.flat(c);
    // In training mode the batch statistics depend on the input, which adds
    // the mean-subtraction terms; in inference mode the running statistics
    // are constants and the layer is a fixed affine map.
    const float mean_dy =
        forward_was_training_ ? static_cast<float>(sum_dy / m) : 0.f;
    const float mean_dy_xhat =
        forward_was_training_ ? static_cast<float>(sum_dy_xhat / m) : 0.f;
    for (std::int64_t in = 0; in < g.n; ++in) {
      const float* dy = pdy + (in * channels_ + c) * g.inner;
      const float* xh = pxh + (in * channels_ + c) * g.inner;
      float* dx = pdx + (in * channels_ + c) * g.inner;
      for (std::int64_t i = 0; i < g.inner; ++i) {
        dx[i] = gam * inv * (dy[i] - mean_dy - xh[i] * mean_dy_xhat);
      }
    }
  });

  Workspace::tls().rewind(x_hat_.mark);  // x̂ dead — LIFO release
  x_hat_ = WsMatrix{};
  return grad_input;
}

std::vector<Parameter*> BatchNorm::parameters() { return {&gamma_, &beta_}; }

std::vector<std::pair<std::string, Tensor*>> BatchNorm::buffers() {
  return {{"running_mean", &running_mean_}, {"running_var", &running_var_}};
}

std::string BatchNorm::name() const {
  std::ostringstream out;
  out << "BatchNorm(" << channels_ << ")";
  return out.str();
}

}  // namespace mtsr::nn
